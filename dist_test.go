package genbase

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
)

// TestDistAnswersInvariantToNodeCount is the distributed determinism
// contract (the node-count analog of the PR 1 worker-count tests): for every
// virtual-cluster configuration and every scenario, the answer at 1, 2, 3
// and 8 nodes is bitwise identical. The mechanism is the fixed numeric shard
// partition (distlinalg.DefaultNumericShards): reductions combine per-shard
// partials in shard order, so node count moves shards between virtual clocks
// but cannot reorder a single floating-point operation.
func TestDistAnswersInvariantToNodeCount(t *testing.T) {
	if testing.Short() {
		t.Skip("node-count sweep is not short")
	}
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	ctx := context.Background()
	for _, kind := range multinode.AllKinds() {
		ref := make(map[engine.QueryID]string)
		for _, nodes := range []int{1, 2, 3, 8} {
			eng := multinode.New(kind, nodes)
			if err := eng.Load(ds); err != nil {
				t.Fatalf("%s/%d load: %v", kind, nodes, err)
			}
			for _, q := range engine.AllScenarios() {
				res, err := eng.Run(ctx, q, p)
				if err != nil {
					t.Fatalf("%s/%d %s: %v", kind, nodes, q, err)
				}
				h := goldenAnswerHash(t, res.Answer)
				if nodes == 1 {
					ref[q] = h
					continue
				}
				if h != ref[q] {
					t.Errorf("%s %s: answer at %d nodes diverges bitwise from 1 node", kind, q, nodes)
				}
			}
		}
	}
}

// TestDistSupportsAgreesWithRun asserts the derived Supports answer against
// ground truth for every (configuration, query) pair, single-node and
// multi-node alike: Supports(q) must hold exactly when Run neither returns
// engine.ErrUnsupported nor lacks the physical operators to execute — the
// agreement the old hardcoded multinode switch maintained by hand.
func TestDistSupportsAgreesWithRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full config×query sweep is not short")
	}
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Scale: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()

	var engines []engine.Engine
	for _, cfg := range core.SingleNodeConfigs() {
		engines = append(engines, cfg.New(1, t.TempDir()))
	}
	for _, cfg := range core.MultiNodeConfigs() {
		engines = append(engines, cfg.NewCluster(2))
	}
	for _, eng := range engines {
		defer eng.Close()
		if err := eng.Load(ds); err != nil {
			t.Fatalf("%s load: %v", eng.Name(), err)
		}
		// One probe query id past the registered scenarios: Supports must
		// deny it and Run must agree.
		queries := append(engine.AllScenarios(), engine.QueryID(99))
		for _, q := range queries {
			_, err := eng.Run(ctx, q, p)
			ranOK := !errors.Is(err, engine.ErrUnsupported)
			if err != nil && ranOK {
				t.Fatalf("%s %s: unexpected failure %v", eng.Name(), q, err)
			}
			if got := eng.Supports(q); got != ranOK {
				t.Errorf("%s %s: Supports=%v but Run unsupported=%v", eng.Name(), q, got, !ranOK)
			}
		}
	}
}

// TestDistCohortRegressionOnAllClusterConfigs is the tentpole's payoff
// check: the planner-only Q6 scenario — for which package multinode contains
// zero query code — runs on all five virtual-cluster configurations, and the
// cluster answers agree with each other (the distributed normal equations
// and the gathered QR solve differ only in rounding).
func TestDistCohortRegressionOnAllClusterConfigs(t *testing.T) {
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	ctx := context.Background()
	var ref *engine.RegressionAnswer
	for _, kind := range multinode.AllKinds() {
		eng := multinode.New(kind, 4)
		if !eng.Supports(engine.Q6CohortRegression) {
			t.Fatalf("%s does not support the cohort scenario", kind)
		}
		if err := eng.Load(ds); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(ctx, engine.Q6CohortRegression, p)
		if err != nil {
			t.Fatalf("%s cohort regression: %v", kind, err)
		}
		ans := res.Answer.(*engine.RegressionAnswer)
		if ref == nil {
			ref = ans
			if ref.NumPatients < 2 || len(ref.SelectedGenes) == 0 {
				t.Fatalf("degenerate cohort: %d patients, %d genes", ref.NumPatients, len(ref.SelectedGenes))
			}
			continue
		}
		if ans.NumPatients != ref.NumPatients || len(ans.SelectedGenes) != len(ref.SelectedGenes) {
			t.Fatalf("%s: cohort shape diverges", kind)
		}
		for i, c := range ans.Coefficients {
			want := ref.Coefficients[i]
			if d := math.Abs(c - want); d > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("%s: coefficient %d = %g, want %g", kind, i, c, want)
			}
		}
	}
}
