package genbase

import (
	"context"
	"fmt"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	ds, err := GenerateDataset(Small, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunQuery(context.Background(), "scidb", ds, Q1Regression, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Total() <= 0 {
		t.Fatal("no timing")
	}
}

func TestSystemsListed(t *testing.T) {
	names := Systems()
	if len(names) != 10 {
		t.Fatalf("expected 10 configurations, got %d", len(names))
	}
}

func TestNewSystemUnknown(t *testing.T) {
	if _, err := NewSystem("oracle", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewSystemEveryConfigLoads(t *testing.T) {
	ds, err := GenerateDataset(Small, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Systems() {
		eng, err := NewSystem(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := eng.Load(ds); err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		if _, err := eng.Run(context.Background(), Q1Regression, DefaultParams()); err != nil {
			t.Fatalf("%s regression: %v", name, err)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}
}

func TestQueriesOrder(t *testing.T) {
	qs := Queries()
	if len(qs) != 5 || qs[0] != Q1Regression || qs[4] != Q5Statistics {
		t.Fatalf("queries=%v", qs)
	}
}

// Example demonstrates the basic workflow: generate data, pick a system,
// run a query. (Timings vary by machine, so no fixed output is asserted.)
func Example() {
	ds, err := GenerateDataset(Small, 0.2, 1)
	if err != nil {
		panic(err)
	}
	res, err := RunQuery(context.Background(), "scidb", ds, Q4SVD, DefaultParams())
	if err != nil {
		panic(err)
	}
	ans := res.Answer.(*SVDAnswer)
	fmt.Println(len(ans.SingularValues) > 0)
	// Output: true
}
