module github.com/genbase/genbase

go 1.24
