// Command genbase-datagen generates the four GenBase datasets (microarray,
// patient metadata, gene metadata, GO membership) as CSV files in the
// paper's relational form, or as a compact binary file for fast reloading.
//
// Usage:
//
//	genbase-datagen -size medium -out ./data            # CSV directory
//	genbase-datagen -size large -format binary -out ds.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/genbase/genbase/internal/datagen"
)

func main() {
	size := flag.String("size", "small", "dataset preset: small|medium|large|xlarge")
	scale := flag.Float64("scale", 1.0, "dimension multiplier (1.0 = 1/20 of the paper)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "genbase-data", "output directory (csv) or file (binary)")
	format := flag.String("format", "csv", "output format: csv|binary")
	flag.Parse()

	ds, err := datagen.Generate(datagen.Config{Size: datagen.Size(*size), Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s dataset: %d patients × %d genes, %d GO terms (≈%.1f MB)\n",
		ds.Size, ds.Dims.Patients, ds.Dims.Genes, ds.Dims.GOTerms,
		float64(ds.BytesEstimate())/(1<<20))

	switch *format {
	case "csv":
		if err := ds.WriteCSVDir(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV tables to %s/\n", *out)
	case "binary":
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := ds.WriteBinary(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote binary dataset to %s\n", *out)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbase-datagen:", err)
	os.Exit(1)
}
