// Command genbase-run executes one benchmark query on one system
// configuration and prints the timing breakdown and an answer summary.
//
// Usage:
//
//	genbase-run -system scidb -query regression -size medium
//	genbase-run -system pbdr -nodes 4 -query covariance -size large
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
)

func main() {
	system := flag.String("system", "vanilla-r", "configuration: one of "+fmt.Sprint(systemNames()))
	query := flag.String("query", "regression", "query: regression|covariance|biclustering|svd|statistics|cohort-regression")
	size := flag.String("size", "small", "dataset preset: small|medium|large|xlarge")
	scale := flag.Float64("scale", 1.0, "dimension multiplier")
	seed := flag.Uint64("seed", 1, "generator seed")
	nodes := flag.Int("nodes", 1, "simulated cluster size (multi-node systems)")
	timeout := flag.Duration("timeout", 2*time.Minute, "query cutoff")
	svdk := flag.Int("svdk", 0, "override the number of singular values for Q4")
	data := flag.String("data", "", "load dataset from a CSV directory or .bin file instead of generating")
	flag.Parse()

	q, err := parseQuery(*query)
	if err != nil {
		fatal(err)
	}
	cfg, err := core.ConfigByName(*system)
	if err != nil {
		fatal(err)
	}

	var ds *datagen.Dataset
	if *data != "" {
		fmt.Printf("loading dataset from %s...\n", *data)
		ds, err = loadDataset(*data)
	} else {
		fmt.Printf("generating %s dataset (scale %.2f, seed %d)...\n", *size, *scale, *seed)
		ds, err = datagen.Generate(datagen.Config{Size: datagen.Size(*size), Scale: *scale, Seed: *seed})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %d patients × %d genes, %d GO terms\n", ds.Dims.Patients, ds.Dims.Genes, ds.Dims.GOTerms)

	dir, err := os.MkdirTemp("", "genbase-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	eng := cfg.New(*nodes, dir)
	defer eng.Close()

	fmt.Printf("loading into %s", cfg.Name)
	if *nodes > 1 {
		fmt.Printf(" (%d nodes)", *nodes)
	}
	fmt.Println("...")
	loadStart := time.Now()
	if err := eng.Load(ds); err != nil {
		fatal(fmt.Errorf("load: %w", err))
	}
	fmt.Printf("  loaded in %v\n", time.Since(loadStart).Round(time.Millisecond))

	p := engine.DefaultParams()
	if *svdk > 0 {
		p.SVDK = *svdk
	}
	runner := core.Runner{Timeout: *timeout}
	out := runner.RunQuery(context.Background(), cfg.Name, eng, ds, q, p, *nodes)
	switch {
	case out.Unsupported:
		fmt.Printf("%s does not support the %v query\n", cfg.Name, q)
		os.Exit(2)
	case out.Infinite:
		fmt.Printf("%v on %s exceeded the %v cutoff (the paper's \"infinite\" result)\n", q, cfg.Name, *timeout)
		os.Exit(3)
	case out.Err != nil:
		fatal(out.Err)
	}

	fmt.Printf("\n%v on %s:\n", q, cfg.Name)
	fmt.Printf("  data management : %v\n", out.Timing.DataManagement.Round(time.Microsecond))
	if out.Timing.Transfer > 0 {
		fmt.Printf("  copy/reformat   : %v\n", out.Timing.Transfer.Round(time.Microsecond))
	}
	fmt.Printf("  analytics       : %v\n", out.Timing.Analytics.Round(time.Microsecond))
	fmt.Printf("  total           : %v\n", out.Timing.Total().Round(time.Microsecond))
	printAnswer(out.Answer)
}

func printAnswer(ans any) {
	switch a := ans.(type) {
	case *engine.RegressionAnswer:
		fmt.Printf("  model: %d genes + intercept over %d patients, R² = %.4f\n",
			len(a.SelectedGenes), a.NumPatients, a.RSquared)
	case *engine.CovarianceAnswer:
		fmt.Printf("  %d gene pairs above |cov| ≥ %.4g (from %d patients)\n",
			a.NumPairs, a.Threshold, a.NumPatients)
		for i, p := range a.TopPairs {
			if i == 3 {
				break
			}
			fmt.Printf("    gene %d ↔ gene %d: cov %.4f (functions %d, %d)\n",
				p.GeneA, p.GeneB, p.Cov, p.FunctionA, p.FunctionB)
		}
	case *engine.BiclusterAnswer:
		fmt.Printf("  %d biclusters over %d filtered patients\n", len(a.Blocks), a.NumPatients)
		for i, b := range a.Blocks {
			fmt.Printf("    bicluster %d: %d patients × %d genes, MSR %.4f\n",
				i+1, len(b.PatientIDs), len(b.GeneIDs), b.MSR)
		}
	case *engine.SVDAnswer:
		fmt.Printf("  top singular values over %d selected genes:\n   ", a.SelectedGenes)
		for _, s := range a.SingularValues {
			fmt.Printf(" %.3f", s)
		}
		fmt.Println()
	case *engine.StatsAnswer:
		fmt.Printf("  Wilcoxon over %d GO terms (%d sampled patients); most enriched:\n",
			len(a.Terms), a.SampledPatients)
		for _, ts := range a.TopEnriched(3) {
			fmt.Printf("    GO term %d: z = %+.3f, p = %.3g\n", ts.Term, ts.Z, ts.P)
		}
	}
}

// loadDataset reads a dataset from a CSV directory or a binary file.
func loadDataset(path string) (*datagen.Dataset, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return datagen.ReadCSVDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return datagen.ReadBinary(f)
}

func parseQuery(s string) (engine.QueryID, error) {
	for _, q := range engine.AllScenarios() {
		if q.String() == s {
			return q, nil
		}
	}
	return 0, fmt.Errorf("unknown query %q", s)
}

func systemNames() []string {
	var out []string
	for _, c := range core.Configs() {
		out = append(out, c.Name)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbase-run:", err)
	os.Exit(1)
}
