package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/serve"
	"github.com/genbase/genbase/internal/wal"
)

// ingestSummary is what one serve window's ingest sideband did.
type ingestSummary struct {
	Rows        int64
	Checkpoints int64
	Epoch       uint64
	Swaps       int64
}

// runIngestWindow drives open-loop ingest beside one serve window: append
// rows to the WAL store at rate rows/sec, checkpoint every `every` rows, and
// on each checkpoint load a fresh engine from the new snapshot and Swap it
// into the server — queries in flight keep their pinned epoch, the displaced
// engines stay alive until the window ends (returned for retirement).
// Close the stop channel to end the loop; the final summary comes back on
// done.
func runIngestWindow(
	store *wal.Store,
	gen *wal.RowGen,
	srv *serve.Server,
	newEngine func(*datagen.Dataset) (engine.Engine, error),
	rate float64,
	every int,
	stop <-chan struct{},
) (done <-chan ingestSummary, retired *[]engine.Engine) {
	ch := make(chan ingestSummary, 1)
	old := &[]engine.Engine{}
	interval := time.Duration(float64(time.Second) / rate)
	go func() {
		var sum ingestSummary
		defer func() { sum.Epoch = store.Epoch(); ch <- sum }()
		sinceCheckpoint := 0
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if err := store.Append(gen.Next()); err != nil {
				fmt.Fprintf(os.Stderr, "ingest: append: %v\n", err)
				return
			}
			sum.Rows++
			if sinceCheckpoint++; sinceCheckpoint < every {
				continue
			}
			sinceCheckpoint = 0
			epoch, err := store.Checkpoint()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ingest: checkpoint: %v\n", err)
				return
			}
			sum.Checkpoints++
			snap, err := store.SnapshotAt(epoch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ingest: snapshot: %v\n", err)
				return
			}
			eng, err := newEngine(snap.Dataset)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ingest: load epoch %d: %v\n", epoch, err)
				return
			}
			*old = append(*old, srv.Swap(eng, epoch))
			sum.Swaps++
		}
	}()
	return ch, old
}

// ingestSession owns one serve window's ingest sideband: the WAL store, the
// appender goroutine, and every engine generation the window swapped in.
type ingestSession struct {
	store   *wal.Store
	dir     string
	stop    chan struct{}
	done    <-chan ingestSummary
	retired *[]engine.Engine
	dirs    []string // scratch dirs of swapped-in disk engines
	srv     *serve.Server
	orig    engine.Engine // the caller-owned engine; never closed here
}

// startIngestSession opens a fresh WAL store over ds in a temp dir and starts
// the appender beside srv. Each window gets its own store, so epochs always
// start at 0 and the run is reproducible per (system, nodes, clients) point.
func startIngestSession(sc serveConfig, cfg core.SystemConfig, nodes int, multi bool, srv *serve.Server, orig engine.Engine, ds *datagen.Dataset) (*ingestSession, error) {
	dir, err := os.MkdirTemp("", "genbase-ingest-*")
	if err != nil {
		return nil, err
	}
	store, err := wal.Open(dir, ds)
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	is := &ingestSession{store: store, dir: dir, stop: make(chan struct{}), srv: srv, orig: orig}
	newEngine := func(snap *datagen.Dataset) (engine.Engine, error) {
		var eng engine.Engine
		if multi {
			eng = cfg.NewCluster(nodes)
		} else {
			edir, err := os.MkdirTemp("", "genbase-ingest-eng-*")
			if err != nil {
				return nil, err
			}
			is.dirs = append(is.dirs, edir) // appender goroutine only; read after done
			eng = cfg.New(1, edir)
		}
		if err := eng.Load(snap); err != nil {
			eng.Close()
			return nil, err
		}
		return eng, nil
	}
	is.done, is.retired = runIngestWindow(store, wal.NewRowGen(ds, sc.seed), srv,
		newEngine, sc.ingestRate, sc.ckptEvery, is.stop)
	return is, nil
}

// finish stops the appender, retires every engine generation the window
// created (the caller-owned original excluded), and tears down the store.
func (is *ingestSession) finish() (ingestSummary, error) {
	close(is.stop)
	sum := <-is.done
	closed := map[engine.Engine]bool{is.orig: true, nil: true}
	for _, e := range *is.retired {
		if !closed[e] {
			closed[e] = true
			e.Close()
		}
	}
	if cur := is.srv.Engine(); !closed[cur] {
		cur.Close()
	}
	err := is.store.Close()
	os.RemoveAll(is.dir)
	for _, d := range is.dirs {
		os.RemoveAll(d)
	}
	return sum, err
}

// crashDrillConfig is the parsed -crash-drill flag set.
type crashDrillConfig struct {
	size  datagen.Size
	scale float64
	seed  uint64
	nodes int
	quiet bool
}

// runCrashDrill is the -crash-drill mode: a end-to-end recovery-convergence
// drill on the serve path. It builds a WAL over the dataset (24 rows, a
// checkpoint, 8 more rows), then crashes it at a sweep of byte positions —
// every record boundary plus a stride through the torn tail — and for each
// crash image verifies that recovery converges: same epoch, same segment
// digest, same snapshot hash as the pre-crash state. A sample of recovered
// snapshots is then served at -nodes through the admission layer, and the
// answers must be bit-identical across every recovery point.
func runCrashDrill(ctx context.Context, dc crashDrillConfig) error {
	ds, err := datagen.Generate(datagen.Config{Size: dc.size, Scale: dc.scale, Seed: dc.seed})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "genbase-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Reference run: the state every crash image must converge back to.
	store, err := wal.Open(dir, ds)
	if err != nil {
		return err
	}
	gen := wal.NewRowGen(ds, dc.seed)
	for i := 0; i < 24; i++ {
		if err := store.Append(gen.Next()); err != nil {
			return err
		}
	}
	if _, err := store.Checkpoint(); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if err := store.Append(gen.Next()); err != nil {
			return err
		}
	}
	digest1, err := store.SegmentDigest(1)
	if err != nil {
		return err
	}
	snap1, err := store.SnapshotAt(1)
	if err != nil {
		return err
	}
	goldenHash := snap1.Hash()
	if err := store.Close(); err != nil {
		return err
	}
	raw, err := os.ReadFile(dir + "/wal.log")
	if err != nil {
		return err
	}

	// Crash positions: every clean record boundary, plus a stride through
	// the bytes of the torn tail after the checkpoint.
	var cuts []int
	bound := 0
	for bound < len(raw) {
		_, n, perr := wal.ParseRecord(raw[bound:])
		if perr != nil {
			return fmt.Errorf("crash-drill: reference WAL corrupt: %w", perr)
		}
		bound += n
		cuts = append(cuts, bound)
	}
	lastStart := cuts[len(cuts)-2]
	for c := lastStart + 1; c < len(raw); c += 37 {
		cuts = append(cuts, c)
	}

	var convergedAt1, preCheckpoint int
	var sampleSnaps []*wal.Snapshot
	for i, cut := range cuts {
		cdir, err := os.MkdirTemp("", "genbase-crash-cut-*")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cdir+"/wal.log", raw[:cut], 0o644); err != nil {
			os.RemoveAll(cdir)
			return err
		}
		s, err := wal.Open(cdir, ds)
		if err != nil {
			os.RemoveAll(cdir)
			return fmt.Errorf("crash-drill: recovery at byte %d: %w", cut, err)
		}
		if s.Epoch() == 0 {
			preCheckpoint++
		} else {
			d, err := s.SegmentDigest(1)
			if err != nil {
				s.Close()
				os.RemoveAll(cdir)
				return err
			}
			if d != digest1 {
				s.Close()
				os.RemoveAll(cdir)
				return fmt.Errorf("crash-drill: segment digest diverged at byte %d", cut)
			}
			sn, err := s.SnapshotAt(1)
			if err != nil {
				s.Close()
				os.RemoveAll(cdir)
				return err
			}
			if sn.Hash() != goldenHash {
				s.Close()
				os.RemoveAll(cdir)
				return fmt.Errorf("crash-drill: snapshot hash diverged at byte %d", cut)
			}
			convergedAt1++
			if len(sampleSnaps) < 3 && i%7 == 0 {
				sampleSnaps = append(sampleSnaps, sn)
			}
		}
		s.Close()
		os.RemoveAll(cdir)
	}
	if len(sampleSnaps) == 0 {
		sampleSnaps = append(sampleSnaps, snap1)
	}

	// Serve-path check: recovered snapshots at -nodes answer bit-identically
	// through the admission layer, whichever crash point they came back from.
	cfg, err := core.ConfigByName("pbdr")
	if err != nil {
		return err
	}
	p := engine.DefaultParams()
	queries := []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q5Statistics}
	answers := map[engine.QueryID]string{}
	for i, sn := range append([]*wal.Snapshot{snap1}, sampleSnaps...) {
		eng := cfg.NewCluster(dc.nodes)
		if err := eng.Load(sn.Dataset); err != nil {
			eng.Close()
			return err
		}
		srv := serve.New(eng, serve.Options{MaxConcurrent: 2, DisableCache: true})
		for _, q := range queries {
			res, _, err := srv.Run(ctx, q, p)
			if err != nil {
				eng.Close()
				return fmt.Errorf("crash-drill: serve %s at %d nodes: %w", q, dc.nodes, err)
			}
			h := answerSHA(res.Answer)
			if prev, ok := answers[q]; !ok {
				answers[q] = h
			} else if h != prev {
				eng.Close()
				return fmt.Errorf("crash-drill: %s answer diverged between recovery points (snapshot %d)", q, i)
			}
		}
		eng.Close()
	}

	fmt.Printf("crash drill — %s @ %d nodes (seed %d)\n", dc.size, dc.nodes, dc.seed)
	fmt.Printf("%4d crash points: %d recovered to epoch 1 (digest+snapshot converged), %d to epoch 0 (pre-checkpoint)\n",
		len(cuts), convergedAt1, preCheckpoint)
	fmt.Printf("%4d recovered snapshots served %d queries each through pbdr@%dn: all answers bit-identical\n",
		len(sampleSnaps)+1, len(queries), dc.nodes)
	return nil
}
