package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/faults"
	"github.com/genbase/genbase/internal/serve"
)

// The -fault-drill sweep: for each (system, node count, fault scenario) it
// measures one direct query's recovery makespan and a short served window's
// QPS/p99, all with shard replication 2 so every schedule completes. Every
// faulty run's answer is hashed against the healthy run's — a drill that
// changes a single bit fails, which is the whole point of the deterministic
// fault model (DESIGN.md §14).

// drillConfig is the parsed -fault-drill flag set.
type drillConfig struct {
	duration time.Duration
	rate     float64 // open-loop offered arrivals/sec
	size     datagen.Size
	scale    float64
	seed     uint64
	outPath  string
	quiet    bool
}

// drillReplication is the shard replication factor every drill runs with:
// the smallest factor that survives any single-node crash.
const drillReplication = 2

// drillSystems are the configurations drilled: the ScaLAPACK-style
// distributed path and the redistribution-heavy SciDB path.
var drillSystems = []string{"pbdr", "scidb"}

// drillNodeCounts are the cluster sizes swept (the paper's largest cluster
// and one beyond it).
var drillNodeCounts = []int{4, 8}

// drillScenarios are the deterministic fault schedules swept per cluster
// size. Node and step indices are chosen to hit mid-query work on every
// system: node 1 always owns a shard at 4+ nodes, and step 2 lands inside
// the per-shard kernel sequence.
func drillScenarios() []struct{ name, plan string } {
	return []struct{ name, plan string }{
		{"healthy", ""},
		{"node-kill", "crash:1@2"},
		{"straggler", "slow:2x8"},
		{"flaky", "flaky:0@1"},
	}
}

// drillRunJSON is one row of the BENCH_faults.json baseline.
type drillRunJSON struct {
	System     string   `json:"system"`
	Nodes      int      `json:"nodes"`
	Scenario   string   `json:"scenario"`
	Faults     string   `json:"faults"`
	MakespanMs float64  `json:"makespan_ms"` // one Q2 run, recovery cost included
	Failovers  int64    `json:"failovers"`
	Hedges     int64    `json:"hedges"`
	Retries    int64    `json:"retries"`
	Degraded   bool     `json:"degraded"`
	AnswerSHA  string   `json:"answer_sha"` // must match the healthy row's
	QPS        float64  `json:"qps"`
	P99Ms      *float64 `json:"p99_ms"` // null when the window cannot resolve a p99
	Queries    int64    `json:"queries"`
	Dropped    int64    `json:"dropped,omitempty"`
	Shed       int64    `json:"shed"`
	DegradedQ  int64    `json:"degraded_queries"`
}

type drillReportJSON struct {
	Dataset     string         `json:"dataset"`
	Scale       float64        `json:"scale"`
	Seed        uint64         `json:"seed"`
	Replication int            `json:"replication"`
	DurationMs  float64        `json:"duration_ms_per_run"`
	RateQPS     float64        `json:"offered_rate_qps"`
	CPUs        int            `json:"host_cpus"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Results     []drillRunJSON `json:"results"`
}

// clusterInspector exposes the virtual cluster of an engine's last run (the
// multinode engines implement it); the drill reads its recovery counters.
type clusterInspector interface {
	Cluster() *cluster.Cluster
}

func runFaultDrill(ctx context.Context, dc drillConfig) error {
	ds, err := datagen.Generate(datagen.Config{Size: dc.size, Scale: dc.scale, Seed: dc.seed})
	if err != nil {
		return err
	}
	params := engine.DefaultParams()
	mix := serveMix(params)

	report := drillReportJSON{
		Dataset:     string(dc.size),
		Scale:       dc.scale,
		Seed:        dc.seed,
		Replication: drillReplication,
		DurationMs:  float64(dc.duration) / float64(time.Millisecond),
		RateQPS:     dc.rate,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	for _, name := range drillSystems {
		cfg, err := core.ConfigByName(name)
		if err != nil {
			return err
		}
		for _, nodes := range drillNodeCounts {
			fmt.Printf("fault drill — %s @ %d nodes (%s, replication %d, window %v)\n",
				name, nodes, dc.size, drillReplication, dc.duration)
			fmt.Printf("%10s  %16s  %12s  %5s  %5s  %5s  %10s  %10s  %9s\n",
				"scenario", "plan", "makespan_ms", "fail", "hedge", "retry", "qps", "p99_ms", "degraded")
			healthySHA := ""
			for _, sc := range drillScenarios() {
				plan, err := faults.Parse(sc.plan)
				if err != nil {
					return err
				}
				eng := cfg.NewCluster(nodes)
				if err := eng.Load(ds); err != nil {
					eng.Close()
					return fmt.Errorf("%s: load: %w", name, err)
				}
				if err := configureFaults(eng, name, plan, drillReplication); err != nil {
					eng.Close()
					return err
				}

				// One direct query: the recovery makespan and the bit-identity
				// check against the healthy run.
				res, err := eng.Run(ctx, engine.Q2Covariance, params)
				if err != nil {
					eng.Close()
					return fmt.Errorf("%s @ %d nodes, %s: %w", name, nodes, sc.name, err)
				}
				row := drillRunJSON{
					System:    name,
					Nodes:     nodes,
					Scenario:  sc.name,
					Faults:    plan.String(),
					Degraded:  res.Degraded,
					AnswerSHA: answerSHA(res.Answer),
				}
				if ci, ok := eng.(clusterInspector); ok {
					c := ci.Cluster()
					row.MakespanMs = c.MakespanSeconds() * 1e3
					row.Failovers = c.Failovers.Load()
					row.Hedges = c.Hedges.Load()
					row.Retries = c.Retries.Load()
				}
				if sc.name == "healthy" {
					healthySHA = row.AnswerSHA
				} else if row.AnswerSHA != healthySHA {
					eng.Close()
					return fmt.Errorf("%s @ %d nodes, %s: answer diverged from healthy run (%s vs %s)",
						name, nodes, sc.name, row.AnswerSHA, healthySHA)
				}

				// A short served window under the same schedule: the drill's
				// QPS/p99 view of recovery cost.
				srv := serve.New(eng, serve.Options{MaxConcurrent: 4, DisableCache: true})
				bres, err := serve.Benchmark(ctx, srv, mix, serve.BenchOptions{
					Clients: 4, Duration: dc.duration, Rate: dc.rate, Seed: dc.seed,
				})
				if err != nil {
					eng.Close()
					return fmt.Errorf("%s @ %d nodes, %s: serve: %w", name, nodes, sc.name, err)
				}
				row.QPS = round1(bres.QPS)
				row.P99Ms = msq(bres.P99)
				row.Queries = bres.Queries
				row.Dropped = bres.Dropped
				row.Shed = bres.Shed
				row.DegradedQ = bres.Degraded
				eng.Close()

				fmt.Printf("%10s  %16s  %12.2f  %5d  %5d  %5d  %10.1f  %10s  %9d\n",
					sc.name, quoteOrDash(row.Faults), row.MakespanMs,
					row.Failovers, row.Hedges, row.Retries, row.QPS, fmtQuantile(bres.P99), row.DegradedQ)
				report.Results = append(report.Results, row)
			}
			fmt.Println()
		}
	}

	if dc.outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(dc.outPath, blob, 0o644); err != nil {
			return err
		}
		if !dc.quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", dc.outPath)
		}
	}
	return nil
}

// answerSHA is the drill's bit-identity fingerprint of a query answer (the
// same JSON-marshal hashing the golden-answer tests use).
func answerSHA(answer any) string {
	blob, err := json.Marshal(answer)
	if err != nil {
		return "unhashable:" + err.Error()
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

func quoteOrDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
