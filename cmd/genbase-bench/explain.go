package main

import (
	"fmt"
	"os"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/cost"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
	"github.com/genbase/genbase/internal/plan"
)

// explainSystem pairs an engine's physical registry with its cost-model
// identity, so each printed operator carries the calibrated estimate the
// router would rank it by.
type explainSystem struct {
	phys plan.Describer
	cfg  cost.Config
}

// runExplain prints the compiled plan of every scenario for every
// configuration — the seven single-node engines and the five virtual-cluster
// engines: operator → arguments → phase tag → the engine's physical
// implementation → the calibrated per-operator cost estimate at the fit
// dims. The output is deterministic (no data is loaded, no timings taken —
// estimates come from the committed coefficients); CI diffs it against the
// committed PLANS.txt so any plan change — a new operator, a capability
// regression, a phase-tag move, a cost-model shift — shows up in review.
func runExplain() error {
	// One scratch dir serves every engine: explain never loads data, the
	// disk-backed engines just need a root to exist.
	dir, err := os.MkdirTemp("", "genbase-explain-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var systems []explainSystem
	for _, cfg := range core.SingleNodeConfigs() {
		eng := cfg.New(1, dir)
		defer eng.Close()
		phys, ok := eng.(plan.Describer)
		if !ok {
			return fmt.Errorf("%s registers no physical operators", cfg.Name)
		}
		systems = append(systems, explainSystem{phys: phys, cfg: cost.Config{System: cfg.Name}})
	}
	fmt.Println("=== single-node configurations ===")
	fmt.Println()
	if err := explainSystems(systems); err != nil {
		return err
	}
	// The multi-node family: same compiled IR, partitioned physical
	// operators over the virtual cluster (node count does not change the
	// plan, only shard placement).
	var clustered []explainSystem
	for _, kind := range multinode.AllKinds() {
		clustered = append(clustered, explainSystem{
			phys: multinode.New(kind, 2),
			cfg:  cost.Config{System: kind.String(), Nodes: 2},
		})
	}
	fmt.Println("=== multi-node configurations (virtual cluster) ===")
	fmt.Println()
	return explainSystems(clustered)
}

func explainSystems(systems []explainSystem) error {
	model := cost.Default()
	for _, sys := range systems {
		phys := sys.phys
		for _, q := range engine.AllScenarios() {
			if !plan.Supports(phys.Capabilities(), q) {
				fmt.Printf("%s plan for %s: unsupported (missing operators:", phys.Name(), q)
				need, _ := plan.OpsFor(q)
				for _, k := range (need &^ phys.Capabilities()).Kinds() {
					fmt.Printf(" %s", k)
				}
				fmt.Printf(")\n\n")
				continue
			}
			pl, err := plan.Compile(q, engine.DefaultParams())
			if err != nil {
				return err
			}
			est, ok := model.Estimate(pl, sys.cfg, cost.FitDims)
			annot := func(int) string { return "" }
			if ok {
				annot = func(i int) string { return fmtEstNs(est.PerOpNs[i]) }
			}
			fmt.Print(plan.ExplainAnnotated(pl, phys, annot))
			if ok {
				fmt.Printf("  estimated cost: %s (%s @ %dp×%dg×%dt)\n",
					fmtEstNs(est.TotalNs), sys.cfg.Key(),
					cost.FitDims.Patients, cost.FitDims.Genes, cost.FitDims.GOTerms)
			}
			fmt.Println()
		}
	}
	return nil
}

// fmtEstNs renders a cost estimate with deterministic, diff-stable units.
func fmtEstNs(ns float64) string {
	switch {
	case ns <= 0:
		return "~0"
	case ns < 1e3:
		return fmt.Sprintf("~%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("~%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("~%.1fms", ns/1e6)
	default:
		return fmt.Sprintf("~%.2fs", ns/1e9)
	}
}
