package main

import (
	"fmt"
	"os"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
	"github.com/genbase/genbase/internal/plan"
)

// runExplain prints the compiled plan of every scenario for every
// configuration — the seven single-node engines and the five virtual-cluster
// engines: operator → arguments → phase tag → the engine's physical
// implementation. The output is deterministic (no data is loaded, no timings
// taken); CI diffs it against the committed PLANS.txt so any plan change — a
// new operator, a capability regression, a phase-tag move — shows up in
// review.
func runExplain() error {
	// One scratch dir serves every engine: explain never loads data, the
	// disk-backed engines just need a root to exist.
	dir, err := os.MkdirTemp("", "genbase-explain-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var systems []plan.Describer
	for _, cfg := range core.SingleNodeConfigs() {
		eng := cfg.New(1, dir)
		defer eng.Close()
		phys, ok := eng.(plan.Describer)
		if !ok {
			return fmt.Errorf("%s registers no physical operators", cfg.Name)
		}
		systems = append(systems, phys)
	}
	fmt.Println("=== single-node configurations ===")
	fmt.Println()
	if err := explainSystems(systems); err != nil {
		return err
	}
	// The multi-node family: same compiled IR, partitioned physical
	// operators over the virtual cluster (node count does not change the
	// plan, only shard placement).
	var clustered []plan.Describer
	for _, kind := range multinode.AllKinds() {
		clustered = append(clustered, multinode.New(kind, 2))
	}
	fmt.Println("=== multi-node configurations (virtual cluster) ===")
	fmt.Println()
	return explainSystems(clustered)
}

func explainSystems(systems []plan.Describer) error {
	for _, phys := range systems {
		for _, q := range engine.AllScenarios() {
			if !plan.Supports(phys.Capabilities(), q) {
				fmt.Printf("%s plan for %s: unsupported (missing operators:", phys.Name(), q)
				need, _ := plan.OpsFor(q)
				for _, k := range (need &^ phys.Capabilities()).Kinds() {
					fmt.Printf(" %s", k)
				}
				fmt.Printf(")\n\n")
				continue
			}
			pl, err := plan.Compile(q, engine.DefaultParams())
			if err != nil {
				return err
			}
			fmt.Print(plan.Explain(pl, phys))
			fmt.Println()
		}
	}
	return nil
}
