package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	"github.com/genbase/genbase/internal/colpage"
)

// The -scan-bench microbench: selective predicates evaluated directly on
// encoded column pages (the DESIGN.md §15 pushdown) against the
// decode-then-filter baseline that materializes the column first. One row
// per (column shape, predicate); the column shapes mirror the benchmark
// tables' distributions so each of the four encodings is exercised by the
// data that actually chooses it.

// scanConfig is the parsed -scan-bench flag set.
type scanConfig struct {
	seed    uint64
	outPath string
	quiet   bool
}

// scanRows is the per-column row count: big enough that per-page setup
// vanishes, small enough to stay cache-resident across reps.
const scanRows = 1 << 20

// scanReps runs each measurement this many times, keeping the fastest.
const scanReps = 5

type scanRowJSON struct {
	Column       string  `json:"column"`
	Encoding     string  `json:"encoding"`
	Rows         int     `json:"rows"`
	DenseBytes   int     `json:"dense_bytes"`
	EncodedBytes int     `json:"encoded_bytes"`
	Pred         string  `json:"pred"`
	Selectivity  float64 `json:"selectivity"`
	// PushdownMRowsPerSec scans the encoded page; DecodeMRowsPerSec decodes
	// every value and filters row by row. Both produce identical selection
	// vectors.
	PushdownMRowsPerSec float64 `json:"pushdown_mrows_per_sec"`
	DecodeMRowsPerSec   float64 `json:"decode_then_filter_mrows_per_sec"`
	// PushdownMBPerSec is the dense-equivalent bandwidth (8 bytes/row over
	// the pushdown scan time): what the encoded scan delivers measured in
	// the decoded column's terms.
	PushdownMBPerSec float64 `json:"pushdown_dense_mb_per_sec"`
	Speedup          float64 `json:"speedup"`
}

type scanReportJSON struct {
	Description string        `json:"description"`
	Seed        uint64        `json:"seed"`
	Rows        int           `json:"rows_per_column"`
	CPUs        int           `json:"host_cpus"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Results     []scanRowJSON `json:"results"`
}

// scanShape is one synthetic column plus the predicate swept over it.
type scanShape struct {
	column string
	pred   colpage.Pred
	predup string // printable predicate
	gen    func(rng *rand.Rand, n int) []int64
}

func scanShapes() []scanShape {
	return []scanShape{
		{
			// Sorted fact-table foreign key: long runs, RLE. The EQ probe
			// skips whole runs — one comparison per run, not per row.
			column: "patientid-sorted",
			pred:   colpage.Pred{Op: colpage.EQ, Val: 57},
			predup: "patientid == 57",
			gen: func(rng *rand.Rand, n int) []int64 {
				out := make([]int64, n)
				for i := range out {
					out[i] = int64(i / 4096)
				}
				return out
			},
		},
		{
			// Low-cardinality wide values (disease ids drawn from a global
			// vocabulary): dictionary pages, EQ via SWAR probes on the
			// packed codes.
			column: "diseaseid-lowcard",
			pred:   colpage.Pred{Op: colpage.EQ, Val: (7 << 40) | 7},
			predup: "diseaseid == vocab[7]",
			gen: func(rng *rand.Rand, n int) []int64 {
				out := make([]int64, n)
				for i := range out {
					v := int64(rng.IntN(40))
					out[i] = v<<40 | v
				}
				return out
			},
		},
		{
			// Small-domain attribute (ages): bit-packed frame of reference,
			// LT via packed-word borrow tests.
			column: "age-packed",
			pred:   colpage.Pred{Op: colpage.LT, Val: 30},
			predup: "age < 30",
			gen: func(rng *rand.Rand, n int) []int64 {
				out := make([]int64, n)
				for i := range out {
					out[i] = int64(rng.IntN(96))
				}
				return out
			},
		},
		{
			// Wide random values: incompressible, stored raw — the pushdown
			// path degenerates to the same dense loop, pinning the floor.
			// The ~50% selectivity keeps the predicate out of the zone
			// min/max fast path, so this measures the scan, not the reject.
			column: "rowid-random",
			pred:   colpage.Pred{Op: colpage.LT, Val: 1 << 62},
			predup: "rowid < 2^62",
			gen: func(rng *rand.Rand, n int) []int64 {
				out := make([]int64, n)
				for i := range out {
					out[i] = int64(rng.Uint64() >> 1)
				}
				return out
			},
		},
	}
}

// bestOf times f over reps runs and returns the fastest (the usual
// microbench guard against scheduler noise).
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func runScanBench(sc scanConfig) error {
	report := scanReportJSON{
		Description: "Scan-throughput microbench (genbase-bench -scan-bench): selective predicates on encoded column pages (internal/colpage, DESIGN.md §15) vs the decode-then-filter baseline. Column shapes mirror the benchmark tables so each encoding is chosen by the data that selects it in practice. Speedup = pushdown rows/sec over decode-then-filter rows/sec; both paths emit identical selection vectors (verified per run).",
		Seed:        sc.seed,
		Rows:        scanRows,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%20s  %8s  %12s  %22s  %11s  %14s  %14s  %10s\n",
		"column", "encoding", "ratio", "pred", "selectivity", "push_mrows/s", "decode_mrows/s", "speedup")
	for _, shape := range scanShapes() {
		rng := rand.New(rand.NewPCG(sc.seed, 0x7363616e)) // "scan"
		vals := shape.gen(rng, scanRows)
		page := colpage.BuildInt(vals)

		var sel []int32
		push := bestOf(scanReps, func() {
			sel = page.Select(shape.pred, sel[:0])
		})
		var dec []int32
		var scratch []int64
		decode := bestOf(scanReps, func() {
			scratch = page.AppendTo(scratch[:0])
			dec = dec[:0]
			for i, v := range scratch {
				if shape.pred.Eval(v) {
					dec = append(dec, int32(i))
				}
			}
		})
		if len(sel) != len(dec) {
			return fmt.Errorf("scan-bench %s: pushdown selected %d rows, decode %d", shape.column, len(sel), len(dec))
		}
		for i := range sel {
			if sel[i] != dec[i] {
				return fmt.Errorf("scan-bench %s: selection vectors diverge at %d", shape.column, i)
			}
		}

		denseBytes := 8 * scanRows
		row := scanRowJSON{
			Column:              shape.column,
			Encoding:            page.Encoding().String(),
			Rows:                scanRows,
			DenseBytes:          denseBytes,
			EncodedBytes:        page.EncodedBytes(),
			Pred:                shape.predup,
			Selectivity:         round4(float64(len(sel)) / scanRows),
			PushdownMRowsPerSec: round2(scanRows / push.Seconds() / 1e6),
			DecodeMRowsPerSec:   round2(scanRows / decode.Seconds() / 1e6),
			PushdownMBPerSec:    round1(float64(denseBytes) / push.Seconds() / (1 << 20)),
			Speedup:             round2(decode.Seconds() / push.Seconds()),
		}
		report.Results = append(report.Results, row)
		fmt.Printf("%20s  %8s  %11.1fx  %22s  %11.4f  %14.1f  %14.1f  %9.1fx\n",
			row.Column, row.Encoding, float64(denseBytes)/float64(row.EncodedBytes),
			row.Pred, row.Selectivity, row.PushdownMRowsPerSec, row.DecodeMRowsPerSec, row.Speedup)
	}

	if sc.outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(sc.outPath, blob, 0o644); err != nil {
			return err
		}
		if !sc.quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", sc.outPath)
		}
	}
	return nil
}

func round4(v float64) float64 { return float64(int64(v*10000+0.5)) / 10000 }
