// Command genbase-bench regenerates the paper's evaluation: every panel of
// Figures 1–5 and Table 1, printed as aligned text tables ("INF" marks runs
// that exceeded the cutoff or an engine's memory budget, the paper's
// horizontal lines; "-" marks queries a configuration cannot run).
//
// Usage:
//
//	genbase-bench -figure 1             # single-node overall times
//	genbase-bench -figure 3 -timeout 1m # multi-node sweep
//	genbase-bench -all                  # everything (used for EXPERIMENTS.md)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/parallel"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate one figure (1-5)")
	table := flag.Int("table", 0, "regenerate one table (1)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	scale := flag.Float64("scale", 1.0, "dataset dimension multiplier")
	seed := flag.Uint64("seed", 1, "generator seed")
	timeout := flag.Duration("timeout", core.DefaultTimeout, "per-query cutoff (the paper's 2 hours, scaled)")
	sizes := flag.String("sizes", "small,medium,large", "comma-separated dataset presets")
	reps := flag.Int("reps", 3, "repetitions per query (minimum kept)")
	extension := flag.String("extension", "", "extension experiment: weak|bigcluster|approxsvd (paper future work)")
	workers := flag.Int("workers", 0, "analytics worker count for every engine (0 = GENBASE_PARALLEL or NumCPU)")
	zerocopy := flag.Bool("zerocopy", true, "use the zero-copy storage→kernel path; false re-enables the historical materialize/copy path (ablation, bitwise-identical answers)")
	compress := flag.Bool("compress", true, "evaluate predicates on compressed column pages (dict-code EQ, RLE run skipping, packed-word tests); false re-enables the decode-then-filter path (ablation, bitwise-identical answers)")
	parallelSweep := flag.String("parallel-sweep", "", "comma-separated worker counts: time the hot kernels at each and report single-core vs multicore speedups (e.g. 1,2,4,8)")
	clients := flag.String("clients", "", "serve mode: comma-separated client counts (e.g. 1,2,4) driving concurrent queries through internal/serve; reports QPS and p50/p99 per engine")
	duration := flag.Duration("duration", 1500*time.Millisecond, "serve mode: measurement window per (system, clients) run")
	rate := flag.Float64("rate", 200, "serve mode: open-loop offered load in arrivals/sec (Poisson inter-arrival gaps from a seeded generator; arrivals finding the bounded queue full are dropped and counted)")
	serveSystems := flag.String("serve-systems", "", "serve mode: comma-separated system names (default: every single-node configuration, or every multi-node one when -nodes has a value > 1)")
	serveNodes := flag.String("nodes", "", "serve mode: comma-separated node counts (e.g. 1,2,4); counts > 1 serve the virtual-cluster variants — answers are identical at any node count (DESIGN.md §13)")
	serveCache := flag.Bool("serve-cache", false, "serve mode: enable the shared result cache (repeated queries answered without re-execution)")
	serveSize := flag.String("serve-size", "small", "serve mode: dataset preset")
	serveOut := flag.String("serve-out", "", "serve mode: write the results JSON (the BENCH_serve.json baseline) to this file")
	faultSpec := flag.String("faults", "", "serve mode with -nodes: deterministic fault plan injected into every query, e.g. \"crash:1@3,flaky:0@2,slow:2x8\" (see internal/faults)")
	replication := flag.Int("replication", 1, "serve mode with -nodes: shard replication factor (2 survives any single-node crash with bit-identical answers)")
	faultDrill := flag.Bool("fault-drill", false, "run the fault-drill sweep: node-kill, straggler, and flaky schedules at 4 and 8 nodes with replication 2, reporting QPS/p99 and recovery makespans")
	ingestRate := flag.Float64("ingest-rate", 0, "serve mode: append rows/sec into a WAL store beside the serve window; each -checkpoint-every rows fold into a new snapshot epoch that is swapped into the server (queries in flight stay pinned to their admission epoch)")
	checkpointEvery := flag.Int("checkpoint-every", 16, "serve mode with -ingest-rate: rows per checkpoint (each checkpoint advances the served epoch)")
	crashDrill := flag.Bool("crash-drill", false, "run the WAL crash-recovery drill: truncate a checkpointed WAL at every record boundary plus a byte stride through the torn tail, verify recovery converges to identical segment digests and snapshot hashes, and serve recovered snapshots at -nodes checking bit-identical answers")
	faultsOut := flag.String("faults-out", "", "fault-drill mode: write the results JSON (the BENCH_faults.json baseline) to this file")
	scanBench := flag.Bool("scan-bench", false, "run the scan-throughput microbench: selective predicates on encoded pages vs decode-then-filter, rows/sec and bytes/sec per encoding")
	scanOut := flag.String("scan-out", "", "scan-bench mode: write the results JSON (the BENCH_scan.json baseline) to this file")
	explain := flag.Bool("explain", false, "print the compiled plan of every scenario per engine (operator → physical impl → phase tag → estimated cost) and exit")
	route := flag.String("route", "", "serve mode: comma-separated routing policies benchmarked over the full fleet on the mixed Q1-Q6 workload, e.g. \"cost,static:colstore-udf\" (cost = per-request cheapest-configuration routing; static:<config> = pin every request to one configuration)")
	routeNodes := flag.Int("route-nodes", 2, "serve mode with -route: virtual-cluster node count for the fleet's multi-node configurations")
	fitCost := flag.Bool("fit-cost", false, "refit the cost-model coefficients from the committed bench baselines and exit (deterministic; CI diffs the output against internal/cost/coeffs.json)")
	fitPipeline := flag.String("fit-pipeline", "BENCH_pipeline.json", "fit-cost mode: pipeline baseline path")
	fitKernels := flag.String("fit-kernels", "BENCH_kernels.json", "fit-cost mode: kernels baseline path")
	fitServe := flag.String("fit-serve", "BENCH_serve.json", "fit-cost mode: serve baseline path")
	fitOut := flag.String("fit-out", "internal/cost/coeffs.json", "fit-cost mode: output coefficient file")
	kernelAutotune := flag.Bool("kernel-autotune", true, "one-time runtime autotune of the packed GEMM tile shape at first large-kernel use; false pins the built-in default tiles (GENBASE_KERNEL_TILES=MCxKCxNC or =off pins from the environment)")
	kernelInfo := flag.Bool("kernel-info", false, "resolve the packed-GEMM tile shape now (running the autotune probe unless disabled), print it with the Go version — the values recorded in the BENCH_kernels.json header — and exit")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	flag.Parse()

	if !*kernelAutotune {
		linalg.SetKernelAutotune(false)
	}
	if *kernelInfo {
		linalg.ResolveKernelTiles()
		fmt.Printf("kernel_tiles: %s\ngo_version: %s\n", linalg.KernelTileInfo(), runtime.Version())
		return
	}

	if *fitCost {
		err := runFitCost(fitConfig{
			pipelinePath: *fitPipeline,
			kernelsPath:  *fitKernels,
			servePath:    *fitServe,
			outPath:      *fitOut,
			quiet:        *quiet,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	if *explain {
		if err := runExplain(); err != nil {
			fatal(err)
		}
		return
	}

	if *workers > 0 {
		parallel.SetDefault(*workers)
		core.SetWorkers(*workers)
	}
	engine.SetZeroCopy(*zerocopy)
	engine.SetCompression(*compress)

	if !*all && *figure == 0 && *table == 0 && *extension == "" && *parallelSweep == "" && *clients == "" && *route == "" && !*faultDrill && !*scanBench && !*crashDrill {
		flag.Usage()
		os.Exit(2)
	}

	// -route alone is a serve-mode run at the default client count.
	if *route != "" && *clients == "" {
		*clients = "4"
	}

	if *scanBench {
		fmt.Fprintln(os.Stderr, "running scan-throughput microbench...")
		if err := runScanBench(scanConfig{seed: *seed, outPath: *scanOut, quiet: *quiet}); err != nil {
			fatal(err)
		}
	}

	if *crashDrill {
		nodes := 4
		if *serveNodes != "" {
			counts, err := parseCounts("-nodes", *serveNodes)
			if err != nil {
				fatal(err)
			}
			nodes = counts[0]
		}
		fmt.Fprintln(os.Stderr, "running WAL crash-recovery drill...")
		err := runCrashDrill(context.Background(), crashDrillConfig{
			size:  datagen.Size(strings.TrimSpace(*serveSize)),
			scale: *scale,
			seed:  *seed,
			nodes: nodes,
			quiet: *quiet,
		})
		if err != nil {
			fatal(err)
		}
	}

	if *faultDrill {
		fmt.Fprintln(os.Stderr, "running fault-drill sweep...")
		err := runFaultDrill(context.Background(), drillConfig{
			duration: *duration,
			rate:     *rate,
			size:     datagen.Size(strings.TrimSpace(*serveSize)),
			scale:    *scale,
			seed:     *seed,
			outPath:  *faultsOut,
			quiet:    *quiet,
		})
		if err != nil {
			fatal(err)
		}
	}

	if *clients != "" {
		counts, err := parseCounts("-clients", *clients)
		if err != nil {
			fatal(err)
		}
		sc := serveConfig{
			clientCounts: counts,
			duration:     *duration,
			rate:         *rate,
			cache:        *serveCache,
			size:         datagen.Size(strings.TrimSpace(*serveSize)),
			scale:        *scale,
			seed:         *seed,
			outPath:      *serveOut,
			quiet:        *quiet,
			faults:       strings.TrimSpace(*faultSpec),
			replication:  *replication,
			route:        strings.TrimSpace(*route),
			routeNodes:   *routeNodes,
			reps:         *reps,
			ingestRate:   *ingestRate,
			ckptEvery:    *checkpointEvery,
		}
		if *serveSystems != "" {
			for _, s := range strings.Split(*serveSystems, ",") {
				sc.systems = append(sc.systems, strings.TrimSpace(s))
			}
		}
		if *serveNodes != "" {
			nodes, err := parseCounts("-nodes", *serveNodes)
			if err != nil {
				fatal(err)
			}
			sc.nodes = nodes
		}
		fmt.Fprintln(os.Stderr, "running serve-mode throughput sweep...")
		if err := runServe(context.Background(), sc); err != nil {
			fatal(err)
		}
	}

	var sz []datagen.Size
	for _, s := range strings.Split(*sizes, ",") {
		sz = append(sz, datagen.Size(strings.TrimSpace(s)))
	}
	suite := &core.Suite{Sizes: sz, Scale: *scale, Seed: *seed, Timeout: *timeout, Repetitions: *reps}
	if !*quiet {
		suite.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  ▸ "+format+"\n", args...)
		}
	}
	ctx := context.Background()
	start := time.Now()

	want := func(f int) bool { return *all || *figure == f }

	var singleOuts []core.Outcome
	if want(1) || want(2) {
		fmt.Fprintln(os.Stderr, "running single-node sweep (figures 1-2)...")
		var err error
		singleOuts, err = suite.RunSingleNode(ctx)
		if err != nil {
			fatal(err)
		}
	}
	if want(1) {
		tables, err := suite.Figure1(singleOuts)
		if err != nil {
			fatal(err)
		}
		printTables(tables)
	}
	if want(2) {
		tables, err := suite.Figure2(singleOuts)
		if err != nil {
			fatal(err)
		}
		printTables(tables)
	}

	var multiOuts []core.Outcome
	if want(3) || want(4) {
		fmt.Fprintln(os.Stderr, "running multi-node sweep (figures 3-4)...")
		var err error
		multiOuts, err = suite.RunMultiNode(ctx)
		if err != nil {
			fatal(err)
		}
	}
	if want(3) {
		printTables(suite.Figure3(multiOuts))
	}
	if want(4) {
		printTables(suite.Figure4(multiOuts))
	}

	if want(5) {
		fmt.Fprintln(os.Stderr, "running coprocessor sweep (figure 5)...")
		outs, err := suite.RunPhi(ctx)
		if err != nil {
			fatal(err)
		}
		tables, err := suite.Figure5(outs)
		if err != nil {
			fatal(err)
		}
		printTables(tables)
	}
	if *all || *table == 1 {
		fmt.Fprintln(os.Stderr, "running multi-node coprocessor sweep (table 1)...")
		outs, err := suite.RunPhiMultiNode(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Println(suite.Table1(outs).Render())
	}
	if *parallelSweep != "" {
		var counts []int
		for _, f := range strings.Split(*parallelSweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad -parallel-sweep worker count %q", f))
			}
			counts = append(counts, v)
		}
		fmt.Fprintln(os.Stderr, "running parallel kernel sweep...")
		tables, err := suite.RunParallelSweep(ctx, counts)
		if err != nil {
			fatal(err)
		}
		printTables(tables)
	}

	switch *extension {
	case "":
	case "weak":
		fmt.Fprintln(os.Stderr, "running weak-scaling extension (paper §5.2)...")
		tables, err := suite.RunWeakScaling(ctx, nil)
		if err != nil {
			fatal(err)
		}
		printTables(tables)
	case "bigcluster":
		fmt.Fprintln(os.Stderr, "running 48-node strong-scaling extension (paper §4.4)...")
		tables, err := suite.RunLargeCluster(ctx, nil)
		if err != nil {
			fatal(err)
		}
		printTables(tables)
	case "approxsvd":
		fmt.Fprintln(os.Stderr, "running approximate-SVD extension (paper §6.3)...")
		tbl, agreement, err := suite.RunApproxSVD(ctx, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl.Render())
		fmt.Print("worst relative singular-value error vs exact:")
		for _, a := range agreement {
			fmt.Printf(" %.2g", a)
		}
		fmt.Println()
	default:
		fatal(fmt.Errorf("unknown extension %q", *extension))
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))
}

func printTables(tables []*core.Table) {
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbase-bench:", err)
	os.Exit(1)
}
