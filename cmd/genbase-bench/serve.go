package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/serve"
)

// serveConfig is the parsed -clients/-duration/... flag set.
type serveConfig struct {
	clientCounts []int
	duration     time.Duration
	think        time.Duration
	systems      []string // empty = all single-node configurations
	cache        bool
	size         datagen.Size
	scale        float64
	seed         uint64
	outPath      string
	quiet        bool
}

// serveMix is the hot-query mix every engine is driven with: the three
// queries all seven single-node configurations support and finish quickly
// (regression, covariance, statistics). A fixed mix keeps QPS comparable
// across engines; biclustering and the Madlib simulated-SQL SVD would turn
// the window into a single-query measurement.
func serveMix(p engine.Params) []serve.Request {
	return []serve.Request{
		{Query: engine.Q1Regression, Params: p},
		{Query: engine.Q2Covariance, Params: p},
		{Query: engine.Q5Statistics, Params: p},
	}
}

// serveRunJSON is one row of the BENCH_serve.json baseline.
type serveRunJSON struct {
	System       string  `json:"system"`
	Clients      int     `json:"clients"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Queries      int64   `json:"queries"`
	CacheHits    int64   `json:"cache_hits"`
	PeakInFlight int64   `json:"peak_inflight"`
}

type serveReportJSON struct {
	Dataset    string         `json:"dataset"`
	Scale      float64        `json:"scale"`
	Seed       uint64         `json:"seed"`
	DurationMs float64        `json:"duration_ms_per_run"`
	ThinkMs    float64        `json:"think_ms"`
	Cache      bool           `json:"cache"`
	CPUs       int            `json:"host_cpus"`
	Mix        []string       `json:"mix"`
	Results    []serveRunJSON `json:"results"`
}

// runServe is the -clients throughput mode: for each system, load the
// dataset once, then sweep the client counts through a serve.Server and
// report QPS and client-observed p50/p99 latency.
func runServe(ctx context.Context, sc serveConfig) error {
	ds, err := datagen.Generate(datagen.Config{Size: sc.size, Scale: sc.scale, Seed: sc.seed})
	if err != nil {
		return err
	}
	params := engine.DefaultParams()
	mix := serveMix(params)

	configs := core.SingleNodeConfigs()
	if len(sc.systems) > 0 {
		configs = configs[:0:0]
		for _, name := range sc.systems {
			cfg, err := core.ConfigByName(name)
			if err != nil {
				return err
			}
			// Only single-node engines satisfy the concurrency contract; the
			// multinode virtual-cluster engines (and the stateful coprocessor
			// model) are serial-only and must not be served.
			if !cfg.SingleNode {
				return fmt.Errorf("%s is not a single-node configuration; serve mode requires engines safe for concurrent queries (DESIGN.md §11)", name)
			}
			configs = append(configs, cfg)
		}
	}

	report := serveReportJSON{
		Dataset:    string(sc.size),
		Scale:      sc.scale,
		Seed:       sc.seed,
		DurationMs: float64(sc.duration) / float64(time.Millisecond),
		ThinkMs:    float64(sc.think) / float64(time.Millisecond),
		Cache:      sc.cache,
		CPUs:       runtime.NumCPU(),
	}
	for _, r := range mix {
		report.Mix = append(report.Mix, r.Query.String())
	}

	for _, cfg := range configs {
		dir, err := os.MkdirTemp("", "genbase-serve-*")
		if err != nil {
			return err
		}
		eng := cfg.New(1, dir)
		if err := eng.Load(ds); err != nil {
			eng.Close()
			os.RemoveAll(dir)
			return fmt.Errorf("%s: load: %w", cfg.Name, err)
		}

		fmt.Printf("serve throughput — %s (%s, cache %s, think %v, window %v)\n",
			cfg.Name, sc.size, onOff(sc.cache), sc.think, sc.duration)
		fmt.Printf("%8s  %10s  %10s  %10s  %9s  %5s\n", "clients", "qps", "p50_ms", "p99_ms", "queries", "peak")
		for _, n := range sc.clientCounts {
			srv := serve.New(eng, serve.Options{MaxConcurrent: n, DisableCache: !sc.cache})
			res, err := serve.Benchmark(ctx, srv, mix, serve.BenchOptions{
				Clients: n, Duration: sc.duration, Think: sc.think,
			})
			if err != nil {
				eng.Close()
				os.RemoveAll(dir)
				return fmt.Errorf("%s @ %d clients: %w", cfg.Name, n, err)
			}
			fmt.Printf("%8d  %10.1f  %10.2f  %10.2f  %9d  %5d\n",
				n, res.QPS, ms(res.P50), ms(res.P99), res.Queries, res.PeakInFlight)
			report.Results = append(report.Results, serveRunJSON{
				System:       res.System,
				Clients:      n,
				QPS:          round1(res.QPS),
				P50Ms:        round2(ms(res.P50)),
				P99Ms:        round2(ms(res.P99)),
				Queries:      res.Queries,
				CacheHits:    res.CacheHits,
				PeakInFlight: res.PeakInFlight,
			})
		}
		fmt.Println()
		eng.Close()
		os.RemoveAll(dir)
	}

	if sc.outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(sc.outPath, blob, 0o644); err != nil {
			return err
		}
		if !sc.quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", sc.outPath)
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// parseClientCounts parses the -clients flag ("4" or "1,2,4").
func parseClientCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -clients count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
