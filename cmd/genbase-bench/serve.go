package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/faults"
	"github.com/genbase/genbase/internal/serve"
)

// serveConfig is the parsed -clients/-duration/... flag set.
type serveConfig struct {
	clientCounts []int
	duration     time.Duration
	rate         float64 // open-loop offered arrivals/sec
	systems      []string // empty = all single-node configurations
	nodes        []int    // node counts; entries > 1 serve the virtual-cluster variant
	cache        bool
	size         datagen.Size
	scale        float64
	seed         uint64
	outPath      string
	quiet        bool
	faults       string // textual fault plan injected into cluster engines
	replication  int    // shard replication factor for cluster engines
}

// faultConfigurable is implemented by the cluster engines: a deterministic
// fault plan plus shard replication, set once before serving begins.
type faultConfigurable interface {
	SetFaults(cluster.Injector)
	SetReplication(int)
}

// configureFaults installs the fault plan and replication factor on an
// engine, erroring when faults are requested of an engine that cannot take
// them (the single-node configurations have no cluster to fail).
func configureFaults(eng engine.Engine, name string, plan *faults.Plan, replication int) error {
	if (plan == nil || plan.Empty()) && replication <= 1 {
		return nil
	}
	fc, ok := eng.(faultConfigurable)
	if !ok {
		return fmt.Errorf("%s cannot run fault drills (no virtual cluster); pass -nodes to serve a cluster variant", name)
	}
	if plan != nil && !plan.Empty() {
		fc.SetFaults(plan)
	}
	fc.SetReplication(replication)
	return nil
}

// serveMix is the hot-query mix every engine is driven with: the three
// queries all seven single-node configurations support and finish quickly
// (regression, covariance, statistics). A fixed mix keeps QPS comparable
// across engines; biclustering and the Madlib simulated-SQL SVD would turn
// the window into a single-query measurement.
func serveMix(p engine.Params) []serve.Request {
	return []serve.Request{
		{Query: engine.Q1Regression, Params: p},
		{Query: engine.Q2Covariance, Params: p},
		{Query: engine.Q5Statistics, Params: p},
	}
}

// serveRunJSON is one row of the BENCH_serve.json baseline. Percentile
// fields are pointers: null marks a window whose sample count could not
// resolve that quantile (serve.Quantile's Insufficient), never a fake max.
type serveRunJSON struct {
	System       string   `json:"system"`
	Nodes        int      `json:"nodes"`
	Clients      int      `json:"clients"`
	QPS          float64  `json:"qps"`
	OfferedQPS   float64  `json:"offered_qps"`
	Dropped      int64    `json:"dropped,omitempty"`
	P50Ms        *float64 `json:"p50_ms"`
	P99Ms        *float64 `json:"p99_ms"`
	P999Ms       *float64 `json:"p999_ms"`
	Queries      int64    `json:"queries"`
	CacheHits    int64    `json:"cache_hits"`
	PeakInFlight int64    `json:"peak_inflight"`
	Shed         int64    `json:"shed,omitempty"`
	Deadlined    int64    `json:"deadlined,omitempty"`
	Degraded     int64    `json:"degraded,omitempty"`
}

type serveReportJSON struct {
	Dataset     string         `json:"dataset"`
	Scale       float64        `json:"scale"`
	Seed        uint64         `json:"seed"`
	DurationMs  float64        `json:"duration_ms_per_run"`
	RateQPS     float64        `json:"offered_rate_qps"`
	Cache       bool           `json:"cache"`
	CPUs        int            `json:"host_cpus"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Faults      string         `json:"faults,omitempty"`
	Replication int            `json:"replication,omitempty"`
	Mix         []string       `json:"mix"`
	Results     []serveRunJSON `json:"results"`
}

// runServe is the -clients throughput mode: for each system, load the
// dataset once, then sweep the client counts through a serve.Server and
// report QPS and client-observed p50/p99 latency.
func runServe(ctx context.Context, sc serveConfig) error {
	ds, err := datagen.Generate(datagen.Config{Size: sc.size, Scale: sc.scale, Seed: sc.seed})
	if err != nil {
		return err
	}
	faultPlan, err := faults.Parse(sc.faults)
	if err != nil {
		return err
	}
	params := engine.DefaultParams()
	mix := serveMix(params)

	// Any -nodes value — including a bare 1 — selects the virtual-cluster
	// variants, so a scaling sweep's 1-node baseline runs the same
	// distributed algorithms as the scaled rows.
	multi := len(sc.nodes) > 0
	nodeCounts := sc.nodes
	if !multi {
		nodeCounts = []int{1}
	}
	configs := core.SingleNodeConfigs()
	if len(sc.systems) > 0 {
		configs = configs[:0:0]
		for _, name := range sc.systems {
			cfg, err := core.ConfigByName(name)
			if err != nil {
				return err
			}
			if multi {
				// A -nodes sweep needs a cluster variant that satisfies the
				// concurrency contract (DESIGN.md §13). The Hadoop wrapper's
				// MR scheduler keeps shared accounting, so it stays
				// serial-only.
				if cfg.NewCluster == nil {
					return fmt.Errorf("%s has no multi-node variant for a -nodes sweep", name)
				}
				if name == "hadoop" {
					return fmt.Errorf("multi-node hadoop is serial-only (shared MR-scheduler accounting); serve the single-node hadoop engine instead")
				}
			} else if !cfg.SingleNode {
				return fmt.Errorf("%s is multi-node only; pass -nodes to serve its virtual-cluster variant", name)
			}
			configs = append(configs, cfg)
		}
	} else if multi {
		configs = configs[:0:0]
		for _, cfg := range core.MultiNodeConfigs() {
			if cfg.Name == "hadoop" {
				continue // serial-only wrapper, see above
			}
			configs = append(configs, cfg)
		}
	}

	report := serveReportJSON{
		Dataset:    string(sc.size),
		Scale:      sc.scale,
		Seed:       sc.seed,
		DurationMs: float64(sc.duration) / float64(time.Millisecond),
		RateQPS:    sc.rate,
		Cache:      sc.cache,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	report.Faults = faultPlan.String()
	report.Replication = sc.replication
	for _, r := range mix {
		report.Mix = append(report.Mix, r.Query.String())
	}

	for _, cfg := range configs {
		for _, nodes := range nodeCounts {
			var eng engine.Engine
			var dir string
			if multi {
				eng = cfg.NewCluster(nodes)
			} else {
				// Only the single-node disk-backed engines need scratch space.
				var err error
				if dir, err = os.MkdirTemp("", "genbase-serve-*"); err != nil {
					return err
				}
				eng = cfg.New(1, dir)
			}
			cleanup := func() {
				eng.Close()
				if dir != "" {
					os.RemoveAll(dir)
				}
			}
			if err := eng.Load(ds); err != nil {
				cleanup()
				return fmt.Errorf("%s: load: %w", cfg.Name, err)
			}
			if err := configureFaults(eng, cfg.Name, faultPlan, sc.replication); err != nil {
				cleanup()
				return err
			}

			fmt.Printf("serve throughput — %s @ %d node(s) (%s, cache %s, open-loop %.0f qps, window %v",
				cfg.Name, nodes, sc.size, onOff(sc.cache), sc.rate, sc.duration)
			if !faultPlan.Empty() {
				fmt.Printf(", faults %q, replication %d", faultPlan, sc.replication)
			}
			fmt.Println(")")
			fmt.Printf("%8s  %10s  %10s  %10s  %10s  %10s  %9s  %7s  %5s  %9s\n",
				"clients", "offered", "qps", "p50_ms", "p99_ms", "p999_ms", "queries", "dropped", "peak", "degraded")
			for _, n := range sc.clientCounts {
				srv := serve.New(eng, serve.Options{MaxConcurrent: n, DisableCache: !sc.cache})
				res, err := serve.Benchmark(ctx, srv, mix, serve.BenchOptions{
					Clients: n, Duration: sc.duration, Rate: sc.rate, Seed: sc.seed,
				})
				if err != nil {
					cleanup()
					return fmt.Errorf("%s @ %d nodes, %d clients: %w", cfg.Name, nodes, n, err)
				}
				fmt.Printf("%8d  %10.1f  %10.1f  %10s  %10s  %10s  %9d  %7d  %5d  %9d\n",
					n, res.OfferedQPS, res.QPS, fmtQuantile(res.P50), fmtQuantile(res.P99),
					fmtQuantile(res.P999), res.Queries, res.Dropped, res.PeakInFlight, res.Degraded)
				report.Results = append(report.Results, serveRunJSON{
					System:       res.System,
					Nodes:        nodes,
					Clients:      n,
					QPS:          round1(res.QPS),
					OfferedQPS:   round1(res.OfferedQPS),
					Dropped:      res.Dropped,
					P50Ms:        msq(res.P50),
					P99Ms:        msq(res.P99),
					P999Ms:       msq(res.P999),
					Queries:      res.Queries,
					CacheHits:    res.CacheHits,
					PeakInFlight: res.PeakInFlight,
					Shed:         res.Shed,
					Deadlined:    res.Deadlined,
					Degraded:     res.Degraded,
				})
			}
			fmt.Println()
			cleanup()
		}
	}

	if sc.outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(sc.outPath, blob, 0o644); err != nil {
			return err
		}
		if !sc.quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", sc.outPath)
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// msq converts a latency quantile to a rounded millisecond value, nil
// (JSON null) when the window's samples could not resolve it.
func msq(q serve.Quantile) *float64 {
	if q.Insufficient {
		return nil
	}
	v := round2(ms(q.Value))
	return &v
}

// fmtQuantile renders a quantile for the text table: "-" marks
// insufficient samples.
func fmtQuantile(q serve.Quantile) string {
	if q.Insufficient {
		return "-"
	}
	return fmt.Sprintf("%.2f", ms(q.Value))
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// parseCounts parses a comma-separated positive-count flag value ("4" or
// "1,2,4"); flag names the option in errors (-clients, -nodes).
func parseCounts(flag, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s count %q", flag, f)
		}
		out = append(out, v)
	}
	return out, nil
}
