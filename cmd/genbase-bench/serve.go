package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/cost"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/faults"
	"github.com/genbase/genbase/internal/plan"
	"github.com/genbase/genbase/internal/serve"
)

// serveConfig is the parsed -clients/-duration/... flag set.
type serveConfig struct {
	clientCounts []int
	duration     time.Duration
	rate         float64  // open-loop offered arrivals/sec
	systems      []string // empty = all single-node configurations
	nodes        []int    // node counts; entries > 1 serve the virtual-cluster variant
	cache        bool
	size         datagen.Size
	scale        float64
	seed         uint64
	outPath      string
	quiet        bool
	faults       string  // textual fault plan injected into cluster engines
	replication  int     // shard replication factor for cluster engines
	route        string  // comma-separated routing policies ("cost,static:<config>"); empty = per-system sweep
	routeNodes   int     // fleet node count for multi-node configurations in -route mode
	reps         int     // -route mode: windows measured per (policy, clients) point; the median-QPS window is reported
	ingestRate   float64 // rows/sec appended into a WAL store beside each window; 0 = no ingest
	ckptEvery    int     // rows per checkpoint when ingest is on
}

// faultConfigurable is implemented by the cluster engines: a deterministic
// fault plan plus shard replication, set once before serving begins.
type faultConfigurable interface {
	SetFaults(cluster.Injector)
	SetReplication(int)
}

// configureFaults installs the fault plan and replication factor on an
// engine, erroring when faults are requested of an engine that cannot take
// them (the single-node configurations have no cluster to fail).
func configureFaults(eng engine.Engine, name string, plan *faults.Plan, replication int) error {
	if (plan == nil || plan.Empty()) && replication <= 1 {
		return nil
	}
	fc, ok := eng.(faultConfigurable)
	if !ok {
		return fmt.Errorf("%s cannot run fault drills (no virtual cluster); pass -nodes to serve a cluster variant", name)
	}
	if plan != nil && !plan.Empty() {
		fc.SetFaults(plan)
	}
	fc.SetReplication(replication)
	return nil
}

// serveMix is the hot-query mix every engine is driven with: the three
// queries all seven single-node configurations support and finish quickly
// (regression, covariance, statistics). A fixed mix keeps QPS comparable
// across engines; biclustering and the Madlib simulated-SQL SVD would turn
// the window into a single-query measurement.
func serveMix(p engine.Params) []serve.Request {
	return []serve.Request{
		{Query: engine.Q1Regression, Params: p},
		{Query: engine.Q2Covariance, Params: p},
		{Query: engine.Q5Statistics, Params: p},
	}
}

// routedMix is the full-breadth mix the fleet router is driven with: all six
// scenarios, Q1–Q6. Unlike serveMix, nothing is excluded for being slow or
// unsupported somewhere — routing is exactly the mechanism that absorbs the
// heterogeneity (a statically pinned configuration must support the whole
// mix, which is itself part of the ablation's point).
func routedMix(p engine.Params) []serve.Request {
	var out []serve.Request
	for _, q := range engine.AllScenarios() {
		out = append(out, serve.Request{Query: q, Params: p})
	}
	return out
}

// configShareJSON is one fleet member's slice of a routed window.
type configShareJSON struct {
	Config string `json:"config"`
	Class  string `json:"class"`
	Served int64  `json:"served"`
	Shed   int64  `json:"shed,omitempty"`
	Failed int64  `json:"failed,omitempty"`
}

// serveRunJSON is one row of the BENCH_serve.json baseline. Percentile
// fields are pointers: null marks a window whose sample count could not
// resolve that quantile (serve.Quantile's Insufficient), never a fake max.
type serveRunJSON struct {
	System       string   `json:"system"`
	Nodes        int      `json:"nodes"`
	Clients      int      `json:"clients"`
	QPS          float64  `json:"qps"`
	OfferedQPS   float64  `json:"offered_qps"`
	Dropped      int64    `json:"dropped,omitempty"`
	P50Ms        *float64 `json:"p50_ms"`
	P99Ms        *float64 `json:"p99_ms"`
	P999Ms       *float64 `json:"p999_ms"`
	Queries      int64    `json:"queries"`
	CacheHits    int64    `json:"cache_hits"`
	PeakInFlight int64    `json:"peak_inflight"`
	Shed         int64    `json:"shed,omitempty"`
	Deadlined    int64    `json:"deadlined,omitempty"`
	Degraded     int64    `json:"degraded,omitempty"`

	// Ingest-mode fields (-ingest-rate): rows appended to the WAL during the
	// window, checkpoints folded, and the epoch the server ended the window
	// serving.
	IngestRows        int64  `json:"ingest_rows,omitempty"`
	IngestCheckpoints int64  `json:"ingest_checkpoints,omitempty"`
	FinalEpoch        uint64 `json:"final_epoch,omitempty"`

	// Routing-mode fields: the policy that produced the row, the row's own
	// measurement window (routed rows may use a longer window than the
	// per-system sweep in the shared header), the hedged re-route count,
	// and every backend's share of the served traffic.
	Route      string            `json:"route,omitempty"`
	DurationMs float64           `json:"duration_ms,omitempty"`
	Rerouted   int64             `json:"rerouted,omitempty"`
	Shares     []configShareJSON `json:"config_shares,omitempty"`
}

type serveReportJSON struct {
	Dataset     string   `json:"dataset"`
	Scale       float64  `json:"scale"`
	Seed        uint64   `json:"seed"`
	DurationMs  float64  `json:"duration_ms_per_run"`
	RateQPS     float64  `json:"offered_rate_qps"`
	Cache       bool     `json:"cache"`
	CPUs        int      `json:"host_cpus"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	Faults      string   `json:"faults,omitempty"`
	Replication int      `json:"replication,omitempty"`
	Mix         []string `json:"mix"`
	// RoutedMix is the mix the -route rows were driven with (all six
	// scenarios), kept separate from Mix because the per-system sweep rows
	// in the same file use the narrower three-query mix.
	RoutedMix []string `json:"routed_mix,omitempty"`
	// RouteNote states how the routed fleet compared against the best
	// statically pinned configuration in this file (written by the -route
	// sweep; see DESIGN.md §16).
	RouteNote string         `json:"route_note,omitempty"`
	Results   []serveRunJSON `json:"results"`
}

// runServe is the -clients throughput mode: for each system, load the
// dataset once, then sweep the client counts through a serve.Server and
// report QPS and client-observed p50/p99 latency.
func runServe(ctx context.Context, sc serveConfig) error {
	if sc.route != "" {
		if sc.ingestRate > 0 {
			return fmt.Errorf("-ingest-rate is not supported in -route mode (pin a configuration with -systems instead)")
		}
		return runServeRouted(ctx, sc)
	}
	if sc.ingestRate > 0 && sc.faults != "" {
		return fmt.Errorf("-ingest-rate cannot run under a fault plan (swapped-in epochs would serve unfaulted)")
	}
	if sc.ingestRate > 0 && sc.ckptEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1")
	}
	ds, err := datagen.Generate(datagen.Config{Size: sc.size, Scale: sc.scale, Seed: sc.seed})
	if err != nil {
		return err
	}
	faultPlan, err := faults.Parse(sc.faults)
	if err != nil {
		return err
	}
	params := engine.DefaultParams()
	mix := serveMix(params)

	// Any -nodes value — including a bare 1 — selects the virtual-cluster
	// variants, so a scaling sweep's 1-node baseline runs the same
	// distributed algorithms as the scaled rows.
	multi := len(sc.nodes) > 0
	nodeCounts := sc.nodes
	if !multi {
		nodeCounts = []int{1}
	}
	configs := core.SingleNodeConfigs()
	if len(sc.systems) > 0 {
		configs = configs[:0:0]
		for _, name := range sc.systems {
			cfg, err := core.ConfigByName(name)
			if err != nil {
				return err
			}
			if multi {
				// A -nodes sweep needs a cluster variant that satisfies the
				// concurrency contract (DESIGN.md §13). The Hadoop wrapper's
				// MR scheduler keeps shared accounting, so it stays
				// serial-only.
				if cfg.NewCluster == nil {
					return fmt.Errorf("%s has no multi-node variant for a -nodes sweep", name)
				}
				if name == "hadoop" {
					return fmt.Errorf("multi-node hadoop is serial-only (shared MR-scheduler accounting); serve the single-node hadoop engine instead")
				}
			} else if !cfg.SingleNode {
				return fmt.Errorf("%s is multi-node only; pass -nodes to serve its virtual-cluster variant", name)
			}
			configs = append(configs, cfg)
		}
	} else if multi {
		configs = configs[:0:0]
		for _, cfg := range core.MultiNodeConfigs() {
			if cfg.Name == "hadoop" {
				continue // serial-only wrapper, see above
			}
			configs = append(configs, cfg)
		}
	}

	report := serveReportJSON{
		Dataset:    string(sc.size),
		Scale:      sc.scale,
		Seed:       sc.seed,
		DurationMs: float64(sc.duration) / float64(time.Millisecond),
		RateQPS:    sc.rate,
		Cache:      sc.cache,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	report.Faults = faultPlan.String()
	report.Replication = sc.replication
	for _, r := range mix {
		report.Mix = append(report.Mix, r.Query.String())
	}

	for _, cfg := range configs {
		for _, nodes := range nodeCounts {
			var eng engine.Engine
			var dir string
			if multi {
				eng = cfg.NewCluster(nodes)
			} else {
				// Only the single-node disk-backed engines need scratch space.
				var err error
				if dir, err = os.MkdirTemp("", "genbase-serve-*"); err != nil {
					return err
				}
				eng = cfg.New(1, dir)
			}
			cleanup := func() {
				eng.Close()
				if dir != "" {
					os.RemoveAll(dir)
				}
			}
			if err := eng.Load(ds); err != nil {
				cleanup()
				return fmt.Errorf("%s: load: %w", cfg.Name, err)
			}
			if err := configureFaults(eng, cfg.Name, faultPlan, sc.replication); err != nil {
				cleanup()
				return err
			}

			fmt.Printf("serve throughput — %s @ %d node(s) (%s, cache %s, open-loop %.0f qps, window %v",
				cfg.Name, nodes, sc.size, onOff(sc.cache), sc.rate, sc.duration)
			if !faultPlan.Empty() {
				fmt.Printf(", faults %q, replication %d", faultPlan, sc.replication)
			}
			fmt.Println(")")
			fmt.Printf("%8s  %10s  %10s  %10s  %10s  %10s  %9s  %7s  %5s  %9s\n",
				"clients", "offered", "qps", "p50_ms", "p99_ms", "p999_ms", "queries", "dropped", "peak", "degraded")
			for _, n := range sc.clientCounts {
				srv := serve.New(eng, serve.Options{MaxConcurrent: n, DisableCache: !sc.cache})
				var ing *ingestSession
				if sc.ingestRate > 0 {
					var err error
					if ing, err = startIngestSession(sc, cfg, nodes, multi, srv, eng, ds); err != nil {
						cleanup()
						return fmt.Errorf("%s @ %d nodes, %d clients: ingest: %w", cfg.Name, nodes, n, err)
					}
				}
				res, err := serve.Benchmark(ctx, srv, mix, serve.BenchOptions{
					Clients: n, Duration: sc.duration, Rate: sc.rate, Seed: sc.seed,
				})
				var ingSum ingestSummary
				if ing != nil {
					var ierr error
					if ingSum, ierr = ing.finish(); ierr != nil && err == nil {
						err = ierr
					}
				}
				if err != nil {
					cleanup()
					return fmt.Errorf("%s @ %d nodes, %d clients: %w", cfg.Name, nodes, n, err)
				}
				fmt.Printf("%8d  %10.1f  %10.1f  %10s  %10s  %10s  %9d  %7d  %5d  %9d\n",
					n, res.OfferedQPS, res.QPS, fmtQuantile(res.P50), fmtQuantile(res.P99),
					fmtQuantile(res.P999), res.Queries, res.Dropped, res.PeakInFlight, res.Degraded)
				if ing != nil {
					fmt.Printf("%8s  ingested %d rows, %d checkpoints (every %d rows), final epoch %d\n",
						"", ingSum.Rows, ingSum.Checkpoints, sc.ckptEvery, ingSum.Epoch)
				}
				report.Results = append(report.Results, serveRunJSON{
					System:            res.System,
					Nodes:             nodes,
					Clients:           n,
					QPS:               round1(res.QPS),
					OfferedQPS:        round1(res.OfferedQPS),
					Dropped:           res.Dropped,
					P50Ms:             msq(res.P50),
					P99Ms:             msq(res.P99),
					P999Ms:            msq(res.P999),
					Queries:           res.Queries,
					CacheHits:         res.CacheHits,
					PeakInFlight:      res.PeakInFlight,
					Shed:              res.Shed,
					Deadlined:         res.Deadlined,
					Degraded:          res.Degraded,
					IngestRows:        ingSum.Rows,
					IngestCheckpoints: ingSum.Checkpoints,
					FinalEpoch:        ingSum.Epoch,
				})
			}
			fmt.Println()
			cleanup()
		}
	}

	if sc.outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(sc.outPath, blob, 0o644); err != nil {
			return err
		}
		if !sc.quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", sc.outPath)
		}
	}
	return nil
}

// runServeRouted is the -route throughput mode: load the entire 14-member
// fleet once (every single-node configuration plus every cluster variant at
// -route-nodes), then for each requested policy sweep the client counts
// through a serve.Router fronting the fleet. "cost" routes each request to
// the predicted-cheapest supported configuration under the calibrated model;
// "static:<config>" pins every request to one member — the ablation baseline
// the routed rows are judged against.
func runServeRouted(ctx context.Context, sc serveConfig) error {
	var policies []serve.Policy
	for _, f := range strings.Split(sc.route, ",") {
		pol, err := serve.ParsePolicy(strings.TrimSpace(f))
		if err != nil {
			return err
		}
		policies = append(policies, pol)
	}
	if sc.faults != "" {
		return fmt.Errorf("fault drills are not supported in -route mode (pin a cluster config with -systems/-nodes instead)")
	}
	ds, err := datagen.Generate(datagen.Config{Size: sc.size, Scale: sc.scale, Seed: sc.seed})
	if err != nil {
		return err
	}
	fleet, err := core.FleetConfigs(sc.routeNodes)
	if err != nil {
		return err
	}

	type member struct {
		core.FleetMember
		eng engine.Engine
		dir string
	}
	var members []*member
	defer func() {
		for _, m := range members {
			m.eng.Close()
			if m.dir != "" {
				os.RemoveAll(m.dir)
			}
		}
	}()
	for _, fm := range fleet {
		dir, err := os.MkdirTemp("", "genbase-fleet-*")
		if err != nil {
			return err
		}
		eng := fm.New(dir)
		m := &member{FleetMember: fm, eng: eng, dir: dir}
		members = append(members, m)
		if err := eng.Load(ds); err != nil {
			return fmt.Errorf("%s: load: %w", fm.Key, err)
		}
	}

	params := engine.DefaultParams()
	mix := routedMix(params)
	report := serveReportJSON{
		Dataset:    string(sc.size),
		Scale:      sc.scale,
		Seed:       sc.seed,
		DurationMs: float64(sc.duration) / float64(time.Millisecond),
		RateQPS:    sc.rate,
		Cache:      sc.cache,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, r := range mix {
		report.Mix = append(report.Mix, r.Query.String())
	}

	// Warm the online model once with a sequential solo probe of every
	// (configuration, query) pair, observed at host wall-clock. The fit
	// priors rank configurations by the committed baselines; the probe
	// grounds them in what each one costs HERE — in particular, the
	// virtual-platform engines whose simulated accounting hides their real
	// wall cost — so the measured windows route from ground truth instead
	// of spending themselves on discovery. Every cost-policy window shares
	// the warmed model, as a deployed fleet would.
	model := cost.NewOnline(cost.Default(), cost.FitDims)
	for _, m := range members {
		for _, r := range mix {
			if !m.eng.Supports(r.Query) {
				continue
			}
			pl, err := plan.Compile(r.Query, r.Params)
			if err != nil {
				return err
			}
			t0 := time.Now()
			if _, err := m.eng.Run(ctx, r.Query, r.Params); err == nil {
				model.ObserveWall(m.Config, pl, float64(time.Since(t0).Nanoseconds()))
			}
		}
	}

	// One discarded warm-up window before any measured policy: the first
	// high-rate window against a freshly loaded fleet pays one-time process
	// costs (heap growth to the serving footprint, faulting in every
	// engine's pages) that later windows don't — measured at ~20% QPS on a
	// 1-CPU host, enough to misrank whichever policy happens to be listed
	// first. The solo model-warming probes above are too gentle to absorb
	// it. No model is attached, so the warm-up cannot perturb the cost
	// policy's online statistics.
	if len(policies) > 0 && len(sc.clientCounts) > 0 {
		n := sc.clientCounts[0]
		backends := make([]serve.Backend, 0, len(members))
		for _, m := range members {
			width := n
			if m.Serial {
				width = 1
			}
			backends = append(backends, serve.Backend{
				Server: serve.New(m.eng, serve.Options{MaxConcurrent: width, DisableCache: true}),
				Config: m.Config,
				Class:  m.Class,
			})
		}
		router, err := serve.NewRouter(backends, serve.RouterOptions{Policy: policies[0], DisableCache: !sc.cache})
		if err != nil {
			return err
		}
		if !sc.quiet {
			fmt.Printf("warm-up window — %s, %d clients, %v (discarded)\n\n", policies[0], n, sc.duration)
		}
		if _, err := serve.Benchmark(ctx, router, mix, serve.BenchOptions{
			Clients: n, Duration: sc.duration, Rate: sc.rate, Seed: sc.seed,
		}); err != nil {
			return fmt.Errorf("warm-up window: %w", err)
		}
	}

	// best tracks, per client count, the cost-routed row and the statically
	// pinned rows for the closing comparison note.
	best := map[int][]routeRowRef{}

	reps := max(sc.reps, 1)
	for _, pol := range policies {
		fmt.Printf("serve fleet — %s over %d configurations (clusters @ %d nodes, %s, cache %s, open-loop %.0f qps, window %v, median of %d)\n",
			pol, len(members), sc.routeNodes, sc.size, onOff(sc.cache), sc.rate, sc.duration, reps)
		fmt.Printf("%8s  %10s  %10s  %10s  %10s  %10s  %9s  %9s  %7s  %5s\n",
			"clients", "offered", "qps", "p50_ms", "p99_ms", "p999_ms", "queries", "rerouted", "shed", "peak")
		for _, n := range sc.clientCounts {
			// Single-host run-to-run noise swamps a lone window (identical
			// traffic splits have measured ±10% apart on a 1-CPU box), so
			// each point runs -reps windows over the identical seeded
			// arrival schedule and reports the median-QPS window. Backends
			// and router are rebuilt per window for clean stats; the cost
			// policy's online model carries across windows, as it would in
			// a long-lived fleet.
			type window struct {
				res serve.BenchResult
				rs  serve.RouterStats
			}
			var windows []window
			for rep := 0; rep < reps; rep++ {
				backends := make([]serve.Backend, 0, len(members))
				for _, m := range members {
					width := n
					if m.Serial {
						width = 1
					}
					backends = append(backends, serve.Backend{
						Server: serve.New(m.eng, serve.Options{MaxConcurrent: width, DisableCache: true}),
						Config: m.Config,
						Class:  m.Class,
					})
				}
				ropts := serve.RouterOptions{Policy: pol, DisableCache: !sc.cache}
				if pol.Static == "" {
					ropts.Model = model
				}
				router, err := serve.NewRouter(backends, ropts)
				if err != nil {
					return err
				}
				res, err := serve.Benchmark(ctx, router, mix, serve.BenchOptions{
					Clients: n, Duration: sc.duration, Rate: sc.rate, Seed: sc.seed,
				})
				if err != nil {
					return fmt.Errorf("%s @ %d clients: %w", pol, n, err)
				}
				windows = append(windows, window{res: res, rs: router.RouterStats()})
			}
			sort.SliceStable(windows, func(a, b int) bool { return windows[a].res.QPS < windows[b].res.QPS })
			med := windows[len(windows)/2]
			res, rs := med.res, med.rs
			fmt.Printf("%8d  %10.1f  %10.1f  %10s  %10s  %10s  %9d  %9d  %7d  %5d\n",
				n, res.OfferedQPS, res.QPS, fmtQuantile(res.P50), fmtQuantile(res.P99),
				fmtQuantile(res.P999), res.Queries, rs.Rerouted, res.Shed, res.PeakInFlight)
			row := serveRunJSON{
				System:       res.System,
				Nodes:        sc.routeNodes,
				Clients:      n,
				QPS:          round1(res.QPS),
				OfferedQPS:   round1(res.OfferedQPS),
				Dropped:      res.Dropped,
				P50Ms:        msq(res.P50),
				P99Ms:        msq(res.P99),
				P999Ms:       msq(res.P999),
				Queries:      res.Queries,
				CacheHits:    res.CacheHits,
				PeakInFlight: res.PeakInFlight,
				Shed:         res.Shed,
				Deadlined:    res.Deadlined,
				Degraded:     res.Degraded,
				Route:        pol.String(),
				DurationMs:   ms(sc.duration),
				Rerouted:     rs.Rerouted,
			}
			for _, sh := range rs.Shares {
				if sh.Served == 0 && sh.Failed == 0 && sh.Stats.Shed == 0 {
					continue // silent fleet member: routing never picked it
				}
				row.Shares = append(row.Shares, configShareJSON{
					Config: sh.Key,
					Class:  sh.Class,
					Served: sh.Served,
					Shed:   sh.Stats.Shed,
					Failed: sh.Failed,
				})
			}
			report.Results = append(report.Results, row)
			best[n] = append(best[n], routeRowRef{run: row, cost: pol.Static == ""})
		}
		fmt.Println()
	}

	report.RouteNote = routeNote(best)
	if report.RouteNote != "" {
		fmt.Println(report.RouteNote)
	}

	if sc.outPath != "" {
		// When the output file already holds a per-system sweep (the
		// committed BENCH_serve.json baseline the cost fit reads), append
		// the routed rows beside it — replacing any previous routed rows —
		// instead of clobbering the sweep.
		report.RoutedMix = report.Mix
		if raw, err := os.ReadFile(sc.outPath); err == nil {
			var existing serveReportJSON
			if json.Unmarshal(raw, &existing) == nil && len(existing.Results) > 0 {
				kept := existing.Results[:0:0]
				for _, r := range existing.Results {
					if r.Route == "" {
						kept = append(kept, r)
					}
				}
				existing.Results = append(kept, report.Results...)
				existing.RoutedMix = report.RoutedMix
				existing.RouteNote = report.RouteNote
				report = existing
			}
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(sc.outPath, blob, 0o644); err != nil {
			return err
		}
		if !sc.quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", sc.outPath)
		}
	}
	return nil
}

// routeRowRef pairs one benchmark row with whether it was cost-routed, for
// the routed-vs-pinned comparison note.
type routeRowRef struct {
	run  serveRunJSON
	cost bool
}

// routeNote renders the routed-vs-pinned comparison for the report header:
// at each client count, the cost-routed fleet against the best statically
// pinned configuration by completed QPS.
func routeNote(best map[int][]routeRowRef) string {
	var clients []int
	for n := range best {
		clients = append(clients, n)
	}
	sort.Ints(clients)
	var parts []string
	for _, n := range clients {
		var costRow *serveRunJSON
		var bestStatic *serveRunJSON
		for i := range best[n] {
			r := &best[n][i]
			if r.cost {
				costRow = &r.run
			} else if bestStatic == nil || r.run.QPS > bestStatic.QPS {
				bestStatic = &r.run
			}
		}
		if costRow == nil || bestStatic == nil {
			continue
		}
		cmp := fmt.Sprintf("%d clients: cost-routed %.1f qps vs best pinned %s %.1f qps",
			n, costRow.QPS, strings.TrimPrefix(bestStatic.Route, "static:"), bestStatic.QPS)
		if costRow.P99Ms != nil && bestStatic.P99Ms != nil {
			cmp += fmt.Sprintf(" (p99 %.2fms vs %.2fms)", *costRow.P99Ms, *bestStatic.P99Ms)
		}
		// Verdict, stated explicitly: ahead, or behind within single-host
		// run-to-run noise (a few percent on this 1-CPU box), or behind.
		switch p99Worse := costRow.P99Ms != nil && bestStatic.P99Ms != nil && *costRow.P99Ms > *bestStatic.P99Ms; {
		case costRow.QPS >= bestStatic.QPS && !p99Worse:
			cmp += " — routed ahead"
		case costRow.QPS >= 0.97*bestStatic.QPS && !p99Worse:
			cmp += " — within run-to-run noise at equal-or-better p99"
		case costRow.QPS >= 0.97*bestStatic.QPS:
			cmp += " — within run-to-run noise"
		default:
			cmp += " — routed behind"
		}
		parts = append(parts, cmp)
	}
	if len(parts) == 0 {
		return ""
	}
	return "routed fleet vs best pinned, equal offered schedule — " + strings.Join(parts, "; ")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// msq converts a latency quantile to a rounded millisecond value, nil
// (JSON null) when the window's samples could not resolve it.
func msq(q serve.Quantile) *float64 {
	if q.Insufficient {
		return nil
	}
	v := round2(ms(q.Value))
	return &v
}

// fmtQuantile renders a quantile for the text table: "-" marks
// insufficient samples.
func fmtQuantile(q serve.Quantile) string {
	if q.Insufficient {
		return "-"
	}
	return fmt.Sprintf("%.2f", ms(q.Value))
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// parseCounts parses a comma-separated positive-count flag value ("4" or
// "1,2,4"); flag names the option in errors (-clients, -nodes).
func parseCounts(flag, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s count %q", flag, f)
		}
		out = append(out, v)
	}
	return out, nil
}
