package main

import (
	"fmt"
	"os"

	"github.com/genbase/genbase/internal/cost"
)

// fitConfig is the -fit-cost flag set: the three committed bench baselines
// in, the cost-model coefficient file out.
type fitConfig struct {
	pipelinePath string
	kernelsPath  string
	servePath    string
	outPath      string
	quiet        bool
}

// runFitCost refits the cost-model coefficients from the committed bench
// JSON. The fit is pure arithmetic over the input bytes (internal/cost.Fit),
// so CI re-runs it against the committed BENCH_*.json and diffs the output
// against the committed internal/cost/coeffs.json — any drift between the
// baselines and the coefficients fails the build.
func runFitCost(fc fitConfig) error {
	read := func(path string) ([]byte, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("fit-cost: %w", err)
		}
		return blob, nil
	}
	pipe, err := read(fc.pipelinePath)
	if err != nil {
		return err
	}
	kern, err := read(fc.kernelsPath)
	if err != nil {
		return err
	}
	srv, err := read(fc.servePath)
	if err != nil {
		return err
	}
	m, err := cost.Fit(pipe, kern, srv)
	if err != nil {
		return err
	}
	blob, err := m.MarshalJSONFile()
	if err != nil {
		return err
	}
	if err := os.WriteFile(fc.outPath, blob, 0o644); err != nil {
		return err
	}
	if !fc.quiet {
		fmt.Fprintf(os.Stderr, "fit %d configuration keys -> %s\n", len(m.Coeffs), fc.outPath)
	}
	return nil
}
