package genbase

// Fault-drill acceptance tests (DESIGN.md §14): with shard replication 2,
// every virtual-cluster configuration answers every query bit-for-bit
// identically to the committed goldens under any single-node crash schedule,
// straggler injection, and transient faults — recovery may only change the
// virtual clocks, never an answer. Run with -race this doubles as the data
// race check for the failover/hedging scheduler.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/faults"
	"github.com/genbase/genbase/internal/multinode"
)

const faultNodes = 4 // the paper's largest cluster: every node owns a shard

// faultPlans is the schedule sweep: every single-node crash at the first and
// a mid-query exec step, a straggler at the hedge threshold, a transient
// fault, and a seeded compound drill.
func faultPlans(t *testing.T) map[string]*faults.Plan {
	t.Helper()
	plans := make(map[string]*faults.Plan)
	for n := 0; n < faultNodes; n++ {
		for _, step := range []int{0, 2} {
			spec := fmt.Sprintf("crash:%d@%d", n, step)
			p, err := faults.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			plans[spec] = p
		}
	}
	plans["slow:1x8"] = faults.New().Slow(1, 8)
	plans["flaky:2@1"] = faults.New().Flaky(2, 1)
	plans["seeded"] = faults.Seeded(faultNodes, 7)
	return plans
}

func readGoldenHashes(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFaultGoldenInvariance is the tentpole acceptance gate: for every
// multi-node configuration, queries executed under every fault schedule with
// replication 2 hash bit-for-bit to the same goldens the fault-free engines
// produce. The full schedule sweep runs the three fast queries; the compound
// seeded drill additionally covers every supported query (biclustering and
// SVD included) on two representative configurations.
func TestFaultGoldenInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault golden sweep is not short")
	}
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	want := readGoldenHashes(t)
	fastQueries := []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q5Statistics}

	runUnderPlan := func(t *testing.T, kind multinode.Kind, plan *faults.Plan, queries []engine.QueryID) {
		t.Helper()
		eng := multinode.New(kind, faultNodes)
		defer eng.Close()
		eng.SetReplication(2)
		eng.SetFaults(plan)
		if err := eng.Load(ds); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if !eng.Supports(q) {
				continue
			}
			res, err := eng.Run(context.Background(), q, p)
			if err != nil {
				t.Fatalf("%s under %q: %v", q, plan, err)
			}
			key := goldenClusterKey(kind.String(), faultNodes, q)
			wantHash, ok := want[key]
			if !ok {
				t.Fatalf("no golden for %s", key)
			}
			if got := goldenAnswerHash(t, res.Answer); got != wantHash {
				t.Errorf("%s under %q: answer diverges from the fault-free golden", key, plan)
			}
		}
	}

	for _, kind := range multinode.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for name, plan := range faultPlans(t) {
				runUnderPlan(t, kind, plan, fastQueries)
				_ = name
			}
		})
	}
	// Full query coverage (biclustering, SVD) under the compound drill on the
	// two paths with the most distinct shard traffic.
	for _, kind := range []multinode.Kind{multinode.PBDR, multinode.SciDB} {
		kind := kind
		t.Run(kind.String()+"/all-queries", func(t *testing.T) {
			runUnderPlan(t, kind, faults.Seeded(faultNodes, 7), engine.AllQueries())
		})
	}
}

// TestFaultRecoveryObservable pins the degradation signal: a crash schedule
// under replication 2 completes, flags the result Degraded, and counts its
// failovers on the cluster — while a healthy run stays clean.
func TestFaultRecoveryObservable(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()

	eng := multinode.New(multinode.PBDR, faultNodes)
	defer eng.Close()
	eng.SetReplication(2)
	if err := eng.Load(ds); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), engine.Q2Covariance, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("healthy run reported Degraded")
	}

	eng.SetFaults(faults.New().Crash(1, 0))
	res, err = eng.Run(context.Background(), engine.Q2Covariance, p)
	if err != nil {
		t.Fatalf("crash schedule with replication 2 must complete: %v", err)
	}
	if !res.Degraded {
		t.Fatal("failed-over run not reported Degraded")
	}
	if got := eng.Cluster().Failovers.Load(); got == 0 {
		t.Fatal("no failovers counted for a crash schedule that must re-home shards")
	}
}

// TestFaultReplicasExhaustedTyped pins the partial-failure taxonomy: without
// replication a crash is a typed hard failure, and with every node crashed
// even replication 2 fails with ErrReplicasExhausted.
func TestFaultReplicasExhaustedTyped(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()

	eng := multinode.New(multinode.PBDR, faultNodes)
	defer eng.Close()
	eng.SetReplication(1)
	eng.SetFaults(faults.New().Crash(1, 0))
	if err := eng.Load(ds); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(context.Background(), engine.Q2Covariance, p)
	if err == nil {
		t.Fatal("unreplicated run survived a node crash")
	}
	if !errors.Is(err, engine.ErrReplicasExhausted) && !errors.Is(err, engine.ErrNodeFailed) {
		t.Fatalf("got %v, want a typed partial-failure error", err)
	}

	all := faults.New()
	for n := 0; n < faultNodes; n++ {
		all.Crash(n, 0)
	}
	eng2 := multinode.New(multinode.PBDR, faultNodes)
	defer eng2.Close()
	eng2.SetReplication(2)
	eng2.SetFaults(all)
	if err := eng2.Load(ds); err != nil {
		t.Fatal(err)
	}
	_, err = eng2.Run(context.Background(), engine.Q2Covariance, p)
	if !errors.Is(err, engine.ErrReplicasExhausted) {
		t.Fatalf("got %v, want ErrReplicasExhausted with every node dead", err)
	}
}
