package genbase

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
)

// The compression acceptance contract (DESIGN.md §15): evaluating
// predicates directly on the encoded column pages — dictionary-code
// equality, RLE run skipping, packed-word range tests — must not change a
// single bit of any answer. Every configuration runs every supported query
// twice against one loaded engine (the knob flips at query time), the two
// answers must be reflect.DeepEqual (exact float64 comparison, no
// tolerance), and the compressed answer must also match the committed
// golden hash, pinning the encoded path to the historical answers.
func TestCompressedAnswersBitwiseIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("compression sweep is not short")
	}
	defer engine.SetCompression(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()

	goldens := make(map[string]string)
	if raw, err := os.ReadFile(goldenPath); err == nil {
		if err := json.Unmarshal(raw, &goldens); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Fatalf("read goldens: %v", err)
	}

	check := func(t *testing.T, eng engine.Engine, key func(engine.QueryID) string) {
		for _, q := range engine.AllQueries() {
			if !eng.Supports(q) {
				continue
			}
			engine.SetCompression(true)
			on, err := eng.Run(context.Background(), q, p)
			if err != nil {
				t.Fatalf("%s compressed: %v", q, err)
			}
			engine.SetCompression(false)
			off, err := eng.Run(context.Background(), q, p)
			if err != nil {
				t.Fatalf("%s decode-then-filter: %v", q, err)
			}
			if !reflect.DeepEqual(on.Answer, off.Answer) {
				t.Errorf("%s: answers diverge between encoded pushdown and decode-then-filter:\n on: %+v\noff: %+v",
					q, on.Answer, off.Answer)
			}
			if want := goldens[key(q)]; want != "" {
				if got := goldenAnswerHash(t, on.Answer); got != want {
					t.Errorf("%s: compressed answer diverges from golden (hash %s != %s)", key(q), got, want)
				}
			}
		}
	}

	for _, cfg := range core.SingleNodeConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			eng := cfg.New(1, t.TempDir())
			defer eng.Close()
			if err := eng.Load(ds); err != nil {
				t.Fatal(err)
			}
			check(t, eng, func(q engine.QueryID) string { return goldenKey(cfg.Name, q) })
		})
	}
	for _, kind := range multinode.AllKinds() {
		for _, nodes := range []int{1, 4} {
			kind, nodes := kind, nodes
			t.Run(kind.String()+"@"+string(rune('0'+nodes))+"n", func(t *testing.T) {
				eng := multinode.New(kind, nodes)
				if err := eng.Load(ds); err != nil {
					t.Fatal(err)
				}
				check(t, eng, func(q engine.QueryID) string { return goldenClusterKey(kind.String(), nodes, q) })
			})
		}
	}
}
