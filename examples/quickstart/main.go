// Quickstart: generate a small dataset, run one query on two systems, and
// compare their cost profiles — the benchmark's core workflow in ~40 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/genbase/genbase"
)

func main() {
	// A small deterministic dataset: 250 patients × 250 genes.
	ds, err := genbase.GenerateDataset(genbase.Small, 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d patients × %d genes, %d GO terms\n\n",
		ds.Dims.Patients, ds.Dims.Genes, ds.Dims.GOTerms)

	// Run the regression query (Q1) on two very different architectures:
	// the native array DBMS and the row store that exports to external R.
	ctx := context.Background()
	for _, system := range []string{"scidb", "postgres-r"} {
		res, err := genbase.RunQuery(ctx, system, ds, genbase.Q1Regression, genbase.DefaultParams())
		if err != nil {
			log.Fatalf("%s: %v", system, err)
		}
		fmt.Printf("%-12s  dm=%-12v copy=%-12v analytics=%-12v total=%v\n",
			system,
			res.Timing.DataManagement,
			res.Timing.Transfer,
			res.Timing.Analytics,
			res.Timing.Total())
	}

	// The answers are identical — only the execution cost differs. That gap,
	// across five queries and ten systems, is what GenBase measures.
	fmt.Println("\nsame answer, different architecture — that's the benchmark.")
}
