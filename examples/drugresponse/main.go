// Drug-response modeling: the workflow behind Q1 of the benchmark, used the
// way a bioinformatician would — fit a regression predicting drug response
// from the expression of a functional gene subset, then inspect model
// quality as the subset widens. Demonstrates parameterizing the benchmark's
// queries rather than running them at fixed defaults.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/genbase/genbase"
)

func main() {
	ds, err := genbase.GenerateDataset(genbase.Small, 1.0, 7)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := genbase.NewSystem("vanilla-r", 1)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Load(ds); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Predicting drug response from gene expression (Q1):")
	fmt.Println()
	fmt.Printf("%-22s %-8s %-10s %s\n", "gene filter", "genes", "R²", "interpretation")

	ctx := context.Background()
	// Sweep the functional-category filter: wider filters admit more of the
	// causal genes, so the fit improves until the model saturates.
	for _, thr := range []int64{100, 250, 500, 750} {
		p := genbase.DefaultParams()
		p.FunctionThreshold = thr
		res, err := eng.Run(ctx, genbase.Q1Regression, p)
		if err != nil {
			log.Fatal(err)
		}
		ans := res.Answer.(*genbase.RegressionAnswer)
		verdict := "weak model"
		switch {
		case ans.RSquared > 0.9:
			verdict = "strong model"
		case ans.RSquared > 0.5:
			verdict = "useful model"
		}
		fmt.Printf("function < %-11d %-8d %-10.4f %s\n",
			thr, len(ans.SelectedGenes), ans.RSquared, verdict)
	}

	fmt.Println()
	fmt.Printf("the generator planted %d causal genes; filters that include more of\n", len(ds.CausalGenes))
	fmt.Println("them explain more drug-response variance — exactly the signal a real")
	fmt.Println("microarray study hunts for.")
}
