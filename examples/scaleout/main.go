// Scale-out study: run the regression query on the distributed
// configurations at 1, 2 and 4 simulated nodes and watch how (sub-linearly)
// they scale — a miniature of the paper's Figures 3a and 4, including the
// architectural reasons: pbdR distributes the Gram computation across nodes,
// while the UDF configuration must gather everything to a coordinator.
// Regression is the natural choice: it touches every patient row, and in the
// paper it "was the only task that all systems could reliably finish within
// the allotted time for 2- and 4-node clusters".
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/genbase/genbase"
)

func main() {
	// The medium preset gives analytics enough weight for scaling to show.
	ds, err := genbase.GenerateDataset(genbase.Medium, 1.0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d patients × %d genes\n\n", ds.Dims.Patients, ds.Dims.Genes)
	fmt.Println("linear regression query (Q1), virtual cluster makespans:")
	fmt.Println()
	fmt.Printf("%-16s %-12s %-12s %-12s %s\n", "system", "1 node", "2 nodes", "4 nodes", "4-node speedup")

	ctx := context.Background()
	p := genbase.DefaultParams()
	for _, system := range []string{"pbdr", "colstore-pbdr", "scidb", "colstore-udf"} {
		var times [3]float64
		for i, nodes := range []int{1, 2, 4} {
			eng, err := genbase.NewClusterSystem(system, nodes)
			if err != nil {
				log.Fatal(err)
			}
			if err := eng.Load(ds); err != nil {
				log.Fatal(err)
			}
			// Min of three repetitions: single-core wall-clock measurements
			// are noisy, and min is the robust choice for comparisons.
			best := math.Inf(1)
			for rep := 0; rep < 3; rep++ {
				res, err := eng.Run(ctx, genbase.Q1Regression, p)
				if err != nil {
					log.Fatal(err)
				}
				if s := res.Timing.Total().Seconds(); s < best {
					best = s
				}
			}
			times[i] = best
			eng.Close()
		}
		fmt.Printf("%-16s %-12.4f %-12.4f %-12.4f %.2fx\n",
			system, times[0], times[1], times[2], times[0]/times[2])
	}

	fmt.Println()
	fmt.Println("the paper's findings in miniature: nobody scales linearly, the")
	fmt.Println("ScaLAPACK-backed analytics (pbdr) scale best, and configurations")
	fmt.Println("that gather to a coordinator (colstore-udf) scale worst.")
}
