// Gene-set enrichment analysis: the benchmark's Q5 workflow used for real
// discovery — sample patients, rank genes by expression, and find GO terms
// whose members cluster at the top of the ranking (Wilcoxon rank-sum), then
// check the hits against the generator's planted enriched terms.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/genbase/genbase"
)

func main() {
	ds, err := genbase.GenerateDataset(genbase.Small, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}

	// The array DBMS runs the statistics query fastest in the paper; use it.
	eng, err := genbase.NewSystem("scidb", 1)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Load(ds); err != nil {
		log.Fatal(err)
	}

	p := genbase.DefaultParams()
	res, err := eng.Run(context.Background(), genbase.Q5Statistics, p)
	if err != nil {
		log.Fatal(err)
	}
	ans := res.Answer.(*genbase.StatsAnswer)

	planted := map[int]bool{}
	for _, t := range ds.EnrichedTerms {
		planted[t] = true
	}

	// FDR-correct the p-values: with hundreds of terms tested at once, raw
	// p-values overstate significance.
	ps := make([]float64, len(ans.Terms))
	for i, ts := range ans.Terms {
		ps[i] = ts.P
	}
	qs := genbase.BenjaminiHochberg(ps)

	fmt.Printf("enrichment over %d GO terms (%d sampled patients):\n\n",
		len(ans.Terms), ans.SampledPatients)
	fmt.Printf("%-8s %-10s %-12s %-12s %s\n", "term", "z", "p", "q (FDR)", "planted?")
	hits := 0
	top := ans.TopEnriched(10)
	for _, ts := range top {
		mark := ""
		if planted[ts.Term] {
			mark = "← planted enriched term"
			hits++
		}
		fmt.Printf("GO %-5d %+-10.3f %-12.3g %-12.3g %s\n", ts.Term, ts.Z, ts.P, qs[ts.Term], mark)
	}
	fmt.Printf("\nrecovered %d of %d planted terms in the top %d — the statistical\n",
		hits, len(ds.EnrichedTerms), len(top))
	fmt.Println("pipeline finds the biology the generator hid in the expression data.")
	fmt.Printf("\nquery cost: dm=%v analytics=%v\n", res.Timing.DataManagement, res.Timing.Analytics)
}
