package genbase

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
)

// -update regenerates testdata/golden_answers.json from the current code.
// The committed file was generated from the pre-refactor engines (the
// hand-written per-engine query methods), so the golden test proves the
// plan-compiled path reproduces the historical answers bit for bit.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_answers.json")

const goldenPath = "testdata/golden_answers.json"

// goldenAnswerHash canonicalizes an answer through its typed JSON encoding
// (Go's float64 encoding is shortest-round-trip, i.e. bitwise faithful) and
// hashes it, so the golden file stays small while still asserting exact
// answer identity.
func goldenAnswerHash(t *testing.T, answer any) string {
	t.Helper()
	b, err := json.Marshal(answer)
	if err != nil {
		t.Fatalf("marshal answer: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func goldenKey(system string, q engine.QueryID) string {
	return fmt.Sprintf("%s/%s", system, q)
}

func goldenClusterKey(system string, nodes int, q engine.QueryID) string {
	return fmt.Sprintf("%s@%dn/%s", system, nodes, q)
}

// TestPlanPathMatchesPreRefactorGoldens runs the five paper queries on every
// single-node configuration and asserts the answers are bitwise identical to
// the answers the pre-refactor (per-engine hardcoded query methods) code
// produced on the same dataset. This is the acceptance gate for the logical
// query-plan refactor: compiling (QueryID, Params) into the shared operator
// IR and executing it through each engine's physical operators must not
// change a single bit of any answer.
func TestPlanPathMatchesPreRefactorGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not short")
	}
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()

	got := make(map[string]string)
	for _, cfg := range core.SingleNodeConfigs() {
		eng := cfg.New(1, t.TempDir())
		defer eng.Close()
		if err := eng.Load(ds); err != nil {
			t.Fatalf("%s load: %v", cfg.Name, err)
		}
		for _, q := range engine.AllQueries() {
			if !eng.Supports(q) {
				continue
			}
			res, err := eng.Run(context.Background(), q, p)
			if err != nil {
				t.Fatalf("%s %s: %v", cfg.Name, q, err)
			}
			got[goldenKey(cfg.Name, q)] = goldenAnswerHash(t, res.Answer)
		}
	}

	// The five multi-node configurations, at one and four nodes. The
	// committed hashes were generated from the pre-refactor hardcoded
	// multinode.Run at 4 nodes; because the distributed plan layer fixed the
	// numeric shard partition at distlinalg.DefaultNumericShards (= the
	// paper's largest cluster), the 1-node entries pin the same answers —
	// answers are invariant to node count by construction, and at 4 nodes
	// they coincide bit for bit with the pre-refactor per-node partitioning
	// (DESIGN.md §13).
	for _, kind := range multinode.AllKinds() {
		for _, nodes := range []int{1, 4} {
			eng := multinode.New(kind, nodes)
			if err := eng.Load(ds); err != nil {
				t.Fatalf("%s/%d load: %v", kind, nodes, err)
			}
			for _, q := range engine.AllQueries() {
				if !eng.Supports(q) {
					continue
				}
				res, err := eng.Run(context.Background(), q, p)
				if err != nil {
					t.Fatalf("%s@%dn %s: %v", kind, nodes, q, err)
				}
				got[goldenClusterKey(kind.String(), nodes, q)] = goldenAnswerHash(t, res.Answer)
			}
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden answers to %s", len(got), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (run with -update to regenerate): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("%s: no answer produced (query no longer supported?)", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: answer diverges from pre-refactor golden (hash %s != %s)", k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Logf("note: %s has no pre-refactor golden (new scenario)", k)
		}
	}
}
