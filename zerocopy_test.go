package genbase

import (
	"context"
	"errors"
	"os"
	"reflect"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
)

// The zero-copy acceptance contract: every engine must produce bitwise-
// identical answers with the zero-copy path on and off, for every query it
// supports. reflect.DeepEqual compares the answer structs' float64 payloads
// exactly (no tolerance), so any divergence in accumulation order or cell
// values fails here.
func TestZeroCopyAnswersBitwiseIdentical(t *testing.T) {
	defer engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	queries := []engine.QueryID{
		engine.Q1Regression, engine.Q2Covariance, engine.Q3Biclustering,
		engine.Q4SVD, engine.Q5Statistics,
	}

	run := func(t *testing.T, name string, zc bool, q engine.QueryID) (*engine.Result, error) {
		engine.SetZeroCopy(zc)
		cfg, err := core.ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "genbase-zc-*")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		eng := cfg.New(1, dir)
		defer eng.Close()
		if !eng.Supports(q) {
			return nil, engine.ErrUnsupported
		}
		if err := eng.Load(ds); err != nil {
			t.Fatal(err)
		}
		return eng.Run(context.Background(), q, p)
	}

	for _, cfg := range core.SingleNodeConfigs() {
		for _, q := range queries {
			name, q := cfg.Name, q
			t.Run(name+"/"+q.String(), func(t *testing.T) {
				on, errOn := run(t, name, true, q)
				off, errOff := run(t, name, false, q)
				if errors.Is(errOn, engine.ErrUnsupported) && errors.Is(errOff, engine.ErrUnsupported) {
					t.Skip("query unsupported")
				}
				if errOn != nil || errOff != nil {
					t.Fatalf("zerocopy err=%v, copy err=%v", errOn, errOff)
				}
				if !reflect.DeepEqual(on.Answer, off.Answer) {
					t.Fatalf("answers diverge between zero-copy and copy paths:\n zc: %+v\n cp: %+v", on.Answer, off.Answer)
				}
			})
		}
	}
}
