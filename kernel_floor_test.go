// Kernel perf-floor smoke (DESIGN.md §17): the packed register-tiled GEMM
// must not regress back under the naive triple loop — the exact failure the
// pre-packing "blocked" kernel shipped with (BENCH_kernels.json history).
// Gated behind GENBASE_PERF_FLOOR=1 because wall-clock assertions are only
// meaningful on an otherwise idle host; CI sets the gate.
package genbase

import (
	"os"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/linalg"
)

// TestKernelPerfFloor512 asserts packed-serial ns/op ≤ naive ns/op at
// 512×512×512 (best of three, interleaved), after forcing the one-time tile
// autotune outside the timed region. It also re-checks the bitwise contract
// on the same operands so a floor failure is never confused with a
// correctness failure.
func TestKernelPerfFloor512(t *testing.T) {
	if os.Getenv("GENBASE_PERF_FLOOR") == "" {
		t.Skip("set GENBASE_PERF_FLOOR=1 to run the wall-clock kernel floor")
	}
	a := randomMatrix(512, 512, 26)
	b := randomMatrix(512, 512, 27)
	linalg.ResolveKernelTiles()
	t.Logf("tiles: %s", linalg.KernelTileInfo())

	want := linalg.MulNaive(a, b) // warmup naive
	got := linalg.MulBlockedP(a, b, 1)
	if !bitsEqual(got, want) {
		t.Fatal("packed GEMM is not bitwise identical to MulNaive at 512³")
	}

	best := func(f func()) time.Duration {
		bst := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < bst {
				bst = d
			}
		}
		return bst
	}
	naive := best(func() { linalg.MulNaive(a, b) })
	packed := best(func() { linalg.MulBlockedP(a, b, 1) })
	t.Logf("naive %v, packed-serial %v (%.2fx)", naive, packed,
		float64(naive)/float64(packed))
	if packed > naive {
		t.Fatalf("perf floor broken: packed-serial %v slower than naive %v at 512³",
			packed, naive)
	}
}

func bitsEqual(a, b *linalg.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			va, vb := ra[j], rb[j]
			if va != vb && (va == va || vb == vb) { // NaN == NaN bit-agnostic: both NaN ok
				return false
			}
		}
	}
	return true
}
