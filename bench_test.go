// Benchmarks regenerating the paper's evaluation, one per figure panel
// family and table, plus the ablation benches called out in DESIGN.md §8.
//
//	go test -bench=. -benchmem
//
// Figure benches run the small preset so the full suite stays fast; the
// genbase-bench command runs the full small/medium/large sweep. Multi-node
// benches report the virtual-cluster makespan as the custom metric
// "virtual-sec/op" (see DESIGN.md §3.3); wall-clock ns/op for those is the
// serial execution cost of the simulation itself.
package genbase

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/arraydb"
	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/colstore"
	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/multinode"
	"github.com/genbase/genbase/internal/xeonphi"
)

var benchDataset = sync0nceDataset()

func sync0nceDataset() func(b *testing.B) *datagen.Dataset {
	var ds *datagen.Dataset
	return func(b *testing.B) *datagen.Dataset {
		if ds == nil {
			var err error
			ds, err = datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
		}
		return ds
	}
}

// loadedEngine builds and loads a single-node engine for a configuration.
func loadedEngine(b *testing.B, name string) engine.Engine {
	b.Helper()
	cfg, err := core.ConfigByName(name)
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "genbase-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	eng := cfg.New(1, dir)
	b.Cleanup(func() { eng.Close() })
	if err := eng.Load(benchDataset(b)); err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchQuery runs one query per iteration on every single-node system that
// supports it — the engine behind one Figure 1 panel.
func benchQuery(b *testing.B, q engine.QueryID) {
	p := engine.DefaultParams()
	for _, cfg := range core.SingleNodeConfigs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			b.ReportAllocs()
			eng := loadedEngine(b, cfg.Name)
			if !eng.Supports(q) {
				b.Skip("query unsupported by this configuration")
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ctx, q, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure1Regression(b *testing.B)   { benchQuery(b, engine.Q1Regression) }
func BenchmarkFigure1Biclustering(b *testing.B) { benchQuery(b, engine.Q3Biclustering) }
func BenchmarkFigure1SVD(b *testing.B)          { benchQuery(b, engine.Q4SVD) }
func BenchmarkFigure1Covariance(b *testing.B)   { benchQuery(b, engine.Q2Covariance) }
func BenchmarkFigure1Statistics(b *testing.B)   { benchQuery(b, engine.Q5Statistics) }

// BenchmarkFigure2RegressionBreakdown reports the DM and analytics phases of
// the regression query as custom metrics per system (Figure 2a–b).
func BenchmarkFigure2RegressionBreakdown(b *testing.B) {
	p := engine.DefaultParams()
	for _, cfg := range core.SingleNodeConfigs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			b.ReportAllocs()
			eng := loadedEngine(b, cfg.Name)
			ctx := context.Background()
			var dm, an float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(ctx, engine.Q1Regression, p)
				if err != nil {
					b.Fatal(err)
				}
				dm += res.Timing.DataManagement.Seconds() + res.Timing.Transfer.Seconds()
				an += res.Timing.Analytics.Seconds()
			}
			b.ReportMetric(dm/float64(b.N), "dm-sec/op")
			b.ReportMetric(an/float64(b.N), "analytics-sec/op")
		})
	}
}

// benchMultiNode runs one query on the virtual cluster across node counts,
// reporting the simulated makespan (Figures 3–4).
func benchMultiNode(b *testing.B, q engine.QueryID) {
	p := engine.DefaultParams()
	for _, cfg := range core.MultiNodeConfigs() {
		for _, nodes := range []int{1, 2, 4} {
			cfg, nodes := cfg, nodes
			b.Run(fmt.Sprintf("%s/nodes=%d", cfg.Name, nodes), func(b *testing.B) {
				b.ReportAllocs()
				eng := cfg.NewCluster(nodes)
				defer eng.Close()
				if !eng.Supports(q) {
					b.Skip("query unsupported by this configuration")
				}
				if err := eng.Load(benchDataset(b)); err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				var virtual float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := eng.Run(ctx, q, p)
					if err != nil {
						b.Fatal(err)
					}
					virtual += res.Timing.Total().Seconds()
				}
				b.ReportMetric(virtual/float64(b.N), "virtual-sec/op")
			})
		}
	}
}

func BenchmarkFigure3Regression(b *testing.B) { benchMultiNode(b, engine.Q1Regression) }
func BenchmarkFigure3Covariance(b *testing.B) { benchMultiNode(b, engine.Q2Covariance) }
func BenchmarkFigure3SVD(b *testing.B)        { benchMultiNode(b, engine.Q4SVD) }
func BenchmarkFigure3Statistics(b *testing.B) { benchMultiNode(b, engine.Q5Statistics) }

// Figure 3b (biclustering) is separate: it is the slowest panel, so it runs
// at 1 and 4 nodes only.
func BenchmarkFigure3Biclustering(b *testing.B) {
	p := engine.DefaultParams()
	for _, nodes := range []int{1, 4} {
		nodes := nodes
		b.Run(fmt.Sprintf("pbdr/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			eng := multinode.New(multinode.PBDR, nodes)
			if err := eng.Load(benchDataset(b)); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ctx, engine.Q3Biclustering, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4RegressionBreakdown reports the multi-node DM/analytics
// split (Figure 4a–b) as virtual-time metrics.
func BenchmarkFigure4RegressionBreakdown(b *testing.B) {
	p := engine.DefaultParams()
	for _, cfg := range core.MultiNodeConfigs() {
		for _, nodes := range []int{1, 4} {
			cfg, nodes := cfg, nodes
			b.Run(fmt.Sprintf("%s/nodes=%d", cfg.Name, nodes), func(b *testing.B) {
				b.ReportAllocs()
				eng := cfg.NewCluster(nodes)
				defer eng.Close()
				if err := eng.Load(benchDataset(b)); err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				var dm, an float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := eng.Run(ctx, engine.Q1Regression, p)
					if err != nil {
						b.Fatal(err)
					}
					dm += res.Timing.DataManagement.Seconds()
					an += res.Timing.Analytics.Seconds()
				}
				b.ReportMetric(dm/float64(b.N), "virtual-dm-sec/op")
				b.ReportMetric(an/float64(b.N), "virtual-analytics-sec/op")
			})
		}
	}
}

// BenchmarkFigure5XeonPhi compares host SciDB against the coprocessor model
// per query (Figure 5a–d), reporting the modeled total as the metric.
func BenchmarkFigure5XeonPhi(b *testing.B) {
	p := engine.DefaultParams()
	queries := map[string]engine.QueryID{
		"biclustering": engine.Q3Biclustering,
		"svd":          engine.Q4SVD,
		"covariance":   engine.Q2Covariance,
		"statistics":   engine.Q5Statistics,
	}
	for _, system := range []string{"scidb", "scidb-phi"} {
		for name, q := range queries {
			system, name, q := system, name, q
			b.Run(system+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				eng := loadedEngine(b, system)
				ctx := context.Background()
				var total float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := eng.Run(ctx, q, p)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Timing.Total().Seconds()
				}
				b.ReportMetric(total/float64(b.N), "modeled-sec/op")
			})
		}
	}
}

// BenchmarkTable1PhiSpeedup reports the analytics-phase speedup of the Phi
// configuration per query and node count (Table 1) as the metric "speedup".
// Note: like all benches in this file it runs the small preset, where
// per-iteration PCIe latency dominates tiny kernels and speedups can drop
// below 1 (the paper's own small-dataset observation). The paper's actual
// Table 1 uses the large dataset — regenerate it with
// `genbase-bench -table 1`.
func BenchmarkTable1PhiSpeedup(b *testing.B) {
	p := engine.DefaultParams()
	queries := map[string]engine.QueryID{
		"covariance":   engine.Q2Covariance,
		"svd":          engine.Q4SVD,
		"statistics":   engine.Q5Statistics,
		"biclustering": engine.Q3Biclustering,
	}
	for name, q := range queries {
		for _, nodes := range []int{1, 2} {
			name, q, nodes := name, q, nodes
			b.Run(fmt.Sprintf("%s/nodes=%d", name, nodes), func(b *testing.B) {
				b.ReportAllocs()
				host := multinode.New(multinode.SciDB, nodes)
				phi := multinode.New(multinode.SciDBPhi, nodes)
				if err := host.Load(benchDataset(b)); err != nil {
					b.Fatal(err)
				}
				if err := phi.Load(benchDataset(b)); err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				var ratio float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					hres, err := host.Run(ctx, q, p)
					if err != nil {
						b.Fatal(err)
					}
					pres, err := phi.Run(ctx, q, p)
					if err != nil {
						b.Fatal(err)
					}
					h := hres.Timing.Analytics.Seconds()
					d := pres.Timing.Analytics.Seconds() + pres.Timing.Transfer.Seconds()
					if d > 0 {
						ratio += h / d
					}
				}
				b.ReportMetric(ratio/float64(b.N), "speedup")
			})
		}
	}
}

// --- parallel kernel benches (DESIGN.md §9) ---
//
// These compare the serial path (one worker) against the multicore path on
// the Large preset's hot shapes, and the naive oracle against both. They are
// -cpu aware: `go test -bench Kernel -cpu 1,2,4,8` reruns each with
// GOMAXPROCS set accordingly, and the parallel variants size their worker
// pool from GOMAXPROCS — so one sweep yields the single-core vs multicore
// speedup curve. BENCH_kernels.json records a baseline.

// kernelBenchDims is the Large preset's expression-matrix shape (patients ×
// genes at the repo's 1/20 scale).
const (
	kernelRows = 2000
	kernelCols = 1500
)

func BenchmarkKernelGEMM(b *testing.B) {
	a := randomMatrix(kernelRows, kernelCols, 21)
	w := randomMatrix(kernelCols, 256, 22)
	linalg.ResolveKernelTiles() // one-time tile autotune outside the timed region
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MulNaive(a, w)
		}
	})
	b.Run("packed-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MulBlockedP(a, w, 1)
		}
	})
	b.Run("packed-parallel", func(b *testing.B) {
		b.ReportAllocs()
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			linalg.MulBlockedP(a, w, workers)
		}
	})
}

// BenchmarkKernelGEMM512 is the perf-floor shape (DESIGN.md §17): packed
// serial GEMM vs the naive oracle at 512³, the pair the CI kernel floor
// (TestKernelPerfFloor512) asserts on.
func BenchmarkKernelGEMM512(b *testing.B) {
	a := randomMatrix(512, 512, 26)
	w := randomMatrix(512, 512, 27)
	linalg.ResolveKernelTiles()
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MulNaive(a, w)
		}
	})
	b.Run("packed-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MulBlockedP(a, w, 1)
		}
	})
}

func BenchmarkKernelGram(b *testing.B) {
	a := randomMatrix(kernelRows, kernelCols/2, 23)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.MulATAP(a, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			linalg.MulATAP(a, workers)
		}
	})
}

func BenchmarkKernelCovariance(b *testing.B) {
	a := randomMatrix(kernelRows, kernelCols/2, 24)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linalg.CovarianceP(a, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			linalg.CovarianceP(a, workers)
		}
	})
}

func BenchmarkKernelSVD(b *testing.B) {
	a := randomMatrix(kernelRows, 400, 25)
	for _, serial := range []bool{true, false} {
		name, workers := "parallel", runtime.GOMAXPROCS(0)
		if serial {
			name, workers = "serial", 1
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.TopKSVD(a, 10, linalg.LanczosOptions{Reorthogonalize: true, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benches (DESIGN.md §8) ---

func randomMatrix(r, c int, seed uint64) *linalg.Matrix {
	rng := datagen.NewRNG(seed)
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// BenchmarkAblationMatmulBlocking: cache-blocked vs naive GEMM. The naive
// loop uses the cache-friendly ikj order, so blocking only pays once the
// working set exceeds L2 — the sweep shows where the crossover falls.
func BenchmarkAblationMatmulBlocking(b *testing.B) {
	for _, n := range []int{128, 256, 768} {
		a := randomMatrix(n, n, 1)
		c := randomMatrix(n, n, 2)
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linalg.MulNaive(a, c)
			}
		})
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linalg.MulBlocked(a, c)
			}
		})
	}
}

// BenchmarkAblationLanczosReorth: full reorthogonalization vs none.
func BenchmarkAblationLanczosReorth(b *testing.B) {
	a := randomMatrix(400, 150, 3)
	for _, reorth := range []bool{true, false} {
		reorth := reorth
		name := "reorthogonalized"
		if !reorth {
			name = "plain"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.TopKSVD(a, 10, linalg.LanczosOptions{Reorthogonalize: reorth, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationColumnCompression: predicate scans on RLE vs raw layout.
func BenchmarkAblationColumnCompression(b *testing.B) {
	n := 1 << 20
	sorted := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i / 4096) // long runs → RLE
	}
	random := make([]int64, n)
	rng := datagen.NewRNG(9)
	for i := range random {
		random[i] = int64(rng.Uint64() % 1_000_003)
	}
	rle := colstore.BuildIntColumn(sorted)
	raw := colstore.BuildIntColumn(random)
	pred := func(v int64) bool { return v%5 == 0 }
	b.Run("rle", func(b *testing.B) {
		b.ReportAllocs()
		var sel []int32
		for i := 0; i < b.N; i++ {
			sel = rle.Select(pred, sel[:0])
		}
	})
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		var sel []int32
		for i := 0; i < b.N; i++ {
			sel = raw.Select(pred, sel[:0])
		}
	})
}

// BenchmarkAblationExportFormat: text COPY vs binary UDF hand-off for the
// same matrix (the "+ R" glue cost).
func BenchmarkAblationExportFormat(b *testing.B) {
	m := randomMatrix(250, 250, 5)
	ctx := context.Background()
	b.Run("text-copy", func(b *testing.B) {
		b.ReportAllocs()
		g := analytics.TextGlue{}
		for i := 0; i < b.N; i++ {
			if _, err := g.TransferMatrix(ctx, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("udf-binary", func(b *testing.B) {
		b.ReportAllocs()
		g := analytics.BinaryGlue{}
		for i := 0; i < b.N; i++ {
			if _, err := g.TransferMatrix(ctx, m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationChunkSize: SciDB covariance kernel across chunk sizes.
func BenchmarkAblationChunkSize(b *testing.B) {
	m := randomMatrix(500, 400, 7)
	for _, chunk := range []int{32, 128, 256, 512} {
		chunk := chunk
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			b.ReportAllocs()
			a := arraydb.FromMatrix(m, chunk, chunk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Covariance()
			}
		})
	}
}

// BenchmarkAblationNetworkBandwidth: virtual makespan of a distributed Gram
// as the interconnect degrades — where does adding nodes stop helping?
func BenchmarkAblationNetworkBandwidth(b *testing.B) {
	m := randomMatrix(1000, 200, 8)
	for _, mbps := range []float64{12.5e6, 125e6, 1.25e9} {
		for _, nodes := range []int{1, 4} {
			mbps, nodes := mbps, nodes
			b.Run(fmt.Sprintf("bw=%.0fMBps/nodes=%d", mbps/1e6, nodes), func(b *testing.B) {
				b.ReportAllocs()
				cfg := cluster.DefaultConfig(nodes)
				cfg.BandwidthBytesPerSec = mbps
				var virtual float64
				for i := 0; i < b.N; i++ {
					c := cluster.New(cfg)
					d := distlinalg.Distribute(c, m)
					c.Reset()
					if _, err := d.Gram(); err != nil {
						b.Fatal(err)
					}
					virtual += c.MakespanSeconds()
				}
				b.ReportMetric(virtual/float64(b.N), "virtual-sec/op")
			})
		}
	}
}

// BenchmarkXeonPhiOffload: the device model's per-kernel rates.
func BenchmarkXeonPhiOffload(b *testing.B) {
	dev := xeonphi.NewDevice5110P()
	m := randomMatrix(300, 300, 9)
	a := arraydb.FromMatrix(m, 128, 128)
	ctx := context.Background()
	for _, kind := range []string{xeonphi.KindGEMM, xeonphi.KindBicluster} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			var modeled float64
			for i := 0; i < b.N; i++ {
				compute, transfer, err := dev.Offload(ctx, kind, 720000, 720000, func() error {
					a.Covariance()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				modeled += compute + transfer
			}
			b.ReportMetric(modeled/float64(b.N), "modeled-sec/op")
		})
	}
}

// --- zero-copy pipeline benches (DESIGN.md §10) ---
//
// End-to-end storage→kernel pipelines on the column store, with the
// zero-copy path toggled against the historical copy path (the -zerocopy
// ablation). Allocation counts are the headline metric: the zero-copy path
// pivots through views and pooled scratch, so a warm query loop should
// allocate almost nothing on the data-management side. BENCH_pipeline.json
// records a baseline.
func benchPipelineQuery(b *testing.B, system string, q engine.QueryID) {
	for _, zc := range []bool{true, false} {
		name := "zerocopy"
		if !zc {
			name = "copy"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			engine.SetZeroCopy(zc)
			defer engine.SetZeroCopy(true)
			eng := loadedEngine(b, system)
			if !eng.Supports(q) {
				b.Skip("query unsupported by this configuration")
			}
			ctx := context.Background()
			p := engine.DefaultParams()
			// Warm the buffer pools and the scratch arena.
			if _, err := eng.Run(ctx, q, p); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ctx, q, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineColstoreCovariance(b *testing.B) {
	benchPipelineQuery(b, "colstore-udf", engine.Q2Covariance)
}

func BenchmarkPipelineColstoreRegression(b *testing.B) {
	benchPipelineQuery(b, "colstore-udf", engine.Q1Regression)
}

func BenchmarkPipelineRowstoreCovariance(b *testing.B) {
	benchPipelineQuery(b, "postgres-madlib", engine.Q2Covariance)
}

func BenchmarkPipelineArrayDBCovariance(b *testing.B) {
	benchPipelineQuery(b, "scidb", engine.Q2Covariance)
}
