package genbase

import (
	"context"
	"sync"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/wal"
)

// ingestQueries is the query mix the ingest invariance tests run: a
// regression, a covariance, and a GO-enrichment query cover the distinct
// kernel families without paying for the full six-query sweep per config.
var ingestQueries = []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q5Statistics}

// loadFleet loads every fleet configuration over ds and returns the engines
// aligned with the members.
func loadFleet(t *testing.T, fleet []core.FleetMember, ds *datagen.Dataset) []engine.Engine {
	t.Helper()
	engines := make([]engine.Engine, len(fleet))
	for i, m := range fleet {
		eng := m.New(t.TempDir())
		t.Cleanup(func() { eng.Close() })
		if err := eng.Load(ds); err != nil {
			t.Fatalf("%s: load: %v", m.Key, err)
		}
		engines[i] = eng
	}
	return engines
}

// TestIngestEpochPinnedInvariance is the concurrent ingest-vs-serve gate
// (run under -race in CI): while an ingest goroutine appends rows to the WAL
// store over the fleet's base dataset and folds checkpoints, every one of
// the 14 configurations keeps answering bit-identically to the committed
// per-class goldens — epoch-0 state is immutable under ingest, not merely
// mostly-untouched. After ingest lands, the epoch-2 snapshot is loaded into
// 14 fresh engines and their answers must again agree exactly within each
// answer-equivalence class: the new epoch is as deterministic as the old.
func TestIngestEpochPinnedInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep is not short")
	}
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := wal.Open(dir, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	fleet, err := core.FleetConfigs(2)
	if err != nil {
		t.Fatal(err)
	}
	engines := loadFleet(t, fleet, ds)
	want := loadGoldens(t)
	p := engine.DefaultParams()

	// Ingest runs for the whole query sweep: two checkpointed batches of 16
	// rows, exactly the stream a RowGen with this seed always produces.
	const batches, perBatch = 2, 16
	ingestDone := make(chan error, 1)
	go func() {
		gen := wal.NewRowGen(ds, 2026)
		for b := 0; b < batches; b++ {
			for i := 0; i < perBatch; i++ {
				if err := store.Append(gen.Next()); err != nil {
					ingestDone <- err
					return
				}
			}
			if _, err := store.Checkpoint(); err != nil {
				ingestDone <- err
				return
			}
		}
		ingestDone <- nil
	}()

	// Epoch-0 serving: every configuration, concurrently with the ingest
	// goroutine, must match the committed class goldens bit for bit.
	var wg sync.WaitGroup
	for i, m := range fleet {
		wg.Add(1)
		go func(m core.FleetMember, eng engine.Engine) {
			defer wg.Done()
			for _, q := range ingestQueries {
				if !eng.Supports(q) {
					continue
				}
				res, err := eng.Run(context.Background(), q, p)
				if err != nil {
					t.Errorf("%s %s: %v", m.Key, q, err)
					continue
				}
				if got, golden := goldenAnswerHash(t, res.Answer), want[classGoldenKey(m.Class, q)]; got != golden {
					t.Errorf("%s %s under ingest: answer hash %s != class golden %s", m.Key, q, got, golden)
				}
			}
		}(m, engines[i])
	}
	wg.Wait()
	if err := <-ingestDone; err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if store.Epoch() != batches {
		t.Fatalf("epoch %d after %d checkpoints", store.Epoch(), batches)
	}

	// Epoch-2 determinism: fresh engines over the checkpointed snapshot must
	// agree exactly within each answer class.
	snap, err := store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dataset.Dims.Patients != ds.Dims.Patients+batches*perBatch {
		t.Fatalf("snapshot has %d patients, want %d", snap.Dataset.Dims.Patients, ds.Dims.Patients+batches*perBatch)
	}
	next := loadFleet(t, fleet, snap.Dataset)
	classHash := map[string]string{} // class/query → hash
	for i, m := range fleet {
		for _, q := range ingestQueries {
			if !next[i].Supports(q) {
				continue
			}
			res, err := next[i].Run(context.Background(), q, p)
			if err != nil {
				t.Fatalf("%s %s at epoch 2: %v", m.Key, q, err)
			}
			got := goldenAnswerHash(t, res.Answer)
			key := m.Class + "/" + q.String()
			if prev, ok := classHash[key]; !ok {
				classHash[key] = got
			} else if got != prev {
				t.Errorf("%s %s: epoch-2 answer diverges within class %s", m.Key, q, m.Class)
			}
		}
	}

	// Epoch-2 answers must also differ from epoch 0 for a query that reads
	// the patient dimension — if they didn't, the snapshot never actually
	// advanced and the "determinism" above proved nothing.
	if classHash[core.ClassDense+"/"+engine.Q1Regression.String()] == want[classGoldenKey(core.ClassDense, engine.Q1Regression)] {
		t.Error("epoch-2 Q1 answer identical to epoch-0 golden: ingest had no effect")
	}

	// Recovery stability: a store reopened from the WAL re-materializes a
	// snapshot whose engines answer with the same hashes.
	snapHash := snap.Hash()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := wal.Open(dir, ds)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	rsnap, err := recovered.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rsnap.Hash() != snapHash {
		t.Fatal("recovered snapshot hash diverged from live snapshot")
	}
	denseIdx := -1
	for i, m := range fleet {
		if m.Class == core.ClassDense {
			denseIdx = i
			break
		}
	}
	eng := fleet[denseIdx].New(t.TempDir())
	defer eng.Close()
	if err := eng.Load(rsnap.Dataset); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), engine.Q1Regression, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenAnswerHash(t, res.Answer); got != classHash[core.ClassDense+"/"+engine.Q1Regression.String()] {
		t.Errorf("recovered-snapshot answer %s != live epoch-2 class hash", got)
	}
}
