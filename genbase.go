// Package genbase is a from-scratch Go implementation of GenBase, the
// complex-analytics genomics benchmark of Taft, Vartak, Satish, Sundaram,
// Madden and Stonebraker (SIGMOD 2014). It bundles:
//
//   - a deterministic generator for the four benchmark datasets (microarray
//     expression data, patient metadata, gene metadata, gene-ontology
//     membership) at the paper's four sizes;
//   - the five benchmark queries — linear regression, covariance,
//     biclustering, SVD, and Wilcoxon enrichment statistics — each mixing
//     data management with complex analytics;
//   - ten system configurations under test, implemented down to their
//     storage engines: an R-style dataframe engine, a slotted-page row
//     store (Postgres analog, with Madlib-style in-database analytics), a
//     compressed column store with external-R and in-process-UDF analytics,
//     a chunked array DBMS (SciDB analog), an in-process MapReduce stack
//     (Hadoop + Hive + Mahout analog), distributed pbdR/ScaLAPACK-style
//     configurations over a virtual cluster, and an Intel Xeon Phi
//     coprocessor model;
//   - a benchmark harness that regenerates every figure and table of the
//     paper's evaluation.
//
// Quick start:
//
//	ds, _ := genbase.GenerateDataset(genbase.Small, 1.0, 42)
//	eng, _ := genbase.NewSystem("scidb", 1)
//	defer eng.Close()
//	_ = eng.Load(ds)
//	res, _ := eng.Run(context.Background(), genbase.Q1Regression, genbase.DefaultParams())
//	fmt.Println(res.Timing.Total())
//
// The hot analytics kernels run on a shared multicore worker pool
// (internal/parallel). The worker count defaults to GENBASE_PARALLEL or
// runtime.NumCPU and can be pinned per engine via each engine's Workers
// field; answers are bitwise identical at any worker count (README.md,
// DESIGN.md §9).
package genbase

import (
	"context"
	"fmt"
	"os"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/stats"
)

// Re-exported dataset types and sizes.
type (
	// Dataset bundles the four benchmark tables in engine-neutral form.
	Dataset = datagen.Dataset
	// Size names one of the paper's dataset presets.
	Size = datagen.Size
)

// The paper's four dataset presets (dimensions scaled 1/20; see DESIGN.md).
const (
	Small  = datagen.Small
	Medium = datagen.Medium
	Large  = datagen.Large
	XLarge = datagen.XLarge
)

// Re-exported query and engine types.
type (
	// QueryID names one of the five benchmark queries.
	QueryID = engine.QueryID
	// Params carries the per-query predicates (paper §3.2).
	Params = engine.Params
	// Engine is a system under test.
	Engine = engine.Engine
	// Result is a completed query run with its timing breakdown.
	Result = engine.Result
	// Timing is the data-management / analytics / transfer cost split.
	Timing = engine.Timing
)

// Re-exported answer types (the Result.Answer payloads).
type (
	// RegressionAnswer is Q1's fitted drug-response model.
	RegressionAnswer = engine.RegressionAnswer
	// CovarianceAnswer is Q2's thresholded gene-pair set.
	CovarianceAnswer = engine.CovarianceAnswer
	// BiclusterAnswer is Q3's discovered biclusters.
	BiclusterAnswer = engine.BiclusterAnswer
	// SVDAnswer is Q4's top singular values.
	SVDAnswer = engine.SVDAnswer
	// StatsAnswer is Q5's per-GO-term enrichment statistics.
	StatsAnswer = engine.StatsAnswer
	// TermStat is one GO term's Wilcoxon z and p.
	TermStat = engine.TermStat
)

// The five GenBase queries, plus the planner-only scenarios added on top of
// the paper's workload (each compiles to the shared operator IR in
// internal/plan and runs on every engine whose physical operators cover it —
// no per-engine query code; see README "adding a new query").
const (
	Q1Regression   = engine.Q1Regression
	Q2Covariance   = engine.Q2Covariance
	Q3Biclustering = engine.Q3Biclustering
	Q4SVD          = engine.Q4SVD
	Q5Statistics   = engine.Q5Statistics
	// Q6CohortRegression regresses drug response over only the patients in
	// the Params.DiseaseID cohort — Q1×Q2's predicates combined.
	Q6CohortRegression = engine.Q6CohortRegression
)

// Queries lists the benchmark queries in paper order.
func Queries() []QueryID { return engine.AllQueries() }

// Scenarios lists every runnable query: the paper's five plus the
// planner-only additions.
func Scenarios() []QueryID { return engine.AllScenarios() }

// BenjaminiHochberg converts Q5's per-term p-values into FDR-adjusted
// q-values — the standard multiple-testing correction when screening many GO
// terms at once.
func BenjaminiHochberg(ps []float64) []float64 { return stats.BenjaminiHochberg(ps) }

// DefaultParams returns the paper's example query parameters.
func DefaultParams() Params { return engine.DefaultParams() }

// GenerateDataset builds a deterministic synthetic dataset. scale multiplies
// the preset dimensions (1.0 reproduces the benchmark's defaults); seed
// fixes the pseudo-random stream.
func GenerateDataset(size Size, scale float64, seed uint64) (*Dataset, error) {
	return datagen.Generate(datagen.Config{Size: size, Scale: scale, Seed: seed})
}

// Systems lists the benchmarkable configuration names in the paper's order.
func Systems() []string {
	cfgs := core.Configs()
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}

// NewSystem builds an engine for the named configuration. With nodes == 1 it
// returns the real single-node engine (measured wall-clock); with nodes > 1
// it returns the virtual-cluster variant (simulated makespan; see DESIGN.md
// §3.3). Disk-backed engines allocate scratch space that Close removes.
func NewSystem(name string, nodes int) (Engine, error) {
	if nodes > 1 {
		return NewClusterSystem(name, nodes)
	}
	cfg, err := core.ConfigByName(name)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "genbase-*")
	if err != nil {
		return nil, err
	}
	return &ownedEngine{Engine: cfg.New(nodes, dir), dir: dir}, nil
}

// NewClusterSystem builds the multi-node variant of a configuration at any
// node count, including 1 — useful for scaling studies where the 1-node
// baseline must run the same distributed algorithms as the scaled runs.
func NewClusterSystem(name string, nodes int) (Engine, error) {
	cfg, err := core.ConfigByName(name)
	if err != nil {
		return nil, err
	}
	if cfg.NewCluster == nil {
		return nil, fmt.Errorf("genbase: %s has no multi-node variant", name)
	}
	return cfg.NewCluster(nodes), nil
}

// ownedEngine removes its scratch directory on Close.
type ownedEngine struct {
	Engine
	dir string
}

func (o *ownedEngine) Close() error {
	err := o.Engine.Close()
	os.RemoveAll(o.dir)
	return err
}

// RunQuery is a convenience wrapper: load the dataset into a fresh instance
// of the named system and run one query.
func RunQuery(ctx context.Context, system string, ds *Dataset, q QueryID, p Params) (*Result, error) {
	eng, err := NewSystem(system, 1)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.Load(ds); err != nil {
		return nil, err
	}
	return eng.Run(ctx, q, p)
}

// Suite regenerates the paper's figures and tables; see internal/core for
// the experiment definitions and cmd/genbase-bench for the CLI.
type Suite = core.Suite

// Outcome is a single benchmark measurement.
type Outcome = core.Outcome

// ReportTable is one rendered figure panel or table.
type ReportTable = core.Table
