package genbase

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/plan"
)

// Every operator of every scenario's compiled DAG must be implemented by at
// least one engine — otherwise the planner emits plans nothing can run.
func TestEveryScenarioSupportedBySomeEngine(t *testing.T) {
	var caps []plan.OpSet
	for _, cfg := range core.SingleNodeConfigs() {
		eng := cfg.New(1, t.TempDir())
		defer eng.Close()
		phys, ok := eng.(plan.Describer)
		if !ok {
			t.Fatalf("%s does not register physical operators", cfg.Name)
		}
		caps = append(caps, phys.Capabilities())
	}
	for _, q := range engine.AllScenarios() {
		supported := 0
		for _, c := range caps {
			if plan.Supports(c, q) {
				supported++
			}
		}
		if supported == 0 {
			t.Errorf("%s: no engine's capabilities cover the compiled plan", q)
		}
	}
}

// The sixth scenario — Q1's regression restricted to the Q2 disease cohort —
// exists only in the planner: no engine package contains any code for it
// beyond the physical operators it already registers. It must run on every
// single-node configuration (the acceptance bar is ≥ 4 engines) and the
// answers must agree across engines.
func TestCohortRegressionRunsEverywhereWithZeroEngineCode(t *testing.T) {
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()

	type run struct {
		name string
		ans  *engine.RegressionAnswer
	}
	var runs []run
	var full *engine.RegressionAnswer
	for _, cfg := range core.SingleNodeConfigs() {
		eng := cfg.New(1, t.TempDir())
		defer eng.Close()
		if !eng.Supports(engine.Q6CohortRegression) {
			t.Errorf("%s does not support the cohort scenario", cfg.Name)
			continue
		}
		if err := eng.Load(ds); err != nil {
			t.Fatalf("%s load: %v", cfg.Name, err)
		}
		res, err := eng.Run(context.Background(), engine.Q6CohortRegression, p)
		if err != nil {
			t.Fatalf("%s cohort regression: %v", cfg.Name, err)
		}
		ans := res.Answer.(*engine.RegressionAnswer)
		runs = append(runs, run{cfg.Name, ans})
		if cfg.Name == "colstore-r" {
			// Reference for the cohort restriction check: full-population Q1.
			q1, err := eng.Run(context.Background(), engine.Q1Regression, p)
			if err != nil {
				t.Fatal(err)
			}
			full = q1.Answer.(*engine.RegressionAnswer)
		}
	}
	if len(runs) < 4 {
		t.Fatalf("cohort scenario ran on %d engines, acceptance requires >= 4", len(runs))
	}

	// The cohort must be a strict subset of the population, with the same
	// gene selection as Q1.
	ref := runs[0].ans
	if full == nil {
		t.Fatal("no full-population reference")
	}
	if ref.NumPatients >= full.NumPatients || ref.NumPatients < 2 {
		t.Fatalf("cohort size %d not a proper sub-population of %d", ref.NumPatients, full.NumPatients)
	}
	// Q6's tighter gene predicate selects a nonempty subset of Q1's genes.
	q1Genes := make(map[int]bool, len(full.SelectedGenes))
	for _, g := range full.SelectedGenes {
		q1Genes[g] = true
	}
	if len(ref.SelectedGenes) == 0 || len(ref.SelectedGenes) >= len(full.SelectedGenes) {
		t.Fatalf("cohort scenario selected %d genes, want a proper subset of Q1's %d", len(ref.SelectedGenes), len(full.SelectedGenes))
	}
	for _, g := range ref.SelectedGenes {
		if !q1Genes[g] {
			t.Fatalf("cohort gene %d not in Q1's selection", g)
		}
	}
	if len(ref.Coefficients) != len(ref.SelectedGenes)+1 {
		t.Fatalf("got %d coefficients for %d genes", len(ref.Coefficients), len(ref.SelectedGenes))
	}

	// Cross-engine agreement. The QR-based engines agree to rounding; the
	// MR engine solves normal equations, so allow a small relative
	// tolerance there.
	for _, r := range runs[1:] {
		if r.ans.NumPatients != ref.NumPatients {
			t.Errorf("%s: cohort size %d, want %d", r.name, r.ans.NumPatients, ref.NumPatients)
		}
		if !reflect.DeepEqual(r.ans.SelectedGenes, ref.SelectedGenes) {
			t.Errorf("%s: gene selection diverges", r.name)
		}
		tol := 1e-9
		if r.name == "hadoop" {
			tol = 1e-6
		}
		for i, c := range r.ans.Coefficients {
			want := ref.Coefficients[i]
			if d := math.Abs(c - want); d > tol*math.Max(1, math.Abs(want)) {
				t.Errorf("%s: coefficient %d = %g, want %g (|Δ|=%g)", r.name, i, c, want, d)
				break
			}
		}
		if d := math.Abs(r.ans.RSquared - ref.RSquared); d > 1e-6 {
			t.Errorf("%s: R² %g, want %g", r.name, r.ans.RSquared, ref.RSquared)
		}
	}
}
