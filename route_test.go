package genbase

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/serve"
)

// classGoldenKey maps an answer-equivalence class to the configuration whose
// committed goldens represent it. The golden sweep proved the committed
// hashes form exactly these classes (every member of a class hashes
// identically per query), so one representative pins them all:
//
//	dense — vanilla-r (all single-node engines + the colstore-udf cluster)
//	dist  — pbdr@4n (the distributed row-block clusters; answers are
//	        node-count invariant by construction, DESIGN.md §13)
//	mr    — hadoop (the MapReduce combiner tree, single and cluster)
func classGoldenKey(class string, q engine.QueryID) string {
	switch class {
	case core.ClassDense:
		return "vanilla-r/" + q.String()
	case core.ClassDist:
		return "pbdr@4n/" + q.String()
	case core.ClassMR:
		return "hadoop/" + q.String()
	}
	return ""
}

// fleetUnderTest loads the full 14-configuration fleet over the small
// dataset once and returns a backend builder (servers are per-test: they
// carry breakers and counters).
func fleetUnderTest(t *testing.T) ([]core.FleetMember, func() []serve.Backend) {
	t.Helper()
	engine.SetZeroCopy(true)
	ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.FleetConfigs(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 14 {
		t.Fatalf("fleet has %d configurations, want 14 (8 single-node + 6 cluster)", len(fleet))
	}
	engines := make([]engine.Engine, len(fleet))
	for i, m := range fleet {
		eng := m.New(t.TempDir())
		t.Cleanup(func() { eng.Close() })
		if err := eng.Load(ds); err != nil {
			t.Fatalf("%s: load: %v", m.Key, err)
		}
		engines[i] = eng
	}
	backends := func() []serve.Backend {
		out := make([]serve.Backend, len(fleet))
		for i, m := range fleet {
			width := 2
			if m.Serial {
				width = 1
			}
			out[i] = serve.Backend{
				Server: serve.New(engines[i], serve.Options{MaxConcurrent: width, DisableCache: true}),
				Config: m.Config,
				Class:  m.Class,
			}
		}
		return out
	}
	return fleet, backends
}

func loadGoldens(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRoutedAnswersMatchGoldens is the routing layer's answer-correctness
// gate: every one of the 14 fleet configurations, addressed through the
// router with a static pin, produces answers hash-equal to the committed
// pre-refactor goldens of its answer-equivalence class. Routing changes who
// computes; it must never change a bit of what is computed.
func TestRoutedAnswersMatchGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep is not short")
	}
	fleet, backends := fleetUnderTest(t)
	want := loadGoldens(t)
	p := engine.DefaultParams()
	for i, m := range fleet {
		router, err := serve.NewRouter(backends(), serve.RouterOptions{
			Policy: serve.Policy{Static: m.Key}, DisableCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range engine.AllQueries() {
			golden := want[classGoldenKey(m.Class, q)]
			res, hit, err := router.Run(context.Background(), q, p)
			if err != nil {
				if errors.Is(err, engine.ErrUnsupported) {
					if golden != "" && backends()[i].Server.Engine().Supports(q) {
						t.Errorf("%s: router rejected supported %s", m.Key, q)
					}
					continue
				}
				t.Fatalf("%s %s: %v", m.Key, q, err)
			}
			if hit {
				t.Fatalf("%s %s: cache hit with caching disabled", m.Key, q)
			}
			if golden == "" {
				t.Fatalf("%s (%s): no golden for %s", m.Key, m.Class, q)
			}
			if got := goldenAnswerHash(t, res.Answer); got != golden {
				t.Errorf("%s %s: answer hash %s != class %s golden %s", m.Key, q, got, m.Class, golden)
			}
		}
	}
}

// TestCostRoutedAnswersAreClassValid drives the cost-routing policy over
// every scenario and asserts each answer is bit-identical to a committed
// class golden — whichever backend the model picked, the bits it returned
// are ones some paper configuration is pinned to produce.
func TestCostRoutedAnswersAreClassValid(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep is not short")
	}
	_, backends := fleetUnderTest(t)
	want := loadGoldens(t)
	valid := func(q engine.QueryID) map[string]bool {
		v := map[string]bool{}
		for _, class := range []string{core.ClassDense, core.ClassDist, core.ClassMR} {
			if h, ok := want[classGoldenKey(class, q)]; ok {
				v[h] = true
			}
		}
		return v
	}
	router, err := serve.NewRouter(backends(), serve.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	for _, q := range engine.AllQueries() {
		res, _, err := router.Run(context.Background(), q, p)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !valid(q)[goldenAnswerHash(t, res.Answer)] {
			t.Errorf("%s: cost-routed answer matches no class golden", q)
		}
		// The repeat must be a (class-keyed) cache hit with identical bits.
		res2, hit, err := router.Run(context.Background(), q, p)
		if err != nil || !hit {
			t.Fatalf("%s repeat: hit=%v err=%v", q, hit, err)
		}
		if goldenAnswerHash(t, res2.Answer) != goldenAnswerHash(t, res.Answer) {
			t.Errorf("%s: cached answer diverges from executed answer", q)
		}
	}
}

// TestRouterNeverSelectsUnsupportedPair is the ground-truth support gate
// against the real engines: for every (configuration, query) pair the
// engine itself rejects, the pinned router surfaces typed ErrUnsupported —
// it never "helpfully" re-routes a pinned request, and never dispatches a
// query to an engine that cannot run it. A probe query id that exists in no
// registry is rejected fleet-wide.
func TestRouterNeverSelectsUnsupportedPair(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep is not short")
	}
	fleet, backends := fleetUnderTest(t)
	p := engine.DefaultParams()
	bs := backends()
	for i, m := range fleet {
		router, err := serve.NewRouter(backends(), serve.RouterOptions{
			Policy: serve.Policy{Static: m.Key}, DisableCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range engine.AllScenarios() {
			supported := bs[i].Server.Engine().Supports(q)
			_, _, err := router.Run(context.Background(), q, p)
			switch {
			case supported && err != nil:
				t.Errorf("%s %s: supported pair failed: %v", m.Key, q, err)
			case !supported && !errors.Is(err, engine.ErrUnsupported):
				t.Errorf("%s %s: unsupported pair returned %v, want ErrUnsupported", m.Key, q, err)
			}
		}
	}
	// The probe id: no engine supports it, no plan compiles for it.
	router, err := serve.NewRouter(backends(), serve.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := router.Run(context.Background(), engine.QueryID(250), p); err == nil {
		t.Fatal("probe query id 250 was routed")
	}
}
