package bicluster

import (
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/linalg"
)

func noiseMatrix(r, c int, amplitude float64, seed uint64) *linalg.Matrix {
	rng := splitMix64(seed)
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = amplitude * (rng()*2 - 1)
	}
	return m
}

// plant overwrites a block with an additive pattern rowEffect+colEffect,
// which has MSR exactly zero.
func plant(m *linalg.Matrix, rows, cols []int, seed uint64) {
	rng := splitMix64(seed)
	rowEff := make([]float64, len(rows))
	colEff := make([]float64, len(cols))
	for i := range rowEff {
		rowEff[i] = rng() * 2
	}
	for j := range colEff {
		colEff[j] = rng() * 2
	}
	for a, i := range rows {
		for b, j := range cols {
			m.Set(i, j, 5+rowEff[a]+colEff[b])
		}
	}
}

func TestMSRZeroForAdditivePattern(t *testing.T) {
	m := linalg.NewMatrix(6, 6)
	rows := []int{0, 1, 2, 3, 4, 5}
	cols := rows
	plant(m, rows, cols, 3)
	if msr := msrOf(m, rows, cols); msr > 1e-18 {
		t.Fatalf("additive pattern must have zero MSR, got %v", msr)
	}
}

func TestMSRPositiveForNoise(t *testing.T) {
	m := noiseMatrix(8, 8, 1, 4)
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if msr := msrOf(m, rows, rows); msr < 1e-4 {
		t.Fatalf("noise should have positive MSR, got %v", msr)
	}
}

func TestMSREmptySelection(t *testing.T) {
	if msrOf(linalg.NewMatrix(3, 3), nil, []int{0}) != 0 {
		t.Fatal("empty selection must yield 0")
	}
}

func TestRunRejectsEmptyMatrix(t *testing.T) {
	if _, err := Run(linalg.NewMatrix(0, 5), Options{}); err == nil {
		t.Fatal("expected error on empty matrix")
	}
}

func TestRunRecoversPlantedBicluster(t *testing.T) {
	m := noiseMatrix(30, 24, 4, 7)
	rows := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28}
	cols := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23}
	plant(m, rows, cols, 8)
	res, err := Run(m, Options{Delta: 0.5, MaxBiclusters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bc := res[0]
	if bc.MSR > 0.5 {
		t.Fatalf("bicluster MSR %v exceeds delta", bc.MSR)
	}
	// The planted block must be substantially recovered.
	rowSet := map[int]bool{}
	for _, i := range bc.Rows {
		rowSet[i] = true
	}
	colSet := map[int]bool{}
	for _, j := range bc.Cols {
		colSet[j] = true
	}
	foundRows, foundCols := 0, 0
	for _, i := range rows {
		if rowSet[i] {
			foundRows++
		}
	}
	for _, j := range cols {
		if colSet[j] {
			foundCols++
		}
	}
	if foundRows < len(rows)*2/3 || foundCols < len(cols)*2/3 {
		t.Fatalf("recovered %d/%d rows, %d/%d cols", foundRows, len(rows), foundCols, len(cols))
	}
}

func TestRunFindsMultipleBiclusters(t *testing.T) {
	m := noiseMatrix(50, 40, 5, 11)
	plant(m, []int{0, 1, 2, 3, 4, 5, 6}, []int{0, 1, 2, 3, 4, 5}, 12)
	plant(m, []int{20, 21, 22, 23, 24, 25}, []int{20, 21, 22, 23, 24}, 13)
	res, err := Run(m, Options{Delta: 0.5, MaxBiclusters: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 {
		t.Fatalf("expected ≥2 biclusters, got %d", len(res))
	}
	for k, bc := range res {
		if bc.MSR > 0.5+1e-9 {
			t.Fatalf("bicluster %d MSR=%v exceeds delta", k, bc.MSR)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	m := noiseMatrix(25, 25, 2, 42)
	plant(m, []int{1, 2, 3, 4, 5}, []int{6, 7, 8, 9}, 43)
	a, err := Run(m.Clone(), Options{Delta: 0.3, MaxBiclusters: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m.Clone(), Options{Delta: 0.3, MaxBiclusters: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count %d vs %d", len(a), len(b))
	}
	for k := range a {
		if len(a[k].Rows) != len(b[k].Rows) || len(a[k].Cols) != len(b[k].Cols) {
			t.Fatalf("non-deterministic bicluster %d", k)
		}
		for i := range a[k].Rows {
			if a[k].Rows[i] != b[k].Rows[i] {
				t.Fatalf("row sets differ at bicluster %d", k)
			}
		}
	}
}

func TestRunRespectsMinSizes(t *testing.T) {
	m := noiseMatrix(20, 20, 10, 99)
	res, err := Run(m, Options{Delta: 1e-12, MaxBiclusters: 1, MinRows: 4, MinCols: 4, Seed: 3})
	if err != nil {
		// With an impossible delta on pure noise, failing to find a bicluster
		// is acceptable behaviour.
		return
	}
	for _, bc := range res {
		if len(bc.Rows) < 4 || len(bc.Cols) < 4 {
			t.Fatalf("bicluster smaller than minimum: %dx%d", len(bc.Rows), len(bc.Cols))
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := noiseMatrix(10, 10, 1, 5)
	var o Options
	o.setDefaults(m)
	if o.Alpha != 1.2 || o.MaxBiclusters != 5 || o.MinRows != 2 || o.MinCols != 2 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.Delta <= 0 {
		t.Fatal("delta default must be positive")
	}
}

// Property: every returned bicluster has indices in range, sorted ascending,
// without duplicates, and MSR ≤ delta (against the original matrix the
// first time, i.e. for the first bicluster).
func TestRunIndexInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := int(seed%20) + 8
		c := int((seed>>8)%20) + 8
		m := noiseMatrix(r, c, 3, seed)
		plant(m, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, seed^1)
		res, err := Run(m, Options{Delta: 1.0, MaxBiclusters: 2, Seed: seed})
		if err != nil {
			return true // noise-only failure is allowed
		}
		for _, bc := range res {
			prev := -1
			for _, i := range bc.Rows {
				if i <= prev || i >= r {
					return false
				}
				prev = i
			}
			prev = -1
			for _, j := range bc.Cols {
				if j <= prev || j >= c {
					return false
				}
				prev = j
			}
		}
		return res[0].MSR <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
