// Package bicluster implements the Cheng–Church δ-biclustering algorithm
// used by GenBase's Q3. Biclustering simultaneously clusters rows (patients)
// and columns (genes) of the expression matrix into sub-matrices whose
// entries follow a consistent additive pattern, measured by the mean squared
// residue (MSR). It is the from-scratch stand-in for R's biclust package.
package bicluster

import (
	"errors"
	"math"

	"github.com/genbase/genbase/internal/linalg"
)

// Bicluster identifies one discovered sub-matrix by its row and column
// indices into the input matrix, along with its final mean squared residue.
type Bicluster struct {
	Rows []int
	Cols []int
	MSR  float64
}

// Options configures the Cheng–Church run.
type Options struct {
	// Delta is the MSR threshold a bicluster must reach. If 0, it is set to
	// 0.05 × the variance of the input matrix (scale-aware default).
	Delta float64
	// Alpha is the multiple-node-deletion aggressiveness (paper default 1.2).
	Alpha float64
	// MaxBiclusters bounds how many biclusters to extract (default 5).
	MaxBiclusters int
	// MinRows/MinCols stop deletion below this size (default 2).
	MinRows, MinCols int
	// Seed drives the random masking of found biclusters.
	Seed uint64
}

// WithDefaults returns a copy of o with unset fields resolved against the
// matrix (Delta's default is scale-aware). Engines that drive the
// bicluster-by-bicluster loop themselves (the column store's UDF interface)
// call this once on the original matrix so every FindOne call uses the same
// thresholds Run would.
func (o Options) WithDefaults(m *linalg.Matrix) Options {
	o.setDefaults(m)
	return o
}

func (o *Options) setDefaults(m *linalg.Matrix) {
	if o.Alpha <= 1 {
		o.Alpha = 1.2
	}
	if o.MaxBiclusters <= 0 {
		o.MaxBiclusters = 5
	}
	if o.MinRows < 2 {
		o.MinRows = 2
	}
	if o.MinCols < 2 {
		o.MinCols = 2
	}
	if o.Delta <= 0 {
		// Scale-aware default: a fraction of the overall matrix variance.
		var sum, sumSq float64
		n := float64(m.Rows * m.Cols)
		for i := 0; i < m.Rows; i++ {
			for _, v := range m.Row(i) {
				sum += v
				sumSq += v * v
			}
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		o.Delta = 0.05 * variance
		if o.Delta <= 0 {
			o.Delta = 1e-9
		}
	}
}

// Masker replaces a found bicluster's cells with deterministic random noise
// so subsequent searches find new structure. The noise range spans the
// original data.
type Masker struct {
	rng    func() float64
	lo, hi float64
}

// NewMasker prepares masking for the original matrix m under the given seed.
func NewMasker(m *linalg.Matrix, seed uint64) *Masker {
	lo, hi := matrixRange(m)
	if hi <= lo {
		hi = lo + 1
	}
	return &Masker{rng: splitMix64(seed ^ 0x5851f42d4c957f2d), lo: lo, hi: hi}
}

// Mask overwrites the bicluster's cells in work.
func (mk *Masker) Mask(work *linalg.Matrix, bc *Bicluster) {
	for _, i := range bc.Rows {
		for _, j := range bc.Cols {
			work.Set(i, j, mk.lo+(mk.hi-mk.lo)*mk.rng())
		}
	}
}

// FindOne runs a single Cheng–Church search (multiple node deletion, single
// node deletion, node addition) on the working matrix. opts must already
// have defaults resolved (see Options.WithDefaults). Returns nil when no
// sub-matrix reaches the delta threshold.
func FindOne(work *linalg.Matrix, opts Options) *Bicluster {
	return findOne(work, opts)
}

// MSROf computes the mean squared residue of an arbitrary sub-matrix of m —
// used to re-score discovered biclusters against the unmasked data.
func MSROf(m *linalg.Matrix, rows, cols []int) float64 { return msrOf(m, rows, cols) }

// Run extracts up to MaxBiclusters biclusters from m using the Cheng–Church
// algorithm, masking each find before searching again.
func Run(m *linalg.Matrix, opts Options) ([]Bicluster, error) {
	if m.Rows == 0 || m.Cols == 0 {
		return nil, errors.New("bicluster: empty matrix")
	}
	opts = opts.WithDefaults(m)
	work := m.Clone()
	masker := NewMasker(m, opts.Seed)

	var out []Bicluster
	for b := 0; b < opts.MaxBiclusters; b++ {
		bc := FindOne(work, opts)
		if bc == nil {
			break
		}
		// Re-score against the original matrix for reporting.
		bc.MSR = msrOf(m, bc.Rows, bc.Cols)
		out = append(out, *bc)
		if len(bc.Rows) == 0 || len(bc.Cols) == 0 {
			break
		}
		masker.Mask(work, bc)
	}
	if len(out) == 0 {
		return nil, errors.New("bicluster: no bicluster met the delta threshold")
	}
	return out, nil
}

// state tracks the live row/col sets plus incremental means for one search.
type state struct {
	m          *linalg.Matrix
	rows, cols []bool
	nr, nc     int
}

func newState(m *linalg.Matrix) *state {
	s := &state{m: m, rows: make([]bool, m.Rows), cols: make([]bool, m.Cols), nr: m.Rows, nc: m.Cols}
	for i := range s.rows {
		s.rows[i] = true
	}
	for j := range s.cols {
		s.cols[j] = true
	}
	return s
}

// means recomputes row means, column means and the overall mean of the live
// sub-matrix.
func (s *state) means() (rowMean, colMean []float64, all float64) {
	rowMean = make([]float64, s.m.Rows)
	colMean = make([]float64, s.m.Cols)
	total := 0.0
	for i := 0; i < s.m.Rows; i++ {
		if !s.rows[i] {
			continue
		}
		ri := s.m.Row(i)
		sum := 0.0
		for j := 0; j < s.m.Cols; j++ {
			if !s.cols[j] {
				continue
			}
			v := ri[j]
			sum += v
			colMean[j] += v
		}
		rowMean[i] = sum / float64(s.nc)
		total += sum
	}
	for j := range colMean {
		if s.cols[j] {
			colMean[j] /= float64(s.nr)
		}
	}
	all = total / float64(s.nr*s.nc)
	return rowMean, colMean, all
}

// residues returns the per-row and per-column mean squared residues and the
// overall MSR H(I,J) = mean over live cells of (a_ij − rowMean − colMean + all)².
func (s *state) residues() (rowRes, colRes []float64, h float64) {
	rowMean, colMean, all := s.means()
	rowRes = make([]float64, s.m.Rows)
	colRes = make([]float64, s.m.Cols)
	total := 0.0
	for i := 0; i < s.m.Rows; i++ {
		if !s.rows[i] {
			continue
		}
		ri := s.m.Row(i)
		for j := 0; j < s.m.Cols; j++ {
			if !s.cols[j] {
				continue
			}
			d := ri[j] - rowMean[i] - colMean[j] + all
			sq := d * d
			rowRes[i] += sq
			colRes[j] += sq
			total += sq
		}
	}
	for i := range rowRes {
		if s.rows[i] {
			rowRes[i] /= float64(s.nc)
		}
	}
	for j := range colRes {
		if s.cols[j] {
			colRes[j] /= float64(s.nr)
		}
	}
	h = total / float64(s.nr*s.nc)
	return rowRes, colRes, h
}

// findOne runs one full Cheng–Church search on the working matrix.
func findOne(m *linalg.Matrix, opts Options) *Bicluster {
	s := newState(m)

	// Phase 1: multiple node deletion — drop every row/col whose residue
	// exceeds alpha × H in one sweep, while the matrix is large.
	for {
		_, _, h := s.residues()
		if h <= opts.Delta || s.nr <= opts.MinRows || s.nc <= opts.MinCols {
			break
		}
		rowRes, colRes, _ := s.residues()
		removed := false
		if s.nr > opts.MinRows {
			for i := 0; i < m.Rows && s.nr > opts.MinRows; i++ {
				if s.rows[i] && rowRes[i] > opts.Alpha*h {
					s.rows[i] = false
					s.nr--
					removed = true
				}
			}
		}
		if s.nc > opts.MinCols {
			for j := 0; j < m.Cols && s.nc > opts.MinCols; j++ {
				if s.cols[j] && colRes[j] > opts.Alpha*h {
					s.cols[j] = false
					s.nc--
					removed = true
				}
			}
		}
		if !removed {
			break
		}
	}

	// Phase 2: single node deletion — remove the worst row or column until
	// H ≤ delta.
	for {
		rowRes, colRes, h := s.residues()
		if h <= opts.Delta {
			break
		}
		bestRow, bestCol := -1, -1
		worstRow, worstCol := 0.0, 0.0
		for i := range rowRes {
			if s.rows[i] && rowRes[i] > worstRow {
				worstRow, bestRow = rowRes[i], i
			}
		}
		for j := range colRes {
			if s.cols[j] && colRes[j] > worstCol {
				worstCol, bestCol = colRes[j], j
			}
		}
		switch {
		case worstRow >= worstCol && bestRow >= 0 && s.nr > opts.MinRows:
			s.rows[bestRow] = false
			s.nr--
		case bestCol >= 0 && s.nc > opts.MinCols:
			s.cols[bestCol] = false
			s.nc--
		default:
			// Cannot shrink further; give up on reaching delta.
			return nil
		}
	}

	// Phase 3: node addition — re-admit rows/cols whose residue is below the
	// current H (they do not hurt the bicluster quality).
	for {
		added := false
		rowMean, colMean, all := s.means()
		_, _, h := s.residues()
		for j := 0; j < m.Cols; j++ {
			if s.cols[j] {
				continue
			}
			res := 0.0
			cnt := 0
			cm := 0.0
			for i := 0; i < m.Rows; i++ {
				if s.rows[i] {
					cm += m.At(i, j)
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			cm /= float64(cnt)
			for i := 0; i < m.Rows; i++ {
				if !s.rows[i] {
					continue
				}
				d := m.At(i, j) - rowMean[i] - cm + all
				res += d * d
			}
			if res/float64(cnt) <= h {
				s.cols[j] = true
				s.nc++
				added = true
			}
		}
		rowMean, colMean, all = s.means()
		_, _, h = s.residues()
		for i := 0; i < m.Rows; i++ {
			if s.rows[i] {
				continue
			}
			rm := 0.0
			for j := 0; j < m.Cols; j++ {
				if s.cols[j] {
					rm += m.At(i, j)
				}
			}
			rm /= float64(s.nc)
			res := 0.0
			for j := 0; j < m.Cols; j++ {
				if !s.cols[j] {
					continue
				}
				d := m.At(i, j) - rm - colMean[j] + all
				res += d * d
			}
			if res/float64(s.nc) <= h {
				s.rows[i] = true
				s.nr++
				added = true
			}
		}
		if !added {
			break
		}
	}

	bc := &Bicluster{}
	for i, on := range s.rows {
		if on {
			bc.Rows = append(bc.Rows, i)
		}
	}
	for j, on := range s.cols {
		if on {
			bc.Cols = append(bc.Cols, j)
		}
	}
	_, _, bc.MSR = s.residues()
	return bc
}

// msrOf computes the mean squared residue of an arbitrary sub-matrix of m.
func msrOf(m *linalg.Matrix, rows, cols []int) float64 {
	if len(rows) == 0 || len(cols) == 0 {
		return 0
	}
	rowMean := make([]float64, len(rows))
	colMean := make([]float64, len(cols))
	all := 0.0
	for a, i := range rows {
		for b, j := range cols {
			v := m.At(i, j)
			rowMean[a] += v
			colMean[b] += v
			all += v
		}
	}
	nr, nc := float64(len(rows)), float64(len(cols))
	for a := range rowMean {
		rowMean[a] /= nc
	}
	for b := range colMean {
		colMean[b] /= nr
	}
	all /= nr * nc
	total := 0.0
	for a, i := range rows {
		for b, j := range cols {
			d := m.At(i, j) - rowMean[a] - colMean[b] + all
			total += d * d
		}
	}
	return total / (nr * nc)
}

func matrixRange(m *linalg.Matrix) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

func splitMix64(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
}
