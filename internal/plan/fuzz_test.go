package plan_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
	"github.com/genbase/genbase/internal/rengine"
)

// fuzzEng lazily loads one tiny engine the executor fuzzing reuses; loaded
// state is read-only during Run, so sharing it across fuzz iterations is
// safe.
var (
	fuzzOnce sync.Once
	fuzzEng  *rengine.Engine
)

func fuzzEngine(t interface{ Fatal(args ...any) }) *rengine.Engine {
	fuzzOnce.Do(func() {
		ds, err := datagen.Generate(datagen.Config{Size: datagen.Small, Scale: 0.2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		fuzzEng = rengine.New()
		if err := fuzzEng.Load(ds); err != nil {
			t.Fatal(err)
		}
	})
	return fuzzEng
}

// FuzzParamsPlan is the admission robustness contract: for an arbitrary
// (query, Params) request, Params.Validate + plan.Compile either reject with
// ErrBadParams/ErrUnsupported or produce a plan the generic executor runs to
// completion — an answer or an ordinary error (row guards, rank-deficient
// solves), never a panic and never unbounded work. The admission bounds in
// engine.Params.Validate (MaxSVDK, MaxBiclusterBudget) exist exactly so the
// second half holds: any validated parameterization is safe to execute.
//
// The seed corpus (testdata/fuzz/FuzzParamsPlan + the f.Add seeds below)
// runs on every plain `go test`; `go test -fuzz FuzzParamsPlan
// ./internal/plan` explores further.
func FuzzParamsPlan(f *testing.F) {
	type seed struct {
		q              int
		fnThr, disease int64
		topFrac        float64
		gender         byte
		maxAge         int64
		maxB, svdk     int
		sampleFrac     float64
		seedV          uint64
		cohortThr      int64
	}
	d := engine.DefaultParams()
	seeds := []seed{
		{int(engine.Q1Regression), d.FunctionThreshold, d.DiseaseID, d.CovarianceTopFrac, d.Gender, d.MaxAge, d.MaxBiclusters, d.SVDK, d.SampleFrac, d.Seed, d.CohortFunctionThreshold},
		{int(engine.Q2Covariance), d.FunctionThreshold, d.DiseaseID, d.CovarianceTopFrac, d.Gender, d.MaxAge, d.MaxBiclusters, d.SVDK, d.SampleFrac, d.Seed, d.CohortFunctionThreshold},
		{int(engine.Q3Biclustering), d.FunctionThreshold, d.DiseaseID, d.CovarianceTopFrac, d.Gender, d.MaxAge, d.MaxBiclusters, d.SVDK, d.SampleFrac, d.Seed, d.CohortFunctionThreshold},
		{int(engine.Q4SVD), d.FunctionThreshold, d.DiseaseID, d.CovarianceTopFrac, d.Gender, d.MaxAge, d.MaxBiclusters, d.SVDK, d.SampleFrac, d.Seed, d.CohortFunctionThreshold},
		{int(engine.Q5Statistics), d.FunctionThreshold, d.DiseaseID, d.CovarianceTopFrac, d.Gender, d.MaxAge, d.MaxBiclusters, d.SVDK, d.SampleFrac, d.Seed, d.CohortFunctionThreshold},
		{int(engine.Q6CohortRegression), d.FunctionThreshold, d.DiseaseID, d.CovarianceTopFrac, d.Gender, d.MaxAge, d.MaxBiclusters, d.SVDK, d.SampleFrac, d.Seed, d.CohortFunctionThreshold},
		// Hostile corners: unknown query, zero/NaN/overflow-prone knobs,
		// empty selections, oversized k.
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{42, -1, 1 << 40, math.Inf(1), 'X', -5, -3, 1 << 30, 1e-300, ^uint64(0), -9},
		{int(engine.Q4SVD), d.FunctionThreshold, 0, 0, 0, 0, 0, engine.MaxSVDK, 0.5, 1, 0},
		{int(engine.Q3Biclustering), 0, 0, 0.5, 'M', 1 << 30, engine.MaxBiclusterBudget, 1, 0.5, 7, 0},
		{int(engine.Q5Statistics), 0, 0, 0, 0, 0, 1, 1, 0.999999, 1, 0},
	}
	for _, s := range seeds {
		f.Add(s.q, s.fnThr, s.disease, s.topFrac, s.gender, s.maxAge, s.maxB, s.svdk, s.sampleFrac, s.seedV, s.cohortThr)
	}
	f.Fuzz(func(t *testing.T, q int, fnThr, disease int64, topFrac float64, gender byte, maxAge int64, maxB, svdk int, sampleFrac float64, seedV uint64, cohortThr int64) {
		p := engine.Params{
			FunctionThreshold:       fnThr,
			DiseaseID:               disease,
			CovarianceTopFrac:       topFrac,
			Gender:                  gender,
			MaxAge:                  maxAge,
			MaxBiclusters:           maxB,
			SVDK:                    svdk,
			SampleFrac:              sampleFrac,
			Seed:                    seedV,
			CohortFunctionThreshold: cohortThr,
		}
		qid := engine.QueryID(q)
		pl, err := plan.Compile(qid, p)
		if err != nil {
			if !errors.Is(err, engine.ErrBadParams) && !errors.Is(err, engine.ErrUnsupported) {
				t.Fatalf("compile rejected %v with a non-admission error: %v", qid, err)
			}
			return
		}
		// A compiled plan must execute without panicking; data-dependent
		// errors (empty selections, singular systems) are legitimate.
		eng := fuzzEngine(t)
		res, err := plan.Execute[*linalg.Matrix](context.Background(), eng, pl)
		if err == nil && res.Answer == nil {
			t.Fatalf("%v executed without error but produced no answer", qid)
		}
		if errors.Is(err, engine.ErrUnsupported) {
			t.Fatalf("%v compiled but the executor called it unsupported", qid)
		}
	})
}
