// Package plan is the logical query-plan layer: a small operator IR that a
// planner compiles (engine.QueryID, engine.Params) into, and a generic
// executor that runs the compiled DAG against any engine's registered
// physical operators.
//
// Before this layer, every engine re-implemented the paper's five queries as
// private hardcoded methods — the same regression/covariance/biclustering/
// svd/statistics pipelines appeared near-identically in rowstore, colstore,
// arraydb, rengine and mapreduce, so each new workload cost five duplicated
// implementations and five chances to diverge. Now a query is compiled once
// into a shared plan; engines only implement the physical operators
// (selection-vector scans for the column store, Volcano plans for the row
// store, chunked gathers for the array store, MR jobs for Hadoop), and a new
// scenario is a planner-only change (see Q6CohortRegression).
//
// The IR (ISSUE: ScanTable, SelectPred, SamplePatients, PivotMicro,
// Kernel{Regression|Covariance|SVD|Bicluster|Stats}, TopKByAbs, Emit)
// deliberately sits at the paper's altitude: operators correspond to the
// query steps of §3.2 (select by metadata, restructure as a matrix, run the
// analytics kernel, join the result back), not to low-level relational
// algebra. Each node carries a phase tag (data management / analytics /
// transfer) that replaces the hand-placed StopWatch calls the engines used
// to scatter through their query methods; kernel operators own their phase
// transitions internally because the transfer boundary (the "+R" text COPY
// stream, the UDF hand-off, the coprocessor offload) lives inside them.
package plan

import (
	"fmt"
	"strings"
)

// OpKind names a logical operator.
type OpKind int

// The operator vocabulary. Every plan is a DAG of these.
const (
	// OpScanTable projects one column of a metadata table: patients'
	// drug-response vector (optionally gathered through a patient
	// selection), the gene-function metadata used by Q2's final join, or the
	// GO membership lists.
	OpScanTable OpKind = iota
	// OpSelectPred evaluates a conjunctive predicate over a metadata table
	// and yields ascending entity ids.
	OpSelectPred
	// OpSamplePatients yields the deterministic patient sample modulus
	// (engine.Params.SamplePatientStep) feeding Q5's aggregate pivot.
	OpSamplePatients
	// OpPivotMicro restructures the microarray into a dense patient×gene
	// matrix for the given patient/gene selections — the paper's "join, then
	// restructure as a matrix" step. With AggColMeans it instead folds the
	// pivot into per-gene means over the sampled patients (Q5's fused
	// filter+aggregate; no engine materializes that pivot).
	OpPivotMicro
	// OpKernelRegression fits drug response on the pivot by least squares.
	OpKernelRegression
	// OpKernelCovariance computes the gene-gene covariance matrix.
	OpKernelCovariance
	// OpKernelSVD computes the top-k singular values.
	OpKernelSVD
	// OpKernelBicluster runs Cheng–Church biclustering.
	OpKernelBicluster
	// OpKernelStats runs the per-GO-term Wilcoxon enrichment test.
	OpKernelStats
	// OpTopKByAbs thresholds the covariance matrix to the top fraction of
	// |cov| pairs and joins them with gene metadata (Q2 steps 3–4). It is
	// executed generically — engine.SummarizeCovariance — so every engine's
	// answer assembly is identical by construction.
	OpTopKByAbs
	// OpEmit assembles the engine-neutral answer struct from the upstream
	// node values.
	OpEmit

	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpScanTable:
		return "ScanTable"
	case OpSelectPred:
		return "SelectPred"
	case OpSamplePatients:
		return "SamplePatients"
	case OpPivotMicro:
		return "PivotMicro"
	case OpKernelRegression:
		return "Kernel[regression]"
	case OpKernelCovariance:
		return "Kernel[covariance]"
	case OpKernelSVD:
		return "Kernel[svd]"
	case OpKernelBicluster:
		return "Kernel[bicluster]"
	case OpKernelStats:
		return "Kernel[stats]"
	case OpTopKByAbs:
		return "TopKByAbs"
	case OpEmit:
		return "Emit"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Phase tags a node with the paper's cost category. The executor switches
// the query StopWatch at node boundaries, replacing the hand-placed
// StartDM/StartAnalytics/StartTransfer calls of the pre-plan engines.
type Phase int

const (
	// PhaseDM is data management: scans, selections, pivots, answer joins.
	PhaseDM Phase = iota
	// PhaseKernel marks operators that own their phase transitions: the
	// physical kernel switches to transfer for its glue boundary and to
	// analytics for compute (or books modeled coprocessor time), exactly as
	// each configuration requires.
	PhaseKernel
)

func (p Phase) String() string {
	if p == PhaseKernel {
		return "kernel"
	}
	return "dm"
}

// CmpOp is a predicate comparison.
type CmpOp int

// The comparisons the benchmark's metadata predicates need.
const (
	CmpLT CmpOp = iota // column < value
	CmpEQ              // column == value
)

// Pred is one column comparison; a SelectPred node holds a conjunction.
type Pred struct {
	Col string
	Op  CmpOp
	Val int64
}

// Eval applies the predicate to a column value.
func (p Pred) Eval(v int64) bool {
	if p.Op == CmpEQ {
		return v == p.Val
	}
	return v < p.Val
}

func (p Pred) String() string {
	op := "<"
	if p.Op == CmpEQ {
		op = "="
	}
	return fmt.Sprintf("%s%s%d", p.Col, op, p.Val)
}

// AggKind selects PivotMicro's output shape.
type AggKind int

const (
	// AggNone materializes the dense pivot matrix.
	AggNone AggKind = iota
	// AggColMeans folds the pivot into per-gene means over the sampled
	// patients (Q5). Engines implement it fused — none materializes the
	// sampled pivot first.
	AggColMeans
)

// Table and column names of the benchmark's neutral schema, as the IR
// refers to them.
const (
	TableGenes    = "genes"
	TablePatients = "patients"
	TableGO       = "go"

	ColFunction     = "function"
	ColDiseaseID    = "diseaseid"
	ColGender       = "gender"
	ColAge          = "age"
	ColDrugResponse = "drugresponse"
	ColMembers      = "members"
)

// AnswerKind tells Emit which engine-neutral answer struct to assemble.
type AnswerKind int

const (
	AnswerRegression AnswerKind = iota
	AnswerCovariance
	AnswerBicluster
	AnswerSVD
	AnswerStats
)

// Node is one operator instance. Inputs reference upstream node indices;
// their roles are positional per kind (see the compile functions and the
// executor). -1 marks an absent optional input (e.g. "all patients" for a
// pivot axis).
type Node struct {
	Kind  OpKind
	Phase Phase

	// OpScanTable / OpSelectPred.
	Table string
	Col   string
	Preds []Pred
	// MinRows guards a selection: fewer surviving rows fail the query with
	// GuardMsg (a literal message; the executor appends the row count).
	MinRows  int
	GuardMsg string

	// OpPivotMicro.
	Agg AggKind

	// Kernel / TopK parameters (baked from engine.Params at compile time —
	// the fingerprint therefore covers exactly the parameters the query
	// uses, nothing else).
	K             int
	Seed          uint64
	MaxBiclusters int
	TopFrac       float64
	Step          int

	// OpEmit.
	Answer AnswerKind

	Inputs []int
}

// describe renders the node's operator and arguments for Explain and
// fingerprints.
func (n *Node) describe() string {
	var b strings.Builder
	b.WriteString(n.Kind.String())
	switch n.Kind {
	case OpScanTable:
		fmt.Fprintf(&b, "(%s.%s)", n.Table, n.Col)
	case OpSelectPred:
		preds := make([]string, len(n.Preds))
		for i, p := range n.Preds {
			preds[i] = p.String()
		}
		fmt.Fprintf(&b, "(%s: %s, min=%d)", n.Table, strings.Join(preds, " AND "), n.MinRows)
	case OpSamplePatients:
		fmt.Fprintf(&b, "(step=%d)", n.Step)
	case OpPivotMicro:
		agg := ""
		if n.Agg == AggColMeans {
			agg = ", agg=colmeans"
		}
		fmt.Fprintf(&b, "(pat=%s, gene=%s%s)", inputName(n.Inputs[0]), inputName(n.Inputs[1]), agg)
	case OpKernelSVD:
		fmt.Fprintf(&b, "(k=%d, seed=%d)", n.K, n.Seed)
	case OpKernelBicluster:
		fmt.Fprintf(&b, "(max=%d, seed=%d)", n.MaxBiclusters, n.Seed)
	case OpTopKByAbs:
		fmt.Fprintf(&b, "(frac=%g)", n.TopFrac)
	case OpEmit:
		fmt.Fprintf(&b, "(%s)", []string{"regression", "covariance", "bicluster", "svd", "stats"}[n.Answer])
	}
	return b.String()
}

func inputName(i int) string {
	if i < 0 {
		return "all"
	}
	return fmt.Sprintf("#%d", i)
}

// OpSet is a bitset of operator kinds — an engine's capability surface, or
// the operator footprint of a plan.
type OpSet uint32

// NewOpSet builds a set from the listed kinds.
func NewOpSet(ks ...OpKind) OpSet {
	var s OpSet
	for _, k := range ks {
		s |= 1 << uint(k)
	}
	return s
}

// AllOps is the full operator vocabulary.
func AllOps() OpSet { return 1<<uint(numOpKinds) - 1 }

// Has reports membership.
func (s OpSet) Has(k OpKind) bool { return s&(1<<uint(k)) != 0 }

// Without removes kinds from the set.
func (s OpSet) Without(ks ...OpKind) OpSet {
	for _, k := range ks {
		s &^= 1 << uint(k)
	}
	return s
}

// Kinds lists the members in declaration order.
func (s OpSet) Kinds() []OpKind {
	var out []OpKind
	for k := OpKind(0); k < numOpKinds; k++ {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}
