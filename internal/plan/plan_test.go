package plan

import (
	"errors"
	"strings"
	"testing"

	"github.com/genbase/genbase/internal/engine"
)

// Every scenario must compile to a DAG that ends in Emit, whose edges all
// point backwards (topological order), and whose operator footprint is
// resolvable via OpsFor.
func TestEveryScenarioCompilesToWellFormedDAG(t *testing.T) {
	for _, q := range engine.AllScenarios() {
		pl, err := Compile(q, engine.DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(pl.Nodes) == 0 {
			t.Fatalf("%s: empty plan", q)
		}
		last := pl.Nodes[len(pl.Nodes)-1]
		if last.Kind != OpEmit {
			t.Fatalf("%s: plan ends in %v, want Emit", q, last.Kind)
		}
		for i, n := range pl.Nodes {
			for _, in := range n.Inputs {
				if in >= i {
					t.Fatalf("%s: node #%d (%v) has forward edge to #%d", q, i, n.Kind, in)
				}
			}
		}
		ops, ok := OpsFor(q)
		if !ok {
			t.Fatalf("%s: OpsFor failed", q)
		}
		if ops != pl.Ops() {
			t.Fatalf("%s: OpsFor %b != plan footprint %b", q, ops, pl.Ops())
		}
	}
}

func TestCompileRejectsBadParams(t *testing.T) {
	base := engine.DefaultParams()
	cases := []struct {
		name   string
		q      engine.QueryID
		mutate func(*engine.Params)
	}{
		{"svdk zero", engine.Q4SVD, func(p *engine.Params) { p.SVDK = 0 }},
		{"svdk negative", engine.Q4SVD, func(p *engine.Params) { p.SVDK = -3 }},
		{"topfrac zero", engine.Q2Covariance, func(p *engine.Params) { p.CovarianceTopFrac = 0 }},
		{"topfrac above one", engine.Q2Covariance, func(p *engine.Params) { p.CovarianceTopFrac = 1.5 }},
		{"maxbiclusters zero", engine.Q3Biclustering, func(p *engine.Params) { p.MaxBiclusters = 0 }},
		{"samplefrac zero", engine.Q5Statistics, func(p *engine.Params) { p.SampleFrac = 0 }},
		{"samplefrac one", engine.Q5Statistics, func(p *engine.Params) { p.SampleFrac = 1 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if _, err := Compile(tc.q, p); !errors.Is(err, engine.ErrBadParams) {
			t.Errorf("%s: want ErrBadParams, got %v", tc.name, err)
		}
	}
	// The same out-of-range field is irrelevant to a query that never reads
	// it: a Q1 request with a broken SVDK must still compile.
	p := base
	p.SVDK = -1
	p.SampleFrac = 0
	if _, err := Compile(engine.Q1Regression, p); err != nil {
		t.Errorf("Q1 with irrelevant bad fields: %v", err)
	}
}

func TestCompileUnknownQueryUnsupported(t *testing.T) {
	if _, err := Compile(engine.QueryID(99), engine.DefaultParams()); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
	if Supports(AllOps(), engine.QueryID(99)) {
		t.Fatal("Supports claimed an unknown query")
	}
}

// The fingerprint covers exactly the parameters the plan reads: irrelevant
// fields coalesce, relevant fields differentiate.
func TestFingerprintCoversOnlyRelevantParams(t *testing.T) {
	base := engine.DefaultParams()
	fp := func(q engine.QueryID, p engine.Params) string {
		pl, err := Compile(q, p)
		if err != nil {
			t.Fatal(err)
		}
		return pl.Fingerprint()
	}

	// Irrelevant: Q4 never reads MaxAge, Gender, DiseaseID, SampleFrac.
	p2 := base
	p2.MaxAge = 99
	p2.Gender = 'F'
	p2.DiseaseID++
	p2.SampleFrac = 0.5
	if fp(engine.Q4SVD, base) != fp(engine.Q4SVD, p2) {
		t.Error("Q4 fingerprint changed with irrelevant params")
	}
	// Relevant: SVDK, Seed, FunctionThreshold all feed Q4's plan.
	for name, mut := range map[string]func(*engine.Params){
		"svdk": func(p *engine.Params) { p.SVDK++ },
		"seed": func(p *engine.Params) { p.Seed++ },
		"thr":  func(p *engine.Params) { p.FunctionThreshold++ },
	} {
		p := base
		mut(&p)
		if fp(engine.Q4SVD, base) == fp(engine.Q4SVD, p) {
			t.Errorf("Q4 fingerprint ignored relevant param %s", name)
		}
	}
	// Two SampleFracs that round to the same modulus are the same
	// computation, and fingerprint as such.
	pa, pb := base, base
	pa.SampleFrac = 0.025
	pb.SampleFrac = 0.0251
	if pa.SamplePatientStep() == pb.SamplePatientStep() &&
		fp(engine.Q5Statistics, pa) != fp(engine.Q5Statistics, pb) {
		t.Error("Q5 fingerprint distinguishes SampleFracs with identical step")
	}
	// Distinct queries never collide.
	seen := map[string]engine.QueryID{}
	for _, q := range engine.AllScenarios() {
		f := fp(q, base)
		if prev, dup := seen[f]; dup {
			t.Errorf("%s and %s share a fingerprint", prev, q)
		}
		seen[f] = q
	}
}

func TestSupportsDerivedFromCapabilities(t *testing.T) {
	// A full vocabulary supports every scenario.
	for _, q := range engine.AllScenarios() {
		if !Supports(AllOps(), q) {
			t.Errorf("full capability set does not support %s", q)
		}
	}
	// Removing the bicluster kernel kills exactly Q3 — the derived
	// equivalent of the old hardcoded "Madlib/Hadoop can't bicluster".
	caps := AllOps().Without(OpKernelBicluster)
	for _, q := range engine.AllScenarios() {
		want := q != engine.Q3Biclustering
		if got := Supports(caps, q); got != want {
			t.Errorf("caps without bicluster: Supports(%s)=%v, want %v", q, got, want)
		}
	}
	// An engine with no kernels supports nothing.
	none := NewOpSet(OpScanTable, OpSelectPred, OpSamplePatients, OpPivotMicro, OpEmit)
	for _, q := range engine.AllScenarios() {
		if Supports(none, q) {
			t.Errorf("kernel-less capability set claims %s", q)
		}
	}
}

// Q6 is the planner-only scenario: its plan must reuse the existing operator
// vocabulary (a subset of Q1 ∪ Q2's operators — nothing new for engines to
// implement) and bake both predicates in.
func TestCohortRegressionIsPlannerOnly(t *testing.T) {
	q6, _ := OpsFor(engine.Q6CohortRegression)
	q1, _ := OpsFor(engine.Q1Regression)
	q2, _ := OpsFor(engine.Q2Covariance)
	if q6&^(q1|q2) != 0 {
		t.Fatalf("Q6 needs operators outside Q1 ∪ Q2: %v", (q6 &^ (q1 | q2)).Kinds())
	}
	pl, err := Compile(engine.Q6CohortRegression, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	fp := pl.Fingerprint()
	for _, want := range []string{"function<", "diseaseid=", "Kernel[regression]"} {
		if !strings.Contains(fp, want) {
			t.Errorf("Q6 fingerprint %q missing %q", fp, want)
		}
	}
}
