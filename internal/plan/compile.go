package plan

import (
	"fmt"
	"strings"
	"sync"

	"github.com/genbase/genbase/internal/engine"
)

// Plan is a compiled query: a DAG of operator nodes stored in topological
// order (the executor runs them sequentially; every input index is smaller
// than its consumer's index).
type Plan struct {
	Query engine.QueryID
	Nodes []Node
}

// Compile lowers (query, params) into the operator DAG. Parameters are
// validated here — the single admission point — so bad values are rejected
// before any engine work instead of flowing silently into kernels.
func Compile(q engine.QueryID, p engine.Params) (*Plan, error) {
	if err := p.Validate(q); err != nil {
		return nil, err
	}
	b := &builder{pl: &Plan{Query: q, Nodes: make([]Node, 0, 8)}}
	switch q {
	case engine.Q1Regression:
		genes := b.selectGenes(p.FunctionThreshold)
		x := b.pivot(-1, genes)
		y := b.scan(TablePatients, ColDrugResponse, -1)
		k := b.kernel(OpKernelRegression, x, y)
		b.emit(AnswerRegression, k, genes, -1)
	case engine.Q2Covariance:
		pats := b.add(Node{
			Kind: OpSelectPred, Table: TablePatients,
			Preds:    []Pred{{Col: ColDiseaseID, Op: CmpEQ, Val: p.DiseaseID}},
			MinRows:  2,
			GuardMsg: fmt.Sprintf("fewer than two patients with disease %d", p.DiseaseID),
		})
		x := b.pivot(pats, -1)
		cov := b.kernel(OpKernelCovariance, x)
		meta := b.scan(TableGenes, ColFunction, -1)
		top := b.add(Node{Kind: OpTopKByAbs, TopFrac: p.CovarianceTopFrac, Inputs: []int{cov, meta, pats}})
		b.emit(AnswerCovariance, top)
	case engine.Q3Biclustering:
		pats := b.add(Node{
			Kind: OpSelectPred, Table: TablePatients,
			Preds: []Pred{
				{Col: ColGender, Op: CmpEQ, Val: int64(p.Gender)},
				{Col: ColAge, Op: CmpLT, Val: p.MaxAge},
			},
			MinRows:  4,
			GuardMsg: "too few patients pass the Q3 filter",
		})
		x := b.pivot(pats, -1)
		k := b.add(Node{Kind: OpKernelBicluster, Phase: PhaseKernel,
			MaxBiclusters: p.MaxBiclusters, Seed: p.Seed, Inputs: []int{x}})
		b.emit(AnswerBicluster, k, pats)
	case engine.Q4SVD:
		genes := b.selectGenes(p.FunctionThreshold)
		x := b.pivot(-1, genes)
		k := b.add(Node{Kind: OpKernelSVD, Phase: PhaseKernel,
			K: p.SVDK, Seed: p.Seed, Inputs: []int{x}})
		b.emit(AnswerSVD, k, genes)
	case engine.Q5Statistics:
		sample := b.add(Node{Kind: OpSamplePatients, Step: p.SamplePatientStep()})
		means := b.add(Node{Kind: OpPivotMicro, Agg: AggColMeans, Inputs: []int{sample, -1}})
		members := b.scan(TableGO, ColMembers, -1)
		k := b.kernel(OpKernelStats, means, members)
		b.emit(AnswerStats, k)
	case engine.Q6CohortRegression:
		// The planner-only scenario: Q1's gene predicate (tightened for the
		// smaller population) × Q2's cohort predicate. No engine has (or
		// needs) any code for it — the DAG reuses the registered physical
		// operators as-is.
		genes := b.selectGenes(p.CohortFunctionThreshold)
		pats := b.add(Node{
			Kind: OpSelectPred, Table: TablePatients,
			Preds:    []Pred{{Col: ColDiseaseID, Op: CmpEQ, Val: p.DiseaseID}},
			MinRows:  2,
			GuardMsg: fmt.Sprintf("fewer than two cohort patients with disease %d", p.DiseaseID),
		})
		x := b.pivot(pats, genes)
		y := b.scan(TablePatients, ColDrugResponse, pats)
		k := b.kernel(OpKernelRegression, x, y)
		b.emit(AnswerRegression, k, genes, pats)
	default:
		return nil, engine.ErrUnsupported
	}
	// The stats-free ordering pass (order.go): run the cheapest, most
	// binding leaf selections first. Answer-invariant — the golden tests pin
	// the reordered plans' answers bitwise on all 14 configurations.
	Reorder(b.pl, DefaultRank)
	return b.pl, nil
}

type builder struct{ pl *Plan }

func (b *builder) add(n Node) int {
	if n.Inputs == nil {
		n.Inputs = []int{}
	}
	b.pl.Nodes = append(b.pl.Nodes, n)
	return len(b.pl.Nodes) - 1
}

func (b *builder) selectGenes(thr int64) int {
	return b.add(Node{
		Kind: OpSelectPred, Table: TableGenes,
		Preds:    []Pred{{Col: ColFunction, Op: CmpLT, Val: thr}},
		MinRows:  1,
		GuardMsg: fmt.Sprintf("no genes pass function < %d", thr),
	})
}

func (b *builder) pivot(patSel, geneSel int) int {
	return b.add(Node{Kind: OpPivotMicro, Inputs: []int{patSel, geneSel}})
}

func (b *builder) scan(table, col string, idsInput int) int {
	return b.add(Node{Kind: OpScanTable, Table: table, Col: col, Inputs: []int{idsInput}})
}

func (b *builder) kernel(kind OpKind, inputs ...int) int {
	return b.add(Node{Kind: kind, Phase: PhaseKernel, Inputs: inputs})
}

func (b *builder) emit(kind AnswerKind, inputs ...int) int {
	return b.add(Node{Kind: OpEmit, Answer: kind, Inputs: inputs})
}

// Ops returns the plan's operator footprint.
func (pl *Plan) Ops() OpSet {
	var s OpSet
	for i := range pl.Nodes {
		s |= 1 << uint(pl.Nodes[i].Kind)
	}
	return s
}

// Fingerprint is the canonical identity of the computation this plan
// performs: the operator DAG with its baked-in parameters. Two Params that
// differ only in fields the query never reads (e.g. MaxAge for Q4) compile
// to identical fingerprints, so semantically identical requests coalesce in
// the serve result cache; any parameter the query does read (thresholds,
// seeds, k) changes the fingerprint.
func (pl *Plan) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "q%d", int(pl.Query))
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		b.WriteByte('|')
		b.WriteString(n.describe())
		if len(n.Inputs) > 0 {
			fmt.Fprintf(&b, "%v", n.Inputs)
		}
	}
	return b.String()
}

// opsFor memoizes each query's operator footprint (the plan shape is fixed
// per QueryID; parameter values never change which operators appear).
var opsFor sync.Map // engine.QueryID → OpSet

// OpsFor returns the operator footprint of a query, or ok=false for an
// unknown query.
func OpsFor(q engine.QueryID) (OpSet, bool) {
	if v, ok := opsFor.Load(q); ok {
		return v.(OpSet), true
	}
	pl, err := Compile(q, engine.DefaultParams())
	if err != nil {
		return 0, false
	}
	s := pl.Ops()
	opsFor.Store(q, s)
	return s, true
}

// Supports derives the capability answer the engines used to hardcode: an
// engine supports a query iff its registered physical operators cover the
// query's compiled footprint.
func Supports(caps OpSet, q engine.QueryID) bool {
	need, ok := OpsFor(q)
	return ok && need&^caps == 0
}
