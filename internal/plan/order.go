package plan

import "sort"

// The greedy stats-free ordering pass (DESIGN.md §16). Compile builds each
// query's DAG in the order the scenario prose reads, but independent leaf
// selections — metadata filters with no plan inputs — commute: each one
// reads only its base metadata table, so executing them in any order
// produces byte-identical answers (the golden tests pin this across all 14
// configurations). The pass runs the cheapest, most-binding ones first, so a
// request that is going to fail a MinRows guard fails before the plan spends
// time on wider selections, and the executor's working set stays small
// early. Following the janus-datalog "statistics unnecessary" argument, the
// rank needs no table statistics: on this fixed schema, predicate shape
// (equality binds tighter than a range) and operator identity are enough to
// order the chain.

// Reorderable reports whether a node is legal for the ordering pass to
// move: only leaf metadata selections — SelectPred or SamplePatients with no
// plan inputs — commute. Everything else (scans feeding emits, pivots,
// kernels, emit) is pinned: those operators consume upstream values, so
// moving one could change what its consumer reads.
func Reorderable(n *Node) bool {
	switch n.Kind {
	case OpSelectPred, OpSamplePatients:
	default:
		return false
	}
	for _, in := range n.Inputs {
		if in >= 0 {
			return false
		}
	}
	return true
}

// DefaultRank is the stats-free cost rank: lower runs earlier. A patient
// sample is a stride walk with no guard — essentially free. Selections rank
// by predicate shape: each equality binds tighter (and fails a guard
// faster) than each range comparison, so more and tighter predicates pull a
// selection earlier. Non-reorderable operators rank last (the pass never
// moves them, but the rank is total for determinism).
func DefaultRank(n *Node) int {
	switch n.Kind {
	case OpSamplePatients:
		return 0
	case OpSelectPred:
		r := 100
		for _, p := range n.Preds {
			if p.Op == CmpEQ {
				r -= 10
			} else {
				r -= 5
			}
		}
		return r
	}
	return 1 << 20
}

// Reorder permutes the plan's reorderable leaf selections into ascending
// rank order (stable: equal ranks keep compile order), remapping every
// input index. Only the reorderable nodes trade positions — every other
// node keeps its index — so the plan stays a valid topological order
// whenever the permutation is legal; an illegal permutation (a moved leaf
// would land after one of its consumers) leaves the plan untouched rather
// than emit an unexecutable DAG.
func Reorder(pl *Plan, rank func(*Node) int) {
	var slots []int // positions reorderable nodes occupy, ascending
	for i := range pl.Nodes {
		if Reorderable(&pl.Nodes[i]) {
			slots = append(slots, i)
		}
	}
	if len(slots) < 2 {
		return
	}
	// Old indices of the reorderable nodes, sorted by rank.
	order := append([]int(nil), slots...)
	sort.SliceStable(order, func(a, b int) bool {
		return rank(&pl.Nodes[order[a]]) < rank(&pl.Nodes[order[b]])
	})
	oldToNew := make([]int, len(pl.Nodes))
	for i := range oldToNew {
		oldToNew[i] = i
	}
	for k, old := range order {
		oldToNew[old] = slots[k] // k-th cheapest takes the k-th slot
	}
	// Legality: after the permutation every consumer must still follow all
	// of its inputs. Reorderable nodes have no inputs, so only consumers
	// sitting between two leaf slots can be at risk.
	for i := range pl.Nodes {
		for _, in := range pl.Nodes[i].Inputs {
			if in >= 0 && oldToNew[in] >= oldToNew[i] {
				return
			}
		}
	}
	next := make([]Node, len(pl.Nodes))
	for i := range pl.Nodes {
		n := pl.Nodes[i]
		if len(n.Inputs) > 0 {
			ins := make([]int, len(n.Inputs))
			for j, in := range n.Inputs {
				if in >= 0 {
					ins[j] = oldToNew[in]
				} else {
					ins[j] = in
				}
			}
			n.Inputs = ins
		}
		next[oldToNew[i]] = n
	}
	pl.Nodes = next
}
