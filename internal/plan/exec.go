package plan

import (
	"context"
	"fmt"
	"strings"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// Physical is the operator surface an engine registers with the plan layer.
// Each method is one physical operator family; the generic executor wires
// them together according to the compiled DAG. Implementations keep their
// storage-native execution strategies — the column store serves selections
// from compressed columns and pivots as zero-copy views, the row store runs
// Volcano plans over heap pages, the array store gathers chunks, Hadoop runs
// MR jobs, the virtual-cluster engines run per-shard pivots on their owner
// nodes — and their configuration-specific kernel boundaries (external-R
// text glue, in-database UDFs, SQL simulation, coprocessor offload,
// gather-to-coordinator).
//
// M is the engine's matrix currency — the value a pivot produces and a
// kernel consumes. Single-node engines implement Physical[*linalg.Matrix];
// the multi-node engines implement Physical[*distlinalg.DistMatrix], whose
// pivots materialize row-block shards on the owning virtual nodes and whose
// kernels either run distributed (ScaLAPACK-style reductions) or gather to
// the coordinator. The executor never inspects M: it only threads values
// from producers to consumers, so one compiled plan drives both families.
//
// Kernel methods receive the query StopWatch because the transfer boundary
// lives inside them: a "+R" kernel banks the text-COPY cost as transfer
// before compute, the coprocessor offload books modeled device time, and the
// in-database paths go straight to analytics. All other operators are timed
// by the executor under the phase tag of their plan node. Engines whose time
// is simulated rather than measured additionally implement Timekeeper.
//
// Matrix ownership: a kernel consumes its input matrix (releasing it to the
// arena when pooled); the executor releases the covariance matrix after the
// generic TopKByAbs summary.
type Physical[M any] interface {
	// Name is the configuration name used in errors (and by Explain).
	Name() string
	// Capabilities lists the operators this engine implements. Supports is
	// derived from it — there is no per-query switch anywhere.
	Capabilities() OpSet
	// Dims returns the loaded dataset's patient and gene counts.
	Dims() (patients, genes int)
	// SelectIDs evaluates a conjunctive metadata predicate, returning
	// ascending entity ids.
	SelectIDs(ctx context.Context, table string, preds []Pred) ([]int64, error)
	// ScanFloats projects a float column (today: patients.drugresponse) in
	// id order; ids == nil means every row, otherwise the result aligns
	// with ids.
	ScanFloats(ctx context.Context, table, col string, ids []int64) ([]float64, error)
	// Pivot restructures the microarray into the engine's dense patient×gene
	// matrix currency for the given selections (nil = all).
	Pivot(ctx context.Context, patientIDs, geneIDs []int64) (M, error)
	// SampleMeans computes per-gene mean expression over the deterministic
	// patient sample (Q5's fused filter+aggregate pivot), returning the
	// means and the sample size.
	SampleMeans(ctx context.Context, step int) ([]float64, int, error)
	// GOMembers groups GO membership by term.
	GOMembers(ctx context.Context) ([][]int32, error)
	// GeneMeta projects the gene metadata Q2's final join consumes.
	GeneMeta(ctx context.Context) (engine.GeneMeta, error)

	// RunRegression fits y on [1|x], returning coefficients and R².
	RunRegression(ctx context.Context, sw *engine.StopWatch, x M, y []float64) ([]float64, float64, error)
	// RunCovariance computes the gene-gene covariance of x. The result is
	// always coordinator-local: the generic TopKByAbs summary consumes it.
	RunCovariance(ctx context.Context, sw *engine.StopWatch, x M) (*linalg.Matrix, error)
	// RunSVD computes x's top-k singular values.
	RunSVD(ctx context.Context, sw *engine.StopWatch, x M, k int, seed uint64) ([]float64, error)
	// RunBicluster extracts up to maxB biclusters from x.
	RunBicluster(ctx context.Context, sw *engine.StopWatch, x M, maxB int, seed uint64) ([]bicluster.Bicluster, error)
	// RunStats performs the per-term enrichment test over the sampled
	// means.
	RunStats(ctx context.Context, sw *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error)

	// PhysicalName describes the physical implementation of an operator
	// kind for plan explains (e.g. "selection-vector scan over compressed
	// columns").
	PhysicalName(k OpKind) string
}

// Describer is the matrix-currency-agnostic subset of Physical that Explain
// and the capability checks need: every Physical[M] satisfies it, so tools
// can describe an engine without naming its M.
type Describer interface {
	Name() string
	Capabilities() OpSet
	PhysicalName(k OpKind) string
}

// Timekeeper is an optional extension implemented by engines whose reported
// query time is a simulated makespan rather than the executor's wall-clock
// StopWatch (the virtual-cluster engines). The executor mirrors its StopWatch
// switches into the Timekeeper at the same node boundaries — MarkDM before a
// data-management node, MarkDone before Emit — and kernels refine their own
// phases internally, exactly as they do with the StopWatch. When an executed
// engine implements Timekeeper, the Result carries QueryTiming() instead of
// the wall-clock split.
type Timekeeper interface {
	// MarkDM attributes subsequent virtual-clock growth to data management.
	MarkDM()
	// MarkDone stops attribution (answer assembly is untimed, as with the
	// StopWatch).
	MarkDone()
	// ExecLocal runs an executor-resident step (the generic TopKByAbs
	// summary) on the coordinator's clock, so shared answer assembly has
	// the same virtual cost it had when engines hand-coded it.
	ExecLocal(fn func() error) error
	// QueryTiming returns the accumulated virtual phase split.
	QueryTiming() engine.Timing
}

// regOut carries a regression kernel's result between nodes.
type regOut struct {
	coef []float64
	r2   float64
}

// meansOut carries Q5's fused aggregate result between nodes.
type meansOut struct {
	means   []float64
	sampled int
}

// Execute runs a compiled plan against an engine's physical operators,
// producing the same engine.Result the hardcoded query methods used to
// build. The StopWatch phase switches happen at node boundaries per the
// plan's phase tags; kernels refine their own phases internally.
func Execute[M any](ctx context.Context, ex Physical[M], pl *Plan) (*engine.Result, error) {
	if !Supports(ex.Capabilities(), pl.Query) {
		return nil, engine.ErrUnsupported
	}
	tk, _ := any(ex).(Timekeeper)
	var sw engine.StopWatch
	vals := make([]any, len(pl.Nodes))
	var answer any
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		if err := engine.CheckCtx(ctx); err != nil {
			releaseLive(vals)
			return nil, err
		}
		if n.Kind == OpEmit {
			sw.Stop()
			if tk != nil {
				tk.MarkDone()
			}
		} else if n.Phase == PhaseDM {
			sw.StartDM()
			if tk != nil {
				tk.MarkDM()
			}
		}
		v, err := executeNode(ctx, ex, tk, &sw, n, vals)
		// Kernels and the TopK summary take ownership of their matrix
		// inputs and release them to the arena on every path, success or
		// failure (transfer failures included — see TransferMatrixTimed);
		// clear the slots so the error sweep below cannot double-release.
		if consumesMatrixInputs(n.Kind) {
			for _, idx := range n.Inputs {
				if idx >= 0 {
					if _, ok := vals[idx].(*linalg.Matrix); ok {
						vals[idx] = nil
					} else if _, ok := vals[idx].(M); ok {
						vals[idx] = nil
					}
				}
			}
		}
		if err != nil {
			releaseLive(vals)
			return nil, err
		}
		vals[i] = v
		if n.Kind == OpEmit {
			answer = v
		}
	}
	sw.Stop()
	timing := sw.Timing()
	if tk != nil {
		tk.MarkDone()
		timing = tk.QueryTiming()
	}
	return &engine.Result{Query: pl.Query, Timing: timing, Answer: answer}, nil
}

// consumesMatrixInputs reports whether a node's physical implementation
// takes ownership of its matrix inputs.
func consumesMatrixInputs(k OpKind) bool {
	switch k {
	case OpKernelRegression, OpKernelCovariance, OpKernelSVD, OpKernelBicluster, OpTopKByAbs:
		return true
	}
	return false
}

// releaseLive returns any still-unconsumed pooled matrices to the arena on
// an abandoned execution (error or cancellation between a pivot and its
// kernel) — a no-op for storage views and for distributed shard sets, which
// are not pooled. Without this, every aborted query would bypass the arena
// and force fresh allocations on the next pivot.
func releaseLive(vals []any) {
	for _, v := range vals {
		if m, ok := v.(*linalg.Matrix); ok && m != nil {
			linalg.PutMatrix(m)
		}
	}
}

func executeNode[M any](ctx context.Context, ex Physical[M], tk Timekeeper, sw *engine.StopWatch, n *Node, vals []any) (any, error) {
	in := func(slot int) any {
		idx := n.Inputs[slot]
		if idx < 0 {
			return nil
		}
		return vals[idx]
	}
	ids := func(slot int) []int64 {
		v := in(slot)
		if v == nil {
			return nil
		}
		return v.([]int64)
	}
	switch n.Kind {
	case OpSelectPred:
		out, err := ex.SelectIDs(ctx, n.Table, n.Preds)
		if err != nil {
			return nil, err
		}
		if len(out) < n.MinRows {
			return nil, fmt.Errorf("%s: %s (%d rows)", ex.Name(), n.GuardMsg, len(out))
		}
		return out, nil

	case OpScanTable:
		switch {
		case n.Table == TablePatients && n.Col == ColDrugResponse:
			return ex.ScanFloats(ctx, n.Table, n.Col, ids(0))
		case n.Table == TableGenes && n.Col == ColFunction:
			return ex.GeneMeta(ctx)
		case n.Table == TableGO:
			return ex.GOMembers(ctx)
		default:
			return nil, fmt.Errorf("plan: no physical scan for %s.%s", n.Table, n.Col)
		}

	case OpSamplePatients:
		return n.Step, nil

	case OpPivotMicro:
		if n.Agg == AggColMeans {
			means, sampled, err := ex.SampleMeans(ctx, in(0).(int))
			if err != nil {
				return nil, err
			}
			return meansOut{means, sampled}, nil
		}
		return ex.Pivot(ctx, ids(0), ids(1))

	case OpKernelRegression:
		coef, r2, err := ex.RunRegression(ctx, sw, in(0).(M), in(1).([]float64))
		if err != nil {
			return nil, err
		}
		return regOut{coef, r2}, nil

	case OpKernelCovariance:
		return ex.RunCovariance(ctx, sw, in(0).(M))

	case OpKernelSVD:
		return ex.RunSVD(ctx, sw, in(0).(M), n.K, n.Seed)

	case OpKernelBicluster:
		return ex.RunBicluster(ctx, sw, in(0).(M), n.MaxBiclusters, n.Seed)

	case OpKernelStats:
		mo := in(0).(meansOut)
		return ex.RunStats(ctx, sw, mo.means, in(1).([][]int32), mo.sampled)

	case OpTopKByAbs:
		cov := in(0).(*linalg.Matrix)
		var ans *engine.CovarianceAnswer
		summarize := func() error {
			ans = engine.SummarizeCovariance(cov, n.TopFrac, in(1).(engine.GeneMeta), len(ids(2)))
			return nil
		}
		// The shared summary is executor code, but on a virtual cluster it
		// still runs somewhere: charge the coordinator, as the hand-coded
		// engines did.
		var err error
		if tk != nil {
			err = tk.ExecLocal(summarize)
		} else {
			err = summarize()
		}
		linalg.PutMatrix(cov)
		if err != nil {
			return nil, err
		}
		return ans, nil

	case OpEmit:
		return emit(ex, n, in, ids)

	default:
		return nil, fmt.Errorf("plan: unknown operator %v", n.Kind)
	}
}

// emit assembles the engine-neutral answer struct. Input roles are
// positional per AnswerKind (see Compile).
func emit[M any](ex Physical[M], n *Node, in func(int) any, ids func(int) []int64) (any, error) {
	switch n.Answer {
	case AnswerRegression:
		r := in(0).(regOut)
		genes := ids(1)
		sel := make([]int, len(genes))
		for i, g := range genes {
			sel[i] = int(g)
		}
		nPats, _ := ex.Dims()
		if pats := ids(2); pats != nil {
			nPats = len(pats)
		}
		return &engine.RegressionAnswer{
			Coefficients:  r.coef,
			RSquared:      r.r2,
			SelectedGenes: sel,
			NumPatients:   nPats,
		}, nil
	case AnswerCovariance:
		return in(0).(*engine.CovarianceAnswer), nil
	case AnswerBicluster:
		return engine.BiclusterAnswerFromBlocks(in(0).([]bicluster.Bicluster), ids(1)), nil
	case AnswerSVD:
		return &engine.SVDAnswer{SelectedGenes: len(ids(1)), SingularValues: in(0).([]float64)}, nil
	case AnswerStats:
		return in(0).(*engine.StatsAnswer), nil
	default:
		return nil, fmt.Errorf("plan: unknown answer kind %d", int(n.Answer))
	}
}

// Explain renders the compiled plan with each operator's phase tag and the
// engine's physical implementation — the genbase-bench -explain output. It
// takes the currency-agnostic Describer so single-node and distributed
// engines explain through the same call.
func Explain(pl *Plan, ex Describer) string {
	return ExplainAnnotated(pl, ex, nil)
}

// ExplainAnnotated is Explain with a caller-supplied per-operator suffix —
// the hook genbase-bench uses to print each operator's estimated cost
// (internal/cost cannot be imported here: cost estimates plans, so the
// dependency points the other way). annot receives the node index and
// returns a suffix appended after the physical implementation; nil or
// empty-string results annotate nothing.
func ExplainAnnotated(pl *Plan, ex Describer, annot func(i int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s plan for %s (fingerprint %s)\n", ex.Name(), pl.Query, pl.Fingerprint())
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		ph := n.Phase.String()
		if n.Kind == OpEmit {
			ph = "-" // the stopwatch stops before answer assembly
		}
		suffix := ""
		if annot != nil {
			if s := annot(i); s != "" {
				suffix = "  " + s
			}
		}
		fmt.Fprintf(&b, "  #%d %-46s [%s] -> %s%s\n", i, n.describe(), ph, ex.PhysicalName(n.Kind), suffix)
	}
	return b.String()
}
