package plan

import (
	"testing"

	"github.com/genbase/genbase/internal/engine"
)

// Every compiled plan must come out of the ordering pass a valid
// topological order: all real inputs strictly before their consumer.
func TestReorderKeepsTopologicalOrder(t *testing.T) {
	for _, q := range engine.AllScenarios() {
		pl, err := Compile(q, engine.DefaultParams())
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		for i := range pl.Nodes {
			for _, in := range pl.Nodes[i].Inputs {
				if in >= i {
					t.Errorf("%v: node #%d consumes #%d (not yet executed)", q, i, in)
				}
			}
		}
	}
}

// Q6 is the plan with two commuting leaf selections: the equality-guarded
// patients filter must run before the range-predicate genes filter, with
// every downstream input remapped.
func TestReorderRunsMostBindingSelectionFirst(t *testing.T) {
	pl, err := Compile(engine.Q6CohortRegression, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	first, second := &pl.Nodes[0], &pl.Nodes[1]
	if first.Kind != OpSelectPred || first.Table != TablePatients || first.Preds[0].Op != CmpEQ {
		t.Fatalf("node #0 should be the equality patients selection, got %s", first.describe())
	}
	if second.Kind != OpSelectPred || second.Table != TableGenes {
		t.Fatalf("node #1 should be the genes selection, got %s", second.describe())
	}
	// The pivot consumes (patients, genes) — now (#0, #1).
	var pivot *Node
	for i := range pl.Nodes {
		if pl.Nodes[i].Kind == OpPivotMicro {
			pivot = &pl.Nodes[i]
		}
	}
	if pivot == nil || pivot.Inputs[0] != 0 || pivot.Inputs[1] != 1 {
		t.Fatalf("pivot inputs not remapped: %+v", pivot)
	}
}

func TestReorderableOnlyLeafSelections(t *testing.T) {
	cases := []struct {
		name string
		n    Node
		want bool
	}{
		{"leaf select", Node{Kind: OpSelectPred}, true},
		{"leaf select, explicit no-input", Node{Kind: OpSelectPred, Inputs: []int{-1}}, true},
		{"leaf sample", Node{Kind: OpSamplePatients}, true},
		{"select with real input", Node{Kind: OpSelectPred, Inputs: []int{2}}, false},
		{"scan", Node{Kind: OpScanTable}, false},
		{"pivot", Node{Kind: OpPivotMicro, Inputs: []int{-1, -1}}, false},
		{"kernel", Node{Kind: OpKernelCovariance, Inputs: []int{0}}, false},
		{"emit", Node{Kind: OpEmit, Inputs: []int{0}}, false},
	}
	for _, c := range cases {
		if got := Reorderable(&c.n); got != c.want {
			t.Errorf("%s: Reorderable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDefaultRankOrdersByBindingPower(t *testing.T) {
	sample := Node{Kind: OpSamplePatients}
	eq := Node{Kind: OpSelectPred, Preds: []Pred{{Op: CmpEQ}}}
	lt := Node{Kind: OpSelectPred, Preds: []Pred{{Op: CmpLT}}}
	eqLT := Node{Kind: OpSelectPred, Preds: []Pred{{Op: CmpEQ}, {Op: CmpLT}}}
	kernel := Node{Kind: OpKernelSVD}
	if !(DefaultRank(&sample) < DefaultRank(&eqLT) &&
		DefaultRank(&eqLT) < DefaultRank(&eq) &&
		DefaultRank(&eq) < DefaultRank(&lt) &&
		DefaultRank(&lt) < DefaultRank(&kernel)) {
		t.Errorf("rank order wrong: sample=%d eq+lt=%d eq=%d lt=%d kernel=%d",
			DefaultRank(&sample), DefaultRank(&eqLT), DefaultRank(&eq), DefaultRank(&lt), DefaultRank(&kernel))
	}
}

// Non-commutable operators never move, whatever the rank says: a rank
// function that inverts every comparison still leaves scans, pivots,
// kernels, and emits at their compiled positions.
func TestReorderNeverMovesNonCommutableOperators(t *testing.T) {
	adversarial := func(n *Node) int { return -DefaultRank(n) }
	for _, q := range engine.AllScenarios() {
		pl, err := Compile(q, engine.DefaultParams())
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		before := make([]OpKind, len(pl.Nodes))
		for i := range pl.Nodes {
			before[i] = pl.Nodes[i].Kind
		}
		Reorder(pl, adversarial)
		for i := range pl.Nodes {
			if !Reorderable(&pl.Nodes[i]) && pl.Nodes[i].Kind != before[i] {
				// A non-reorderable op may only sit where another
				// non-reorderable op of the same kind sat — i.e. it moved.
				t.Errorf("%v: non-commutable %v moved into slot %d (was %v)", q, pl.Nodes[i].Kind, i, before[i])
			}
		}
		// And the plan is still executable.
		for i := range pl.Nodes {
			for _, in := range pl.Nodes[i].Inputs {
				if in >= i {
					t.Errorf("%v: adversarial reorder broke topology at #%d", q, i)
				}
			}
		}
	}
}

// A permutation that would land a leaf after one of its consumers must be
// rejected wholesale, leaving the plan untouched.
func TestReorderRejectsIllegalPermutation(t *testing.T) {
	pl := &Plan{Nodes: []Node{
		{Kind: OpSelectPred, Table: TableGenes, Preds: []Pred{{Op: CmpLT}}},    // rank 95
		{Kind: OpScanTable, Table: TablePatients, Inputs: []int{0}},            // consumes #0
		{Kind: OpSelectPred, Table: TablePatients, Preds: []Pred{{Op: CmpEQ}}}, // rank 90: wants slot 0
	}}
	want := pl.Fingerprintish()
	Reorder(pl, DefaultRank)
	if got := pl.Fingerprintish(); got != want {
		t.Errorf("illegal permutation applied:\n got %s\nwant %s", got, want)
	}
}

// Fingerprintish renders node kinds+inputs for the illegal-permutation test
// (Fingerprint requires a Query).
func (pl *Plan) Fingerprintish() string {
	s := ""
	for i := range pl.Nodes {
		s += pl.Nodes[i].describe()
		for _, in := range pl.Nodes[i].Inputs {
			s += string(rune('0' + in))
		}
		s += "|"
	}
	return s
}

// Single-leaf plans pass through untouched (nothing to commute).
func TestReorderSingleLeafNoop(t *testing.T) {
	for _, q := range []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q5Statistics} {
		a, _ := Compile(q, engine.DefaultParams())
		b, _ := Compile(q, engine.DefaultParams())
		Reorder(b, DefaultRank) // second application: idempotent
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%v: Reorder not idempotent", q)
		}
	}
}
