package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRanksNoTies(t *testing.T) {
	r := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks=%v", r)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks=%v", r)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	r := Ranks([]float64{5, 5, 5})
	for _, v := range r {
		if v != 2 {
			t.Fatalf("ranks=%v", r)
		}
	}
}

func TestRanksEmpty(t *testing.T) {
	if len(Ranks(nil)) != 0 {
		t.Fatal("ranks of empty should be empty")
	}
}

// Property: ranks always sum to n(n+1)/2, with or without ties.
func TestRanksSumInvariant(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) {
				xs[i] = 0
			}
		}
		r := Ranks(xs)
		s := 0.0
		for _, v := range r {
			s += v
		}
		n := float64(len(xs))
		return almostEqual(s, n*(n+1)/2, 1e-9*(1+n*n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ranking is invariant under any strictly increasing transform.
func TestRanksMonotoneInvariance(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xs[i] = float64(i)
			}
			// Clamp into a range where the transform below stays strictly
			// increasing in float64 (atan saturates for huge magnitudes).
			xs[i] = math.Mod(xs[i], 1e6)
		}
		r1 := Ranks(xs)
		ys := make([]float64, len(xs))
		for i, v := range xs {
			ys[i] = math.Atan(v/1e6) * 3 // strictly increasing on the clamped range
		}
		r2 := Ranks(ys)
		for i := range r1 {
			if !almostEqual(r1[i], r2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTieGroups(t *testing.T) {
	g := TieGroups([]float64{1, 2, 2, 3, 3, 3, 4})
	sort.Ints(g)
	if len(g) != 2 || g[0] != 2 || g[1] != 3 {
		t.Fatalf("tie groups=%v", g)
	}
	if TieGroups([]float64{1, 2, 3}) != nil {
		t.Fatal("no ties expected")
	}
}

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ z, p float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if !almostEqual(NormalCDF(c.z), c.p, 1e-9) {
			t.Fatalf("CDF(%v)=%v want %v", c.z, NormalCDF(c.z), c.p)
		}
	}
}

func TestNormalCDFSFComplement(t *testing.T) {
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			z = 0.3
		}
		z = math.Mod(z, 10)
		return almostEqual(NormalCDF(z)+NormalSF(z), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile inverts the CDF.
func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-8, 0.001, 0.025, 0.2, 0.5, 0.7, 0.975, 0.999, 1 - 1e-8} {
		z := NormalQuantile(p)
		if !almostEqual(NormalCDF(z), p, 1e-7) {
			t.Fatalf("CDF(Q(%v))=%v", p, NormalCDF(z))
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile boundary behaviour")
	}
}

func TestTwoSidedPBounds(t *testing.T) {
	if TwoSidedP(0) != 1 {
		t.Fatalf("p at z=0 is %v", TwoSidedP(0))
	}
	if p := TwoSidedP(1.959963984540054); !almostEqual(p, 0.05, 1e-9) {
		t.Fatalf("p at z=1.96 is %v", p)
	}
}

func TestWilcoxonKnownExample(t *testing.T) {
	// Classic textbook example with clearly separated groups.
	x := []float64{1, 2, 3}
	y := []float64{10, 11, 12, 13}
	res, err := WilcoxonRankSum(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 6 { // ranks 1+2+3
		t.Fatalf("W=%v", res.W)
	}
	if res.U != 0 {
		t.Fatalf("U=%v", res.U)
	}
	if res.Z >= 0 {
		t.Fatalf("low-ranked group should give negative z, got %v", res.Z)
	}
}

func TestWilcoxonHandComputedReference(t *testing.T) {
	// Hand-computed with the standard normal approximation and continuity
	// correction (no ties): x ranks are {11,16,13,6,14,3,12} so W = 75,
	// U = 75 − 7·8/2 = 47, var(U) = 7·9/12·17 = 89.25,
	// z = (47 − 31.5 − 0.5)/√89.25 ≈ 1.58776, p ≈ 0.11236.
	x := []float64{8.5, 9.48, 8.65, 8.16, 8.83, 7.76, 8.63}
	y := []float64{8.27, 8.2, 8.25, 8.14, 9.0, 8.1, 7.2, 8.32, 7.7}
	res, err := WilcoxonRankSum(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 75 || res.U != 47 {
		t.Fatalf("W=%v U=%v want 75, 47", res.W, res.U)
	}
	if !almostEqual(res.Z, 1.58776, 1e-4) {
		t.Fatalf("z=%v want ≈1.58776", res.Z)
	}
	if !almostEqual(res.P, 0.11236, 5e-4) {
		t.Fatalf("p=%v want ≈0.11236", res.P)
	}
}

func TestWilcoxonEmptyGroup(t *testing.T) {
	if _, err := WilcoxonRankSum(nil, []float64{1}); err != ErrEmptyGroup {
		t.Fatalf("want ErrEmptyGroup, got %v", err)
	}
}

func TestWilcoxonAllTied(t *testing.T) {
	res, err := WilcoxonRankSum([]float64{3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Z != 0 || res.P != 1 {
		t.Fatalf("identical data should be null result: %+v", res)
	}
}

// Property: swapping the groups negates z and preserves p.
func TestWilcoxonGroupSwapSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64(uint64(rng)>>11) / (1 << 53)
		}
		x := make([]float64, 5+int(uint64(seed)%10))
		y := make([]float64, 4+int(uint64(seed)%7))
		for i := range x {
			x[i] = next()
		}
		for i := range y {
			y[i] = next()
		}
		a, err1 := WilcoxonRankSum(x, y)
		b, err2 := WilcoxonRankSum(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(a.Z, -b.Z, 1e-10) && almostEqual(a.P, b.P, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the test is invariant to strictly monotone transforms of the data.
func TestWilcoxonMonotoneInvariance(t *testing.T) {
	x := []float64{0.2, 1.5, 3.7, 0.9}
	y := []float64{2.2, 2.9, 0.1, 4.4, 1.1}
	a, _ := WilcoxonRankSum(x, y)
	tx := make([]float64, len(x))
	ty := make([]float64, len(y))
	for i, v := range x {
		tx[i] = math.Exp(v)
	}
	for i, v := range y {
		ty[i] = math.Exp(v)
	}
	b, _ := WilcoxonRankSum(tx, ty)
	if !almostEqual(a.Z, b.Z, 1e-12) || !almostEqual(a.P, b.P, 1e-12) {
		t.Fatal("wilcoxon not rank-invariant")
	}
}

// WilcoxonFromRanks must agree exactly with WilcoxonRankSum.
func TestWilcoxonFromRanksAgrees(t *testing.T) {
	x := []float64{5, 1, 8, 8, 2}
	y := []float64{3, 8, 9, 4, 4, 7}
	direct, err := WilcoxonRankSum(x, y)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]float64{}, x...), y...)
	ranks := Ranks(all)
	res, err := WilcoxonFromRanks(ranks[:len(x)], len(all), TieGroups(all))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(direct.Z, res.Z, 1e-12) || !almostEqual(direct.W, res.W, 1e-12) {
		t.Fatalf("direct %+v vs fromRanks %+v", direct, res)
	}
}

func TestWilcoxonFromRanksRejectsFullGroup(t *testing.T) {
	if _, err := WilcoxonFromRanks([]float64{1, 2}, 2, nil); err != ErrEmptyGroup {
		t.Fatalf("want ErrEmptyGroup, got %v", err)
	}
}

// Enrichment sanity: a group planted at the top of the ranking must get a
// large positive z and a tiny p.
func TestWilcoxonDetectsEnrichment(t *testing.T) {
	n := 200
	all := make([]float64, n)
	for i := range all {
		all[i] = float64(i)
	}
	// In-group: the 20 highest values.
	res, err := WilcoxonRankSum(all[n-20:], all[:n-20])
	if err != nil {
		t.Fatal(err)
	}
	if res.Z < 5 {
		t.Fatalf("expected strong enrichment, z=%v", res.Z)
	}
	if res.P > 1e-6 {
		t.Fatalf("expected tiny p, got %v", res.P)
	}
}

func TestBenjaminiHochbergKnown(t *testing.T) {
	// Classic worked example: p = {0.01, 0.04, 0.03, 0.005} (m=4).
	// Sorted: 0.005(r1)→0.02, 0.01(r2)→0.02, 0.03(r3)→0.04, 0.04(r4)→0.04.
	q := BenjaminiHochberg([]float64{0.01, 0.04, 0.03, 0.005})
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range want {
		if !almostEqual(q[i], want[i], 1e-12) {
			t.Fatalf("q=%v want %v", q, want)
		}
	}
}

// Properties: q-values are monotone in p, bounded by 1, and ≥ the raw p.
func TestBenjaminiHochbergProperties(t *testing.T) {
	f := func(raw []float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Abs(v)
			ps = append(ps, v-math.Floor(v)) // wrap into [0,1)
		}
		q := BenjaminiHochberg(ps)
		for i := range ps {
			if q[i] > 1+1e-12 || q[i] < ps[i]-1e-12 {
				return false
			}
			for j := range ps {
				if ps[i] < ps[j] && q[i] > q[j]+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBenjaminiHochbergEmpty(t *testing.T) {
	if BenjaminiHochberg(nil) != nil {
		t.Fatal("empty input")
	}
}
