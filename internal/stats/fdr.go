package stats

import "sort"

// BenjaminiHochberg converts p-values to FDR-adjusted q-values (the standard
// multiple-testing correction for enrichment screens: Q5 tests hundreds of
// GO terms at once, so raw p-values overstate significance). The returned
// slice is parallel to ps: q[i] = min over j with p(j) ≥ p(i) of
// p(j)·m/rank(j), clamped to 1.
func BenjaminiHochberg(ps []float64) []float64 {
	m := len(ps)
	if m == 0 {
		return nil
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	q := make([]float64, m)
	minSoFar := 1.0
	for r := m - 1; r >= 0; r-- {
		i := idx[r]
		v := ps[i] * float64(m) / float64(r+1)
		if v < minSoFar {
			minSoFar = v
		}
		q[i] = minSoFar
	}
	return q
}
