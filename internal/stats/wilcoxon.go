package stats

import (
	"errors"
	"math"
)

// WilcoxonResult reports a two-sample Wilcoxon rank-sum (Mann–Whitney) test.
type WilcoxonResult struct {
	W float64 // rank-sum statistic of the first group
	U float64 // Mann–Whitney U for the first group
	Z float64 // normal approximation z-score (continuity corrected)
	P float64 // two-sided p-value
}

// ErrEmptyGroup is returned when either sample is empty.
var ErrEmptyGroup = errors.New("stats: wilcoxon requires both groups non-empty")

// WilcoxonRankSum tests whether group x tends to rank higher or lower than
// group y, using the normal approximation with tie correction and continuity
// correction. This is Q5's enrichment test: x holds the ranks-source values
// of genes inside a GO term, y those outside.
func WilcoxonRankSum(x, y []float64) (*WilcoxonResult, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return nil, ErrEmptyGroup
	}
	all := make([]float64, 0, n1+n2)
	all = append(all, x...)
	all = append(all, y...)
	ranks := Ranks(all)
	w := 0.0
	for i := 0; i < n1; i++ {
		w += ranks[i]
	}
	fn1, fn2 := float64(n1), float64(n2)
	n := fn1 + fn2
	u := w - fn1*(fn1+1)/2
	meanU := fn1 * fn2 / 2
	// Variance with tie correction: n1·n2/12 · (n+1 − Σ(t³−t)/(n(n−1))).
	tieSum := 0.0
	for _, t := range TieGroups(all) {
		ft := float64(t)
		tieSum += ft*ft*ft - ft
	}
	varU := fn1 * fn2 / 12 * ((n + 1) - tieSum/(n*(n-1)))
	res := &WilcoxonResult{W: w, U: u}
	if varU <= 0 {
		// All values identical: no evidence either way.
		res.Z = 0
		res.P = 1
		return res, nil
	}
	diff := u - meanU
	// Continuity correction toward the mean.
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	res.Z = diff / math.Sqrt(varU)
	res.P = TwoSidedP(res.Z)
	return res, nil
}

// WilcoxonFromRanks runs the test when mid-ranks over the combined population
// are already known: inRanks are the ranks of the in-group items, n the total
// population size, and ties the tie-group sizes of the full population. The
// engines use this form so that genes are ranked once and then tested against
// every GO term (the paper's step 3–4 of Q5).
func WilcoxonFromRanks(inRanks []float64, n int, ties []int) (*WilcoxonResult, error) {
	n1 := len(inRanks)
	n2 := n - n1
	if n1 == 0 || n2 <= 0 {
		return nil, ErrEmptyGroup
	}
	w := 0.0
	for _, r := range inRanks {
		w += r
	}
	fn1, fn2, fn := float64(n1), float64(n2), float64(n)
	u := w - fn1*(fn1+1)/2
	meanU := fn1 * fn2 / 2
	tieSum := 0.0
	for _, t := range ties {
		ft := float64(t)
		tieSum += ft*ft*ft - ft
	}
	varU := fn1 * fn2 / 12 * ((fn + 1) - tieSum/(fn*(fn-1)))
	res := &WilcoxonResult{W: w, U: u}
	if varU <= 0 {
		res.Z = 0
		res.P = 1
		return res, nil
	}
	diff := u - meanU
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	res.Z = diff / math.Sqrt(varU)
	res.P = TwoSidedP(res.Z)
	return res, nil
}
