// Package stats implements the statistical routines GenBase's Q5 (gene-set
// enrichment) relies on: mid-rank ranking with tie handling, the Wilcoxon
// rank-sum test with normal approximation and tie correction, and the normal
// distribution helpers they require. It stands in for R's stats package.
package stats

import "sort"

// Ranks returns the 1-based mid-ranks of xs: tied values receive the average
// of the ranks they would span. This is the standard ranking used by the
// Wilcoxon test (and by R's rank()).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share mid-rank (i+1 + j+1)/2.
		mid := float64(i+j+2) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	return ranks
}

// TieGroups returns the size of every group of tied values in xs with size
// greater than one. Used for the Wilcoxon variance tie correction.
func TieGroups(xs []float64) []int {
	n := len(xs)
	if n == 0 {
		return nil
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var groups []int
	for i := 0; i < n; {
		j := i
		for j+1 < n && sorted[j+1] == sorted[i] {
			j++
		}
		if j > i {
			groups = append(groups, j-i+1)
		}
		i = j + 1
	}
	return groups
}
