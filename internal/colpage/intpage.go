package colpage

import "math/bits"

// IntPage is one compressed int64 column segment.
type IntPage struct {
	enc Encoding
	n   int

	minVal, maxVal int64 // zone bounds over the segment (undefined when n==0)

	raw []int64 // Raw

	runVals []int64 // RLE: value per run
	runEnds []int32 // RLE: exclusive end position per run

	dict []int64 // Dict: distinct values in first-appearance order

	// Bit-packed code stream shared by Dict and Packed: lane i is bits
	// [i*width, (i+1)*width) of words, little-endian lanes within each
	// 64-bit word. width is a power of two in {1,2,4,8,16,32} so lanes
	// never straddle words and whole-word SWAR probes stay exact.
	width uint8
	words []uint64

	ref int64 // Packed: frame-of-reference minimum
}

// laneWidth rounds a required bit count up to the next power-of-two lane
// width; 0 means the domain needs more than 32 bits and packing is off.
func laneWidth(need int) uint8 {
	for _, w := range [...]uint8{1, 2, 4, 8, 16, 32} {
		if need <= int(w) {
			return w
		}
	}
	return 0
}

// packLanes bit-packs codes into 64-bit words at the given lane width.
func packLanes(codes []uint64, width uint8) []uint64 {
	per := 64 / int(width)
	words := make([]uint64, (len(codes)+per-1)/per)
	for i, c := range codes {
		words[i/per] |= c << (uint(i%per) * uint(width))
	}
	return words
}

// lane extracts code i from a packed word stream (width ≤ 32, so the mask
// never overflows).
func lane(words []uint64, i int, width uint8) uint64 {
	per := 64 / int(width)
	return (words[i/per] >> (uint(i%per) * uint(width))) & (uint64(1)<<width - 1)
}

// dictBudget caps dictionary cardinality: beyond it the per-row code width
// stops paying for the dictionary table and raw or packed wins anyway.
const dictBudget = 4096

// BuildInt compresses one column segment, choosing the encoding with the
// smallest serialized size (ties prefer RLE, then Dict, then Packed —
// the encodings with the cheapest pushdown). The input slice is not
// retained.
func BuildInt(vals []int64) *IntPage {
	p := &IntPage{n: len(vals)}
	if len(vals) == 0 {
		p.enc = Raw
		return p
	}

	// One pass: zone bounds, run count, and (capped) distinct values.
	p.minVal, p.maxVal = vals[0], vals[0]
	runs := 1
	dictIdx := make(map[int64]int, 16)
	dictIdx[vals[0]] = 0
	dictVals := []int64{vals[0]}
	for i := 1; i < len(vals); i++ {
		v := vals[i]
		if v < p.minVal {
			p.minVal = v
		}
		if v > p.maxVal {
			p.maxVal = v
		}
		if v != vals[i-1] {
			runs++
		}
		if dictVals != nil {
			if _, ok := dictIdx[v]; !ok {
				if len(dictVals) >= dictBudget {
					dictVals = nil // cardinality too high; stop tracking
				} else {
					dictIdx[v] = len(dictVals)
					dictVals = append(dictVals, v)
				}
			}
		}
	}

	rawBytes := 8 * len(vals)
	rleBytes := 12 * runs
	dictWidth, dictBytes := uint8(0), rawBytes+1
	if dictVals != nil {
		// Len(card-1) is 0 for a single-entry dictionary; one lane is
		// still needed, and laneWidth maps need 0 to width 1.
		dictWidth = laneWidth(max(bits.Len(uint(len(dictVals)-1)), 1))
		dictBytes = 8*len(dictVals) + 1 + packedByteLen(len(vals), dictWidth)
	}
	// spread is exact in uint64 even when max-min overflows int64; widths
	// above 32 bits make laneWidth return 0 and disable packing.
	spread := uint64(p.maxVal) - uint64(p.minVal)
	packWidth, packBytes := laneWidth(max(bits.Len64(spread), 1)), rawBytes+1
	if packWidth != 0 {
		packBytes = 8 + 1 + packedByteLen(len(vals), packWidth)
	}

	best, bestBytes := Raw, rawBytes
	if packBytes < bestBytes {
		best, bestBytes = Packed, packBytes
	}
	if dictBytes < bestBytes {
		best, bestBytes = Dict, dictBytes
	}
	if rleBytes < bestBytes {
		best = RLE
	}

	switch best {
	case RLE:
		p.enc = RLE
		for i, v := range vals {
			if i == 0 || v != vals[i-1] {
				p.runVals = append(p.runVals, v)
				p.runEnds = append(p.runEnds, int32(i))
			}
			p.runEnds[len(p.runEnds)-1] = int32(i + 1)
		}
	case Dict:
		p.enc = Dict
		p.dict = dictVals
		p.width = dictWidth
		codes := make([]uint64, len(vals))
		for i, v := range vals {
			codes[i] = uint64(dictIdx[v])
		}
		p.words = packLanes(codes, p.width)
	case Packed:
		p.enc = Packed
		p.ref = p.minVal
		p.width = packWidth
		codes := make([]uint64, len(vals))
		for i, v := range vals {
			codes[i] = uint64(v - p.ref)
		}
		p.words = packLanes(codes, p.width)
	default:
		p.enc = Raw
		p.raw = append([]int64(nil), vals...)
	}
	return p
}

func packedByteLen(n int, width uint8) int {
	per := 64 / int(width)
	return 8 * ((n + per - 1) / per)
}

// Len is the number of rows in the segment.
func (p *IntPage) Len() int { return p.n }

// Encoding reports the chosen encoding.
func (p *IntPage) Encoding() Encoding { return p.enc }

// EncodedBytes is the in-memory payload size of the encoded form.
func (p *IntPage) EncodedBytes() int {
	switch p.enc {
	case RLE:
		return 12 * len(p.runVals)
	case Dict:
		return 8*len(p.dict) + 8*len(p.words)
	case Packed:
		return 8 + 8*len(p.words)
	}
	return 8 * len(p.raw)
}

// At decodes one value.
func (p *IntPage) At(i int) int64 {
	switch p.enc {
	case RLE:
		return p.runVals[p.runIdx(i)]
	case Dict:
		return p.dict[lane(p.words, i, p.width)]
	case Packed:
		return p.ref + int64(lane(p.words, i, p.width))
	}
	return p.raw[i]
}

// runIdx binary-searches the run covering position i.
func (p *IntPage) runIdx(i int) int {
	lo, hi := 0, len(p.runEnds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int32(i) < p.runEnds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// AppendTo materializes the whole segment, appending to out.
func (p *IntPage) AppendTo(out []int64) []int64 {
	switch p.enc {
	case RLE:
		start := int32(0)
		for r, v := range p.runVals {
			for ; start < p.runEnds[r]; start++ {
				out = append(out, v)
			}
		}
	case Dict:
		for i := 0; i < p.n; i++ {
			out = append(out, p.dict[lane(p.words, i, p.width)])
		}
	case Packed:
		for i := 0; i < p.n; i++ {
			out = append(out, p.ref+int64(lane(p.words, i, p.width)))
		}
	default:
		out = append(out, p.raw...)
	}
	return out
}

// Gather decodes the values at the selected positions, appending to out.
func (p *IntPage) Gather(sel []int32, out []int64) []int64 {
	switch p.enc {
	case RLE:
		// Selections are ascending, so walk the runs forward instead of
		// binary-searching every position.
		r := 0
		for _, i := range sel {
			for p.runEnds[r] <= i {
				r++
			}
			out = append(out, p.runVals[r])
		}
	case Dict:
		for _, i := range sel {
			out = append(out, p.dict[lane(p.words, int(i), p.width)])
		}
	case Packed:
		for _, i := range sel {
			out = append(out, p.ref+int64(lane(p.words, int(i), p.width)))
		}
	default:
		for _, i := range sel {
			out = append(out, p.raw[i])
		}
	}
	return out
}
