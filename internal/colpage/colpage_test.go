package colpage

import (
	"math"
	"math/rand"
	"testing"
)

// intShapes are the column shapes the builder must recognize, each paired
// with the encoding the size heuristic should pick.
func intShapes() map[string]struct {
	vals []int64
	enc  Encoding
} {
	rng := rand.New(rand.NewSource(7))
	sorted := make([]int64, 4000)
	for i := range sorted {
		sorted[i] = int64(i / 40) // 40-row runs
	}
	lowCard := make([]int64, 4000)
	wide := []int64{-1 << 50, 3, 1 << 40, 999999999999, -77}
	for i := range lowCard {
		lowCard[i] = wide[rng.Intn(len(wide))]
	}
	narrow := make([]int64, 4000)
	for i := range narrow {
		narrow[i] = 100000 + rng.Int63n(200) // 200-wide domain, packs at 8 bits
	}
	random := make([]int64, 4000)
	for i := range random {
		random[i] = rng.Int63() - rng.Int63()
	}
	return map[string]struct {
		vals []int64
		enc  Encoding
	}{
		"sorted-runs":  {sorted, RLE},
		"low-card":     {lowCard, Dict},
		"narrow":       {narrow, Packed},
		"random":       {random, Raw},
		"empty":        {nil, Raw},
		"single":       {[]int64{42}, Raw},
		"single-run":   {[]int64{-5, -5, -5, -5, -5, -5, -5, -5}, RLE},
		"extremes":     {[]int64{math.MinInt64, math.MaxInt64, 0, -1, 1, math.MinInt64}, Raw},
		"tiny-domain":  {[]int64{0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1}, Packed},
		"const-offset": {[]int64{1 << 41, 1<<41 + 1, 1 << 41, 1<<41 + 3, 1<<41 + 2, 1<<41 + 1, 1 << 41, 1<<41 + 3}, Packed},
	}
}

func TestBuildIntEncodings(t *testing.T) {
	for name, tc := range intShapes() {
		p := BuildInt(tc.vals)
		if p.Encoding() != tc.enc {
			t.Errorf("%s: got %v, want %v", name, p.Encoding(), tc.enc)
		}
		if tc.enc != Raw {
			if raw := 8 * len(tc.vals); p.EncodedBytes() >= raw {
				t.Errorf("%s: encoded %dB not smaller than raw %dB", name, p.EncodedBytes(), raw)
			}
		}
	}
}

// checkIntPage asserts every page invariant against the source values:
// decode fixed point, point access, gather, wire round trip, and pushdown
// equivalence with decode-then-filter for a battery of predicates.
func checkIntPage(t *testing.T, p *IntPage, vals []int64) {
	t.Helper()
	if p.Len() != len(vals) {
		t.Fatalf("Len=%d want %d", p.Len(), len(vals))
	}
	back := p.AppendTo(nil)
	if len(back) != len(vals) {
		t.Fatalf("AppendTo len=%d want %d", len(back), len(vals))
	}
	for i, v := range vals {
		if back[i] != v {
			t.Fatalf("AppendTo[%d]=%d want %d (enc %v)", i, back[i], v, p.Encoding())
		}
		if got := p.At(i); got != v {
			t.Fatalf("At(%d)=%d want %d (enc %v)", i, got, v, p.Encoding())
		}
	}

	// Wire round trip is a fixed point.
	blob := p.AppendEncoded(nil)
	q, err := ParseInt(blob)
	if err != nil {
		t.Fatalf("ParseInt: %v", err)
	}
	if q.Encoding() != p.Encoding() || q.Len() != p.Len() {
		t.Fatalf("round trip changed shape: %v/%d vs %v/%d", q.Encoding(), q.Len(), p.Encoding(), p.Len())
	}
	if blob2 := q.AppendEncoded(nil); string(blob2) != string(blob) {
		t.Fatalf("re-encode of parsed page differs (enc %v)", p.Encoding())
	}

	preds := predBattery(vals)
	for _, pg := range []*IntPage{p, q} {
		for _, pred := range preds {
			want := make([]int32, 0, len(vals))
			for i, v := range vals {
				if pred.Eval(v) {
					want = append(want, int32(i))
				}
			}
			got := pg.Select(pred, nil)
			if !equalSel(got, want) {
				t.Fatalf("Select(%+v) enc %v: got %d rows want %d", pred, pg.Encoding(), len(got), len(want))
			}
			if got2 := pg.SelectFn(pred.Eval, nil); !equalSel(got2, want) {
				t.Fatalf("SelectFn(%+v) enc %v mismatch", pred, pg.Encoding())
			}
			// Gather of the selection matches a direct filter's values.
			vg := pg.Gather(got, nil)
			for k, i := range want {
				if vg[k] != vals[i] {
					t.Fatalf("Gather[%d]=%d want %d", k, vg[k], vals[i])
				}
			}
			// Refining the all-rows selection equals selecting.
			all := appendAll(nil, len(vals))
			if ref := pg.RefinePred(pred, all); !equalSel(ref, want) {
				t.Fatalf("RefinePred(%+v) enc %v mismatch", pred, pg.Encoding())
			}
			all = appendAll(nil, len(vals))
			if ref := pg.Refine(pred.Eval, all); !equalSel(ref, want) {
				t.Fatalf("Refine(%+v) enc %v mismatch", pred, pg.Encoding())
			}
		}
	}
}

// predBattery builds LT/EQ predicates around the data's own values plus
// absent and extreme thresholds — enough to hit the zone fast paths, the
// SWAR probes, and the per-lane scans.
func predBattery(vals []int64) []Pred {
	preds := []Pred{
		{LT, 0}, {EQ, 0}, {LT, math.MinInt64}, {LT, math.MaxInt64},
		{EQ, math.MaxInt64}, {EQ, -3},
	}
	if len(vals) > 0 {
		mn, mx := vals[0], vals[0]
		for _, v := range vals {
			mn, mx = min(mn, v), max(mx, v)
		}
		mid := vals[len(vals)/2]
		preds = append(preds,
			Pred{EQ, mn}, Pred{EQ, mx}, Pred{EQ, mid},
			Pred{LT, mn}, Pred{LT, mx}, Pred{LT, mid})
		if mx < math.MaxInt64 {
			preds = append(preds, Pred{LT, mx + 1}, Pred{EQ, mx + 1})
		}
		if mn > math.MinInt64 {
			preds = append(preds, Pred{LT, mn + 1}, Pred{EQ, mn - 1})
		}
	}
	return preds
}

func equalSel(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntPageProperties(t *testing.T) {
	for name, tc := range intShapes() {
		t.Run(name, func(t *testing.T) { checkIntPage(t, BuildInt(tc.vals), tc.vals) })
	}
}

// floatShapes stress the bit-pattern RLE: NaN payloads, infinities, and
// signed zeros must round-trip bit-exactly.
func floatShapes() map[string][]float64 {
	nan1 := math.NaN()
	nan2 := math.Float64frombits(0x7ff8000000000099) // distinct NaN payload
	rng := rand.New(rand.NewSource(9))
	random := make([]float64, 1000)
	for i := range random {
		random[i] = rng.NormFloat64()
	}
	runs := make([]float64, 1000)
	for i := range runs {
		runs[i] = float64(i / 100)
	}
	nanRuns := make([]float64, 600)
	for i := range nanRuns {
		switch (i / 50) % 3 {
		case 0:
			nanRuns[i] = nan1
		case 1:
			nanRuns[i] = math.Inf(-1)
		default:
			nanRuns[i] = math.Copysign(0, -1)
		}
	}
	return map[string][]float64{
		"random":   random,
		"runs":     runs,
		"nan-runs": nanRuns,
		"empty":    nil,
		"single":   {3.25},
		"specials": {nan1, nan2, math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
}

func TestFloatPageProperties(t *testing.T) {
	for name, vals := range floatShapes() {
		t.Run(name, func(t *testing.T) {
			p := BuildFloat(vals)
			checkFloatPage(t, p, vals)
			if name == "runs" || name == "nan-runs" {
				if p.Encoding() != RLE {
					t.Errorf("want RLE, got %v", p.Encoding())
				}
			}
		})
	}
}

func checkFloatPage(t *testing.T, p *FloatPage, vals []float64) {
	t.Helper()
	if p.Len() != len(vals) {
		t.Fatalf("Len=%d want %d", p.Len(), len(vals))
	}
	sameBits := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	back := p.AppendTo(nil)
	if len(back) != len(vals) {
		t.Fatalf("AppendTo len=%d want %d", len(back), len(vals))
	}
	sel := make([]int32, 0, len(vals))
	for i, v := range vals {
		if !sameBits(back[i], v) || !sameBits(p.At(i), v) {
			t.Fatalf("decode[%d]=%x want %x (enc %v)", i, math.Float64bits(back[i]), math.Float64bits(v), p.Encoding())
		}
		if i%3 == 0 {
			sel = append(sel, int32(i))
		}
	}
	got := p.Gather(sel, nil)
	for k, i := range sel {
		if !sameBits(got[k], vals[i]) {
			t.Fatalf("Gather[%d] mismatch", k)
		}
	}
	blob := p.AppendEncoded(nil)
	q, err := ParseFloat(blob)
	if err != nil {
		t.Fatalf("ParseFloat: %v", err)
	}
	if blob2 := q.AppendEncoded(nil); string(blob2) != string(blob) {
		t.Fatal("re-encode of parsed page differs")
	}
	for i, v := range vals {
		if !sameBits(q.At(i), v) {
			t.Fatalf("parsed At(%d) mismatch", i)
		}
	}
}

// TestParseRejectsCorruption truncates and mutates valid blobs: every
// outcome must be a clean error or a page that re-encodes consistently —
// never a panic (the fuzzers push much further).
func TestParseRejectsCorruption(t *testing.T) {
	blobs := [][]byte{}
	for _, tc := range intShapes() {
		blobs = append(blobs, BuildInt(tc.vals).AppendEncoded(nil))
	}
	for _, vals := range floatShapes() {
		blobs = append(blobs, BuildFloat(vals).AppendEncoded(nil))
	}
	for _, blob := range blobs {
		for cut := 0; cut < len(blob); cut++ {
			if _, err := ParseInt(blob[:cut]); err == nil && blob[0] == kindInt {
				t.Fatalf("truncated int blob at %d parsed", cut)
			}
			if _, err := ParseFloat(blob[:cut]); err == nil && blob[0] == kindFloat {
				t.Fatalf("truncated float blob at %d parsed", cut)
			}
		}
		for i := range blob {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 0x41
			ParseInt(mut)   // must not panic
			ParseFloat(mut) // must not panic
		}
	}
	if _, err := ParseInt([]byte{kindFloat, 0, 0}); err == nil {
		t.Fatal("int parse accepted float kind")
	}
	if _, err := ParseFloat([]byte{kindInt, 0, 0}); err == nil {
		t.Fatal("float parse accepted int kind")
	}
}

func TestEncodingString(t *testing.T) {
	for e, want := range map[Encoding]string{Raw: "raw", RLE: "rle", Dict: "dict", Packed: "packed", 99: "unknown"} {
		if e.String() != want {
			t.Errorf("Encoding(%d).String()=%q want %q", e, e.String(), want)
		}
	}
}
