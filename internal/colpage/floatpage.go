package colpage

import "math"

// FloatPage is one compressed float64 column segment. Runs are detected
// and compared on IEEE-754 bit patterns, so NaN payloads and signed zeros
// round-trip bit-exactly (a NaN != NaN value comparison would split every
// NaN run into singletons and could never merge them back).
type FloatPage struct {
	enc Encoding // Raw or RLE
	n   int

	raw []float64

	runBits []uint64 // RLE: bit pattern per run
	runEnds []int32  // RLE: exclusive end position per run
}

// BuildFloat compresses one float column segment: RLE on bit patterns when
// runs pay for themselves, raw otherwise. The input slice is not retained.
func BuildFloat(vals []float64) *FloatPage {
	p := &FloatPage{n: len(vals)}
	if len(vals) == 0 {
		p.enc = Raw
		return p
	}
	runs := 1
	for i := 1; i < len(vals); i++ {
		if math.Float64bits(vals[i]) != math.Float64bits(vals[i-1]) {
			runs++
		}
	}
	if 12*runs < 8*len(vals) {
		p.enc = RLE
		for i, v := range vals {
			b := math.Float64bits(v)
			if i == 0 || b != p.runBits[len(p.runBits)-1] {
				p.runBits = append(p.runBits, b)
				p.runEnds = append(p.runEnds, int32(i))
			}
			p.runEnds[len(p.runEnds)-1] = int32(i + 1)
		}
		return p
	}
	p.enc = Raw
	p.raw = append([]float64(nil), vals...)
	return p
}

// Len is the number of rows in the segment.
func (p *FloatPage) Len() int { return p.n }

// Encoding reports the chosen encoding.
func (p *FloatPage) Encoding() Encoding { return p.enc }

// EncodedBytes is the in-memory payload size of the encoded form.
func (p *FloatPage) EncodedBytes() int {
	if p.enc == RLE {
		return 12 * len(p.runBits)
	}
	return 8 * len(p.raw)
}

// At decodes one value.
func (p *FloatPage) At(i int) float64 {
	if p.enc == RLE {
		lo, hi := 0, len(p.runEnds)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if int32(i) < p.runEnds[mid] {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return math.Float64frombits(p.runBits[lo])
	}
	return p.raw[i]
}

// AppendTo materializes the whole segment, appending to out.
func (p *FloatPage) AppendTo(out []float64) []float64 {
	if p.enc == RLE {
		start := int32(0)
		for r, b := range p.runBits {
			v := math.Float64frombits(b)
			for ; start < p.runEnds[r]; start++ {
				out = append(out, v)
			}
		}
		return out
	}
	return append(out, p.raw...)
}

// Gather decodes the values at the selected (ascending) positions,
// appending to out.
func (p *FloatPage) Gather(sel []int32, out []float64) []float64 {
	if p.enc == RLE {
		r := 0
		for _, i := range sel {
			for p.runEnds[r] <= i {
				r++
			}
			out = append(out, math.Float64frombits(p.runBits[r]))
		}
		return out
	}
	for _, i := range sel {
		out = append(out, p.raw[i])
	}
	return out
}
