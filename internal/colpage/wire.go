package colpage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format (DESIGN.md §15): pages are persisted as records inside 8 KiB
// storage page frames by the rowstore columnar sidecar, and round-tripped
// by the codec fuzzers.
//
//	int page:   kind(1) enc(1) uvarint(n) payload
//	  Raw:    n × value(8, LE two's complement)
//	  RLE:    uvarint(runs), runs × (value(8) end(4))
//	  Dict:   uvarint(card), card × value(8), width(1), words × 8
//	  Packed: ref(8), width(1), words × 8
//	float page: kind(1) enc(1) uvarint(n) payload
//	  Raw:    n × bits(8)
//	  RLE:    uvarint(runs), runs × (bits(8) end(4))
const (
	kindInt   = 0x69 // 'i'
	kindFloat = 0x66 // 'f'
)

// ErrCorrupt reports a page blob that does not parse.
var ErrCorrupt = errors.New("colpage: corrupt page")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// AppendEncoded serializes the page, appending to dst.
func (p *IntPage) AppendEncoded(dst []byte) []byte {
	dst = append(dst, kindInt, byte(p.enc))
	dst = binary.AppendUvarint(dst, uint64(p.n))
	switch p.enc {
	case RLE:
		dst = binary.AppendUvarint(dst, uint64(len(p.runVals)))
		for r, v := range p.runVals {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(p.runEnds[r]))
		}
	case Dict:
		dst = binary.AppendUvarint(dst, uint64(len(p.dict)))
		for _, v := range p.dict {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		dst = append(dst, p.width)
		for _, w := range p.words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	case Packed:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p.ref))
		dst = append(dst, p.width)
		for _, w := range p.words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	default:
		for _, v := range p.raw {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	}
	return dst
}

// AppendEncoded serializes the page, appending to dst.
func (p *FloatPage) AppendEncoded(dst []byte) []byte {
	dst = append(dst, kindFloat, byte(p.enc))
	dst = binary.AppendUvarint(dst, uint64(p.n))
	if p.enc == RLE {
		dst = binary.AppendUvarint(dst, uint64(len(p.runBits)))
		for r, b := range p.runBits {
			dst = binary.LittleEndian.AppendUint64(dst, b)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(p.runEnds[r]))
		}
		return dst
	}
	for _, v := range p.raw {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// reader is a bounds-checked little-endian cursor over a page blob.
type reader struct {
	data []byte
	off  int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, corrupt("truncated at %d", r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, corrupt("truncated at %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, corrupt("truncated at %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, sz := binary.Uvarint(r.data[r.off:])
	if sz <= 0 {
		return 0, corrupt("bad uvarint at %d", r.off)
	}
	r.off += sz
	return v, nil
}

// maxPageRows bounds the row count a parsed page may claim, so a corrupt
// header cannot drive a huge allocation.
const maxPageRows = 1 << 24

func (r *reader) header(kind byte) (Encoding, int, error) {
	k, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if k != kind {
		return 0, 0, corrupt("wrong page kind %#x", k)
	}
	e, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if Encoding(e) > Packed {
		return 0, 0, corrupt("unknown encoding %d", e)
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if n > maxPageRows {
		return 0, 0, corrupt("page claims %d rows", n)
	}
	return Encoding(e), int(n), nil
}

// runEnds parses and validates an RLE end-position array: strictly
// increasing, ending exactly at n.
func (r *reader) runLen(n int) (int, error) {
	runs, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if int(runs) > n || (n > 0 && runs == 0) {
		return 0, corrupt("%d runs for %d rows", runs, n)
	}
	return int(runs), nil
}

func validRuns(ends []int32, n int) error {
	prev := int32(0)
	for _, e := range ends {
		if e <= prev {
			return corrupt("run ends not increasing")
		}
		prev = e
	}
	if len(ends) > 0 && int(prev) != n || len(ends) == 0 && n != 0 {
		return corrupt("runs cover %d of %d rows", prev, n)
	}
	return nil
}

// ParseInt decodes an int page blob produced by AppendEncoded. It never
// panics on corrupt input.
func ParseInt(data []byte) (*IntPage, error) {
	r := &reader{data: data}
	enc, n, err := r.header(kindInt)
	if err != nil {
		return nil, err
	}
	p := &IntPage{enc: enc, n: n}
	switch enc {
	case RLE:
		runs, err := r.runLen(n)
		if err != nil {
			return nil, err
		}
		p.runVals = make([]int64, runs)
		p.runEnds = make([]int32, runs)
		for i := range p.runVals {
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			e, err := r.u32()
			if err != nil {
				return nil, err
			}
			p.runVals[i], p.runEnds[i] = int64(v), int32(e)
		}
		if err := validRuns(p.runEnds, n); err != nil {
			return nil, err
		}
	case Dict:
		card, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if card == 0 && n > 0 || card > dictBudget {
			return nil, corrupt("dictionary of %d entries", card)
		}
		p.dict = make([]int64, card)
		for i := range p.dict {
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			p.dict[i] = int64(v)
		}
		if p.width, p.words, err = r.packed(n); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if c := lane(p.words, i, p.width); c >= card {
				return nil, corrupt("code %d out of dictionary %d", c, card)
			}
		}
	case Packed:
		ref, err := r.u64()
		if err != nil {
			return nil, err
		}
		p.ref = int64(ref)
		if p.width, p.words, err = r.packed(n); err != nil {
			return nil, err
		}
	default:
		p.raw = make([]int64, n)
		for i := range p.raw {
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			p.raw[i] = int64(v)
		}
	}
	if r.off != len(data) {
		return nil, corrupt("%d trailing bytes", len(data)-r.off)
	}
	p.resetZones()
	return p, nil
}

// packed parses a width byte plus the packed word payload for n lanes.
func (r *reader) packed(n int) (uint8, []uint64, error) {
	width, err := r.byte()
	if err != nil {
		return 0, nil, err
	}
	switch width {
	case 1, 2, 4, 8, 16, 32:
	default:
		return 0, nil, corrupt("bad lane width %d", width)
	}
	per := 64 / int(width)
	words := make([]uint64, (n+per-1)/per)
	for i := range words {
		w, err := r.u64()
		if err != nil {
			return 0, nil, err
		}
		words[i] = w
	}
	return width, words, nil
}

// resetZones recomputes min/max after a parse (the wire format does not
// carry them).
func (p *IntPage) resetZones() {
	if p.n == 0 {
		return
	}
	first := true
	upd := func(v int64) {
		if first || v < p.minVal {
			p.minVal = v
		}
		if first || v > p.maxVal {
			p.maxVal = v
		}
		first = false
	}
	switch p.enc {
	case RLE:
		for _, v := range p.runVals {
			upd(v)
		}
	case Dict:
		// Only codes in use bound the zone; unused dictionary entries
		// (possible after a parse) must not widen it.
		used := make([]bool, len(p.dict))
		for i := 0; i < p.n; i++ {
			used[lane(p.words, i, p.width)] = true
		}
		for c, v := range p.dict {
			if used[c] {
				upd(v)
			}
		}
	case Packed:
		for i := 0; i < p.n; i++ {
			upd(p.ref + int64(lane(p.words, i, p.width)))
		}
	default:
		for _, v := range p.raw {
			upd(v)
		}
	}
}

// ParseFloat decodes a float page blob produced by AppendEncoded. It never
// panics on corrupt input.
func ParseFloat(data []byte) (*FloatPage, error) {
	r := &reader{data: data}
	enc, n, err := r.header(kindFloat)
	if err != nil {
		return nil, err
	}
	if enc != Raw && enc != RLE {
		return nil, corrupt("float encoding %d", enc)
	}
	p := &FloatPage{enc: enc, n: n}
	if enc == RLE {
		runs, err := r.runLen(n)
		if err != nil {
			return nil, err
		}
		p.runBits = make([]uint64, runs)
		p.runEnds = make([]int32, runs)
		for i := range p.runBits {
			b, err := r.u64()
			if err != nil {
				return nil, err
			}
			e, err := r.u32()
			if err != nil {
				return nil, err
			}
			p.runBits[i], p.runEnds[i] = b, int32(e)
		}
		if err := validRuns(p.runEnds, n); err != nil {
			return nil, err
		}
	} else {
		p.raw = make([]float64, n)
		for i := range p.raw {
			b, err := r.u64()
			if err != nil {
				return nil, err
			}
			p.raw[i] = math.Float64frombits(b)
		}
	}
	if r.off != len(data) {
		return nil, corrupt("%d trailing bytes", len(data)-r.off)
	}
	return p, nil
}
