// Package colpage implements compressed column pages: the unit of columnar
// storage shared by the colstore column layout, the rowstore columnar
// sidecar (persisted through storage page frames), and the arraydb
// attribute arrays.
//
// A page holds one column segment under one of four encodings —
// dictionary (low-cardinality ID/string-code columns), run-length
// (sorted/clustered runs), bit-packed frame-of-reference (narrow integer
// domains), or raw — chosen per segment by serialized size. Predicates are
// evaluated directly on the encoded form (DESIGN.md §15): dictionary
// entries are tested once and matched by code, RLE runs are tested once
// and emitted or skipped whole, and bit-packed words are range-tested with
// SWAR lane probes before any lane is unpacked. Selection vectors are
// always ascending positions, so every caller sees the exact row order a
// decode-then-filter scan would produce — encoding changes layout, never a
// value and never an order.
package colpage

// Encoding identifies how a page stores its values.
type Encoding uint8

const (
	// Raw stores every value verbatim (8 bytes each).
	Raw Encoding = iota
	// RLE stores (value, exclusive end position) runs.
	RLE
	// Dict stores the distinct values once plus a bit-packed code per row.
	Dict
	// Packed stores bit-packed offsets from the page minimum
	// (frame-of-reference).
	Packed
)

// String names an encoding for bench output and tests.
func (e Encoding) String() string {
	switch e {
	case Raw:
		return "raw"
	case RLE:
		return "rle"
	case Dict:
		return "dict"
	case Packed:
		return "packed"
	}
	return "unknown"
}

// Op is a comparison operator of a pushed-down predicate. It mirrors
// plan.CmpOp without importing the planner.
type Op uint8

const (
	// LT selects values strictly below Val.
	LT Op = iota
	// EQ selects values equal to Val.
	EQ
)

// Pred is a structured predicate a page can evaluate in encoded space.
type Pred struct {
	Op  Op
	Val int64
}

// Eval applies the predicate to one decoded value (the fallback the
// encodings reduce to — once per dictionary entry or run, not per row).
func (p Pred) Eval(v int64) bool {
	if p.Op == LT {
		return v < p.Val
	}
	return v == p.Val
}
