package colpage

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzInts derives a column from fuzz bytes. The first byte picks a domain
// squeeze so narrow/dict/RLE shapes appear, not just 64-bit noise.
func fuzzInts(data []byte) []int64 {
	if len(data) == 0 {
		return nil
	}
	mode := data[0]
	data = data[1:]
	vals := make([]int64, 0, len(data)/2)
	var prev int64
	for i := 0; i+2 <= len(data); i += 2 {
		v := int64(int16(binary.LittleEndian.Uint16(data[i:])))
		switch mode % 5 {
		case 0: // full 16-bit domain
		case 1:
			v &= 3 // tiny domain → 1-2 bit packing
		case 2:
			v = v%7 + 1<<40 // low cardinality, wide values → dict
		case 3:
			v = prev + v%2 // long runs → RLE
		case 4:
			v = v<<43 | v // wide domain → raw
		}
		prev = v
		vals = append(vals, v)
	}
	return vals
}

// FuzzIntPage checks the full int codec contract on arbitrary inputs:
// encode→decode is a fixed point, pushdown equals decode-then-filter, the
// wire form round-trips, and parsing the raw fuzz bytes never panics.
func FuzzIntPage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 0xff, 0xff, 0, 0, 1, 0})
	f.Add([]byte{2, 9, 9, 9, 9, 8, 8, 8, 8, 7, 7})
	f.Add([]byte{3, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{4, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x23})
	f.Add(BuildInt([]int64{5, 5, 5, 1, 2, 3}).AppendEncoded(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes through the parser: error or consistent page.
		if p, err := ParseInt(data); err == nil {
			if blob := p.AppendEncoded(nil); len(blob) == 0 {
				t.Fatal("parsed page encoded to nothing")
			}
			vals := p.AppendTo(nil)
			checkPushdownEquivalence(t, p, vals)
		}

		vals := fuzzInts(data)
		p := BuildInt(vals)
		back := p.AppendTo(nil)
		if len(back) != len(vals) {
			t.Fatalf("decode len %d want %d", len(back), len(vals))
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("decode[%d]=%d want %d (enc %v)", i, back[i], vals[i], p.Encoding())
			}
		}
		q, err := ParseInt(p.AppendEncoded(nil))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		checkPushdownEquivalence(t, q, vals)
	})
}

func checkPushdownEquivalence(t *testing.T, p *IntPage, vals []int64) {
	t.Helper()
	for _, pred := range predBattery(vals) {
		want := make([]int32, 0, len(vals))
		for i, v := range vals {
			if pred.Eval(v) {
				want = append(want, int32(i))
			}
		}
		if got := p.Select(pred, nil); !equalSel(got, want) {
			t.Fatalf("Select(%+v) enc %v: %v want %v", pred, p.Encoding(), got, want)
		}
	}
}

// FuzzFloatPage is the float twin: NaN payloads and signed zeros from raw
// bit patterns must survive encode→decode bit-exactly.
func FuzzFloatPage(f *testing.F) {
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(-1))))
	f.Add(BuildFloat([]float64{1, 1, 1, 2.5}).AppendEncoded(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := ParseFloat(data); err == nil {
			if blob := p.AppendEncoded(nil); len(blob) == 0 {
				t.Fatal("parsed page encoded to nothing")
			}
		}
		var vals []float64
		for i := 0; i+8 <= len(data); i += 8 {
			bits := binary.LittleEndian.Uint64(data[i:])
			if bits%3 == 0 && i >= 8 {
				bits = binary.LittleEndian.Uint64(data[i-8:]) // force runs
			}
			vals = append(vals, math.Float64frombits(bits))
		}
		p := BuildFloat(vals)
		back := p.AppendTo(nil)
		if len(back) != len(vals) {
			t.Fatalf("decode len %d want %d", len(back), len(vals))
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("decode[%d] bits %x want %x", i, math.Float64bits(back[i]), math.Float64bits(vals[i]))
			}
		}
		q, err := ParseFloat(p.AppendEncoded(nil))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		for i := range vals {
			if math.Float64bits(q.At(i)) != math.Float64bits(vals[i]) {
				t.Fatalf("parsed At(%d) mismatch", i)
			}
		}
	})
}
