package colpage

// Select evaluates a structured predicate directly on the encoded form and
// appends the matching positions (ascending) to sel. Filtered-out values
// are never materialized:
//
//   - Dict: each dictionary entry is tested once; rows are matched by
//     comparing packed codes, with SWAR word probes skipping whole words
//     that cannot contain the single matching code.
//   - RLE: each run's value is tested once; matching runs are emitted as
//     whole spans, non-matching runs are skipped without touching rows.
//   - Packed: the predicate is translated into code space (Val-ref) and
//     compared against packed lanes; SWAR word probes skip words with no
//     lane below an LT threshold or equal to an EQ target.
//   - Raw: plain per-value comparison (there is no encoded shortcut).
//
// A zone check on the segment's min/max first discards or accepts the
// whole page.
func (p *IntPage) Select(pred Pred, sel []int32) []int32 {
	if p.n == 0 {
		return sel
	}
	// Zone test: the whole segment is out — or in.
	switch pred.Op {
	case LT:
		if p.minVal >= pred.Val {
			return sel
		}
		if p.maxVal < pred.Val {
			return appendAll(sel, p.n)
		}
	case EQ:
		if pred.Val < p.minVal || pred.Val > p.maxVal {
			return sel
		}
		if p.minVal == p.maxVal {
			return appendAll(sel, p.n)
		}
	}

	switch p.enc {
	case RLE:
		start := int32(0)
		for r, v := range p.runVals {
			end := p.runEnds[r]
			if pred.Eval(v) {
				for i := start; i < end; i++ {
					sel = append(sel, i)
				}
			}
			start = end
		}
		return sel
	case Dict:
		if pred.Op == EQ {
			// Dictionary-code equality: find the one code whose entry
			// matches, then scan codes for it.
			target := -1
			for c, v := range p.dict {
				if v == pred.Val {
					target = c
					break
				}
			}
			if target < 0 {
				return sel
			}
			return p.selectCodeEQ(uint64(target), sel)
		}
		// LT: test each entry once into a per-code match table.
		match := make([]bool, len(p.dict))
		for c, v := range p.dict {
			match[c] = v < pred.Val
		}
		for i := 0; i < p.n; i++ {
			if match[lane(p.words, i, p.width)] {
				sel = append(sel, int32(i))
			}
		}
		return sel
	case Packed:
		if pred.Op == EQ {
			return p.selectCodeEQ(uint64(pred.Val-p.ref), sel)
		}
		// LT in code space: zone test guaranteed minVal < Val ≤ maxVal,
		// so the threshold is in [1, maxVal-ref].
		return p.selectCodeLT(uint64(pred.Val-p.ref), sel)
	}
	for i, v := range p.raw {
		if pred.Eval(v) {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

func appendAll(sel []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// swarConsts returns the per-lane LSB and MSB broadcast masks for a lane
// width (the "haszero"/"hasless" word-probe constants).
func swarConsts(width uint8) (lo, hi uint64) {
	lane := uint64(1)
	for sh := uint(width); sh < 64; sh *= 2 {
		lane |= lane << sh
	}
	return lane, lane << (width - 1)
}

// selectCodeEQ appends every position whose packed code equals target.
// Whole words are skipped via the haszero probe on word XOR broadcast:
// unused trailing lanes can only produce false positives (a probe hit on a
// word with no real match), never a miss, and the per-lane scan is bounded
// by n — so probes are exact where it matters.
func (p *IntPage) selectCodeEQ(target uint64, sel []int32) []int32 {
	per := 64 / int(p.width)
	if p.width == 1 {
		// 1-bit lanes: a word has a match iff it isn't all-zero (target 1)
		// or isn't all-one (target 0); the generic haszero probe needs
		// lanes ≥ 2 bits, so probe directly.
		for w, word := range p.words {
			if target == 1 && word == 0 {
				continue
			}
			sel = p.scanWordEQ(w, per, target, sel)
		}
		return sel
	}
	lo, hi := swarConsts(p.width)
	bcast := target * lo
	for w, word := range p.words {
		x := word ^ bcast
		if (x-lo)&^x&hi == 0 {
			continue // no lane equals target in this word
		}
		sel = p.scanWordEQ(w, per, target, sel)
	}
	return sel
}

func (p *IntPage) scanWordEQ(w, per int, target uint64, sel []int32) []int32 {
	mask := uint64(1)<<p.width - 1
	word := p.words[w]
	end := min((w+1)*per, p.n)
	for i := w * per; i < end; i++ {
		if word>>(uint(i%per)*uint(p.width))&mask == target {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// selectCodeLT appends every position whose packed code is below t.
// When t fits the hasless probe's validity range (t ≤ 2^(width-1)), whole
// words with no lane below t are skipped before any lane is unpacked.
func (p *IntPage) selectCodeLT(t uint64, sel []int32) []int32 {
	per := 64 / int(p.width)
	mask := uint64(1)<<p.width - 1
	probe := p.width >= 2 && t <= uint64(1)<<(p.width-1)
	var lo, hi, bcast uint64
	if probe {
		lo, hi = swarConsts(p.width)
		bcast = t * lo
	}
	for w, word := range p.words {
		if probe && (word-bcast)&^word&hi == 0 {
			continue // no lane below t in this word
		}
		end := min((w+1)*per, p.n)
		for i := w * per; i < end; i++ {
			if word>>(uint(i%per)*uint(p.width))&mask < t {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// SelectFn is the closure fallback for predicates with no structured form
// (e.g. the SamplePatients modulus). The closure still runs once per
// dictionary entry or run where the encoding allows.
func (p *IntPage) SelectFn(f func(int64) bool, sel []int32) []int32 {
	switch p.enc {
	case RLE:
		start := int32(0)
		for r, v := range p.runVals {
			end := p.runEnds[r]
			if f(v) {
				for i := start; i < end; i++ {
					sel = append(sel, i)
				}
			}
			start = end
		}
	case Dict:
		match := make([]bool, len(p.dict))
		for c, v := range p.dict {
			match[c] = f(v)
		}
		for i := 0; i < p.n; i++ {
			if match[lane(p.words, i, p.width)] {
				sel = append(sel, int32(i))
			}
		}
	case Packed:
		for i := 0; i < p.n; i++ {
			if f(p.ref + int64(lane(p.words, i, p.width))) {
				sel = append(sel, int32(i))
			}
		}
	default:
		for i, v := range p.raw {
			if f(v) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// Refine filters an existing ascending selection in place, keeping
// positions whose value satisfies f.
func (p *IntPage) Refine(f func(int64) bool, sel []int32) []int32 {
	out := sel[:0]
	switch p.enc {
	case RLE:
		r := 0
		for _, i := range sel {
			for p.runEnds[r] <= i {
				r++
			}
			if f(p.runVals[r]) {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if f(p.At(int(i))) {
				out = append(out, i)
			}
		}
	}
	return out
}

// RefinePred filters an existing ascending selection in place by a
// structured predicate, testing dictionary entries and runs once.
func (p *IntPage) RefinePred(pred Pred, sel []int32) []int32 {
	if len(sel) == 0 {
		return sel
	}
	switch pred.Op {
	case LT:
		if p.minVal >= pred.Val {
			return sel[:0]
		}
		if p.maxVal < pred.Val {
			return sel
		}
	case EQ:
		if pred.Val < p.minVal || pred.Val > p.maxVal {
			return sel[:0]
		}
		if p.minVal == p.maxVal {
			return sel
		}
	}
	if p.enc == Dict {
		match := make([]bool, len(p.dict))
		for c, v := range p.dict {
			match[c] = pred.Eval(v)
		}
		out := sel[:0]
		for _, i := range sel {
			if match[lane(p.words, int(i), p.width)] {
				out = append(out, i)
			}
		}
		return out
	}
	return p.Refine(pred.Eval, sel)
}
