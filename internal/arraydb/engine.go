package arraydb

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// Engine is the SciDB configuration. An optional Accelerator offloads the
// analytics kernels (the paper's §5 Xeon Phi experiments plug in here).
type Engine struct {
	// ChunkSize overrides the default 256×256 chunking (ablation bench).
	ChunkSize int
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value; with an
	// accelerator attached it also sets the host-side kernel parallelism the
	// device model measures against.
	Workers int
	// Accel, when non-nil, runs the analytics kernels on a coprocessor
	// device model, adding transfer charges. Nil means host execution.
	Accel Accelerator

	expr *Array2D
	// 1-D attribute arrays indexed by patient id.
	age, gender, disease []int64
	drugResponse         []float64
	// 1-D attribute arrays indexed by gene id.
	function []int64
	// GO membership in array form: belongs[gene, term].
	goArr   []uint8
	numPats int
	numGen  int
	numTerm int
}

// Accelerator abstracts the coprocessor offload used by the SciDB + Xeon Phi
// configuration: it executes a kernel (for correctness) and returns the
// modeled device time plus transfer charges, which the engine books in place
// of the measured host time.
type Accelerator interface {
	Name() string
	// Offload runs kernel after charging for moving inBytes to the device
	// and outBytes back. kind names the kernel family (gemm, lanczos, rank,
	// bicluster) — accelerators speed different kernels up differently. It
	// returns the modeled device compute and transfer seconds.
	Offload(ctx context.Context, kind string, inBytes, outBytes int64, kernel func() error) (compute, transfer float64, err error)
}

// New creates an arraydb engine with default chunking.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.Accel != nil {
		return "scidb-" + e.Accel.Name()
	}
	return "scidb"
}

// Supports implements engine.Engine: SciDB runs all five queries.
func (e *Engine) Supports(engine.QueryID) bool { return true }

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Load implements engine.Engine: everything is stored natively as arrays.
func (e *Engine) Load(ds *datagen.Dataset) error {
	cs := e.ChunkSize
	if cs <= 0 {
		cs = DefaultChunk
	}
	e.expr = FromMatrix(ds.Expression, cs, cs)
	p := ds.Dims.Patients
	e.age = make([]int64, p)
	e.gender = make([]int64, p)
	e.disease = make([]int64, p)
	e.drugResponse = make([]float64, p)
	for i, pt := range ds.Patients {
		e.age[i] = int64(pt.Age)
		e.gender[i] = int64(pt.Gender)
		e.disease[i] = int64(pt.DiseaseID)
		e.drugResponse[i] = pt.DrugResponse
	}
	e.function = make([]int64, ds.Dims.Genes)
	for i, g := range ds.Genes {
		e.function[i] = int64(g.Function)
	}
	e.goArr = make([]uint8, len(ds.GO))
	copy(e.goArr, ds.GO)
	e.numPats, e.numGen, e.numTerm = p, ds.Dims.Genes, ds.Dims.GOTerms
	return nil
}

// Run implements engine.Engine.
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.expr == nil {
		return nil, fmt.Errorf("arraydb: not loaded")
	}
	switch q {
	case engine.Q1Regression:
		return e.regression(ctx, p)
	case engine.Q2Covariance:
		return e.covariance(ctx, p)
	case engine.Q3Biclustering:
		return e.biclustering(ctx, p)
	case engine.Q4SVD:
		return e.svd(ctx, p)
	case engine.Q5Statistics:
		return e.statistics(ctx, p)
	default:
		return nil, engine.ErrUnsupported
	}
}

// runKernel executes an analytics kernel either on the host (measured
// normally by the caller's stopwatch) or via the accelerator (modeled device
// and transfer seconds are banked into the stopwatch explicitly).
func (e *Engine) runKernel(ctx context.Context, sw *engine.StopWatch, kind string, inBytes, outBytes int64, kernel func() error) error {
	if e.Accel == nil {
		sw.StartAnalytics()
		return kernel()
	}
	sw.Stop()
	compute, transfer, err := e.Accel.Offload(ctx, kind, inBytes, outBytes, kernel)
	if err != nil {
		return err
	}
	sw.AddExternal(engine.Timing{
		Analytics: secondsToDuration(compute),
		Transfer:  secondsToDuration(transfer),
	})
	return nil
}

func secondsToDuration(s float64) time.Duration { return time.Duration(s * 1e9) }

func (e *Engine) selectGenes(thr int64) []int64 {
	var out []int64
	for g, f := range e.function {
		if f < thr {
			out = append(out, int64(g))
		}
	}
	return out
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }

func (e *Engine) regression(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	genes := e.selectGenes(p.FunctionThreshold)
	if len(genes) == 0 {
		return nil, fmt.Errorf("arraydb: no genes pass function < %d", p.FunctionThreshold)
	}
	// Zero-copy: the chunk-aligned subarray lands in one pooled dense
	// matrix in a single pass; the ablation path keeps the historical
	// GatherCols → Materialize double copy.
	var x *linalg.Matrix
	if engine.ZeroCopyEnabled() {
		x = e.expr.GatherColsDense(genes)
		if err := engine.CheckCtx(ctx); err != nil {
			linalg.PutMatrix(x)
			return nil, err
		}
		sw.StartAnalytics()
	} else {
		sub := e.expr.GatherCols(genes)
		if err := engine.CheckCtx(ctx); err != nil {
			return nil, err
		}
		sw.StartAnalytics()
		x = sub.Materialize()
	}

	// Regression offload is unsupported on the coprocessor ("the Intel MKL
	// automatic offload of this operation is currently not fully supported"),
	// so Q1 always runs on the host, even for the accelerated configuration.
	xi := linalg.AddInterceptColumn(x)
	linalg.PutMatrix(x)
	fit, err := linalg.LeastSquares(xi, e.drugResponse)
	linalg.PutMatrix(xi)
	if err != nil {
		return nil, err
	}
	sw.Stop()

	sel := make([]int, len(genes))
	for i, g := range genes {
		sel[i] = int(g)
	}
	return &engine.Result{
		Query:  engine.Q1Regression,
		Timing: sw.Timing(),
		Answer: &engine.RegressionAnswer{
			Coefficients:  fit.Coefficients,
			RSquared:      fit.RSquared,
			SelectedGenes: sel,
			NumPatients:   e.numPats,
		},
	}, nil
}

func (e *Engine) covariance(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	var pats []int64
	for i, d := range e.disease {
		if d == p.DiseaseID {
			pats = append(pats, int64(i))
		}
	}
	if len(pats) < 2 {
		return nil, fmt.Errorf("arraydb: fewer than two patients with disease %d", p.DiseaseID)
	}
	var cov *linalg.Matrix
	inBytes := int64(len(pats)) * int64(e.expr.Cols) * 8
	outBytes := int64(e.expr.Cols) * int64(e.expr.Cols) * 8
	if engine.ZeroCopyEnabled() {
		// Zero-copy: gather the patient rows once into pooled dense scratch
		// and run the shared covariance kernel on it directly. Centering and
		// accumulation orders match the chunked kernel exactly, so the
		// answer is bitwise identical.
		x := e.expr.GatherRowsDense(pats)
		if err := engine.CheckCtx(ctx); err != nil {
			linalg.PutMatrix(x)
			return nil, err
		}
		err := e.runKernel(ctx, &sw, "gemm", inBytes, outBytes, func() error {
			cov = linalg.CovarianceP(x, e.Workers)
			return nil
		})
		linalg.PutMatrix(x)
		if err != nil {
			return nil, err
		}
	} else {
		sub := e.expr.GatherRows(pats)
		if err := engine.CheckCtx(ctx); err != nil {
			return nil, err
		}
		err := e.runKernel(ctx, &sw, "gemm", inBytes, outBytes, func() error {
			cov = sub.CovarianceP(e.Workers) // pdgemm-style chunked kernel
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sw.StartDM()
	ans := engine.SummarizeCovariance(cov, p.CovarianceTopFrac, funcLookup{e.function}, len(pats))
	linalg.PutMatrix(cov)
	sw.Stop()
	return &engine.Result{Query: engine.Q2Covariance, Timing: sw.Timing(), Answer: ans}, nil
}

func (e *Engine) biclustering(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	var pats []int64
	for i := range e.age {
		if e.gender[i] == int64(p.Gender) && e.age[i] < p.MaxAge {
			pats = append(pats, int64(i))
		}
	}
	if len(pats) < 4 {
		return nil, fmt.Errorf("arraydb: only %d patients pass the Q3 filter", len(pats))
	}
	var x *linalg.Matrix
	if engine.ZeroCopyEnabled() {
		x = e.expr.GatherRowsDense(pats) // one pass, pooled
	} else {
		x = e.expr.GatherRows(pats).Materialize() // historical double copy
	}
	if err := engine.CheckCtx(ctx); err != nil {
		linalg.PutMatrix(x)
		return nil, err
	}

	var blocks []bicluster.Bicluster
	inBytes := int64(x.Rows) * int64(x.Cols) * 8
	err := e.runKernel(ctx, &sw, "bicluster", inBytes, 4096, func() error {
		var kerr error
		blocks, kerr = bicluster.Run(x, bicluster.Options{MaxBiclusters: p.MaxBiclusters, Seed: p.Seed})
		return kerr
	})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{
		Query:  engine.Q3Biclustering,
		Timing: sw.Timing(),
		Answer: engine.BiclusterAnswerFromBlocks(blocks, pats),
	}, nil
}

func (e *Engine) svd(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	genes := e.selectGenes(p.FunctionThreshold)
	if len(genes) == 0 {
		return nil, fmt.Errorf("arraydb: no genes pass function < %d", p.FunctionThreshold)
	}
	// Zero-copy: hand Lanczos a dense operator over one pooled gather
	// instead of streaming every iteration's mat-vecs through chunk copies.
	// Both operators accumulate in the same element order, so the singular
	// values are bitwise identical.
	var op linalg.LinearOperator
	var x *linalg.Matrix
	if engine.ZeroCopyEnabled() {
		x = e.expr.GatherColsDense(genes)
		op = linalg.ATAOperator{A: x, Workers: e.Workers}
	} else {
		op = NewATAOperatorP(e.expr.GatherCols(genes), e.Workers)
	}
	if err := engine.CheckCtx(ctx); err != nil {
		linalg.PutMatrix(x)
		return nil, err
	}

	var sv []float64
	inBytes := int64(e.expr.Rows) * int64(len(genes)) * 8
	outBytes := int64(p.SVDK) * int64(len(genes)+1) * 8
	err := e.runKernel(ctx, &sw, "lanczos", inBytes, outBytes, func() error {
		eig, kerr := linalg.Lanczos(op, p.SVDK,
			linalg.LanczosOptions{Reorthogonalize: true, Seed: p.Seed, Workers: e.Workers})
		if kerr != nil {
			return kerr
		}
		sv = make([]float64, len(eig.Values))
		for i, lam := range eig.Values {
			if lam < 0 {
				lam = 0
			}
			sv[i] = math.Sqrt(lam)
		}
		return nil
	})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{
		Query:  engine.Q4SVD,
		Timing: sw.Timing(),
		Answer: &engine.SVDAnswer{SelectedGenes: len(genes), SingularValues: sv},
	}, nil
}

func (e *Engine) statistics(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	step := p.SamplePatientStep()
	var sampled []int64
	for i := 0; i < e.numPats; i += step {
		sampled = append(sampled, int64(i))
	}
	means := make([]float64, e.numGen)
	if engine.ZeroCopyEnabled() {
		// Zero-copy: stream sampled rows straight off the chunked storage —
		// as pure views when the array is a single chunk, through one pooled
		// buffer otherwise. Same ascending-row accumulation order either
		// way, bitwise-identical means.
		if v, ok := e.expr.DenseView(); ok {
			for _, pid := range sampled {
				for j, x := range v.Row(int(pid)) {
					means[j] += x
				}
			}
		} else {
			buf := linalg.GetSlice(e.numGen)
			for _, pid := range sampled {
				e.expr.CopyRow(int(pid), buf)
				for j, v := range buf {
					means[j] += v
				}
			}
			linalg.PutSlice(buf)
		}
	} else {
		sub := e.expr.GatherRows(sampled)
		buf := make([]float64, e.numGen)
		for i := 0; i < sub.Rows; i++ {
			sub.CopyRow(i, buf)
			for j, v := range buf {
				means[j] += v
			}
		}
	}
	for j := range means {
		means[j] /= float64(len(sampled))
	}
	members := make([][]int32, e.numTerm)
	for g := 0; g < e.numGen; g++ {
		row := e.goArr[g*e.numTerm : (g+1)*e.numTerm]
		for t, b := range row {
			if b == 1 {
				members[t] = append(members[t], int32(g))
			}
		}
	}

	var ans *engine.StatsAnswer
	inBytes := int64(len(means))*8 + int64(len(e.goArr))
	err := e.runKernel(ctx, &sw, "rank", inBytes, int64(e.numTerm)*16, func() error {
		var kerr error
		ans, kerr = engine.EnrichmentTest(ctx, means, members, len(sampled))
		return kerr
	})
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{Query: engine.Q5Statistics, Timing: sw.Timing(), Answer: ans}, nil
}
