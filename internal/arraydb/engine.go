package arraydb

import (
	"context"
	"fmt"
	"time"

	"github.com/genbase/genbase/internal/colpage"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/plan"
)

// Engine is the SciDB configuration. An optional Accelerator offloads the
// analytics kernels (the paper's §5 Xeon Phi experiments plug in here).
type Engine struct {
	// ChunkSize overrides the default 256×256 chunking (ablation bench).
	ChunkSize int
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value; with an
	// accelerator attached it also sets the host-side kernel parallelism the
	// device model measures against.
	Workers int
	// Accel, when non-nil, runs the analytics kernels on a coprocessor
	// device model, adding transfer charges. Nil means host execution.
	Accel Accelerator

	expr *Array2D
	// 1-D attribute arrays indexed by patient id.
	age, gender, disease []int64
	drugResponse         []float64
	// 1-D attribute arrays indexed by gene id.
	function []int64
	// Compressed twins of the attribute arrays (internal/colpage), built at
	// Load so the -compress knob can flip at query time: SelectIDs pushes
	// structured predicates down to these instead of scanning dense.
	attrPages map[string]*colpage.IntPage
	// GO membership in array form: belongs[gene, term].
	goArr   []uint8
	numPats int
	numGen  int
	numTerm int
}

// Accelerator abstracts the coprocessor offload used by the SciDB + Xeon Phi
// configuration: it executes a kernel (for correctness) and returns the
// modeled device time plus transfer charges, which the engine books in place
// of the measured host time.
type Accelerator interface {
	Name() string
	// Offload runs kernel after charging for moving inBytes to the device
	// and outBytes back. kind names the kernel family (gemm, lanczos, rank,
	// bicluster) — accelerators speed different kernels up differently. It
	// returns the modeled device compute and transfer seconds.
	Offload(ctx context.Context, kind string, inBytes, outBytes int64, kernel func() error) (compute, transfer float64, err error)
}

// New creates an arraydb engine with default chunking.
func New() *Engine { return &Engine{} }

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.Accel != nil {
		return "scidb-" + e.Accel.Name()
	}
	return "scidb"
}

// Supports implements engine.Engine, derived from the registered physical
// operators (ops.go): SciDB implements the full vocabulary.
func (e *Engine) Supports(q engine.QueryID) bool { return plan.Supports(e.Capabilities(), q) }

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Load implements engine.Engine: everything is stored natively as arrays.
func (e *Engine) Load(ds *datagen.Dataset) error {
	cs := e.ChunkSize
	if cs <= 0 {
		cs = DefaultChunk
	}
	e.expr = FromMatrix(ds.Expression, cs, cs)
	p := ds.Dims.Patients
	e.age = make([]int64, p)
	e.gender = make([]int64, p)
	e.disease = make([]int64, p)
	e.drugResponse = make([]float64, p)
	for i, pt := range ds.Patients {
		e.age[i] = int64(pt.Age)
		e.gender[i] = int64(pt.Gender)
		e.disease[i] = int64(pt.DiseaseID)
		e.drugResponse[i] = pt.DrugResponse
	}
	e.function = make([]int64, ds.Dims.Genes)
	for i, g := range ds.Genes {
		e.function[i] = int64(g.Function)
	}
	e.goArr = make([]uint8, len(ds.GO))
	copy(e.goArr, ds.GO)
	e.numPats, e.numGen, e.numTerm = p, ds.Dims.Genes, ds.Dims.GOTerms
	e.attrPages = map[string]*colpage.IntPage{
		plan.ColAge:       colpage.BuildInt(e.age),
		plan.ColGender:    colpage.BuildInt(e.gender),
		plan.ColDiseaseID: colpage.BuildInt(e.disease),
		plan.ColFunction:  colpage.BuildInt(e.function),
	}
	return nil
}

// Run implements engine.Engine: compile the query into the shared operator
// IR and execute it against this engine's physical operators (ops.go).
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.expr == nil {
		return nil, fmt.Errorf("arraydb: not loaded")
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return nil, err
	}
	return plan.Execute(ctx, e, pl)
}

// runKernel executes an analytics kernel either on the host (measured
// normally by the caller's stopwatch) or via the accelerator (modeled device
// and transfer seconds are banked into the stopwatch explicitly).
func (e *Engine) runKernel(ctx context.Context, sw *engine.StopWatch, kind string, inBytes, outBytes int64, kernel func() error) error {
	if e.Accel == nil {
		sw.StartAnalytics()
		return kernel()
	}
	sw.Stop()
	compute, transfer, err := e.Accel.Offload(ctx, kind, inBytes, outBytes, kernel)
	if err != nil {
		return err
	}
	sw.AddExternal(engine.Timing{
		Analytics: secondsToDuration(compute),
		Transfer:  secondsToDuration(transfer),
	})
	return nil
}

func secondsToDuration(s float64) time.Duration { return time.Duration(s * 1e9) }

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }
