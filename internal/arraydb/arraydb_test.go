package arraydb

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/rengine"
)

func randMatrix(r, c int, seed uint64) *linalg.Matrix {
	rng := datagen.NewRNG(seed)
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func TestFromMatrixRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := int(seed%50) + 1
		c := int((seed>>8)%50) + 1
		chunk := int((seed>>16)%7) + 2
		m := randMatrix(r, c, seed)
		a := FromMatrix(m, chunk, chunk)
		back := a.Materialize()
		return linalg.MaxAbsDiff(m, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAtSetAcrossChunks(t *testing.T) {
	a := NewArray2D(10, 10, 3, 4)
	a.Set(9, 9, 5)
	a.Set(0, 0, 1)
	a.Set(3, 4, 2) // exactly on chunk boundaries
	if a.At(9, 9) != 5 || a.At(0, 0) != 1 || a.At(3, 4) != 2 {
		t.Fatal("cross-chunk addressing broken")
	}
	if a.NumTiles() != 4*3 {
		t.Fatalf("tiles=%d", a.NumTiles())
	}
}

func TestGatherRowsCols(t *testing.T) {
	m := randMatrix(20, 15, 3)
	a := FromMatrix(m, 6, 6)
	rows := []int64{3, 7, 19}
	sub := a.GatherRows(rows)
	for k, i := range rows {
		for j := 0; j < 15; j++ {
			if sub.At(k, j) != m.At(int(i), j) {
				t.Fatalf("row gather wrong at (%d,%d)", k, j)
			}
		}
	}
	cols := []int64{0, 14, 5}
	subc := a.GatherCols(cols)
	for i := 0; i < 20; i++ {
		for k, j := range cols {
			if subc.At(i, k) != m.At(i, int(j)) {
				t.Fatalf("col gather wrong at (%d,%d)", i, k)
			}
		}
	}
}

// The chunked covariance kernel must be bit-identical to the dense one.
func TestChunkedCovarianceBitIdentical(t *testing.T) {
	f := func(seed uint64) bool {
		m := randMatrix(int(seed%40)+2, int((seed>>8)%20)+2, seed)
		a := FromMatrix(m, 7, 5)
		return linalg.MaxAbsDiff(a.Covariance(), linalg.Covariance(m)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedColumnMeansBitIdentical(t *testing.T) {
	m := randMatrix(33, 17, 9)
	a := FromMatrix(m, 8, 8)
	got := a.ColumnMeans()
	want := linalg.ColumnMeans(m)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("mean[%d] differs", j)
		}
	}
}

// The chunked AᵀA operator must match the dense operator bit-for-bit so
// Lanczos runs identically.
func TestChunkedATAOperatorBitIdentical(t *testing.T) {
	m := randMatrix(29, 13, 11)
	a := FromMatrix(m, 6, 4)
	op := NewATAOperator(a)
	dense := linalg.ATAOperator{A: m}
	x := make([]float64, 13)
	rng := datagen.NewRNG(5)
	for i := range x {
		x[i] = rng.Float64()
	}
	got := op.Apply(x)
	want := dense.Apply(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apply[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

// --- engine-level cross-validation ---

func testDataset() *datagen.Dataset {
	return datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.3, Seed: 7})
}

func TestEngineMatchesReferenceAllQueries(t *testing.T) {
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()
	e := New()
	if err := e.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	r := rengine.New()
	if err := r.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	for _, q := range engine.AllQueries() {
		want, err := r.Run(ctx, q, p)
		if err != nil {
			t.Fatalf("reference %v: %v", q, err)
		}
		got, err := e.Run(ctx, q, p)
		if err != nil {
			t.Fatalf("scidb %v: %v", q, err)
		}
		switch q {
		case engine.Q1Regression:
			g, w := got.Answer.(*engine.RegressionAnswer), want.Answer.(*engine.RegressionAnswer)
			if math.Abs(g.RSquared-w.RSquared) > 1e-9 {
				t.Fatalf("R² %v vs %v", g.RSquared, w.RSquared)
			}
		case engine.Q2Covariance:
			g, w := got.Answer.(*engine.CovarianceAnswer), want.Answer.(*engine.CovarianceAnswer)
			if g.NumPairs != w.NumPairs || g.Threshold != w.Threshold {
				t.Fatalf("pairs %d/%v vs %d/%v", g.NumPairs, g.Threshold, w.NumPairs, w.Threshold)
			}
		case engine.Q3Biclustering:
			g, w := got.Answer.(*engine.BiclusterAnswer), want.Answer.(*engine.BiclusterAnswer)
			if len(g.Blocks) != len(w.Blocks) {
				t.Fatalf("blocks %d vs %d", len(g.Blocks), len(w.Blocks))
			}
			for b := range w.Blocks {
				if len(g.Blocks[b].GeneIDs) != len(w.Blocks[b].GeneIDs) {
					t.Fatalf("block %d differs", b)
				}
			}
		case engine.Q4SVD:
			g, w := got.Answer.(*engine.SVDAnswer), want.Answer.(*engine.SVDAnswer)
			for i := range w.SingularValues {
				if g.SingularValues[i] != w.SingularValues[i] {
					t.Fatalf("σ[%d] %v vs %v (should be bit-identical)", i, g.SingularValues[i], w.SingularValues[i])
				}
			}
		case engine.Q5Statistics:
			g, w := got.Answer.(*engine.StatsAnswer), want.Answer.(*engine.StatsAnswer)
			for i := range w.Terms {
				if g.Terms[i].Z != w.Terms[i].Z {
					t.Fatalf("term %d z differs", i)
				}
			}
		}
	}
}

func TestNoTransferWithoutAccelerator(t *testing.T) {
	e := New()
	if err := e.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), engine.Q2Covariance, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Transfer != 0 {
		t.Fatal("native SciDB should have zero transfer time")
	}
	if res.Timing.DataManagement <= 0 {
		t.Fatal("DM not timed")
	}
}

func TestCustomChunkSize(t *testing.T) {
	e := New()
	e.ChunkSize = 16
	if err := e.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	if e.expr.ChunkR != 16 {
		t.Fatal("chunk size not applied")
	}
	if _, err := e.Run(context.Background(), engine.Q4SVD, engine.DefaultParams()); err != nil {
		t.Fatal(err)
	}
}

func TestDenseGathersMatchChunkedGathers(t *testing.T) {
	m := randMatrix(70, 55, 3)
	a := FromMatrix(m, 16, 16)
	rows := []int64{0, 3, 17, 64, 69}
	cols := []int64{54, 0, 16, 31}

	viaChunks := a.GatherRows(rows).Materialize()
	dense := a.GatherRowsDense(rows)
	if linalg.MaxAbsDiff(viaChunks, dense) != 0 {
		t.Fatal("GatherRowsDense diverges from GatherRows+Materialize")
	}
	linalg.PutMatrix(dense)

	viaChunks = a.GatherCols(cols).Materialize()
	dense = a.GatherColsDense(cols)
	if linalg.MaxAbsDiff(viaChunks, dense) != 0 {
		t.Fatal("GatherColsDense diverges from GatherCols+Materialize")
	}
	linalg.PutMatrix(dense)
}

func TestDenseViewSingleChunkOnly(t *testing.T) {
	m := randMatrix(20, 30, 4)
	single := FromMatrix(m, 64, 64) // one tile holds everything
	v, ok := single.DenseView()
	if !ok {
		t.Fatal("single-chunk array must offer a view")
	}
	if linalg.MaxAbsDiff(v, m) != 0 {
		t.Fatal("view content wrong")
	}
	// The view aliases the tile: writes through the array show in the view.
	single.Set(3, 4, 123.5)
	if v.At(3, 4) != 123.5 {
		t.Fatal("view does not alias array storage")
	}
	multi := FromMatrix(m, 8, 8)
	if _, ok := multi.DenseView(); ok {
		t.Fatal("multi-chunk array must not pretend to be dense")
	}
}
