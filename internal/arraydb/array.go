// Package arraydb is the native array-DBMS configuration (the paper's
// SciDB): the microarray is stored as a chunked dense 2-D array, metadata as
// 1-D attribute arrays indexed by the same dimensions, and the analytics run
// as custom chunk-aware kernels directly on the array storage — "there is no
// need to recast tables to arrays and no data copying to an external
// system". Kernels accumulate in the same element order as the dense linalg
// routines, so results are bit-identical to the reference engine.
package arraydb

import (
	"fmt"

	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/parallel"
)

// DefaultChunk is the default square chunk side. SciDB chunks are "rather
// large, typically in the Mbyte range"; 256×256 float64 = 512 KiB.
const DefaultChunk = 256

// tile is one dense chunk, row-major r×c.
type tile struct {
	r, c int
	data []float64
}

// Array2D is a chunked dense 2-D array of float64.
type Array2D struct {
	Rows, Cols     int
	ChunkR, ChunkC int
	nCR, nCC       int
	tiles          []*tile
}

// NewArray2D allocates a zeroed chunked array.
func NewArray2D(rows, cols, chunkR, chunkC int) *Array2D {
	if chunkR <= 0 {
		chunkR = DefaultChunk
	}
	if chunkC <= 0 {
		chunkC = DefaultChunk
	}
	a := &Array2D{
		Rows: rows, Cols: cols, ChunkR: chunkR, ChunkC: chunkC,
		nCR: (rows + chunkR - 1) / chunkR,
		nCC: (cols + chunkC - 1) / chunkC,
	}
	if rows == 0 || cols == 0 {
		return a
	}
	a.tiles = make([]*tile, a.nCR*a.nCC)
	for cr := 0; cr < a.nCR; cr++ {
		tr := min(chunkR, rows-cr*chunkR)
		for cc := 0; cc < a.nCC; cc++ {
			tc := min(chunkC, cols-cc*chunkC)
			a.tiles[cr*a.nCC+cc] = &tile{r: tr, c: tc, data: make([]float64, tr*tc)}
		}
	}
	return a
}

// FromMatrix chunks a dense matrix.
func FromMatrix(m *linalg.Matrix, chunkR, chunkC int) *Array2D {
	a := NewArray2D(m.Rows, m.Cols, chunkR, chunkC)
	for i := 0; i < m.Rows; i++ {
		a.setRowFrom(i, m.Row(i))
	}
	return a
}

func (a *Array2D) setRowFrom(i int, row []float64) {
	cr, lr := i/a.ChunkR, i%a.ChunkR
	for cc := 0; cc < a.nCC; cc++ {
		t := a.tiles[cr*a.nCC+cc]
		copy(t.data[lr*t.c:(lr+1)*t.c], row[cc*a.ChunkC:cc*a.ChunkC+t.c])
	}
}

// At reads one cell.
func (a *Array2D) At(i, j int) float64 {
	t := a.tiles[(i/a.ChunkR)*a.nCC+j/a.ChunkC]
	return t.data[(i%a.ChunkR)*t.c+j%a.ChunkC]
}

// Set writes one cell.
func (a *Array2D) Set(i, j int, v float64) {
	t := a.tiles[(i/a.ChunkR)*a.nCC+j/a.ChunkC]
	t.data[(i%a.ChunkR)*t.c+j%a.ChunkC] = v
}

// CopyRow extracts row i into dst (len ≥ Cols), tile by tile.
func (a *Array2D) CopyRow(i int, dst []float64) {
	cr, lr := i/a.ChunkR, i%a.ChunkR
	for cc := 0; cc < a.nCC; cc++ {
		t := a.tiles[cr*a.nCC+cc]
		copy(dst[cc*a.ChunkC:cc*a.ChunkC+t.c], t.data[lr*t.c:(lr+1)*t.c])
	}
}

// CopyRowRange extracts columns [lo, hi) of row i into dst[lo:hi] (dst is
// indexed by absolute column, len ≥ hi), touching only the tiles that
// overlap the range — the extraction primitive of the column-partitioned
// parallel kernels.
func (a *Array2D) CopyRowRange(i, lo, hi int, dst []float64) {
	cr, lr := i/a.ChunkR, i%a.ChunkR
	for cc := lo / a.ChunkC; cc < a.nCC && cc*a.ChunkC < hi; cc++ {
		t := a.tiles[cr*a.nCC+cc]
		base := cc * a.ChunkC
		s, e := max(lo, base), min(hi, base+t.c)
		copy(dst[s:e], t.data[lr*t.c+(s-base):lr*t.c+(e-base)])
	}
}

// Materialize converts the array to a dense matrix.
func (a *Array2D) Materialize() *linalg.Matrix {
	m := linalg.NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		a.CopyRow(i, m.Row(i))
	}
	return m
}

// DenseView returns a zero-copy matrix view over the array's storage when
// the array is backed by a single chunk (its tile is already row-major
// dense). Multi-chunk arrays report false — their tiles are separate
// allocations, so a dense consumer needs one of the Dense gathers below.
func (a *Array2D) DenseView() (*linalg.Matrix, bool) {
	if len(a.tiles) != 1 {
		return nil, false
	}
	t := a.tiles[0]
	return linalg.DenseView(t.data, t.r, t.c), true
}

// GatherRowsDense extracts the given rows, in order, directly into one
// pooled dense matrix with chunk-aligned copies — a single pass where the
// old GatherRows(...).Materialize() chain copied every cell twice through a
// second chunked array. Release the result with linalg.PutMatrix.
func (a *Array2D) GatherRowsDense(rows []int64) *linalg.Matrix {
	m := linalg.GetMatrix(len(rows), a.Cols)
	for k, i := range rows {
		a.CopyRow(int(i), m.Row(k))
	}
	return m
}

// GatherColsDense extracts the given columns, in order, into one pooled
// dense matrix: each chunked row is staged once into pooled scratch, then
// gathered. Release the result with linalg.PutMatrix.
func (a *Array2D) GatherColsDense(cols []int64) *linalg.Matrix {
	m := linalg.GetMatrix(a.Rows, len(cols))
	src := linalg.GetSlice(a.Cols)
	for i := 0; i < a.Rows; i++ {
		a.CopyRow(i, src)
		dst := m.Row(i)
		for k, j := range cols {
			dst[k] = src[j]
		}
	}
	linalg.PutSlice(src)
	return m
}

// GatherRows builds a new chunked array holding the given rows, in order —
// the array-native "subarray along a dimension" operation (no join needed).
func (a *Array2D) GatherRows(rows []int64) *Array2D {
	out := NewArray2D(len(rows), a.Cols, a.ChunkR, a.ChunkC)
	buf := make([]float64, a.Cols)
	for k, i := range rows {
		a.CopyRow(int(i), buf)
		out.setRowFrom(k, buf)
	}
	return out
}

// GatherCols builds a new chunked array holding the given columns, in order.
func (a *Array2D) GatherCols(cols []int64) *Array2D {
	out := NewArray2D(a.Rows, len(cols), a.ChunkR, a.ChunkC)
	src := make([]float64, a.Cols)
	dst := make([]float64, len(cols))
	for i := 0; i < a.Rows; i++ {
		a.CopyRow(i, src)
		for k, j := range cols {
			dst[k] = src[j]
		}
		out.setRowFrom(i, dst)
	}
	return out
}

// NumTiles reports the allocated chunk count (for tests and the chunk-size
// ablation).
func (a *Array2D) NumTiles() int { return len(a.tiles) }

// ColumnMeans computes per-column means, accumulating rows in ascending
// order (bit-identical to linalg.ColumnMeans).
func (a *Array2D) ColumnMeans() []float64 { return a.ColumnMeansP(0) }

// ColumnMeansP is ColumnMeans with an explicit worker count: workers own
// disjoint column ranges and stream only their tiles of each chunked row in
// ascending row order, so the result stays bit-identical to
// linalg.ColumnMeans at any worker count.
func (a *Array2D) ColumnMeansP(workers int) []float64 {
	means := make([]float64, a.Cols)
	if a.Rows == 0 {
		return means
	}
	parallel.ForSplit(workers, a.Cols, func(lo, hi int) {
		buf := linalg.GetSlice(a.Cols)
		for i := 0; i < a.Rows; i++ {
			a.CopyRowRange(i, lo, hi, buf)
			for j := lo; j < hi; j++ {
				means[j] += buf[j]
			}
		}
		linalg.PutSlice(buf)
	})
	inv := 1 / float64(a.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Covariance computes the sample covariance of the array's columns
// (bit-identical to linalg.Covariance) with the default worker count.
func (a *Array2D) Covariance() *linalg.Matrix { return a.CovarianceP(0) }

// CovarianceP streams the chunked rows once into a centered dense buffer and
// runs the shared multicore Gram kernel on it — SciDB's pdgemm hand-off,
// which materializes a dense copy exactly as handing chunks to ScaLAPACK
// does. This trades the old kernel's O(Cols) streaming buffer for
// O(Rows·Cols) scratch in exchange for the multicore Gram. The centering and
// accumulation orders match linalg.CovarianceP exactly, so the result is
// bit-identical to the reference engine at any worker count.
func (a *Array2D) CovarianceP(workers int) *linalg.Matrix {
	n := a.Cols
	if a.Rows < 2 {
		return linalg.NewMatrix(n, n)
	}
	means := a.ColumnMeansP(workers)
	centered := linalg.GetMatrix(a.Rows, n) // pooled scratch; fully overwritten
	parallel.ForSplit(workers, a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := centered.Row(i)
			a.CopyRow(i, row)
			for j := range row {
				row[j] -= means[j]
			}
		}
	})
	c := linalg.MulATAP(centered, workers)
	linalg.PutMatrix(centered)
	c.Scale(1 / float64(a.Rows-1))
	return c
}

// ATAOperator applies x ↦ Aᵀ(A·x) directly on the chunked storage. Element
// accumulation follows ascending row/column order, matching
// linalg.ATAOperator bit-for-bit at any worker count.
type ATAOperator struct {
	A *Array2D
	// Workers is the worker count for both mat-vec passes (0 = default).
	Workers int
}

// NewATAOperator wraps a chunked array for Lanczos with the default worker
// count.
func NewATAOperator(a *Array2D) *ATAOperator { return &ATAOperator{A: a} }

// NewATAOperatorP wraps a chunked array for Lanczos with an explicit worker
// count.
func NewATAOperatorP(a *Array2D, workers int) *ATAOperator {
	return &ATAOperator{A: a, Workers: workers}
}

// Dim implements linalg.LinearOperator.
func (o *ATAOperator) Dim() int { return o.A.Cols }

// Apply implements linalg.LinearOperator. The y = A·x pass partitions output
// rows; the z = Aᵀ·y pass partitions output columns, each worker streaming
// the chunked rows in ascending order into its own row buffer — z[j] keeps
// the serial accumulation order, so results are bitwise deterministic.
func (o *ATAOperator) Apply(x []float64) []float64 {
	a := o.A
	y := linalg.GetSlice(a.Rows)
	parallel.ForSplit(o.Workers, a.Rows, func(lo, hi int) {
		buf := linalg.GetSlice(a.Cols)
		for i := lo; i < hi; i++ {
			a.CopyRow(i, buf)
			s := 0.0
			for j, v := range buf {
				s += v * x[j]
			}
			y[i] = s
		}
		linalg.PutSlice(buf)
	})
	// Arena-drawn under the LinearOperator ownership contract: Lanczos
	// returns spent result vectors to the pool. Each worker zeroes its own
	// column range before accumulating (pooled buffers arrive dirty).
	z := linalg.GetSlice(a.Cols)
	parallel.ForSplit(o.Workers, a.Cols, func(lo, hi int) {
		buf := linalg.GetSlice(a.Cols)
		for j := lo; j < hi; j++ {
			z[j] = 0
		}
		for i := 0; i < a.Rows; i++ {
			a.CopyRowRange(i, lo, hi, buf)
			yi := y[i]
			for j := lo; j < hi; j++ {
				z[j] += yi * buf[j]
			}
		}
		linalg.PutSlice(buf)
	})
	linalg.PutSlice(y)
	return z
}

func (a *Array2D) String() string {
	return fmt.Sprintf("Array2D(%d×%d, %d×%d chunks)", a.Rows, a.Cols, a.nCR, a.nCC)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
