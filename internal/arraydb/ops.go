package arraydb

import (
	"context"
	"fmt"
	"math"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/colpage"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// The array store's physical operators (plan.Physical): metadata lives in
// 1-D attribute arrays scanned directly, pivots are chunk-aligned subarray
// gathers (single-pass pooled dense gathers on the zero-copy path), and the
// kernels run on the host — or on the coprocessor device model when an
// Accelerator is attached, which books modeled compute and transfer time in
// place of measured host time.

// Capabilities implements plan.Physical: SciDB runs every operator.
func (e *Engine) Capabilities() plan.OpSet { return plan.AllOps() }

// Dims implements plan.Physical.
func (e *Engine) Dims() (int, int) { return e.numPats, e.numGen }

// attrOf resolves an IR column to its 1-D attribute array.
func (e *Engine) attrOf(table, col string) ([]int64, error) {
	switch {
	case table == plan.TableGenes && col == plan.ColFunction:
		return e.function, nil
	case table == plan.TablePatients && col == plan.ColAge:
		return e.age, nil
	case table == plan.TablePatients && col == plan.ColGender:
		return e.gender, nil
	case table == plan.TablePatients && col == plan.ColDiseaseID:
		return e.disease, nil
	default:
		return nil, fmt.Errorf("arraydb: no attribute array for %s.%s", table, col)
	}
}

// SelectIDs implements plan.Physical (ids are array coordinates). With the
// compression knob on, predicates push down to the encoded attribute pages
// (dictionary-code equality, RLE run skipping, packed-word range tests —
// DESIGN.md §15) and rejected coordinates are never decoded; the ablation
// path is the historical dense scan.
func (e *Engine) SelectIDs(_ context.Context, table string, preds []plan.Pred) ([]int64, error) {
	if engine.CompressionEnabled() && len(preds) > 0 {
		var sel []int32
		for i, p := range preds {
			if _, err := e.attrOf(table, p.Col); err != nil {
				return nil, err
			}
			pg := e.attrPages[p.Col]
			cp := colpage.Pred{Op: colpage.LT, Val: p.Val}
			if p.Op == plan.CmpEQ {
				cp.Op = colpage.EQ
			}
			if i == 0 {
				sel = pg.Select(cp, nil)
			} else {
				sel = pg.RefinePred(cp, sel)
			}
		}
		out := make([]int64, len(sel))
		for i, c := range sel {
			out[i] = int64(c)
		}
		return out, nil
	}
	cols := make([][]int64, len(preds))
	for i, p := range preds {
		a, err := e.attrOf(table, p.Col)
		if err != nil {
			return nil, err
		}
		cols[i] = a
	}
	n := e.numGen
	if table == plan.TablePatients {
		n = e.numPats
	}
	var out []int64
	for i := 0; i < n; i++ {
		ok := true
		for j, p := range preds {
			if !p.Eval(cols[j][i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, int64(i))
		}
	}
	return out, nil
}

// ScanFloats implements plan.Physical over the drug-response attribute.
func (e *Engine) ScanFloats(_ context.Context, table, col string, ids []int64) ([]float64, error) {
	if table != plan.TablePatients || col != plan.ColDrugResponse {
		return nil, fmt.Errorf("arraydb: no physical scan for %s.%s", table, col)
	}
	if ids == nil {
		return e.drugResponse, nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = e.drugResponse[id]
	}
	return out, nil
}

// Pivot implements plan.Physical: chunk-aligned subarray gathers. The
// zero-copy path lands the selection in one pooled dense matrix in a single
// pass; the ablation path keeps the historical Gather → Materialize double
// copy for every kernel. (Pre-plan, the Q2/Q4 ablation paths fed chunked
// operators — Array2D.CovarianceP, NewATAOperatorP — straight to the
// kernels without a dense materialization; those kernels accumulate in the
// same element order as the dense ones, so answers are unchanged, and the
// chunked implementations remain exercised by the arraydb unit tests.)
func (e *Engine) Pivot(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	var x *linalg.Matrix
	switch {
	case patientIDs == nil && geneIDs == nil:
		if engine.ZeroCopyEnabled() {
			if v, ok := e.expr.DenseView(); ok {
				x = v
				break
			}
		}
		x = e.expr.Materialize()
	case patientIDs == nil:
		if engine.ZeroCopyEnabled() {
			x = e.expr.GatherColsDense(geneIDs)
		} else {
			x = e.expr.GatherCols(geneIDs).Materialize()
		}
	case geneIDs == nil:
		if engine.ZeroCopyEnabled() {
			x = e.expr.GatherRowsDense(patientIDs)
		} else {
			x = e.expr.GatherRows(patientIDs).Materialize()
		}
	default:
		// Both axes selected (the cohort scenarios): gather the patient rows
		// through one scratch row, picking the selected genes.
		if engine.ZeroCopyEnabled() {
			x = linalg.GetMatrix(len(patientIDs), len(geneIDs))
			buf := linalg.GetSlice(e.numGen)
			for i, pid := range patientIDs {
				e.expr.CopyRow(int(pid), buf)
				dst := x.Row(i)
				for j, gid := range geneIDs {
					dst[j] = buf[gid]
				}
			}
			linalg.PutSlice(buf)
		} else {
			x = e.expr.GatherRows(patientIDs).GatherCols(geneIDs).Materialize()
		}
	}
	if err := engine.CheckCtx(ctx); err != nil {
		linalg.PutMatrix(x)
		return nil, err
	}
	return x, nil
}

// SampleMeans implements plan.Physical: stream the sampled rows off chunked
// storage (views or one pooled buffer on the zero-copy path, a gathered
// subarray on the ablation path). Accumulation order is ascending patient
// either way, so the means are bitwise identical.
func (e *Engine) SampleMeans(_ context.Context, step int) ([]float64, int, error) {
	var sampled []int64
	for i := 0; i < e.numPats; i += step {
		sampled = append(sampled, int64(i))
	}
	means := make([]float64, e.numGen)
	if engine.ZeroCopyEnabled() {
		if v, ok := e.expr.DenseView(); ok {
			for _, pid := range sampled {
				for j, x := range v.Row(int(pid)) {
					means[j] += x
				}
			}
		} else {
			buf := linalg.GetSlice(e.numGen)
			for _, pid := range sampled {
				e.expr.CopyRow(int(pid), buf)
				for j, v := range buf {
					means[j] += v
				}
			}
			linalg.PutSlice(buf)
		}
	} else {
		sub := e.expr.GatherRows(sampled)
		buf := make([]float64, e.numGen)
		for i := 0; i < sub.Rows; i++ {
			sub.CopyRow(i, buf)
			for j, v := range buf {
				means[j] += v
			}
		}
	}
	for j := range means {
		means[j] /= float64(len(sampled))
	}
	return means, len(sampled), nil
}

// GOMembers implements plan.Physical over the belongs[gene, term] array.
func (e *Engine) GOMembers(_ context.Context) ([][]int32, error) {
	members := make([][]int32, e.numTerm)
	for g := 0; g < e.numGen; g++ {
		row := e.goArr[g*e.numTerm : (g+1)*e.numTerm]
		for t, b := range row {
			if b == 1 {
				members[t] = append(members[t], int32(g))
			}
		}
	}
	return members, nil
}

// GeneMeta implements plan.Physical over the function attribute array.
func (e *Engine) GeneMeta(_ context.Context) (engine.GeneMeta, error) {
	return funcLookup{e.function}, nil
}

// RunRegression implements plan.Physical. Regression offload is unsupported
// on the coprocessor ("the Intel MKL automatic offload of this operation is
// currently not fully supported"), so Q1-shaped kernels always run on the
// host, even for the accelerated configuration.
func (e *Engine) RunRegression(_ context.Context, sw *engine.StopWatch, x *linalg.Matrix, y []float64) ([]float64, float64, error) {
	sw.StartAnalytics()
	return engine.FitLeastSquares(x, y)
}

// RunCovariance implements plan.Physical (pdgemm-style kernel, offloadable).
func (e *Engine) RunCovariance(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix) (*linalg.Matrix, error) {
	inBytes := int64(x.Rows) * int64(x.Cols) * 8
	outBytes := int64(x.Cols) * int64(x.Cols) * 8
	var cov *linalg.Matrix
	err := e.runKernel(ctx, sw, "gemm", inBytes, outBytes, func() error {
		cov = linalg.CovarianceP(x, e.Workers)
		return nil
	})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	return cov, nil
}

// RunSVD implements plan.Physical: Lanczos over the dense AᵀA operator
// (offloadable).
func (e *Engine) RunSVD(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, k int, seed uint64) ([]float64, error) {
	op := linalg.ATAOperator{A: x, Workers: e.Workers}
	inBytes := int64(x.Rows) * int64(x.Cols) * 8
	outBytes := int64(k) * int64(x.Cols+1) * 8
	var sv []float64
	err := e.runKernel(ctx, sw, "lanczos", inBytes, outBytes, func() error {
		eig, kerr := linalg.Lanczos(op, k,
			linalg.LanczosOptions{Reorthogonalize: true, Seed: seed, Workers: e.Workers})
		if kerr != nil {
			return kerr
		}
		sv = make([]float64, len(eig.Values))
		for i, lam := range eig.Values {
			if lam < 0 {
				lam = 0
			}
			sv[i] = math.Sqrt(lam)
		}
		return nil
	})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	return sv, nil
}

// RunBicluster implements plan.Physical (offloadable).
func (e *Engine) RunBicluster(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, maxB int, seed uint64) ([]bicluster.Bicluster, error) {
	var blocks []bicluster.Bicluster
	inBytes := int64(x.Rows) * int64(x.Cols) * 8
	err := e.runKernel(ctx, sw, "bicluster", inBytes, 4096, func() error {
		var kerr error
		blocks, kerr = bicluster.Run(x, bicluster.Options{MaxBiclusters: maxB, Seed: seed})
		return kerr
	})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// RunStats implements plan.Physical (rank kernel, offloadable).
func (e *Engine) RunStats(ctx context.Context, sw *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	var ans *engine.StatsAnswer
	inBytes := int64(len(means))*8 + int64(len(e.goArr))
	err := e.runKernel(ctx, sw, "rank", inBytes, int64(e.numTerm)*16, func() error {
		var kerr error
		ans, kerr = engine.EnrichmentTest(ctx, means, members, sampled)
		return kerr
	})
	if err != nil {
		return nil, err
	}
	return ans, nil
}

// PhysicalName implements plan.Physical.
func (e *Engine) PhysicalName(k plan.OpKind) string {
	kernel := "host BLAS-lite kernel"
	if e.Accel != nil {
		kernel = "coprocessor offload (" + e.Accel.Name() + ")"
	}
	switch k {
	case plan.OpSelectPred:
		if engine.CompressionEnabled() {
			return "encoded attribute-page pushdown"
		}
		return "attribute-array scan"
	case plan.OpScanTable:
		return "attribute-array projection"
	case plan.OpSamplePatients:
		return "coordinate modulus"
	case plan.OpPivotMicro:
		return "chunk-aligned subarray gather"
	case plan.OpKernelRegression:
		return "host BLAS-lite kernel (offload unsupported)"
	case plan.OpKernelCovariance, plan.OpKernelSVD, plan.OpKernelBicluster, plan.OpKernelStats:
		return kernel
	case plan.OpTopKByAbs:
		return "shared covariance summary"
	case plan.OpEmit:
		return "answer assembly"
	default:
		return "unsupported"
	}
}
