package arraydb

import (
	"math"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/linalg"
)

func chunkedRand(r, c, chunk int, seed uint64) (*Array2D, *linalg.Matrix) {
	rng := datagen.NewRNG(seed)
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return FromMatrix(m, chunk, chunk), m
}

// The column-partitioned kernels extract partial rows with CopyRowRange;
// ranges that straddle tile boundaries must see exactly the same values as a
// full-row copy, and every kernel must be bitwise identical across worker
// counts and to the dense reference.
func TestCopyRowRangeMatchesCopyRow(t *testing.T) {
	a, _ := chunkedRand(11, 53, 16, 1) // 53 cols over 16-wide tiles → ragged edge
	full := make([]float64, a.Cols)
	part := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		a.CopyRow(i, full)
		for _, rg := range [][2]int{{0, 53}, {5, 37}, {16, 32}, {15, 17}, {48, 53}, {52, 53}} {
			for j := range part {
				part[j] = math.NaN() // poison outside the range
			}
			a.CopyRowRange(i, rg[0], rg[1], part)
			for j := rg[0]; j < rg[1]; j++ {
				if part[j] != full[j] {
					t.Fatalf("row %d range %v: col %d got %v want %v", i, rg, j, part[j], full[j])
				}
			}
		}
	}
}

func TestChunkedKernelsBitwiseAcrossWorkers(t *testing.T) {
	a, m := chunkedRand(67, 45, 16, 2)
	wantMeans := linalg.ColumnMeansP(m, 1)
	wantCov := linalg.CovarianceP(m, 1)
	x := make([]float64, a.Cols)
	for j := range x {
		x[j] = float64(j%7) - 3
	}
	wantZ := linalg.ATAOperator{A: m, Workers: 1}.Apply(x)
	for _, w := range []int{1, 3, 8} {
		means := a.ColumnMeansP(w)
		for j := range wantMeans {
			if math.Float64bits(means[j]) != math.Float64bits(wantMeans[j]) {
				t.Fatalf("workers=%d: means[%d] %v != %v", w, j, means[j], wantMeans[j])
			}
		}
		if linalg.MaxAbsDiff(a.CovarianceP(w), wantCov) != 0 {
			t.Fatalf("workers=%d: covariance not bit-identical", w)
		}
		z := NewATAOperatorP(a, w).Apply(x)
		for j := range wantZ {
			if math.Float64bits(z[j]) != math.Float64bits(wantZ[j]) {
				t.Fatalf("workers=%d: z[%d] %v != %v", w, j, z[j], wantZ[j])
			}
		}
	}
}
