package cost

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/plan"
)

// The offline fit turns the committed bench baselines into per-configuration
// coefficients. It is pure arithmetic over the committed JSON — no clocks, no
// randomness — so re-running it over the same files reproduces the committed
// coeffs.json bit-for-bit (CI checks exactly that).
//
// Three sources, in decreasing quality:
//
//  1. BENCH_pipeline.json measures single queries end-to-end on three
//     engines. colstore-udf has two distinct pipelines (covariance +
//     regression), enough to solve for both class rates directly via 2×2
//     least squares. postgres-madlib and scidb have one pipeline each, so
//     their single equation is split using colstore-udf's fitted kernel
//     share as a prior.
//  2. BENCH_serve.json's clients=1 rows: with one slot the server is fully
//     serial and saturated (offered ≫ achieved), so mean service time for
//     the mix is 1e9/qps. One equation per (system, nodes) group, split by
//     the pipeline-fitted kernel-share prior for the mix.
//  3. BENCH_kernels.json contributes the parallel-vs-serial kernel scale:
//     the measured multi-worker rate multiplier applied when a worker-pinned
//     configuration is estimated.
//
// Everything is recorded at the small preset (250 patients × 250 genes × 100
// GO terms) with engine.DefaultParams(), so the fit compiles exactly those
// plans to get work-unit counts.

// FitDims is the dataset shape the committed baselines were recorded at.
var FitDims = Dims{Patients: 250, Genes: 250, GOTerms: 100}

// pipelineBenches maps BENCH_pipeline.json bench names (zerocopy variant:
// the default execution path) to the configuration and query they measure.
var pipelineBenches = map[string]struct {
	system string
	query  engine.QueryID
}{
	"PipelineColstoreCovariance/zerocopy": {"colstore-udf", engine.Q2Covariance},
	"PipelineColstoreRegression/zerocopy": {"colstore-udf", engine.Q1Regression},
	"PipelineRowstoreCovariance/zerocopy": {"postgres-madlib", engine.Q2Covariance},
	"PipelineArrayDBCovariance/zerocopy":  {"scidb", engine.Q2Covariance},
}

// serveMixQueries is the serve-bench workload (cmd/genbase-bench serveMix):
// the fit splits each measured mix service time across these plans' units.
var serveMixQueries = []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q5Statistics}

// kernelScalePairs are the serial/parallel bench-name pairs in
// BENCH_kernels.json whose ratio measures the multi-worker kernel-rate
// multiplier.
var kernelScalePairs = [][2]string{
	{"KernelGEMM/packed-serial", "KernelGEMM/packed-parallel"},
	{"KernelGram/serial", "KernelGram/parallel"},
	{"KernelCovariance/serial", "KernelCovariance/parallel"},
	{"KernelSVD/serial", "KernelSVD/parallel"},
}

type benchFile struct {
	Results []struct {
		Bench   string  `json:"bench"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"results"`
}

type serveFile struct {
	Results []struct {
		System  string  `json:"system"`
		Nodes   int     `json:"nodes"`
		Clients int     `json:"clients"`
		QPS     float64 `json:"qps"`
		Route   string  `json:"route"`
	} `json:"results"`
}

// classUnits is a plan's total work units split by operator class.
type classUnits struct{ dm, kernel float64 }

func planUnits(q engine.QueryID, d Dims) (classUnits, error) {
	pl, err := plan.Compile(q, engine.DefaultParams())
	if err != nil {
		return classUnits{}, fmt.Errorf("compile %v for fit: %w", q, err)
	}
	var u classUnits
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		if opClass(n.Kind) == classKernel {
			u.kernel += Units(n, d)
		} else {
			u.dm += Units(n, d)
		}
	}
	return u, nil
}

// fitObs is one end-to-end measurement: work units in, wall nanoseconds out.
type fitObs struct {
	u classUnits
	t float64
}

// solve2x2 solves the least-squares normal equations for observations
// (dmU_i, kernU_i) → t_i. ok is false when the system is singular or the
// solution is not strictly positive (a rate of ≤0 ns/unit is unusable).
func solve2x2(obs []fitObs) (x, y float64, ok bool) {
	var a, b, c, d, e float64 // [a b; b c] [x y]' = [d e]'
	for _, o := range obs {
		a += o.u.dm * o.u.dm
		b += o.u.dm * o.u.kernel
		c += o.u.kernel * o.u.kernel
		d += o.u.dm * o.t
		e += o.u.kernel * o.t
	}
	det := a*c - b*b
	if math.Abs(det) < 1e-6*math.Max(a*c, 1) {
		return 0, 0, false
	}
	x = (d*c - b*e) / det
	y = (a*e - b*d) / det
	return x, y, x > 0 && y > 0
}

// kernelShare is the fraction of a workload's predicted time spent in
// kernels under a fitted coefficient pair.
func kernelShare(u classUnits, co Coeff) float64 {
	k := u.kernel * co.KernelNsPerUnit
	tot := u.dm*co.DMNsPerUnit + k
	if tot <= 0 {
		return 0
	}
	return k / tot
}

// splitByShare turns one total-time observation into a coefficient pair by
// assuming the prior kernel share κ.
func splitByShare(u classUnits, t, kappa float64) Coeff {
	var co Coeff
	if u.kernel > 0 {
		co.KernelNsPerUnit = kappa * t / u.kernel
	}
	if u.dm > 0 {
		co.DMNsPerUnit = (1 - kappa) * t / u.dm
	}
	// A workload with no kernel units (or no dm units) leaves that rate
	// unobservable; borrow the other class's rate so the coefficient is at
	// least usable.
	if co.KernelNsPerUnit <= 0 {
		co.KernelNsPerUnit = co.DMNsPerUnit
	}
	if co.DMNsPerUnit <= 0 {
		co.DMNsPerUnit = co.KernelNsPerUnit
	}
	return co
}

// defaultKappa is the kernel-share prior used only if the pipeline fit
// cannot produce one (never with the committed baselines).
const defaultKappa = 0.8

// Fit builds a Model from the three committed bench baselines (the raw JSON
// bytes of BENCH_pipeline.json, BENCH_kernels.json, BENCH_serve.json). The
// fit is deterministic: same bytes in, same model out.
func Fit(pipelineJSON, kernelsJSON, serveJSON []byte) (*Model, error) {
	var pipe, kern benchFile
	var srv serveFile
	if err := json.Unmarshal(pipelineJSON, &pipe); err != nil {
		return nil, fmt.Errorf("parse pipeline bench: %w", err)
	}
	if err := json.Unmarshal(kernelsJSON, &kern); err != nil {
		return nil, fmt.Errorf("parse kernels bench: %w", err)
	}
	if err := json.Unmarshal(serveJSON, &srv); err != nil {
		return nil, fmt.Errorf("parse serve bench: %w", err)
	}

	m := &Model{Coeffs: map[string]Coeff{}}

	// --- stage 1: pipeline rows → per-system observations -----------------
	perSystem := map[string][]fitObs{}
	var systems []string
	for _, r := range pipe.Results {
		pb, ok := pipelineBenches[r.Bench]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		u, err := planUnits(pb.query, FitDims)
		if err != nil {
			return nil, err
		}
		if _, seen := perSystem[pb.system]; !seen {
			systems = append(systems, pb.system)
		}
		perSystem[pb.system] = append(perSystem[pb.system], fitObs{u, r.NsPerOp})
	}
	sort.Strings(systems)

	// Solve the over-determined systems first; they also set the
	// kernel-share prior κ for the single-equation ones.
	kappa := -1.0
	for _, s := range systems {
		o := perSystem[s]
		if len(o) < 2 {
			continue
		}
		if x, y, ok := solve2x2(o); ok {
			m.Coeffs[s] = Coeff{DMNsPerUnit: x, KernelNsPerUnit: y, Source: "pipeline-lsq"}
			// κ from the first (alphabetically earliest bench) observation.
			k := kernelShare(o[0].u, m.Coeffs[s])
			if kappa < 0 || k < kappa {
				kappa = k
			}
		}
	}
	if kappa < 0 {
		kappa = defaultKappa
	}
	for _, s := range systems {
		if _, done := m.Coeffs[s]; done {
			continue
		}
		o := perSystem[s]
		co := splitByShare(o[0].u, o[0].t, kappa)
		co.Source = "pipeline-prior"
		m.Coeffs[s] = co
	}

	// --- stage 2: serve clients=1 rows → every remaining configuration ----
	mixU := classUnits{}
	for _, q := range serveMixQueries {
		u, err := planUnits(q, FitDims)
		if err != nil {
			return nil, err
		}
		mixU.dm += u.dm / float64(len(serveMixQueries))
		mixU.kernel += u.kernel / float64(len(serveMixQueries))
	}
	// κ for the mix: median predicted kernel share across the
	// pipeline-fitted systems (sorted key order for determinism).
	var shares []float64
	pipeKeys := make([]string, 0, len(m.Coeffs))
	for k := range m.Coeffs {
		pipeKeys = append(pipeKeys, k)
	}
	sort.Strings(pipeKeys)
	for _, k := range pipeKeys {
		shares = append(shares, kernelShare(mixU, m.Coeffs[k]))
	}
	mixKappa := defaultKappa
	if len(shares) > 0 {
		sort.Float64s(shares)
		mixKappa = shares[len(shares)/2]
	}

	// Group clients=1 rows by configuration key, averaging duplicate groups
	// (a system can appear at nodes=1 both as its single-node engine and as
	// its virtual cluster at one node; their mean is the honest blend).
	type acc struct {
		sumT float64
		n    int
	}
	groups := map[string]*acc{}
	var order []string
	for _, r := range srv.Results {
		if r.Clients != 1 || r.QPS <= 0 {
			continue
		}
		if r.Route != "" {
			// Routed-fleet rows measure the router's mixing of many
			// configurations — no single (system, nodes) identity to fit.
			continue
		}
		key := Config{System: r.System, Nodes: r.Nodes}.Key()
		g, ok := groups[key]
		if !ok {
			g = &acc{}
			groups[key] = g
			order = append(order, key)
		}
		g.sumT += 1e9 / r.QPS
		g.n++
	}
	sort.Strings(order)
	for _, key := range order {
		if _, done := m.Coeffs[key]; done {
			continue // pipeline fit is end-to-end per query: higher quality
		}
		g := groups[key]
		co := splitByShare(mixU, g.sumT/float64(g.n), mixKappa)
		co.Source = "serve-prior"
		m.Coeffs[key] = co
	}

	// --- stage 3: aliases for configurations with no bench rows at all ----
	// scidb-phi is the scidb engine with the accelerator kernel path; seed
	// it from scidb's rates and let the online layer pull them apart.
	if _, ok := m.Coeffs["scidb-phi"]; !ok {
		if co, ok := m.Coeffs["scidb"]; ok {
			co.Source = "alias:scidb"
			m.Coeffs["scidb-phi"] = co
		}
	}

	// --- stage 4: parallel kernel scale from BENCH_kernels.json -----------
	var ratios []float64
	byName := map[string]float64{}
	for _, r := range kern.Results {
		byName[r.Bench] = r.NsPerOp
	}
	for _, p := range kernelScalePairs {
		s, par := byName[p[0]], byName[p[1]]
		if s > 0 && par > 0 {
			ratios = append(ratios, par/s)
		}
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		mid := len(ratios) / 2
		if len(ratios)%2 == 0 {
			m.ParallelKernelScale = (ratios[mid-1] + ratios[mid]) / 2
		} else {
			m.ParallelKernelScale = ratios[mid]
		}
	}

	m.Header = fmt.Sprintf("deterministic fit from BENCH_pipeline.json + BENCH_kernels.json + BENCH_serve.json at the small preset (%d patients x %d genes x %d GO terms), engine.DefaultParams(); %d configuration keys; regenerate with: go run ./cmd/genbase-bench -fit-cost",
		FitDims.Patients, FitDims.Genes, FitDims.GOTerms, len(m.Coeffs))
	return m, nil
}
