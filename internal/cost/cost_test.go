package cost

import (
	"bytes"
	"os"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/plan"
)

func readBench(t *testing.T, name string) []byte {
	t.Helper()
	blob, err := os.ReadFile("../../" + name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return blob
}

func fitFromCommitted(t *testing.T) *Model {
	t.Helper()
	m, err := Fit(readBench(t, "BENCH_pipeline.json"), readBench(t, "BENCH_kernels.json"), readBench(t, "BENCH_serve.json"))
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return m
}

// The committed coeffs.json must be exactly what a fresh fit of the
// committed bench baselines produces — the same determinism contract CI
// enforces via the -fit-cost diff.
func TestFitReproducesCommittedCoefficients(t *testing.T) {
	m := fitFromCommitted(t)
	got, err := m.MarshalJSONFile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, embeddedCoeffs) {
		t.Fatalf("fresh fit differs from committed coeffs.json; regenerate with: go run ./cmd/genbase-bench -fit-cost")
	}
	// And twice over: the fit itself is deterministic.
	again, err := fitFromCommitted(t).MarshalJSONFile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatal("two fits of the same bytes disagree")
	}
}

func TestFitCoefficientShapes(t *testing.T) {
	m := fitFromCommitted(t)
	wantKeys := []string{
		"vanilla-r", "postgres-madlib", "postgres-r", "colstore-r",
		"colstore-udf", "scidb", "scidb-phi", "hadoop",
		"pbdr", "pbdr@2n", "pbdr@4n",
		"colstore-pbdr", "colstore-pbdr@2n", "colstore-pbdr@4n",
		"colstore-udf@2n", "colstore-udf@4n", "scidb@2n", "scidb@4n",
	}
	for _, k := range wantKeys {
		co, ok := m.Coeffs[k]
		if !ok {
			t.Errorf("missing coefficient for %s", k)
			continue
		}
		if co.DMNsPerUnit <= 0 || co.KernelNsPerUnit <= 0 {
			t.Errorf("%s: non-positive rates %+v", k, co)
		}
	}
	if len(m.Coeffs) != len(wantKeys) {
		t.Errorf("fit produced %d keys, want %d", len(m.Coeffs), len(wantKeys))
	}
	if src := m.Coeffs["colstore-udf"].Source; src != "pipeline-lsq" {
		t.Errorf("colstore-udf should be solved from its two pipelines, got source %q", src)
	}
	if m.Coeffs["scidb-phi"] != (Coeff{
		DMNsPerUnit:     m.Coeffs["scidb"].DMNsPerUnit,
		KernelNsPerUnit: m.Coeffs["scidb"].KernelNsPerUnit,
		Source:          "alias:scidb",
	}) {
		t.Error("scidb-phi should alias scidb's rates")
	}
	if m.ParallelKernelScale <= 0 {
		t.Error("missing parallel kernel scale from BENCH_kernels.json")
	}
	// The serve bench makes hadoop's MapReduce simulation ~50-100x slower
	// than the fast engines; the fit must preserve that ordering.
	if m.Coeffs["hadoop"].DMNsPerUnit < 10*m.Coeffs["colstore-udf"].DMNsPerUnit {
		t.Error("hadoop should fit far slower than colstore-udf")
	}
}

func TestFitRejectsBadJSON(t *testing.T) {
	good := []byte(`{"results":[]}`)
	for i := 0; i < 3; i++ {
		in := [][]byte{good, good, good}
		in[i] = []byte("{")
		if _, err := Fit(in[0], in[1], in[2]); err == nil {
			t.Errorf("Fit accepted malformed input %d", i)
		}
	}
	// All-empty inputs still fit (an empty but valid model).
	m, err := Fit(good, good, good)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Coeffs) != 0 {
		t.Errorf("empty benches produced %d keys", len(m.Coeffs))
	}
}

func TestConfigKey(t *testing.T) {
	cases := []struct {
		c    Config
		want string
	}{
		{Config{System: "scidb"}, "scidb"},
		{Config{System: "scidb", Nodes: 1}, "scidb"},
		{Config{System: "scidb", Nodes: 4}, "scidb@4n"},
		{Config{System: "pbdr", Nodes: 2, Workers: 3}, "pbdr@2n/w3"},
		{Config{System: "vanilla-r", Workers: 2}, "vanilla-r/w2"},
	}
	for _, c := range cases {
		if got := c.c.Key(); got != c.want {
			t.Errorf("Key(%+v) = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestLookupFallbackChain(t *testing.T) {
	m := fitFromCommitted(t)

	// Exact key.
	if co, ok := m.Lookup(Config{System: "pbdr", Nodes: 2}); !ok || co != m.Coeffs["pbdr@2n"] {
		t.Error("exact key lookup failed")
	}
	// Worker-pinned variants share the base configuration's coefficients.
	if co, _ := m.Lookup(Config{System: "pbdr", Nodes: 2, Workers: 4}); co != m.Coeffs["pbdr@2n"] {
		t.Error("worker-pinned lookup should strip the worker suffix")
	}
	// Unfit node count: nearest fitted count for the same system.
	if co, _ := m.Lookup(Config{System: "pbdr", Nodes: 8}); co != m.Coeffs["pbdr@4n"] {
		t.Error("pbdr@8n should borrow pbdr@4n (nearest fitted count)")
	}
	// Cluster variant of a system fit only single-node: base system.
	if co, _ := m.Lookup(Config{System: "hadoop", Nodes: 4}); co != m.Coeffs["hadoop"] {
		t.Error("hadoop@4n should borrow single-node hadoop")
	}
	// scidb-phi cluster: the alias at any node count.
	if co, _ := m.Lookup(Config{System: "scidb-phi", Nodes: 4}); co != m.Coeffs["scidb-phi"] {
		t.Error("scidb-phi@4n should borrow the scidb-phi alias")
	}
	// Unknown system: the median coefficient, still usable.
	co, ok := m.Lookup(Config{System: "no-such-engine"})
	if !ok || co.DMNsPerUnit <= 0 || co.KernelNsPerUnit <= 0 {
		t.Errorf("unknown system should fall back to the median, got %+v ok=%v", co, ok)
	}
	// Empty model: the only not-ok case.
	var empty *Model
	if _, ok := empty.Lookup(Config{System: "scidb"}); ok {
		t.Error("nil model lookup should fail")
	}
	if _, ok := (&Model{}).Lookup(Config{System: "scidb"}); ok {
		t.Error("empty model lookup should fail")
	}
}

func compileQ(t *testing.T, q engine.QueryID) *plan.Plan {
	t.Helper()
	pl, err := plan.Compile(q, engine.DefaultParams())
	if err != nil {
		t.Fatalf("compile %v: %v", q, err)
	}
	return pl
}

func TestEstimateProperties(t *testing.T) {
	m := fitFromCommitted(t)
	d := FitDims
	cov := compileQ(t, engine.Q2Covariance)
	stats := compileQ(t, engine.Q5Statistics)

	for _, cfg := range []Config{{System: "colstore-udf"}, {System: "scidb", Nodes: 4}, {System: "hadoop"}} {
		ec, ok := m.Estimate(cov, cfg, d)
		if !ok || ec.TotalNs <= 0 {
			t.Fatalf("%s: no covariance estimate", cfg.Key())
		}
		if len(ec.PerOpNs) != len(cov.Nodes) {
			t.Fatalf("%s: per-op vector length %d, want %d", cfg.Key(), len(ec.PerOpNs), len(cov.Nodes))
		}
		var sum float64
		for _, ns := range ec.PerOpNs {
			sum += ns
		}
		if sum != ec.TotalNs {
			t.Errorf("%s: per-op costs do not sum to the total", cfg.Key())
		}
		es, _ := m.Estimate(stats, cfg, d)
		if es.TotalNs >= ec.TotalNs {
			t.Errorf("%s: statistics (%.0f ns) should be cheaper than covariance (%.0f ns)", cfg.Key(), es.TotalNs, ec.TotalNs)
		}
	}

	// Larger data → larger estimate.
	small, _ := m.Estimate(cov, Config{System: "scidb"}, d)
	large, _ := m.Estimate(cov, Config{System: "scidb"}, Dims{Patients: 2000, Genes: 1500, GOTerms: 400})
	if large.TotalNs <= small.TotalNs {
		t.Error("estimate should grow with dataset dimensions")
	}

	// Worker-pinned estimates apply the measured parallel kernel scale.
	base, _ := m.Estimate(cov, Config{System: "scidb"}, d)
	pinned, _ := m.Estimate(cov, Config{System: "scidb", Workers: 4}, d)
	if m.ParallelKernelScale > 1 && pinned.TotalNs <= base.TotalNs {
		t.Error("worker-pinned estimate should reflect the >1 oversubscription scale")
	}

	// The fit must preserve the bench's headline ordering on the serve mix:
	// hadoop is far costlier than every fast engine.
	fast, _ := m.Estimate(cov, Config{System: "colstore-udf"}, d)
	slow, _ := m.Estimate(cov, Config{System: "hadoop"}, d)
	if slow.TotalNs < 10*fast.TotalNs {
		t.Error("hadoop estimate should dominate colstore-udf")
	}
}

func TestUnitsFormulas(t *testing.T) {
	d := Dims{Patients: 100, Genes: 50, GOTerms: 10}
	cases := []struct {
		name string
		n    plan.Node
		want float64
	}{
		{"select-patients-2preds", plan.Node{Kind: plan.OpSelectPred, Table: plan.TablePatients, Preds: []plan.Pred{{}, {}}}, 200},
		{"select-genes-default-pred", plan.Node{Kind: plan.OpSelectPred, Table: plan.TableGenes}, 50},
		{"scan-patients", plan.Node{Kind: plan.OpScanTable, Table: plan.TablePatients}, 100},
		{"scan-genes", plan.Node{Kind: plan.OpScanTable, Table: plan.TableGenes}, 50},
		{"scan-go", plan.Node{Kind: plan.OpScanTable, Table: plan.TableGO}, 500},
		{"sample", plan.Node{Kind: plan.OpSamplePatients}, 1},
		{"pivot", plan.Node{Kind: plan.OpPivotMicro}, 5000},
		{"pivot-colmeans-step2", plan.Node{Kind: plan.OpPivotMicro, Agg: plan.AggColMeans, Step: 2}, 2500},
		{"regression", plan.Node{Kind: plan.OpKernelRegression}, 100*50 + 50*50},
		{"covariance", plan.Node{Kind: plan.OpKernelCovariance}, 100 * 50 * 50},
		{"svd-k3", plan.Node{Kind: plan.OpKernelSVD, K: 3}, 3 * 100 * 50},
		{"bicluster", plan.Node{Kind: plan.OpKernelBicluster, MaxBiclusters: 2}, 2 * 100 * 50},
		{"stats", plan.Node{Kind: plan.OpKernelStats}, 500},
		{"topk", plan.Node{Kind: plan.OpTopKByAbs}, 2500},
		{"emit", plan.Node{Kind: plan.OpEmit}, 0},
	}
	for _, c := range cases {
		if got := Units(&c.n, d); got != c.want {
			t.Errorf("%s: Units = %v, want %v", c.name, got, c.want)
		}
	}
	// Degenerate dims clamp to 1 instead of zeroing every estimate.
	if got := Units(&plan.Node{Kind: plan.OpPivotMicro}, Dims{}); got != 1 {
		t.Errorf("zero dims should clamp to 1 unit, got %v", got)
	}
}

func TestDefaultModelLoads(t *testing.T) {
	m := Default()
	if len(m.Coeffs) == 0 {
		t.Fatal("committed model is empty")
	}
	if m != Default() {
		t.Error("Default should return the same parsed model")
	}
	if _, err := Load(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineRefinement(t *testing.T) {
	m := fitFromCommitted(t)
	o := NewOnline(m, FitDims)
	cfg := Config{System: "colstore-udf"}
	pl := compileQ(t, engine.Q2Covariance)

	base, _ := o.Estimate(pl, cfg)
	off, _ := m.Estimate(pl, cfg, FitDims)
	if base.TotalNs != off.TotalNs {
		t.Fatal("unobserved online estimate should equal the offline estimate")
	}

	// Feed observations at 3x the predicted cost, split by predicted class
	// shares; the estimate must move toward 3x, monotonically.
	var dmNs, kernNs float64
	for i := range pl.Nodes {
		if opClass(pl.Nodes[i].Kind) == classKernel {
			kernNs += off.PerOpNs[i]
		} else {
			dmNs += off.PerOpNs[i]
		}
	}
	timing := engine.Timing{
		DataManagement: time.Duration(3 * dmNs),
		Analytics:      time.Duration(3 * kernNs),
	}
	prev := base.TotalNs
	for i := 0; i < 20; i++ {
		o.Observe(cfg, pl, timing)
		est, _ := o.Estimate(pl, cfg)
		if est.TotalNs < prev-1 {
			t.Fatalf("estimate moved away from the observations at step %d", i)
		}
		prev = est.TotalNs
	}
	if prev < 2.5*base.TotalNs || prev > 3.5*base.TotalNs {
		t.Errorf("after 20 observations of 3x cost, estimate is %.2fx the base", prev/base.TotalNs)
	}

	// Other configurations are untouched.
	other, _ := o.Estimate(pl, Config{System: "scidb"})
	otherOff, _ := m.Estimate(pl, Config{System: "scidb"}, FitDims)
	if other.TotalNs != otherOff.TotalNs {
		t.Error("observations for one configuration leaked into another")
	}

	// A learned ratio is inspectable.
	var kernelOp *plan.Node
	for i := range pl.Nodes {
		if opClass(pl.Nodes[i].Kind) == classKernel {
			kernelOp = &pl.Nodes[i]
			break
		}
	}
	if r, ok := o.Ratio(cfg, kernelOp.Kind, Units(kernelOp, FitDims)); !ok || r < 2.5 {
		t.Errorf("kernel ratio = %v ok=%v, want ~3", r, ok)
	}
	if _, ok := o.Ratio(Config{System: "scidb"}, kernelOp.Kind, Units(kernelOp, FitDims)); ok {
		t.Error("unobserved cell should report not-ok")
	}
}

func TestOnlineDriftDecaysFaster(t *testing.T) {
	m := fitFromCommitted(t)
	cfg := Config{System: "scidb"}
	pl := compileQ(t, engine.Q5Statistics)
	off, _ := m.Estimate(pl, cfg, FitDims)

	mkTiming := func(scale float64) engine.Timing {
		var dmNs, kernNs float64
		for i := range pl.Nodes {
			if opClass(pl.Nodes[i].Kind) == classKernel {
				kernNs += off.PerOpNs[i]
			} else {
				dmNs += off.PerOpNs[i]
			}
		}
		return engine.Timing{
			DataManagement: time.Duration(scale * dmNs),
			Analytics:      time.Duration(scale * kernNs),
		}
	}

	run := func(driftAlpha float64) float64 {
		o := NewOnline(m, FitDims)
		o.DriftAlpha = driftAlpha
		// Converge near 1x, then shift the regime to 10x: past the drift
		// threshold, so the faster alpha applies.
		for i := 0; i < 5; i++ {
			o.Observe(cfg, pl, mkTiming(1))
		}
		o.Observe(cfg, pl, mkTiming(10))
		est, _ := o.Estimate(pl, cfg)
		return est.TotalNs
	}

	slow := run(0.2) // drift alpha = steady alpha: no fast decay
	fast := run(0.5)
	if fast <= slow {
		t.Errorf("drift decay should converge faster: fast=%.0f slow=%.0f", fast, slow)
	}

	// Degenerate timings (all-zero observation with zero estimate classes)
	// must not update or panic.
	o := NewOnline(m, FitDims)
	o.Observe(Config{System: "scidb"}, pl, engine.Timing{})
	if est, _ := o.Estimate(pl, cfg); est.TotalNs <= 0 {
		t.Error("zero-timing observation broke the estimate")
	}
	if o.Base() != m || o.Dims() != FitDims {
		t.Error("accessors lost the wrapped model")
	}
}
