// Package cost is the calibrated per-operator cost model behind the serving
// fleet's router (DESIGN.md §16). The paper's contribution is a cross-engine
// comparison — the same genomics queries run on a row store, a column store,
// an array DBMS, R and MapReduce, and no single engine wins everywhere. This
// package operationalizes that comparison as an optimizer input: for a
// compiled plan (internal/plan) and a configuration key ("colstore-udf",
// "scidb@4n", …) it predicts the wall-clock cost of executing the plan there,
// so the router (internal/serve.Router) can send each request to the
// configuration predicted cheapest for it.
//
// The model is deliberately simple and fully deterministic:
//
//   - Each plan operator has a selectivity-free work-unit formula (Units):
//     structural functions of the dataset dimensions and the parameters baked
//     into the plan node — no table statistics, following the "statistics
//     unnecessary" greedy-ordering argument of the janus-datalog join work.
//     Selections are charged their full input table (an upper bound, because
//     without statistics the output cardinality is unknowable), kernels their
//     dense flop shapes.
//   - Each configuration carries two fitted coefficients: nanoseconds per
//     data-management unit and nanoseconds per kernel unit. They are fit
//     offline (Fit) from the committed BENCH_pipeline.json /
//     BENCH_kernels.json / BENCH_serve.json baselines — pure arithmetic over
//     the committed measurements, so the committed coefficients reproduce
//     bit-for-bit from the committed bench data (CI checks this).
//   - At serve time an Online layer (online.go) refines the offline estimate
//     per (configuration, operator, size-class) from the timings the executor
//     already records, EWMA-smoothed and decayed faster under drift.
//
// The absolute numbers matter less than the ranking: the router needs "which
// configuration is cheapest for THIS plan", and the offline fit seeds that
// ranking while the online layer corrects it from ground truth.
package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/genbase/genbase/internal/plan"
)

// Config identifies one routable configuration: a system, a cluster size and
// an analytics worker count — the three dimensions the serving fleet can pick
// between per request.
type Config struct {
	// System is the configuration name ("colstore-udf", "pbdr", …).
	System string
	// Nodes is the virtual-cluster size; 0 or 1 means the single-node engine.
	Nodes int
	// Workers is the pinned analytics worker count; 0 means the engine
	// default. Answers are bitwise identical at any worker count, so Workers
	// only moves cost, never bits.
	Workers int
}

// Key renders the canonical coefficient-table key: the system name, "@Nn"
// for cluster variants (matching the golden-answer key convention), and
// "/wW" when a worker count is pinned.
func (c Config) Key() string {
	k := c.System
	if c.Nodes > 1 {
		k = fmt.Sprintf("%s@%dn", c.System, c.Nodes)
	}
	if c.Workers > 0 {
		k = fmt.Sprintf("%s/w%d", k, c.Workers)
	}
	return k
}

// baseKey strips the worker suffix: fit data has no worker dimension, so
// worker-pinned variants share the base configuration's coefficients (the
// online layer keys by the full Key and so still refines them apart).
func (c Config) baseKey() string {
	w := c
	w.Workers = 0
	return w.Key()
}

// Dims is the loaded dataset shape the work-unit formulas scale with.
type Dims struct {
	Patients, Genes, GOTerms int
}

// opClass splits the operator vocabulary the way the coefficients are fit:
// data management (scans, selections, pivots, answer joins) versus kernels.
func opClass(k plan.OpKind) int {
	switch k {
	case plan.OpKernelRegression, plan.OpKernelCovariance, plan.OpKernelSVD,
		plan.OpKernelBicluster, plan.OpKernelStats:
		return classKernel
	}
	return classDM
}

const (
	classDM = iota
	classKernel
)

// Units is the selectivity-free work-unit formula: a structural estimate of
// one operator's work given the dataset dimensions and the parameters baked
// into the plan node, with no table statistics. Selections charge their full
// input table; pivots and kernels charge dense shapes over the full
// microarray (restricting selections shrink them in reality — but by how
// much is exactly the statistic we refuse to assume; the bound is the same
// for every configuration, so it cancels out of the ranking).
func Units(n *plan.Node, d Dims) float64 {
	P, G, T := float64(d.Patients), float64(d.Genes), float64(d.GOTerms)
	if P < 1 {
		P = 1
	}
	if G < 1 {
		G = 1
	}
	if T < 1 {
		T = 1
	}
	switch n.Kind {
	case plan.OpSelectPred:
		rows := G
		if n.Table == plan.TablePatients {
			rows = P
		}
		return rows * float64(max(len(n.Preds), 1))
	case plan.OpScanTable:
		switch n.Table {
		case plan.TablePatients:
			return P
		case plan.TableGO:
			return T * G // membership lists are per-term gene sets
		default:
			return G
		}
	case plan.OpSamplePatients:
		return 1
	case plan.OpPivotMicro:
		if n.Agg == plan.AggColMeans {
			step := float64(max(n.Step, 1))
			return P / step * G
		}
		return P * G
	case plan.OpKernelRegression:
		// X'X Gram plus the triangular solve.
		return P*G + G*G
	case plan.OpKernelCovariance:
		return P * G * G
	case plan.OpKernelSVD:
		return float64(max(n.K, 1)) * P * G
	case plan.OpKernelBicluster:
		return float64(max(n.MaxBiclusters, 1)) * P * G
	case plan.OpKernelStats:
		return T * G
	case plan.OpTopKByAbs:
		return G * G
	case plan.OpEmit:
		return 0
	}
	return 1
}

// Coeff is one configuration's fitted cost rates.
type Coeff struct {
	// DMNsPerUnit and KernelNsPerUnit are nanoseconds per work unit for the
	// two operator classes.
	DMNsPerUnit     float64 `json:"dm_ns_per_unit"`
	KernelNsPerUnit float64 `json:"kernel_ns_per_unit"`
	// Source records how the coefficient was fit ("pipeline+serve", "serve",
	// "default") — provenance for the committed file, unused at runtime.
	Source string `json:"source"`
}

// Model maps configuration keys to fitted coefficients. Zero value is
// unusable; build one with Fit or load the committed fit with Load.
type Model struct {
	Coeffs map[string]Coeff `json:"coeffs"`
	// ParallelKernelScale is the measured multi-worker kernel-rate
	// multiplier (median parallel/serial ns ratio from BENCH_kernels.json),
	// applied to the kernel rate when a configuration pins Workers > 1. On a
	// genuinely multi-core host it is < 1; the committed 1-CPU recording
	// shows the oversubscription penalty instead.
	ParallelKernelScale float64 `json:"parallel_kernel_scale,omitempty"`
	// Header documents the fit inputs for the committed file.
	Header string `json:"header,omitempty"`
}

// Estimate is a predicted plan execution cost.
type Estimate struct {
	// TotalNs is the predicted wall-clock nanoseconds.
	TotalNs float64
	// PerOpNs aligns with the plan's node order.
	PerOpNs []float64
}

// Lookup resolves the coefficients for a configuration, walking a
// deterministic fallback chain when the exact key was never fit: the base
// system at other node counts (nearest count, larger preferred on ties),
// then the single-node base system, then the median of every fitted
// configuration. ok is false only for an empty model.
func (m *Model) Lookup(c Config) (Coeff, bool) {
	if m == nil || len(m.Coeffs) == 0 {
		return Coeff{}, false
	}
	if co, ok := m.Coeffs[c.baseKey()]; ok {
		return co, true
	}
	// Same system, any fitted node count: nearest, larger on ties.
	prefix := c.System + "@"
	best := ""
	bestDist := math.MaxInt
	for k := range m.Coeffs {
		if k != c.System && !strings.HasPrefix(k, prefix) {
			continue
		}
		n := 1
		if i := strings.Index(k, "@"); i >= 0 {
			fmt.Sscanf(k[i+1:], "%dn", &n)
		}
		d := n - max(c.Nodes, 1)
		if d < 0 {
			d = -d
		}
		if d < bestDist || (d == bestDist && k > best) {
			best, bestDist = k, d
		}
	}
	if best != "" {
		return m.Coeffs[best], true
	}
	return m.median(), true
}

// median returns the per-class median coefficient over every fitted
// configuration — the fallback for systems with no bench data at all.
func (m *Model) median() Coeff {
	keys := make([]string, 0, len(m.Coeffs))
	for k := range m.Coeffs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dm := make([]float64, 0, len(keys))
	kn := make([]float64, 0, len(keys))
	for _, k := range keys {
		dm = append(dm, m.Coeffs[k].DMNsPerUnit)
		kn = append(kn, m.Coeffs[k].KernelNsPerUnit)
	}
	sort.Float64s(dm)
	sort.Float64s(kn)
	return Coeff{DMNsPerUnit: dm[len(dm)/2], KernelNsPerUnit: kn[len(kn)/2], Source: "median"}
}

// Estimate predicts the cost of executing a compiled plan on a
// configuration: each operator's work units times the configuration's fitted
// rate for the operator's class. The estimate is selectivity-free and
// deterministic — same plan, same config, same dims, same answer.
func (m *Model) Estimate(pl *plan.Plan, c Config, d Dims) (Estimate, bool) {
	co, ok := m.Lookup(c)
	if !ok {
		return Estimate{}, false
	}
	if c.Workers > 1 && m.ParallelKernelScale > 0 {
		co.KernelNsPerUnit *= m.ParallelKernelScale
	}
	est := Estimate{PerOpNs: make([]float64, len(pl.Nodes))}
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		rate := co.DMNsPerUnit
		if opClass(n.Kind) == classKernel {
			rate = co.KernelNsPerUnit
		}
		ns := Units(n, d) * rate
		est.PerOpNs[i] = ns
		est.TotalNs += ns
	}
	return est, true
}
