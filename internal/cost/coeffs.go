package cost

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"
)

// coeffs.json is the committed offline fit — regenerated with
// `go run ./cmd/genbase-bench -fit-cost` and diffed in CI against a fresh
// fit of the committed BENCH_*.json, so it can never drift from the bench
// baselines it claims to summarize.
//
//go:embed coeffs.json
var embeddedCoeffs []byte

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// Load parses the committed coefficient file into a fresh Model.
func Load() (*Model, error) {
	var m Model
	if err := json.Unmarshal(embeddedCoeffs, &m); err != nil {
		return nil, fmt.Errorf("parse embedded coeffs.json: %w", err)
	}
	return &m, nil
}

// Default returns the committed offline model, parsed once. It panics only
// if the committed file is unparseable — a build defect, not a runtime
// condition.
func Default() *Model {
	defaultOnce.Do(func() { defaultModel, defaultErr = Load() })
	if defaultErr != nil {
		panic(defaultErr)
	}
	return defaultModel
}

// MarshalJSONFile renders the model as the committed coeffs.json bytes:
// indented, key-sorted (encoding/json sorts map keys), trailing newline —
// byte-stable for the CI determinism diff.
func (m *Model) MarshalJSONFile() ([]byte, error) {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}
