package cost

import (
	"math"
	"sync"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/plan"
)

// Online wraps an offline-fitted Model with serve-path refinement. Every
// completed request carries the phase timings the executor already records
// (engine.Timing: data-management vs analytics nanoseconds), and the router
// feeds them back here. The observation updates an EWMA correction ratio —
// observed / offline-predicted — per (configuration, operator kind,
// size-class), and Estimate multiplies each operator's offline prediction by
// its learned ratio. The offline fit seeds the ranking; the online layer
// corrects it from ground truth without ever touching the committed
// coefficients.
//
// Drift handling: when a fresh observation disagrees with the smoothed ratio
// by more than DriftThreshold (relative), the update uses the faster
// DriftAlpha instead of Alpha, so a regime change (dataset swap, host
// contention) re-converges in a few observations instead of ~1/Alpha.
type Online struct {
	base *Model
	dims Dims

	// Alpha is the steady-state EWMA weight for a new observation;
	// DriftAlpha replaces it when the observation deviates from the current
	// mean by more than DriftThreshold (relative error).
	Alpha          float64
	DriftAlpha     float64
	DriftThreshold float64

	mu    sync.Mutex
	cells map[cellKey]*cell
}

// cellKey is the refinement granularity the ISSUE prescribes: physical
// implementation (configuration key), operator, size-class. Size-class is
// log2 of the operator's work units, so a cell generalizes across parameter
// jitter but not across order-of-magnitude shape changes.
type cellKey struct {
	config string
	op     plan.OpKind
	size   int
}

type cell struct {
	ratio float64 // EWMA of observed/predicted
	n     int64   // observation count (drift restarts do not reset it)
}

// NewOnline wraps base for serve-path refinement at the given dataset shape.
func NewOnline(base *Model, d Dims) *Online {
	return &Online{
		base:           base,
		dims:           d,
		Alpha:          0.2,
		DriftAlpha:     0.5,
		DriftThreshold: 1.0,
		cells:          map[cellKey]*cell{},
	}
}

// Base returns the wrapped offline model.
func (o *Online) Base() *Model { return o.base }

// Dims returns the dataset shape estimates are computed at.
func (o *Online) Dims() Dims { return o.dims }

func sizeClass(units float64) int {
	if units < 1 {
		return 0
	}
	return int(math.Log2(units))
}

// Observe feeds one completed request back into the model. The executor
// times phases, not operators, so each operator in the plan receives its
// class's observed/predicted ratio (transfer time rides with data
// management, where the reformatting work lives) at its own size-class —
// exactly the (impl, operator, size-class) cells Estimate reads back.
func (o *Online) Observe(c Config, pl *plan.Plan, t engine.Timing) {
	base, ok := o.base.Estimate(pl, c, o.dims)
	if !ok {
		return
	}
	var estDM, estKern float64
	for i := range pl.Nodes {
		if opClass(pl.Nodes[i].Kind) == classKernel {
			estKern += base.PerOpNs[i]
		} else {
			estDM += base.PerOpNs[i]
		}
	}
	obsDM := float64(t.DataManagement.Nanoseconds() + t.Transfer.Nanoseconds())
	obsKern := float64(t.Analytics.Nanoseconds())

	key := c.Key()
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		var r float64
		if opClass(n.Kind) == classKernel {
			if estKern <= 0 {
				continue
			}
			r = obsKern / estKern
		} else {
			if estDM <= 0 {
				continue
			}
			r = obsDM / estDM
		}
		o.updateCell(cellKey{config: key, op: n.Kind, size: sizeClass(Units(n, o.dims))}, r)
	}
}

// ObserveWall feeds one completed request's measured wall-clock time back
// into the model. The virtual-platform engines (the simulated clusters, the
// accelerator) report phase Timings in their simulation's accounting, not in
// elapsed host time — but the router serves in host time, so its ranking
// must learn from the wall. A request times as a whole, so the total
// observed/predicted ratio is applied to every operator's cell uniformly;
// the per-class split is Observe's job when phase timings are trustworthy.
func (o *Online) ObserveWall(c Config, pl *plan.Plan, wallNs float64) {
	base, ok := o.base.Estimate(pl, c, o.dims)
	if !ok || base.TotalNs <= 0 || wallNs <= 0 {
		return
	}
	r := wallNs / base.TotalNs
	key := c.Key()
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range pl.Nodes {
		n := &pl.Nodes[i]
		o.updateCell(cellKey{config: key, op: n.Kind, size: sizeClass(Units(n, o.dims))}, r)
	}
}

// updateCell applies one observation to a cell under the EWMA/drift policy.
// Callers hold o.mu.
func (o *Online) updateCell(ck cellKey, r float64) {
	cl, ok := o.cells[ck]
	if !ok {
		o.cells[ck] = &cell{ratio: r, n: 1}
		return
	}
	alpha := o.Alpha
	if cl.ratio > 0 && math.Abs(r-cl.ratio)/cl.ratio > o.DriftThreshold {
		alpha = o.DriftAlpha // decay the stale mean faster under drift
	}
	cl.ratio = (1-alpha)*cl.ratio + alpha*r
	cl.n++
}

// Estimate is the offline estimate with each operator's learned correction
// ratio applied. Operators with no observed cell pass through at ratio 1.
func (o *Online) Estimate(pl *plan.Plan, c Config) (Estimate, bool) {
	base, ok := o.base.Estimate(pl, c, o.dims)
	if !ok {
		return Estimate{}, false
	}
	key := c.Key()
	o.mu.Lock()
	defer o.mu.Unlock()
	est := Estimate{PerOpNs: make([]float64, len(pl.Nodes))}
	for i := range pl.Nodes {
		ns := base.PerOpNs[i]
		ck := cellKey{config: key, op: pl.Nodes[i].Kind, size: sizeClass(Units(&pl.Nodes[i], o.dims))}
		if cl, ok := o.cells[ck]; ok && cl.ratio > 0 {
			ns *= cl.ratio
		}
		est.PerOpNs[i] = ns
		est.TotalNs += ns
	}
	return est, true
}

// Ratio exposes one cell's learned correction for tests and stats dumps;
// ok is false when the cell has never been observed.
func (o *Online) Ratio(c Config, op plan.OpKind, units float64) (float64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cl, ok := o.cells[cellKey{config: c.Key(), op: op, size: sizeClass(units)}]
	if !ok {
		return 0, false
	}
	return cl.ratio, true
}
