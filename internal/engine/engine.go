// Package engine defines the contract every GenBase system-under-test
// implements: the five benchmark queries (paper §3.2), their parameters, the
// engine-agnostic answer types used for cross-engine validation, and the
// data-management vs analytics timing split the paper reports (Figures 2, 4).
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/genbase/genbase/internal/datagen"
)

// QueryID names a benchmark query.
type QueryID int

// The five GenBase queries, plus the scenarios added on top of the paper's
// workload. A scenario is planner-only: it compiles to the shared operator IR
// (internal/plan) and runs on every engine whose physical operators cover the
// plan, with zero per-engine query code.
const (
	Q1Regression QueryID = iota + 1
	Q2Covariance
	Q3Biclustering
	Q4SVD
	Q5Statistics
	// Q6CohortRegression is Q1 restricted to a disease cohort: regress drug
	// response on the selected genes' expression over only the patients with
	// Params.DiseaseID — a Q1×Q2 predicate combination no engine had a
	// hardcoded method for.
	Q6CohortRegression
)

func (q QueryID) String() string {
	switch q {
	case Q1Regression:
		return "regression"
	case Q2Covariance:
		return "covariance"
	case Q3Biclustering:
		return "biclustering"
	case Q4SVD:
		return "svd"
	case Q5Statistics:
		return "statistics"
	case Q6CohortRegression:
		return "cohort-regression"
	default:
		return fmt.Sprintf("query(%d)", int(q))
	}
}

// AllQueries lists the paper's five queries in paper order (the benchmark
// sweeps iterate these; added scenarios are in AllScenarios).
func AllQueries() []QueryID {
	return []QueryID{Q1Regression, Q2Covariance, Q3Biclustering, Q4SVD, Q5Statistics}
}

// AllScenarios lists every runnable query: the paper's five plus the
// planner-only additions.
func AllScenarios() []QueryID {
	return append(AllQueries(), Q6CohortRegression)
}

// Params carries the per-query predicates from §3.2. DefaultParams matches
// the paper's examples.
type Params struct {
	// Q1 and Q4: select genes with Function < FunctionThreshold.
	FunctionThreshold int64
	// Q2: select patients with DiseaseID.
	DiseaseID int64
	// Q2: keep the top fraction of gene pairs by |covariance|.
	CovarianceTopFrac float64
	// Q3: select patients with Gender and Age < MaxAge.
	Gender byte
	MaxAge int64
	// Q3: biclustering controls.
	MaxBiclusters int
	// Q4: number of singular values (the paper's 50, scaled to 10 by default).
	SVDK int
	// Q5: fraction of patients sampled (paper example 0.25%; scaled up to
	// 2.5% so the sample is non-empty at 1/20 data scale).
	SampleFrac float64
	// Seed drives the deterministic pieces (Lanczos start vector, bicluster
	// masking).
	Seed uint64
	// Q6: select genes with Function < CohortFunctionThreshold. Tighter than
	// Q1's threshold because the regression runs over a single disease
	// cohort — the design matrix must keep fewer gene columns than cohort
	// rows for the least-squares solve to stay determined.
	CohortFunctionThreshold int64
}

// DefaultParams returns the paper's example parameters adapted to our scale.
func DefaultParams() Params {
	return Params{
		FunctionThreshold: 250, // "for example, function < 250"
		DiseaseID:         5,   // "patients with some disease (e.g. cancer)"
		CovarianceTopFrac: 0.10,
		Gender:            'M', // "male patients less than 40 years old"
		MaxAge:            40,
		MaxBiclusters:     5,
		SVDK:              10,
		SampleFrac:        0.025,
		Seed:              1,
		// ~2.5% of the function-code range: a handful of genes, so the
		// cohort regression stays determined even on the small preset's
		// ~dozen-patient cohorts.
		CohortFunctionThreshold: 25,
	}
}

// ErrBadParams marks a query rejected at admission because its parameters
// are out of range. Before the plan layer, bad params flowed silently into
// the kernels (a SVDK of 0 produced an empty Lanczos run, a SampleFrac of 0
// quietly sampled every patient); now plan compilation and serve admission
// both reject them up front.
var ErrBadParams = errors.New("engine: invalid query parameters")

// Admission bounds: a request may be arbitrarily wrong but not arbitrarily
// expensive. The serving tier runs Validate at the door, so the knobs that
// scale kernel work directly (rather than through the data) carry generous
// upper limits — far above anything the benchmark uses (the paper's largest
// k is 50, its bicluster budget 5) yet small enough that no single request
// can pin a server. Fuzzed admission (FuzzParamsPlan) relies on these: any
// validated parameterization must execute without panicking or hanging.
const (
	// MaxSVDK bounds Q4's requested singular values (the kernel additionally
	// clamps k to the matrix dimensions).
	MaxSVDK = 4096
	// MaxBiclusterBudget bounds Q3's extraction loop, which re-runs the
	// Cheng–Church search once per requested bicluster.
	MaxBiclusterBudget = 1024
)

// Validate checks the parameters a query actually uses. Fields irrelevant to
// q are ignored — they do not affect the plan, the answer, or the plan
// fingerprint. It is called at plan-compile time and again at serve
// admission, so a bad request fails fast instead of inside a kernel.
func (p Params) Validate(q QueryID) error {
	switch q {
	case Q1Regression, Q6CohortRegression:
		// FunctionThreshold and DiseaseID are unconstrained predicates; an
		// empty selection is reported by the plan's row guards, not here.
		return nil
	case Q2Covariance:
		// Inverted comparisons so NaN (false on every ordered compare)
		// lands in the reject branch, not the accept branch.
		if !(p.CovarianceTopFrac > 0 && p.CovarianceTopFrac <= 1) {
			return fmt.Errorf("%w: CovarianceTopFrac %v outside (0,1]", ErrBadParams, p.CovarianceTopFrac)
		}
	case Q3Biclustering:
		if p.MaxBiclusters < 1 || p.MaxBiclusters > MaxBiclusterBudget {
			return fmt.Errorf("%w: MaxBiclusters %d outside [1,%d]", ErrBadParams, p.MaxBiclusters, MaxBiclusterBudget)
		}
	case Q4SVD:
		if p.SVDK <= 0 || p.SVDK > MaxSVDK {
			return fmt.Errorf("%w: SVDK %d outside [1,%d]", ErrBadParams, p.SVDK, MaxSVDK)
		}
	case Q5Statistics:
		if !(p.SampleFrac > 0 && p.SampleFrac < 1) {
			return fmt.Errorf("%w: SampleFrac %v outside (0,1)", ErrBadParams, p.SampleFrac)
		}
	default:
		return ErrUnsupported
	}
	return nil
}

// SamplePatientStep converts SampleFrac into the deterministic modulus used
// by every engine for Q5: patients with id % step == 0 are sampled. A shared
// rule keeps answers comparable across engines.
func (p Params) SamplePatientStep() int {
	if p.SampleFrac <= 0 || p.SampleFrac >= 1 {
		return 1
	}
	step := int(1/p.SampleFrac + 0.5)
	if step < 1 {
		step = 1
	}
	return step
}

// Timing is the paper's cost breakdown. Transfer covers copy/reformat
// between the DBMS and the external analytics package (the "glue" cost of
// the +R configurations) or host↔coprocessor movement; the harness folds it
// into data management when reproducing Figures 2 and 4.
type Timing struct {
	DataManagement time.Duration
	Analytics      time.Duration
	Transfer       time.Duration
}

// Total is end-to-end elapsed time.
func (t Timing) Total() time.Duration { return t.DataManagement + t.Analytics + t.Transfer }

// Add accumulates another timing.
func (t *Timing) Add(o Timing) {
	t.DataManagement += o.DataManagement
	t.Analytics += o.Analytics
	t.Transfer += o.Transfer
}

// Result is a completed query run.
type Result struct {
	Query  QueryID
	Timing Timing
	Answer any // one of the *Answer types below

	// Degraded reports that the run survived faults on the way to its answer
	// — transient retries, replica failovers, or hedged stragglers. The
	// answer is still bitwise identical to a fault-free run (it is a pure
	// function of the shard partition, DESIGN.md §14); only the virtual
	// timing carries the recovery cost. The serving tier counts degraded
	// completions separately from clean ones.
	Degraded bool
}

// Engine is a system under test. Load ingests the neutral dataset into the
// engine's own storage format (not timed as part of queries, matching the
// paper's separation of load from query time).
//
// Concurrency contract (DESIGN.md §11): Load and Close are single-goroutine
// and must not overlap Run. Once Load has returned, the engines accept
// concurrent Run calls: loaded state is read-only during queries, per-query
// scratch comes from the goroutine-safe linalg arena or query-local
// allocations, and the storage buffer pool arbitrates page access under its
// own lock. The multinode virtual-cluster engines joined the contract with
// the distributed plan layer (DESIGN.md §13): each Run executes on its own
// fresh virtual cluster, so the simulated clocks are query-local state.
// Answers are bitwise identical to a serial run. (Concurrent queries can
// time-share host cores and so perturb each other's measured — and therefore
// virtual — durations; answers are unaffected.) The one remaining exception
// is the multi-node Hadoop wrapper, whose MR scheduler keeps shared
// accounting across jobs: it is serial-only and must not be served.
//
// Ingest and snapshots (DESIGN.md §18): engines themselves stay immutable
// after Load — writes never reach a loaded engine. New rows land in a WAL
// store (internal/wal) beside the engine; a checkpoint folds them into an
// immutable snapshot dataset at the next epoch, a fresh engine is Loaded
// from that snapshot, and serve.Server.Swap atomically replaces the served
// generation. Queries pin an (engine, epoch) pair at admission and finish
// on it, so a displaced engine must stay open until its in-flight queries
// drain; its answers — and its result-cache entries, keyed by epoch — stay
// valid for the epoch they were computed at.
type Engine interface {
	Name() string
	Load(ds *datagen.Dataset) error
	Supports(q QueryID) bool
	Run(ctx context.Context, q QueryID, p Params) (*Result, error)
	Close() error
}

// Sentinel failures. The harness renders both as the paper's "infinite"
// results (horizontal cutoff lines in the charts).
var (
	// ErrOutOfMemory corresponds to "temporary space allocation failed".
	ErrOutOfMemory = errors.New("engine: memory budget exceeded")
	// ErrUnsupported marks a query the configuration cannot run (e.g.
	// biclustering on Hadoop or Postgres+Madlib).
	ErrUnsupported = errors.New("engine: query not supported by this configuration")
)

// StopWatch accumulates phase timings with explicit phase switches. Each
// query owns its own StopWatch (a local in the engine's query method); the
// mutex guards the few cross-goroutine touches the serve path allows — a
// harness reading Timing while a query is mid-phase — and costs nothing
// uncontended.
type StopWatch struct {
	mu     sync.Mutex
	timing Timing
	start  time.Time
	phase  int // 0 none, 1 dm, 2 analytics, 3 transfer
}

// StartDM begins (or switches to) the data-management phase.
func (s *StopWatch) StartDM() { s.switchTo(1) }

// StartAnalytics begins (or switches to) the analytics phase.
func (s *StopWatch) StartAnalytics() { s.switchTo(2) }

// StartTransfer begins (or switches to) the transfer/reformat phase.
func (s *StopWatch) StartTransfer() { s.switchTo(3) }

// Stop ends the current phase.
func (s *StopWatch) Stop() { s.switchTo(0) }

// Timing returns the accumulated phase durations, counting any in-flight
// phase up to now. It is a pure read: it neither banks the in-flight slice
// nor resets the phase start, so calling it twice (or concurrently with a
// running phase) can no longer double-count — the old implementation
// silently switched phases, a data race and a double-count trap once
// queries run concurrently.
func (s *StopWatch) Timing() Timing {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.timing
	if s.phase != 0 {
		d := time.Since(s.start)
		switch s.phase {
		case 1:
			t.DataManagement += d
		case 2:
			t.Analytics += d
		case 3:
			t.Transfer += d
		}
	}
	return t
}

// AddExternal folds in time measured elsewhere (e.g. the virtual cluster's
// simulated makespan).
func (s *StopWatch) AddExternal(t Timing) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timing.Add(t)
}

func (s *StopWatch) switchTo(phase int) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase != 0 {
		d := now.Sub(s.start)
		switch s.phase {
		case 1:
			s.timing.DataManagement += d
		case 2:
			s.timing.Analytics += d
		case 3:
			s.timing.Transfer += d
		}
	}
	s.phase = phase
	s.start = now
}

// CheckCtx returns the context error, if any. Engines call it inside long
// loops so the harness timeout (the paper's 2-hour cutoff) is honored.
func CheckCtx(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
