package engine

import (
	"errors"
	"math"
	"testing"
)

// Table-driven coverage of the per-query parameter admission rules. Each
// rule only applies to the queries that read the field — bad values in
// fields a query ignores must not block it.
func TestParamsValidate(t *testing.T) {
	base := DefaultParams()
	cases := []struct {
		name   string
		q      QueryID
		mutate func(*Params)
		wantOK bool
	}{
		{"defaults q1", Q1Regression, nil, true},
		{"defaults q2", Q2Covariance, nil, true},
		{"defaults q3", Q3Biclustering, nil, true},
		{"defaults q4", Q4SVD, nil, true},
		{"defaults q5", Q5Statistics, nil, true},
		{"defaults q6", Q6CohortRegression, nil, true},

		{"svdk zero", Q4SVD, func(p *Params) { p.SVDK = 0 }, false},
		{"svdk negative", Q4SVD, func(p *Params) { p.SVDK = -1 }, false},
		{"svdk one ok", Q4SVD, func(p *Params) { p.SVDK = 1 }, true},
		{"svdk at bound ok", Q4SVD, func(p *Params) { p.SVDK = MaxSVDK }, true},
		{"svdk above bound", Q4SVD, func(p *Params) { p.SVDK = MaxSVDK + 1 }, false},

		{"topfrac zero", Q2Covariance, func(p *Params) { p.CovarianceTopFrac = 0 }, false},
		{"topfrac negative", Q2Covariance, func(p *Params) { p.CovarianceTopFrac = -0.1 }, false},
		{"topfrac above one", Q2Covariance, func(p *Params) { p.CovarianceTopFrac = 1.01 }, false},
		{"topfrac one ok", Q2Covariance, func(p *Params) { p.CovarianceTopFrac = 1 }, true},

		{"maxbiclusters zero", Q3Biclustering, func(p *Params) { p.MaxBiclusters = 0 }, false},
		{"maxbiclusters negative", Q3Biclustering, func(p *Params) { p.MaxBiclusters = -2 }, false},
		{"maxbiclusters one ok", Q3Biclustering, func(p *Params) { p.MaxBiclusters = 1 }, true},
		{"maxbiclusters at bound ok", Q3Biclustering, func(p *Params) { p.MaxBiclusters = MaxBiclusterBudget }, true},
		{"maxbiclusters above bound", Q3Biclustering, func(p *Params) { p.MaxBiclusters = MaxBiclusterBudget + 1 }, false},

		{"topfrac NaN", Q2Covariance, func(p *Params) { p.CovarianceTopFrac = math.NaN() }, false},

		{"samplefrac zero", Q5Statistics, func(p *Params) { p.SampleFrac = 0 }, false},
		{"samplefrac NaN", Q5Statistics, func(p *Params) { p.SampleFrac = math.NaN() }, false},
		{"samplefrac negative", Q5Statistics, func(p *Params) { p.SampleFrac = -0.25 }, false},
		{"samplefrac one", Q5Statistics, func(p *Params) { p.SampleFrac = 1 }, false},
		{"samplefrac above one", Q5Statistics, func(p *Params) { p.SampleFrac = 2 }, false},
		{"samplefrac half ok", Q5Statistics, func(p *Params) { p.SampleFrac = 0.5 }, true},

		// Fields the query never reads do not block it.
		{"q1 ignores svdk", Q1Regression, func(p *Params) { p.SVDK = 0 }, true},
		{"q2 ignores samplefrac", Q2Covariance, func(p *Params) { p.SampleFrac = 7 }, true},
		{"q4 ignores maxbiclusters", Q4SVD, func(p *Params) { p.MaxBiclusters = 0 }, true},
		{"q6 ignores everything kernelish", Q6CohortRegression, func(p *Params) {
			p.SVDK, p.MaxBiclusters, p.SampleFrac, p.CovarianceTopFrac = 0, 0, 0, 0
		}, true},
	}
	for _, tc := range cases {
		p := base
		if tc.mutate != nil {
			tc.mutate(&p)
		}
		err := p.Validate(tc.q)
		if tc.wantOK && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.wantOK && !errors.Is(err, ErrBadParams) {
			t.Errorf("%s: want ErrBadParams, got %v", tc.name, err)
		}
	}
	if err := base.Validate(QueryID(42)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown query: want ErrUnsupported, got %v", err)
	}
}
