package engine

import (
	"context"

	"github.com/genbase/genbase/internal/linalg"
)

// PivotDense is the shared zero-copy pivot over a patient-major dense value
// column (vals[pid*nGenes+gid]): colstore and rengine both lay their
// microarray out this way at load time, and both route their pivots here
// when the zero-copy knob is on. Identity selections on both axes are
// served as a stride-aware view (no bytes move); anything else is a
// single-pass contiguous row copy / gene gather into pooled scratch. Cell
// values are identical to the engines' selection-vector and triple-scan
// pivots, so answers are bitwise unchanged; callers release the result with
// linalg.PutMatrix (a no-op for the view case).
func PivotDense(ctx context.Context, vals []float64, nPats, nGenes int, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	if isIdentitySel(patientIDs, nPats) && isIdentitySel(geneIDs, nGenes) {
		return linalg.DenseView(vals, nPats, nGenes), nil
	}
	nRows := nPats
	if patientIDs != nil {
		nRows = len(patientIDs)
	}
	nCols := nGenes
	if geneIDs != nil {
		nCols = len(geneIDs)
	}
	m := linalg.GetMatrix(nRows, nCols)
	for k := 0; k < nRows; k++ {
		if k%1024 == 0 {
			if err := CheckCtx(ctx); err != nil {
				linalg.PutMatrix(m)
				return nil, err
			}
		}
		pid := k
		if patientIDs != nil {
			pid = int(patientIDs[k])
		}
		src := vals[pid*nGenes : (pid+1)*nGenes]
		if geneIDs == nil {
			copy(m.Row(k), src)
			continue
		}
		dst := m.Row(k)
		for j, gid := range geneIDs {
			dst[j] = src[gid]
		}
	}
	return m, nil
}

// isIdentitySel reports whether an id selection keeps all n ids in their
// natural order (nil means "all"), i.e. a pivot over it is the identity
// restructuring and can be served as a view.
func isIdentitySel(ids []int64, n int) bool {
	if ids == nil {
		return true
	}
	if len(ids) != n {
		return false
	}
	for i, id := range ids {
		if id != int64(i) {
			return false
		}
	}
	return true
}
