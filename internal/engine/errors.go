package engine

import "errors"

// Fault taxonomy for the distributed execution path (DESIGN.md §14). Before
// this existed, every failure on the cluster path surfaced as an ad-hoc
// fmt.Errorf string, so callers could not tell a dead node from a malformed
// request. The serving tier keys distinct admission outcomes off these with
// errors.Is, and the fault-injection tests assert them by identity.
var (
	// ErrNodeFailed marks work addressed to a virtual node that has crashed
	// (fail-stop): the node executes nothing from its crash step onward. The
	// shard scheduler treats it as the trigger for replica failover.
	ErrNodeFailed = errors.New("engine: node failed")

	// ErrTransient marks a single failed execution attempt on an otherwise
	// healthy node (the lost-RPC / task-retry class of fault). The cluster
	// retries it in place with bounded virtual backoff; it escapes to callers
	// only when the retry budget is exhausted.
	ErrTransient = errors.New("engine: transient execution fault")

	// ErrReplicasExhausted is the typed partial-failure error the plan
	// executor surfaces when a shard's work cannot run anywhere: every node
	// holding a replica of the shard is dead. It wraps the per-replica
	// failures via errors.Join.
	ErrReplicasExhausted = errors.New("engine: all shard replicas exhausted")

	// ErrDeadlineExceeded marks a request that ran past its per-request
	// deadline. The serving tier maps context.DeadlineExceeded from an
	// expired request context onto it so clients see one typed outcome.
	ErrDeadlineExceeded = errors.New("engine: request deadline exceeded")

	// ErrOverload marks a request shed at admission — the queue was full or
	// the engine's circuit breaker was open. Shedding is the serving tier
	// degrading gracefully instead of collapsing; clients should back off and
	// retry.
	ErrOverload = errors.New("engine: server overloaded, request shed")
)
