package engine

import "sync/atomic"

// The compressed-scan ablation knob (DESIGN.md §15). When enabled — the
// default — rowstore, colstore, and arraydb evaluate structured predicates
// directly on compressed column pages (internal/colpage): dictionary-code
// equality, RLE run skipping, packed-word range tests. When disabled they
// fall back to decode-then-filter over materialized values. Answers are
// bitwise identical either way; only the scan path changes.
// genbase-bench -compress=false and BENCH_scan.json use the knob to keep
// the decode-then-filter baseline measurable, mirroring -zerocopy.

// compressOff is inverted storage so the zero value of the package means
// "enabled by default".
var compressOff atomic.Bool

// SetCompression toggles the compressed-scan path process-wide.
func SetCompression(on bool) { compressOff.Store(!on) }

// CompressionEnabled reports whether engines should push predicates down
// to the encoded column pages.
func CompressionEnabled() bool { return !compressOff.Load() }
