package engine

import "sync/atomic"

// The zero-copy ablation knob (DESIGN.md §10). When enabled — the default —
// engines hand the analytics kernels views over their own storage (or pooled
// single-copy gathers) instead of materializing row-by-row through the
// Value/Matrix copy chain. Answers are bitwise identical either way; only
// the data path changes. genbase-bench -zerocopy=false and the pipeline
// benchmarks use the knob to keep the historical copy path measurable.

// zeroCopyOff is inverted storage so the zero value of the package means
// "enabled by default".
var zeroCopyOff atomic.Bool

// SetZeroCopy toggles the zero-copy data path process-wide.
func SetZeroCopy(on bool) { zeroCopyOff.Store(!on) }

// ZeroCopyEnabled reports whether engines should take the zero-copy path.
func ZeroCopyEnabled() bool { return !zeroCopyOff.Load() }
