package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/linalg"
)

func TestQueryIDStrings(t *testing.T) {
	want := map[QueryID]string{
		Q1Regression:   "regression",
		Q2Covariance:   "covariance",
		Q3Biclustering: "biclustering",
		Q4SVD:          "svd",
		Q5Statistics:   "statistics",
	}
	for q, s := range want {
		if q.String() != s {
			t.Fatalf("%d → %s", q, q.String())
		}
	}
	if len(AllQueries()) != 5 {
		t.Fatal("five queries")
	}
}

func TestDefaultParamsMatchPaperExamples(t *testing.T) {
	p := DefaultParams()
	if p.FunctionThreshold != 250 {
		t.Fatal("paper example is function < 250")
	}
	if p.Gender != 'M' || p.MaxAge != 40 {
		t.Fatal("paper example is male patients under 40")
	}
	if p.CovarianceTopFrac != 0.10 {
		t.Fatal("paper example keeps the top 10%")
	}
}

func TestSamplePatientStep(t *testing.T) {
	p := Params{SampleFrac: 0.025}
	if p.SamplePatientStep() != 40 {
		t.Fatalf("step=%d", p.SamplePatientStep())
	}
	if (Params{SampleFrac: 0}).SamplePatientStep() != 1 {
		t.Fatal("degenerate fraction")
	}
	if (Params{SampleFrac: 2}).SamplePatientStep() != 1 {
		t.Fatal("fraction above 1")
	}
}

func TestStopWatchPhases(t *testing.T) {
	var sw StopWatch
	sw.StartDM()
	time.Sleep(2 * time.Millisecond)
	sw.StartAnalytics()
	time.Sleep(2 * time.Millisecond)
	sw.StartTransfer()
	time.Sleep(2 * time.Millisecond)
	sw.Stop()
	tm := sw.Timing()
	if tm.DataManagement <= 0 || tm.Analytics <= 0 || tm.Transfer <= 0 {
		t.Fatalf("phases not recorded: %+v", tm)
	}
	if tm.Total() < 6*time.Millisecond {
		t.Fatalf("total %v too small", tm.Total())
	}
}

func TestStopWatchAddExternal(t *testing.T) {
	var sw StopWatch
	sw.AddExternal(Timing{Analytics: time.Second, Transfer: time.Millisecond})
	tm := sw.Timing()
	if tm.Analytics != time.Second || tm.Transfer != time.Millisecond {
		t.Fatalf("external not added: %+v", tm)
	}
}

func TestTimingAddTotal(t *testing.T) {
	a := Timing{DataManagement: 1, Analytics: 2, Transfer: 3}
	a.Add(Timing{DataManagement: 10, Analytics: 20, Transfer: 30})
	if a.Total() != 66 {
		t.Fatalf("total=%v", a.Total())
	}
}

func TestCheckCtx(t *testing.T) {
	if CheckCtx(context.Background()) != nil {
		t.Fatal("live context should pass")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if CheckCtx(ctx) == nil {
		t.Fatal("cancelled context should fail")
	}
}

type sliceMeta []int64

func (s sliceMeta) FunctionOf(g int) int64 { return s[g] }

func TestSummarizeCovarianceTopFraction(t *testing.T) {
	// 4 genes → 6 pairs; crafted covariance values.
	cov := linalg.NewMatrix(4, 4)
	vals := map[[2]int]float64{
		{0, 1}: 0.9, {0, 2}: -0.8, {0, 3}: 0.1,
		{1, 2}: 0.2, {1, 3}: 0.3, {2, 3}: 0.05,
	}
	for k, v := range vals {
		cov.Set(k[0], k[1], v)
		cov.Set(k[1], k[0], v)
	}
	meta := sliceMeta{10, 20, 30, 40}
	ans := SummarizeCovariance(cov, 1.0/3.0, meta, 9)
	if ans.NumPairs != 2 {
		t.Fatalf("top third of 6 pairs = 2, got %d", ans.NumPairs)
	}
	if ans.TopPairs[0].GeneA != 0 || ans.TopPairs[0].GeneB != 1 {
		t.Fatalf("strongest pair wrong: %+v", ans.TopPairs[0])
	}
	if ans.TopPairs[1].Cov != -0.8 {
		t.Fatalf("second pair should be the negative one: %+v", ans.TopPairs[1])
	}
	if ans.TopPairs[0].FunctionA != 10 || ans.TopPairs[0].FunctionB != 20 {
		t.Fatal("metadata join wrong")
	}
	if ans.NumPatients != 9 {
		t.Fatal("patient count not carried")
	}
}

func TestSummarizeCovarianceKeepsAtLeastOne(t *testing.T) {
	cov := linalg.Identity(3)
	cov.Set(0, 1, 0.5)
	cov.Set(1, 0, 0.5)
	ans := SummarizeCovariance(cov, 1e-9, sliceMeta{1, 2, 3}, 2)
	if ans.NumPairs < 1 {
		t.Fatal("must keep at least one pair")
	}
}

func TestEnrichmentTestBasic(t *testing.T) {
	// Genes 8,9 have the highest means and form term 0; term 1 is random.
	means := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100, 101}
	members := [][]int32{{8, 9}, {0, 9}}
	ans, err := EnrichmentTest(context.Background(), means, members, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Terms) != 2 {
		t.Fatalf("terms=%d", len(ans.Terms))
	}
	if ans.Terms[0].Z <= 0 {
		t.Fatalf("enriched term should have positive z, got %v", ans.Terms[0].Z)
	}
	if math.Abs(ans.Terms[0].Z) <= math.Abs(ans.Terms[1].Z) {
		t.Fatal("planted term should outrank the mixed one")
	}
	top := ans.TopEnriched(1)
	if top[0].Term != 0 {
		t.Fatalf("top term %d", top[0].Term)
	}
}
