package engine

import (
	"context"
	"math"
	"slices"
	"sort"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/stats"
)

// RegressionAnswer is Q1's output: a fitted drug-response model.
type RegressionAnswer struct {
	// Coefficients[0] is the intercept; Coefficients[i+1] pairs with
	// SelectedGenes[i].
	Coefficients  []float64
	RSquared      float64
	SelectedGenes []int
	NumPatients   int
}

// GenePair is one high-covariance gene pair joined with gene metadata (Q2
// step 4).
type GenePair struct {
	GeneA, GeneB         int
	Cov                  float64
	FunctionA, FunctionB int64
}

// CovarianceAnswer is Q2's output.
type CovarianceAnswer struct {
	NumPatients int
	Threshold   float64
	NumPairs    int
	// TopPairs holds the 20 largest-|cov| pairs for validation; the full set
	// is summarized by NumPairs and AbsCovSum.
	TopPairs  []GenePair
	AbsCovSum float64
}

// BiclusterBlock is one discovered bicluster mapped back to entity ids.
type BiclusterBlock struct {
	PatientIDs []int
	GeneIDs    []int
	MSR        float64
}

// BiclusterAnswer is Q3's output.
type BiclusterAnswer struct {
	NumPatients int // patients surviving the metadata filter
	Blocks      []BiclusterBlock
}

// SVDAnswer is Q4's output.
type SVDAnswer struct {
	SelectedGenes  int
	SingularValues []float64
}

// TermStat is one GO term's enrichment result (Q5).
type TermStat struct {
	Term int
	Z    float64
	P    float64
}

// StatsAnswer is Q5's output. Terms are ordered by term id.
type StatsAnswer struct {
	SampledPatients int
	Terms           []TermStat
}

// TopEnriched returns the n most significant terms (largest |z|).
func (a *StatsAnswer) TopEnriched(n int) []TermStat {
	out := make([]TermStat, len(a.Terms))
	copy(out, a.Terms)
	sort.Slice(out, func(i, j int) bool { return math.Abs(out[i].Z) > math.Abs(out[j].Z) })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// BiclusterAnswerFromBlocks maps matrix-local bicluster indices back to
// patient ids (rows) and gene ids (columns are global ids already, since Q3
// keeps all genes). Shared by every engine that materializes the same
// filtered matrix, so Q3 answers are directly comparable.
func BiclusterAnswerFromBlocks(blocks []bicluster.Bicluster, patientIDs []int64) *BiclusterAnswer {
	ans := &BiclusterAnswer{NumPatients: len(patientIDs)}
	for _, b := range blocks {
		blk := BiclusterBlock{MSR: b.MSR}
		for _, r := range b.Rows {
			blk.PatientIDs = append(blk.PatientIDs, int(patientIDs[r]))
		}
		blk.GeneIDs = append(blk.GeneIDs, b.Cols...)
		ans.Blocks = append(ans.Blocks, blk)
	}
	return ans
}

// EnrichmentTest performs Q5 steps 3–4 as the paper specifies them: "for
// each go term g, separate the genes based on whether they belong to the GO
// term or not", then "perform the Wilcoxon test". members[t] lists the gene
// indices belonging to term t — each engine builds it through its own join
// machinery (the data-management half); this routine is the shared analytics
// half.
//
// The test deliberately re-ranks the combined population per term, exactly
// as R's wilcox.test (and the paper's per-system implementations) do. This
// O(terms × genes·log genes) cost is what makes the statistics task spend
// "almost all of the time" in analytics at scale; a shared-ranking shortcut
// would produce identical statistics at a small fraction of the cost, but
// would misrepresent the workload the benchmark measures.
func EnrichmentTest(ctx context.Context, means []float64, members [][]int32, sampled int) (*StatsAnswer, error) {
	ans := &StatsAnswer{SampledPatients: sampled}
	inSet := make([]bool, len(means))
	in := make([]float64, 0, len(means))
	out := make([]float64, 0, len(means))
	for t, genes := range members {
		if t%16 == 0 {
			if err := CheckCtx(ctx); err != nil {
				return nil, err
			}
		}
		in, out = in[:0], out[:0]
		for _, j := range genes {
			inSet[j] = true
		}
		for j, v := range means {
			if inSet[j] {
				in = append(in, v)
			} else {
				out = append(out, v)
			}
		}
		for _, j := range genes {
			inSet[j] = false
		}
		res, err := stats.WilcoxonRankSum(in, out)
		if err != nil {
			return nil, err
		}
		ans.Terms = append(ans.Terms, TermStat{Term: t, Z: res.Z, P: res.P})
	}
	return ans, nil
}

// GeneMeta is the projection of gene metadata each engine needs to assemble
// Q2's final join.
type GeneMeta interface {
	FunctionOf(gene int) int64
}

// SummarizeCovariance applies Q2 steps 3–4 given a computed covariance
// matrix: it finds the |cov| threshold keeping the top fraction of distinct
// off-diagonal pairs, and joins the surviving pairs with gene metadata. The
// assembly is shared so every engine's answer is directly comparable; the
// expensive parts (computing cov, the join implementation for the metadata
// lookup) remain engine-specific.
func SummarizeCovariance(cov *linalg.Matrix, topFrac float64, meta GeneMeta, numPatients int) *CovarianceAnswer {
	n := cov.Rows
	total := n * (n - 1) / 2
	// The |cov| ranking buffer is pooled scratch (it is O(genes²)) and the
	// sorts are allocation-free generic sorts, so the shared answer assembly
	// adds almost nothing to a query's allocation count.
	abs := linalg.GetSlice(total)
	k := 0
	for i := 0; i < n; i++ {
		row := cov.Row(i)
		for j := i + 1; j < n; j++ {
			abs[k] = math.Abs(row[j])
			k++
		}
	}
	slices.Sort(abs)
	keep := int(float64(total) * topFrac)
	if keep < 1 {
		keep = 1
	}
	if keep > total {
		keep = total
	}
	threshold := abs[total-keep]
	linalg.PutSlice(abs)

	ans := &CovarianceAnswer{NumPatients: numPatients, Threshold: threshold}
	type scored struct {
		i, j int
		c    float64
	}
	pruneLess := func(x, y scored) int {
		if d := math.Abs(y.c) - math.Abs(x.c); d != 0 {
			if d > 0 {
				return 1
			}
			return -1
		}
		return 0
	}
	top := make([]scored, 0, 4097)
	for i := 0; i < n; i++ {
		row := cov.Row(i)
		for j := i + 1; j < n; j++ {
			a := math.Abs(row[j])
			if a < threshold {
				continue
			}
			ans.NumPairs++
			ans.AbsCovSum += a
			top = append(top, scored{i, j, row[j]})
			if len(top) > 4096 {
				slices.SortFunc(top, pruneLess)
				top = top[:64]
			}
		}
	}
	slices.SortFunc(top, func(x, y scored) int {
		ax, ay := math.Abs(x.c), math.Abs(y.c)
		if ax != ay {
			if ax > ay {
				return -1
			}
			return 1
		}
		if x.i != y.i {
			return x.i - y.i
		}
		return x.j - y.j
	})
	if len(top) > 20 {
		top = top[:20]
	}
	ans.TopPairs = make([]GenePair, 0, len(top))
	for _, s := range top {
		ans.TopPairs = append(ans.TopPairs, GenePair{
			GeneA: s.i, GeneB: s.j, Cov: s.c,
			FunctionA: meta.FunctionOf(s.i), FunctionB: meta.FunctionOf(s.j),
		})
	}
	return ans
}

// FitLeastSquares is the shared host regression kernel body: augment x with
// an intercept column, solve by QR, and release both matrices to the arena.
// Every engine whose regression reduces to a native least-squares solve
// (R's lm, Madlib's C++ UDF, the column/array stores' in-process kernels)
// funnels through here, so the numerical idiom cannot drift apart across
// engines — the divergence risk the plan layer exists to remove. x is
// consumed.
func FitLeastSquares(x *linalg.Matrix, y []float64) ([]float64, float64, error) {
	xi := linalg.AddInterceptColumn(x)
	linalg.PutMatrix(x)
	fit, err := linalg.LeastSquares(xi, y)
	linalg.PutMatrix(xi)
	if err != nil {
		return nil, 0, err
	}
	return fit.Coefficients, fit.RSquared, nil
}

// TopKSingularValues is the shared host SVD kernel body (Lanczos with full
// reorthogonalization over AᵀA, identical options everywhere). a is
// consumed.
func TopKSingularValues(a *linalg.Matrix, k int, seed uint64, workers int) ([]float64, error) {
	svd, err := linalg.TopKSVD(a, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed, Workers: workers})
	linalg.PutMatrix(a)
	if err != nil {
		return nil, err
	}
	return svd.SingularValues, nil
}

// CovarianceHost is the shared host covariance kernel body. x is consumed.
// (The array store's offload configuration wraps the same kernel in its
// device model and keeps release explicit around the offload error paths.)
func CovarianceHost(x *linalg.Matrix, workers int) *linalg.Matrix {
	cov := linalg.CovarianceP(x, workers)
	linalg.PutMatrix(x)
	return cov
}
