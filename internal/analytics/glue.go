// Package analytics implements the "glue" data paths between a DBMS and an
// external analytics runtime. The paper's configurations 3–5 differ mainly
// in this layer: "Postgres + R" and "column store + R" export query results
// through a text COPY stream that R re-parses (expensive, O(N) with a large
// constant), while "column store + UDFs" passes data to in-process UDFs with
// a binary copy (cheap). DESIGN.md §2.3 documents the one deliberate
// exception: the biclustering UDF crosses the boundary through the text path
// once per extracted bicluster, reproducing the interface problem the paper
// observed ("there seem to be some issues with this interface ... such as
// the biclustering query").
package analytics

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"strconv"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// Glue moves data between the DBMS process and the analytics runtime,
// returning a copy the analytics side owns. Implementations differ in cost,
// not semantics: values round-trip exactly.
type Glue interface {
	Name() string
	TransferMatrix(ctx context.Context, m *linalg.Matrix) (*linalg.Matrix, error)
	TransferVector(ctx context.Context, v []float64) ([]float64, error)
}

// TextGlue serializes through a COPY-style tab-separated text stream and
// parses it back — the export/reformat path of the "+ R" configurations.
type TextGlue struct{}

// Name implements Glue.
func (TextGlue) Name() string { return "text-copy" }

// TransferMatrix implements Glue: serialize every cell to text, then parse.
func (TextGlue) TransferMatrix(ctx context.Context, m *linalg.Matrix) (*linalg.Matrix, error) {
	var buf bytes.Buffer
	buf.Grow(m.Rows * m.Cols * 8)
	w := bufio.NewWriterSize(&buf, 1<<20)
	var scratch []byte
	for i := 0; i < m.Rows; i++ {
		if i%256 == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				return nil, err
			}
		}
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				w.WriteByte('\t')
			}
			scratch = strconv.AppendFloat(scratch[:0], v, 'g', -1, 64)
			w.Write(scratch)
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	// "R side": parse the stream back into a fresh matrix.
	out := linalg.NewMatrix(m.Rows, m.Cols)
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	i := 0
	for sc.Scan() {
		if i >= m.Rows {
			return nil, fmt.Errorf("analytics: too many rows in export stream")
		}
		if i%256 == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				return nil, err
			}
		}
		line := sc.Bytes()
		row := out.Row(i)
		j, start := 0, 0
		for k := 0; k <= len(line); k++ {
			if k == len(line) || line[k] == '\t' {
				if j >= m.Cols {
					return nil, fmt.Errorf("analytics: row %d has too many fields", i)
				}
				v, err := strconv.ParseFloat(string(line[start:k]), 64)
				if err != nil {
					return nil, fmt.Errorf("analytics: parse row %d col %d: %w", i, j, err)
				}
				row[j] = v
				j++
				start = k + 1
			}
		}
		if j != m.Cols {
			return nil, fmt.Errorf("analytics: row %d has %d fields, want %d", i, j, m.Cols)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if i != m.Rows {
		return nil, fmt.Errorf("analytics: got %d rows, want %d", i, m.Rows)
	}
	return out, nil
}

// TransferVector implements Glue.
func (g TextGlue) TransferVector(ctx context.Context, v []float64) ([]float64, error) {
	out, err := g.TransferMatrix(ctx, linalg.VecView(v))
	if err != nil {
		return nil, err
	}
	return out.Data, nil
}

// ZeroCopyGlue is the zero-copy UDF boundary: the analytics runtime receives
// the DBMS's matrix itself (a view over storage or a pooled gather), paying
// no transfer at all. Safe because the kernels never mutate their operands
// (view.go's aliasing contract); the engines select it only on the
// in-process UDF path when the zero-copy knob is on.
type ZeroCopyGlue struct{}

// Name implements Glue.
func (ZeroCopyGlue) Name() string { return "zero-copy" }

// TransferMatrix implements Glue: a hand-off, not a copy.
func (ZeroCopyGlue) TransferMatrix(ctx context.Context, m *linalg.Matrix) (*linalg.Matrix, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// TransferVector implements Glue.
func (ZeroCopyGlue) TransferVector(ctx context.Context, v []float64) ([]float64, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	return v, nil
}

// BinaryGlue is the in-process UDF boundary: a flat binary copy.
type BinaryGlue struct{}

// Name implements Glue.
func (BinaryGlue) Name() string { return "udf-binary" }

// TransferMatrix implements Glue.
func (BinaryGlue) TransferMatrix(ctx context.Context, m *linalg.Matrix) (*linalg.Matrix, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	return m.Clone(), nil
}

// TransferVector implements Glue.
func (BinaryGlue) TransferVector(ctx context.Context, v []float64) ([]float64, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out, nil
}

// TransferMatrixTimed ships x across the glue boundary under the transfer
// phase, releasing x back to the arena when the glue produced a fresh
// matrix. This is the kernel-side idiom every "+R"/UDF physical operator
// opens with; callers switch the watch to analytics themselves once their
// remaining operands have crossed. x is consumed on every path — on a
// transfer failure (e.g. cancellation mid-COPY) it is released to the
// arena, upholding the plan executor's "kernels own their matrix inputs"
// contract so aborted queries don't bleed pooled matrices to the GC.
func TransferMatrixTimed(ctx context.Context, g Glue, sw *engine.StopWatch, x *linalg.Matrix) (*linalg.Matrix, error) {
	sw.StartTransfer()
	out, err := g.TransferMatrix(ctx, x)
	if err != nil {
		linalg.PutMatrix(x)
		return nil, err
	}
	if out != x {
		linalg.PutMatrix(x)
	}
	return out, nil
}
