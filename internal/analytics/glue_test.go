package analytics

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/genbase/genbase/internal/linalg"
)

func TestTextGlueRoundTripExact(t *testing.T) {
	// strconv shortest formatting round-trips float64 exactly, so the text
	// export path must be lossless — required for cross-engine answer
	// equality.
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = float64(i) * 1.25
			}
		}
		if len(vals) == 0 {
			vals = []float64{0}
		}
		cols := len(vals)
		m := &linalg.Matrix{Rows: 1, Cols: cols, Stride: cols, Data: vals}
		out, err := TextGlue{}.TransferMatrix(context.Background(), m)
		if err != nil {
			return false
		}
		for i := range vals {
			if out.Data[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTextGlueMultiRow(t *testing.T) {
	m := linalg.NewMatrix(5, 3)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.1
	}
	out, err := TextGlue{}.TransferMatrix(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxAbsDiff(m, out) != 0 {
		t.Fatal("round trip corrupted")
	}
	// Must be a copy, not an alias.
	out.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("glue must copy")
	}
}

func TestTextGlueVector(t *testing.T) {
	v := []float64{1.5, -2.25, 1e-300}
	out, err := TextGlue{}.TransferVector(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if out[i] != v[i] {
			t.Fatalf("vector round trip: %v vs %v", out[i], v[i])
		}
	}
}

func TestTextGlueCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := linalg.NewMatrix(300, 10)
	if _, err := (TextGlue{}).TransferMatrix(ctx, m); err == nil {
		t.Fatal("expected cancellation")
	}
}

func TestBinaryGlueCopies(t *testing.T) {
	m := linalg.NewMatrix(3, 3)
	m.Set(1, 1, 7)
	out, err := BinaryGlue{}.TransferMatrix(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(1, 1) != 7 {
		t.Fatal("copy wrong")
	}
	out.Set(1, 1, 8)
	if m.At(1, 1) != 7 {
		t.Fatal("binary glue must copy")
	}
	v, err := BinaryGlue{}.TransferVector(context.Background(), []float64{1, 2})
	if err != nil || v[1] != 2 {
		t.Fatal("vector copy wrong")
	}
}

func TestGlueNames(t *testing.T) {
	if (TextGlue{}).Name() != "text-copy" || (BinaryGlue{}).Name() != "udf-binary" {
		t.Fatal("names")
	}
}

// The whole point of the two glues: text export costs more than binary.
func TestTextSlowerThanBinary(t *testing.T) {
	m := linalg.NewMatrix(400, 400)
	for i := range m.Data {
		m.Data[i] = float64(i) * 1.000000001
	}
	ctx := context.Background()
	timeIt := func(g Glue) float64 {
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			start := nowSeconds()
			if _, err := g.TransferMatrix(ctx, m); err != nil {
				t.Fatal(err)
			}
			if d := nowSeconds() - start; d < best {
				best = d
			}
		}
		return best
	}
	text := timeIt(TextGlue{})
	bin := timeIt(BinaryGlue{})
	if text <= bin {
		t.Fatalf("text (%v) should cost more than binary (%v)", text, bin)
	}
}

func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
