package core

import (
	"fmt"
	"strings"
)

// Cell is one chart data point.
type Cell struct {
	Seconds  float64
	Infinite bool // cutoff or memory failure (the paper's horizontal lines)
	Missing  bool // system cannot run this query / not measured
}

func (c Cell) String() string {
	switch {
	case c.Missing:
		return "-"
	case c.Infinite:
		return "INF"
	default:
		return fmt.Sprintf("%.3f", c.Seconds)
	}
}

// Table is a rendered experiment: one paper figure panel or table.
type Table struct {
	Title     string
	RowHeader string
	RowLabels []string
	ColLabels []string
	Cells     [][]Cell
}

// NewTable allocates an all-Missing table.
func NewTable(title, rowHeader string, rows, cols []string) *Table {
	t := &Table{Title: title, RowHeader: rowHeader, RowLabels: rows, ColLabels: cols}
	t.Cells = make([][]Cell, len(rows))
	for i := range t.Cells {
		t.Cells[i] = make([]Cell, len(cols))
		for j := range t.Cells[i] {
			t.Cells[i][j] = Cell{Missing: true}
		}
	}
	return t
}

// Set assigns a cell by labels (panics on unknown labels — experiment
// definitions are static).
func (t *Table) Set(row, col string, c Cell) {
	i := indexOfLabel(t.RowLabels, row)
	j := indexOfLabel(t.ColLabels, col)
	t.Cells[i][j] = c
}

// Get fetches a cell by labels.
func (t *Table) Get(row, col string) Cell {
	return t.Cells[indexOfLabel(t.RowLabels, row)][indexOfLabel(t.ColLabels, col)]
}

func indexOfLabel(labels []string, l string) int {
	for i, v := range labels {
		if v == l {
			return i
		}
	}
	panic(fmt.Sprintf("core: unknown label %q in %v", l, labels))
}

// Render formats the table as aligned text, the harness's chart substitute.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	widths := make([]int, len(t.ColLabels)+1)
	widths[0] = len(t.RowHeader)
	for _, r := range t.RowLabels {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	for j, c := range t.ColLabels {
		widths[j+1] = len(c)
		for i := range t.RowLabels {
			if n := len(t.Cells[i][j].String()); n > widths[j+1] {
				widths[j+1] = n
			}
		}
	}
	writeRow := func(cells []string) {
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[j], c)
		}
		b.WriteByte('\n')
	}
	header := append([]string{t.RowHeader}, t.ColLabels...)
	writeRow(header)
	for i, r := range t.RowLabels {
		row := make([]string, 0, len(t.ColLabels)+1)
		row = append(row, r)
		for j := range t.ColLabels {
			row = append(row, t.Cells[i][j].String())
		}
		writeRow(row)
	}
	return b.String()
}

func cellFromOutcome(o Outcome, seconds float64) Cell {
	switch {
	case o.Unsupported:
		return Cell{Missing: true}
	case o.Infinite:
		return Cell{Infinite: true}
	case o.Err != nil:
		return Cell{Missing: true}
	default:
		return Cell{Seconds: seconds}
	}
}
