package core

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/datagen"
)

func extSuite() *Suite {
	return &Suite{Scale: 0.06, Seed: 7, Timeout: 30 * time.Second} // tiny dims
}

func TestWeakScalingTables(t *testing.T) {
	s := extSuite()
	tables, err := s.RunWeakScaling(context.Background(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("expected 2 tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		for _, sys := range WeakScalingSystems() {
			for _, col := range tbl.ColLabels {
				c := tbl.Get(sys, col)
				if c.Missing || c.Infinite {
					t.Fatalf("%s: %s/%s missing", tbl.Title, sys, col)
				}
				if c.Seconds <= 0 {
					t.Fatalf("%s: %s/%s has no time", tbl.Title, sys, col)
				}
			}
		}
	}
}

func TestLargeClusterTables(t *testing.T) {
	s := extSuite()
	tables, err := s.RunLargeCluster(context.Background(), []int{1, 8, 48})
	if err != nil {
		t.Fatal(err)
	}
	reg := tables[0]
	for _, sys := range WeakScalingSystems() {
		for _, col := range reg.ColLabels {
			if reg.Get(sys, col).Missing {
				t.Fatalf("%s/%s missing", sys, col)
			}
		}
	}
	// §6.1's prediction: at 48 nodes on a small fixed dataset, communication
	// dominates — 48 nodes must NOT be dramatically faster than 8.
	for _, sys := range WeakScalingSystems() {
		t8 := reg.Get(sys, "8 node(s)").Seconds
		t48 := reg.Get(sys, "48 node(s)").Seconds
		if t48 < t8/6 {
			t.Fatalf("%s: 48-node speedup vs 8 nodes is implausibly ideal (%v vs %v)", sys, t8, t48)
		}
	}
}

func TestApproxSVDExtension(t *testing.T) {
	s := extSuite()
	tbl, agreement, err := s.RunApproxSVD(context.Background(), []datagen.Size{datagen.Small, datagen.Medium})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tbl.ColLabels {
		exact := tbl.Get("lanczos-exact", col)
		approx := tbl.Get("randomized-approx", col)
		if exact.Missing || approx.Missing {
			t.Fatalf("missing cells in %s", col)
		}
	}
	for _, a := range agreement {
		if math.IsNaN(a) {
			t.Fatal("agreement not computed")
		}
		if a > 0.05 {
			t.Fatalf("approximate SVD disagrees by %v", a)
		}
	}
}
