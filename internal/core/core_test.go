package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
)

func tinySuite() *Suite {
	return &Suite{
		Sizes:   []datagen.Size{datagen.Small},
		Scale:   0.25, // ~62×62
		Seed:    7,
		Timeout: 30 * time.Second,
		Nodes:   []int{1, 2},
	}
}

func TestConfigsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Configs() {
		names[c.Name] = true
	}
	for _, want := range []string{"vanilla-r", "postgres-madlib", "postgres-r", "colstore-r",
		"colstore-udf", "scidb", "hadoop", "pbdr", "colstore-pbdr", "scidb-phi"} {
		if !names[want] {
			t.Fatalf("missing configuration %s", want)
		}
	}
	if len(SingleNodeConfigs()) != 7 {
		t.Fatalf("paper has 7 single-node configurations, got %d", len(SingleNodeConfigs()))
	}
	if len(MultiNodeConfigs()) != 5 {
		t.Fatalf("paper has 5 multi-node systems, got %d", len(MultiNodeConfigs()))
	}
}

func TestConfigByName(t *testing.T) {
	if _, err := ConfigByName("scidb"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigByName("oracle"); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestRunSystemAllQueries(t *testing.T) {
	s := tinySuite()
	ds, err := s.Dataset(datagen.Small)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ConfigByName("scidb")
	outs, err := Runner{Timeout: 30 * time.Second}.RunSystem(context.Background(), cfg, ds, 1, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 5 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for _, o := range outs {
		if !o.Completed() {
			t.Fatalf("%v did not complete: %+v", o.Query, o)
		}
		if o.Timing.Total() <= 0 {
			t.Fatalf("%v has no timing", o.Query)
		}
	}
}

func TestRunnerClassifiesTimeout(t *testing.T) {
	s := tinySuite()
	ds, err := s.Dataset(datagen.Small)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ConfigByName("postgres-madlib") // simulated-SQL SVD is slowest
	outs, err := Runner{Timeout: time.Millisecond}.RunSystem(context.Background(), cfg, ds, 1, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sawInfinite := false
	for _, o := range outs {
		if o.Infinite {
			sawInfinite = true
		}
	}
	if !sawInfinite {
		t.Fatal("1ms cutoff should mark queries infinite")
	}
}

func TestRunnerClassifiesUnsupported(t *testing.T) {
	s := tinySuite()
	ds, _ := s.Dataset(datagen.Small)
	cfg, _ := ConfigByName("hadoop")
	outs, err := Runner{Timeout: 30 * time.Second}.RunSystem(context.Background(), cfg, ds, 1, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Query == engine.Q3Biclustering && !o.Unsupported {
			t.Fatal("Hadoop biclustering must be unsupported")
		}
	}
}

func TestRunnerClassifiesOOMLoad(t *testing.T) {
	// Vanilla R at default cell budget cannot load the large preset.
	s := &Suite{Sizes: []datagen.Size{datagen.Large}, Seed: 7}
	ds, err := s.Dataset(datagen.Large)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := ConfigByName("vanilla-r")
	outs, err := Runner{Timeout: 30 * time.Second}.RunSystem(context.Background(), cfg, ds, 1, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.Infinite {
			t.Fatalf("%v should be infinite after a load OOM", o.Query)
		}
	}
}

func TestSuiteFigure1And2(t *testing.T) {
	s := tinySuite()
	outs, err := s.RunSingleNode(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tables, err := s.Figure1(outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("Figure 1 has 5 panels, got %d", len(tables))
	}
	// Every single-node system must have a finite regression measurement at
	// this tiny size.
	reg := tables[0]
	for _, sys := range systemNames(SingleNodeConfigs()) {
		c := reg.Get(sys, reg.ColLabels[0])
		if c.Missing || c.Infinite {
			t.Fatalf("%s regression missing/INF at tiny size", sys)
		}
	}
	// Hadoop must be absent from the biclustering panel.
	bic := tables[1]
	if !bic.Get("hadoop", bic.ColLabels[0]).Missing {
		t.Fatal("hadoop should be missing from biclustering")
	}
	if !bic.Get("postgres-madlib", bic.ColLabels[0]).Missing {
		t.Fatal("postgres-madlib should be missing from biclustering")
	}

	f2, err := s.Figure2(outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2) != 2 {
		t.Fatalf("Figure 2 has 2 panels")
	}
	// DM + analytics must be ≤ total (transfer folded into DM).
	dm := f2[0].Get("postgres-r", f2[0].ColLabels[0]).Seconds
	an := f2[1].Get("postgres-r", f2[1].ColLabels[0]).Seconds
	total := reg.Get("postgres-r", reg.ColLabels[0]).Seconds
	if dm+an > total*1.001 {
		t.Fatalf("phase split inconsistent: %v + %v > %v", dm, an, total)
	}
}

func TestSuiteMultiNodeFigures(t *testing.T) {
	s := tinySuite()
	// Multi-node runs on the Large preset per the paper; shrink it.
	s.Scale = 0.05 // large 0.05 → 100×75
	outs, err := s.RunMultiNode(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f3 := s.Figure3(outs)
	if len(f3) != 5 {
		t.Fatalf("Figure 3 has 5 panels")
	}
	reg := f3[0]
	for _, sys := range systemNames(MultiNodeConfigs()) {
		for _, col := range reg.ColLabels {
			c := reg.Get(sys, col)
			if c.Missing {
				t.Fatalf("%s/%s regression missing", sys, col)
			}
		}
	}
	f4 := s.Figure4(outs)
	if len(f4) != 2 {
		t.Fatal("Figure 4 has 2 panels")
	}
}

func TestSuitePhiAndTable1(t *testing.T) {
	s := tinySuite()
	s.Scale = 0.1
	outs, err := s.RunPhi(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f5, err := s.Figure5(outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != 4 {
		t.Fatalf("Figure 5 has 4 panels (no regression), got %d", len(f5))
	}

	mnOuts, err := s.RunPhiMultiNode(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t1 := s.Table1(mnOuts)
	for _, row := range t1.RowLabels {
		for _, col := range t1.ColLabels {
			c := t1.Get(row, col)
			if c.Missing {
				t.Fatalf("Table 1 %s/%s missing", row, col)
			}
			if c.Seconds <= 0 {
				t.Fatalf("Table 1 %s/%s ratio %v", row, col, c.Seconds)
			}
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "system", []string{"a", "b"}, []string{"x"})
	tab.Set("a", "x", Cell{Seconds: 1.5})
	tab.Set("b", "x", Cell{Infinite: true})
	out := tab.Render()
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "INF") || !strings.Contains(out, "Demo") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCellString(t *testing.T) {
	if (Cell{Missing: true}).String() != "-" || (Cell{Infinite: true}).String() != "INF" {
		t.Fatal("cell rendering")
	}
}
