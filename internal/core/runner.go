package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
)

// Outcome is one (system, query, dataset, nodes) measurement. A run that
// exceeds the cutoff or an engine memory budget is Infinite — the paper's
// "horizontal lines across the top of the charts". Queries a configuration
// cannot express are Unsupported and simply absent from the plots.
type Outcome struct {
	System  string
	Query   engine.QueryID
	Dataset datagen.Size
	Nodes   int

	Timing      engine.Timing
	Infinite    bool
	Unsupported bool
	Err         error
	Answer      any
}

// Completed reports whether the run produced a finite measurement.
func (o Outcome) Completed() bool { return !o.Infinite && !o.Unsupported && o.Err == nil }

// Runner executes queries with the benchmark cutoff.
type Runner struct {
	// Timeout is the per-query cutoff (the paper's two hours; scaled down
	// with the data). Zero means DefaultTimeout.
	Timeout time.Duration
	// Repetitions re-runs each completed query and keeps the run with the
	// minimum total time — the robust estimator for short kernels on a
	// shared machine. Failed or slow (> ~2 s) runs are not repeated. Zero
	// means 1.
	Repetitions int
}

// DefaultTimeout is the scaled stand-in for the paper's 2-hour cutoff.
const DefaultTimeout = 30 * time.Second

func (r Runner) timeout() time.Duration {
	if r.Timeout > 0 {
		return r.Timeout
	}
	return DefaultTimeout
}

// repeatThreshold caps how slow a run may be and still get repeated.
const repeatThreshold = 2 * time.Second

// RunQuery executes one query on a loaded engine, classifying failures.
// With Repetitions > 1, completed fast runs are re-executed and the minimum
// kept.
func (r Runner) RunQuery(ctx context.Context, system string, eng engine.Engine, ds *datagen.Dataset, q engine.QueryID, p engine.Params, nodes int) Outcome {
	out := r.runOnce(ctx, system, eng, ds, q, p, nodes)
	for rep := 1; rep < r.Repetitions; rep++ {
		if !out.Completed() || out.Timing.Total() > repeatThreshold {
			break
		}
		again := r.runOnce(ctx, system, eng, ds, q, p, nodes)
		if again.Completed() && again.Timing.Total() < out.Timing.Total() {
			out = again
		}
	}
	return out
}

func (r Runner) runOnce(ctx context.Context, system string, eng engine.Engine, ds *datagen.Dataset, q engine.QueryID, p engine.Params, nodes int) Outcome {
	if system == "" {
		system = eng.Name()
	}
	out := Outcome{System: system, Query: q, Dataset: ds.Size, Nodes: nodes}
	if !eng.Supports(q) {
		out.Unsupported = true
		return out
	}
	qctx, cancel := context.WithTimeout(ctx, r.timeout())
	defer cancel()
	start := time.Now()
	res, err := eng.Run(qctx, q, p)
	elapsed := time.Since(start)
	switch {
	case err == nil:
		// An engine may finish between context checkpoints after the cutoff
		// has passed; classify by measured time as the paper does ("we cut
		// off all computation after two hours").
		if elapsed > r.timeout() || res.Timing.Total() > r.timeout() {
			out.Infinite = true
			break
		}
		out.Timing = res.Timing
		out.Answer = res.Answer
	case errors.Is(err, context.DeadlineExceeded):
		out.Infinite = true
	case errors.Is(err, engine.ErrOutOfMemory):
		out.Infinite = true
	case errors.Is(err, engine.ErrUnsupported):
		out.Unsupported = true
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		out.Err = ctx.Err()
	default:
		out.Err = err
	}
	return out
}

// RunSystem loads a dataset into a fresh single-node engine of the given
// configuration and runs every query. A load failure (e.g. Vanilla R
// exceeding its memory budget on the large dataset) marks every query
// Infinite, as in the paper.
func (r Runner) RunSystem(ctx context.Context, cfg SystemConfig, ds *datagen.Dataset, nodes int, p engine.Params) ([]Outcome, error) {
	dir, err := scratchDir()
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	return r.runEngine(ctx, cfg, cfg.New(nodes, dir), ds, nodes, p)
}

// RunClusterSystem is RunSystem for the multi-node variant of a
// configuration: every node count — including 1 — runs the same distributed
// algorithms over the virtual cluster, so scaling curves compare like with
// like (Figures 3–4, Table 1).
func (r Runner) RunClusterSystem(ctx context.Context, cfg SystemConfig, ds *datagen.Dataset, nodes int, p engine.Params) ([]Outcome, error) {
	if cfg.NewCluster == nil {
		return nil, fmt.Errorf("core: %s has no multi-node variant", cfg.Name)
	}
	return r.runEngine(ctx, cfg, cfg.NewCluster(nodes), ds, nodes, p)
}

func (r Runner) runEngine(ctx context.Context, cfg SystemConfig, eng engine.Engine, ds *datagen.Dataset, nodes int, p engine.Params) ([]Outcome, error) {
	defer eng.Close()

	queries := engine.AllQueries()
	if err := eng.Load(ds); err != nil {
		if errors.Is(err, engine.ErrOutOfMemory) {
			outs := make([]Outcome, 0, len(queries))
			for _, q := range queries {
				o := Outcome{System: cfg.Name, Query: q, Dataset: ds.Size, Nodes: nodes, Infinite: true}
				if !eng.Supports(q) {
					o.Infinite = false
					o.Unsupported = true
				}
				outs = append(outs, o)
			}
			return outs, nil
		}
		return nil, err
	}
	outs := make([]Outcome, 0, len(queries))
	for _, q := range queries {
		if err := ctx.Err(); err != nil {
			return outs, err
		}
		outs = append(outs, r.RunQuery(ctx, cfg.Name, eng, ds, q, p, nodes))
	}
	return outs, nil
}
