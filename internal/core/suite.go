package core

import (
	"context"
	"fmt"
	"time"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
)

// Suite regenerates the paper's evaluation. Each FigureN method returns one
// text table per chart panel; RunX methods return raw outcomes for callers
// that want the numbers.
type Suite struct {
	// Sizes to sweep (default small, medium, large — §3.1: "none of the
	// systems could run on the extra large data set").
	Sizes []datagen.Size
	// Scale multiplies the preset dimensions (1.0 = 1/20 of the paper).
	Scale float64
	// Seed drives data generation.
	Seed uint64
	// Timeout is the per-query cutoff.
	Timeout time.Duration
	// Params overrides the query parameters (zero value = DefaultParams).
	Params *engine.Params
	// Nodes for the multi-node experiments (default 1, 2, 4).
	Nodes []int
	// Repetitions per query (min kept); see Runner.Repetitions.
	Repetitions int
	// Progress, when non-nil, receives a line per completed system/dataset.
	Progress func(format string, args ...any)

	datasets map[datagen.Size]*datagen.Dataset
}

func (s *Suite) sizes() []datagen.Size {
	if len(s.Sizes) > 0 {
		return s.Sizes
	}
	return []datagen.Size{datagen.Small, datagen.Medium, datagen.Large}
}

func (s *Suite) nodes() []int {
	if len(s.Nodes) > 0 {
		return s.Nodes
	}
	return []int{1, 2, 4}
}

func (s *Suite) params() engine.Params {
	if s.Params != nil {
		return *s.Params
	}
	return engine.DefaultParams()
}

func (s *Suite) runner() Runner { return Runner{Timeout: s.Timeout, Repetitions: s.Repetitions} }

func (s *Suite) progress(format string, args ...any) {
	if s.Progress != nil {
		s.Progress(format, args...)
	}
}

// Dataset returns (and caches) the dataset for a size.
func (s *Suite) Dataset(size datagen.Size) (*datagen.Dataset, error) {
	if s.datasets == nil {
		s.datasets = make(map[datagen.Size]*datagen.Dataset)
	}
	if ds, ok := s.datasets[size]; ok {
		return ds, nil
	}
	ds, err := datagen.Generate(datagen.Config{Size: size, Scale: s.Scale, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	s.datasets[size] = ds
	return ds, nil
}

// sizeLabels renders sizes as the paper's axis labels (e.g. "250x250" for
// the scaled 5k×5k).
func (s *Suite) sizeLabels() ([]string, error) {
	labels := make([]string, 0, len(s.sizes()))
	for _, size := range s.sizes() {
		ds, err := s.Dataset(size)
		if err != nil {
			return nil, err
		}
		labels = append(labels, fmt.Sprintf("%dx%d", ds.Dims.Genes, ds.Dims.Patients))
	}
	return labels, nil
}

// RunSingleNode produces the outcome set behind Figures 1 and 2.
func (s *Suite) RunSingleNode(ctx context.Context) ([]Outcome, error) {
	var outs []Outcome
	r := s.runner()
	p := s.params()
	for _, size := range s.sizes() {
		ds, err := s.Dataset(size)
		if err != nil {
			return nil, err
		}
		for _, cfg := range SingleNodeConfigs() {
			res, err := r.RunSystem(ctx, cfg, ds, 1, p)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s: %w", cfg.Name, size, err)
			}
			outs = append(outs, res...)
			s.progress("single-node %-16s %-7s done", cfg.Name, size)
		}
	}
	return outs, nil
}

// RunMultiNode produces the outcome set behind Figures 3 and 4, on the
// large dataset ("to economize space, we present results only for the large
// data set").
func (s *Suite) RunMultiNode(ctx context.Context) ([]Outcome, error) {
	ds, err := s.Dataset(datagen.Large)
	if err != nil {
		return nil, err
	}
	var outs []Outcome
	r := s.runner()
	p := s.params()
	for _, nodes := range s.nodes() {
		for _, cfg := range MultiNodeConfigs() {
			res, err := r.RunClusterSystem(ctx, cfg, ds, nodes, p)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %d nodes: %w", cfg.Name, nodes, err)
			}
			outs = append(outs, res...)
			s.progress("multi-node  %-16s %d nodes done", cfg.Name, nodes)
		}
	}
	return outs, nil
}

// RunPhi produces the outcome set behind Figure 5: SciDB vs SciDB + Xeon
// Phi, single node, all sizes.
func (s *Suite) RunPhi(ctx context.Context) ([]Outcome, error) {
	var outs []Outcome
	r := s.runner()
	p := s.params()
	for _, size := range s.sizes() {
		ds, err := s.Dataset(size)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"scidb", "scidb-phi"} {
			cfg, err := ConfigByName(name)
			if err != nil {
				return nil, err
			}
			res, err := r.RunSystem(ctx, cfg, ds, 1, p)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %s: %w", name, size, err)
			}
			outs = append(outs, res...)
			s.progress("phi         %-16s %-7s done", name, size)
		}
	}
	return outs, nil
}

// RunPhiMultiNode produces Table 1's outcomes: SciDB vs SciDB + Phi on the
// large dataset across node counts.
func (s *Suite) RunPhiMultiNode(ctx context.Context) ([]Outcome, error) {
	ds, err := s.Dataset(datagen.Large)
	if err != nil {
		return nil, err
	}
	var outs []Outcome
	r := s.runner()
	p := s.params()
	for _, nodes := range s.nodes() {
		for _, name := range []string{"scidb", "scidb-phi"} {
			cfg, err := ConfigByName(name)
			if err != nil {
				return nil, err
			}
			res, err := r.RunClusterSystem(ctx, cfg, ds, nodes, p)
			if err != nil {
				return nil, fmt.Errorf("core: %s on %d nodes: %w", name, nodes, err)
			}
			outs = append(outs, res...)
			s.progress("table1      %-16s %d nodes done", name, nodes)
		}
	}
	return outs, nil
}

var queryPanels = []struct {
	letter string
	q      engine.QueryID
	title  string
}{
	{"a", engine.Q1Regression, "Linear Regression"},
	{"b", engine.Q3Biclustering, "Biclustering"},
	{"c", engine.Q4SVD, "SVD"},
	{"d", engine.Q2Covariance, "Covariance"},
	{"e", engine.Q5Statistics, "Statistics"},
}

// Figure1 renders the five panels of Figure 1 (overall single-node query
// time, seconds) from single-node outcomes.
func (s *Suite) Figure1(outs []Outcome) ([]*Table, error) {
	labels, err := s.sizeLabels()
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, panel := range queryPanels {
		t := NewTable(
			fmt.Sprintf("Figure 1%s: %s Query Performance (seconds)", panel.letter, panel.title),
			"system", systemNames(SingleNodeConfigs()), labels)
		for _, o := range outs {
			if o.Query != panel.q {
				continue
			}
			t.Set(o.System, s.labelOf(o.Dataset), cellFromOutcome(o, o.Timing.Total().Seconds()))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure2 renders the regression DM/analytics breakdown (Figure 2a–b). The
// paper folds export/reformat time into data management.
func (s *Suite) Figure2(outs []Outcome) ([]*Table, error) {
	labels, err := s.sizeLabels()
	if err != nil {
		return nil, err
	}
	dm := NewTable("Figure 2a: Linear Regression Data Management Performance (seconds)",
		"system", systemNames(SingleNodeConfigs()), labels)
	an := NewTable("Figure 2b: Linear Regression Analytics Performance (seconds)",
		"system", systemNames(SingleNodeConfigs()), labels)
	for _, o := range outs {
		if o.Query != engine.Q1Regression {
			continue
		}
		dm.Set(o.System, s.labelOf(o.Dataset),
			cellFromOutcome(o, o.Timing.DataManagement.Seconds()+o.Timing.Transfer.Seconds()))
		an.Set(o.System, s.labelOf(o.Dataset), cellFromOutcome(o, o.Timing.Analytics.Seconds()))
	}
	return []*Table{dm, an}, nil
}

// Figure3 renders the five multi-node panels (overall time vs node count,
// large dataset).
func (s *Suite) Figure3(outs []Outcome) []*Table {
	nodeLabels := nodeLabelSet(s.nodes())
	var tables []*Table
	for _, panel := range queryPanels {
		t := NewTable(
			fmt.Sprintf("Figure 3%s: %s Query Performance, 30k x 40k-scaled Dataset (seconds)", panel.letter, panel.title),
			"system", systemNames(MultiNodeConfigs()), nodeLabels)
		for _, o := range outs {
			if o.Query != panel.q {
				continue
			}
			t.Set(o.System, nodeLabel(o.Nodes), cellFromOutcome(o, o.Timing.Total().Seconds()))
		}
		tables = append(tables, t)
	}
	return tables
}

// Figure4 renders the multi-node regression DM/analytics breakdown.
func (s *Suite) Figure4(outs []Outcome) []*Table {
	nodeLabels := nodeLabelSet(s.nodes())
	dm := NewTable("Figure 4a: Linear Regression Data Management Performance, large dataset (seconds)",
		"system", systemNames(MultiNodeConfigs()), nodeLabels)
	an := NewTable("Figure 4b: Linear Regression Analytics Performance, large dataset (seconds)",
		"system", systemNames(MultiNodeConfigs()), nodeLabels)
	for _, o := range outs {
		if o.Query != engine.Q1Regression {
			continue
		}
		dm.Set(o.System, nodeLabel(o.Nodes),
			cellFromOutcome(o, o.Timing.DataManagement.Seconds()+o.Timing.Transfer.Seconds()))
		an.Set(o.System, nodeLabel(o.Nodes), cellFromOutcome(o, o.Timing.Analytics.Seconds()))
	}
	return []*Table{dm, an}
}

var phiPanels = []struct {
	letter string
	q      engine.QueryID
	title  string
}{
	{"a", engine.Q3Biclustering, "Biclustering"},
	{"b", engine.Q4SVD, "SVD"},
	{"c", engine.Q2Covariance, "Covariance"},
	{"d", engine.Q5Statistics, "Statistics"},
}

// Figure5 renders SciDB vs SciDB + Xeon Phi across sizes (regression is
// excluded: "the Intel MKL automatic offload of this operation is currently
// not fully supported").
func (s *Suite) Figure5(outs []Outcome) ([]*Table, error) {
	labels, err := s.sizeLabels()
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, panel := range phiPanels {
		t := NewTable(
			fmt.Sprintf("Figure 5%s: %s Query Performance, SciDB v. SciDB + Xeon Phi (seconds)", panel.letter, panel.title),
			"system", []string{"scidb", "scidb-phi"}, labels)
		for _, o := range outs {
			if o.Query != panel.q {
				continue
			}
			t.Set(o.System, s.labelOf(o.Dataset), cellFromOutcome(o, o.Timing.Total().Seconds()))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Table1 renders analytics speedups of the Phi configuration versus host
// SciDB across node counts on the large dataset.
func (s *Suite) Table1(outs []Outcome) *Table {
	nodeLabels := nodeLabelSet(s.nodes())
	t := NewTable("Table 1: Analytics speedup of Xeon Phi vs host on SciDB+ScaLAPACK (ratio)",
		"benchmark", []string{"Covariance", "SVD", "Statistics", "Biclustering"}, nodeLabels)
	rowOf := map[engine.QueryID]string{
		engine.Q2Covariance:   "Covariance",
		engine.Q4SVD:          "SVD",
		engine.Q5Statistics:   "Statistics",
		engine.Q3Biclustering: "Biclustering",
	}
	type key struct {
		q     engine.QueryID
		nodes int
	}
	host := map[key]float64{}
	phi := map[key]float64{}
	for _, o := range outs {
		if !o.Completed() {
			continue
		}
		k := key{o.Query, o.Nodes}
		analytics := o.Timing.Analytics.Seconds() + o.Timing.Transfer.Seconds()
		switch o.System {
		case "scidb":
			host[k] = analytics
		case "scidb-phi":
			phi[k] = analytics
		}
	}
	for k, h := range host {
		row, ok := rowOf[k.q]
		if !ok {
			continue
		}
		if p, ok := phi[k]; ok && p > 0 {
			t.Set(row, nodeLabel(k.nodes), Cell{Seconds: h / p})
		}
	}
	return t
}

func (s *Suite) labelOf(size datagen.Size) string {
	ds := s.datasets[size]
	return fmt.Sprintf("%dx%d", ds.Dims.Genes, ds.Dims.Patients)
}

func systemNames(cfgs []SystemConfig) []string {
	out := make([]string, len(cfgs))
	for i, c := range cfgs {
		out[i] = c.Name
	}
	return out
}

func nodeLabel(n int) string { return fmt.Sprintf("%d node(s)", n) }

func nodeLabelSet(nodes []int) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = nodeLabel(n)
	}
	return out
}
