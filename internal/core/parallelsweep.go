package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// The parallel sweep is the harness behind the "single-core vs multicore"
// claim: it times the hot analytics kernels (GEMM, Gram, covariance, SVD) on
// the Large preset's expression matrix at several worker counts, verifies the
// answers are bitwise identical across all of them, and reports seconds plus
// speedup relative to one worker.

// sweepKernel is one timed kernel of the sweep.
type sweepKernel struct {
	name string
	// run executes the kernel at a worker count and returns a result
	// fingerprint used for the cross-worker bitwise check.
	run func(workers int) (fingerprint uint64, err error)
}

// fingerprintMatrix folds a matrix's exact bit patterns into one word.
func fingerprintMatrix(m *linalg.Matrix) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			h = (h ^ math.Float64bits(v)) * 1099511628211
		}
	}
	return h
}

func fingerprintVec(x []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range x {
		h = (h ^ math.Float64bits(v)) * 1099511628211
	}
	return h
}

// RunParallelSweep times the hot kernels at each worker count (default
// 1, 2, 4, 8) on the Large preset expression matrix and returns two tables:
// kernel seconds per worker count, and speedup vs the first count. It errors
// if any kernel's answer differs bitwise across worker counts — the sweep
// doubles as a runtime determinism check.
func (s *Suite) RunParallelSweep(ctx context.Context, workerCounts []int) ([]*Table, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	ds, err := s.Dataset(datagen.Large)
	if err != nil {
		return nil, err
	}
	x := ds.Expression // patients × genes, the benchmark's hot operand
	wide := linalg.NewMatrix(x.Cols, 256)
	rng := datagen.NewRNG(s.Seed ^ 0x5eedbeef)
	for i := range wide.Data {
		wide.Data[i] = rng.Float64()*2 - 1
	}

	kernels := []sweepKernel{
		{name: "gemm", run: func(w int) (uint64, error) {
			return fingerprintMatrix(linalg.MulBlockedP(x, wide, w)), nil
		}},
		{name: "gram", run: func(w int) (uint64, error) {
			return fingerprintMatrix(linalg.MulATAP(x, w)), nil
		}},
		{name: "covariance", run: func(w int) (uint64, error) {
			return fingerprintMatrix(linalg.CovarianceP(x, w)), nil
		}},
		{name: "svd-top10", run: func(w int) (uint64, error) {
			svd, err := linalg.TopKSVD(x, 10, linalg.LanczosOptions{Reorthogonalize: true, Seed: s.Seed, Workers: w})
			if err != nil {
				return 0, err
			}
			return fingerprintVec(svd.SingularValues) ^ fingerprintMatrix(svd.V), nil
		}},
	}

	reps := s.Repetitions
	if reps <= 0 {
		reps = 3
	}
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.name
	}
	cols := make([]string, len(workerCounts))
	for i, w := range workerCounts {
		cols[i] = fmt.Sprintf("%d worker(s)", w)
	}
	secs := NewTable(fmt.Sprintf("Parallel kernel sweep, Large preset (%d patients x %d genes) (seconds)", ds.Dims.Patients, ds.Dims.Genes),
		"kernel", names, cols)
	speedup := NewTable(fmt.Sprintf("Parallel kernel speedup vs %d worker(s) (ratio)", workerCounts[0]),
		"kernel", names, cols)

	for _, k := range kernels {
		var baseSecs float64
		var baseFP uint64
		for wi, w := range workerCounts {
			if err := engine.CheckCtx(ctx); err != nil {
				return nil, err
			}
			best := math.Inf(1)
			var fp uint64
			for r := 0; r < reps; r++ {
				start := time.Now()
				f, err := k.run(w)
				if d := time.Since(start).Seconds(); d < best {
					best = d
				}
				if err != nil {
					return nil, fmt.Errorf("core: %s at %d workers: %w", k.name, w, err)
				}
				fp = f
			}
			if wi == 0 {
				baseSecs, baseFP = best, fp
			} else if fp != baseFP {
				return nil, fmt.Errorf("core: %s answer differs bitwise between %d and %d workers", k.name, workerCounts[0], w)
			}
			secs.Set(k.name, cols[wi], Cell{Seconds: best})
			speedup.Set(k.name, cols[wi], Cell{Seconds: baseSecs / best})
			s.progress("parallel    %-12s %2d workers  %.3fs", k.name, w, best)
		}
	}
	return []*Table{secs, speedup}, nil
}
