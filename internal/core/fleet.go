package core

import (
	"fmt"

	"github.com/genbase/genbase/internal/cost"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
)

// Answer-equivalence classes (DESIGN.md §16). Within a class every
// configuration produces bit-identical answers for every query it supports —
// pinned by testdata/golden_answers.json and route_test.go — so the fleet
// result cache shares entries exactly within a class and never across.
const (
	// ClassDense: the single-node engines and the virtual colstore-udf
	// cluster. All execute the dense in-memory operator algebra in the same
	// association order (the cluster variant re-merges to it bit for bit).
	ClassDense = "dense"
	// ClassDist: the distributed row-block algebra (pbdr, colstore-pbdr,
	// scidb, scidb-phi clusters). Shard-tree reduction associates float
	// additions differently from the dense engines — same math, different
	// bits.
	ClassDist = "dist"
	// ClassMR: the MapReduce pipeline (hadoop, single and cluster), whose
	// combiner tree is a third association order.
	ClassMR = "mr"
)

// FleetMember is one backend of the serve fleet: a (system, nodes)
// configuration with its cost-model identity, answer class, and builder.
type FleetMember struct {
	// Key is the configuration key ("scidb", "scidb@2n") — identical to
	// Config.Key() and to the keys of the committed cost coefficients.
	Key string
	// Config is the cost-model identity the router estimates with.
	Config cost.Config
	// Class is the answer-equivalence class (ClassDense/ClassDist/ClassMR).
	Class string
	// Serial pins the backend's admission width to 1: the cluster Hadoop
	// wrapper keeps shared MR-scheduler accounting (DESIGN.md §13), so its
	// engine contract forbids concurrent Run calls.
	Serial bool
	// New builds the engine; dir is scratch space for disk-backed engines.
	New func(dir string) engine.Engine
}

// FleetConfigs returns the full heterogeneous fleet the serve router fronts:
// all eight single-node configurations plus the six virtual-cluster variants
// at clusterNodes (min 2 — a 1-node "cluster" duplicates a configuration key
// the single-node engine already holds). This is the paper's whole
// evaluation matrix loaded side by side: routing across it is choosing a
// winner per query, which is the paper's conclusion made operational.
func FleetConfigs(clusterNodes int) ([]FleetMember, error) {
	if clusterNodes < 2 {
		return nil, fmt.Errorf("core: fleet cluster variants need at least 2 nodes, got %d", clusterNodes)
	}
	single := func(name, class string) FleetMember {
		cfg, err := ConfigByName(name)
		if err != nil {
			panic(err) // registry names are static; a miss is a programming error
		}
		return FleetMember{
			Key:    name,
			Config: cost.Config{System: name, Workers: engineWorkers},
			Class:  class,
			New:    func(dir string) engine.Engine { return cfg.New(1, dir) },
		}
	}
	clustered := func(kind multinode.Kind, class string) FleetMember {
		name := kind.String()
		return FleetMember{
			Key:    fmt.Sprintf("%s@%dn", name, clusterNodes),
			Config: cost.Config{System: name, Nodes: clusterNodes},
			Class:  class,
			New:    func(string) engine.Engine { return multinode.New(kind, clusterNodes) },
		}
	}
	fleet := []FleetMember{
		single("vanilla-r", ClassDense),
		single("postgres-madlib", ClassDense),
		single("postgres-r", ClassDense),
		single("colstore-r", ClassDense),
		single("colstore-udf", ClassDense),
		single("scidb", ClassDense),
		single("scidb-phi", ClassDense),
		single("hadoop", ClassMR),
		clustered(multinode.ColstoreUDF, ClassDense),
		clustered(multinode.PBDR, ClassDist),
		clustered(multinode.ColstorePBDR, ClassDist),
		clustered(multinode.SciDB, ClassDist),
		clustered(multinode.SciDBPhi, ClassDist),
		{
			Key:    fmt.Sprintf("hadoop@%dn", clusterNodes),
			Config: cost.Config{System: "hadoop", Nodes: clusterNodes},
			Class:  ClassMR,
			Serial: true,
			New:    func(string) engine.Engine { return multinode.NewHadoop(clusterNodes) },
		},
	}
	return fleet, nil
}
