package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/genbase/genbase/internal/arraydb"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
)

// runClusterSharded is RunClusterSystem for the >4-node extension sweeps:
// past the default numeric shard count the shards would cap parallelism
// (chunk-limited scaling), so these sweeps raise the shard count to the node
// count — one shard per node, the pre-plan partitioning. The partition stays
// deterministic; only the default-shard configuration carries the
// node-count-invariance guarantee (DESIGN.md §13).
func (r Runner) runClusterSharded(ctx context.Context, cfg SystemConfig, ds *datagen.Dataset, nodes int, p engine.Params) ([]Outcome, error) {
	if cfg.NewCluster == nil {
		return nil, fmt.Errorf("core: %s has no multi-node variant", cfg.Name)
	}
	eng := cfg.NewCluster(nodes)
	if ss, ok := eng.(interface{ SetShards(int) }); ok && nodes > distlinalg.DefaultNumericShards {
		ss.SetShards(nodes)
	}
	return r.runEngine(ctx, cfg, eng, ds, nodes, p)
}

// This file implements the experiments the paper proposes but could not run:
//
//   - §5.2: "in reality, the genomics data should scale in size with the
//     number of nodes in the cluster ('weak scaling'). We intend to run our
//     benchmarks on larger scale clusters using weak scaling."
//   - §4.4: "If this paper is accepted, we will test our code on a similar
//     48 node configuration at a national supercomputing center."
//
// The virtual cluster makes both possible here.

// WeakScalingSystems are the configurations swept by the extension
// experiments (the distributed-analytics systems).
func WeakScalingSystems() []string { return []string{"pbdr", "colstore-pbdr", "scidb"} }

// RunWeakScaling grows the dataset with the cluster following the paper's
// own model (§3: "up to 10⁸⁻¹⁰ samples ... with each node handling 10⁴⁻⁵
// samples"): at n nodes the medium preset keeps its gene dimension and
// carries n× the patients, so every node holds a constant number of
// samples. Patient-proportional kernels (Gram, covariance, regression) then
// do constant work per node, and under ideal weak scaling per-query virtual
// time stays flat; rising curves expose communication terms that grow with
// the cluster. Returns one table for Q1 (regression) and one for Q2
// (covariance).
func (s *Suite) RunWeakScaling(ctx context.Context, nodeCounts []int) ([]*Table, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8}
	}
	r := s.runner()
	p := s.params()
	cols := nodeLabelSet(nodeCounts)
	reg := NewTable("Extension (paper §5.2): Weak scaling, regression — samples/node constant (virtual seconds)",
		"system", WeakScalingSystems(), cols)
	cov := NewTable("Extension (paper §5.2): Weak scaling, covariance — samples/node constant (virtual seconds)",
		"system", WeakScalingSystems(), cols)

	baseScale := s.Scale
	if baseScale <= 0 {
		baseScale = 1
	}
	for _, nodes := range nodeCounts {
		ds, err := datagen.Generate(datagen.Config{
			Size: datagen.Medium, Scale: baseScale,
			PatientScale: float64(nodes), Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, name := range WeakScalingSystems() {
			cfg, err := ConfigByName(name)
			if err != nil {
				return nil, err
			}
			outs, err := r.runClusterSharded(ctx, cfg, ds, nodes, p)
			if err != nil {
				return nil, fmt.Errorf("core: weak scaling %s/%d: %w", name, nodes, err)
			}
			for _, o := range outs {
				switch o.Query {
				case engine.Q1Regression:
					reg.Set(name, nodeLabel(nodes), cellFromOutcome(o, o.Timing.Total().Seconds()))
				case engine.Q2Covariance:
					cov.Set(name, nodeLabel(nodes), cellFromOutcome(o, o.Timing.Total().Seconds()))
				}
			}
			s.progress("weak-scaling %-16s %2d nodes (%dx%d) done", name, nodes, ds.Dims.Genes, ds.Dims.Patients)
		}
	}
	return []*Table{reg, cov}, nil
}

// RunLargeCluster runs the strong-scaling sweep the authors planned for a
// 48-node installation: the large dataset, regression and SVD, node counts
// up to 48. Expect the paper's §6.1 prediction to materialize: with fixed
// data, per-node compute shrinks while synchronization does not, so curves
// flatten (and eventually turn upward) well before 48 nodes.
func (s *Suite) RunLargeCluster(ctx context.Context, nodeCounts []int) ([]*Table, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8, 16, 32, 48}
	}
	ds, err := s.Dataset(datagen.Large)
	if err != nil {
		return nil, err
	}
	r := s.runner()
	p := s.params()
	cols := nodeLabelSet(nodeCounts)
	reg := NewTable("Extension (paper §4.4): 48-node strong scaling, regression, large dataset (virtual seconds)",
		"system", WeakScalingSystems(), cols)
	svd := NewTable("Extension (paper §4.4): 48-node strong scaling, SVD, large dataset (virtual seconds)",
		"system", WeakScalingSystems(), cols)
	for _, nodes := range nodeCounts {
		for _, name := range WeakScalingSystems() {
			cfg, err := ConfigByName(name)
			if err != nil {
				return nil, err
			}
			outs, err := r.runClusterSharded(ctx, cfg, ds, nodes, p)
			if err != nil {
				return nil, fmt.Errorf("core: large cluster %s/%d: %w", name, nodes, err)
			}
			for _, o := range outs {
				switch o.Query {
				case engine.Q1Regression:
					reg.Set(name, nodeLabel(nodes), cellFromOutcome(o, o.Timing.Total().Seconds()))
				case engine.Q4SVD:
					svd.Set(name, nodeLabel(nodes), cellFromOutcome(o, o.Timing.Total().Seconds()))
				}
			}
			s.progress("48-node      %-16s %2d nodes done", name, nodes)
		}
	}
	return []*Table{reg, svd}, nil
}

// RunApproxSVD compares the exact Lanczos SVD against the randomized
// approximate SVD the paper's §6.3 calls for, on the xlarge dataset none of
// the paper's systems could finish: "approximation algorithms may have
// allowed us to scale to the 60K × 70K dataset". Rows are algorithms,
// columns dataset sizes; the answer agreement is reported alongside.
func (s *Suite) RunApproxSVD(ctx context.Context, sizes []datagen.Size) (*Table, []float64, error) {
	if len(sizes) == 0 {
		sizes = []datagen.Size{datagen.Medium, datagen.Large, datagen.XLarge}
	}
	p := s.params()
	// Use the paper's actual k = 50 singular values: the randomized method's
	// advantage grows with k (Lanczos pays quadratic reorthogonalization in
	// its subspace size; the sketch does a fixed number of passes).
	p.SVDK = 50
	r := s.runner()
	labels := make([]string, 0, len(sizes))
	datasets := make([]*datagen.Dataset, 0, len(sizes))
	for _, size := range sizes {
		ds, err := s.Dataset(size)
		if err != nil {
			return nil, nil, err
		}
		datasets = append(datasets, ds)
		labels = append(labels, fmt.Sprintf("%dx%d", ds.Dims.Genes, ds.Dims.Patients))
	}
	t := NewTable("Extension (paper §6.3): exact Lanczos vs randomized SVD, k=50 (seconds)",
		"algorithm", []string{"lanczos-exact", "randomized-approx"}, labels)
	var agreement []float64
	for i, ds := range datasets {
		cfg, err := ConfigByName("scidb")
		if err != nil {
			return nil, nil, err
		}
		// Exact path: the regular Q4.
		exactOuts, err := r.RunSystem(ctx, cfg, ds, 1, p)
		if err != nil {
			return nil, nil, err
		}
		var exact Outcome
		for _, o := range exactOuts {
			if o.Query == engine.Q4SVD {
				exact = o
			}
		}
		t.Set("lanczos-exact", labels[i], cellFromOutcome(exact, exact.Timing.Total().Seconds()))

		// Approximate path.
		approx := runApproxSVDOnce(ctx, ds, p, r.timeout())
		t.Set("randomized-approx", labels[i], cellFromOutcome(approx, approx.Timing.Total().Seconds()))

		if exact.Completed() && approx.Completed() {
			ev := exact.Answer.(*engine.SVDAnswer).SingularValues
			av := approx.Answer.(*engine.SVDAnswer).SingularValues
			worst := 0.0
			for j := range ev {
				rel := math.Abs(ev[j]-av[j]) / (1 + ev[0])
				if rel > worst {
					worst = rel
				}
			}
			agreement = append(agreement, worst)
		} else {
			agreement = append(agreement, math.NaN())
		}
		s.progress("approx-svd   %-10s done", labels[i])
	}
	return t, agreement, nil
}

// runApproxSVDOnce performs Q4's data management on the array engine's
// storage (filter genes, gather the sub-array) and then the randomized SVD
// kernel instead of Lanczos, with the usual cutoff semantics.
func runApproxSVDOnce(ctx context.Context, ds *datagen.Dataset, p engine.Params, timeout time.Duration) Outcome {
	out := Outcome{System: "scidb-approx", Query: engine.Q4SVD, Dataset: ds.Size, Nodes: 1}
	arr := arraydb.FromMatrix(ds.Expression, 0, 0) // load, not timed
	start := time.Now()
	var sw engine.StopWatch
	sw.StartDM()
	var genes []int64
	for _, g := range ds.Genes {
		if int64(g.Function) < p.FunctionThreshold {
			genes = append(genes, int64(g.ID))
		}
	}
	sub := arr.GatherColsDense(genes) // single-pass dense gather (zero-copy path)
	sw.StartAnalytics()
	// PowerIters −1 selects q = 0: the pure single-sketch variant, the
	// cheapest member of the family (worst-case error ~1% on this data).
	res, err := linalg.RandomizedSVD(sub, p.SVDK, linalg.RandSVDOptions{Seed: p.Seed, PowerIters: -1, Oversample: 10})
	linalg.PutMatrix(sub)
	sw.Stop()
	if err != nil {
		out.Err = err
		return out
	}
	if time.Since(start) > timeout {
		out.Infinite = true
		return out
	}
	out.Timing = sw.Timing()
	out.Answer = &engine.SVDAnswer{SelectedGenes: len(genes), SingularValues: res.SingularValues}
	return out
}
