// Package core is the benchmark itself: the registry of system
// configurations (paper §4.1–§4.2, §5.1), the runner that executes queries
// under the time cutoff and renders failures as the paper's "infinite"
// results, and the suite that regenerates every figure and table of the
// evaluation.
package core

import (
	"fmt"
	"os"

	"github.com/genbase/genbase/internal/arraydb"
	"github.com/genbase/genbase/internal/colstore"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/mapreduce"
	"github.com/genbase/genbase/internal/multinode"
	"github.com/genbase/genbase/internal/rengine"
	"github.com/genbase/genbase/internal/rowstore"
	"github.com/genbase/genbase/internal/xeonphi"
)

// engineWorkers is the per-engine analytics worker count applied by Configs
// (0 = each engine falls back to the GENBASE_PARALLEL / NumCPU default).
var engineWorkers int

// SetWorkers pins the analytics worker count of every engine Configs builds
// from now on — the genbase-bench -workers flag, used to sweep single-core
// vs multicore runs. Answers are bitwise identical at any value. Multi-node
// engines are unaffected: their virtual nodes stay single-worker by design
// (see internal/cluster).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	engineWorkers = n
}

// SystemConfig describes one benchmarkable configuration.
type SystemConfig struct {
	// Name as used in the paper's figure legends.
	Name string
	// SingleNode marks systems in Figures 1–2.
	SingleNode bool
	// MultiNode marks systems in Figures 3–4 (1/2/4 nodes).
	MultiNode bool
	// New builds the single-node engine used in Figures 1-2 and 5 (real
	// measured wall-clock); nodes is ignored. dir is scratch space for
	// disk-backed engines.
	New func(nodes int, dir string) engine.Engine
	// NewCluster builds the multi-node variant used in Figures 3-4 and
	// Table 1 (virtual-time cluster). It is used for ALL node counts of a
	// multi-node sweep — including 1 — so the 1-node baseline runs the same
	// algorithms as the scaled runs, exactly as the paper's multi-node
	// systems did. Nil for single-node-only configurations.
	NewCluster func(nodes int) engine.Engine
}

// Configs returns every configuration in the paper's presentation order.
func Configs() []SystemConfig {
	return []SystemConfig{
		{
			Name: "vanilla-r", SingleNode: true,
			New: func(_ int, _ string) engine.Engine {
				e := rengine.New()
				e.Workers = engineWorkers
				return e
			},
		},
		{
			Name: "postgres-madlib", SingleNode: true,
			New: func(_ int, dir string) engine.Engine {
				e := rowstore.New(dir, rowstore.ModeMadlib)
				e.Workers = engineWorkers
				return e
			},
		},
		{
			Name: "postgres-r", SingleNode: true,
			New: func(_ int, dir string) engine.Engine {
				e := rowstore.New(dir, rowstore.ModeR)
				e.Workers = engineWorkers
				return e
			},
		},
		{
			Name: "colstore-r", SingleNode: true,
			New: func(_ int, _ string) engine.Engine {
				e := colstore.New(colstore.ModeR)
				e.Workers = engineWorkers
				return e
			},
		},
		{
			Name: "colstore-udf", SingleNode: true, MultiNode: true,
			New: func(_ int, _ string) engine.Engine {
				e := colstore.New(colstore.ModeUDF)
				e.Workers = engineWorkers
				return e
			},
			NewCluster: func(nodes int) engine.Engine { return multinode.New(multinode.ColstoreUDF, nodes) },
		},
		{
			Name: "scidb", SingleNode: true, MultiNode: true,
			New: func(_ int, _ string) engine.Engine {
				e := arraydb.New()
				e.Workers = engineWorkers
				return e
			},
			NewCluster: func(nodes int) engine.Engine { return multinode.New(multinode.SciDB, nodes) },
		},
		{
			Name: "hadoop", SingleNode: true, MultiNode: true,
			New: func(_ int, _ string) engine.Engine {
				e := mapreduce.New()
				e.Workers = engineWorkers
				return e
			},
			NewCluster: func(nodes int) engine.Engine { return multinode.NewHadoop(nodes) },
		},
		{
			Name: "pbdr", MultiNode: true,
			New:        func(nodes int, _ string) engine.Engine { return multinode.New(multinode.PBDR, nodes) },
			NewCluster: func(nodes int) engine.Engine { return multinode.New(multinode.PBDR, nodes) },
		},
		{
			Name: "colstore-pbdr", MultiNode: true,
			New:        func(nodes int, _ string) engine.Engine { return multinode.New(multinode.ColstorePBDR, nodes) },
			NewCluster: func(nodes int) engine.Engine { return multinode.New(multinode.ColstorePBDR, nodes) },
		},
		{
			Name: "scidb-phi",
			New: func(_ int, _ string) engine.Engine {
				e := arraydb.New()
				e.Workers = engineWorkers
				e.Accel = xeonphi.NewDevice5110P()
				return e
			},
			NewCluster: func(nodes int) engine.Engine { return multinode.New(multinode.SciDBPhi, nodes) },
		},
	}
}

// ConfigByName looks a configuration up.
func ConfigByName(name string) (SystemConfig, error) {
	for _, c := range Configs() {
		if c.Name == name {
			return c, nil
		}
	}
	return SystemConfig{}, fmt.Errorf("core: unknown system %q", name)
}

// SingleNodeConfigs filters the Figure 1–2 systems.
func SingleNodeConfigs() []SystemConfig {
	var out []SystemConfig
	for _, c := range Configs() {
		if c.SingleNode {
			out = append(out, c)
		}
	}
	return out
}

// MultiNodeConfigs filters the Figure 3–4 systems.
func MultiNodeConfigs() []SystemConfig {
	var out []SystemConfig
	for _, c := range Configs() {
		if c.MultiNode {
			out = append(out, c)
		}
	}
	return out
}

// scratchDir makes a temp dir for disk-backed engines.
func scratchDir() (string, error) {
	return os.MkdirTemp("", "genbase-*")
}
