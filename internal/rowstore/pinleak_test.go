package rowstore

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/genbase/genbase/internal/engine"
)

// checkNoPins fails if any table's buffer pool still holds pinned pages —
// the pin-leak detector: a leaked pin would eventually wedge the pool
// (ErrPoolExhausted) under sustained serving.
func checkNoPins(t *testing.T, e *Engine, when string) {
	t.Helper()
	for name, tab := range e.db.tables {
		if n := tab.Heap.Pool().PinnedPages(); n != 0 {
			t.Errorf("%s: table %q has %d pinned pages", when, name, n)
		}
		if v := tab.Heap.Pool().InvariantViolations.Load(); v != 0 {
			t.Errorf("%s: table %q saw %d pin-discipline violations", when, name, v)
		}
	}
}

// Every query, in both modes, must return the buffer pools to zero pins —
// including queries that error (unsupported, empty selections).
func TestNoPinLeakAfterQueries(t *testing.T) {
	p := engine.DefaultParams()
	for _, mode := range []Mode{ModeR, ModeMadlib} {
		e := loaded(t, mode)
		checkNoPins(t, e, e.Name()+" after load")
		for _, q := range engine.AllQueries() {
			_, err := e.Run(context.Background(), q, p)
			if err != nil && !errors.Is(err, engine.ErrUnsupported) {
				t.Fatalf("%s %s: %v", e.Name(), q, err)
			}
			checkNoPins(t, e, e.Name()+" after "+q.String())
		}
	}
}

// Concurrent queries over one row-store engine: the buffer pools are shared
// across all in-flight scans, so this drives eviction races, pin accounting,
// and the cursor path under -race, then asserts no pin survived.
func TestNoPinLeakUnderConcurrentQueries(t *testing.T) {
	e := loaded(t, ModeR)
	p := engine.DefaultParams()
	queries := engine.AllQueries()
	const clients = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range queries {
				q := queries[(i+c)%len(queries)]
				if _, err := e.Run(context.Background(), q, p); err != nil {
					t.Errorf("client %d %s: %v", c, q, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	checkNoPins(t, e, "after concurrent queries")
}
