package rowstore

import (
	"context"
	"path/filepath"
	"testing"

	"github.com/genbase/genbase/internal/relation"
)

func memTable(name string, schema relation.Schema, rows ...relation.Row) *relation.Table {
	t := relation.NewTable(name, schema)
	t.Rows = rows
	return t
}

var kvSchema = relation.Schema{
	{Name: "k", Kind: relation.KindInt64},
	{Name: "v", Kind: relation.KindFloat64},
}

func kvRow(k int64, v float64) relation.Row {
	return relation.Row{relation.IntVal(k), relation.FloatVal(v)}
}

func collectRows(t *testing.T, it Iterator) []relation.Row {
	t.Helper()
	tab, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return tab.Rows
}

func TestFilterOperator(t *testing.T) {
	tab := memTable("t", kvSchema, kvRow(1, 1), kvRow(2, 2), kvRow(3, 3))
	rows := collectRows(t, &Filter{
		Child: &MemScan{Table: tab},
		Pred:  func(r relation.Row) bool { return r[0].I%2 == 1 },
	})
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 3 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestProjectOperator(t *testing.T) {
	tab := memTable("t", kvSchema, kvRow(1, 10))
	it := &Project{Child: &MemScan{Table: tab}, Cols: []int{1}}
	rows := collectRows(t, it)
	if len(rows) != 1 || rows[0][0].F != 10 {
		t.Fatalf("rows=%v", rows)
	}
	if it.Schema()[0].Name != "v" {
		t.Fatal("projected schema wrong")
	}
}

func TestHashJoinMatchesAndDuplicates(t *testing.T) {
	build := memTable("b", kvSchema, kvRow(1, 100), kvRow(1, 101), kvRow(2, 200))
	probe := memTable("p", kvSchema, kvRow(1, 1), kvRow(2, 2), kvRow(3, 3))
	rows := collectRows(t, &HashJoin{
		Build: &MemScan{Table: build}, Probe: &MemScan{Table: probe},
		BuildKey: 0, ProbeKey: 0,
	})
	// Probe row 1 matches two build rows; probe row 2 matches one; 3 none.
	if len(rows) != 3 {
		t.Fatalf("join produced %d rows", len(rows))
	}
	seen := map[float64]bool{}
	for _, r := range rows {
		if r[0].I != r[2].I {
			t.Fatal("join keys disagree")
		}
		seen[r[3].F] = true
	}
	if !seen[100] || !seen[101] || !seen[200] {
		t.Fatalf("missing build payloads: %v", seen)
	}
}

func TestSortOperator(t *testing.T) {
	tab := memTable("t", kvSchema, kvRow(3, 1), kvRow(1, 2), kvRow(2, 3))
	rows := collectRows(t, &SortOp{
		Child: &MemScan{Table: tab},
		Less:  func(a, b relation.Row) bool { return a[0].I < b[0].I },
	})
	for i, r := range rows {
		if r[0].I != int64(i+1) {
			t.Fatalf("order wrong: %v", rows)
		}
	}
}

func TestHashAggSumCountAvg(t *testing.T) {
	tab := memTable("t", kvSchema, kvRow(1, 1), kvRow(1, 3), kvRow(2, 10))
	rows := collectRows(t, &HashAgg{
		Child: &MemScan{Table: tab},
		Key:   0,
		Aggs:  []AggSpec{{Col: 1, Kind: AggSum}, {Col: 1, Kind: AggCount}, {Col: 1, Kind: AggAvg}},
	})
	if len(rows) != 2 {
		t.Fatalf("groups=%d", len(rows))
	}
	// Keys stream in ascending order.
	if rows[0][0].I != 1 || rows[0][1].F != 4 || rows[0][2].F != 2 || rows[0][3].F != 2 {
		t.Fatalf("group 1: %v", rows[0])
	}
	if rows[1][0].I != 2 || rows[1][1].F != 10 {
		t.Fatalf("group 2: %v", rows[1])
	}
}

func TestEvalOperator(t *testing.T) {
	tab := memTable("t", kvSchema, kvRow(2, 3))
	it := &Eval{
		Child: &MemScan{Table: tab},
		Name:  "prod",
		Fn:    func(r relation.Row) relation.Value { return relation.FloatVal(float64(r[0].I) * r[1].F) },
	}
	rows := collectRows(t, it)
	if rows[0][2].F != 6 {
		t.Fatalf("eval result %v", rows[0])
	}
	if it.Schema()[2].Name != "prod" {
		t.Fatal("eval schema name")
	}
}

func TestSeqScanAgainstHeap(t *testing.T) {
	db, err := OpenDB(filepath.Join(t.TempDir(), "db"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("nums", kvSchema)
	if err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	for i := 0; i < 2000; i++ {
		if scratch, err = tbl.Insert(kvRow(int64(i), float64(i)*0.5), scratch); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	count := 0
	err = Drain(&SeqScan{Ctx: context.Background(), Table: tbl}, func(r relation.Row) error {
		if r[0].I != int64(count) {
			t.Fatalf("row order broken at %d", count)
		}
		sum += r[1].F
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2000 || sum != 0.5*1999*2000/2 {
		t.Fatalf("count=%d sum=%v", count, sum)
	}
}

func TestCollect(t *testing.T) {
	tab := memTable("t", kvSchema, kvRow(1, 1), kvRow(2, 2))
	out, err := Collect(&MemScan{Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("len=%d", out.Len())
	}
}
