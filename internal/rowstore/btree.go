package rowstore

import (
	"sort"

	"github.com/genbase/genbase/internal/storage"
)

// BTree is a B+tree secondary index mapping int64 keys to heap-file record
// locators. Duplicate keys are supported (the microarray table has many rows
// per gene and per patient). Leaves are chained for range scans. The tree is
// memory resident and rebuilt at load time, like an index created after a
// bulk load.
type BTree struct {
	order int // max keys per node
	root  *btreeNode
	size  int
}

type btreeNode struct {
	leaf     bool
	keys     []int64
	children []*btreeNode    // internal nodes: len(keys)+1
	rids     [][]storage.RID // leaves: parallel to keys
	next     *btreeNode      // leaf chain
}

// NewBTree creates an empty index. Order 0 selects a sensible default.
func NewBTree(order int) *BTree {
	if order < 4 {
		order = 64
	}
	return &BTree{order: order, root: &btreeNode{leaf: true}}
}

// Len returns the number of (key, rid) entries.
func (t *BTree) Len() int { return t.size }

// Insert adds one entry.
func (t *BTree) Insert(key int64, rid storage.RID) {
	t.size++
	newChild, splitKey := t.insert(t.root, key, rid)
	if newChild != nil {
		t.root = &btreeNode{
			keys:     []int64{splitKey},
			children: []*btreeNode{t.root, newChild},
		}
	}
}

// insert descends; on child split returns the new right sibling and its
// separator key.
func (t *BTree) insert(n *btreeNode, key int64, rid storage.RID) (*btreeNode, int64) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.rids[i] = append(n.rids[i], rid)
			return nil, 0
		}
		n.keys = append(n.keys, 0)
		n.rids = append(n.rids, nil)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.rids[i+1:], n.rids[i:])
		n.keys[i] = key
		n.rids[i] = []storage.RID{rid}
		if len(n.keys) > t.order {
			return t.splitLeaf(n)
		}
		return nil, 0
	}
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	newChild, splitKey := t.insert(n.children[i], key, rid)
	if newChild == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.keys) > t.order {
		return t.splitInternal(n)
	}
	return nil, 0
}

func (t *BTree) splitLeaf(n *btreeNode) (*btreeNode, int64) {
	mid := len(n.keys) / 2
	right := &btreeNode{
		leaf: true,
		keys: append([]int64{}, n.keys[mid:]...),
		rids: append([][]storage.RID{}, n.rids[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.next = right
	return right, right.keys[0]
}

func (t *BTree) splitInternal(n *btreeNode) (*btreeNode, int64) {
	mid := len(n.keys) / 2
	splitKey := n.keys[mid]
	right := &btreeNode{
		keys:     append([]int64{}, n.keys[mid+1:]...),
		children: append([]*btreeNode{}, n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, splitKey
}

// findLeaf returns the leaf that would contain key.
func (t *BTree) findLeaf(key int64) *btreeNode {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.children[i]
	}
	return n
}

// Search returns the locators for an exact key (nil if absent).
func (t *BTree) Search(key int64) []storage.RID {
	n := t.findLeaf(key)
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.rids[i]
	}
	return nil
}

// Range calls fn for every entry with lo ≤ key < hi, in key order. fn
// returning false stops the scan.
func (t *BTree) Range(lo, hi int64, fn func(key int64, rids []storage.RID) bool) {
	n := t.findLeaf(lo)
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k >= hi {
				return
			}
			if !fn(k, n.rids[i]) {
				return
			}
		}
		n = n.next
	}
}

// CollectRIDs gathers the locators for a set of keys, sorted in physical
// file order — the bitmap-index-scan access pattern, which converts random
// index lookups into near-sequential page access.
func (t *BTree) CollectRIDs(keys []int64) []storage.RID {
	var out []storage.RID
	for _, k := range keys {
		out = append(out, t.Search(k)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}
