// Package rowstore is the conventional-RDBMS configuration (the paper's
// Postgres): tables live in slotted-page heap files behind a buffer pool,
// and queries execute through a Volcano-style tuple-at-a-time iterator
// executor (sequential scan, filter, hash join, sort, hash aggregate).
//
// Two analytics modes mirror the paper's configurations 2 and 3:
//
//   - ModeR ("Postgres + R"): data management runs in the row store, then
//     results are exported through a text COPY stream and re-parsed by the
//     external "R" process before the linalg kernels run — paying the
//     copy/reformat cost the paper highlights.
//   - ModeMadlib ("Postgres + Madlib"): analytics stay in the database.
//     Regression and covariance run as native (C++-like) UDFs; SVD and the
//     Wilcoxon statistics are *simulated in SQL and plpython*, i.e. executed
//     as relational plans through the interpreted executor, which is why
//     they are orders of magnitude slower (and, like the paper, often hit
//     the time cutoff). Biclustering is unsupported.
package rowstore

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/relation"
	"github.com/genbase/genbase/internal/storage"
)

// poolFrames is the per-table buffer pool size (frames × 8 KiB). Small
// enough that large tables do not fit, so scans hit the buffer manager.
const poolFrames = 512

// TableHandle couples a schema with its heap file and any secondary indexes.
type TableHandle struct {
	Name    string
	Schema  relation.Schema
	Heap    *storage.HeapFile
	indexes map[string]*BTree // column name → index
}

// CreateIndex registers a B+tree index on an int64 column; subsequent
// inserts maintain it (create indexes before bulk loading).
func (t *TableHandle) CreateIndex(col string) *BTree {
	if t.Schema[t.Schema.MustColIndex(col)].Kind != relation.KindInt64 {
		panic("rowstore: indexes are supported on int64 columns only")
	}
	if t.indexes == nil {
		t.indexes = make(map[string]*BTree)
	}
	idx := NewBTree(0)
	t.indexes[col] = idx
	return idx
}

// Index returns the index on col, or nil.
func (t *TableHandle) Index(col string) *BTree { return t.indexes[col] }

// DB is a catalog of heap-file tables rooted at a directory.
type DB struct {
	dir    string
	tables map[string]*TableHandle
}

// OpenDB creates a database rooted at dir (created if needed).
func OpenDB(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DB{dir: dir, tables: make(map[string]*TableHandle)}, nil
}

// CreateTable makes an empty table, replacing any previous one.
func (db *DB) CreateTable(name string, schema relation.Schema) (*TableHandle, error) {
	if old, ok := db.tables[name]; ok {
		old.Heap.Remove()
		delete(db.tables, name)
	}
	h, err := storage.CreateHeapFile(filepath.Join(db.dir, name+".heap"), poolFrames)
	if err != nil {
		return nil, err
	}
	t := &TableHandle{Name: name, Schema: schema, Heap: h}
	db.tables[name] = t
	return t, nil
}

// Table returns a handle by name.
func (db *DB) Table(name string) (*TableHandle, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("rowstore: no table %q", name)
	}
	return t, nil
}

// Close closes every table's heap file and removes the directory.
func (db *DB) Close() error {
	var firstErr error
	for _, t := range db.tables {
		if err := t.Heap.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	os.Remove(db.dir)
	return firstErr
}

// Insert encodes and appends a row, maintaining any indexes.
func (t *TableHandle) Insert(r relation.Row, scratch []byte) ([]byte, error) {
	buf := relation.EncodeRow(t.Schema, r, scratch[:0])
	if len(t.indexes) == 0 {
		return buf, t.Heap.Append(buf)
	}
	rid, err := t.Heap.AppendLocated(buf)
	if err != nil {
		return buf, err
	}
	for col, idx := range t.indexes {
		idx.Insert(r[t.Schema.MustColIndex(col)].I, rid)
	}
	return buf, nil
}

// Schemas for the four benchmark tables (paper §3.1, relational form).
var (
	MicroarraySchema = relation.Schema{
		{Name: "geneid", Kind: relation.KindInt64},
		{Name: "patientid", Kind: relation.KindInt64},
		{Name: "expressionvalue", Kind: relation.KindFloat64},
	}
	PatientsSchema = relation.Schema{
		{Name: "patientid", Kind: relation.KindInt64},
		{Name: "age", Kind: relation.KindInt64},
		{Name: "gender", Kind: relation.KindInt64},
		{Name: "zipcode", Kind: relation.KindInt64},
		{Name: "diseaseid", Kind: relation.KindInt64},
		{Name: "drugresponse", Kind: relation.KindFloat64},
	}
	GenesSchema = relation.Schema{
		{Name: "geneid", Kind: relation.KindInt64},
		{Name: "target", Kind: relation.KindInt64},
		{Name: "position", Kind: relation.KindInt64},
		{Name: "length", Kind: relation.KindInt64},
		{Name: "function", Kind: relation.KindInt64},
	}
	GOSchema = relation.Schema{
		{Name: "geneid", Kind: relation.KindInt64},
		{Name: "goid", Kind: relation.KindInt64},
		{Name: "belongs", Kind: relation.KindInt64},
	}
)

// LoadDataset bulk-loads the four benchmark tables from the neutral dataset.
func (db *DB) LoadDataset(ds *datagen.Dataset) error {
	micro, err := db.CreateTable("microarray", MicroarraySchema)
	if err != nil {
		return err
	}
	// Index the fact table on patient id: Q2/Q3's selective patient filters
	// use a bitmap index scan instead of scanning all of microarray.
	micro.CreateIndex("patientid")
	var scratch []byte
	row := make(relation.Row, 3)
	for p := 0; p < ds.Dims.Patients; p++ {
		vals := ds.Expression.Row(p)
		for g, v := range vals {
			row[0] = relation.IntVal(int64(g))
			row[1] = relation.IntVal(int64(p))
			row[2] = relation.FloatVal(v)
			if scratch, err = micro.Insert(row, scratch); err != nil {
				return err
			}
		}
	}

	pats, err := db.CreateTable("patients", PatientsSchema)
	if err != nil {
		return err
	}
	prow := make(relation.Row, 6)
	for _, p := range ds.Patients {
		prow[0] = relation.IntVal(int64(p.ID))
		prow[1] = relation.IntVal(int64(p.Age))
		prow[2] = relation.IntVal(int64(p.Gender))
		prow[3] = relation.IntVal(int64(p.Zipcode))
		prow[4] = relation.IntVal(int64(p.DiseaseID))
		prow[5] = relation.FloatVal(p.DrugResponse)
		if scratch, err = pats.Insert(prow, scratch); err != nil {
			return err
		}
	}

	genes, err := db.CreateTable("genes", GenesSchema)
	if err != nil {
		return err
	}
	grow := make(relation.Row, 5)
	for _, g := range ds.Genes {
		grow[0] = relation.IntVal(int64(g.ID))
		grow[1] = relation.IntVal(int64(g.Target))
		grow[2] = relation.IntVal(int64(g.Position))
		grow[3] = relation.IntVal(int64(g.Length))
		grow[4] = relation.IntVal(int64(g.Function))
		if scratch, err = genes.Insert(grow, scratch); err != nil {
			return err
		}
	}

	gotab, err := db.CreateTable("go", GOSchema)
	if err != nil {
		return err
	}
	orow := make(relation.Row, 3)
	for g := 0; g < ds.Dims.Genes; g++ {
		for t := 0; t < ds.Dims.GOTerms; t++ {
			if ds.GOAt(g, t) != 1 {
				continue
			}
			orow[0] = relation.IntVal(int64(g))
			orow[1] = relation.IntVal(int64(t))
			orow[2] = relation.IntVal(1)
			if scratch, err = gotab.Insert(orow, scratch); err != nil {
				return err
			}
		}
	}
	return nil
}
