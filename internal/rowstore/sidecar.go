package rowstore

import (
	"context"
	"fmt"
	"path/filepath"
	"slices"

	"github.com/genbase/genbase/internal/colpage"
	"github.com/genbase/genbase/internal/engine"
	planir "github.com/genbase/genbase/internal/plan"
	"github.com/genbase/genbase/internal/relation"
	"github.com/genbase/genbase/internal/storage"
)

// The columnar sidecar is the row store's compressed twin of a heap table:
// one auxiliary heap file per column ("<table>.<col>.colseg") whose records
// are colpage-encoded segments of sidecarSegmentRows rows each, written in
// heap order at load time. Scans that today decode every record through
// ColumnBatch.DecodeColumns can instead parse one page per 1000 rows and
// push structured predicates down to the encoded form; because segments
// preserve heap order exactly, every consumer sees rows in the same order as
// the row-at-a-time plan and answers stay bitwise identical (DESIGN.md §15).
// The -compress=false ablation ignores the sidecar and runs the historical
// decode-then-filter paths.

const (
	// sidecarSegmentRows is the segment length. A raw 1000-row segment
	// serializes to 8004 bytes, inside the heap-record cap (PageSize−16), so
	// even an incompressible column always flushes.
	sidecarSegmentRows = 1000
	// sidecarPoolFrames keeps the per-column buffer pools small: segment
	// scans are sequential, so a handful of frames suffices.
	sidecarPoolFrames = 64
)

// tableSidecar holds the per-column segment heaps of one table, parallel to
// its schema.
type tableSidecar struct {
	schema relation.Schema
	n      int // total rows across segments
	heaps  []*storage.HeapFile
}

// buildTableSidecar scans the heap table columnar and writes each column's
// values as compressed segments. Only int64/float64 columns are supported
// (the benchmark tables are all fixed-width).
func buildTableSidecar(ctx context.Context, db *DB, name string) (*tableSidecar, error) {
	t, err := db.Table(name)
	if err != nil {
		return nil, err
	}
	sc := &tableSidecar{schema: t.Schema, heaps: make([]*storage.HeapFile, len(t.Schema))}
	for i, col := range t.Schema {
		if col.Kind != relation.KindInt64 && col.Kind != relation.KindFloat64 {
			sc.remove()
			return nil, fmt.Errorf("rowstore: sidecar column %s.%s is not fixed-width", name, col.Name)
		}
		h, err := storage.CreateHeapFile(filepath.Join(db.dir, name+"."+col.Name+".colseg"), sidecarPoolFrames)
		if err != nil {
			sc.remove()
			return nil, err
		}
		sc.heaps[i] = h
	}

	ints := make([][]int64, len(t.Schema))
	flts := make([][]float64, len(t.Schema))
	for i, col := range t.Schema {
		if col.Kind == relation.KindInt64 {
			ints[i] = make([]int64, 0, sidecarSegmentRows)
		} else {
			flts[i] = make([]float64, 0, sidecarSegmentRows)
		}
	}
	buffered := 0
	var enc []byte
	flush := func() error {
		if buffered == 0 {
			return nil
		}
		for i, col := range t.Schema {
			if col.Kind == relation.KindInt64 {
				enc = colpage.BuildInt(ints[i]).AppendEncoded(enc[:0])
				ints[i] = ints[i][:0]
			} else {
				enc = colpage.BuildFloat(flts[i]).AppendEncoded(enc[:0])
				flts[i] = flts[i][:0]
			}
			if err := sc.heaps[i].Append(enc); err != nil {
				return err
			}
		}
		buffered = 0
		return nil
	}
	err = scanColumnar(ctx, t, func(b *relation.ColumnBatch) error {
		rows, off := b.Len(), 0
		for off < rows {
			take := min(sidecarSegmentRows-buffered, rows-off)
			for i, col := range t.Schema {
				if col.Kind == relation.KindInt64 {
					ints[i] = append(ints[i], b.Ints[i][off:off+take]...)
				} else {
					flts[i] = append(flts[i], b.Floats[i][off:off+take]...)
				}
			}
			buffered += take
			sc.n += take
			off += take
			if buffered == sidecarSegmentRows {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		sc.remove()
		return nil, err
	}
	return sc, nil
}

// remove drops every segment heap (table teardown).
func (sc *tableSidecar) remove() error {
	var firstErr error
	for _, h := range sc.heaps {
		if h == nil {
			continue
		}
		if err := h.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// colIdx resolves a column name against the sidecar's schema.
func (sc *tableSidecar) colIdx(name string) int { return sc.schema.MustColIndex(name) }

// encodedBytes sums the serialized segment payloads of every column (the
// scan microbench reports it as the compressed footprint).
func (sc *tableSidecar) encodedBytes() (int64, error) {
	var total int64
	for _, h := range sc.heaps {
		cur := h.NewCursor()
		for {
			rec, ok, err := cur.Next()
			if err != nil {
				cur.Close()
				return 0, err
			}
			if !ok {
				break
			}
			total += int64(len(rec))
		}
		cur.Close()
	}
	return total, nil
}

// intSegs opens a segment cursor over an int column.
func (sc *tableSidecar) intSegs(col string) *intSegCursor {
	return &intSegCursor{cur: sc.heaps[sc.colIdx(col)].NewCursor()}
}

// floatSegs opens a segment cursor over a float column.
func (sc *tableSidecar) floatSegs(col string) *floatSegCursor {
	return &floatSegCursor{cur: sc.heaps[sc.colIdx(col)].NewCursor()}
}

// intSegCursor streams a column's segments as parsed pages. Next returns
// nil at end of column. ParseInt copies out of the pinned page bytes, so the
// returned page stays valid after the cursor advances.
type intSegCursor struct{ cur *storage.Cursor }

func (c *intSegCursor) Next() (*colpage.IntPage, error) {
	rec, ok, err := c.cur.Next()
	if err != nil || !ok {
		return nil, err
	}
	return colpage.ParseInt(rec)
}

func (c *intSegCursor) Close() { c.cur.Close() }

// floatSegCursor is intSegCursor for float columns.
type floatSegCursor struct{ cur *storage.Cursor }

func (c *floatSegCursor) Next() (*colpage.FloatPage, error) {
	rec, ok, err := c.cur.Next()
	if err != nil || !ok {
		return nil, err
	}
	return colpage.ParseFloat(rec)
}

func (c *floatSegCursor) Close() { c.cur.Close() }

// pushdownPred translates a planner predicate into the colpage form (both
// carry exactly LT/EQ against an int64).
func pushdownPred(p planir.Pred) colpage.Pred {
	op := colpage.LT
	if p.Op == planir.CmpEQ {
		op = colpage.EQ
	}
	return colpage.Pred{Op: op, Val: p.Val}
}

// selectIDsCompressed runs σ(preds) against the encoded segments: per
// segment the first predicate selects directly on its column page
// (dictionary-code equality, RLE run skipping, packed-word range tests),
// later conjuncts refine the selection vector, and the survivors gather the
// id page — filtered-out rows are never decoded. The final ascending sort
// matches the Volcano plan's SortOp, so the ids are identical.
func selectIDsCompressed(ctx context.Context, sc *tableSidecar, idName string, preds []planir.Pred) ([]int64, error) {
	curs := make([]*intSegCursor, len(preds))
	for i, p := range preds {
		curs[i] = sc.intSegs(p.Col)
		defer curs[i].Close()
	}
	idCur := sc.intSegs(idName)
	defer idCur.Close()
	var ids []int64
	var sel []int32
	for {
		idPg, err := idCur.Next()
		if err != nil {
			return nil, err
		}
		if idPg == nil {
			break
		}
		if err := engine.CheckCtx(ctx); err != nil {
			return nil, err
		}
		sel = sel[:0]
		for i, p := range preds {
			pg, err := curs[i].Next()
			if err != nil {
				return nil, err
			}
			if pg == nil || pg.Len() != idPg.Len() {
				return nil, fmt.Errorf("rowstore: sidecar segments misaligned for %s", p.Col)
			}
			if i == 0 {
				sel = pg.Select(pushdownPred(p), sel)
			} else {
				sel = pg.RefinePred(pushdownPred(p), sel)
			}
		}
		ids = idPg.Gather(sel, ids)
	}
	slices.Sort(ids)
	return ids, nil
}

// sampleSumsCompressed accumulates Q5's per-gene sums over the sampled
// patients straight off the microarray segments: the modulus runs once per
// patientid run (the fact table is loaded patient-major, so runs span whole
// patients) and only surviving positions gather geneid/value. Segments come
// in heap order, so the sums accumulate bitwise identically to the dense
// columnar scan and the hash aggregate.
func (e *Engine) sampleSumsCompressed(ctx context.Context, step int, sums []float64, counts []int64) error {
	sc := e.sidecars["microarray"]
	pCur := sc.intSegs("patientid")
	defer pCur.Close()
	gCur := sc.intSegs("geneid")
	defer gCur.Close()
	vCur := sc.floatSegs("expressionvalue")
	defer vCur.Close()
	step64 := int64(step)
	sample := func(v int64) bool { return v%step64 == 0 }
	var sel []int32
	var gids []int64
	var vals []float64
	for {
		pPg, err := pCur.Next()
		if err != nil {
			return err
		}
		if pPg == nil {
			return nil
		}
		gPg, err := gCur.Next()
		if err != nil {
			return err
		}
		vPg, err := vCur.Next()
		if err != nil {
			return err
		}
		if gPg == nil || vPg == nil || gPg.Len() != pPg.Len() || vPg.Len() != pPg.Len() {
			return fmt.Errorf("rowstore: microarray sidecar segments misaligned")
		}
		if err := engine.CheckCtx(ctx); err != nil {
			return err
		}
		sel = pPg.SelectFn(sample, sel[:0])
		if len(sel) == 0 {
			continue
		}
		gids = gPg.Gather(sel, gids[:0])
		vals = vPg.Gather(sel, vals[:0])
		for i, g := range gids {
			sums[g] += vals[i]
			counts[g]++
		}
	}
}

// scanColumnarCompressed is the sidecar twin of scanColumnar: it decodes
// whole segments into a ColumnBatch (one page parse per column per 1000
// rows instead of one DecodeColumns per record) and hands batches to fn in
// heap order, so consumers accumulate in exactly the order of the dense
// scan.
func scanColumnarCompressed(ctx context.Context, sc *tableSidecar, fn func(*relation.ColumnBatch) error) error {
	intCurs := make([]*intSegCursor, len(sc.schema))
	fltCurs := make([]*floatSegCursor, len(sc.schema))
	for i, col := range sc.schema {
		if col.Kind == relation.KindInt64 {
			intCurs[i] = sc.intSegs(col.Name)
			defer intCurs[i].Close()
		} else {
			fltCurs[i] = sc.floatSegs(col.Name)
			defer fltCurs[i].Close()
		}
	}
	batch := relation.NewColumnBatch(sc.schema, sidecarSegmentRows)
	var intScratch []int64
	var fltScratch []float64
	for {
		segLen := -1
		for i, col := range sc.schema {
			n := -1
			if intCurs[i] != nil {
				pg, err := intCurs[i].Next()
				if err != nil {
					return err
				}
				if pg != nil {
					intScratch = pg.AppendTo(intScratch[:0])
					batch.AppendInts(i, intScratch)
					n = pg.Len()
				}
			} else {
				pg, err := fltCurs[i].Next()
				if err != nil {
					return err
				}
				if pg != nil {
					fltScratch = pg.AppendTo(fltScratch[:0])
					batch.AppendFloats(i, fltScratch)
					n = pg.Len()
				}
			}
			if n == -1 {
				if i == 0 {
					return nil // all columns exhaust in lockstep
				}
				return fmt.Errorf("rowstore: sidecar column %s ended early", col.Name)
			}
			if segLen == -1 {
				segLen = n
			} else if segLen != n {
				return fmt.Errorf("rowstore: sidecar column %s segment has %d rows, want %d", col.Name, n, segLen)
			}
		}
		if err := batch.GrowRows(segLen); err != nil {
			return err
		}
		if err := engine.CheckCtx(ctx); err != nil {
			return err
		}
		if err := fn(batch); err != nil {
			return err
		}
		batch.Reset()
	}
}
