package rowstore

import (
	"context"
	"sort"
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/relation"
	"github.com/genbase/genbase/internal/storage"
)

func TestBTreeInsertSearch(t *testing.T) {
	bt := NewBTree(4) // tiny order to force splits
	for i := int64(0); i < 1000; i++ {
		bt.Insert(i*7%1000, storage.RID{Page: i, Slot: int(i % 10)})
	}
	if bt.Len() != 1000 {
		t.Fatalf("len=%d", bt.Len())
	}
	for _, k := range []int64{0, 7, 993, 500} {
		rids := bt.Search(k)
		if len(rids) != 1 {
			t.Fatalf("key %d: %d rids", k, len(rids))
		}
	}
	if bt.Search(12345) != nil {
		t.Fatal("absent key must return nil")
	}
}

func TestBTreeDuplicates(t *testing.T) {
	bt := NewBTree(4)
	for i := int64(0); i < 100; i++ {
		bt.Insert(i%5, storage.RID{Page: i})
	}
	for k := int64(0); k < 5; k++ {
		if len(bt.Search(k)) != 20 {
			t.Fatalf("key %d: %d rids, want 20", k, len(bt.Search(k)))
		}
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree(4)
	for i := int64(0); i < 200; i += 2 { // even keys only
		bt.Insert(i, storage.RID{Page: i})
	}
	var keys []int64
	bt.Range(50, 100, func(k int64, rids []storage.RID) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 25 || keys[0] != 50 || keys[24] != 98 {
		t.Fatalf("range keys: %v", keys)
	}
	if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
		t.Fatal("range not in key order")
	}
	// Early stop.
	count := 0
	bt.Range(0, 1000, func(int64, []storage.RID) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d", count)
	}
}

// Property: the B+tree agrees with a reference multimap under random
// workloads, and range scans visit keys in sorted order.
func TestBTreeMatchesReferenceMap(t *testing.T) {
	f := func(keys []int16) bool {
		bt := NewBTree(6)
		ref := map[int64]int{}
		for i, k16 := range keys {
			k := int64(k16)
			bt.Insert(k, storage.RID{Page: int64(i)})
			ref[k]++
		}
		for k, n := range ref {
			if len(bt.Search(k)) != n {
				return false
			}
		}
		// Full-range scan sees every key exactly once, ascending.
		prev := int64(-1 << 62)
		seen := 0
		bt.Range(-1<<62, 1<<62, func(k int64, rids []storage.RID) bool {
			if k <= prev {
				return false
			}
			prev = k
			seen += len(rids)
			return true
		})
		return seen == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectRIDsPhysicalOrder(t *testing.T) {
	bt := NewBTree(8)
	bt.Insert(1, storage.RID{Page: 9, Slot: 0})
	bt.Insert(2, storage.RID{Page: 3, Slot: 5})
	bt.Insert(1, storage.RID{Page: 3, Slot: 1})
	rids := bt.CollectRIDs([]int64{1, 2})
	if len(rids) != 3 {
		t.Fatalf("rids=%v", rids)
	}
	for i := 1; i < len(rids); i++ {
		if rids[i].Less(rids[i-1]) {
			t.Fatalf("not in physical order: %v", rids)
		}
	}
}

func TestBitmapScanFetchesExactRows(t *testing.T) {
	db, err := OpenDB(t.TempDir() + "/db")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("kv", kvSchema)
	if err != nil {
		t.Fatal(err)
	}
	idx := tbl.CreateIndex("k")
	var scratch []byte
	for i := 0; i < 5000; i++ {
		if scratch, err = tbl.Insert(kvRow(int64(i%50), float64(i)), scratch); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 5000 {
		t.Fatalf("index has %d entries", idx.Len())
	}
	rids := idx.CollectRIDs([]int64{7, 13})
	if len(rids) != 200 {
		t.Fatalf("collected %d rids", len(rids))
	}
	count := 0
	err = Drain(&BitmapScan{Ctx: context.Background(), Table: tbl, RIDs: rids}, func(r relation.Row) error {
		if r[0].I != 7 && r[0].I != 13 {
			t.Fatalf("unexpected key %d", r[0].I)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("scanned %d rows", count)
	}
}

// The planner must produce identical query answers whichever access path it
// picks — verified by comparing the pivot built from a selective patient set
// against the hash-join path on the same data.
func TestIndexPlanMatchesSeqScanPlan(t *testing.T) {
	e := loaded(t, ModeR)
	ctx := context.Background()
	// Selective set (uses the bitmap index) vs nil (all patients, seq scan).
	sel := []int64{1, 5, 9}
	viaIndex, err := e.pivotJoin(ctx, nil, sel)
	if err != nil {
		t.Fatal(err)
	}
	full, err := e.pivotJoin(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, pid := range sel {
		for j := 0; j < viaIndex.Cols; j++ {
			if viaIndex.At(k, j) != full.At(int(pid), j) {
				t.Fatalf("mismatch at patient %d gene %d", pid, j)
			}
		}
	}
}
