package rowstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	planir "github.com/genbase/genbase/internal/plan"
	"github.com/genbase/genbase/internal/relation"
)

// The row store's physical operators (plan.Physical): selections and scans
// run as Volcano plans over the slotted heap pages, pivots as hash/bitmap
// join plans (or the columnar zero-copy decode), and the kernels either ship
// operands to external R over the text COPY boundary (ModeR) or run
// in-database, Madlib-style — native where Madlib has C++ implementations,
// simulated SQL plans elsewhere (ModeMadlib).

// Capabilities implements plan.Physical. Madlib lacks a biclustering routine
// ("Hadoop and Postgres + Madlib do not provide sufficient analytics
// functions to run the biclustering query"), so that kernel is simply not
// registered — Supports derives the unsupported answer from its absence.
func (e *Engine) Capabilities() planir.OpSet {
	caps := planir.AllOps()
	if e.mode == ModeMadlib {
		caps = caps.Without(planir.OpKernelBicluster)
	}
	return caps
}

// Dims implements plan.Physical.
func (e *Engine) Dims() (int, int) { return e.numPatients, e.numGenes }

// tableMeta resolves an IR table name to the heap table, its schema, and
// its id column.
func (e *Engine) tableMeta(table string) (*TableHandle, relation.Schema, string, error) {
	switch table {
	case planir.TableGenes:
		t, err := e.db.Table("genes")
		return t, GenesSchema, "geneid", err
	case planir.TablePatients:
		t, err := e.db.Table("patients")
		return t, PatientsSchema, "patientid", err
	default:
		return nil, nil, "", fmt.Errorf("rowstore: no physical select over table %q", table)
	}
}

// SelectIDs implements plan.Physical: σ(pred)(table), returning ascending
// ids. With compression on the predicates push down to the columnar
// sidecar's encoded segments (sidecar.go); the -compress=false ablation and
// the no-predicate case run the historical scan → filter → project → sort
// Volcano plan.
func (e *Engine) SelectIDs(ctx context.Context, table string, preds []planir.Pred) ([]int64, error) {
	t, schema, idName, err := e.tableMeta(table)
	if err != nil {
		return nil, err
	}
	if sc := e.sidecars[t.Name]; sc != nil && engine.CompressionEnabled() && len(preds) > 0 {
		return selectIDsCompressed(ctx, sc, idName, preds)
	}
	cols := make([]int, len(preds))
	for i, p := range preds {
		cols[i] = schema.MustColIndex(p.Col)
	}
	idCol := schema.MustColIndex(idName)
	pln := &SortOp{
		Child: &Project{
			Child: &Filter{
				Child: &SeqScan{Ctx: ctx, Table: t},
				Pred: func(r relation.Row) bool {
					for i, p := range preds {
						if !p.Eval(r[cols[i]].I) {
							return false
						}
					}
					return true
				},
			},
			Cols: []int{idCol},
		},
		Less: func(a, b relation.Row) bool { return a[0].I < b[0].I },
	}
	var ids []int64
	if err := Drain(pln, func(r relation.Row) error {
		ids = append(ids, r[0].I)
		return nil
	}); err != nil {
		return nil, err
	}
	return ids, nil
}

// ScanFloats implements plan.Physical via the drug-response projection scan;
// a cohort subset is gathered from the id-ordered vector.
func (e *Engine) ScanFloats(ctx context.Context, table, col string, ids []int64) ([]float64, error) {
	if table != planir.TablePatients || col != planir.ColDrugResponse {
		return nil, fmt.Errorf("rowstore: no physical scan for %s.%s", table, col)
	}
	y, err := e.drugResponses(ctx)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		return y, nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = y[id]
	}
	return out, nil
}

// Pivot implements plan.Physical via the join + restructure plan (bitmap
// index scan when the patient predicate is selective, hash join otherwise).
func (e *Engine) Pivot(ctx context.Context, patientIDs, geneIDs []int64) (*linalg.Matrix, error) {
	return e.pivotJoin(ctx, geneIDs, patientIDs)
}

// SampleMeans implements plan.Physical via the filter + hash-aggregate plan
// (or its columnar zero-copy twin).
func (e *Engine) SampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	return e.sampleMeans(ctx, step)
}

// GOMembers implements plan.Physical via the GO-table scan grouped by term.
func (e *Engine) GOMembers(ctx context.Context) ([][]int32, error) {
	return e.goMembers(ctx)
}

// GeneMeta implements plan.Physical via the gene-metadata scan Q2's final
// join consumes.
func (e *Engine) GeneMeta(ctx context.Context) (engine.GeneMeta, error) {
	fns, err := e.geneFunctions(ctx)
	if err != nil {
		return nil, err
	}
	return funcLookup{fns}, nil
}

// RunRegression implements plan.Physical. ModeR ships both operands through
// the text COPY boundary first; Madlib's linear regression is a native C++
// UDF and R's lm is native LAPACK — both reduce to the same QR solve.
func (e *Engine) RunRegression(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, y []float64) ([]float64, float64, error) {
	var err error
	if e.mode == ModeR {
		if x, err = analytics.TransferMatrixTimed(ctx, e.glue, sw, x); err != nil {
			return nil, 0, err
		}
		if y, err = e.glue.TransferVector(ctx, y); err != nil {
			linalg.PutMatrix(x)
			return nil, 0, err
		}
	}
	sw.StartAnalytics()
	return engine.FitLeastSquares(x, y)
}

// RunCovariance implements plan.Physical.
func (e *Engine) RunCovariance(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix) (*linalg.Matrix, error) {
	var err error
	if e.mode == ModeR {
		if x, err = analytics.TransferMatrixTimed(ctx, e.glue, sw, x); err != nil {
			return nil, err
		}
	}
	sw.StartAnalytics()
	return engine.CovarianceHost(x, e.Workers), nil
}

// RunSVD implements plan.Physical. Madlib SVD "in effect simulate[s] matrix
// computations in SQL and plpython": Lanczos runs with every mat-vec as a
// relational plan. ModeR ships the matrix to external R and runs the native
// kernel.
func (e *Engine) RunSVD(ctx context.Context, sw *engine.StopWatch, a *linalg.Matrix, k int, seed uint64) ([]float64, error) {
	if e.mode == ModeMadlib {
		sw.StartAnalytics()
		sv, err := e.madlibSVD(ctx, a, k, seed)
		linalg.PutMatrix(a)
		if err != nil {
			return nil, err
		}
		return sv, nil
	}
	a, err := analytics.TransferMatrixTimed(ctx, e.glue, sw, a)
	if err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	return engine.TopKSingularValues(a, k, seed, e.Workers)
}

// RunBicluster implements plan.Physical (ModeR only — Madlib does not
// register this kernel).
func (e *Engine) RunBicluster(ctx context.Context, sw *engine.StopWatch, x *linalg.Matrix, maxB int, seed uint64) ([]bicluster.Bicluster, error) {
	x, err := analytics.TransferMatrixTimed(ctx, e.glue, sw, x)
	if err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	blocks, err := bicluster.Run(x, bicluster.Options{MaxBiclusters: maxB, Seed: seed})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// RunStats implements plan.Physical. Wilcoxon has no Madlib native; the
// ranking and rank-sums run as relational plans (SQL simulation). ModeR
// ships the means vector to external R.
func (e *Engine) RunStats(ctx context.Context, sw *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	if e.mode == ModeMadlib {
		sw.StartAnalytics()
		return e.madlibWilcoxon(ctx, means, members, sampled)
	}
	var err error
	sw.StartTransfer()
	if means, err = e.glue.TransferVector(ctx, means); err != nil {
		return nil, err
	}
	sw.StartAnalytics()
	return engine.EnrichmentTest(ctx, means, members, sampled)
}

// PhysicalName implements plan.Physical.
func (e *Engine) PhysicalName(k planir.OpKind) string {
	kernel := "external R (text COPY)"
	if e.mode == ModeMadlib {
		kernel = "in-database Madlib (native C++ / simulated SQL)"
	}
	switch k {
	case planir.OpSelectPred:
		if engine.CompressionEnabled() {
			return "sidecar-segment pushdown (dict-code EQ, run skip, packed-word LT)"
		}
		return "Volcano scan-filter-sort plan"
	case planir.OpScanTable:
		return "heap projection scan"
	case planir.OpSamplePatients:
		return "patient-id modulus"
	case planir.OpPivotMicro:
		return "bitmap/hash join + restructure"
	case planir.OpKernelRegression, planir.OpKernelCovariance, planir.OpKernelSVD, planir.OpKernelStats:
		return kernel
	case planir.OpKernelBicluster:
		if e.mode == ModeMadlib {
			return "unsupported"
		}
		return "Cheng-Church via " + kernel
	case planir.OpTopKByAbs:
		return "shared covariance summary"
	case planir.OpEmit:
		return "answer assembly"
	default:
		return "unsupported"
	}
}
