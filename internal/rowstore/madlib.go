package rowstore

import (
	"context"
	"math"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/relation"
	"github.com/genbase/genbase/internal/stats"
)

// This file implements the "Postgres + Madlib" analytics that the paper
// describes as "simulate[d] ... in SQL and plpython, rather than performing
// them natively": every Lanczos mat-vec and every Wilcoxon ranking executes
// as a relational plan through the interpreted Volcano executor. The
// numerical results are identical to the native kernels — only the execution
// path (and therefore the cost) differs, which is exactly the paper's point.

// tripleSchema is the temp-table layout for a dense matrix in SQL form.
var tripleSchema = relation.Schema{
	{Name: "row", Kind: relation.KindInt64},
	{Name: "col", Kind: relation.KindInt64},
	{Name: "val", Kind: relation.KindFloat64},
}

// tripleTable converts a dense matrix into the (row, col, val) temp table
// the simulated-SQL operators scan.
func tripleTable(a *linalg.Matrix) *relation.Table {
	t := relation.NewTable("matrix", tripleSchema)
	t.Rows = make([]relation.Row, 0, a.Rows*a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			t.Rows = append(t.Rows, relation.Row{
				relation.IntVal(int64(i)), relation.IntVal(int64(j)), relation.FloatVal(v),
			})
		}
	}
	return t
}

// vecTable converts a vector into a (idx, x) temp table.
func vecTable(x []float64) *relation.Table {
	t := relation.NewTable("vec", relation.Schema{
		{Name: "idx", Kind: relation.KindInt64},
		{Name: "x", Kind: relation.KindFloat64},
	})
	t.Rows = make([]relation.Row, len(x))
	for i, v := range x {
		t.Rows[i] = relation.Row{relation.IntVal(int64(i)), relation.FloatVal(v)}
	}
	return t
}

// sqlATAOperator applies x ↦ Aᵀ(A·x) with both mat-vecs expressed as
// join + aggregate plans over the matrix temp table.
type sqlATAOperator struct {
	ctx     context.Context
	triples *relation.Table
	rows    int
	cols    int
	err     error
}

// Dim implements linalg.LinearOperator.
func (o *sqlATAOperator) Dim() int { return o.cols }

// Apply implements linalg.LinearOperator. Lanczos's contract has no error
// return, so plan failures (e.g. context timeout) are latched in o.err and
// surfaced by the caller after Lanczos returns.
func (o *sqlATAOperator) Apply(x []float64) []float64 {
	if o.err != nil {
		return make([]float64, o.cols)
	}
	// y(row) = Σ val·x(col): SELECT row, SUM(val*x) FROM A JOIN xv ON col=idx GROUP BY row.
	y := make([]float64, o.rows)
	if err := o.matVecPlan(vecTable(x), 1, 0, y); err != nil {
		o.err = err
		return make([]float64, o.cols)
	}
	// z(col) = Σ val·y(row): SELECT col, SUM(val*y) FROM A JOIN yv ON row=idx GROUP BY col.
	z := make([]float64, o.cols)
	if err := o.matVecPlan(vecTable(y), 0, 1, z); err != nil {
		o.err = err
		return make([]float64, o.cols)
	}
	return z
}

// matVecPlan runs one join+aggregate mat-vec. joinCol is the triple column
// joined against the vector's idx; groupCol is the triple column grouped on.
func (o *sqlATAOperator) matVecPlan(vec *relation.Table, joinCol, groupCol int, out []float64) error {
	// Joined row layout: [row col val idx x], product appended at index 5.
	plan := &HashAgg{
		Child: &Eval{
			Child: &HashJoin{
				Build:    &MemScan{Table: vec},
				Probe:    &MemScan{Ctx: o.ctx, Table: o.triples},
				BuildKey: 0,
				ProbeKey: joinCol,
			},
			Name: "prod",
			Fn: func(r relation.Row) relation.Value {
				return relation.FloatVal(r[2].F * r[4].F)
			},
		},
		Key:  groupCol,
		Aggs: []AggSpec{{Col: 5, Kind: AggSum}},
	}
	return Drain(plan, func(r relation.Row) error {
		out[r[0].I] = r[1].F
		return nil
	})
}

// madlibSVD runs Lanczos with simulated-SQL mat-vecs and returns the top-k
// singular values of a.
func (e *Engine) madlibSVD(ctx context.Context, a *linalg.Matrix, k int, seed uint64) ([]float64, error) {
	// The mat-vecs run as relational plans (that is the configuration's
	// point), so only the driver-side Ritz assembly uses the worker pool.
	op := &sqlATAOperator{ctx: ctx, triples: tripleTable(a), rows: a.Rows, cols: a.Cols}
	eig, err := linalg.Lanczos(op, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed, Workers: e.Workers})
	if op.err != nil {
		return nil, op.err
	}
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig.Values))
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[i] = math.Sqrt(lam)
	}
	return sv, nil
}

// madlibWilcoxon runs Q5's enrichment as a naive SQL formulation: for every
// GO term the gene ranking is recomputed with an ORDER BY plan (a correlated
// subquery — SQL before window functions), the member ranks are joined, and
// the rank-sum test statistic evaluated. Results are identical to the native
// path; only the cost differs.
func (e *Engine) madlibWilcoxon(ctx context.Context, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	meansTable := relation.NewTable("means", relation.Schema{
		{Name: "geneid", Kind: relation.KindInt64},
		{Name: "mean", Kind: relation.KindFloat64},
	})
	meansTable.Rows = make([]relation.Row, len(means))
	for i, v := range means {
		meansTable.Rows[i] = relation.Row{relation.IntVal(int64(i)), relation.FloatVal(v)}
	}

	ans := &engine.StatsAnswer{SampledPatients: sampled}
	ranks := make([]float64, len(means))
	for t, genes := range members {
		if err := engine.CheckCtx(ctx); err != nil {
			return nil, err
		}
		// ORDER BY mean: recomputed per term, as the correlated formulation
		// would.
		sorted := &SortOp{
			Child: &MemScan{Ctx: ctx, Table: meansTable},
			Less:  func(a, b relation.Row) bool { return a[1].F < b[1].F },
		}
		var ordered []relation.Row
		if err := Drain(sorted, func(r relation.Row) error {
			ordered = append(ordered, r.Clone())
			return nil
		}); err != nil {
			return nil, err
		}
		var ties []int
		for i := 0; i < len(ordered); {
			j := i
			for j+1 < len(ordered) && ordered[j+1][1].F == ordered[i][1].F {
				j++
			}
			mid := float64(i+j+2) / 2
			for k := i; k <= j; k++ {
				ranks[ordered[k][0].I] = mid
			}
			if j > i {
				ties = append(ties, j-i+1)
			}
			i = j + 1
		}
		// Join member genes with their ranks.
		memberTable := relation.NewTable("members", relation.Schema{{Name: "geneid", Kind: relation.KindInt64}})
		for _, g := range genes {
			memberTable.Rows = append(memberTable.Rows, relation.Row{relation.IntVal(int64(g))})
		}
		join := &HashJoin{
			Build:    &MemScan{Table: memberTable},
			Probe:    &MemScan{Ctx: ctx, Table: meansTable},
			BuildKey: 0,
			ProbeKey: 0,
		}
		var inRanks []float64
		if err := Drain(join, func(r relation.Row) error {
			inRanks = append(inRanks, ranks[r[0].I])
			return nil
		}); err != nil {
			return nil, err
		}
		res, err := stats.WilcoxonFromRanks(inRanks, len(means), ties)
		if err != nil {
			return nil, err
		}
		ans.Terms = append(ans.Terms, engine.TermStat{Term: t, Z: res.Z, P: res.P})
	}
	return ans, nil
}
