package rowstore

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/rengine"
)

func testDataset() *datagen.Dataset {
	return datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.3, Seed: 7}) // 75×75×30
}

func loaded(t *testing.T, mode Mode) *Engine {
	t.Helper()
	e := New(filepath.Join(t.TempDir(), "db"), mode)
	if err := e.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// reference runs the same query on the vanilla-R oracle.
func reference(t *testing.T, q engine.QueryID, p engine.Params) *engine.Result {
	t.Helper()
	r := rengine.New()
	if err := r.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), q, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNames(t *testing.T) {
	if New("", ModeR).Name() != "postgres-r" || New("", ModeMadlib).Name() != "postgres-madlib" {
		t.Fatal("names")
	}
}

func TestMadlibLacksBiclustering(t *testing.T) {
	e := loaded(t, ModeMadlib)
	if e.Supports(engine.Q3Biclustering) {
		t.Fatal("Madlib must not support biclustering")
	}
	if _, err := e.Run(context.Background(), engine.Q3Biclustering, engine.DefaultParams()); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestRegressionMatchesReference(t *testing.T) {
	p := engine.DefaultParams()
	want := reference(t, engine.Q1Regression, p).Answer.(*engine.RegressionAnswer)
	for _, mode := range []Mode{ModeR, ModeMadlib} {
		e := loaded(t, mode)
		res, err := e.Run(context.Background(), engine.Q1Regression, p)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		got := res.Answer.(*engine.RegressionAnswer)
		if len(got.SelectedGenes) != len(want.SelectedGenes) {
			t.Fatalf("mode %d: selected %d vs %d genes", mode, len(got.SelectedGenes), len(want.SelectedGenes))
		}
		if math.Abs(got.RSquared-want.RSquared) > 1e-9 {
			t.Fatalf("mode %d: R² %v vs %v", mode, got.RSquared, want.RSquared)
		}
		for i := range want.Coefficients {
			if math.Abs(got.Coefficients[i]-want.Coefficients[i]) > 1e-7 {
				t.Fatalf("mode %d: coef %d differs", mode, i)
			}
		}
	}
}

func TestRegressionTimingPhases(t *testing.T) {
	e := loaded(t, ModeR)
	res, err := e.Run(context.Background(), engine.Q1Regression, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.DataManagement <= 0 || res.Timing.Analytics <= 0 {
		t.Fatalf("phases missing: %+v", res.Timing)
	}
	// The +R mode must pay a nonzero export/reformat cost.
	if res.Timing.Transfer <= 0 {
		t.Fatal("ModeR should record transfer time")
	}
}

func TestMadlibRegressionNoTransfer(t *testing.T) {
	e := loaded(t, ModeMadlib)
	res, err := e.Run(context.Background(), engine.Q1Regression, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Transfer != 0 {
		t.Fatal("in-database analytics should not pay transfer")
	}
}

func TestCovarianceMatchesReference(t *testing.T) {
	p := engine.DefaultParams()
	want := reference(t, engine.Q2Covariance, p).Answer.(*engine.CovarianceAnswer)
	e := loaded(t, ModeR)
	res, err := e.Run(context.Background(), engine.Q2Covariance, p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Answer.(*engine.CovarianceAnswer)
	if got.NumPatients != want.NumPatients || got.NumPairs != want.NumPairs {
		t.Fatalf("got %d patients/%d pairs, want %d/%d", got.NumPatients, got.NumPairs, want.NumPatients, want.NumPairs)
	}
	if math.Abs(got.AbsCovSum-want.AbsCovSum) > 1e-6*(1+want.AbsCovSum) {
		t.Fatalf("cov sum %v vs %v", got.AbsCovSum, want.AbsCovSum)
	}
	for i, pr := range want.TopPairs {
		if got.TopPairs[i].GeneA != pr.GeneA || got.TopPairs[i].GeneB != pr.GeneB {
			t.Fatalf("top pair %d differs: %+v vs %+v", i, got.TopPairs[i], pr)
		}
	}
}

func TestBiclusteringMatchesReference(t *testing.T) {
	p := engine.DefaultParams()
	want := reference(t, engine.Q3Biclustering, p).Answer.(*engine.BiclusterAnswer)
	e := loaded(t, ModeR)
	res, err := e.Run(context.Background(), engine.Q3Biclustering, p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Answer.(*engine.BiclusterAnswer)
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%d blocks vs %d", len(got.Blocks), len(want.Blocks))
	}
	for b := range want.Blocks {
		if len(got.Blocks[b].PatientIDs) != len(want.Blocks[b].PatientIDs) {
			t.Fatalf("block %d patient count differs", b)
		}
		for i := range want.Blocks[b].PatientIDs {
			if got.Blocks[b].PatientIDs[i] != want.Blocks[b].PatientIDs[i] {
				t.Fatalf("block %d patient %d differs", b, i)
			}
		}
	}
}

func TestSVDMatchesReferenceBothModes(t *testing.T) {
	p := engine.DefaultParams()
	p.SVDK = 5
	want := reference(t, engine.Q4SVD, p).Answer.(*engine.SVDAnswer)
	for _, mode := range []Mode{ModeR, ModeMadlib} {
		e := loaded(t, mode)
		res, err := e.Run(context.Background(), engine.Q4SVD, p)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		got := res.Answer.(*engine.SVDAnswer)
		if got.SelectedGenes != want.SelectedGenes {
			t.Fatalf("mode %d: selected %d vs %d", mode, got.SelectedGenes, want.SelectedGenes)
		}
		for i := range want.SingularValues {
			if math.Abs(got.SingularValues[i]-want.SingularValues[i]) > 1e-6*(1+want.SingularValues[0]) {
				t.Fatalf("mode %d: σ[%d] %v vs %v", mode, i, got.SingularValues[i], want.SingularValues[i])
			}
		}
	}
}

func TestStatisticsMatchesReferenceBothModes(t *testing.T) {
	p := engine.DefaultParams()
	want := reference(t, engine.Q5Statistics, p).Answer.(*engine.StatsAnswer)
	for _, mode := range []Mode{ModeR, ModeMadlib} {
		e := loaded(t, mode)
		res, err := e.Run(context.Background(), engine.Q5Statistics, p)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		got := res.Answer.(*engine.StatsAnswer)
		if len(got.Terms) != len(want.Terms) {
			t.Fatalf("mode %d: %d terms vs %d", mode, len(got.Terms), len(want.Terms))
		}
		for i := range want.Terms {
			if math.Abs(got.Terms[i].Z-want.Terms[i].Z) > 1e-9 {
				t.Fatalf("mode %d: term %d z %v vs %v", mode, i, got.Terms[i].Z, want.Terms[i].Z)
			}
		}
	}
}

func TestContextTimeout(t *testing.T) {
	e := loaded(t, ModeR)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, engine.Q2Covariance, engine.DefaultParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunBeforeLoad(t *testing.T) {
	e := New(filepath.Join(t.TempDir(), "db"), ModeR)
	if _, err := e.Run(context.Background(), engine.Q1Regression, engine.DefaultParams()); err == nil {
		t.Fatal("expected error before load")
	}
}
