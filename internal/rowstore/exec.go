package rowstore

import (
	"context"
	"sort"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/relation"
	"github.com/genbase/genbase/internal/storage"
)

// Iterator is the Volcano operator contract: Open, repeated Next, Close.
// Rows returned by Next are valid only until the following Next call;
// operators that buffer rows must Clone them.
type Iterator interface {
	Open() error
	Next() (relation.Row, bool, error)
	Close() error
	Schema() relation.Schema
}

// SeqScan reads a heap table tuple-at-a-time, decoding each record — the
// row-store access path whose per-tuple overhead the paper's Postgres
// numbers reflect.
type SeqScan struct {
	Ctx   context.Context
	Table *TableHandle

	cur  *storage.Cursor
	row  relation.Row
	seen int
}

// Open implements Iterator.
func (s *SeqScan) Open() error {
	s.cur = s.Table.Heap.NewCursor()
	return nil
}

// Next implements Iterator.
func (s *SeqScan) Next() (relation.Row, bool, error) {
	s.seen++
	if s.seen%16384 == 0 && s.Ctx != nil {
		if err := engine.CheckCtx(s.Ctx); err != nil {
			return nil, false, err
		}
	}
	rec, ok, err := s.cur.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	s.row, err = relation.DecodeRow(s.Table.Schema, rec, s.row)
	if err != nil {
		return nil, false, err
	}
	return s.row, true, nil
}

// Close implements Iterator.
func (s *SeqScan) Close() error {
	if s.cur != nil {
		s.cur.Close()
	}
	return nil
}

// Schema implements Iterator.
func (s *SeqScan) Schema() relation.Schema { return s.Table.Schema }

// BitmapScan fetches a pre-collected, file-ordered set of record locators —
// the access path a bitmap index scan produces. Locators must be sorted in
// physical order (BTree.CollectRIDs does this) so page fetches are
// near-sequential through the buffer pool.
type BitmapScan struct {
	Ctx   context.Context
	Table *TableHandle
	RIDs  []storage.RID

	pos int
	buf []byte
	row relation.Row
}

// Open implements Iterator.
func (s *BitmapScan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *BitmapScan) Next() (relation.Row, bool, error) {
	if s.pos >= len(s.RIDs) {
		return nil, false, nil
	}
	if s.pos%16384 == 0 && s.Ctx != nil {
		if err := engine.CheckCtx(s.Ctx); err != nil {
			return nil, false, err
		}
	}
	var err error
	s.buf, err = s.Table.Heap.FetchRecordInto(s.RIDs[s.pos], s.buf)
	if err != nil {
		return nil, false, err
	}
	s.pos++
	s.row, err = relation.DecodeRow(s.Table.Schema, s.buf, s.row)
	if err != nil {
		return nil, false, err
	}
	return s.row, true, nil
}

// Close implements Iterator.
func (s *BitmapScan) Close() error { return nil }

// Schema implements Iterator.
func (s *BitmapScan) Schema() relation.Schema { return s.Table.Schema }

// MemScan iterates an in-memory table (temp tables for the Madlib-simulated
// plans).
type MemScan struct {
	Ctx   context.Context
	Table *relation.Table
	pos   int
}

// Open implements Iterator.
func (m *MemScan) Open() error { m.pos = 0; return nil }

// Next implements Iterator.
func (m *MemScan) Next() (relation.Row, bool, error) {
	if m.pos%16384 == 0 && m.Ctx != nil {
		if err := engine.CheckCtx(m.Ctx); err != nil {
			return nil, false, err
		}
	}
	if m.pos >= len(m.Table.Rows) {
		return nil, false, nil
	}
	r := m.Table.Rows[m.pos]
	m.pos++
	return r, true, nil
}

// Close implements Iterator.
func (m *MemScan) Close() error { return nil }

// Schema implements Iterator.
func (m *MemScan) Schema() relation.Schema { return m.Table.Schema }

// Filter passes rows satisfying Pred.
type Filter struct {
	Child Iterator
	Pred  func(relation.Row) bool
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Iterator.
func (f *Filter) Next() (relation.Row, bool, error) {
	for {
		r, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(r) {
			return r, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Child.Close() }

// Schema implements Iterator.
func (f *Filter) Schema() relation.Schema { return f.Child.Schema() }

// Project narrows rows to the given column indexes.
type Project struct {
	Child Iterator
	Cols  []int

	schema relation.Schema
	out    relation.Row
}

// Open implements Iterator.
func (p *Project) Open() error {
	cs := p.Child.Schema()
	p.schema = make(relation.Schema, len(p.Cols))
	for i, c := range p.Cols {
		p.schema[i] = cs[c]
	}
	p.out = make(relation.Row, len(p.Cols))
	return p.Child.Open()
}

// Next implements Iterator.
func (p *Project) Next() (relation.Row, bool, error) {
	r, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	for i, c := range p.Cols {
		p.out[i] = r[c]
	}
	return p.out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Child.Close() }

// Schema implements Iterator.
func (p *Project) Schema() relation.Schema { return p.schema }

// HashJoin is an equi-join: the build side is fully materialized into a hash
// table keyed on an int64 column, then the probe side streams. Output rows
// are probe columns followed by build columns.
type HashJoin struct {
	Build    Iterator
	Probe    Iterator
	BuildKey int
	ProbeKey int

	table   map[int64][]relation.Row
	schema  relation.Schema
	out     relation.Row
	pending []relation.Row // remaining build matches for the current probe row
	probed  relation.Row
}

// Open implements Iterator: drains and hashes the build side.
func (j *HashJoin) Open() error {
	if err := j.Build.Open(); err != nil {
		return err
	}
	j.table = make(map[int64][]relation.Row)
	for {
		r, ok, err := j.Build.Next()
		if err != nil {
			j.Build.Close()
			return err
		}
		if !ok {
			break
		}
		k := r[j.BuildKey].I
		j.table[k] = append(j.table[k], r.Clone())
	}
	if err := j.Build.Close(); err != nil {
		return err
	}
	j.schema = append(append(relation.Schema{}, j.Probe.Schema()...), j.Build.Schema()...)
	j.out = make(relation.Row, len(j.schema))
	return j.Probe.Open()
}

// Next implements Iterator.
func (j *HashJoin) Next() (relation.Row, bool, error) {
	for {
		if len(j.pending) > 0 {
			b := j.pending[0]
			j.pending = j.pending[1:]
			copy(j.out, j.probed)
			copy(j.out[len(j.probed):], b)
			return j.out, true, nil
		}
		r, ok, err := j.Probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches := j.table[r[j.ProbeKey].I]
		if len(matches) == 0 {
			continue
		}
		j.probed = r
		j.pending = matches
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Probe.Close()
}

// Schema implements Iterator.
func (j *HashJoin) Schema() relation.Schema { return j.schema }

// SortOp materializes and sorts its input.
type SortOp struct {
	Child Iterator
	Less  func(a, b relation.Row) bool

	rows []relation.Row
	pos  int
}

// Open implements Iterator: drains and sorts.
func (s *SortOp) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	for {
		r, ok, err := s.Child.Next()
		if err != nil {
			s.Child.Close()
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, r.Clone())
	}
	if err := s.Child.Close(); err != nil {
		return err
	}
	sort.SliceStable(s.rows, func(a, b int) bool { return s.Less(s.rows[a], s.rows[b]) })
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *SortOp) Next() (relation.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *SortOp) Close() error { s.rows = nil; return nil }

// Schema implements Iterator.
func (s *SortOp) Schema() relation.Schema { return s.Child.Schema() }

// AggSpec describes one aggregate over a float-convertible column.
type AggSpec struct {
	Col  int
	Kind AggKind
}

// AggKind enumerates supported aggregates.
type AggKind int

// Supported aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggAvg
)

// HashAgg groups by an int64 key column and computes aggregates. Output rows
// are (key, agg...). Results stream in ascending key order for determinism.
type HashAgg struct {
	Child Iterator
	Key   int
	Aggs  []AggSpec

	keys   []int64
	groups map[int64]*aggState
	pos    int
	out    relation.Row
	schema relation.Schema
}

type aggState struct {
	sums   []float64
	counts []int64
}

// Open implements Iterator: drains the child and aggregates.
func (h *HashAgg) Open() error {
	if err := h.Child.Open(); err != nil {
		return err
	}
	h.groups = make(map[int64]*aggState)
	for {
		r, ok, err := h.Child.Next()
		if err != nil {
			h.Child.Close()
			return err
		}
		if !ok {
			break
		}
		k := r[h.Key].I
		st, exists := h.groups[k]
		if !exists {
			st = &aggState{sums: make([]float64, len(h.Aggs)), counts: make([]int64, len(h.Aggs))}
			h.groups[k] = st
			h.keys = append(h.keys, k)
		}
		for i, a := range h.Aggs {
			st.sums[i] += r[a.Col].AsFloat()
			st.counts[i]++
		}
	}
	if err := h.Child.Close(); err != nil {
		return err
	}
	sort.Slice(h.keys, func(a, b int) bool { return h.keys[a] < h.keys[b] })
	cs := h.Child.Schema()
	h.schema = relation.Schema{cs[h.Key]}
	for _, a := range h.Aggs {
		name := cs[a.Col].Name
		switch a.Kind {
		case AggSum:
			name = "sum_" + name
		case AggCount:
			name = "count_" + name
		case AggAvg:
			name = "avg_" + name
		}
		h.schema = append(h.schema, relation.Column{Name: name, Kind: relation.KindFloat64})
	}
	h.out = make(relation.Row, len(h.schema))
	h.pos = 0
	return nil
}

// Next implements Iterator.
func (h *HashAgg) Next() (relation.Row, bool, error) {
	if h.pos >= len(h.keys) {
		return nil, false, nil
	}
	k := h.keys[h.pos]
	h.pos++
	st := h.groups[k]
	h.out[0] = relation.IntVal(k)
	for i, a := range h.Aggs {
		switch a.Kind {
		case AggSum:
			h.out[i+1] = relation.FloatVal(st.sums[i])
		case AggCount:
			h.out[i+1] = relation.FloatVal(float64(st.counts[i]))
		case AggAvg:
			h.out[i+1] = relation.FloatVal(st.sums[i] / float64(st.counts[i]))
		}
	}
	return h.out, true, nil
}

// Close implements Iterator.
func (h *HashAgg) Close() error { h.groups = nil; h.keys = nil; return nil }

// Schema implements Iterator.
func (h *HashAgg) Schema() relation.Schema { return h.schema }

// Eval appends a computed column to each row (the executor's expression
// evaluation; in the Madlib-simulated plans this is where the interpreted
// per-tuple arithmetic happens).
type Eval struct {
	Child Iterator
	Name  string
	Fn    func(relation.Row) relation.Value

	out relation.Row
}

// Open implements Iterator. The child opens first: operators like HashJoin
// only know their output schema after Open.
func (e *Eval) Open() error {
	if err := e.Child.Open(); err != nil {
		return err
	}
	e.out = make(relation.Row, len(e.Child.Schema())+1)
	return nil
}

// Next implements Iterator.
func (e *Eval) Next() (relation.Row, bool, error) {
	r, ok, err := e.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	copy(e.out, r)
	e.out[len(r)] = e.Fn(r)
	return e.out, true, nil
}

// Close implements Iterator.
func (e *Eval) Close() error { return e.Child.Close() }

// Schema implements Iterator.
func (e *Eval) Schema() relation.Schema {
	return append(append(relation.Schema{}, e.Child.Schema()...),
		relation.Column{Name: e.Name, Kind: relation.KindFloat64})
}

// Drain runs an iterator to completion, invoking fn per row.
func Drain(it Iterator, fn func(relation.Row) error) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	for {
		r, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// Collect materializes an iterator into an in-memory table.
func Collect(it Iterator) (*relation.Table, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	t := relation.NewTable("result", it.Schema())
	for {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return t, nil
		}
		t.Rows = append(t.Rows, r.Clone())
	}
}
