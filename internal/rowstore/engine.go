package rowstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	planir "github.com/genbase/genbase/internal/plan"
)

// Mode selects the analytics configuration.
type Mode int

// The two Postgres configurations from the paper (§4.1, configurations 2–3).
const (
	// ModeR exports query results to an external R process (text COPY).
	ModeR Mode = iota
	// ModeMadlib runs analytics inside the database: native UDFs where
	// Madlib has C++ implementations, SQL/plpython simulation elsewhere.
	ModeMadlib
)

// Engine is the row-store system under test.
type Engine struct {
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value.
	Workers int

	mode Mode
	dir  string
	db   *DB
	glue analytics.Glue
	// sidecars are the compressed columnar twins (sidecar.go) of the scan
	// tables, built at Load so the -compress knob can flip at query time.
	sidecars map[string]*tableSidecar

	numPatients, numGenes, numTerms int
}

// New creates a row-store engine rooted at dir.
func New(dir string, mode Mode) *Engine {
	return &Engine{mode: mode, dir: dir, glue: analytics.TextGlue{}}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.mode == ModeMadlib {
		return "postgres-madlib"
	}
	return "postgres-r"
}

// Supports implements engine.Engine, derived from the registered physical
// operators: Madlib does not register the biclustering kernel (ops.go), so
// any plan containing it is unsupported — no hardcoded query switch.
func (e *Engine) Supports(q engine.QueryID) bool {
	return planir.Supports(e.Capabilities(), q)
}

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Load implements engine.Engine.
func (e *Engine) Load(ds *datagen.Dataset) error {
	db, err := OpenDB(e.dir)
	if err != nil {
		return err
	}
	if err := db.LoadDataset(ds); err != nil {
		db.Close()
		return err
	}
	e.db = db
	e.numPatients = ds.Dims.Patients
	e.numGenes = ds.Dims.Genes
	e.numTerms = ds.Dims.GOTerms
	// Build the compressed columnar sidecars unconditionally: the -compress
	// knob is consulted at query time, so both settings must be servable
	// from one loaded engine.
	e.sidecars = make(map[string]*tableSidecar)
	for _, name := range []string{"microarray", "patients", "genes"} {
		sc, err := buildTableSidecar(context.Background(), db, name)
		if err != nil {
			e.Close()
			return err
		}
		e.sidecars[name] = sc
	}
	return nil
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	for _, sc := range e.sidecars {
		sc.remove()
	}
	e.sidecars = nil
	if e.db == nil {
		return nil
	}
	return e.db.Close()
}

// Run implements engine.Engine: compile the query into the shared operator
// IR and execute it against this engine's physical operators (ops.go).
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.db == nil {
		return nil, fmt.Errorf("rowstore: not loaded")
	}
	pl, err := planir.Compile(q, p)
	if err != nil {
		return nil, err
	}
	return planir.Execute(ctx, e, pl)
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }
