package rowstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/analytics"
	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/relation"
)

// Mode selects the analytics configuration.
type Mode int

// The two Postgres configurations from the paper (§4.1, configurations 2–3).
const (
	// ModeR exports query results to an external R process (text COPY).
	ModeR Mode = iota
	// ModeMadlib runs analytics inside the database: native UDFs where
	// Madlib has C++ implementations, SQL/plpython simulation elsewhere.
	ModeMadlib
)

// Engine is the row-store system under test.
type Engine struct {
	// Workers is the analytics-kernel worker count (0 = the GENBASE_PARALLEL
	// / NumCPU default). Answers are bitwise identical at any value.
	Workers int

	mode Mode
	dir  string
	db   *DB
	glue analytics.Glue

	numPatients, numGenes, numTerms int
}

// New creates a row-store engine rooted at dir.
func New(dir string, mode Mode) *Engine {
	return &Engine{mode: mode, dir: dir, glue: analytics.TextGlue{}}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	if e.mode == ModeMadlib {
		return "postgres-madlib"
	}
	return "postgres-r"
}

// Supports implements engine.Engine. Madlib lacks a biclustering routine
// ("Hadoop and Postgres + Madlib do not provide sufficient analytics
// functions to run the biclustering query").
func (e *Engine) Supports(q engine.QueryID) bool {
	if e.mode == ModeMadlib && q == engine.Q3Biclustering {
		return false
	}
	return true
}

// SetWorkers pins the analytics-kernel worker count (serve.Server uses it to
// split the host's worker budget across admission slots). Call before
// concurrent queries begin.
func (e *Engine) SetWorkers(n int) { e.Workers = n }

// Load implements engine.Engine.
func (e *Engine) Load(ds *datagen.Dataset) error {
	db, err := OpenDB(e.dir)
	if err != nil {
		return err
	}
	if err := db.LoadDataset(ds); err != nil {
		db.Close()
		return err
	}
	e.db = db
	e.numPatients = ds.Dims.Patients
	e.numGenes = ds.Dims.Genes
	e.numTerms = ds.Dims.GOTerms
	return nil
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	if e.db == nil {
		return nil
	}
	return e.db.Close()
}

// Run implements engine.Engine.
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.db == nil {
		return nil, fmt.Errorf("rowstore: not loaded")
	}
	if !e.Supports(q) {
		return nil, engine.ErrUnsupported
	}
	switch q {
	case engine.Q1Regression:
		return e.regression(ctx, p)
	case engine.Q2Covariance:
		return e.covariance(ctx, p)
	case engine.Q3Biclustering:
		return e.biclustering(ctx, p)
	case engine.Q4SVD:
		return e.svd(ctx, p)
	case engine.Q5Statistics:
		return e.statistics(ctx, p)
	default:
		return nil, engine.ErrUnsupported
	}
}

func (e *Engine) regression(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	genes, err := e.selectedGenes(ctx, p.FunctionThreshold)
	if err != nil {
		return nil, err
	}
	if len(genes) == 0 {
		return nil, fmt.Errorf("rowstore: no genes pass function < %d", p.FunctionThreshold)
	}
	x, err := e.pivotJoin(ctx, genes, nil)
	if err != nil {
		return nil, err
	}
	pivot := x // pooled by the columnar path; released below
	y, err := e.drugResponses(ctx)
	if err != nil {
		return nil, err
	}

	var fit *linalg.LeastSquaresResult
	if e.mode == ModeR {
		sw.StartTransfer()
		if x, err = e.glue.TransferMatrix(ctx, x); err != nil {
			return nil, err
		}
		if x != pivot {
			linalg.PutMatrix(pivot)
		}
		if y, err = e.glue.TransferVector(ctx, y); err != nil {
			return nil, err
		}
	}
	sw.StartAnalytics()
	// Madlib's linear regression is a native C++ UDF; R's lm is native
	// LAPACK. Both reduce to the same QR solve here.
	xi := linalg.AddInterceptColumn(x)
	linalg.PutMatrix(x)
	fit, err = linalg.LeastSquares(xi, y)
	linalg.PutMatrix(xi)
	if err != nil {
		return nil, err
	}
	sw.Stop()

	sel := make([]int, len(genes))
	for i, g := range genes {
		sel[i] = int(g)
	}
	return &engine.Result{
		Query:  engine.Q1Regression,
		Timing: sw.Timing(),
		Answer: &engine.RegressionAnswer{
			Coefficients:  fit.Coefficients,
			RSquared:      fit.RSquared,
			SelectedGenes: sel,
			NumPatients:   e.numPatients,
		},
	}, nil
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }

func (e *Engine) covariance(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	disCol := PatientsSchema.MustColIndex("diseaseid")
	pats, err := e.selectedPatients(ctx, func(r relation.Row) bool { return r[disCol].I == p.DiseaseID })
	if err != nil {
		return nil, err
	}
	if len(pats) < 2 {
		return nil, fmt.Errorf("rowstore: fewer than two patients with disease %d", p.DiseaseID)
	}
	x, err := e.pivotJoin(ctx, nil, pats)
	if err != nil {
		return nil, err
	}
	pivot := x

	if e.mode == ModeR {
		sw.StartTransfer()
		if x, err = e.glue.TransferMatrix(ctx, x); err != nil {
			return nil, err
		}
		if x != pivot {
			linalg.PutMatrix(pivot)
		}
	}
	sw.StartAnalytics()
	cov := linalg.CovarianceP(x, e.Workers)
	linalg.PutMatrix(x)

	sw.StartDM()
	fns, err := e.geneFunctions(ctx)
	if err != nil {
		return nil, err
	}
	ans := engine.SummarizeCovariance(cov, p.CovarianceTopFrac, funcLookup{fns}, len(pats))
	linalg.PutMatrix(cov)
	sw.Stop()
	return &engine.Result{Query: engine.Q2Covariance, Timing: sw.Timing(), Answer: ans}, nil
}

func (e *Engine) biclustering(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	ageCol := PatientsSchema.MustColIndex("age")
	genCol := PatientsSchema.MustColIndex("gender")
	pats, err := e.selectedPatients(ctx, func(r relation.Row) bool {
		return r[genCol].I == int64(p.Gender) && r[ageCol].I < p.MaxAge
	})
	if err != nil {
		return nil, err
	}
	if len(pats) < 4 {
		return nil, fmt.Errorf("rowstore: only %d patients pass the Q3 filter", len(pats))
	}
	x, err := e.pivotJoin(ctx, nil, pats)
	if err != nil {
		return nil, err
	}
	pivot := x

	sw.StartTransfer()
	if x, err = e.glue.TransferMatrix(ctx, x); err != nil {
		return nil, err
	}
	if x != pivot {
		linalg.PutMatrix(pivot)
	}
	sw.StartAnalytics()
	blocks, err := bicluster.Run(x, bicluster.Options{MaxBiclusters: p.MaxBiclusters, Seed: p.Seed})
	linalg.PutMatrix(x)
	if err != nil {
		return nil, err
	}
	sw.Stop()
	return &engine.Result{
		Query:  engine.Q3Biclustering,
		Timing: sw.Timing(),
		Answer: engine.BiclusterAnswerFromBlocks(blocks, pats),
	}, nil
}

func (e *Engine) svd(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	genes, err := e.selectedGenes(ctx, p.FunctionThreshold)
	if err != nil {
		return nil, err
	}
	if len(genes) == 0 {
		return nil, fmt.Errorf("rowstore: no genes pass function < %d", p.FunctionThreshold)
	}
	a, err := e.pivotJoin(ctx, genes, nil)
	if err != nil {
		return nil, err
	}
	pivot := a

	var sv []float64
	if e.mode == ModeMadlib {
		// Madlib SVD "in effect simulate[s] matrix computations in SQL and
		// plpython": Lanczos runs with every mat-vec as a relational plan.
		sw.StartAnalytics()
		sv, err = e.madlibSVD(ctx, a, p.SVDK, p.Seed)
		linalg.PutMatrix(a)
		if err != nil {
			return nil, err
		}
	} else {
		sw.StartTransfer()
		if a, err = e.glue.TransferMatrix(ctx, a); err != nil {
			return nil, err
		}
		if a != pivot {
			linalg.PutMatrix(pivot)
		}
		sw.StartAnalytics()
		svd, err := linalg.TopKSVD(a, p.SVDK, linalg.LanczosOptions{Reorthogonalize: true, Seed: p.Seed, Workers: e.Workers})
		linalg.PutMatrix(a)
		if err != nil {
			return nil, err
		}
		sv = svd.SingularValues
	}
	sw.Stop()
	return &engine.Result{
		Query:  engine.Q4SVD,
		Timing: sw.Timing(),
		Answer: &engine.SVDAnswer{SelectedGenes: len(genes), SingularValues: sv},
	}, nil
}

func (e *Engine) statistics(ctx context.Context, p engine.Params) (*engine.Result, error) {
	var sw engine.StopWatch
	sw.StartDM()
	means, sampled, err := e.sampleMeans(ctx, p.SamplePatientStep())
	if err != nil {
		return nil, err
	}
	members, err := e.goMembers(ctx)
	if err != nil {
		return nil, err
	}

	var ans *engine.StatsAnswer
	if e.mode == ModeMadlib {
		// Wilcoxon has no Madlib native; the ranking and rank-sums run as
		// relational plans (SQL simulation).
		sw.StartAnalytics()
		ans, err = e.madlibWilcoxon(ctx, means, members, sampled)
		if err != nil {
			return nil, err
		}
	} else {
		sw.StartTransfer()
		if means, err = e.glue.TransferVector(ctx, means); err != nil {
			return nil, err
		}
		sw.StartAnalytics()
		ans, err = engine.EnrichmentTest(ctx, means, members, sampled)
		if err != nil {
			return nil, err
		}
	}
	sw.Stop()
	return &engine.Result{Query: engine.Q5Statistics, Timing: sw.Timing(), Answer: ans}, nil
}
