package rowstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/relation"
)

// The data-management halves of the five queries, expressed as Volcano plans
// over the heap tables. Both analytics modes share these plans.

// selectedGenes runs σ(function < thr)(genes) and returns ascending gene ids.
func (e *Engine) selectedGenes(ctx context.Context, thr int64) ([]int64, error) {
	genes, err := e.db.Table("genes")
	if err != nil {
		return nil, err
	}
	fnCol := GenesSchema.MustColIndex("function")
	idCol := GenesSchema.MustColIndex("geneid")
	plan := &SortOp{
		Child: &Project{
			Child: &Filter{
				Child: &SeqScan{Ctx: ctx, Table: genes},
				Pred:  func(r relation.Row) bool { return r[fnCol].I < thr },
			},
			Cols: []int{idCol},
		},
		Less: func(a, b relation.Row) bool { return a[0].I < b[0].I },
	}
	var ids []int64
	if err := Drain(plan, func(r relation.Row) error {
		ids = append(ids, r[0].I)
		return nil
	}); err != nil {
		return nil, err
	}
	return ids, nil
}

// selectedPatients runs σ(pred)(patients) and returns ascending patient ids.
func (e *Engine) selectedPatients(ctx context.Context, pred func(relation.Row) bool) ([]int64, error) {
	pats, err := e.db.Table("patients")
	if err != nil {
		return nil, err
	}
	idCol := PatientsSchema.MustColIndex("patientid")
	plan := &SortOp{
		Child: &Project{
			Child: &Filter{Child: &SeqScan{Ctx: ctx, Table: pats}, Pred: pred},
			Cols:  []int{idCol},
		},
		Less: func(a, b relation.Row) bool { return a[0].I < b[0].I },
	}
	var ids []int64
	if err := Drain(plan, func(r relation.Row) error {
		ids = append(ids, r[0].I)
		return nil
	}); err != nil {
		return nil, err
	}
	return ids, nil
}

// idsTable wraps an id list as a single-column in-memory relation for use as
// a hash-join build side.
func idsTable(name string, ids []int64) *relation.Table {
	t := relation.NewTable(name, relation.Schema{{Name: name, Kind: relation.KindInt64}})
	for _, id := range ids {
		t.Rows = append(t.Rows, relation.Row{relation.IntVal(id)})
	}
	return t
}

func indexMap(ids []int64) map[int64]int {
	m := make(map[int64]int, len(ids))
	for i, id := range ids {
		m[id] = i
	}
	return m
}

// pivotJoin joins the microarray table against the given gene and patient id
// sets (nil set means "all") and restructures the matching triples into a
// dense matrix — the paper's steps 2–3 (join, then restructure as a matrix).
func (e *Engine) pivotJoin(ctx context.Context, geneIDs, patientIDs []int64) (*linalg.Matrix, error) {
	micro, err := e.db.Table("microarray")
	if err != nil {
		return nil, err
	}
	gCol := MicroarraySchema.MustColIndex("geneid")
	pCol := MicroarraySchema.MustColIndex("patientid")
	vCol := MicroarraySchema.MustColIndex("expressionvalue")

	if geneIDs == nil {
		geneIDs = make([]int64, e.numGenes)
		for i := range geneIDs {
			geneIDs[i] = int64(i)
		}
	}
	if patientIDs == nil {
		patientIDs = make([]int64, e.numPatients)
		for i := range patientIDs {
			patientIDs[i] = int64(i)
		}
	}
	gIdx := indexMap(geneIDs)
	pIdx := indexMap(patientIDs)

	// Planner choice: when the patient predicate is selective and the fact
	// table has a patientid index, a bitmap index scan fetches only the
	// matching tuples; otherwise a full sequential scan feeds a hash join on
	// the gene set, with the patient set as a residual filter.
	var probe Iterator
	if idx := micro.Index("patientid"); idx != nil && len(patientIDs)*10 < e.numPatients {
		probe = &BitmapScan{Ctx: ctx, Table: micro, RIDs: idx.CollectRIDs(patientIDs)}
	} else {
		probe = &SeqScan{Ctx: ctx, Table: micro}
	}
	var plan Iterator = &HashJoin{
		Build:    &MemScan{Table: idsTable("geneid", geneIDs)},
		Probe:    probe,
		BuildKey: 0,
		ProbeKey: gCol,
	}
	m := linalg.NewMatrix(len(patientIDs), len(geneIDs))
	err = Drain(plan, func(r relation.Row) error {
		pi, ok := pIdx[r[pCol].I]
		if !ok {
			return nil
		}
		gi := gIdx[r[gCol].I] // join guarantees membership
		m.Set(pi, gi, r[vCol].F)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// drugResponses scans the patients table projecting drug response in
// patient-id order.
func (e *Engine) drugResponses(ctx context.Context) ([]float64, error) {
	pats, err := e.db.Table("patients")
	if err != nil {
		return nil, err
	}
	idCol := PatientsSchema.MustColIndex("patientid")
	respCol := PatientsSchema.MustColIndex("drugresponse")
	y := make([]float64, e.numPatients)
	err = Drain(&SeqScan{Ctx: ctx, Table: pats}, func(r relation.Row) error {
		y[r[idCol].I] = r[respCol].F
		return nil
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// geneFunctions scans gene metadata into a dense lookup (the Q2 step-4 join
// side).
func (e *Engine) geneFunctions(ctx context.Context) ([]int64, error) {
	genes, err := e.db.Table("genes")
	if err != nil {
		return nil, err
	}
	idCol := GenesSchema.MustColIndex("geneid")
	fnCol := GenesSchema.MustColIndex("function")
	fns := make([]int64, e.numGenes)
	err = Drain(&SeqScan{Ctx: ctx, Table: genes}, func(r relation.Row) error {
		fns[r[idCol].I] = r[fnCol].I
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fns, nil
}

// sampleMeans computes per-gene mean expression over the deterministic Q5
// patient sample with a filter + hash aggregate plan.
func (e *Engine) sampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	micro, err := e.db.Table("microarray")
	if err != nil {
		return nil, 0, err
	}
	gCol := MicroarraySchema.MustColIndex("geneid")
	pCol := MicroarraySchema.MustColIndex("patientid")
	vCol := MicroarraySchema.MustColIndex("expressionvalue")
	plan := &HashAgg{
		Child: &Filter{
			Child: &SeqScan{Ctx: ctx, Table: micro},
			Pred:  func(r relation.Row) bool { return r[pCol].I%int64(step) == 0 },
		},
		Key:  gCol,
		Aggs: []AggSpec{{Col: vCol, Kind: AggAvg}},
	}
	means := make([]float64, e.numGenes)
	if err := Drain(plan, func(r relation.Row) error {
		means[r[0].I] = r[1].F
		return nil
	}); err != nil {
		return nil, 0, err
	}
	sampled := (e.numPatients + step - 1) / step
	return means, sampled, nil
}

// goMembers groups the GO table by term (the Q5 step-2 join input).
func (e *Engine) goMembers(ctx context.Context) ([][]int32, error) {
	gotab, err := e.db.Table("go")
	if err != nil {
		return nil, err
	}
	gCol := GOSchema.MustColIndex("geneid")
	tCol := GOSchema.MustColIndex("goid")
	bCol := GOSchema.MustColIndex("belongs")
	members := make([][]int32, e.numTerms)
	err = Drain(&SeqScan{Ctx: ctx, Table: gotab}, func(r relation.Row) error {
		if r[bCol].I != 1 {
			return nil
		}
		t := r[tCol].I
		if t < 0 || t >= int64(e.numTerms) {
			return fmt.Errorf("rowstore: GO term %d out of range", t)
		}
		members[t] = append(members[t], int32(r[gCol].I))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return members, nil
}
