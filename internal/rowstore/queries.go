package rowstore

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/relation"
	"github.com/genbase/genbase/internal/storage"
)

// columnarBatchRows is the row count of one decoded ColumnBatch — large
// enough to amortize the per-batch callback, small enough to stay in cache.
const columnarBatchRows = 4096

// scanColumnarFrom streams records from next through a reusable columnar
// batch: records are decoded straight from page bytes into typed per-column
// slices (relation.DecodeColumns), skipping the Volcano executor's per-row
// Value boxing entirely. fn sees batches in source order, so any
// accumulation a caller does per batch row matches the row-at-a-time plan's
// order exactly.
func scanColumnarFrom(ctx context.Context, schema relation.Schema, next func() ([]byte, bool, error), fn func(*relation.ColumnBatch) error) error {
	batch := relation.NewColumnBatch(schema, columnarBatchRows)
	for {
		rec, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := batch.DecodeColumns(rec); err != nil {
			return err
		}
		if batch.Len() == columnarBatchRows {
			if err := engine.CheckCtx(ctx); err != nil {
				return err
			}
			if err := fn(batch); err != nil {
				return err
			}
			batch.Reset()
		}
	}
	if batch.Len() > 0 {
		return fn(batch)
	}
	return nil
}

// scanColumnar is scanColumnarFrom over a full heap scan (the sequential
// access path).
func scanColumnar(ctx context.Context, t *TableHandle, fn func(*relation.ColumnBatch) error) error {
	cur := t.Heap.NewCursor()
	defer cur.Close()
	return scanColumnarFrom(ctx, t.Schema, cur.Next, fn)
}

// scanRIDsColumnar is scanColumnarFrom over a pre-collected, file-ordered
// RID list — the columnar twin of the bitmap access path.
func scanRIDsColumnar(ctx context.Context, t *TableHandle, rids []storage.RID, fn func(*relation.ColumnBatch) error) error {
	var buf []byte
	pos := 0
	next := func() ([]byte, bool, error) {
		if pos >= len(rids) {
			return nil, false, nil
		}
		var err error
		buf, err = t.Heap.FetchRecordInto(rids[pos], buf)
		if err != nil {
			return nil, false, err
		}
		pos++
		return buf, true, nil
	}
	return scanColumnarFrom(ctx, t.Schema, next, fn)
}

// denseIndex inverts an id list into a position array over [0, n): out[id]
// is the id's rank, −1 when absent.
func denseIndex(ids []int64, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	for i, id := range ids {
		out[id] = int32(i)
	}
	return out
}

// The data-management halves of the five queries, expressed as Volcano plans
// over the heap tables. Both analytics modes share these plans.

// idsTable wraps an id list as a single-column in-memory relation for use as
// a hash-join build side.
func idsTable(name string, ids []int64) *relation.Table {
	t := relation.NewTable(name, relation.Schema{{Name: name, Kind: relation.KindInt64}})
	for _, id := range ids {
		t.Rows = append(t.Rows, relation.Row{relation.IntVal(id)})
	}
	return t
}

func indexMap(ids []int64) map[int64]int {
	m := make(map[int64]int, len(ids))
	for i, id := range ids {
		m[id] = i
	}
	return m
}

// pivotJoin joins the microarray table against the given gene and patient id
// sets (nil set means "all") and restructures the matching triples into a
// dense matrix — the paper's steps 2–3 (join, then restructure as a matrix).
func (e *Engine) pivotJoin(ctx context.Context, geneIDs, patientIDs []int64) (*linalg.Matrix, error) {
	micro, err := e.db.Table("microarray")
	if err != nil {
		return nil, err
	}
	gCol := MicroarraySchema.MustColIndex("geneid")
	pCol := MicroarraySchema.MustColIndex("patientid")
	vCol := MicroarraySchema.MustColIndex("expressionvalue")

	if geneIDs == nil {
		geneIDs = make([]int64, e.numGenes)
		for i := range geneIDs {
			geneIDs[i] = int64(i)
		}
	}
	if patientIDs == nil {
		patientIDs = make([]int64, e.numPatients)
		for i := range patientIDs {
			patientIDs[i] = int64(i)
		}
	}
	// Zero-copy path: decode the scan columnar (no Value boxing) and fill a
	// pooled matrix with vectorized membership tests. The access-path choice
	// (bitmap vs sequential) and the row visit order are identical to the
	// Volcano plan below, so the resulting matrix is bitwise the same.
	if engine.ZeroCopyEnabled() {
		gIdx := denseIndex(geneIDs, e.numGenes)
		pIdx := denseIndex(patientIDs, e.numPatients)
		m := linalg.GetMatrixZeroed(len(patientIDs), len(geneIDs))
		fill := func(b *relation.ColumnBatch) error {
			gs, ps, vs := b.Ints[gCol], b.Ints[pCol], b.Floats[vCol]
			for r, v := range vs {
				gi := gIdx[gs[r]]
				if gi < 0 {
					continue
				}
				pi := pIdx[ps[r]]
				if pi < 0 {
					continue
				}
				m.Data[int(pi)*m.Stride+int(gi)] = v
			}
			return nil
		}
		// Access-path choice: bitmap fetch when the patient set is selective
		// (same rule as the Volcano plan); otherwise a full scan — off the
		// compressed sidecar segments when the knob is on, else the dense
		// heap decode. The fill is per-cell, so all paths produce the same
		// matrix bit for bit.
		if idx := micro.Index("patientid"); idx != nil && len(patientIDs)*10 < e.numPatients {
			err = scanRIDsColumnar(ctx, micro, idx.CollectRIDs(patientIDs), fill)
		} else if sc := e.sidecars["microarray"]; sc != nil && engine.CompressionEnabled() {
			err = scanColumnarCompressed(ctx, sc, fill)
		} else {
			err = scanColumnar(ctx, micro, fill)
		}
		if err != nil {
			linalg.PutMatrix(m)
			return nil, err
		}
		return m, nil
	}

	gIdx := indexMap(geneIDs)
	pIdx := indexMap(patientIDs)

	// Planner choice: when the patient predicate is selective and the fact
	// table has a patientid index, a bitmap index scan fetches only the
	// matching tuples; otherwise a full sequential scan feeds a hash join on
	// the gene set, with the patient set as a residual filter.
	var probe Iterator
	if idx := micro.Index("patientid"); idx != nil && len(patientIDs)*10 < e.numPatients {
		probe = &BitmapScan{Ctx: ctx, Table: micro, RIDs: idx.CollectRIDs(patientIDs)}
	} else {
		probe = &SeqScan{Ctx: ctx, Table: micro}
	}
	var plan Iterator = &HashJoin{
		Build:    &MemScan{Table: idsTable("geneid", geneIDs)},
		Probe:    probe,
		BuildKey: 0,
		ProbeKey: gCol,
	}
	m := linalg.NewMatrix(len(patientIDs), len(geneIDs))
	err = Drain(plan, func(r relation.Row) error {
		pi, ok := pIdx[r[pCol].I]
		if !ok {
			return nil
		}
		gi := gIdx[r[gCol].I] // join guarantees membership
		m.Set(pi, gi, r[vCol].F)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// drugResponses scans the patients table projecting drug response in
// patient-id order.
func (e *Engine) drugResponses(ctx context.Context) ([]float64, error) {
	pats, err := e.db.Table("patients")
	if err != nil {
		return nil, err
	}
	idCol := PatientsSchema.MustColIndex("patientid")
	respCol := PatientsSchema.MustColIndex("drugresponse")
	y := make([]float64, e.numPatients)
	if engine.ZeroCopyEnabled() {
		fill := func(b *relation.ColumnBatch) error {
			ids, resp := b.Ints[idCol], b.Floats[respCol]
			for r, id := range ids {
				y[id] = resp[r]
			}
			return nil
		}
		if sc := e.sidecars["patients"]; sc != nil && engine.CompressionEnabled() {
			err = scanColumnarCompressed(ctx, sc, fill)
		} else {
			err = scanColumnar(ctx, pats, fill)
		}
	} else {
		err = Drain(&SeqScan{Ctx: ctx, Table: pats}, func(r relation.Row) error {
			y[r[idCol].I] = r[respCol].F
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return y, nil
}

// geneFunctions scans gene metadata into a dense lookup (the Q2 step-4 join
// side).
func (e *Engine) geneFunctions(ctx context.Context) ([]int64, error) {
	genes, err := e.db.Table("genes")
	if err != nil {
		return nil, err
	}
	idCol := GenesSchema.MustColIndex("geneid")
	fnCol := GenesSchema.MustColIndex("function")
	fns := make([]int64, e.numGenes)
	if engine.ZeroCopyEnabled() {
		fill := func(b *relation.ColumnBatch) error {
			ids, fn := b.Ints[idCol], b.Ints[fnCol]
			for r, id := range ids {
				fns[id] = fn[r]
			}
			return nil
		}
		if sc := e.sidecars["genes"]; sc != nil && engine.CompressionEnabled() {
			err = scanColumnarCompressed(ctx, sc, fill)
		} else {
			err = scanColumnar(ctx, genes, fill)
		}
	} else {
		err = Drain(&SeqScan{Ctx: ctx, Table: genes}, func(r relation.Row) error {
			fns[r[idCol].I] = r[fnCol].I
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	return fns, nil
}

// sampleMeans computes per-gene mean expression over the deterministic Q5
// patient sample with a filter + hash aggregate plan.
func (e *Engine) sampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	micro, err := e.db.Table("microarray")
	if err != nil {
		return nil, 0, err
	}
	gCol := MicroarraySchema.MustColIndex("geneid")
	pCol := MicroarraySchema.MustColIndex("patientid")
	vCol := MicroarraySchema.MustColIndex("expressionvalue")
	means := make([]float64, e.numGenes)
	if sc := e.sidecars["microarray"]; sc != nil && engine.CompressionEnabled() {
		// Encoded-space sample: the modulus runs once per patientid run and
		// filtered-out rows are never decoded (sidecar.go). Heap order is
		// preserved, so sums match the decode paths below bit for bit.
		sums := make([]float64, e.numGenes)
		counts := make([]int64, e.numGenes)
		if err := e.sampleSumsCompressed(ctx, step, sums, counts); err != nil {
			return nil, 0, err
		}
		for j := range sums {
			if counts[j] > 0 {
				means[j] = sums[j] / float64(counts[j])
			}
		}
	} else if engine.ZeroCopyEnabled() {
		// Columnar filter + aggregate: per gene the contributions arrive in
		// heap order, the same order the hash aggregate accumulated them, so
		// sums and the final sum/count divisions are bitwise identical.
		sums := make([]float64, e.numGenes)
		counts := make([]int64, e.numGenes)
		err := scanColumnar(ctx, micro, func(b *relation.ColumnBatch) error {
			gs, ps, vs := b.Ints[gCol], b.Ints[pCol], b.Floats[vCol]
			for r, v := range vs {
				if ps[r]%int64(step) != 0 {
					continue
				}
				sums[gs[r]] += v
				counts[gs[r]]++
			}
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		for j := range sums {
			if counts[j] > 0 {
				means[j] = sums[j] / float64(counts[j])
			}
		}
	} else {
		plan := &HashAgg{
			Child: &Filter{
				Child: &SeqScan{Ctx: ctx, Table: micro},
				Pred:  func(r relation.Row) bool { return r[pCol].I%int64(step) == 0 },
			},
			Key:  gCol,
			Aggs: []AggSpec{{Col: vCol, Kind: AggAvg}},
		}
		if err := Drain(plan, func(r relation.Row) error {
			means[r[0].I] = r[1].F
			return nil
		}); err != nil {
			return nil, 0, err
		}
	}
	sampled := (e.numPatients + step - 1) / step
	return means, sampled, nil
}

// goMembers groups the GO table by term (the Q5 step-2 join input).
func (e *Engine) goMembers(ctx context.Context) ([][]int32, error) {
	gotab, err := e.db.Table("go")
	if err != nil {
		return nil, err
	}
	gCol := GOSchema.MustColIndex("geneid")
	tCol := GOSchema.MustColIndex("goid")
	bCol := GOSchema.MustColIndex("belongs")
	members := make([][]int32, e.numTerms)
	err = Drain(&SeqScan{Ctx: ctx, Table: gotab}, func(r relation.Row) error {
		if r[bCol].I != 1 {
			return nil
		}
		t := r[tCol].I
		if t < 0 || t >= int64(e.numTerms) {
			return fmt.Errorf("rowstore: GO term %d out of range", t)
		}
		members[t] = append(members[t], int32(r[gCol].I))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return members, nil
}
