package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeRow serializes a row for slotted-page storage: int64 and float64 as
// 8 little-endian bytes, strings as uint16 length + bytes. The schema is not
// stored — the heap file's catalog entry carries it.
func EncodeRow(schema Schema, r Row, buf []byte) []byte {
	for i, col := range schema {
		switch col.Kind {
		case KindInt64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(r[i].I))
			buf = append(buf, b[:]...)
		case KindFloat64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(r[i].F))
			buf = append(buf, b[:]...)
		case KindString:
			s := r[i].S
			if len(s) > math.MaxUint16 {
				panic("relation: string too long to encode")
			}
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
			buf = append(buf, b[:]...)
			buf = append(buf, s...)
		}
	}
	return buf
}

// DecodeRow parses a record produced by EncodeRow. The destination row is
// reused if it has the right arity.
func DecodeRow(schema Schema, data []byte, dst Row) (Row, error) {
	if cap(dst) >= len(schema) {
		dst = dst[:len(schema)]
	} else {
		dst = make(Row, len(schema))
	}
	off := 0
	for i, col := range schema {
		switch col.Kind {
		case KindInt64:
			if off+8 > len(data) {
				return nil, fmt.Errorf("relation: truncated int64 at column %d", i)
			}
			dst[i] = Value{Kind: KindInt64, I: int64(binary.LittleEndian.Uint64(data[off:]))}
			off += 8
		case KindFloat64:
			if off+8 > len(data) {
				return nil, fmt.Errorf("relation: truncated float64 at column %d", i)
			}
			dst[i] = Value{Kind: KindFloat64, F: math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))}
			off += 8
		case KindString:
			if off+2 > len(data) {
				return nil, fmt.Errorf("relation: truncated string length at column %d", i)
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, fmt.Errorf("relation: truncated string at column %d", i)
			}
			dst[i] = Value{Kind: KindString, S: string(data[off : off+n])}
			off += n
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("relation: %d trailing bytes after row", len(data)-off)
	}
	return dst, nil
}
