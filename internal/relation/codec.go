package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeRow serializes a row for slotted-page storage: int64 and float64 as
// 8 little-endian bytes, strings as uint16 length + bytes. The schema is not
// stored — the heap file's catalog entry carries it.
func EncodeRow(schema Schema, r Row, buf []byte) []byte {
	for i, col := range schema {
		switch col.Kind {
		case KindInt64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(r[i].I))
			buf = append(buf, b[:]...)
		case KindFloat64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(r[i].F))
			buf = append(buf, b[:]...)
		case KindString:
			s := r[i].S
			if len(s) > math.MaxUint16 {
				panic("relation: string too long to encode")
			}
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
			buf = append(buf, b[:]...)
			buf = append(buf, s...)
		}
	}
	return buf
}

// ColumnBatch accumulates decoded rows column-wise: one typed slice per
// schema column, filled straight from page bytes with no per-row Value
// boxing. It is the unit of the zero-copy scan path (DESIGN.md §10): a scan
// decodes a batch, the consumer reads the typed columns, Reset recycles the
// capacity, and a steady-state scan allocates nothing.
type ColumnBatch struct {
	Schema Schema
	// Ints[i] / Floats[i] / Strs[i] holds column i's values when the
	// schema's kind matches; the other two are nil for that index.
	Ints   [][]int64
	Floats [][]float64
	Strs   [][]string

	n        int
	fixed    int  // total encoded width of the fixed-width columns
	varWidth bool // schema has string columns (records vary in length)
}

// NewColumnBatch prepares a batch for the schema with the given row
// capacity pre-allocated per column.
func NewColumnBatch(schema Schema, capacity int) *ColumnBatch {
	b := &ColumnBatch{
		Schema: schema,
		Ints:   make([][]int64, len(schema)),
		Floats: make([][]float64, len(schema)),
		Strs:   make([][]string, len(schema)),
	}
	for i, col := range schema {
		switch col.Kind {
		case KindInt64:
			b.Ints[i] = make([]int64, 0, capacity)
			b.fixed += 8
		case KindFloat64:
			b.Floats[i] = make([]float64, 0, capacity)
			b.fixed += 8
		case KindString:
			b.Strs[i] = make([]string, 0, capacity)
			b.varWidth = true
		}
	}
	return b
}

// Len returns the number of rows currently decoded into the batch.
func (b *ColumnBatch) Len() int { return b.n }

// Reset empties the batch, keeping every column's capacity.
func (b *ColumnBatch) Reset() {
	for i := range b.Schema {
		if b.Ints[i] != nil {
			b.Ints[i] = b.Ints[i][:0]
		}
		if b.Floats[i] != nil {
			b.Floats[i] = b.Floats[i][:0]
		}
		if b.Strs[i] != nil {
			b.Strs[i] = b.Strs[i][:0]
		}
	}
	b.n = 0
}

// AppendInts bulk-appends decoded values to int column col. Pair with
// appends on the other columns and one GrowRows call per batch so the batch
// stays rectangular — this is the columnar load path (a compressed segment
// decodes straight into the batch, no per-row DecodeColumns).
func (b *ColumnBatch) AppendInts(col int, vals []int64) {
	b.Ints[col] = append(b.Ints[col], vals...)
}

// AppendFloats bulk-appends decoded values to float column col.
func (b *ColumnBatch) AppendFloats(col int, vals []float64) {
	b.Floats[col] = append(b.Floats[col], vals...)
}

// GrowRows commits n rows appended column-wise via AppendInts/AppendFloats,
// verifying every column reached exactly the new row count.
func (b *ColumnBatch) GrowRows(n int) error {
	b.n += n
	for i, col := range b.Schema {
		var got int
		switch col.Kind {
		case KindInt64:
			got = len(b.Ints[i])
		case KindFloat64:
			got = len(b.Floats[i])
		case KindString:
			got = len(b.Strs[i])
		}
		if got != b.n {
			return fmt.Errorf("relation: column %d has %d rows after grow, batch has %d", i, got, b.n)
		}
	}
	return nil
}

// DecodeColumns appends one encoded record's values to the batch's typed
// columns, decoding directly from the page bytes. This is the columnar
// counterpart of DecodeRow: same wire format, no Value boxing. On error the
// batch is left exactly as it was — a partially decoded row is rolled back,
// so columns can never end up misaligned.
func (b *ColumnBatch) DecodeColumns(data []byte) (err error) {
	if !b.varWidth && len(data) != b.fixed {
		return fmt.Errorf("relation: record is %d bytes, schema needs %d", len(data), b.fixed)
	}
	if b.varWidth {
		// Variable-width rows can fail mid-record; restore every column to
		// its entry length so the batch stays rectangular.
		defer func() {
			if err == nil {
				return
			}
			for i := range b.Schema {
				if b.Ints[i] != nil && len(b.Ints[i]) > b.n {
					b.Ints[i] = b.Ints[i][:b.n]
				}
				if b.Floats[i] != nil && len(b.Floats[i]) > b.n {
					b.Floats[i] = b.Floats[i][:b.n]
				}
				if b.Strs[i] != nil && len(b.Strs[i]) > b.n {
					b.Strs[i] = b.Strs[i][:b.n]
				}
			}
		}()
	}
	off := 0
	for i, col := range b.Schema {
		switch col.Kind {
		case KindInt64:
			if off+8 > len(data) {
				return fmt.Errorf("relation: truncated int64 at column %d", i)
			}
			b.Ints[i] = append(b.Ints[i], int64(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case KindFloat64:
			if off+8 > len(data) {
				return fmt.Errorf("relation: truncated float64 at column %d", i)
			}
			b.Floats[i] = append(b.Floats[i], math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case KindString:
			if off+2 > len(data) {
				return fmt.Errorf("relation: truncated string length at column %d", i)
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return fmt.Errorf("relation: truncated string at column %d", i)
			}
			b.Strs[i] = append(b.Strs[i], string(data[off:off+n]))
			off += n
		}
	}
	if off != len(data) {
		return fmt.Errorf("relation: %d trailing bytes after row", len(data)-off)
	}
	b.n++
	return nil
}

// DecodeRow parses a record produced by EncodeRow. The destination row is
// reused if it has the right arity.
func DecodeRow(schema Schema, data []byte, dst Row) (Row, error) {
	if cap(dst) >= len(schema) {
		dst = dst[:len(schema)]
	} else {
		dst = make(Row, len(schema))
	}
	off := 0
	for i, col := range schema {
		switch col.Kind {
		case KindInt64:
			if off+8 > len(data) {
				return nil, fmt.Errorf("relation: truncated int64 at column %d", i)
			}
			dst[i] = Value{Kind: KindInt64, I: int64(binary.LittleEndian.Uint64(data[off:]))}
			off += 8
		case KindFloat64:
			if off+8 > len(data) {
				return nil, fmt.Errorf("relation: truncated float64 at column %d", i)
			}
			dst[i] = Value{Kind: KindFloat64, F: math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))}
			off += 8
		case KindString:
			if off+2 > len(data) {
				return nil, fmt.Errorf("relation: truncated string length at column %d", i)
			}
			n := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+n > len(data) {
				return nil, fmt.Errorf("relation: truncated string at column %d", i)
			}
			dst[i] = Value{Kind: KindString, S: string(data[off : off+n])}
			off += n
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("relation: %d trailing bytes after row", len(data)-off)
	}
	return dst, nil
}
