package relation

import (
	"testing"
	"testing/quick"
)

func TestSchemaColIndex(t *testing.T) {
	s := Schema{{"a", KindInt64}, {"b", KindFloat64}}
	if s.ColIndex("b") != 1 || s.ColIndex("z") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if s.MustColIndex("a") != 0 {
		t.Fatal("MustColIndex wrong")
	}
}

func TestMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Schema{{"a", KindInt64}}.MustColIndex("missing")
}

func TestSchemaProject(t *testing.T) {
	s := Schema{{"a", KindInt64}, {"b", KindFloat64}, {"c", KindString}}
	p := s.Project("c", "a")
	if len(p) != 2 || p[0].Name != "c" || p[1].Name != "a" {
		t.Fatalf("projected %v", p)
	}
}

func TestValueEqualLess(t *testing.T) {
	if !IntVal(3).Equal(IntVal(3)) || IntVal(3).Equal(IntVal(4)) {
		t.Fatal("int equality")
	}
	if IntVal(3).Equal(FloatVal(3)) {
		t.Fatal("cross-kind values are never equal")
	}
	if !IntVal(1).Less(IntVal(2)) || !FloatVal(1.5).Less(FloatVal(2.5)) || !StrVal("a").Less(StrVal("b")) {
		t.Fatal("ordering")
	}
}

func TestValueAsFloat(t *testing.T) {
	if IntVal(4).AsFloat() != 4 || FloatVal(2.5).AsFloat() != 2.5 {
		t.Fatal("numeric conversion")
	}
	if StrVal("3.25").AsFloat() != 3.25 || StrVal("junk").AsFloat() != 0 {
		t.Fatal("string conversion")
	}
}

func TestValueString(t *testing.T) {
	if IntVal(-7).String() != "-7" || StrVal("x").String() != "x" {
		t.Fatal("string rendering")
	}
	if FloatVal(0.5).String() != "0.5" {
		t.Fatalf("float rendering: %s", FloatVal(0.5).String())
	}
}

func TestTableAppendChecksKinds(t *testing.T) {
	tb := NewTable("t", Schema{{"a", KindInt64}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	tb.Append(Row{FloatVal(1)})
}

func TestTableAppendChecksArity(t *testing.T) {
	tb := NewTable("t", Schema{{"a", KindInt64}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	tb.Append(Row{IntVal(1), IntVal(2)})
}

func TestTableAppendAndLen(t *testing.T) {
	tb := NewTable("t", Schema{{"a", KindInt64}, {"s", KindString}})
	tb.Append(Row{IntVal(1), StrVal("x")})
	tb.Append(Row{IntVal(2), StrVal("y")})
	if tb.Len() != 2 || tb.Rows[1][1].S != "y" {
		t.Fatal("append failed")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{IntVal(1)}
	c := r.Clone()
	c[0] = IntVal(9)
	if r[0].I != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestCodecRoundTripFixed(t *testing.T) {
	s := Schema{{"id", KindInt64}, {"v", KindFloat64}, {"name", KindString}}
	r := Row{IntVal(-42), FloatVal(3.14159), StrVal("héllo")}
	buf := EncodeRow(s, r, nil)
	got, err := DecodeRow(s, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if !got[i].Equal(r[i]) {
			t.Fatalf("column %d: %v vs %v", i, got[i], r[i])
		}
	}
}

// Property: encode/decode round-trips arbitrary rows.
func TestCodecRoundTripProperty(t *testing.T) {
	s := Schema{{"a", KindInt64}, {"b", KindFloat64}, {"c", KindString}, {"d", KindInt64}}
	f := func(a int64, b float64, c string, d int64) bool {
		if len(c) > 60000 {
			c = c[:60000]
		}
		r := Row{IntVal(a), FloatVal(b), StrVal(c), IntVal(d)}
		buf := EncodeRow(s, r, nil)
		got, err := DecodeRow(s, buf, nil)
		if err != nil {
			return false
		}
		// NaN float payloads round-trip bit-exactly but don't compare equal;
		// compare via String to sidestep NaN != NaN.
		for i := range r {
			if !got[i].Equal(r[i]) && got[i].String() != r[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowTruncated(t *testing.T) {
	s := Schema{{"a", KindInt64}}
	if _, err := DecodeRow(s, []byte{1, 2, 3}, nil); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDecodeRowTrailingGarbage(t *testing.T) {
	s := Schema{{"a", KindInt64}}
	buf := EncodeRow(s, Row{IntVal(1)}, nil)
	buf = append(buf, 0xff)
	if _, err := DecodeRow(s, buf, nil); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestDecodeRowReusesDst(t *testing.T) {
	s := Schema{{"a", KindInt64}}
	buf := EncodeRow(s, Row{IntVal(5)}, nil)
	dst := make(Row, 1)
	got, err := DecodeRow(s, buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Fatal("expected dst reuse")
	}
}

func TestDecodeColumnsMatchesDecodeRow(t *testing.T) {
	schema := Schema{
		{"geneid", KindInt64},
		{"expressionvalue", KindFloat64},
		{"label", KindString},
	}
	rows := []Row{
		{IntVal(7), FloatVal(3.25), StrVal("alpha")},
		{IntVal(-1), FloatVal(-0.0), StrVal("")},
		{IntVal(1 << 40), FloatVal(1e-300), StrVal("βγ")},
	}
	b := NewColumnBatch(schema, 2)
	var buf []byte
	for _, r := range rows {
		buf = EncodeRow(schema, r, buf[:0])
		if err := b.DecodeColumns(buf); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != len(rows) {
		t.Fatalf("batch len %d", b.Len())
	}
	for i, r := range rows {
		if b.Ints[0][i] != r[0].I || b.Floats[1][i] != r[1].F || b.Strs[2][i] != r[2].S {
			t.Fatalf("row %d: got (%d, %v, %q)", i, b.Ints[0][i], b.Floats[1][i], b.Strs[2][i])
		}
	}
	// Reset keeps capacity and empties all columns.
	b.Reset()
	if b.Len() != 0 || len(b.Ints[0]) != 0 || len(b.Floats[1]) != 0 || len(b.Strs[2]) != 0 {
		t.Fatal("Reset did not empty the batch")
	}
}

func TestDecodeColumnsRejectsBadRecords(t *testing.T) {
	schema := Schema{{"a", KindInt64}, {"b", KindFloat64}}
	b := NewColumnBatch(schema, 4)
	if err := b.DecodeColumns(make([]byte, 15)); err == nil {
		t.Fatal("accepted truncated fixed-width record")
	}
	if err := b.DecodeColumns(make([]byte, 17)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
	if b.Len() != 0 {
		t.Fatalf("failed decodes must not count rows, len=%d", b.Len())
	}
	if err := b.DecodeColumns(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || b.Ints[0][0] != 0 || b.Floats[1][0] != 0 {
		t.Fatal("zero record decoded wrong")
	}

	// Variable-width schemas validate per field.
	vs := Schema{{"s", KindString}}
	vb := NewColumnBatch(vs, 1)
	if err := vb.DecodeColumns([]byte{5, 0, 'h', 'i'}); err == nil {
		t.Fatal("accepted truncated string")
	}
}

// A fixed-width decode into a warm batch must not allocate: this is the
// scan path's per-row cost.
func TestDecodeColumnsZeroAllocSteadyState(t *testing.T) {
	schema := Schema{{"g", KindInt64}, {"p", KindInt64}, {"v", KindFloat64}}
	b := NewColumnBatch(schema, 64)
	rec := EncodeRow(schema, Row{IntVal(3), IntVal(9), FloatVal(2.5)}, nil)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for i := 0; i < 64; i++ {
			if err := b.DecodeColumns(rec); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state columnar decode allocates %.1f per batch", allocs)
	}
}
