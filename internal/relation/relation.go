// Package relation defines the shared relational model used by the row
// store, column store, and MapReduce engines: typed schemas, values, rows,
// and in-memory tables, plus the binary row codec the storage layer uses.
package relation

import (
	"fmt"
	"strconv"
)

// Kind enumerates column types.
type Kind uint8

// Supported column kinds.
const (
	KindInt64 Kind = iota
	KindFloat64
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Column describes one attribute.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column, or −1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex but panics on a missing column — schema references
// in query plans are programmer errors, not runtime conditions.
func (s Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("relation: no column %q in schema %v", name, s))
	}
	return i
}

// Project returns the schema restricted to the named columns, in order.
func (s Schema) Project(names ...string) Schema {
	out := make(Schema, len(names))
	for i, n := range names {
		out[i] = s[s.MustColIndex(n)]
	}
	return out
}

// Value is a compact tagged union. Exactly one of I/F/S is meaningful,
// selected by Kind.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// IntVal makes an int64 value.
func IntVal(v int64) Value { return Value{Kind: KindInt64, I: v} }

// FloatVal makes a float64 value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat64, F: v} }

// StrVal makes a string value.
func StrVal(v string) Value { return Value{Kind: KindString, S: v} }

// Equal reports deep equality (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt64:
		return v.I == o.I
	case KindFloat64:
		return v.F == o.F
	default:
		return v.S == o.S
	}
}

// Less orders values of the same kind (used by the sort operator).
func (v Value) Less(o Value) bool {
	switch v.Kind {
	case KindInt64:
		return v.I < o.I
	case KindFloat64:
		return v.F < o.F
	default:
		return v.S < o.S
	}
}

// AsFloat converts numeric values to float64 (strings parse or yield 0).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt64:
		return float64(v.I)
	case KindFloat64:
		return v.F
	default:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
}

// String renders the value for export formats (text COPY).
func (v Value) String() string {
	switch v.Kind {
	case KindInt64:
		return strconv.FormatInt(v.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// Row is one tuple.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory relation.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Append adds a row after checking arity and kinds.
func (t *Table) Append(r Row) {
	if len(r) != len(t.Schema) {
		panic(fmt.Sprintf("relation: row arity %d vs schema %d", len(r), len(t.Schema)))
	}
	for i, v := range r {
		if v.Kind != t.Schema[i].Kind {
			panic(fmt.Sprintf("relation: column %s kind %v got %v", t.Schema[i].Name, t.Schema[i].Kind, v.Kind))
		}
	}
	t.Rows = append(t.Rows, r)
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }
