// Package xeonphi models the Intel Xeon Phi 5110P coprocessor used in the
// paper's §5 hardware-acceleration experiments. No accelerator is attached
// to this machine, so the device executes the real kernel (answers stay
// correct) while its clock advances by measured-compute ÷ per-kernel rate,
// plus explicit PCIe transfer charges ("data must be copied into the memory
// of the Intel Xeon Phi coprocessor before it is operated on"). The rates
// are calibrated to land in the paper's observed 1.2–2.9× analytics-speedup
// band (Table 1); biclustering's rate is near 1 because the algorithm is
// branchy scalar code that "cannot be expected to show significant speedup
// on any accelerator".
package xeonphi

import (
	"context"
	"fmt"
	"time"

	"github.com/genbase/genbase/internal/engine"
)

// Device is a coprocessor model.
type Device struct {
	// Rates maps kernel kinds to compute-rate multipliers (virtual device
	// time = measured ÷ rate). Missing kinds use DefaultRate.
	Rates map[string]float64
	// DefaultRate applies to unknown kernel kinds.
	DefaultRate float64
	// LinkBandwidth is the PCIe bandwidth in bytes/second.
	LinkBandwidth float64
	// LinkLatencySec is the per-transfer setup latency.
	LinkLatencySec float64
	// MemBytes is the device memory; kernels whose input exceeds it pay the
	// SpillPenalty on compute ("data sets that do not fit in this memory
	// will suffer excessive data movement costs during computation").
	MemBytes int64
	// SpillPenalty multiplies compute time when the input spills (≥ 1).
	SpillPenalty float64
}

// MeasureKernel times an idempotent analytics kernel. Sub-5ms kernels are
// re-run twice and the minimum kept: on a shared single-core machine a
// single sub-millisecond sample is dominated by scheduler and GC noise,
// which would make modeled speedup ratios meaningless. Benchmark kernels are
// pure functions of their inputs, so re-running is safe — including the
// multicore kernels from internal/parallel, which are bitwise deterministic
// at any worker count; a parallel host kernel simply yields a smaller
// measured duration, and the device rates divide whatever was measured
// (DESIGN.md §5, §9).
func MeasureKernel(kernel func() error) (float64, error) {
	start := time.Now()
	if err := kernel(); err != nil {
		return 0, err
	}
	best := time.Since(start).Seconds()
	for rep := 0; rep < 2 && best < 5e-3; rep++ {
		start = time.Now()
		if err := kernel(); err != nil {
			return 0, err
		}
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}

// Kernel kind names used by the SciDB engine.
const (
	KindGEMM      = "gemm"      // covariance (pdgemm auto-offload)
	KindLanczos   = "lanczos"   // SVD
	KindRank      = "rank"      // statistics / Wilcoxon
	KindBicluster = "bicluster" // biclustering
)

// NewDevice5110P returns the calibrated model of the paper's card: 60 cores
// at 8 GB, PCIe 2.0 x16 (~6 GiB/s), with per-kernel rates chosen so the
// single-node analytics speedups land near Table 1's 2.60 (covariance),
// 2.93 (SVD), 1.40 (statistics) and 1.18 (biclustering). Device memory is
// scaled 1/20 with the datasets.
func NewDevice5110P() *Device {
	return &Device{
		Rates: map[string]float64{
			KindGEMM:      2.7,
			KindLanczos:   3.0,
			KindRank:      1.45,
			KindBicluster: 1.18,
		},
		DefaultRate:    2.0,
		LinkBandwidth:  6 << 30,
		LinkLatencySec: 50e-6,
		MemBytes:       8 << 30 / 20,
		SpillPenalty:   3.0,
	}
}

// Name implements arraydb.Accelerator.
func (d *Device) Name() string { return "xeonphi" }

// Offload implements arraydb.Accelerator: run the kernel for real, report
// modeled device compute seconds and transfer seconds.
func (d *Device) Offload(ctx context.Context, kind string, inBytes, outBytes int64, kernel func() error) (compute, transfer float64, err error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return 0, 0, err
	}
	rate := d.DefaultRate
	if r, ok := d.Rates[kind]; ok {
		rate = r
	}
	if rate <= 0 {
		return 0, 0, fmt.Errorf("xeonphi: invalid rate for kernel %q", kind)
	}
	measured, err := MeasureKernel(kernel)
	if err != nil {
		return 0, 0, err
	}
	compute = measured / rate
	if d.MemBytes > 0 && inBytes > d.MemBytes {
		compute *= d.SpillPenalty
	}
	transfer = 2*d.LinkLatencySec + float64(inBytes+outBytes)/d.LinkBandwidth
	return compute, transfer, nil
}
