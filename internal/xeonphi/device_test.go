package xeonphi

import (
	"context"
	"errors"
	"testing"
	"time"
)

func busyKernel(d time.Duration) func() error {
	return func() error {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return nil
	}
}

func TestOffloadSpeedsUpCompute(t *testing.T) {
	dev := NewDevice5110P()
	compute, _, err := dev.Offload(context.Background(), KindGEMM, 1<<20, 1<<10, busyKernel(4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Device time ≈ measured/2.7, so well under the real 4ms.
	if compute >= 0.004 || compute <= 0 {
		t.Fatalf("compute=%v", compute)
	}
}

func TestOffloadChargesTransfer(t *testing.T) {
	dev := NewDevice5110P()
	_, transfer, err := dev.Offload(context.Background(), KindGEMM, 6<<30, 0, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// 6 GiB over a 6 GiB/s link ≈ 1 s.
	if transfer < 0.9 || transfer > 1.2 {
		t.Fatalf("transfer=%v", transfer)
	}
}

func TestBiclusterBarelyAccelerated(t *testing.T) {
	dev := NewDevice5110P()
	gemm, _, _ := dev.Offload(context.Background(), KindGEMM, 0, 0, busyKernel(3*time.Millisecond))
	bic, _, _ := dev.Offload(context.Background(), KindBicluster, 0, 0, busyKernel(3*time.Millisecond))
	if bic <= gemm {
		t.Fatalf("bicluster (%v) should be slower on device than gemm (%v)", bic, gemm)
	}
}

func TestSpillPenalty(t *testing.T) {
	dev := NewDevice5110P()
	dev.MemBytes = 100
	small, _, _ := dev.Offload(context.Background(), KindGEMM, 50, 0, busyKernel(2*time.Millisecond))
	big, _, _ := dev.Offload(context.Background(), KindGEMM, 200, 0, busyKernel(2*time.Millisecond))
	if big < small*2 {
		t.Fatalf("spill penalty not applied: small=%v big=%v", small, big)
	}
}

func TestKernelErrorPropagates(t *testing.T) {
	dev := NewDevice5110P()
	boom := errors.New("boom")
	if _, _, err := dev.Offload(context.Background(), KindRank, 0, 0, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
}

func TestContextCancelled(t *testing.T) {
	dev := NewDevice5110P()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := dev.Offload(ctx, KindRank, 0, 0, func() error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
}

func TestUnknownKindUsesDefaultRate(t *testing.T) {
	dev := NewDevice5110P()
	c, _, err := dev.Offload(context.Background(), "mystery", 0, 0, busyKernel(2*time.Millisecond))
	if err != nil || c <= 0 {
		t.Fatalf("c=%v err=%v", c, err)
	}
}
