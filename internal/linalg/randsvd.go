package linalg

import (
	"errors"
	"math"
)

// RandomizedSVD computes an approximate top-k SVD by randomized range
// finding (Halko, Martinsson & Tropp): sample Y = (AᵀA)^q·Aᵀ·Ω for a random
// Gaussian Ω with k+p columns, orthonormalize, and solve the small projected
// problem exactly. The paper's discussion (§6.3) calls exactly for this
// class of method: "there exist efficient approximate algorithms that
// parallelize well. It is likely that such algorithms will be critically
// important as dataset sizes grow — for example, in our benchmark,
// approximation algorithms may have allowed us to scale to the 60K × 70K
// dataset that none of the systems we tested could process".
//
// Options: oversample p (default 8) and power iterations q (default 2, which
// sharpens accuracy on slowly decaying spectra). The cost is a fixed, small
// number of passes over A — O(mn(k+p)) — versus Lanczos's data-dependent
// iteration count.
type RandSVDOptions struct {
	Oversample int
	PowerIters int
	Seed       uint64
}

// RandomizedSVD returns the approximate top-k singular values and right
// singular vectors of a.
func RandomizedSVD(a *Matrix, k int, opts RandSVDOptions) (*SVDResult, error) {
	if k <= 0 {
		return nil, errors.New("linalg: k must be positive")
	}
	n := a.Cols
	if k > n {
		k = n
	}
	p := opts.Oversample
	if p <= 0 {
		p = 8
	}
	q := opts.PowerIters
	if q < 0 {
		q = 0
	} else if opts.PowerIters == 0 {
		q = 2
	}
	l := k + p
	if l > n {
		l = n
	}

	// Gaussian test matrix Ω (n×l), deterministic.
	rng := splitMix64(opts.Seed ^ 0x6a09e667f3bcc909)
	gauss := func() float64 {
		// Box–Muller from two uniforms.
		u1 := rng()
		for u1 == 0 {
			u1 = rng()
		}
		u2 := rng()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	omega := NewMatrix(n, l)
	for i := range omega.Data {
		omega.Data[i] = gauss()
	}

	// Range finding on the Gram operator: Y = (AᵀA)^(q+1)·Ω, re-orthonormalized
	// between powers for numerical stability.
	y := gramTimes(a, omega)
	for it := 0; it < q; it++ {
		qy, err := orthonormalize(y)
		if err != nil {
			return nil, err
		}
		y = gramTimes(a, qy)
	}
	qmat, err := orthonormalize(y)
	if err != nil {
		return nil, err
	}

	// Project: B = AᵀA restricted to range(Q): B = Qᵀ(AᵀA)Q (l×l), solve
	// exactly with the dense eigensolver.
	aq := Mul(a, qmat) // m×l
	b := MulATA(aq)    // QᵀAᵀAQ, l×l symmetric
	vals, vecs, err := JacobiEig(b)
	if err != nil {
		return nil, err
	}

	res := &SVDResult{
		SingularValues: make([]float64, k),
		V:              NewMatrix(n, k),
		U:              NewMatrix(a.Rows, k),
	}
	for j := 0; j < k; j++ {
		lam := vals[j]
		if lam < 0 {
			lam = 0
		}
		sigma := math.Sqrt(lam)
		res.SingularValues[j] = sigma
		// v_j = Q · w_j.
		v := MatVec(qmat, vecs.Col(j))
		for i := 0; i < n; i++ {
			res.V.Set(i, j, v[i])
		}
		if sigma > 1e-13 {
			u := MatVec(a, v)
			ScaleVec(1/sigma, u)
			for i := 0; i < a.Rows; i++ {
				res.U.Set(i, j, u[i])
			}
		}
	}
	return res, nil
}

// gramTimes computes AᵀA·X without forming AᵀA: Aᵀ(A·X).
func gramTimes(a, x *Matrix) *Matrix {
	ax := Mul(a, x)
	// AᵀY via row accumulation.
	out := NewMatrix(a.Cols, x.Cols)
	for i := 0; i < a.Rows; i++ {
		ra := a.Row(i)
		ry := ax.Row(i)
		for j, v := range ra {
			if v == 0 {
				continue
			}
			ro := out.Row(j)
			for c, w := range ry {
				ro[c] += v * w
			}
		}
	}
	return out
}

// orthonormalize returns the thin Q factor of m.
func orthonormalize(m *Matrix) (*Matrix, error) {
	qr, err := NewQR(m)
	if err != nil {
		return nil, err
	}
	return qr.Q(), nil
}
