package linalg

import (
	"errors"
	"math"

	"github.com/genbase/genbase/internal/parallel"
)

// LinearOperator abstracts "multiply a vector by a symmetric matrix". The
// engines provide different implementations: a dense in-memory operator
// (vanilla R), a chunked array operator (SciDB), a relational join+aggregate
// operator (Postgres+Madlib's simulated-SQL path), an MR job (Mahout), and a
// distributed all-reduce operator (pbdR). Lanczos itself is shared.
type LinearOperator interface {
	// Dim is the order of the (square, symmetric) operator.
	Dim() int
	// Apply computes y = A·x. The returned slice must not alias x, and
	// ownership transfers to the caller: Lanczos recycles spent result
	// vectors through the pooled arena (PutSlice) once the iteration is
	// done, so an implementation must return a fresh or arena-drawn slice
	// each call and must not retain it. (PutSlice quietly drops buffers it
	// does not recognize, so plain make'd results remain safe.)
	Apply(x []float64) []float64
}

// DenseOperator wraps a symmetric dense matrix as a LinearOperator. Workers
// sets the mat-vec worker count (0 = default knob).
type DenseOperator struct {
	M       *Matrix
	Workers int
}

// Dim implements LinearOperator.
func (d DenseOperator) Dim() int { return d.M.Rows }

// Apply implements LinearOperator. The result is drawn from the pooled
// arena; Lanczos returns it there when the iteration no longer needs it.
func (d DenseOperator) Apply(x []float64) []float64 {
	y := GetSlice(d.M.Rows)
	matVecInto(y, d.M, x, d.Workers)
	return y
}

// ATAOperator applies x ↦ Aᵀ(A·x) without forming AᵀA. This is the operator
// Q4 uses: the Lanczos iteration on AᵀA yields A's singular values. Workers
// sets the worker count of both mat-vecs (0 = default knob).
type ATAOperator struct {
	A       *Matrix
	Workers int
}

// Dim implements LinearOperator.
func (o ATAOperator) Dim() int { return o.A.Cols }

// Apply implements LinearOperator. Both the A·x intermediate and the result
// run through the pooled arena: the intermediate is returned immediately,
// the result once Lanczos is done with it — the per-iteration mat-vec allocs
// this removes were the KernelSVD/parallel allocation blow-up.
func (o ATAOperator) Apply(x []float64) []float64 {
	tmp := GetSlice(o.A.Rows)
	matVecInto(tmp, o.A, x, o.Workers)
	y := GetSlice(o.A.Cols)
	matTVecInto(y, o.A, tmp, o.Workers)
	PutSlice(tmp)
	return y
}

// LanczosOptions controls the iteration.
type LanczosOptions struct {
	// MaxIter caps the Krylov subspace dimension. 0 means min(2k+20, n).
	MaxIter int
	// Tol is the convergence tolerance on Ritz-value movement. 0 means 1e-10.
	Tol float64
	// Reorthogonalize enables full reorthogonalization against all previous
	// Lanczos vectors (needed for accuracy; the ablation bench turns it off).
	Reorthogonalize bool
	// Seed selects the deterministic start vector.
	Seed uint64
	// Workers is the worker count for the dense mat-vec kernels inside the
	// iteration (0 = the GENBASE_PARALLEL / NumCPU default). Results are
	// bitwise identical at any worker count; the reorthogonalization sweep
	// itself is a serial chain of dependent updates and stays single-threaded.
	Workers int
}

// EigResult holds the top-k eigenpairs, eigenvalues in descending order.
type EigResult struct {
	Values     []float64
	Vectors    *Matrix // n×k; column j pairs with Values[j]. Nil if not requested.
	Iterations int
}

// Lanczos finds the k largest eigenvalues (and eigenvectors) of a symmetric
// positive semi-definite operator, per the paper's Q4 ("the Lanczos
// algorithm, ... a power method that can iteratively find the largest
// eigenvalues of symmetric positive semidefinite matrices").
func Lanczos(op LinearOperator, k int, opts LanczosOptions) (*EigResult, error) {
	n := op.Dim()
	if n == 0 {
		return &EigResult{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}
	if k <= 0 {
		return nil, errors.New("linalg: k must be positive")
	}
	if k > n {
		k = n
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 2*k + 20
	}
	if maxIter > n {
		maxIter = n
	}
	if maxIter < k {
		maxIter = k
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}

	// Deterministic pseudo-random start vector, drawn from the arena like
	// every other basis vector (recycled below with the rest of the basis).
	rng := splitMix64(opts.Seed ^ 0x9e3779b97f4a7c15)
	v := GetSlice(n)
	for i := range v {
		v[i] = rng()*2 - 1
	}
	nv := Norm2(v)
	if nv == 0 {
		v[0] = 1
		nv = 1
	}
	ScaleVec(1/nv, v)

	basis := make([][]float64, 0, maxIter)
	var alpha, beta []float64
	var prevRitz []float64

	w := v
	var vPrev []float64
	var av []float64
	betaPrev := 0.0
	iters := 0
	for j := 0; j < maxIter; j++ {
		iters = j + 1
		basis = append(basis, w)
		av = op.Apply(w)
		if vPrev != nil {
			Axpy(-betaPrev, vPrev, av)
		}
		a := Dot(w, av)
		alpha = append(alpha, a)
		Axpy(-a, w, av)
		if opts.Reorthogonalize {
			// Twice is enough (Kahan): remove components along every previous
			// Lanczos vector to defeat the classic loss of orthogonality.
			for pass := 0; pass < 2; pass++ {
				for _, u := range basis {
					Axpy(-Dot(u, av), u, av)
				}
			}
		}
		b := Norm2(av)
		// Convergence check on the current Ritz values.
		if len(alpha) >= k {
			ritz, _, err := SymTriEig(alpha, beta, false)
			if err != nil {
				return nil, err
			}
			topK := topDescending(ritz, k)
			if prevRitz != nil && maxMove(topK, prevRitz) < tol*(1+math.Abs(topK[0])) {
				break
			}
			prevRitz = topK
		}
		if b < 1e-13 {
			// Invariant subspace found (happy breakdown).
			break
		}
		if j+1 < maxIter {
			beta = append(beta, b)
			ScaleVec(1/b, av)
			vPrev = w
			betaPrev = b
			w = av
		}
	}

	m := len(alpha)
	vals, vecsT, err := SymTriEig(alpha, beta[:m-1], true)
	if err != nil {
		return nil, err
	}
	// Take the k largest (SymTriEig returns ascending).
	if k > m {
		k = m
	}
	res := &EigResult{Values: make([]float64, k), Iterations: iters}
	res.Vectors = NewMatrix(n, k)
	for j := 0; j < k; j++ {
		res.Values[j] = vals[m-1-j]
	}
	// Ritz vectors: V_basis · y_col, with the output rows partitioned across
	// the pool (each element keeps its serial accumulation order over t).
	ritzWorkers := gemmWorkers(opts.Workers, int64(n)*int64(m)*int64(k))
	parallel.ForSplit(ritzWorkers, n, func(lo, hi int) {
		for j := 0; j < k; j++ {
			col := m - 1 - j
			for t := 0; t < m; t++ {
				c := vecsT.At(t, col)
				if c == 0 {
					continue
				}
				bt := basis[t]
				for i := lo; i < hi; i++ {
					res.Vectors.Data[i*res.Vectors.Stride+j] += c * bt[i]
				}
			}
		}
	})
	// Recycle the Krylov basis and the final (never-enrolled) Apply result:
	// every loop exit leaves the last av outside basis. Basis entries are the
	// start vector plus enrolled Apply results — all arena-drawn under the
	// Apply ownership contract.
	for _, u := range basis {
		PutSlice(u)
	}
	PutSlice(av)
	return res, nil
}

// SVDResult holds the top-k singular triplets of a rectangular matrix.
type SVDResult struct {
	SingularValues []float64
	// V holds right-singular vectors (cols of A's row space), n×k.
	V *Matrix
	// U holds left-singular vectors, m×k (computed as A·v/σ).
	U *Matrix
}

// TopKSVD computes the k largest singular values/vectors of A by running
// Lanczos on the implicit operator AᵀA (Q4's workflow).
func TopKSVD(a *Matrix, k int, opts LanczosOptions) (*SVDResult, error) {
	if k > a.Cols {
		k = a.Cols
	}
	eig, err := Lanczos(ATAOperator{A: a, Workers: opts.Workers}, k, opts)
	if err != nil {
		return nil, err
	}
	res := &SVDResult{
		SingularValues: make([]float64, len(eig.Values)),
		V:              eig.Vectors,
		U:              NewMatrix(a.Rows, len(eig.Values)),
	}
	for j, lam := range eig.Values {
		if lam < 0 {
			lam = 0 // AᵀA is PSD; tiny negatives are roundoff
		}
		sigma := math.Sqrt(lam)
		res.SingularValues[j] = sigma
		if sigma > 1e-13 {
			u := GetSlice(a.Rows)
			matVecInto(u, a, eig.Vectors.Col(j), opts.Workers)
			ScaleVec(1/sigma, u)
			for i := 0; i < a.Rows; i++ {
				res.U.Set(i, j, u[i])
			}
			PutSlice(u)
		}
	}
	return res, nil
}

// topDescending returns the k largest entries of vals in descending order.
func topDescending(vals []float64, k int) []float64 {
	out := make([]float64, 0, k)
	for i := len(vals) - 1; i >= 0 && len(out) < k; i-- {
		out = append(out, vals[i])
	}
	return out
}

func maxMove(a, b []float64) float64 {
	n := min(len(a), len(b))
	max := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// splitMix64 returns a deterministic uniform-[0,1) generator.
func splitMix64(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
}
