package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymTriEigKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, vecs, err := SymTriEig([]float64{2, 2}, []float64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 1, 1e-12) || !almostEqual(vals[1], 3, 1e-12) {
		t.Fatalf("vals=%v", vals)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	if !almostEqual(math.Abs(vecs.At(0, 1)), math.Sqrt2/2, 1e-10) {
		t.Fatalf("vec=%v", vecs.Col(1))
	}
}

func TestSymTriEigDiagonal(t *testing.T) {
	vals, _, err := SymTriEig([]float64{3, 1, 2}, []float64{0, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-14) {
			t.Fatalf("vals=%v", vals)
		}
	}
}

func TestSymTriEigEmptyAndSingle(t *testing.T) {
	if vals, _, err := SymTriEig(nil, nil, false); err != nil || len(vals) != 0 {
		t.Fatalf("empty: %v %v", vals, err)
	}
	vals, vecs, err := SymTriEig([]float64{5}, nil, true)
	if err != nil || vals[0] != 5 || vecs.At(0, 0) != 1 {
		t.Fatalf("single: %v %v %v", vals, vecs, err)
	}
}

// Property: eigen-decomposition of a random tridiagonal reconstructs it:
// T·v = λ·v for every pair.
func TestSymTriEigResiduals(t *testing.T) {
	f := func(seed uint64) bool {
		rng := splitMix64(seed)
		n := int(seed%12) + 2
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng()*4 - 2
		}
		for i := range e {
			e[i] = rng()*2 - 1
		}
		vals, vecs, err := SymTriEig(d, e, true)
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			v := vecs.Col(j)
			// Compute T·v − λ·v.
			for i := 0; i < n; i++ {
				tv := d[i] * v[i]
				if i > 0 {
					tv += e[i-1] * v[i-1]
				}
				if i < n-1 {
					tv += e[i] * v[i+1]
				}
				if math.Abs(tv-vals[j]*v[i]) > 1e-8 {
					return false
				}
			}
		}
		// Ascending order.
		for j := 1; j < n; j++ {
			if vals[j] < vals[j-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiEigKnown(t *testing.T) {
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := JacobiEig(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-10) || !almostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals=%v", vals)
	}
	// A·v = λ·v for top pair.
	av := MatVec(m, vecs.Col(0))
	for i, v := range av {
		if !almostEqual(v, 3*vecs.At(i, 0), 1e-10) {
			t.Fatal("eigenpair residual too large")
		}
	}
}

func TestJacobiEigOrthogonalVectors(t *testing.T) {
	s := randSymmetric(8, 500)
	_, vecs, err := JacobiEig(s)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(MulATA(vecs), Identity(8)) > 1e-9 {
		t.Fatal("Jacobi eigenvectors not orthonormal")
	}
}

func TestJacobiTraceInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%8) + 2
		s := randSymmetric(n, seed)
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += s.At(i, i)
		}
		vals, _, err := JacobiEig(s)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return almostEqual(sum, trace, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLanczosMatchesJacobiOnSPD(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%15) + 6
		spd := randSPD(n, seed)
		ref, _, err := JacobiEig(spd)
		if err != nil {
			return false
		}
		k := 3
		got, err := Lanczos(DenseOperator{M: spd}, k, LanczosOptions{Reorthogonalize: true, Seed: seed})
		if err != nil {
			return false
		}
		scale := 1 + math.Abs(ref[0])
		for i := 0; i < k; i++ {
			if math.Abs(got.Values[i]-ref[i]) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLanczosEigenpairResidual(t *testing.T) {
	spd := randSPD(30, 31415)
	res, err := Lanczos(DenseOperator{M: spd}, 5, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		v := res.Vectors.Col(j)
		av := MatVec(spd, v)
		for i := range av {
			if math.Abs(av[i]-res.Values[j]*v[i]) > 1e-5*(1+res.Values[0]) {
				t.Fatalf("residual too large for pair %d", j)
			}
		}
	}
}

func TestLanczosDescendingValues(t *testing.T) {
	spd := randSPD(25, 999)
	res, err := Lanczos(DenseOperator{M: spd}, 6, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] > res.Values[i-1]+1e-12 {
			t.Fatalf("values not descending: %v", res.Values)
		}
	}
}

func TestLanczosKLargerThanN(t *testing.T) {
	spd := randSPD(4, 7)
	res, err := Lanczos(DenseOperator{M: spd}, 10, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("expected clamp to n=4, got %d values", len(res.Values))
	}
}

func TestLanczosLowRankBreakdown(t *testing.T) {
	// Rank-1 SPD matrix: vvᵀ. Lanczos should hit a happy breakdown and still
	// return the single nonzero eigenvalue correctly.
	n := 12
	v := make([]float64, n)
	rng := splitMix64(77)
	for i := range v {
		v[i] = rng()
	}
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, v[i]*v[j])
		}
	}
	res, err := Lanczos(DenseOperator{M: m}, 3, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	want := Dot(v, v)
	if !almostEqual(res.Values[0], want, 1e-8*want) {
		t.Fatalf("top eigenvalue %v want %v", res.Values[0], want)
	}
	for _, lam := range res.Values[1:] {
		if math.Abs(lam) > 1e-7*want {
			t.Fatalf("spurious eigenvalue %v", lam)
		}
	}
}

func TestLanczosZeroDim(t *testing.T) {
	res, err := Lanczos(DenseOperator{M: NewMatrix(0, 0)}, 3, LanczosOptions{})
	if err != nil || len(res.Values) != 0 {
		t.Fatalf("zero-dim: %v %v", res, err)
	}
}

func TestLanczosRejectsNonPositiveK(t *testing.T) {
	if _, err := Lanczos(DenseOperator{M: randSPD(3, 1)}, 0, LanczosOptions{}); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestTopKSVDMatchesATASpectrum(t *testing.T) {
	a := randMatrix(40, 18, 2024)
	svd, err := TopKSVD(a, 4, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := JacobiEig(MulATA(a))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := math.Sqrt(ref[i])
		if !almostEqual(svd.SingularValues[i], want, 1e-6*(1+want)) {
			t.Fatalf("σ[%d]=%v want %v", i, svd.SingularValues[i], want)
		}
	}
}

// Property: A·v_j = σ_j·u_j for the computed triplets.
func TestTopKSVDTripletConsistency(t *testing.T) {
	a := randMatrix(25, 12, 888)
	svd, err := TopKSVD(a, 3, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		av := MatVec(a, svd.V.Col(j))
		for i := range av {
			if math.Abs(av[i]-svd.SingularValues[j]*svd.U.At(i, j)) > 1e-6*(1+svd.SingularValues[0]) {
				t.Fatalf("triplet %d inconsistent", j)
			}
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly anticorrelated columns.
	a := FromRows([][]float64{{1, -1}, {2, -2}, {3, -3}})
	c := Covariance(a)
	if !almostEqual(c.At(0, 0), 1, 1e-12) || !almostEqual(c.At(0, 1), -1, 1e-12) {
		t.Fatalf("cov=%v", c.Data)
	}
}

func TestCovarianceMatchesPairwise(t *testing.T) {
	a := randMatrix(50, 6, 321)
	c := Covariance(a)
	// Spot-check against the definitional pairwise formula.
	for j := 0; j < 6; j++ {
		for k := j; k < 6; k++ {
			cj, ck := a.Col(j), a.Col(k)
			mj, mk := Mean(cj), Mean(ck)
			s := 0.0
			for i := 0; i < a.Rows; i++ {
				s += (cj[i] - mj) * (ck[i] - mk)
			}
			s /= float64(a.Rows - 1)
			if !almostEqual(c.At(j, k), s, 1e-10) {
				t.Fatalf("cov(%d,%d)=%v want %v", j, k, c.At(j, k), s)
			}
		}
	}
}

// Property: covariance matrices are positive semi-definite (all eigenvalues
// ≥ −ε) and symmetric.
func TestCovariancePSD(t *testing.T) {
	f := func(seed uint64) bool {
		a := randMatrix(int(seed%30)+3, int((seed>>8)%8)+2, seed)
		c := Covariance(a)
		if !c.IsSymmetric(1e-12) {
			return false
		}
		vals, _, err := JacobiEig(c)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceDegenerate(t *testing.T) {
	c := Covariance(NewMatrix(1, 3))
	if c.FrobeniusNorm() != 0 {
		t.Fatal("covariance of a single row must be zero")
	}
}

func TestCenterColumnsZeroMean(t *testing.T) {
	a := randMatrix(20, 5, 111)
	x := CenterColumns(a)
	for _, m := range ColumnMeans(x) {
		if math.Abs(m) > 1e-12 {
			t.Fatalf("column mean %v after centering", m)
		}
	}
}
