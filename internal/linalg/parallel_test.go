package linalg

import (
	"math"
	"testing"
)

// Determinism contract of the parallel kernel layer: every kernel must
// produce BITWISE-identical results at any worker count, because the engines
// compare answers across configurations exactly and the benchmark's
// reproducibility depends on it. Shapes are chosen to exceed the inline
// cutoff and to be indivisible by the block size.

func bitsEqualMat(t *testing.T, name string, w int, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s workers=%d: shape %dx%d vs %dx%d", name, w, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := 0; i < want.Rows; i++ {
		gr, wr := got.Row(i), want.Row(i)
		for j := range wr {
			if math.Float64bits(gr[j]) != math.Float64bits(wr[j]) {
				t.Fatalf("%s workers=%d: element (%d,%d) %v != %v (bitwise)", name, w, i, j, gr[j], wr[j])
			}
		}
	}
}

func bitsEqualVec(t *testing.T, name string, w int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s workers=%d: len %d vs %d", name, w, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s workers=%d: [%d] %v != %v (bitwise)", name, w, i, got[i], want[i])
		}
	}
}

func TestParallelKernelsBitwiseDeterministic(t *testing.T) {
	a := randMatrix(211, 97, 1)
	b := randMatrix(97, 73, 2)
	x := randMatrix(97, 1, 3).Col(0)
	xr := randMatrix(211, 1, 4).Col(0)

	mul1 := MulBlockedP(a, b, 1)
	ata1 := MulATAP(a, 1)
	abt1 := MulABTP(a, a, 1)
	cov1 := CovarianceP(a, 1)
	means1 := ColumnMeansP(a, 1)
	cent1 := CenterColumnsP(a, 1)
	mv1 := MatVecP(a, x, 1)
	mtv1 := MatTVecP(a, xr, 1)
	svd1, err := TopKSVD(a, 6, LanczosOptions{Reorthogonalize: true, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{2, 8} {
		bitsEqualMat(t, "MulBlocked", w, MulBlockedP(a, b, w), mul1)
		bitsEqualMat(t, "MulATA", w, MulATAP(a, w), ata1)
		bitsEqualMat(t, "MulABT", w, MulABTP(a, a, w), abt1)
		bitsEqualMat(t, "Covariance", w, CovarianceP(a, w), cov1)
		bitsEqualVec(t, "ColumnMeans", w, ColumnMeansP(a, w), means1)
		bitsEqualMat(t, "CenterColumns", w, CenterColumnsP(a, w), cent1)
		bitsEqualVec(t, "MatVec", w, MatVecP(a, x, w), mv1)
		bitsEqualVec(t, "MatTVec", w, MatTVecP(a, xr, w), mtv1)
		svdw, err := TopKSVD(a, 6, LanczosOptions{Reorthogonalize: true, Seed: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		bitsEqualVec(t, "TopKSVD values", w, svdw.SingularValues, svd1.SingularValues)
		bitsEqualMat(t, "TopKSVD V", w, svdw.V, svd1.V)
		bitsEqualMat(t, "TopKSVD U", w, svdw.U, svd1.U)
	}
}

// The default-knob entry points must match the explicit-worker variants
// bitwise too (they are the same kernels).
func TestDefaultEntryPointsMatchExplicit(t *testing.T) {
	a := randMatrix(131, 67, 9)
	b := randMatrix(67, 41, 10)
	bitsEqualMat(t, "Mul", 0, Mul(a, b), MulBlockedP(a, b, 1))
	bitsEqualMat(t, "MulATA", 0, MulATA(a), MulATAP(a, 1))
	bitsEqualMat(t, "Covariance", 0, Covariance(a), CovarianceP(a, 1))
}

// Regression for the zero-skip fast path: 0·NaN and 0·±Inf must produce NaN.
// The kernels may skip zero multiplicands only after verifying the skipped-
// against operand is entirely finite.
func TestZeroSkipPropagatesNonFinite(t *testing.T) {
	// C = A·B where A[0][1] == 0 and B row 1 carries NaN / +Inf: every C[0][j]
	// must be NaN (0·NaN = NaN, 0·Inf = NaN).
	a := FromRows([][]float64{{1, 0}, {2, 3}})
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		b := FromRows([][]float64{{1, 2, 3}, {bad, bad, bad}})
		for name, mul := range map[string]func(a, b *Matrix) *Matrix{
			"MulNaive":   MulNaive,
			"MulBlocked": MulBlocked,
		} {
			c := mul(a, b)
			for j := 0; j < 3; j++ {
				if !math.IsNaN(c.At(0, j)) {
					t.Fatalf("%s: C[0][%d] = %v, want NaN (0·%v dropped)", name, j, c.At(0, j), bad)
				}
			}
			// The finite row must stay finite: 2·1+3·bad is NaN/Inf by design,
			// so only check the kernel didn't corrupt dimensions.
			if c.Rows != 2 || c.Cols != 3 {
				t.Fatalf("%s: bad shape", name)
			}
		}
	}

	// AᵀA with a zero next to a NaN in the same row: (AᵀA)[0][1] accumulates
	// 0·NaN and must be NaN.
	ata := MulATA(FromRows([][]float64{{0, math.NaN()}, {1, 1}}))
	if !math.IsNaN(ata.At(0, 1)) || !math.IsNaN(ata.At(1, 0)) {
		t.Fatalf("MulATA dropped 0·NaN: %v", ata.Data)
	}

	// Fully finite inputs still use the skip and agree with the oracle.
	f := randMatrix(40, 30, 11)
	g := randMatrix(30, 20, 12)
	if MaxAbsDiff(MulBlocked(f, g), MulNaive(f, g)) > 1e-9 {
		t.Fatal("finite fast path diverged")
	}
}
