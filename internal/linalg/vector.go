package linalg

import (
	"math"

	"github.com/genbase/genbase/internal/parallel"
)

// Dot returns the inner product of x and y (which must have equal length).
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 for n < 2).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// MatVec computes y = A·x. len(x) must equal A.Cols; the result has A.Rows entries.
func MatVec(a *Matrix, x []float64) []float64 { return MatVecP(a, x, 0) }

// MatVecP is MatVec with an explicit worker count; output rows are
// partitioned across workers and each y[i] is one serial dot product, so the
// result is bitwise identical at any worker count.
func MatVecP(a *Matrix, x []float64, workers int) []float64 {
	y := make([]float64, a.Rows)
	matVecInto(y, a, x, workers)
	return y
}

// matVecInto is MatVecP into caller-owned storage (len a.Rows, fully
// overwritten) — the pooled-scratch entry point.
func matVecInto(y []float64, a *Matrix, x []float64, workers int) {
	if len(x) != a.Cols {
		panic("linalg: matvec dimension mismatch")
	}
	w := gemmWorkers(workers, 2*int64(a.Rows)*int64(a.Cols))
	if w <= 1 {
		matVecRange(y, a, x, 0, a.Rows)
	} else {
		parallel.ForSplit(w, a.Rows, func(lo, hi int) { matVecRange(y, a, x, lo, hi) })
	}
}

func matVecRange(y []float64, a *Matrix, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] = Dot(a.Row(i), x)
	}
}

// MatTVec computes y = Aᵀ·x. len(x) must equal A.Rows; the result has A.Cols entries.
func MatTVec(a *Matrix, x []float64) []float64 { return MatTVecP(a, x, 0) }

// MatTVecP is MatTVec with an explicit worker count; output COLUMNS are
// partitioned across workers, and each y[j] accumulates A's rows in ascending
// order exactly as the serial kernel does — no cross-worker reduction, so the
// result is bitwise identical at any worker count.
func MatTVecP(a *Matrix, x []float64, workers int) []float64 {
	y := make([]float64, a.Cols)
	matTVecInto(y, a, x, workers)
	return y
}

// matTVecInto is MatTVecP into caller-owned storage (len a.Cols, fully
// overwritten: each worker zeroes its own column range before accumulating)
// — the pooled-scratch entry point.
func matTVecInto(y []float64, a *Matrix, x []float64, workers int) {
	if len(x) != a.Rows {
		panic("linalg: mattvec dimension mismatch")
	}
	w := gemmWorkers(workers, 2*int64(a.Rows)*int64(a.Cols))
	parallel.ForSplit(w, a.Cols, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			y[j] = 0
		}
		for i := 0; i < a.Rows; i++ {
			ri := a.Row(i)
			xi := x[i]
			for j := lo; j < hi; j++ {
				y[j] += xi * ri[j]
			}
		}
	})
}
