package linalg

import "math"

// Dot returns the inner product of x and y (which must have equal length).
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 for n < 2).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// MatVec computes y = A·x. len(x) must equal A.Cols; the result has A.Rows entries.
func MatVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Cols {
		panic("linalg: matvec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		y[i] = Dot(a.Row(i), x)
	}
	return y
}

// MatTVec computes y = Aᵀ·x. len(x) must equal A.Rows; the result has A.Cols entries.
func MatTVec(a *Matrix, x []float64) []float64 {
	if len(x) != a.Rows {
		panic("linalg: mattvec dimension mismatch")
	}
	y := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		Axpy(x[i], a.Row(i), y)
	}
	return y
}
