package linalg

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// tiles.go holds the cache-blocking geometry of the packed GEMM family and
// its one-time runtime autotune (DESIGN.md §17).
//
// The packed kernels block at three levels, Goto/BLIS style:
//
//	NC — a column strip of C/B sized for the outer cache level; one packed
//	     B block (KC×NC) is reused across every row block of the strip.
//	KC — the reduction-panel depth: one KC×nr B panel (KC·4·8 bytes) stays
//	     L1-resident while the micro-kernel streams row panels against it.
//	MC — the row-block height: one packed A block (MC×KC) stays L2-resident
//	     across the strip's column panels.
//
// Under them sits a fixed 4×4 register tile (mrTile×nrTile): sixteen
// accumulators the compiler keeps in registers across the whole KC panel.
// Tile sizes steer only cache locality — every output element accumulates
// its k terms in ascending order no matter the shape — so the autotune can
// pick whatever is fastest on the host without touching a single result bit.

// TileShape is the (MC, KC, NC) cache-blocking geometry of the packed GEMM
// kernels. The zero value means "unpinned" in SetKernelTiles.
type TileShape struct{ MC, KC, NC int }

func (t TileShape) String() string { return fmt.Sprintf("mc%d kc%d nc%d", t.MC, t.KC, t.NC) }

// mrTile×nrTile is the register micro-tile: 16 unrolled accumulators. The
// pack routines interleave panels at exactly this width.
const (
	mrTile = 4
	nrTile = 4
)

// defaultTiles is the shape used before (or instead of) the autotune: a
// 16 KiB L1 B-panel slab (kc·nr doubles), a 256 KiB L2 A block.
var defaultTiles = TileShape{MC: 128, KC: 256, NC: 512}

// tileCandidates are the shapes the one-time autotune probes. They bracket
// the L1/L2 trade-off rather than exhausting it: the probe must stay cheap
// enough to amortize on first use.
var tileCandidates = []TileShape{
	{MC: 64, KC: 128, NC: 512},
	{MC: 128, KC: 256, NC: 512},
	{MC: 192, KC: 384, NC: 768},
	{MC: 256, KC: 512, NC: 512},
}

// probeMinWork is the M·N·K product below which first use does NOT trigger
// the autotune probe: small kernels would never repay the ~half-second probe,
// and the serve path's small-preset queries must not stall on it. The probe
// itself runs above this size so the candidates actually differentiate.
const probeMinWork = 1 << 24

// tileConfig is the resolved blocking choice plus where it came from
// ("default", "env", "pinned", "autotuned") for the bench JSON headers.
type tileConfig struct {
	shape  TileShape
	source string
}

var (
	tileCfg         atomic.Pointer[tileConfig] // nil until resolved
	tileMu          sync.Mutex                 // serializes the probe
	autotuneAllowed atomic.Bool
)

// EnvTiles pins the tile shape from the environment: "MCxKCxNC" (e.g.
// "128x256x512") pins an explicit shape, "off" pins the built-in default
// without probing. Anything else (including unset) leaves the autotune on.
const EnvTiles = "GENBASE_KERNEL_TILES"

func init() {
	autotuneAllowed.Store(true)
	switch v := strings.TrimSpace(os.Getenv(EnvTiles)); {
	case v == "":
	case strings.EqualFold(v, "off"):
		autotuneAllowed.Store(false)
		tileCfg.Store(&tileConfig{defaultTiles, "default"})
	default:
		if t, ok := parseTiles(v); ok {
			autotuneAllowed.Store(false)
			tileCfg.Store(&tileConfig{t, "env"})
		}
	}
}

func parseTiles(s string) (TileShape, bool) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return TileShape{}, false
	}
	var v [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return TileShape{}, false
		}
		v[i] = n
	}
	return TileShape{MC: v[0], KC: v[1], NC: v[2]}, true
}

// SetKernelAutotune enables or disables the first-use autotune probe.
// Disabling pins the built-in default shape immediately (the genbase-bench
// -kernel-autotune=false ablation); re-enabling clears the resolution so the
// next large kernel probes again.
func SetKernelAutotune(on bool) {
	tileMu.Lock()
	defer tileMu.Unlock()
	autotuneAllowed.Store(on)
	if on {
		tileCfg.Store(nil)
	} else {
		tileCfg.Store(&tileConfig{defaultTiles, "default"})
	}
}

// SetKernelTiles pins an explicit tile shape (tests pin tiny shapes to
// exercise every block boundary). The zero TileShape unpins and re-enables
// the autotune.
func SetKernelTiles(t TileShape) {
	tileMu.Lock()
	defer tileMu.Unlock()
	if t == (TileShape{}) {
		tileCfg.Store(nil)
		autotuneAllowed.Store(true)
		return
	}
	if t.MC < 1 || t.KC < 1 || t.NC < 1 {
		panic(fmt.Sprintf("linalg: invalid tile shape %+v", t))
	}
	tileCfg.Store(&tileConfig{t, "pinned"})
}

// KernelTiles returns the shape the next packed kernel will use, without
// triggering the probe.
func KernelTiles() TileShape {
	if cfg := tileCfg.Load(); cfg != nil {
		return cfg.shape
	}
	return defaultTiles
}

// KernelTileInfo describes the current tile resolution for bench JSON
// headers, e.g. "mr4 nr4 mc128 kc256 nc512 (autotuned)".
func KernelTileInfo() string {
	cfg := tileCfg.Load()
	if cfg == nil {
		cfg = &tileConfig{defaultTiles, "default"}
	}
	return fmt.Sprintf("mr%d nr%d mc%d kc%d nc%d (%s)",
		mrTile, nrTile, cfg.shape.MC, cfg.shape.KC, cfg.shape.NC, cfg.source)
}

// ResolveKernelTiles forces the tile resolution now — running the autotune
// probe if it is enabled and no shape is pinned — and returns the result
// (the genbase-bench -kernel-info mode).
func ResolveKernelTiles() TileShape {
	if cfg := tileCfg.Load(); cfg != nil {
		return cfg.shape
	}
	if !autotuneAllowed.Load() {
		return defaultTiles
	}
	tileMu.Lock()
	defer tileMu.Unlock()
	if cfg := tileCfg.Load(); cfg != nil {
		return cfg.shape
	}
	shape := autotuneProbe()
	tileCfg.Store(&tileConfig{shape, "autotuned"})
	return shape
}

// resolveTiles is the kernels' entry point: the resolved shape if one
// exists, the default for kernels too small to repay a probe, otherwise the
// one-time autotune.
func resolveTiles(work int64) TileShape {
	if cfg := tileCfg.Load(); cfg != nil {
		return cfg.shape
	}
	if work < probeMinWork || !autotuneAllowed.Load() {
		return defaultTiles
	}
	return ResolveKernelTiles()
}

// autotuneProbe times each candidate shape on a fixed synthetic GEMM
// (256×512 · 512×256, deterministic values) and returns the fastest,
// best-of-two per candidate after a shared warmup. Timing is the only
// nondeterminism here and it can only pick a shape, never change a bit.
func autotuneProbe() TileShape {
	const pm, pk, pn = 256, 512, 256
	rng := splitMix64(0x6b8b4567)
	a := NewMatrix(pm, pk)
	for i := range a.Data {
		a.Data[i] = rng() - 0.5
	}
	b := NewMatrix(pk, pn)
	for i := range b.Data {
		b.Data[i] = rng() - 0.5
	}
	c := NewMatrix(pm, pn) // accumulated into across runs; only time matters
	mulPackedRange(c, a, b, 0, pm, defaultTiles)
	best, bestT := defaultTiles, time.Duration(1<<62)
	for _, cand := range tileCandidates {
		t := time.Duration(1 << 62)
		for rep := 0; rep < 2; rep++ {
			t0 := time.Now()
			mulPackedRange(c, a, b, 0, pm, cand)
			if d := time.Since(t0); d < t {
				t = d
			}
		}
		if t < bestT {
			best, bestT = cand, t
		}
	}
	return best
}
