package linalg

import "sync"

// pool.go is the scratch-buffer arena behind the zero-copy analytics path
// (DESIGN.md §10). Hot kernels and the engines' storage→matrix pivots draw
// their scratch from size-classed freelists instead of the heap, so a warm
// query loop allocates nothing for intermediates: the packing stage of the
// GEMM, the centered matrix inside Covariance, the per-worker row buffers of
// the chunked-array kernels, and the pivot outputs of every engine all
// recycle through here.
//
// The freelists are mutex-guarded stacks rather than sync.Pools: a sync.Pool
// Put must box the slice header, which itself allocates — one object per
// recycle on the hottest path, exactly what the arena exists to remove. The
// mutex is uncontended in practice (kernels Get/Put at coarse granularity)
// and each class retains a bounded number of buffers so the arena cannot
// hold the heap hostage.
//
// Ownership rules:
//
//   - GetSlice/GetMatrix hand out buffers the CALLER owns until the matching
//     Put. Putting a buffer twice, or using it after Put, is a data race.
//   - PutMatrix recycles only matrices minted by GetMatrix (tracked by an
//     unexported flag); matrices that view engine storage, Clone results, and
//     NewMatrix results pass through it as a no-op. Callers may therefore
//     unconditionally Put whatever a pivot returned — a zero-copy view is
//     never recycled out from under its backing store.
//   - Buffers are NOT zeroed on Get by default: GetSlice/GetMatrix are for
//     full-overwrite paths. Use GetMatrixZeroed when the consumer reads
//     cells it did not write (e.g. sparse pivot fills).

// minClassBits is the smallest pooled size class (1<<6 floats = 512 B).
// Requests below it are served by plain make and dropped on Put — tiny
// buffers are cheap to allocate and would otherwise fragment the classes.
const minClassBits = 6

// maxClassBits caps pooling at 1<<28 floats (2 GiB); anything larger is
// allocated directly.
const maxClassBits = 28

// classRetain bounds how many free buffers one class keeps; beyond it, Put
// drops the buffer for the GC. Retention shrinks with size so worst-case
// arena residency stays bounded in bytes, not just counts: the big classes
// (Gram outputs, |cov| ranking buffers, pivot gathers at scale) keep at
// most one spare each.
func classRetain(classBits int) int {
	switch {
	case classBits >= 23: // ≥ 64 MiB
		return 1
	case classBits >= 20: // ≥ 8 MiB
		return 2
	default:
		return 16
	}
}

type sliceClass struct {
	mu   sync.Mutex
	free [][]float64
}

var slicePools [maxClassBits - minClassBits + 1]sliceClass

// matrixStructs recycles Matrix headers alongside the backing buffers so
// GetMatrix is fully allocation-free in steady state.
var matrixStructs struct {
	mu   sync.Mutex
	free []*Matrix
}

// sizeClass returns the pool index whose capacity 1<<(minClassBits+idx)
// holds n, or -1 when n is outside the pooled range.
func sizeClass(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	c := 0
	for (1 << (minClassBits + c)) < n {
		c++
	}
	return c
}

// GetSlice returns a []float64 of length n with UNSPECIFIED contents, drawn
// from the arena when possible. The caller owns it until PutSlice.
func GetSlice(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n < 1<<minClassBits {
		return make([]float64, n)
	}
	c := sizeClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	p := &slicePools[c]
	p.mu.Lock()
	if len(p.free) > 0 {
		s := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.mu.Unlock()
		return s[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, 1<<(minClassBits+c))
}

// PutSlice returns a slice obtained from GetSlice to the arena. Slices whose
// capacity is not an exact size class (anything not minted by GetSlice) are
// dropped rather than pooled, so a stray Put cannot poison the arena.
func PutSlice(s []float64) {
	c := cap(s)
	if c < 1<<minClassBits || c > 1<<maxClassBits || c&(c-1) != 0 {
		return
	}
	idx := sizeClass(c)
	p := &slicePools[idx]
	p.mu.Lock()
	if len(p.free) < classRetain(minClassBits+idx) {
		p.free = append(p.free, s[:c])
	}
	p.mu.Unlock()
}

// GetMatrix returns a pooled r×c matrix with UNSPECIFIED contents. Use it
// for full-overwrite fills; use GetMatrixZeroed when unwritten cells must
// read as zero.
func GetMatrix(r, c int) *Matrix {
	matrixStructs.mu.Lock()
	var m *Matrix
	if n := len(matrixStructs.free); n > 0 {
		m = matrixStructs.free[n-1]
		matrixStructs.free = matrixStructs.free[:n-1]
	}
	matrixStructs.mu.Unlock()
	if m == nil {
		m = &Matrix{}
	}
	*m = Matrix{Rows: r, Cols: c, Stride: c, Data: GetSlice(r * c), pooled: true}
	if m.Data == nil {
		m.Data = []float64{}
	}
	return m
}

// GetMatrixZeroed is GetMatrix with all cells set to zero.
func GetMatrixZeroed(r, c int) *Matrix {
	m := GetMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// PutMatrix recycles a matrix minted by GetMatrix; any other matrix —
// including views over engine storage — is ignored, so callers can Put
// whatever a zero-copy pivot returned without checking its provenance.
func PutMatrix(m *Matrix) {
	if m == nil || !m.pooled {
		return
	}
	m.pooled = false // guard against double-Put recycling a live buffer
	PutSlice(m.Data)
	m.Data = nil
	matrixStructs.mu.Lock()
	if len(matrixStructs.free) < 64 {
		matrixStructs.free = append(matrixStructs.free, m)
	}
	matrixStructs.mu.Unlock()
}
