package linalg

// gemm.go drives the packed, register-tiled kernels (DESIGN.md §17). Loop
// nest, outermost first:
//
//	jc over NC column strips of C      — one packed B block per strip & panel
//	kk over KC reduction panels        — ASCENDING: the bitwise contract
//	ic over MC row blocks              — one packed A block, L2-resident
//	jr over 4-wide packed B panels     — panel stays L1-resident...
//	ir over 4-wide packed A panels     — ...across all row panels
//	microKernel4x4 / microKernelEdge   — 16 register accumulators over k
//
// Parallel callers partition C rows (GEMM, ABT) or Gram rows (AᵀA) and hand
// each worker its own range plus its own pooled pack buffers; every output
// element is owned by exactly one worker and accumulates k ascending, so the
// result is bitwise identical at any worker count and to MulNaive.

// mulPackedRange accumulates C[rlo:rhi] += A[rlo:rhi]·B with the packed
// hierarchy. C rows in range must be zero (or hold a partial sum whose k
// prefix precedes kk=0, i.e. nothing) on entry.
func mulPackedRange(c, a, b *Matrix, rlo, rhi int, ts TileShape) {
	kdim, n := a.Cols, b.Cols
	if rhi <= rlo || kdim == 0 || n == 0 {
		return
	}
	apack := GetSlice(packPanelLen(min(ts.MC, rhi-rlo), min(ts.KC, kdim)))
	bpack := GetSlice(packPanelLen(min(ts.NC, n), min(ts.KC, kdim)))
	for jc := 0; jc < n; jc += ts.NC {
		jce := min(jc+ts.NC, n)
		for kk := 0; kk < kdim; kk += ts.KC {
			kce := min(kk+ts.KC, kdim)
			packColPanels4(bpack, b, kk, kce, jc, jce)
			for ic := rlo; ic < rhi; ic += ts.MC {
				ice := min(ic+ts.MC, rhi)
				packRowPanels4(apack, a, ic, ice, kk, kce)
				mulBlock(c, apack, bpack, ic, ice, jc, jce, kce-kk)
			}
		}
	}
	PutSlice(apack)
	PutSlice(bpack)
}

// mulBlock runs the two panel loops and the micro-kernel for one
// (MC row block) × (NC column strip) × (KC panel) combination. ir is the
// inner loop so the current B panel (kc×4 doubles) stays hot in L1 while the
// A panels stream past it.
func mulBlock(c *Matrix, apack, bpack []float64, ic, ice, jc, jce, kc int) {
	for jr, pb := jc, 0; jr < jce; jr, pb = jr+4, pb+1 {
		jre := min(jr+4, jce)
		bp := bpack[pb*4*kc:]
		for ir, pa := ic, 0; ir < ice; ir, pa = ir+4, pa+1 {
			ire := min(ir+4, ice)
			ap := apack[pa*4*kc:]
			if ire-ir == 4 && jre-jr == 4 {
				microKernel4x4(kc, ap, bp, c, ir, jr)
			} else {
				microKernelEdge(kc, ap, bp, ire-ir, jre-jr, c, ir, jr)
			}
		}
	}
}

// gramPackedRange accumulates the upper-triangle Gram rows [jlo, jhi) of
// C = AᵀA through the same hierarchy: both operands are column panels of A,
// packed once per block. Column strips start at jlo (nothing left of the
// range's diagonal is needed) and row tiles skip panels that lie entirely
// below the diagonal; a diagonal-straddling tile may compute a few
// lower-triangle elements, which is harmless — the mirror pass overwrites
// them with bitwise-identical values (the products commute).
func gramPackedRange(c, a *Matrix, jlo, jhi int, ts TileShape) {
	kdim, n := a.Rows, a.Cols
	if jhi <= jlo || kdim == 0 {
		return
	}
	apack := GetSlice(packPanelLen(min(ts.MC, jhi-jlo), min(ts.KC, kdim)))
	bpack := GetSlice(packPanelLen(min(ts.NC, n-jlo), min(ts.KC, kdim)))
	for jc := jlo; jc < n; jc += ts.NC {
		jce := min(jc+ts.NC, n)
		rowHi := min(jhi, jce)
		for kk := 0; kk < kdim; kk += ts.KC {
			kce := min(kk+ts.KC, kdim)
			packColPanels4(bpack, a, kk, kce, jc, jce)
			for ic := jlo; ic < rowHi; ic += ts.MC {
				ice := min(ic+ts.MC, rowHi)
				packColPanels4(apack, a, kk, kce, ic, ice)
				gramBlock(c, apack, bpack, ic, ice, jc, jce, kce-kk)
			}
		}
	}
	PutSlice(apack)
	PutSlice(bpack)
}

// gramBlock is mulBlock with the triangle skip: a B panel whose last column
// precedes the row tile's first row contributes only lower-triangle elements
// and is skipped whole.
func gramBlock(c *Matrix, apack, bpack []float64, ic, ice, jc, jce, kc int) {
	for ir, pa := ic, 0; ir < ice; ir, pa = ir+4, pa+1 {
		ire := min(ir+4, ice)
		ap := apack[pa*4*kc:]
		for jr, pb := jc, 0; jr < jce; jr, pb = jr+4, pb+1 {
			jre := min(jr+4, jce)
			if jre <= ir {
				continue
			}
			bp := bpack[pb*4*kc:]
			if ire-ir == 4 && jre-jr == 4 {
				microKernel4x4(kc, ap, bp, c, ir, jr)
			} else {
				microKernelEdge(kc, ap, bp, ire-ir, jre-jr, c, ir, jr)
			}
		}
	}
}

// abtPackedRange accumulates C[rlo:rhi] += A[rlo:rhi]·Bᵀ: both operands are
// row panels over the shared column dimension.
func abtPackedRange(c, a, b *Matrix, rlo, rhi int, ts TileShape) {
	kdim, n := a.Cols, b.Rows
	if rhi <= rlo || kdim == 0 || n == 0 {
		return
	}
	apack := GetSlice(packPanelLen(min(ts.MC, rhi-rlo), min(ts.KC, kdim)))
	bpack := GetSlice(packPanelLen(min(ts.NC, n), min(ts.KC, kdim)))
	for jc := 0; jc < n; jc += ts.NC {
		jce := min(jc+ts.NC, n)
		for kk := 0; kk < kdim; kk += ts.KC {
			kce := min(kk+ts.KC, kdim)
			packRowPanels4(bpack, b, jc, jce, kk, kce)
			for ic := rlo; ic < rhi; ic += ts.MC {
				ice := min(ic+ts.MC, rhi)
				packRowPanels4(apack, a, ic, ice, kk, kce)
				mulBlock(c, apack, bpack, ic, ice, jc, jce, kce-kk)
			}
		}
	}
	PutSlice(apack)
	PutSlice(bpack)
}
