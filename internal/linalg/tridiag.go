package linalg

import (
	"errors"
	"math"
)

// SymTriEig computes all eigenvalues (and, if wantVectors, eigenvectors) of a
// symmetric tridiagonal matrix with diagonal d (length n) and sub-diagonal e
// (length n−1), using the implicit QL method with Wilkinson shifts (the
// classic tql2 routine). On success the eigenvalues are returned in ascending
// order; column j of the returned matrix is the eigenvector for eigenvalue j.
//
// d and e are not modified.
func SymTriEig(d, e []float64, wantVectors bool) ([]float64, *Matrix, error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, nil, errors.New("linalg: sub-diagonal must have length n-1")
	}
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	dd := make([]float64, n)
	copy(dd, d)
	ee := make([]float64, n)
	copy(ee, e) // ee[n-1] stays 0 as workspace
	var z *Matrix
	if wantVectors {
		z = Identity(n)
	}

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a small off-diagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-15*s {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= 50 {
				return nil, nil, errors.New("linalg: tridiagonal QL failed to converge")
			}
			// Wilkinson shift.
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
				if z != nil {
					for k := 0; k < n; k++ {
						f := z.At(k, i+1)
						z.Set(k, i+1, s*z.At(k, i)+c*f)
						z.Set(k, i, c*z.At(k, i)-s*f)
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort eigenvalues ascending, permuting eigenvectors to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small (Lanczos subspace)
		for j := i; j > 0 && dd[idx[j]] < dd[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	vals := make([]float64, n)
	for i, k := range idx {
		vals[i] = dd[k]
	}
	var vecs *Matrix
	if z != nil {
		vecs = NewMatrix(n, n)
		for j, k := range idx {
			for i := 0; i < n; i++ {
				vecs.Set(i, j, z.At(i, k))
			}
		}
	}
	return vals, vecs, nil
}
