// Package linalg implements the dense linear algebra kernels GenBase needs:
// cache-blocked matrix multiplication, Householder QR, least squares,
// a symmetric Lanczos eigensolver with full reorthogonalization, SVD via
// Lanczos on AᵀA, and covariance. It is the from-scratch stand-in for
// BLAS/LAPACK in the original benchmark.
//
// All matrices are dense, row-major float64. The hot kernels (GEMM, Gram,
// covariance, mat-vec) run on the shared worker pool in internal/parallel;
// each takes its worker count from an explicit *P variant argument or the
// GENBASE_PARALLEL / NumCPU default. Work is partitioned by output, never by
// reduction, so every kernel is bitwise deterministic at any worker count —
// results stay reproducible across engines and across machines.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. It doubles as the
// zero-copy view type: Data may alias storage owned elsewhere (see view.go),
// in which case Stride can exceed Cols. Rows are always contiguous slices.
type Matrix struct {
	Rows, Cols int
	// Stride is the distance in Data between vertically adjacent elements.
	// For a freshly allocated matrix Stride == Cols; views may differ.
	Stride int
	Data   []float64

	// pooled marks matrices minted by GetMatrix so PutMatrix recycles only
	// arena-owned backing stores, never a view over engine storage.
	pooled bool
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Stride:i*m.Stride+c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice sharing the matrix's backing storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Stride+j]
	}
	return out
}

// Clone returns a deep copy with compact stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// View returns an r×c window whose top-left corner is (i0, j0). The view
// shares storage with m; writes are visible in both.
func (m *Matrix) View(i0, j0, r, c int) *Matrix {
	if i0 < 0 || j0 < 0 || i0+r > m.Rows || j0+c > m.Cols {
		panic(fmt.Sprintf("linalg: view [%d:%d,%d:%d] out of %d×%d", i0, i0+r, j0, j0+c, m.Rows, m.Cols))
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i0*m.Stride+j0:]}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			t.Data[j*t.Stride+i] = v
		}
	}
	return t
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := range ri {
			ri[j] *= s
		}
	}
}

// Add stores a+b into m (all must be the same shape; m may alias a or b).
func (m *Matrix) Add(a, b *Matrix) {
	checkSameShape(a, b)
	checkSameShape(m, a)
	for i := 0; i < m.Rows; i++ {
		ra, rb, rm := a.Row(i), b.Row(i), m.Row(i)
		for j := range rm {
			rm[j] = ra[j] + rb[j]
		}
	}
}

// Sub stores a−b into m.
func (m *Matrix) Sub(a, b *Matrix) {
	checkSameShape(a, b)
	checkSameShape(m, a)
	for i := 0; i < m.Rows; i++ {
		ra, rb, rm := a.Row(i), b.Row(i), m.Row(i)
		for j := range rm {
			rm[j] = ra[j] - rb[j]
		}
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between a and b.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSameShape(a, b)
	max := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > max {
				max = d
			}
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %d×%d vs %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%d×%d)", m.Rows, m.Cols)
}
