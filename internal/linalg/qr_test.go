package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%20) + 5
		n := int((seed>>8)%uint64(m)) + 1
		a := randMatrix(m, n, seed)
		qr, err := NewQR(a)
		if err != nil {
			return false
		}
		recon := Mul(qr.Q(), qr.R())
		return MaxAbsDiff(recon, a) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQROrthonormal(t *testing.T) {
	a := randMatrix(17, 9, 77)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	q := qr.Q()
	qtq := MulATA(q)
	if MaxAbsDiff(qtq, Identity(9)) > 1e-10 {
		t.Fatalf("QᵀQ deviates from I by %v", MaxAbsDiff(qtq, Identity(9)))
	}
}

func TestQRUpperTriangular(t *testing.T) {
	a := randMatrix(10, 6, 78)
	qr, _ := NewQR(a)
	r := qr.R()
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d)=%v not zero", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRRequiresTall(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestSolveExactSystem(t *testing.T) {
	// Square non-singular system: solution should be near-exact.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	qr, _ := NewQR(a)
	x, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("x=%v, want [1 3]", x)
	}
}

// Property: for consistent systems b = A·x₀, least squares recovers x₀.
func TestSolveRecoversPlantedSolution(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%15) + 8
		n := int((seed>>8)%6) + 2
		a := randMatrix(m, n, seed)
		x0 := randMatrix(n, 1, seed^3).Col(0)
		b := MatVec(a, x0)
		qr, err := NewQR(a)
		if err != nil {
			return false
		}
		x, err := qr.Solve(b)
		if err != nil {
			return true // random rank deficiency is acceptable, just skip
		}
		for i := range x {
			if !almostEqual(x[i], x0[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestResidualOrthogonalToColumns(t *testing.T) {
	a := randMatrix(20, 5, 99)
	b := randMatrix(20, 1, 100).Col(0)
	qr, _ := NewQR(a)
	x, err := qr.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	pred := MatVec(a, x)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = b[i] - pred[i]
	}
	proj := MatTVec(a, resid)
	for j, v := range proj {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("Aᵀr[%d]=%v, residual not orthogonal", j, v)
		}
	}
}

func TestSolveRankDeficient(t *testing.T) {
	a := NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1)) // duplicate column direction
	}
	qr, _ := NewQR(a)
	if _, err := qr.Solve([]float64{1, 2, 3, 4}); !errors.Is(err, ErrRankDeficient) {
		t.Fatalf("expected ErrRankDeficient, got %v", err)
	}
}

func TestLeastSquaresPerfectFitR2(t *testing.T) {
	a := AddInterceptColumn(randMatrix(30, 3, 55))
	beta := []float64{2, -1, 0.5, 3}
	b := MatVec(a, beta)
	res, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSquared < 1-1e-10 {
		t.Fatalf("R² = %v for perfect fit", res.RSquared)
	}
	if res.Residual > 1e-8 {
		t.Fatalf("residual = %v for perfect fit", res.Residual)
	}
	for i := range beta {
		if !almostEqual(res.Coefficients[i], beta[i], 1e-8) {
			t.Fatalf("coef[%d]=%v want %v", i, res.Coefficients[i], beta[i])
		}
	}
}

func TestLeastSquaresNoisyFitR2InRange(t *testing.T) {
	rng := splitMix64(123)
	a := AddInterceptColumn(randMatrix(200, 4, 66))
	beta := []float64{1, 2, -3, 0.5, 1.5}
	b := MatVec(a, beta)
	for i := range b {
		b[i] += (rng() - 0.5) * 0.1
	}
	res, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSquared <= 0.9 || res.RSquared > 1 {
		t.Fatalf("R² = %v, want (0.9, 1]", res.RSquared)
	}
}

func TestAddInterceptColumn(t *testing.T) {
	a := FromRows([][]float64{{2, 3}})
	x := AddInterceptColumn(a)
	if x.Cols != 3 || x.At(0, 0) != 1 || x.At(0, 2) != 3 {
		t.Fatalf("intercept column wrong: %v", x.Data)
	}
}

// Property: normal equations solution matches QR least squares on
// well-conditioned problems.
func TestQRAgreesWithNormalEquations(t *testing.T) {
	a := randMatrix(50, 4, 200)
	b := randMatrix(50, 1, 201).Col(0)
	res, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solve (AᵀA)x = Aᵀb via Jacobi eigendecomposition.
	ata := MulATA(a)
	atb := MatTVec(a, b)
	vals, vecs, err := JacobiEig(ata)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	for j := 0; j < 4; j++ {
		vj := vecs.Col(j)
		c := Dot(vj, atb) / vals[j]
		Axpy(c, vj, x)
	}
	for i := range x {
		if !almostEqual(x[i], res.Coefficients[i], 1e-6) {
			t.Fatalf("x[%d]: normal eq %v vs QR %v", i, x[i], res.Coefficients[i])
		}
	}
}
