package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandomizedSVDMatchesExact(t *testing.T) {
	a := randMatrix(60, 30, 2026)
	exact, err := TopKSVD(a, 5, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RandomizedSVD(a, 5, RandSVDOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A random matrix has a flat spectrum — the worst case for randomized
	// range finding — so a couple of percent relative error is the expected
	// regime with q=2 power iterations.
	for i := range exact.SingularValues {
		rel := math.Abs(approx.SingularValues[i]-exact.SingularValues[i]) / (1 + exact.SingularValues[0])
		if rel > 2e-2 {
			t.Fatalf("σ[%d]: approx %v vs exact %v", i, approx.SingularValues[i], exact.SingularValues[i])
		}
	}
	// More power iterations must tighten the estimate.
	better, err := RandomizedSVD(a, 5, RandSVDOptions{Seed: 1, PowerIters: 6})
	if err != nil {
		t.Fatal(err)
	}
	worse := math.Abs(approx.SingularValues[0] - exact.SingularValues[0])
	tight := math.Abs(better.SingularValues[0] - exact.SingularValues[0])
	if tight > worse {
		t.Fatalf("q=6 error %v should not exceed q=2 error %v", tight, worse)
	}
}

// On a matrix with rapidly decaying spectrum the approximation is
// essentially exact.
func TestRandomizedSVDLowRank(t *testing.T) {
	// Build rank-3 A = U·diag(10,5,2)·Vᵀ plus tiny noise.
	m, n, r := 40, 25, 3
	u := randMatrix(m, r, 1)
	v := randMatrix(n, r, 2)
	sig := []float64{10, 5, 2}
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < r; k++ {
				s += sig[k] * u.At(i, k) * v.At(j, k)
			}
			a.Set(i, j, s)
		}
	}
	got, err := RandomizedSVD(a, 3, RandSVDOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TopKSVD(a, 3, LanczosOptions{Reorthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(got.SingularValues[i]-exact.SingularValues[i]) > 1e-6*(1+exact.SingularValues[0]) {
			t.Fatalf("σ[%d]: %v vs %v", i, got.SingularValues[i], exact.SingularValues[i])
		}
	}
}

// Property: singular triplets are consistent (A·v ≈ σ·u) and values descend.
func TestRandomizedSVDTripletConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		a := randMatrix(int(seed%30)+10, int((seed>>8)%15)+6, seed)
		k := 3
		res, err := RandomizedSVD(a, k, RandSVDOptions{Seed: seed})
		if err != nil {
			return false
		}
		for j := 0; j < k; j++ {
			if j > 0 && res.SingularValues[j] > res.SingularValues[j-1]+1e-9 {
				return false
			}
			av := MatVec(a, res.V.Col(j))
			for i := range av {
				if math.Abs(av[i]-res.SingularValues[j]*res.U.At(i, j)) > 1e-5*(1+res.SingularValues[0]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedSVDDeterministic(t *testing.T) {
	a := randMatrix(30, 20, 5)
	x, _ := RandomizedSVD(a, 4, RandSVDOptions{Seed: 9})
	y, _ := RandomizedSVD(a, 4, RandSVDOptions{Seed: 9})
	for i := range x.SingularValues {
		if x.SingularValues[i] != y.SingularValues[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomizedSVDRejectsBadK(t *testing.T) {
	if _, err := RandomizedSVD(randMatrix(5, 5, 1), 0, RandSVDOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRandomizedSVDClampsK(t *testing.T) {
	a := randMatrix(10, 4, 7)
	res, err := RandomizedSVD(a, 10, RandSVDOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SingularValues) != 4 {
		t.Fatalf("got %d values", len(res.SingularValues))
	}
}
