package linalg

// microkernel.go is the innermost level of the packed GEMM hierarchy: one
// register tile of C accumulated against a pair of packed panels
// (DESIGN.md §17).
//
// Bitwise contract: each C element's reduction runs over k in ASCENDING
// order. The tile is loaded into scalar accumulators before the panel loop
// and stored back after it; loads and stores do not round, so splitting the
// k range across successive KC panels leaves every element's accumulation
// series exactly the serial triple loop's.

// microKernel4x4 accumulates the full 4×4 C tile at (i, j):
// C[i+ii][j+jj] += Σ_k ap[4k+ii]·bp[4k+jj], k ascending over [0, kc).
// The tile is computed as two 4×2 column passes: eight accumulators plus six
// operand temporaries fit the sixteen-register amd64 FP file, so nothing
// spills inside the k loop (a single 16-accumulator pass measures ~40%
// slower from spill traffic). Each element is produced wholly by one pass —
// its k series is intact and ascending.
func microKernel4x4(kc int, ap, bp []float64, c *Matrix, i, j int) {
	microKernel4x2(kc, ap, bp, 0, c, i, j)
	microKernel4x2(kc, ap, bp, 2, c, i, j+2)
}

// microKernel4x2 accumulates a 4-row × 2-column C tile at (i, j) from a
// packed A row panel and columns [jo, jo+2) of a packed 4-wide B panel.
func microKernel4x2(kc int, ap, bp []float64, jo int, c *Matrix, i, j int) {
	r0 := c.Data[(i+0)*c.Stride+j:]
	r1 := c.Data[(i+1)*c.Stride+j:]
	r2 := c.Data[(i+2)*c.Stride+j:]
	r3 := c.Data[(i+3)*c.Stride+j:]
	c00, c01 := r0[0], r0[1]
	c10, c11 := r1[0], r1[1]
	c20, c21 := r2[0], r2[1]
	c30, c31 := r3[0], r3[1]
	ap = ap[:4*kc]
	bp = bp[jo : jo+4*kc-2]
	// k unrolled ×2: the unrolled halves run k then k+1 on the same
	// accumulators — still strictly ascending.
	n8 := kc / 2 * 8
	k := 0
	for ; k < n8; k += 8 {
		a := (*[8]float64)(ap[k:])
		b0, b1 := bp[k], bp[k+1]
		c00 += a[0] * b0
		c01 += a[0] * b1
		c10 += a[1] * b0
		c11 += a[1] * b1
		c20 += a[2] * b0
		c21 += a[2] * b1
		c30 += a[3] * b0
		c31 += a[3] * b1
		b0, b1 = bp[k+4], bp[k+5]
		c00 += a[4] * b0
		c01 += a[4] * b1
		c10 += a[5] * b0
		c11 += a[5] * b1
		c20 += a[6] * b0
		c21 += a[6] * b1
		c30 += a[7] * b0
		c31 += a[7] * b1
	}
	if kc%2 != 0 {
		a := (*[4]float64)(ap[k:])
		b0, b1 := bp[k], bp[k+1]
		c00 += a[0] * b0
		c01 += a[0] * b1
		c10 += a[1] * b0
		c11 += a[1] * b1
		c20 += a[2] * b0
		c21 += a[2] * b1
		c30 += a[3] * b0
		c31 += a[3] * b1
	}
	r0[0], r0[1] = c00, c01
	r1[0], r1[1] = c10, c11
	r2[0], r2[1] = c20, c21
	r3[0], r3[1] = c30, c31
}

// microKernelEdge handles partial tiles (me ≤ 4 rows, ne ≤ 4 cols) at block
// and matrix edges with plain scalar loops over the same packed panels, k
// still ascending. Dead panel lanes are never read.
func microKernelEdge(kc int, ap, bp []float64, me, ne int, c *Matrix, i, j int) {
	for ii := 0; ii < me; ii++ {
		ci := c.Data[(i+ii)*c.Stride+j : (i+ii)*c.Stride+j+ne]
		for jj := 0; jj < ne; jj++ {
			s := ci[jj]
			for k := 0; k < kc; k++ {
				s += ap[4*k+ii] * bp[4*k+jj]
			}
			ci[jj] = s
		}
	}
}
