package linalg

import (
	"testing"
	"testing/quick"
)

func TestMulSmallKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Fatalf("got %v", c.Data)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

// Property: blocked GEMM agrees with the naive triple loop on random shapes,
// including shapes that are not multiples of the block size.
func TestBlockedMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := int(seed%90) + 1
		k := int((seed>>8)%90) + 1
		c := int((seed>>16)%90) + 1
		a := randMatrix(r, k, seed)
		b := randMatrix(k, c, seed^0xabcdef)
		return MaxAbsDiff(MulBlocked(a, b), MulNaive(a, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMulBlockedLargerThanBlock pins shapes that straddle every level of the
// packed hierarchy: more rows than MC, more reduction steps than KC, and odd
// remainders against the 4-wide register tile.
func TestMulBlockedLargerThanBlock(t *testing.T) {
	ts := KernelTiles()
	a := randMatrix(ts.MC+7, ts.KC+3, 11)
	b := randMatrix(ts.KC+3, 73, 12)
	if MaxAbsDiff(MulBlocked(a, b), MulNaive(a, b)) > 1e-9 {
		t.Fatal("packed result diverges beyond one block")
	}
}

func TestMulATAMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		a := randMatrix(int(seed%20)+2, int((seed>>8)%20)+2, seed)
		return MaxAbsDiff(MulATA(a), Mul(a.Transpose(), a)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulATASymmetric(t *testing.T) {
	a := randMatrix(13, 9, 21)
	if !MulATA(a).IsSymmetric(1e-12) {
		t.Fatal("AᵀA must be symmetric")
	}
}

func TestMulABTMatchesExplicit(t *testing.T) {
	a := randMatrix(7, 5, 31)
	b := randMatrix(9, 5, 32)
	if MaxAbsDiff(MulABT(a, b), Mul(a, b.Transpose())) > 1e-10 {
		t.Fatal("ABᵀ mismatch")
	}
}

func TestMatVecMatchesMul(t *testing.T) {
	a := randMatrix(6, 4, 41)
	x := randMatrix(4, 1, 42)
	got := MatVec(a, x.Col(0))
	want := Mul(a, x)
	for i, v := range got {
		if !almostEqual(v, want.At(i, 0), 1e-12) {
			t.Fatalf("matvec[%d]=%v want %v", i, v, want.At(i, 0))
		}
	}
}

func TestMatTVecMatchesTransposeMatVec(t *testing.T) {
	f := func(seed uint64) bool {
		a := randMatrix(int(seed%15)+1, int((seed>>8)%15)+1, seed)
		x := randMatrix(a.Rows, 1, seed^1).Col(0)
		got := MatTVec(a, x)
		want := MatVec(a.Transpose(), x)
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMulTransposeIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := randMatrix(int(seed%10)+1, int((seed>>8)%10)+1, seed)
		b := randMatrix(a.Cols, int((seed>>16)%10)+1, seed^2)
		return MaxAbsDiff(Mul(a, b).Transpose(), Mul(b.Transpose(), a.Transpose())) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAxpyNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("dot=%v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[2] != 12 {
		t.Fatalf("axpy result %v", y)
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-14) {
		t.Fatal("norm2 wrong")
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := 1e200
	if got := Norm2([]float64{big, big}); !almostEqual(got/big, 1.4142135623730951, 1e-12) {
		t.Fatalf("norm2 overflowed: %v", got)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(x), 5, 1e-14) {
		t.Fatalf("mean=%v", Mean(x))
	}
	if !almostEqual(Variance(x), 32.0/7.0, 1e-12) {
		t.Fatalf("variance=%v", Variance(x))
	}
	if Variance([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate cases")
	}
}
