package linalg

import (
	"math"

	"github.com/genbase/genbase/internal/parallel"
)

// matmul implements the GEMM-family kernels. Mul/MulBlocked — the engines'
// "native BLAS" path — and the AᵀA/ABᵀ variants all route through the packed,
// register-tiled hierarchy in gemm.go, blocked at the runtime-resolved
// mc/kc/nc tile shape (tiles.go; override with GENBASE_KERNEL_TILES or
// SetKernelTiles, ablate the autotune with SetKernelAutotune). MulNaive
// exists as the ablation baseline (DESIGN.md §8) and as the reference oracle
// the bitwise property tests pin the packed kernels against.
//
// The multicore kernels partition their OUTPUT (C row blocks for GEMM, Gram
// rows for AᵀA) across the shared worker pool: every output element is owned
// by exactly one worker and accumulated in the serial kernel's element order
// — over k ascending — so results are bitwise identical at any worker count,
// at any tile shape, and to the historical kernels (DESIGN.md §9, §17).
//
// Unlike MulNaive, the packed kernels do not skip zero multiplicands and
// need no finiteness pre-scan: the ±0.0 products a skip would drop cannot
// change any result bit. With the skipped-against operand finite every
// dropped product is ±0.0; a running sum seeded at +0.0 can never become
// -0.0 under round-to-nearest (exact cancellation rounds to +0.0), and
// s + ±0.0 == s bitwise for every other reachable s. With a non-finite
// operand nothing may be skipped anyway (0·NaN and 0·±Inf must stay NaN) —
// and nothing is. TestPackedGEMMBitwiseEqualsNaive pins both regimes.

// minParallelFlops is the kernel size below which fan-out costs more than it
// saves and the parallel kernels run inline. The cutoff cannot change
// answers — only which goroutine computes them.
const minParallelFlops = 1 << 17

// packMinWork is the M·N·K product below which the packing and blocking
// overhead of the tiled path exceeds its locality win and the kernels fall
// back to the plain triple loop. Both paths accumulate k ascending, so the
// cutoff moves only speed, never a bit. A variable (not const) so the
// bitwise property tests can force the packed path onto tiny shapes.
var packMinWork int64 = 1 << 15

// allFinite reports whether every element of m is finite. MulNaive skips
// zero multiplicands as a fast path; that skip is exact only when the
// dropped products cannot be 0·NaN or 0·±Inf (both must yield NaN), so it is
// enabled only after this scan clears the skipped-against operand. The
// packed kernels skip nothing and do not scan (see the package comment).
func allFinite(m *Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// gemmWorkers caps the effective worker count by the kernel's flop budget.
func gemmWorkers(workers int, flops int64) int {
	if flops < minParallelFlops {
		return 1
	}
	return parallel.Resolve(workers)
}

// MulNaive computes C = A·B with the textbook triple loop (ikj order so the
// inner loop is stride-1). Kept for ablation benchmarks and as a test oracle;
// it stays single-threaded on purpose.
func MulNaive(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: mul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	skipZeros := allFinite(b)
	for i := 0; i < a.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 && skipZeros {
				continue
			}
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
	return c
}

// MulBlocked computes C = A·B through the packed register-tiled kernel with
// the default worker count. This is the default GEMM.
func MulBlocked(a, b *Matrix) *Matrix { return MulBlockedP(a, b, 0) }

// MulBlockedP is MulBlocked with an explicit worker count (0 = the
// GENBASE_PARALLEL / NumCPU default). C's row blocks are partitioned across
// workers, each running the packed hierarchy over its own rows with its own
// pooled pack scratch; within a row the accumulation order is exactly the
// serial kernel's, so the result is bitwise identical at any worker count.
func MulBlockedP(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: mul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	n, m, p := a.Rows, a.Cols, b.Cols
	work := int64(n) * int64(m) * int64(p)
	if work < packMinWork {
		mulSimple(c, a, b)
		return c
	}
	ts := resolveTiles(work)
	w := gemmWorkers(workers, 2*work)
	parallel.ForSplit(w, n, func(lo, hi int) { mulPackedRange(c, a, b, lo, hi, ts) })
	return c
}

// mulSimple is the small-size GEMM path: the plain ikj triple loop, no
// blocking, no packing, no zero skip.
func mulSimple(c, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for k, aik := range ai {
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// Mul is the default matrix multiply (packed register-tiled, multicore).
func Mul(a, b *Matrix) *Matrix { return MulBlockedP(a, b, 0) }

// MulATA computes AᵀA (a.Cols × a.Cols), exploiting symmetry: only the upper
// triangle is computed and then mirrored. This is the kernel behind both
// covariance (Q2) and the Lanczos operator (Q4).
func MulATA(a *Matrix) *Matrix { return MulATAP(a, 0) }

// MulATAP is MulATA with an explicit worker count. The upper-triangle rows of
// the Gram matrix are partitioned across workers with triangle-aware split
// points and computed through the packed hierarchy (both operands are column
// panels of A); each Gram element still accumulates A's rows in ascending
// order, so no cross-worker reduction exists and the result is bitwise
// identical at any worker count.
func MulATAP(a *Matrix, workers int) *Matrix {
	n := a.Cols
	// The Gram output is pooled: engines on the zero-copy path PutMatrix the
	// covariance/Gram result once it is summarized; callers that keep it
	// simply never Put (the arena only recycles what is returned to it).
	c := GetMatrixZeroed(n, n)
	work := int64(a.Rows) * int64(n) * int64(n)
	if work < packMinWork {
		gramSimple(c, a, 0, n)
	} else {
		ts := resolveTiles(work)
		w := gemmWorkers(workers, work)
		if w <= 1 {
			gramPackedRange(c, a, 0, n, ts)
		} else {
			parallel.ForSplitWeighted(w, n, func(j int) float64 { return float64(n - j) },
				func(lo, hi int) { gramPackedRange(c, a, lo, hi, ts) })
		}
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			c.Set(k, j, c.At(j, k))
		}
	}
	return c
}

// gramSimple accumulates the upper-triangle Gram rows [lo, hi) of AᵀA with
// the plain loop (small-size path; same element order as the packed path).
func gramSimple(c, a *Matrix, lo, hi int) {
	n := a.Cols
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for j := lo; j < hi; j++ {
			v := ri[j]
			cj := c.Row(j)
			for k := j; k < n; k++ {
				cj[k] += v * ri[k]
			}
		}
	}
}

// MulABT computes A·Bᵀ. Both inner dimensions must match (a.Cols == b.Cols).
func MulABT(a, b *Matrix) *Matrix { return MulABTP(a, b, 0) }

// MulABTP is MulABT with an explicit worker count; C's rows are partitioned
// across workers and computed through the packed hierarchy (both operands
// are row panels over the shared column dimension).
func MulABTP(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Cols {
		panic("linalg: mulABT dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Rows)
	work := int64(a.Rows) * int64(a.Cols) * int64(b.Rows)
	if work < packMinWork {
		abtSimple(c, a, b, 0, a.Rows)
		return c
	}
	ts := resolveTiles(work)
	w := gemmWorkers(workers, 2*work)
	parallel.ForSplit(w, a.Rows, func(lo, hi int) { abtPackedRange(c, a, b, lo, hi, ts) })
	return c
}

// abtSimple is the small-size A·Bᵀ path: row-dot loops (each dot accumulates
// the shared dimension ascending, the same series as the packed path).
func abtSimple(c, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
}
