package linalg

// matmul implements the GEMM-family kernels. MulBlocked is the workhorse used
// by the engines' "native BLAS" paths; MulNaive exists as the ablation
// baseline (DESIGN.md §8) and as a reference oracle in tests.

// blockSize is tuned for a ~32 KiB L1 cache: three 64×64 float64 tiles
// (96 KiB) sit comfortably in L2 while the inner tile streams through L1.
const blockSize = 64

// MulNaive computes C = A·B with the textbook triple loop (ikj order so the
// inner loop is stride-1). Kept for ablation benchmarks and as a test oracle.
func MulNaive(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: mul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
	return c
}

// MulBlocked computes C = A·B using cache blocking. This is the default GEMM.
func MulBlocked(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: mul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	n, m, p := a.Rows, a.Cols, b.Cols
	for kk := 0; kk < m; kk += blockSize {
		kmax := min(kk+blockSize, m)
		for ii := 0; ii < n; ii += blockSize {
			imax := min(ii+blockSize, n)
			for i := ii; i < imax; i++ {
				ai := a.Row(i)
				ci := c.Row(i)
				for k := kk; k < kmax; k++ {
					aik := ai[k]
					if aik == 0 {
						continue
					}
					bk := b.Row(k)
					for j := 0; j < p; j++ {
						ci[j] += aik * bk[j]
					}
				}
			}
		}
	}
	return c
}

// Mul is the default matrix multiply (cache-blocked).
func Mul(a, b *Matrix) *Matrix { return MulBlocked(a, b) }

// MulATA computes AᵀA (a.Cols × a.Cols), exploiting symmetry: only the upper
// triangle is computed and then mirrored. This is the kernel behind both
// covariance (Q2) and the Lanczos operator (Q4).
func MulATA(a *Matrix) *Matrix {
	n := a.Cols
	c := NewMatrix(n, n)
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for j := 0; j < n; j++ {
			v := ri[j]
			if v == 0 {
				continue
			}
			cj := c.Row(j)
			for k := j; k < n; k++ {
				cj[k] += v * ri[k]
			}
		}
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			c.Set(k, j, c.At(j, k))
		}
	}
	return c
}

// MulABT computes A·Bᵀ. Both inner dimensions must match (a.Cols == b.Cols).
func MulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("linalg: mulABT dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
