package linalg

import (
	"math"

	"github.com/genbase/genbase/internal/parallel"
)

// matmul implements the GEMM-family kernels. MulBlocked is the workhorse used
// by the engines' "native BLAS" paths; MulNaive exists as the ablation
// baseline (DESIGN.md §8) and as a reference oracle in tests.
//
// The multicore kernels partition their OUTPUT (C row blocks for GEMM, Gram
// rows for AᵀA) across the shared worker pool: every output element is owned
// by exactly one worker and accumulated in the serial kernel's element order,
// so results are bitwise identical at any worker count and to the historical
// single-threaded kernels (DESIGN.md §9).

// blockSize is tuned for a ~32 KiB L1 cache: three 64×64 float64 tiles
// (96 KiB) sit comfortably in L2 while the inner tile streams through L1.
const blockSize = 64

// minParallelFlops is the kernel size below which fan-out costs more than it
// saves and the parallel kernels run inline. The cutoff cannot change
// answers — only which goroutine computes them.
const minParallelFlops = 1 << 17

// allFinite reports whether every element of m is finite. The GEMM kernels
// skip zero multiplicands as a fast path; that skip is exact only when the
// dropped products cannot be 0·NaN or 0·±Inf (both must yield NaN), so it is
// enabled only after this scan clears the skipped-against operand.
func allFinite(m *Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// gemmWorkers caps the effective worker count by the kernel's flop budget.
func gemmWorkers(workers int, flops int64) int {
	if flops < minParallelFlops {
		return 1
	}
	return parallel.Resolve(workers)
}

// MulNaive computes C = A·B with the textbook triple loop (ikj order so the
// inner loop is stride-1). Kept for ablation benchmarks and as a test oracle;
// it stays single-threaded on purpose.
func MulNaive(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: mul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	skipZeros := allFinite(b)
	for i := 0; i < a.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 && skipZeros {
				continue
			}
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
	return c
}

// MulBlocked computes C = A·B using cache blocking and the default worker
// count. This is the default GEMM.
func MulBlocked(a, b *Matrix) *Matrix { return MulBlockedP(a, b, 0) }

// MulBlockedP is MulBlocked with an explicit worker count (0 = the
// GENBASE_PARALLEL / NumCPU default). C's row blocks are partitioned across
// workers; within a row the accumulation order is exactly the serial
// kernel's, so the result is bitwise identical at any worker count.
func MulBlockedP(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: mul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	n, m, p := a.Rows, a.Cols, b.Cols
	skipZeros := allFinite(b)
	w := gemmWorkers(workers, 2*int64(n)*int64(m)*int64(p))
	// Packing stage: when B is a strided view its rows are far apart in
	// memory, so each worker packs the current k-slab of B into contiguous
	// pooled scratch once and streams all its C rows against the packed
	// copy. Packing copies values verbatim and the accumulation loop below
	// is unchanged, so results are bitwise identical with or without it;
	// compact operands skip the pack (their rows are already contiguous).
	pack := !b.IsCompact() && p > 0
	parallel.ForSplit(w, n, func(lo, hi int) {
		var packed []float64
		if pack {
			packed = GetSlice(blockSize * p)
		}
		for kk := 0; kk < m; kk += blockSize {
			kmax := min(kk+blockSize, m)
			// Row k of B lives at bbuf[(k-b0)*bstride : ...+p].
			bbuf, bstride, b0 := b.Data, b.Stride, 0
			if pack {
				for k := kk; k < kmax; k++ {
					copy(packed[(k-kk)*p:(k-kk)*p+p], b.Row(k))
				}
				bbuf, bstride, b0 = packed, p, kk
			}
			for ii := lo; ii < hi; ii += blockSize {
				imax := min(ii+blockSize, hi)
				for i := ii; i < imax; i++ {
					ai := a.Row(i)
					ci := c.Row(i)
					for k := kk; k < kmax; k++ {
						aik := ai[k]
						if aik == 0 && skipZeros {
							continue
						}
						bk := bbuf[(k-b0)*bstride : (k-b0)*bstride+p]
						for j := 0; j < p; j++ {
							ci[j] += aik * bk[j]
						}
					}
				}
			}
		}
		if pack {
			PutSlice(packed)
		}
	})
	return c
}

// Mul is the default matrix multiply (cache-blocked, multicore).
func Mul(a, b *Matrix) *Matrix { return MulBlockedP(a, b, 0) }

// MulATA computes AᵀA (a.Cols × a.Cols), exploiting symmetry: only the upper
// triangle is computed and then mirrored. This is the kernel behind both
// covariance (Q2) and the Lanczos operator (Q4).
func MulATA(a *Matrix) *Matrix { return MulATAP(a, 0) }

// MulATAP is MulATA with an explicit worker count. The upper-triangle rows of
// the Gram matrix are partitioned across workers with triangle-aware split
// points; each Gram element still accumulates A's rows in ascending order, so
// no cross-worker reduction exists and the result is bitwise identical at any
// worker count.
func MulATAP(a *Matrix, workers int) *Matrix {
	n := a.Cols
	// The Gram output is pooled: engines on the zero-copy path PutMatrix the
	// covariance/Gram result once it is summarized; callers that keep it
	// simply never Put (the arena only recycles what is returned to it).
	c := GetMatrixZeroed(n, n)
	skipZeros := allFinite(a)
	w := gemmWorkers(workers, int64(a.Rows)*int64(n)*int64(n))
	if w <= 1 {
		gramRange(c, a, 0, n, skipZeros)
	} else {
		parallel.ForSplitWeighted(w, n, func(j int) float64 { return float64(n - j) },
			func(lo, hi int) { gramRange(c, a, lo, hi, skipZeros) })
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			c.Set(k, j, c.At(j, k))
		}
	}
	return c
}

// gramRange accumulates the upper-triangle Gram rows [lo, hi) of AᵀA; the
// serial and parallel paths share it (same element order either way).
func gramRange(c, a *Matrix, lo, hi int, skipZeros bool) {
	n := a.Cols
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for j := lo; j < hi; j++ {
			v := ri[j]
			if v == 0 && skipZeros {
				continue
			}
			cj := c.Row(j)
			for k := j; k < n; k++ {
				cj[k] += v * ri[k]
			}
		}
	}
}

// MulABT computes A·Bᵀ. Both inner dimensions must match (a.Cols == b.Cols).
func MulABT(a, b *Matrix) *Matrix { return MulABTP(a, b, 0) }

// MulABTP is MulABT with an explicit worker count; C's rows are partitioned
// across workers.
func MulABTP(a, b *Matrix, workers int) *Matrix {
	if a.Cols != b.Cols {
		panic("linalg: mulABT dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Rows)
	w := gemmWorkers(workers, 2*int64(a.Rows)*int64(a.Cols)*int64(b.Rows))
	parallel.ForSplit(w, a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			ci := c.Row(i)
			for j := 0; j < b.Rows; j++ {
				ci[j] = Dot(ai, b.Row(j))
			}
		}
	})
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
