package linalg

import (
	"errors"
	"math"
)

// JacobiEig computes all eigenvalues and eigenvectors of a dense symmetric
// matrix using the cyclic Jacobi rotation method. It is O(n³) per sweep and
// only suitable for small matrices; the benchmark uses it as the dense
// reference oracle that validates the Lanczos solver, and the "simulated in
// SQL" Madlib paths use it on the tiny projected systems they produce.
//
// Eigenvalues are returned in descending order; column j of the vector matrix
// pairs with value j.
func JacobiEig(a *Matrix) ([]float64, *Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, errors.New("linalg: JacobiEig requires a square matrix")
	}
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24*(1+m.FrobeniusNorm()) {
			return extractEig(m, v)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	return nil, nil, errors.New("linalg: Jacobi failed to converge")
}

func extractEig(m, v *Matrix) ([]float64, *Matrix, error) {
	n := m.Rows
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = m.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[idx[j]] > vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	outVals := make([]float64, n)
	outVecs := NewMatrix(n, n)
	for j, k := range idx {
		outVals[j] = vals[k]
		for i := 0; i < n; i++ {
			outVecs.Set(i, j, v.At(i, k))
		}
	}
	return outVals, outVecs, nil
}
