package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randMatrix(r, c int, seed uint64) *Matrix {
	rng := splitMix64(seed)
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng()*2 - 1
	}
	return m
}

func randSymmetric(n int, seed uint64) *Matrix {
	a := randMatrix(n, n, seed)
	s := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Set(i, j, (a.At(i, j)+a.At(j, i))/2)
		}
	}
	return s
}

func randSPD(n int, seed uint64) *Matrix {
	a := randMatrix(n+3, n, seed)
	return MulATA(a)
}

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2)=%v, want 7.5", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("untouched element should be zero")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows layout wrong: %v", m.Data)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowSharesStorage(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1)=%v", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must not alias matrix storage")
	}
}

func TestViewAliases(t *testing.T) {
	m := randMatrix(5, 5, 1)
	v := m.View(1, 2, 3, 2)
	if v.At(0, 0) != m.At(1, 2) || v.At(2, 1) != m.At(3, 3) {
		t.Fatal("view indexes wrong region")
	}
	v.Set(0, 0, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("view must alias parent storage")
	}
}

func TestViewOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).View(1, 1, 2, 2)
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		m := randMatrix(int(seed%7)+1, int(seed%5)+1, seed)
		return MaxAbsDiff(m.Transpose().Transpose(), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	c.Add(a, b)
	if c.At(1, 1) != 12 {
		t.Fatalf("add wrong: %v", c.Data)
	}
	c.Sub(c, b)
	if MaxAbsDiff(c, a) != 0 {
		t.Fatal("a+b-b should equal a")
	}
}

func TestScale(t *testing.T) {
	m := FromRows([][]float64{{1, -2}})
	m.Scale(-3)
	if m.At(0, 0) != -3 || m.At(0, 1) != 6 {
		t.Fatalf("scale wrong: %v", m.Data)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("‖m‖_F = %v, want 5", m.FrobeniusNorm())
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	m := randMatrix(3, 3, 2)
	if MaxAbsDiff(Mul(id, m), m) > 1e-15 || MaxAbsDiff(Mul(m, id), m) > 1e-15 {
		t.Fatal("identity must be multiplicative unit")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !randSymmetric(4, 3).IsSymmetric(0) {
		t.Fatal("symmetrized matrix must be symmetric")
	}
	m := randMatrix(4, 4, 4)
	m.Set(0, 1, m.At(1, 0)+1)
	if m.IsSymmetric(1e-9) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if randMatrix(2, 3, 5).IsSymmetric(1) {
		t.Fatal("non-square matrix cannot be symmetric")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := randMatrix(3, 3, 6)
	c := m.Clone()
	c.Set(0, 0, 1234)
	if m.At(0, 0) == 1234 {
		t.Fatal("clone must not alias")
	}
}

func TestCloneOfViewCompacts(t *testing.T) {
	m := randMatrix(4, 4, 7)
	v := m.View(1, 1, 2, 2)
	c := v.Clone()
	if c.Stride != 2 || len(c.Data) != 4 {
		t.Fatalf("clone of view should be compact, got stride=%d len=%d", c.Stride, len(c.Data))
	}
	if MaxAbsDiff(c, v) != 0 {
		t.Fatal("clone content mismatch")
	}
}
