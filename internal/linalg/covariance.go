package linalg

import "github.com/genbase/genbase/internal/parallel"

// ColumnMeans returns the mean of each column of a.
func ColumnMeans(a *Matrix) []float64 { return ColumnMeansP(a, 0) }

// ColumnMeansP is ColumnMeans with an explicit worker count. Columns are
// partitioned across workers; each column still sums rows in ascending order,
// so the result is bitwise identical at any worker count.
func ColumnMeansP(a *Matrix, workers int) []float64 {
	means := make([]float64, a.Cols)
	columnMeansInto(means, a, workers)
	return means
}

// columnMeansInto computes column means into dst (len a.Cols, overwritten).
// Same accumulation order as ColumnMeansP — bitwise identical. The serial
// path calls the range body directly (no closure, no allocation).
func columnMeansInto(dst []float64, a *Matrix, workers int) {
	for j := range dst {
		dst[j] = 0
	}
	if a.Rows == 0 {
		return
	}
	w := gemmWorkers(workers, int64(a.Rows)*int64(a.Cols))
	if w <= 1 {
		columnSumRange(dst, a, 0, a.Cols)
	} else {
		parallel.ForSplit(w, a.Cols, func(lo, hi int) { columnSumRange(dst, a, lo, hi) })
	}
	inv := 1 / float64(a.Rows)
	for j := range dst {
		dst[j] *= inv
	}
}

func columnSumRange(dst []float64, a *Matrix, lo, hi int) {
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for j := lo; j < hi; j++ {
			dst[j] += ri[j]
		}
	}
}

// CenterColumns returns a copy of a with each column shifted to zero mean.
func CenterColumns(a *Matrix) *Matrix { return CenterColumnsP(a, 0) }

// CenterColumnsP is CenterColumns with an explicit worker count (rows are
// independent, so the partition cannot affect the result).
func CenterColumnsP(a *Matrix, workers int) *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	centerColumnsInto(out, a, workers)
	return out
}

// centerColumnsInto centers a's columns into out (same shape, fully
// overwritten). Means come from pooled scratch; the arithmetic and its order
// match CenterColumnsP exactly.
func centerColumnsInto(out *Matrix, a *Matrix, workers int) {
	means := GetSlice(a.Cols)
	columnMeansInto(means, a, workers)
	w := gemmWorkers(workers, int64(a.Rows)*int64(a.Cols))
	if w <= 1 {
		centerRange(out, a, means, 0, a.Rows)
	} else {
		parallel.ForSplit(w, a.Rows, func(lo, hi int) { centerRange(out, a, means, lo, hi) })
	}
	PutSlice(means)
}

func centerRange(out, a *Matrix, means []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		ra, ro := a.Row(i), out.Row(i)
		for j, v := range ra {
			ro[j] = v - means[j]
		}
	}
}

// Covariance returns the unbiased sample covariance matrix of the columns of
// a: C = XᵀX/(n−1) where X is column-centered a. This is Q2's analytics
// kernel. With fewer than two rows the result is all zeros.
func Covariance(a *Matrix) *Matrix { return CovarianceP(a, 0) }

// CovarianceP is Covariance with an explicit worker count; every stage
// (column means, centering, the Gram product) runs on the shared pool and is
// bitwise deterministic across worker counts. The centered intermediate is
// pooled scratch, so a warm covariance loop allocates only the output Gram
// matrix.
func CovarianceP(a *Matrix, workers int) *Matrix {
	if a.Rows < 2 {
		return NewMatrix(a.Cols, a.Cols)
	}
	x := GetMatrix(a.Rows, a.Cols)
	centerColumnsInto(x, a, workers)
	c := MulATAP(x, workers)
	PutMatrix(x)
	c.Scale(1 / float64(a.Rows-1))
	return c
}
