package linalg

import "github.com/genbase/genbase/internal/parallel"

// ColumnMeans returns the mean of each column of a.
func ColumnMeans(a *Matrix) []float64 { return ColumnMeansP(a, 0) }

// ColumnMeansP is ColumnMeans with an explicit worker count. Columns are
// partitioned across workers; each column still sums rows in ascending order,
// so the result is bitwise identical at any worker count.
func ColumnMeansP(a *Matrix, workers int) []float64 {
	means := make([]float64, a.Cols)
	if a.Rows == 0 {
		return means
	}
	w := gemmWorkers(workers, int64(a.Rows)*int64(a.Cols))
	parallel.ForSplit(w, a.Cols, func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			ri := a.Row(i)
			for j := lo; j < hi; j++ {
				means[j] += ri[j]
			}
		}
	})
	inv := 1 / float64(a.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// CenterColumns returns a copy of a with each column shifted to zero mean.
func CenterColumns(a *Matrix) *Matrix { return CenterColumnsP(a, 0) }

// CenterColumnsP is CenterColumns with an explicit worker count (rows are
// independent, so the partition cannot affect the result).
func CenterColumnsP(a *Matrix, workers int) *Matrix {
	means := ColumnMeansP(a, workers)
	out := NewMatrix(a.Rows, a.Cols)
	w := gemmWorkers(workers, int64(a.Rows)*int64(a.Cols))
	parallel.ForSplit(w, a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ra, ro := a.Row(i), out.Row(i)
			for j, v := range ra {
				ro[j] = v - means[j]
			}
		}
	})
	return out
}

// Covariance returns the unbiased sample covariance matrix of the columns of
// a: C = XᵀX/(n−1) where X is column-centered a. This is Q2's analytics
// kernel. With fewer than two rows the result is all zeros.
func Covariance(a *Matrix) *Matrix { return CovarianceP(a, 0) }

// CovarianceP is Covariance with an explicit worker count; every stage
// (column means, centering, the Gram product) runs on the shared pool and is
// bitwise deterministic across worker counts.
func CovarianceP(a *Matrix, workers int) *Matrix {
	if a.Rows < 2 {
		return NewMatrix(a.Cols, a.Cols)
	}
	x := CenterColumnsP(a, workers)
	c := MulATAP(x, workers)
	c.Scale(1 / float64(a.Rows-1))
	return c
}
