package linalg

// ColumnMeans returns the mean of each column of a.
func ColumnMeans(a *Matrix) []float64 {
	means := make([]float64, a.Cols)
	if a.Rows == 0 {
		return means
	}
	for i := 0; i < a.Rows; i++ {
		ri := a.Row(i)
		for j, v := range ri {
			means[j] += v
		}
	}
	inv := 1 / float64(a.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// CenterColumns returns a copy of a with each column shifted to zero mean.
func CenterColumns(a *Matrix) *Matrix {
	means := ColumnMeans(a)
	out := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		ra, ro := a.Row(i), out.Row(i)
		for j, v := range ra {
			ro[j] = v - means[j]
		}
	}
	return out
}

// Covariance returns the unbiased sample covariance matrix of the columns of
// a: C = XᵀX/(n−1) where X is column-centered a. This is Q2's analytics
// kernel. With fewer than two rows the result is all zeros.
func Covariance(a *Matrix) *Matrix {
	if a.Rows < 2 {
		return NewMatrix(a.Cols, a.Cols)
	}
	x := CenterColumns(a)
	c := MulATA(x)
	c.Scale(1 / float64(a.Rows-1))
	return c
}
