package linalg

import "fmt"

// view.go builds stride-aware matrix views over storage the caller already
// owns — the zero-copy boundary between the data-management layer and the
// kernels (DESIGN.md §10). A view is an ordinary *Matrix whose Data aliases
// external memory; every kernel in this package goes through Row/At and is
// stride-correct, so views are accepted anywhere a materialized matrix is.
//
// Aliasing contract: a view does NOT copy. Writes through the view are
// visible in the backing store and vice versa — mutating the source after
// taking a view changes what the kernels see. The kernels themselves never
// mutate their operands (they write only freshly allocated outputs), so
// handing them a view over live storage is safe; callers that need a frozen
// snapshot, or that pass the matrix to code that mutates in place
// (bicluster masking mutates only its own Clone), must Materialize with
// Clone. TestViewKernelsMatchMaterialized pins the guarantee that kernels on
// views are bitwise identical to kernels on copies.

// ViewOf wraps rows×cols elements of data, starting at offset, with the
// given row stride (stride ≥ cols). The view shares data's storage.
func ViewOf(data []float64, offset, rows, cols, stride int) *Matrix {
	if rows < 0 || cols < 0 || stride < cols || offset < 0 {
		panic(fmt.Sprintf("linalg: invalid view %d×%d stride %d offset %d", rows, cols, stride, offset))
	}
	if rows > 0 {
		need := offset + (rows-1)*stride + cols
		if need > len(data) {
			panic(fmt.Sprintf("linalg: view needs %d elements, data has %d", need, len(data)))
		}
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: stride, Data: data[offset:]}
}

// DenseView wraps a packed row-major buffer (stride == cols) — the common
// case of a storage engine whose float column already has matrix layout.
func DenseView(data []float64, rows, cols int) *Matrix {
	return ViewOf(data, 0, rows, cols, cols)
}

// ColView returns column j of m as an n×1 view sharing m's storage.
func (m *Matrix) ColView(j int) *Matrix {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: column %d out of %d×%d", j, m.Rows, m.Cols))
	}
	return &Matrix{Rows: m.Rows, Cols: 1, Stride: m.Stride, Data: m.Data[j:]}
}

// VecView wraps a slice as a 1×n row view (no copy).
func VecView(v []float64) *Matrix {
	return &Matrix{Rows: 1, Cols: len(v), Stride: len(v), Data: v}
}

// IsCompact reports whether m's rows are contiguous in memory (stride ==
// cols), i.e. Data[:Rows*Cols] is the whole matrix in row-major order. The
// packing GEMM stage uses this to decide whether operand tiles need to be
// packed into contiguous scratch.
func (m *Matrix) IsCompact() bool { return m.Stride == m.Cols }
