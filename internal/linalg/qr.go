package linalg

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization A = Q·R of an m×n matrix with
// m ≥ n. The factors are stored compactly: R in the upper triangle of qr and
// the Householder vectors below the diagonal, with scaling factors in tau.
type QR struct {
	qr  *Matrix
	tau []float64
}

// ErrRankDeficient is returned when a triangular solve encounters a zero (or
// numerically negligible) pivot.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// NewQR factors A (m×n, m ≥ n) with Householder reflections. A is not
// modified. The factor storage comes from the scratch arena; callers that
// are done with the factorization may Release it (LeastSquares does), and
// callers that keep it simply let the GC have it.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	qr := GetMatrix(m, n)
	for i := 0; i < m; i++ {
		copy(qr.Row(i), a.Row(i))
	}
	tau := GetSlice(n)
	for i := range tau {
		tau[i] = 0
	}
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		// Form the Householder vector v (stored in place, scaled so that the
		// reflector is I − v·vᵀ/v_k).
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = -norm // diagonal of R
		// Apply the reflector to the remaining columns.
		vkk := qr.At(k, k)
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / vkk
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau}, nil
}

// Release returns the factor storage to the scratch arena. The QR must not
// be used afterwards.
func (f *QR) Release() {
	PutMatrix(f.qr)
	PutSlice(f.tau)
	f.qr, f.tau = nil, nil
}

// R returns the upper-triangular factor (n×n).
func (f *QR) R() *Matrix {
	n := f.qr.Cols
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if i == j {
				r.Set(i, j, f.tau[i])
			} else {
				r.Set(i, j, f.qr.At(i, j))
			}
		}
	}
	return r
}

// Q returns the thin orthonormal factor (m×n).
func (f *QR) Q() *Matrix {
	m, n := f.qr.Rows, f.qr.Cols
	q := NewMatrix(m, n)
	for k := n - 1; k >= 0; k-- {
		q.Set(k, k, 1)
		if f.qr.At(k, k) == 0 {
			continue
		}
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += f.qr.At(i, k) * q.At(i, j)
			}
			s = -s / f.qr.At(k, k)
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)+s*f.qr.At(i, k))
			}
		}
	}
	return q
}

// QTVec applies Qᵀ to a vector of length m, returning the first n entries
// (enough for a least-squares solve) followed by the residual part.
func (f *QR) QTVec(b []float64) []float64 {
	y := make([]float64, f.qr.Rows)
	f.qtvecInto(y, b)
	return y
}

// qtvecInto is QTVec into caller-owned storage (len m, fully overwritten).
func (f *QR) qtvecInto(y, b []float64) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("linalg: QTVec length mismatch")
	}
	copy(y, b)
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
}

// Solve returns the least-squares solution x minimizing ‖Ax − b‖₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	n := f.qr.Cols
	y := GetSlice(f.qr.Rows)
	f.qtvecInto(y, b)
	x := make([]float64, n)
	copy(x, y[:n])
	PutSlice(y)
	// Back-substitute R x = y.
	for k := n - 1; k >= 0; k-- {
		rkk := f.tau[k]
		if math.Abs(rkk) < 1e-12 {
			return nil, ErrRankDeficient
		}
		for j := k + 1; j < n; j++ {
			x[k] -= f.qr.At(k, j) * x[j]
		}
		x[k] /= rkk
	}
	return x, nil
}

// LeastSquaresResult is the output of a linear regression fit (Q1).
type LeastSquaresResult struct {
	Coefficients []float64 // including intercept if the caller added one
	Residual     float64   // ‖Ax − b‖₂
	RSquared     float64   // 1 − SS_res/SS_tot
}

// LeastSquares fits b ≈ A·x with Householder QR and reports fit quality.
// All intermediates (the factor copy, Qᵀb, the prediction vector) are
// pooled, so a warm fit allocates only the returned coefficients.
func LeastSquares(a *Matrix, b []float64) (*LeastSquaresResult, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	x, err := f.Solve(b)
	f.Release()
	if err != nil {
		return nil, err
	}
	pred := GetSlice(a.Rows)
	matVecInto(pred, a, x, 0)
	ssRes := 0.0
	for i, v := range b {
		d := v - pred[i]
		ssRes += d * d
	}
	PutSlice(pred)
	mb := Mean(b)
	ssTot := 0.0
	for _, v := range b {
		d := v - mb
		ssTot += d * d
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &LeastSquaresResult{Coefficients: x, Residual: math.Sqrt(ssRes), RSquared: r2}, nil
}

// AddInterceptColumn returns [1 | A]: a copy of A with a leading column of
// ones. The copy is pooled — callers on a hot path should PutMatrix it when
// the fit is done (leaking it to the GC is harmless, just unrecycled).
func AddInterceptColumn(a *Matrix) *Matrix {
	out := GetMatrix(a.Rows, a.Cols+1)
	for i := 0; i < a.Rows; i++ {
		ro := out.Row(i)
		ro[0] = 1
		copy(ro[1:], a.Row(i))
	}
	return out
}
