package linalg

import (
	"math"
	"testing"
)

// packed_test.go pins the packed register-tiled kernels bitwise-equal to the
// MulNaive oracle on adversarial shapes: degenerate (1×n, n×1), prime dims,
// dims straddling every tile boundary of a deliberately tiny pinned tile
// shape, and operands carrying 0·NaN / 0·Inf columns — the PR 1 zero-skip
// bug class, which the packed kernels must survive without any skip at all.
// Every shape runs at workers ∈ {0, 1, 4}.

// withTinyTiles pins a tile shape small enough that modest test matrices
// cross every mc/kc/nc boundary (and the 4-wide register tile several times)
// and forces the packed path even below the small-size cutoff, restoring the
// autotune state afterwards. Each body also runs unmodified first, covering
// the mulSimple/gramSimple/abtSimple small-size fallbacks bitwise.
func withTinyTiles(t *testing.T, f func()) {
	t.Helper()
	f() // small-size fallback paths

	prev := KernelTiles()
	wasPinned := tileCfg.Load() != nil
	prevMin := packMinWork
	SetKernelTiles(TileShape{MC: 8, KC: 16, NC: 12})
	packMinWork = 0
	defer func() {
		packMinWork = prevMin
		if wasPinned {
			SetKernelTiles(prev)
		} else {
			SetKernelTiles(TileShape{})
		}
	}()
	f() // packed path on every shape
}

// bitsIdentical reports exact bit equality (NaN vs NaN with any payload on
// this port compares equal by bits; +0 vs -0 does not).
func bitsIdentical(got, want *Matrix) (int, int, bool) {
	for i := 0; i < want.Rows; i++ {
		rg, rw := got.Row(i), want.Row(i)
		for j := range rw {
			if math.Float64bits(rg[j]) != math.Float64bits(rw[j]) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

func checkBits(t *testing.T, name string, w int, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s w=%d: shape %dx%d want %dx%d", name, w, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if i, j, ok := bitsIdentical(got, want); !ok {
		t.Fatalf("%s w=%d: bit mismatch at (%d,%d): got %x want %x",
			name, w, i, j, math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j)))
	}
}

func TestPackedGEMMBitwiseEqualsNaive(t *testing.T) {
	withTinyTiles(t, func() {
		shapes := []struct{ m, k, n int }{
			{1, 1, 1},
			{1, 37, 1},   // row·col degenerate
			{1, 16, 53},  // single output row
			{53, 16, 1},  // single output column
			{7, 11, 13},  // primes under one tile
			{17, 31, 29}, // primes straddling mc/kc and the nc edge
			{8, 16, 12},  // exactly one tile at every level
			{9, 17, 13},  // every level one past its boundary
			{7, 15, 11},  // every level one short of its boundary
			{16, 32, 24}, // two exact tiles per level
			{41, 43, 47}, // primes, several tiles per level
			{5, 64, 4},   // deep k, narrow output
		}
		for _, s := range shapes {
			a := randMatrix(s.m, s.k, uint64(s.m*1000+s.k))
			b := randMatrix(s.k, s.n, uint64(s.k*1000+s.n))
			// Plant exact zeros in a so the dropped-skip ±0 argument is
			// exercised, not just assumed.
			for i := 0; i < s.m; i++ {
				for kk := 0; kk < s.k; kk += 3 {
					a.Row(i)[kk] = 0
				}
			}
			want := MulNaive(a, b)
			for _, w := range []int{0, 1, 4} {
				checkBits(t, "packed", w, MulBlockedP(a, b, w), want)
			}
		}
	})
}

// TestPackedGEMMNonFiniteBitwise is the PR 1 regression class: a zero in A
// against NaN/±Inf in B must produce NaN (0·NaN = 0·Inf = NaN), and the
// packed result must still be bitwise equal to the oracle, which disables its
// zero-skip in exactly this regime.
func TestPackedGEMMNonFiniteBitwise(t *testing.T) {
	withTinyTiles(t, func() {
		for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			a := randMatrix(19, 23, 91)
			b := randMatrix(23, 17, 92)
			for i := 0; i < a.Rows; i++ {
				a.Row(i)[5] = 0 // zero column of A…
			}
			for j := 0; j < b.Cols; j++ {
				b.Row(5)[j] = bad // …against a non-finite row of B
			}
			want := MulNaive(a, b)
			if !math.IsNaN(want.At(0, 0)) {
				t.Fatalf("oracle broken: expected NaN, got %v", want.At(0, 0))
			}
			for _, w := range []int{0, 1, 4} {
				checkBits(t, "packed-nonfinite", w, MulBlockedP(a, b, w), want)
			}
		}
	})
}

func TestPackedATAandABTBitwise(t *testing.T) {
	withTinyTiles(t, func() {
		for _, s := range []struct{ m, n int }{{1, 13}, {29, 1}, {17, 19}, {8, 12}, {9, 13}, {31, 37}} {
			a := randMatrix(s.m, s.n, uint64(s.m*100+s.n))
			for i := 0; i < s.m; i += 2 {
				a.Row(i)[0] = 0
			}
			wantATA := MulNaive(a.Transpose(), a)
			wantABT := MulNaive(a, a.Transpose())
			for _, w := range []int{0, 1, 4} {
				checkBits(t, "packed-ATA", w, MulATAP(a, w), wantATA)
				checkBits(t, "packed-ABT", w, MulABTP(a, a, w), wantABT)
			}
		}
	})
}

// TestPackedLargeUnpinnedTiles runs one shape bigger than the default tile
// set with the autotune left as-is, so the default/resolved path (not just
// the tiny pinned shape) is exercised bitwise.
func TestPackedLargeUnpinnedTiles(t *testing.T) {
	ts := KernelTiles()
	a := randMatrix(ts.MC+5, ts.KC+9, 71)
	b := randMatrix(ts.KC+9, 61, 72)
	want := MulNaive(a, b)
	for _, w := range []int{0, 1, 4} {
		checkBits(t, "packed-large", w, MulBlockedP(a, b, w), want)
	}
}
