package linalg

import (
	"math"
	"testing"
)

// Zero-copy contract (DESIGN.md §10): kernels fed a strided view over
// external storage must produce bitwise-identical results to the same
// kernels fed a materialized (compact) copy, at any worker count. This
// extends the PR 1 determinism suite to the view axis and exercises the
// packing GEMM stage (engaged only for non-compact operands).

// stridedView embeds an r×c matrix in a wider backing buffer so rows are
// separated by pad extra elements, and returns the view plus a compact copy.
func stridedView(r, c, pad int, seed uint64) (*Matrix, *Matrix) {
	stride := c + pad
	backing := make([]float64, 3+r*stride)
	rng := splitMix64(seed)
	for i := range backing {
		backing[i] = rng()*2 - 1 // padding holds garbage the view must skip
	}
	v := ViewOf(backing, 3, r, c, stride)
	return v, v.Clone()
}

func TestViewKernelsMatchMaterialized(t *testing.T) {
	av, am := stridedView(211, 97, 13, 1)
	bv, bm := stridedView(97, 73, 7, 2)
	x := make([]float64, 97)
	xr := make([]float64, 211)
	rng := splitMix64(3)
	for i := range x {
		x[i] = rng()*2 - 1
	}
	for i := range xr {
		xr[i] = rng()*2 - 1
	}

	for _, w := range []int{1, 3, 8} {
		bitsEqualMat(t, "MulBlocked(view)", w, MulBlockedP(av, bv, w), MulBlockedP(am, bm, w))
		bitsEqualMat(t, "MulATA(view)", w, MulATAP(av, w), MulATAP(am, w))
		bitsEqualMat(t, "MulABT(view)", w, MulABTP(av, av, w), MulABTP(am, am, w))
		bitsEqualMat(t, "Covariance(view)", w, CovarianceP(av, w), CovarianceP(am, w))
		bitsEqualVec(t, "ColumnMeans(view)", w, ColumnMeansP(av, w), ColumnMeansP(am, w))
		bitsEqualMat(t, "CenterColumns(view)", w, CenterColumnsP(av, w), CenterColumnsP(am, w))
		bitsEqualVec(t, "MatVec(view)", w, MatVecP(av, x, w), MatVecP(am, x, w))
		bitsEqualVec(t, "MatTVec(view)", w, MatTVecP(av, xr, w), MatTVecP(am, xr, w))
	}

	svdV, err := TopKSVD(av, 5, LanczosOptions{Reorthogonalize: true, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	svdM, err := TopKSVD(am, 5, LanczosOptions{Reorthogonalize: true, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualVec(t, "TopKSVD(view)", 2, svdV.SingularValues, svdM.SingularValues)
}

// The packed kernels never skip zero multiplicands, so a strided B carrying
// NaN rows must propagate 0·NaN = NaN through the packing stage untouched.
func TestPackedGEMMPropagatesNonFinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {2, 3}})
	bv, _ := stridedView(2, 3, 5, 11)
	for j := 0; j < 3; j++ {
		bv.Set(0, j, float64(j+1))
		bv.Set(1, j, math.NaN())
	}
	c := MulBlockedP(a, bv, 2)
	for j := 0; j < 3; j++ {
		if !math.IsNaN(c.At(0, j)) {
			t.Fatalf("packed GEMM dropped 0·NaN at (0,%d): %v", j, c.At(0, j))
		}
	}
}

// Views alias their backing store by design: a mutation of the source after
// the view is taken IS visible through the view (documented in view.go), and
// Clone is the way to detach.
func TestViewAliasingIsVisible(t *testing.T) {
	backing := []float64{1, 2, 3, 4, 5, 6}
	v := DenseView(backing, 2, 3)
	snapshot := v.Clone()
	backing[4] = 99
	if v.At(1, 1) != 99 {
		t.Fatalf("view did not observe source mutation: got %v", v.At(1, 1))
	}
	if snapshot.At(1, 1) != 5 {
		t.Fatalf("clone must be detached from the source: got %v", snapshot.At(1, 1))
	}
	// ColView shares storage the same way.
	cv := v.ColView(1)
	if cv.Rows != 2 || cv.Cols != 1 || cv.At(1, 0) != 99 {
		t.Fatalf("ColView wrong: %dx%d %v", cv.Rows, cv.Cols, cv.At(1, 0))
	}
	backing[1] = -7
	if cv.At(0, 0) != -7 {
		t.Fatalf("ColView did not observe source mutation")
	}
}

func TestViewOfBoundsChecks(t *testing.T) {
	data := make([]float64, 10)
	for _, bad := range []func(){
		func() { ViewOf(data, 0, 2, 4, 3) },  // stride < cols
		func() { ViewOf(data, 0, 3, 3, 4) },  // needs 11 elements
		func() { ViewOf(data, 8, 1, 3, 3) },  // offset pushes past end
		func() { ViewOf(data, -1, 1, 1, 1) }, // negative offset
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for invalid view")
				}
			}()
			bad()
		}()
	}
	// Exact fit is legal.
	v := ViewOf(data, 1, 3, 3, 3)
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatal("exact-fit view rejected")
	}
}

// The arena must never recycle a view's backing store: PutMatrix is a no-op
// for anything not minted by GetMatrix, and a double Put must not hand the
// same buffer out twice.
func TestPoolOwnershipGuards(t *testing.T) {
	backing := make([]float64, 4096)
	v := DenseView(backing, 64, 64)
	PutMatrix(v) // must not enter the arena
	m := GetMatrix(64, 64)
	if &m.Data[0] == &backing[0] {
		t.Fatal("pool recycled a view's backing store")
	}

	p := GetMatrix(64, 64)
	buf := p.Data
	PutMatrix(p)
	PutMatrix(p) // double Put must be a no-op
	a := GetMatrix(64, 64)
	b := GetMatrix(64, 64)
	if len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0] {
		t.Fatal("double Put handed one buffer to two owners")
	}
	_ = buf
	PutMatrix(a)
	PutMatrix(b)
}

// Pooled covariance must still equal the reference computation (the pooled
// scratch is invisible to results).
func TestPooledCovarianceMatchesReference(t *testing.T) {
	a := randMatrix(101, 37, 21)
	want := func() *Matrix {
		x := CenterColumnsP(a, 1)
		c := MulATAP(x, 1)
		c.Scale(1 / float64(a.Rows-1))
		return c
	}()
	for i := 0; i < 3; i++ { // repeat so the second pass reuses pooled scratch
		bitsEqualMat(t, "CovariancePooled", 1, CovarianceP(a, 1), want)
	}
}
