package linalg

// pack.go copies operand sub-blocks into contiguous, micro-tile-interleaved
// panels so the micro-kernel's loads are unit-stride regardless of the source
// matrix's stride (DESIGN.md §17). Packing copies values verbatim — it can
// change where a number lives, never what it is — so the packed kernels stay
// bitwise identical to the unpacked triple loop.
//
// Panel layout: a block of W consecutive rows (or columns) becomes one panel
// of W*kc doubles, interleaved by reduction index: element (lane ii, depth k)
// lives at panel[k*W+ii]. Panel p of a block starts at dst[p*W*kc]. A partial
// edge panel (fewer than W live lanes) writes only its live lanes; the edge
// micro-kernel reads only those, so the dead lanes are never touched.

// packRowPanels4 packs rows [r0, re) × columns [k0, ke) of m into 4-wide row
// panels: dst[p*4*kc + k*4 + ii] = m[r0+4p+ii][k0+k].
func packRowPanels4(dst []float64, m *Matrix, r0, re, k0, ke int) {
	kc := ke - k0
	for p := 0; r0+p*4 < re; p++ {
		base := p * 4 * kc
		if r0+p*4+4 <= re {
			q0 := m.Row(r0 + p*4)[k0:ke]
			q1 := m.Row(r0 + p*4 + 1)[k0:ke]
			q2 := m.Row(r0 + p*4 + 2)[k0:ke]
			q3 := m.Row(r0 + p*4 + 3)[k0:ke]
			o := base
			for k := 0; k < kc; k++ {
				dst[o] = q0[k]
				dst[o+1] = q1[k]
				dst[o+2] = q2[k]
				dst[o+3] = q3[k]
				o += 4
			}
			continue
		}
		for t := 0; r0+p*4+t < re; t++ {
			row := m.Row(r0 + p*4 + t)[k0:ke]
			o := base + t
			for k := 0; k < kc; k++ {
				dst[o] = row[k]
				o += 4
			}
		}
	}
}

// packColPanels4 packs rows [k0, ke) × columns [c0, ce) of m into 4-wide
// column panels: dst[p*4*kc + k*4 + jj] = m[k0+k][c0+4p+jj]. Walks m row by
// row so the source traffic is unit-stride.
func packColPanels4(dst []float64, m *Matrix, k0, ke, c0, ce int) {
	kc := ke - k0
	width := ce - c0
	np := width / 4 // full panels; the remainder forms one edge panel
	for k := k0; k < ke; k++ {
		row := m.Row(k)[c0:ce]
		o := (k - k0) * 4
		for p := 0; p < np; p++ {
			src := row[p*4 : p*4+4]
			d := dst[p*4*kc+o : p*4*kc+o+4]
			d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
		}
		for t := np * 4; t < width; t++ {
			dst[np*4*kc+o+(t-np*4)] = row[t]
		}
	}
}

// packPanelLen returns the scratch length needed to pack a block of up to
// `span` lanes × `depth` reduction steps at micro-tile width 4 (lanes rounded
// up to whole panels).
func packPanelLen(span, depth int) int {
	return ((span + 3) / 4 * 4) * depth
}
