package datagen

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/genbase/genbase/internal/stats"
)

func tinyConfig(seed uint64) Config {
	return Config{Size: Small, Scale: 0.2, Seed: seed} // 50 patients × 50 genes × 20 terms
}

func TestPresetDims(t *testing.T) {
	d, err := PresetDims(Large, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Patients != 2000 || d.Genes != 1500 || d.GOTerms != 400 {
		t.Fatalf("large dims %+v", d)
	}
	// Aspect ratios must match the paper (patients/genes = 40/30 for large).
	if math.Abs(float64(d.Patients)/float64(d.Genes)-40.0/30.0) > 1e-9 {
		t.Fatal("large aspect ratio drifted from the paper")
	}
}

func TestPresetDimsUnknownSize(t *testing.T) {
	if _, err := PresetDims(Size("huge"), 1); err == nil {
		t.Fatal("expected error for unknown size")
	}
}

func TestPresetDimsScaleTooSmall(t *testing.T) {
	if _, err := PresetDims(Small, 0.001); err == nil {
		t.Fatal("expected error for vanishing scale")
	}
}

func TestGenerateShapes(t *testing.T) {
	ds := MustGenerate(tinyConfig(1))
	if ds.Expression.Rows != ds.Dims.Patients || ds.Expression.Cols != ds.Dims.Genes {
		t.Fatalf("expression shape %dx%d", ds.Expression.Rows, ds.Expression.Cols)
	}
	if len(ds.Patients) != ds.Dims.Patients || len(ds.Genes) != ds.Dims.Genes {
		t.Fatal("metadata lengths wrong")
	}
	if len(ds.GO) != ds.Dims.Genes*ds.Dims.GOTerms {
		t.Fatal("GO length wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(tinyConfig(42))
	b := MustGenerate(tinyConfig(42))
	if a.Expression.At(3, 7) != b.Expression.At(3, 7) {
		t.Fatal("expression not deterministic")
	}
	if a.Patients[5] != b.Patients[5] || a.Genes[9] != b.Genes[9] {
		t.Fatal("metadata not deterministic")
	}
	for i := range a.GO {
		if a.GO[i] != b.GO[i] {
			t.Fatal("GO not deterministic")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(tinyConfig(1))
	b := MustGenerate(tinyConfig(2))
	if a.Expression.At(0, 0) == b.Expression.At(0, 0) && a.Expression.At(1, 1) == b.Expression.At(1, 1) {
		t.Fatal("different seeds should give different data")
	}
}

func TestPatientFieldRanges(t *testing.T) {
	ds := MustGenerate(tinyConfig(7))
	sawM, sawF := false, false
	for _, p := range ds.Patients {
		if p.Age < 0 || p.Age >= 100 {
			t.Fatalf("age %d out of range", p.Age)
		}
		if p.DiseaseID < 1 || p.DiseaseID > NumDiseases {
			t.Fatalf("disease %d out of range", p.DiseaseID)
		}
		switch p.Gender {
		case 'M':
			sawM = true
		case 'F':
			sawF = true
		default:
			t.Fatalf("gender %q", p.Gender)
		}
	}
	if !sawM || !sawF {
		t.Fatal("expected both genders in 50 patients")
	}
}

func TestGeneFieldRanges(t *testing.T) {
	ds := MustGenerate(tinyConfig(8))
	prevPos := int32(-1)
	for _, g := range ds.Genes {
		if g.Function < 0 || g.Function >= FunctionRange {
			t.Fatalf("function %d out of range", g.Function)
		}
		if g.Target < 0 || int(g.Target) >= ds.Dims.Genes {
			t.Fatalf("target %d out of range", g.Target)
		}
		if g.Position <= prevPos && g.ID > 0 {
			t.Fatal("positions must increase along the chromosome")
		}
		prevPos = g.Position
		if g.Length < 100 {
			t.Fatalf("length %d too small", g.Length)
		}
	}
}

// The regression signal must be recoverable: a least-squares fit on the
// causal genes should explain most of the drug-response variance.
func TestDrugResponseSignal(t *testing.T) {
	ds := MustGenerate(tinyConfig(3))
	resp := make([]float64, ds.Dims.Patients)
	for i, p := range ds.Patients {
		resp[i] = p.DrugResponse
	}
	// Correlate response with causal gene 0's expression — weights are random
	// so test total signal instead: variance of response should exceed the
	// noise-only level (0.5² = 0.25) by a wide margin.
	v := 0.0
	m := 0.0
	for _, r := range resp {
		m += r
	}
	m /= float64(len(resp))
	for _, r := range resp {
		v += (r - m) * (r - m)
	}
	v /= float64(len(resp) - 1)
	if v < 1.0 {
		t.Fatalf("drug response variance %v too small — no signal planted", v)
	}
}

// Enriched GO terms must actually rank high: the Wilcoxon z of an enriched
// term on mean expression should exceed that of typical background terms.
func TestEnrichedTermsCarrySignal(t *testing.T) {
	ds := MustGenerate(Config{Size: Small, Scale: 0.5, Seed: 5}) // 125×125×50
	g, tn := ds.Dims.Genes, ds.Dims.GOTerms
	means := make([]float64, g)
	for i := 0; i < ds.Dims.Patients; i++ {
		for j, v := range ds.Expression.Row(i) {
			means[j] += v
		}
	}
	zOf := func(term int) float64 {
		var in, out []float64
		for j := 0; j < g; j++ {
			if ds.GOAt(j, term) == 1 {
				in = append(in, means[j])
			} else {
				out = append(out, means[j])
			}
		}
		res, err := stats.WilcoxonRankSum(in, out)
		if err != nil {
			t.Fatal(err)
		}
		return res.Z
	}
	enriched := map[int]bool{}
	for _, term := range ds.EnrichedTerms {
		enriched[term] = true
	}
	if len(enriched) == 0 {
		t.Fatal("no enriched terms planted")
	}
	bestEnriched := math.Inf(-1)
	for term := range enriched {
		if z := zOf(term); z > bestEnriched {
			bestEnriched = z
		}
	}
	background := 0.0
	count := 0
	for term := 0; term < tn; term++ {
		if !enriched[term] {
			background += math.Abs(zOf(term))
			count++
		}
	}
	background /= float64(count)
	if bestEnriched < 3 {
		t.Fatalf("best enriched z=%v, want strong signal", bestEnriched)
	}
	if bestEnriched < 2*background {
		t.Fatalf("enriched z=%v not separated from background %v", bestEnriched, background)
	}
}

func TestGOTermsBalanced(t *testing.T) {
	ds := MustGenerate(tinyConfig(9))
	g, tn := ds.Dims.Genes, ds.Dims.GOTerms
	for term := 0; term < tn; term++ {
		members := 0
		for j := 0; j < g; j++ {
			members += int(ds.GOAt(j, term))
		}
		if members < 2 || g-members < 2 {
			t.Fatalf("term %d unbalanced: %d members of %d", term, members, g)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := MustGenerate(tinyConfig(11))
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != ds.Dims || got.Seed != ds.Seed || got.Size != ds.Size {
		t.Fatalf("header mismatch: %+v vs %+v", got.Dims, ds.Dims)
	}
	for i := 0; i < ds.Dims.Patients; i++ {
		for j := 0; j < ds.Dims.Genes; j++ {
			if got.Expression.At(i, j) != ds.Expression.At(i, j) {
				t.Fatalf("expression mismatch at (%d,%d)", i, j)
			}
		}
	}
	for i := range ds.Patients {
		if got.Patients[i] != ds.Patients[i] {
			t.Fatalf("patient %d mismatch", i)
		}
	}
	for i := range ds.Genes {
		if got.Genes[i] != ds.Genes[i] {
			t.Fatalf("gene %d mismatch", i)
		}
	}
	for i := range ds.GO {
		if got.GO[i] != ds.GO[i] {
			t.Fatalf("GO %d mismatch", i)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestWriteCSVDir(t *testing.T) {
	ds := MustGenerate(Config{Size: Small, Scale: 0.05, Seed: 13}) // minimal
	dir := t.TempDir()
	if err := ds.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.csv", "microarray.csv", "patients.csv", "genes.csv", "go.csv"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%50) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(99)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestRNGStreamsDecorrelated(t *testing.T) {
	root := NewRNG(1)
	a := root.DeriveStream(1)
	b := root.DeriveStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("derived streams overlap")
	}
}

func TestPickDistinct(t *testing.T) {
	rng := NewRNG(5)
	out := pickDistinct(rng, 10, 4)
	if len(out) != 4 {
		t.Fatalf("len=%d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("must be ascending distinct")
		}
	}
	if len(pickDistinct(rng, 3, 10)) != 3 {
		t.Fatal("k>n must clamp")
	}
}

func TestBytesEstimatePositive(t *testing.T) {
	ds := MustGenerate(tinyConfig(21))
	want := int64(ds.Dims.Patients) * int64(ds.Dims.Genes) * 8
	if ds.BytesEstimate() < want {
		t.Fatalf("estimate %d below matrix size %d", ds.BytesEstimate(), want)
	}
}
