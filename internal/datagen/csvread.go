package datagen

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/genbase/genbase/internal/linalg"
)

// ReadCSVDir loads a dataset previously written by WriteCSVDir (or authored
// by hand in the same relational layout). Planted-structure provenance
// (causal genes, enriched terms) is not part of the CSV format and is left
// empty.
func ReadCSVDir(dir string) (*Dataset, error) {
	manifest, err := readCSVFile(filepath.Join(dir, "manifest.csv"))
	if err != nil {
		return nil, err
	}
	if len(manifest) != 2 || len(manifest[1]) < 5 {
		return nil, fmt.Errorf("datagen: malformed manifest.csv")
	}
	ds := &Dataset{Size: Size(manifest[1][0])}
	if ds.Dims.Patients, err = strconv.Atoi(manifest[1][1]); err != nil {
		return nil, fmt.Errorf("datagen: manifest patients: %w", err)
	}
	if ds.Dims.Genes, err = strconv.Atoi(manifest[1][2]); err != nil {
		return nil, fmt.Errorf("datagen: manifest genes: %w", err)
	}
	if ds.Dims.GOTerms, err = strconv.Atoi(manifest[1][3]); err != nil {
		return nil, fmt.Errorf("datagen: manifest goterms: %w", err)
	}
	if ds.Seed, err = strconv.ParseUint(manifest[1][4], 10, 64); err != nil {
		return nil, fmt.Errorf("datagen: manifest seed: %w", err)
	}

	ds.Expression = linalg.NewMatrix(ds.Dims.Patients, ds.Dims.Genes)
	if err := readTripleFile(filepath.Join(dir, "microarray.csv"), func(f []string) error {
		g, err := strconv.Atoi(f[0])
		if err != nil {
			return err
		}
		p, err := strconv.Atoi(f[1])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return err
		}
		if p < 0 || p >= ds.Dims.Patients || g < 0 || g >= ds.Dims.Genes {
			return fmt.Errorf("cell (%d,%d) out of bounds", p, g)
		}
		ds.Expression.Set(p, g, v)
		return nil
	}); err != nil {
		return nil, err
	}

	pats, err := readCSVFile(filepath.Join(dir, "patients.csv"))
	if err != nil {
		return nil, err
	}
	ds.Patients = make([]Patient, 0, ds.Dims.Patients)
	for _, row := range pats[1:] {
		if len(row) != 6 {
			return nil, fmt.Errorf("datagen: patients.csv row has %d fields", len(row))
		}
		id, _ := strconv.Atoi(row[0])
		age, _ := strconv.Atoi(row[1])
		if len(row[2]) != 1 {
			return nil, fmt.Errorf("datagen: bad gender %q", row[2])
		}
		zip, _ := strconv.Atoi(row[3])
		dis, _ := strconv.Atoi(row[4])
		resp, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, err
		}
		ds.Patients = append(ds.Patients, Patient{
			ID: int32(id), Age: int32(age), Gender: row[2][0],
			Zipcode: int32(zip), DiseaseID: int32(dis), DrugResponse: resp,
		})
	}
	if len(ds.Patients) != ds.Dims.Patients {
		return nil, fmt.Errorf("datagen: %d patients, manifest says %d", len(ds.Patients), ds.Dims.Patients)
	}

	genes, err := readCSVFile(filepath.Join(dir, "genes.csv"))
	if err != nil {
		return nil, err
	}
	ds.Genes = make([]Gene, 0, ds.Dims.Genes)
	for _, row := range genes[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("datagen: genes.csv row has %d fields", len(row))
		}
		id, _ := strconv.Atoi(row[0])
		target, _ := strconv.Atoi(row[1])
		pos, _ := strconv.Atoi(row[2])
		length, _ := strconv.Atoi(row[3])
		fn, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, err
		}
		ds.Genes = append(ds.Genes, Gene{
			ID: int32(id), Target: int32(target), Position: int32(pos),
			Length: int32(length), Function: int32(fn),
		})
	}
	if len(ds.Genes) != ds.Dims.Genes {
		return nil, fmt.Errorf("datagen: %d genes, manifest says %d", len(ds.Genes), ds.Dims.Genes)
	}

	ds.GO = make([]uint8, ds.Dims.Genes*ds.Dims.GOTerms)
	if err := readTripleFile(filepath.Join(dir, "go.csv"), func(f []string) error {
		g, err := strconv.Atoi(f[0])
		if err != nil {
			return err
		}
		t, err := strconv.Atoi(f[1])
		if err != nil {
			return err
		}
		if f[2] != "1" {
			return nil
		}
		if g < 0 || g >= ds.Dims.Genes || t < 0 || t >= ds.Dims.GOTerms {
			return fmt.Errorf("GO cell (%d,%d) out of bounds", g, t)
		}
		ds.GO[g*ds.Dims.GOTerms+t] = 1
		return nil
	}); err != nil {
		return nil, err
	}
	return ds, nil
}

func readCSVFile(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return csv.NewReader(bufio.NewReaderSize(f, 1<<20)).ReadAll()
}

// readTripleFile streams a large comma-separated triple file line by line
// (avoiding encoding/csv's per-record allocations on multi-million-row
// files), skipping the header.
func readTripleFile(path string, fn func(fields []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	lineNum := 0
	for {
		line, err := r.ReadString('\n')
		if len(line) > 0 {
			lineNum++
			line = strings.TrimRight(line, "\n")
			if lineNum > 1 && line != "" { // skip header
				fields := strings.Split(line, ",")
				if len(fields) != 3 {
					return fmt.Errorf("datagen: %s:%d: %d fields", filepath.Base(path), lineNum, len(fields))
				}
				if ferr := fn(fields); ferr != nil {
					return fmt.Errorf("datagen: %s:%d: %w", filepath.Base(path), lineNum, ferr)
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
