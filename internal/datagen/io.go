package datagen

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"github.com/genbase/genbase/internal/linalg"
)

// WriteCSVDir writes the four tables in the paper's relational form into dir:
// microarray.csv (geneid,patientid,expr), patients.csv, genes.csv, go.csv
// (only memberships with value 1, as sparse triples), plus manifest.csv with
// the dimensions and seed.
func (d *Dataset) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "manifest.csv"), [][]string{
		{"size", "patients", "genes", "goterms", "seed"},
		{string(d.Size), strconv.Itoa(d.Dims.Patients), strconv.Itoa(d.Dims.Genes),
			strconv.Itoa(d.Dims.GOTerms), strconv.FormatUint(d.Seed, 10)},
	}); err != nil {
		return err
	}

	mf, err := os.Create(filepath.Join(dir, "microarray.csv"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(mf, 1<<20)
	fmt.Fprintln(bw, "geneid,patientid,expressionvalue")
	for p := 0; p < d.Dims.Patients; p++ {
		row := d.Expression.Row(p)
		for g, v := range row {
			fmt.Fprintf(bw, "%d,%d,%s\n", g, p, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	if err := bw.Flush(); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Close(); err != nil {
		return err
	}

	pt := [][]string{{"patientid", "age", "gender", "zipcode", "diseaseid", "drugresponse"}}
	for _, p := range d.Patients {
		pt = append(pt, []string{
			strconv.Itoa(int(p.ID)), strconv.Itoa(int(p.Age)), string(p.Gender),
			strconv.Itoa(int(p.Zipcode)), strconv.Itoa(int(p.DiseaseID)),
			strconv.FormatFloat(p.DrugResponse, 'g', -1, 64),
		})
	}
	if err := writeCSV(filepath.Join(dir, "patients.csv"), pt); err != nil {
		return err
	}

	gt := [][]string{{"geneid", "target", "position", "length", "function"}}
	for _, g := range d.Genes {
		gt = append(gt, []string{
			strconv.Itoa(int(g.ID)), strconv.Itoa(int(g.Target)), strconv.Itoa(int(g.Position)),
			strconv.Itoa(int(g.Length)), strconv.Itoa(int(g.Function)),
		})
	}
	if err := writeCSV(filepath.Join(dir, "genes.csv"), gt); err != nil {
		return err
	}

	gof, err := os.Create(filepath.Join(dir, "go.csv"))
	if err != nil {
		return err
	}
	gw := bufio.NewWriterSize(gof, 1<<20)
	fmt.Fprintln(gw, "geneid,goid,belongs")
	for g := 0; g < d.Dims.Genes; g++ {
		for t := 0; t < d.Dims.GOTerms; t++ {
			if d.GOAt(g, t) == 1 {
				fmt.Fprintf(gw, "%d,%d,1\n", g, t)
			}
		}
	}
	if err := gw.Flush(); err != nil {
		gof.Close()
		return err
	}
	return gof.Close()
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(bufio.NewWriterSize(f, 1<<20))
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// binaryMagic identifies the GenBase binary dataset format.
const binaryMagic = uint32(0x47424431) // "GBD1"

// WriteBinary serializes the dataset in a compact binary format (much faster
// to load than CSV; used by the benchmark harness to cache generated data).
func (d *Dataset) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	le := binary.LittleEndian
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); bw.Write(b[:]) }
	writeU64 := func(v uint64) { var b [8]byte; le.PutUint64(b[:], v); bw.Write(b[:]) }
	writeF64 := func(v float64) { var b [8]byte; le.PutUint64(b[:], mathFloat64bits(v)); bw.Write(b[:]) }

	writeU32(binaryMagic)
	writeU32(uint32(len(d.Size)))
	bw.WriteString(string(d.Size))
	writeU64(d.Seed)
	writeU32(uint32(d.Dims.Patients))
	writeU32(uint32(d.Dims.Genes))
	writeU32(uint32(d.Dims.GOTerms))

	for p := 0; p < d.Dims.Patients; p++ {
		for _, v := range d.Expression.Row(p) {
			writeF64(v)
		}
	}
	for _, p := range d.Patients {
		writeU32(uint32(p.ID))
		writeU32(uint32(p.Age))
		bw.WriteByte(p.Gender)
		writeU32(uint32(p.Zipcode))
		writeU32(uint32(p.DiseaseID))
		writeF64(p.DrugResponse)
	}
	for _, g := range d.Genes {
		writeU32(uint32(g.ID))
		writeU32(uint32(g.Target))
		writeU32(uint32(g.Position))
		writeU32(uint32(g.Length))
		writeU32(uint32(g.Function))
	}
	bw.Write(d.GO)
	return bw.Flush()
}

// ReadBinary deserializes a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return le.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return le.Uint64(b[:]), nil
	}

	magic, err := readU32()
	if err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("datagen: bad magic %#x", magic)
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	seed, err := readU64()
	if err != nil {
		return nil, err
	}
	pN, err := readU32()
	if err != nil {
		return nil, err
	}
	gN, err := readU32()
	if err != nil {
		return nil, err
	}
	tN, err := readU32()
	if err != nil {
		return nil, err
	}

	d := &Dataset{
		Size: Size(name),
		Dims: Dims{Patients: int(pN), Genes: int(gN), GOTerms: int(tN)},
		Seed: seed,
	}
	d.Expression = linalg.NewMatrix(int(pN), int(gN))
	buf := make([]byte, 8*int(gN))
	for p := 0; p < int(pN); p++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		row := d.Expression.Row(p)
		for j := range row {
			row[j] = mathFloat64frombits(le.Uint64(buf[8*j:]))
		}
	}
	d.Patients = make([]Patient, pN)
	for i := range d.Patients {
		var rec [25]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		d.Patients[i] = Patient{
			ID:           int32(le.Uint32(rec[0:])),
			Age:          int32(le.Uint32(rec[4:])),
			Gender:       rec[8],
			Zipcode:      int32(le.Uint32(rec[9:])),
			DiseaseID:    int32(le.Uint32(rec[13:])),
			DrugResponse: mathFloat64frombits(le.Uint64(rec[17:])),
		}
	}
	d.Genes = make([]Gene, gN)
	for i := range d.Genes {
		var rec [20]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		d.Genes[i] = Gene{
			ID:       int32(le.Uint32(rec[0:])),
			Target:   int32(le.Uint32(rec[4:])),
			Position: int32(le.Uint32(rec[8:])),
			Length:   int32(le.Uint32(rec[12:])),
			Function: int32(le.Uint32(rec[16:])),
		}
	}
	d.GO = make([]uint8, int(gN)*int(tN))
	if _, err := io.ReadFull(br, d.GO); err != nil {
		return nil, err
	}
	return d, nil
}
