// Package datagen produces the four GenBase datasets (paper §3.1) —
// microarray expression data, patient metadata, gene metadata, and gene
// ontology membership — as deterministic synthetic data, exactly as the
// original benchmark does ("to protect privacy ... we use synthetically
// generated data"). Planted structure gives each query real signal: causal
// genes drive drug response (Q1), pathway factors correlate genes (Q2),
// biclusters span patient/gene subsets (Q3), and a few GO terms are enriched
// among highly expressed genes (Q5).
package datagen

import (
	"fmt"

	"github.com/genbase/genbase/internal/linalg"
)

// Size names a dataset preset.
type Size string

// The paper's four presets, scaled by 1/20 per dimension so the benchmark
// runs on a single-core machine (see DESIGN.md §3.5). Aspect ratios match the
// paper: small 5K×5K, medium 20K patients × 15K genes, large 40K×30K,
// xlarge 70K×60K.
const (
	Small  Size = "small"
	Medium Size = "medium"
	Large  Size = "large"
	XLarge Size = "xlarge"
)

// Dims describes a dataset's shape.
type Dims struct {
	Patients int
	Genes    int
	GOTerms  int
}

// PresetDims returns the dimensions of a preset at the given scale multiplier
// (scale 1.0 is the default 1/20-of-paper size).
func PresetDims(s Size, scale float64) (Dims, error) {
	if scale <= 0 {
		scale = 1
	}
	var d Dims
	switch s {
	case Small:
		d = Dims{Patients: 250, Genes: 250, GOTerms: 100}
	case Medium:
		d = Dims{Patients: 1000, Genes: 750, GOTerms: 200}
	case Large:
		d = Dims{Patients: 2000, Genes: 1500, GOTerms: 400}
	case XLarge:
		d = Dims{Patients: 3500, Genes: 3000, GOTerms: 800}
	default:
		return Dims{}, fmt.Errorf("datagen: unknown size %q", s)
	}
	d.Patients = int(float64(d.Patients) * scale)
	d.Genes = int(float64(d.Genes) * scale)
	d.GOTerms = int(float64(d.GOTerms) * scale)
	if d.Patients < 4 || d.Genes < 4 || d.GOTerms < 2 {
		return Dims{}, fmt.Errorf("datagen: scale %v too small for %s", scale, s)
	}
	return d, nil
}

// Sizes lists the presets in ascending order.
func Sizes() []Size { return []Size{Small, Medium, Large, XLarge} }

// Patient is one row of the patient metadata table (paper §3.1.2).
type Patient struct {
	ID           int32
	Age          int32
	Gender       byte // 'M' or 'F'
	Zipcode      int32
	DiseaseID    int32 // 1..21
	DrugResponse float64
}

// Gene is one row of the gene metadata table (paper §3.1.3).
type Gene struct {
	ID       int32
	Target   int32 // id of the gene targeted by this gene's protein
	Position int32 // base pairs from chromosome start
	Length   int32 // length in base pairs
	Function int32 // functional category code, [0, 1000)
}

// Dataset bundles the four benchmark tables in neutral (engine-independent)
// form. Each engine loads this into its own storage format.
type Dataset struct {
	Size Size
	Dims Dims
	Seed uint64

	// Expression is the microarray matrix: rows are patients, columns genes
	// (paper §3.1.1). Expression.At(p, g) is the value for patient p, gene g.
	Expression *linalg.Matrix

	Patients []Patient
	Genes    []Gene

	// GO is the gene-ontology membership matrix: GO[g*GOTerms + t] == 1 when
	// gene g belongs to term t (paper §3.1.4, array form).
	GO []uint8

	// Provenance of planted structure, used by tests and validation.
	CausalGenes    []int // genes that truly drive drug response (Q1 signal)
	EnrichedTerms  []int // GO terms planted to be expression-enriched (Q5 signal)
	PlantedRowSets [][]int
	PlantedColSets [][]int
}

// GOAt reports membership of gene g in term t.
func (d *Dataset) GOAt(g, t int) uint8 { return d.GO[g*d.Dims.GOTerms+t] }

// BytesEstimate approximates the in-memory footprint of the dataset; the
// engines use it for memory budgeting.
func (d *Dataset) BytesEstimate() int64 {
	cells := int64(d.Dims.Patients) * int64(d.Dims.Genes)
	return cells*8 + int64(len(d.Patients))*24 + int64(len(d.Genes))*20 + int64(len(d.GO))
}

// NumDiseases is the fixed disease vocabulary size from the paper ("our data
// set contains 21 diseases").
const NumDiseases = 21

// FunctionRange is the exclusive upper bound of gene function codes. The
// paper's example predicate "function < 250" selects 25% of genes under a
// uniform code assignment.
const FunctionRange = 1000
