package datagen

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := MustGenerate(Config{Size: Small, Scale: 0.2, Seed: 17})
	dir := t.TempDir()
	if err := ds.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != ds.Dims || got.Seed != ds.Seed || got.Size != ds.Size {
		t.Fatalf("header mismatch: %+v vs %+v", got.Dims, ds.Dims)
	}
	for p := 0; p < ds.Dims.Patients; p++ {
		for g := 0; g < ds.Dims.Genes; g++ {
			if got.Expression.At(p, g) != ds.Expression.At(p, g) {
				t.Fatalf("expression (%d,%d): %v vs %v", p, g, got.Expression.At(p, g), ds.Expression.At(p, g))
			}
		}
	}
	for i := range ds.Patients {
		if got.Patients[i] != ds.Patients[i] {
			t.Fatalf("patient %d: %+v vs %+v", i, got.Patients[i], ds.Patients[i])
		}
	}
	for i := range ds.Genes {
		if got.Genes[i] != ds.Genes[i] {
			t.Fatalf("gene %d mismatch", i)
		}
	}
	for i := range ds.GO {
		if got.GO[i] != ds.GO[i] {
			t.Fatal("GO mismatch")
		}
	}
}

func TestReadCSVDirMissing(t *testing.T) {
	if _, err := ReadCSVDir(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestReadCSVDirCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.csv"), []byte("just,one,row\n"), 0o644)
	if _, err := ReadCSVDir(dir); err == nil {
		t.Fatal("expected error for malformed manifest")
	}
}

func TestReadCSVDirBadCell(t *testing.T) {
	ds := MustGenerate(Config{Size: Small, Scale: 0.05, Seed: 1})
	dir := t.TempDir()
	if err := ds.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the microarray with an out-of-bounds gene id.
	path := filepath.Join(dir, "microarray.csv")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("99999,0,1.5\n")
	f.Close()
	if _, err := ReadCSVDir(dir); err == nil {
		t.Fatal("expected bounds error")
	}
}
