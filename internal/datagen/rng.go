package datagen

import "math"

// RNG is a deterministic SplitMix64 generator with normal-variate support.
// The data generator must be reproducible across machines and Go versions,
// so it does not depend on math/rand.
type RNG struct {
	state uint64
	// Box–Muller cache.
	hasSpare bool
	spare    float64
}

// NewRNG seeds a generator. Different streams should use different seeds;
// DeriveStream gives convenient decorrelated sub-streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// DeriveStream returns a new generator whose sequence is decorrelated from
// the parent, keyed by label.
func (r *RNG) DeriveStream(label uint64) *RNG {
	return &RNG{state: r.state ^ (label+0x9e3779b97f4a7c15)*0xff51afd7ed558ccd}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn requires positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u1 float64
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Perm returns a deterministic random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
