package datagen

import (
	"fmt"
	"math"

	"github.com/genbase/genbase/internal/linalg"
)

// Config controls generation beyond size and seed.
type Config struct {
	Size  Size
	Scale float64 // 1.0 = default (1/20 of paper dimensions)
	// PatientScale additionally multiplies only the patient dimension —
	// the paper's cluster-growth model ("up to 10⁸⁻¹⁰ samples ... each node
	// handling 10⁴⁻⁵ samples"): more patients per cluster, same genes.
	// 0 means 1.
	PatientScale float64
	Seed         uint64

	// NumPathways is the number of latent correlation factors (Q2 signal).
	// 0 means Genes/25.
	NumPathways int
	// NumCausalGenes drive drug response (Q1 signal). 0 means 40 (capped at
	// Genes/4).
	NumCausalGenes int
	// NumBiclusters planted into the expression matrix (Q3 signal). 0 means 5.
	NumBiclusters int
	// NumEnrichedTerms of the GO table carry expression enrichment
	// (Q5 signal). 0 means max(3, GOTerms/20).
	NumEnrichedTerms int
	// NoiseSD is the additive measurement-noise standard deviation. 0 means 0.6.
	NoiseSD float64
}

func (c *Config) setDefaults(d Dims) {
	if c.NumPathways <= 0 {
		c.NumPathways = d.Genes / 25
		if c.NumPathways < 2 {
			c.NumPathways = 2
		}
	}
	if c.NumCausalGenes <= 0 {
		c.NumCausalGenes = 40
	}
	if c.NumCausalGenes > d.Genes/4 {
		c.NumCausalGenes = d.Genes / 4
	}
	if c.NumBiclusters <= 0 {
		c.NumBiclusters = 5
	}
	if c.NumEnrichedTerms <= 0 {
		c.NumEnrichedTerms = d.GOTerms / 20
		if c.NumEnrichedTerms < 3 {
			c.NumEnrichedTerms = 3
		}
	}
	if c.NoiseSD <= 0 {
		c.NoiseSD = 0.6
	}
}

// Generate builds a complete deterministic dataset.
func Generate(cfg Config) (*Dataset, error) {
	dims, err := PresetDims(cfg.Size, cfg.Scale)
	if err != nil {
		return nil, err
	}
	if cfg.PatientScale > 0 {
		dims.Patients = int(float64(dims.Patients) * cfg.PatientScale)
		if dims.Patients < 4 {
			return nil, fmt.Errorf("datagen: patient scale %v too small", cfg.PatientScale)
		}
	}
	cfg.setDefaults(dims)
	root := NewRNG(cfg.Seed ^ 0xdb91_0f5c_e232_a1b7)

	ds := &Dataset{Size: cfg.Size, Dims: dims, Seed: cfg.Seed}
	genGeneMetadata(ds, root.DeriveStream(1))
	genPatients(ds, root.DeriveStream(2))
	genExpression(ds, &cfg, root.DeriveStream(3))
	genDrugResponse(ds, &cfg, root.DeriveStream(4))
	genGO(ds, &cfg, root.DeriveStream(5))
	return ds, nil
}

// MustGenerate is Generate for known-good configs (presets used in tests and
// benches); it panics on error.
func MustGenerate(cfg Config) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

func genGeneMetadata(ds *Dataset, rng *RNG) {
	g := ds.Dims.Genes
	ds.Genes = make([]Gene, g)
	pos := int32(0)
	for i := 0; i < g; i++ {
		length := int32(rng.Intn(2000) + 100)
		ds.Genes[i] = Gene{
			ID:       int32(i),
			Target:   int32(rng.Intn(g)),
			Position: pos,
			Length:   length,
			Function: int32(rng.Intn(FunctionRange)),
		}
		pos += length + int32(rng.Intn(5000))
	}
}

func genPatients(ds *Dataset, rng *RNG) {
	p := ds.Dims.Patients
	ds.Patients = make([]Patient, p)
	for i := 0; i < p; i++ {
		gender := byte('F')
		if rng.Float64() < 0.5 {
			gender = 'M'
		}
		ds.Patients[i] = Patient{
			ID:        int32(i),
			Age:       int32(rng.Intn(100)),
			Gender:    gender,
			Zipcode:   int32(rng.Intn(99999) + 1),
			DiseaseID: int32(rng.Intn(NumDiseases) + 1),
			// DrugResponse filled by genDrugResponse.
		}
	}
}

// genExpression fills the microarray matrix with layered structure:
// per-gene base level, pathway latent factors, planted biclusters, noise.
func genExpression(ds *Dataset, cfg *Config, rng *RNG) {
	p, g := ds.Dims.Patients, ds.Dims.Genes
	m := linalg.NewMatrix(p, g)

	// Per-gene base expression: log-normal-ish positive levels.
	base := make([]float64, g)
	for j := range base {
		base[j] = math.Exp(0.3 * rng.NormFloat64())
	}

	// Pathway structure: each gene belongs to one pathway; patients carry a
	// latent activation per pathway. Genes in a pathway co-vary (Q2 signal).
	pathwayOf := make([]int, g)
	loading := make([]float64, g)
	for j := range pathwayOf {
		pathwayOf[j] = rng.Intn(cfg.NumPathways)
		loading[j] = 0.5 + rng.Float64()
	}
	activation := make([]float64, p*cfg.NumPathways)
	for i := range activation {
		activation[i] = rng.NormFloat64()
	}

	noise := rng.DeriveStream(11)
	for i := 0; i < p; i++ {
		row := m.Row(i)
		act := activation[i*cfg.NumPathways : (i+1)*cfg.NumPathways]
		for j := 0; j < g; j++ {
			row[j] = base[j] + loading[j]*act[pathwayOf[j]] + cfg.NoiseSD*noise.NormFloat64()
		}
	}

	// Planted biclusters: additive row+column pattern over random subsets
	// (Q3 signal). Kept modest in size so they do not distort global stats.
	bcRng := rng.DeriveStream(12)
	for b := 0; b < cfg.NumBiclusters; b++ {
		nr := p/10 + 2
		nc := g/10 + 2
		rows := pickDistinct(bcRng, p, nr)
		cols := pickDistinct(bcRng, g, nc)
		rowEff := make([]float64, nr)
		colEff := make([]float64, nc)
		for i := range rowEff {
			rowEff[i] = bcRng.NormFloat64() * 0.3
		}
		for j := range colEff {
			colEff[j] = bcRng.NormFloat64() * 0.3
		}
		level := 3 + bcRng.Float64()*2
		for a, i := range rows {
			for c, j := range cols {
				m.Set(i, j, level+rowEff[a]+colEff[c]+0.05*bcRng.NormFloat64())
			}
		}
		ds.PlantedRowSets = append(ds.PlantedRowSets, rows)
		ds.PlantedColSets = append(ds.PlantedColSets, cols)
	}
	ds.Expression = m
}

// genDrugResponse makes response a sparse linear function of causal-gene
// expression plus noise, so Q1's regression finds real coefficients.
func genDrugResponse(ds *Dataset, cfg *Config, rng *RNG) {
	p := ds.Dims.Patients
	causal := pickDistinct(rng, ds.Dims.Genes, cfg.NumCausalGenes)
	ds.CausalGenes = causal
	weights := make([]float64, len(causal))
	for i := range weights {
		weights[i] = rng.NormFloat64()
	}
	for i := 0; i < p; i++ {
		resp := 2.0
		row := ds.Expression.Row(i)
		for k, j := range causal {
			resp += weights[k] * row[j]
		}
		resp += 0.5 * rng.NormFloat64()
		ds.Patients[i].DrugResponse = resp
	}
}

// genGO assigns genes to terms with skewed term sizes; enriched terms prefer
// genes with high mean expression, giving Q5 true positives.
func genGO(ds *Dataset, cfg *Config, rng *RNG) {
	g, t := ds.Dims.Genes, ds.Dims.GOTerms
	ds.GO = make([]uint8, g*t)

	// Mean expression per gene (over all patients), for enrichment planting.
	means := make([]float64, g)
	for i := 0; i < ds.Dims.Patients; i++ {
		row := ds.Expression.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(ds.Dims.Patients)
	}
	order := argsortDescending(means)
	rank := make([]int, g) // rank[gene] = 0 for highest mean
	for r, j := range order {
		rank[j] = r
	}

	enriched := map[int]bool{}
	for len(enriched) < cfg.NumEnrichedTerms && len(enriched) < t {
		enriched[rng.Intn(t)] = true
	}
	for term := 0; term < t; term++ {
		// Term size skew: most terms small, a few large.
		frac := 0.02 + 0.2*rng.Float64()*rng.Float64()
		if enriched[term] {
			ds.EnrichedTerms = append(ds.EnrichedTerms, term)
			// Members drawn preferentially from the top of the expression
			// ranking: P(member) decays with rank.
			for j := 0; j < g; j++ {
				pMember := frac * 4 * math.Exp(-3*float64(rank[j])/float64(g))
				if rng.Float64() < pMember {
					ds.GO[j*t+term] = 1
				}
			}
		} else {
			for j := 0; j < g; j++ {
				if rng.Float64() < frac {
					ds.GO[j*t+term] = 1
				}
			}
		}
		// Guarantee at least two members and two non-members so the Wilcoxon
		// test is defined for every term.
		ensureTermBalance(ds, term, rng)
	}
}

func ensureTermBalance(ds *Dataset, term int, rng *RNG) {
	g, t := ds.Dims.Genes, ds.Dims.GOTerms
	members := 0
	for j := 0; j < g; j++ {
		if ds.GO[j*t+term] == 1 {
			members++
		}
	}
	for members < 2 {
		j := rng.Intn(g)
		if ds.GO[j*t+term] == 0 {
			ds.GO[j*t+term] = 1
			members++
		}
	}
	for g-members < 2 {
		j := rng.Intn(g)
		if ds.GO[j*t+term] == 1 {
			ds.GO[j*t+term] = 0
			members--
		}
	}
}

func pickDistinct(rng *RNG, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	// Keep deterministic ascending order for reproducible planting.
	insertionSortInts(out)
	return out
}

func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func argsortDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Simple heap-free sort (n is at most a few thousand genes).
	quicksortBy(idx, func(a, b int) bool { return xs[a] > xs[b] })
	return idx
}

func quicksortBy(xs []int, less func(a, b int) bool) {
	if len(xs) < 12 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	pivot := xs[len(xs)/2]
	left, right := 0, len(xs)-1
	for left <= right {
		for less(xs[left], pivot) {
			left++
		}
		for less(pivot, xs[right]) {
			right--
		}
		if left <= right {
			xs[left], xs[right] = xs[right], xs[left]
			left++
			right--
		}
	}
	quicksortBy(xs[:right+1], less)
	quicksortBy(xs[left:], less)
}
