package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/cost"
	"github.com/genbase/genbase/internal/engine"
)

// routeEngine is a stubEngine with a configurable support set and injectable
// failures, for router tests.
type routeEngine struct {
	stubEngine
	supports map[engine.QueryID]bool // nil = supports everything
	fail     error                   // returned by every Run when set
}

func (r *routeEngine) Supports(q engine.QueryID) bool {
	if r.supports == nil {
		return true
	}
	return r.supports[q]
}

func (r *routeEngine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if r.fail != nil {
		return nil, r.fail
	}
	return r.stubEngine.Run(ctx, q, p)
}

// testModel builds a cost model where "fast" is three orders of magnitude
// cheaper than "slow" on every operator.
func testModel() *cost.Online {
	m := &cost.Model{Coeffs: map[string]cost.Coeff{
		"fast": {DMNsPerUnit: 1, KernelNsPerUnit: 1},
		"slow": {DMNsPerUnit: 1000, KernelNsPerUnit: 1000},
	}}
	return cost.NewOnline(m, cost.FitDims)
}

func routerBackends(fast, slow engine.Engine) []Backend {
	return []Backend{
		{Server: New(fast, Options{MaxConcurrent: 2, DisableCache: true}), Config: cost.Config{System: "fast"}, Class: "a"},
		{Server: New(slow, Options{MaxConcurrent: 2, DisableCache: true}), Config: cost.Config{System: "slow"}, Class: "a"},
	}
}

func TestRouterRoutesToPredictedCheapest(t *testing.T) {
	fast := &routeEngine{stubEngine: stubEngine{name: "fast"}}
	slow := &routeEngine{stubEngine: stubEngine{name: "slow"}}
	r, err := NewRouter(routerBackends(fast, slow), RouterOptions{Model: testModel(), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	for i := 0; i < 8; i++ {
		p.Seed = uint64(i) // distinct fingerprints: no coalescing
		if _, _, err := r.Run(context.Background(), engine.Q4SVD, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := fast.runs.Load(); got != 8 {
		t.Fatalf("cheap backend ran %d of 8", got)
	}
	if got := slow.runs.Load(); got != 0 {
		t.Fatalf("expensive backend ran %d queries, want 0", got)
	}
	rs := r.RouterStats()
	if rs.Rerouted != 0 {
		t.Fatalf("rerouted %d with no overload", rs.Rerouted)
	}
	if rs.Shares[0].Served != 8 || rs.Shares[1].Served != 0 {
		t.Fatalf("shares %+v", rs.Shares)
	}
}

func TestRouterNeverSelectsUnsupportedBackend(t *testing.T) {
	// "fast" is predicted far cheaper but only supports Q4; every other
	// query must land on "slow" without ever touching "fast".
	fast := &routeEngine{stubEngine: stubEngine{name: "fast"}, supports: map[engine.QueryID]bool{engine.Q4SVD: true}}
	slow := &routeEngine{stubEngine: stubEngine{name: "slow"}}
	r, err := NewRouter(routerBackends(fast, slow), RouterOptions{Model: testModel(), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	for _, q := range []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q5Statistics} {
		if _, _, err := r.Run(context.Background(), q, p); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if got := fast.runs.Load(); got != 0 {
		t.Fatalf("unsupporting backend executed %d queries", got)
	}
	if got := slow.runs.Load(); got != 3 {
		t.Fatalf("supporting backend ran %d of 3", got)
	}

	// A query no fleet member supports is rejected as typed unsupported,
	// before any backend runs — including a query id that does not exist.
	none := &routeEngine{stubEngine: stubEngine{name: "fast"}, supports: map[engine.QueryID]bool{}}
	r2, err := NewRouter(routerBackends(none, none)[:1], RouterOptions{Model: testModel(), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.Run(context.Background(), engine.Q4SVD, p); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("unsupported-everywhere error = %v, want ErrUnsupported", err)
	}
	if _, _, err := r2.Run(context.Background(), engine.QueryID(99), p); err == nil {
		t.Fatal("bogus query id routed somewhere")
	}
	if got := none.runs.Load(); got != 0 {
		t.Fatalf("backend executed %d unsupported queries", got)
	}
}

func TestRouterStaticPolicyPins(t *testing.T) {
	fast := &routeEngine{stubEngine: stubEngine{name: "fast"}}
	slow := &routeEngine{stubEngine: stubEngine{name: "slow"}}
	r, err := NewRouter(routerBackends(fast, slow), RouterOptions{
		Model: testModel(), DisableCache: true, Policy: Policy{Static: "slow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	for i := 0; i < 4; i++ {
		p.Seed = uint64(i)
		if _, _, err := r.Run(context.Background(), engine.Q2Covariance, p); err != nil {
			t.Fatal(err)
		}
	}
	if fast.runs.Load() != 0 || slow.runs.Load() != 4 {
		t.Fatalf("static pin leaked: fast=%d slow=%d", fast.runs.Load(), slow.runs.Load())
	}

	// Pinning to a backend that does not support the query is a typed
	// unsupported error, not a silent re-route.
	noQ2 := &routeEngine{stubEngine: stubEngine{name: "fast"}, supports: map[engine.QueryID]bool{engine.Q4SVD: true}}
	r2, err := NewRouter(routerBackends(noQ2, slow), RouterOptions{
		Model: testModel(), DisableCache: true, Policy: Policy{Static: "fast"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.Run(context.Background(), engine.Q2Covariance, p); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("pinned-unsupported error = %v, want ErrUnsupported", err)
	}
	if slow.runs.Load() != 4 {
		t.Fatal("static pin re-routed to another backend")
	}

	// A static policy naming a configuration outside the fleet fails at
	// construction, listing the fleet.
	if _, err := NewRouter(routerBackends(fast, slow), RouterOptions{Policy: Policy{Static: "nope"}}); err == nil {
		t.Fatal("unknown static configuration accepted")
	}
}

func TestRouterHedgesToNextOnOverload(t *testing.T) {
	fast := &routeEngine{stubEngine: stubEngine{name: "fast"}, fail: fmt.Errorf("kernel exploded")}
	slow := &routeEngine{stubEngine: stubEngine{name: "slow"}}
	backends := []Backend{
		{Server: New(fast, Options{MaxConcurrent: 1, DisableCache: true, BreakerThreshold: 1}), Config: cost.Config{System: "fast"}, Class: "a"},
		{Server: New(slow, Options{MaxConcurrent: 1, DisableCache: true}), Config: cost.Config{System: "slow"}, Class: "a"},
	}
	r, err := NewRouter(backends, RouterOptions{Model: testModel(), DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	// First request: routed to the cheap backend, whose engine fails — an
	// engine failure is final (never silently re-run elsewhere), and it
	// opens the breaker.
	if _, _, err := r.Run(context.Background(), engine.Q1Regression, p); err == nil {
		t.Fatal("engine failure swallowed")
	}
	// Subsequent requests: the open breaker sheds with ErrOverload, and the
	// router hedges to the next-cheapest backend instead of failing.
	for i := 0; i < 3; i++ {
		p.Seed = uint64(i + 1)
		if _, _, err := r.Run(context.Background(), engine.Q1Regression, p); err != nil {
			t.Fatalf("hedged request %d: %v", i, err)
		}
	}
	if got := slow.runs.Load(); got != 3 {
		t.Fatalf("fallback backend ran %d of 3", got)
	}
	rs := r.RouterStats()
	// The first fallback success is a hedged re-route; after it, the online
	// model has learned the fallback's true (near-zero) wall cost and may
	// rank it first outright — so later successes need not count as
	// re-routes.
	if rs.Rerouted < 1 {
		t.Fatalf("rerouted = %d, want >= 1", rs.Rerouted)
	}
	if rs.Shares[0].Failed != 1 {
		t.Fatalf("failed backend share %+v", rs.Shares[0])
	}
}

func TestRouterCacheIsClassKeyed(t *testing.T) {
	shared := NewCache(0)
	mkBackends := func(a, b, c engine.Engine) []Backend {
		return []Backend{
			{Server: New(a, Options{MaxConcurrent: 1, DisableCache: true}), Config: cost.Config{System: "fast"}, Class: "x"},
			{Server: New(b, Options{MaxConcurrent: 1, DisableCache: true}), Config: cost.Config{System: "fast", Nodes: 2}, Class: "x"},
			{Server: New(c, Options{MaxConcurrent: 1, DisableCache: true}), Config: cost.Config{System: "slow"}, Class: "y"},
		}
	}
	a := &routeEngine{stubEngine: stubEngine{name: "a"}}
	b := &routeEngine{stubEngine: stubEngine{name: "b"}}
	c := &routeEngine{stubEngine: stubEngine{name: "c"}}
	p := engine.DefaultParams()

	// Cost-routed: the first request executes on a backend of class "x" and
	// caches under that class; the repeat is a hit.
	r1, err := NewRouter(mkBackends(a, b, c), RouterOptions{Model: testModel(), Cache: shared})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := r1.Run(context.Background(), engine.Q2Covariance, p); err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v", hit, err)
	}
	if _, hit, err := r1.Run(context.Background(), engine.Q2Covariance, p); err != nil || !hit {
		t.Fatalf("repeat run: hit=%v err=%v", hit, err)
	}
	if a.runs.Load()+b.runs.Load() != 1 {
		t.Fatalf("class-x backends ran %d, want 1", a.runs.Load()+b.runs.Load())
	}

	// A second router over the same shared cache, pinned to the class-"x"
	// sibling that did NOT execute: still a hit — entries are shared within
	// the class.
	r2, err := NewRouter(mkBackends(a, b, c), RouterOptions{
		Model: testModel(), Cache: shared, Policy: Policy{Static: "fast@2n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := r2.Run(context.Background(), engine.Q2Covariance, p); err != nil || !hit {
		t.Fatalf("same-class pinned run: hit=%v err=%v", hit, err)
	}
	if b.runs.Load() != 0 {
		t.Fatal("same-class sibling executed despite cached answer")
	}

	// Pinned to the class-"y" backend: the class-"x" entry must NOT serve
	// it — different class, different bits.
	r3, err := NewRouter(mkBackends(a, b, c), RouterOptions{
		Model: testModel(), Cache: shared, Policy: Policy{Static: "slow"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := r3.Run(context.Background(), engine.Q2Covariance, p); err != nil || hit {
		t.Fatalf("cross-class pinned run: hit=%v err=%v (class-x answer leaked to class y)", hit, err)
	}
	if c.runs.Load() != 1 {
		t.Fatalf("class-y backend ran %d, want 1", c.runs.Load())
	}
}

func TestRouterCoalescesAcrossFleet(t *testing.T) {
	eng := &routeEngine{stubEngine: stubEngine{name: "fast", delay: 10 * time.Millisecond}}
	slow := &routeEngine{stubEngine: stubEngine{name: "slow"}}
	r, err := NewRouter(routerBackends(eng, slow), RouterOptions{Model: testModel()})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, _, err := r.Run(context.Background(), engine.Q5Statistics, p)
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.runs.Load() + slow.runs.Load(); got != 1 {
		t.Fatalf("8 identical cold requests executed %d times, want 1 (single-flight)", got)
	}
}

func TestRouterRejectsBackendWithOwnCache(t *testing.T) {
	eng := &routeEngine{stubEngine: stubEngine{name: "fast"}}
	_, err := NewRouter([]Backend{
		{Server: New(eng, Options{MaxConcurrent: 1}), Config: cost.Config{System: "fast"}, Class: "a"},
	}, RouterOptions{})
	if err == nil {
		t.Fatal("backend with private cache accepted; double-caching would bypass class keying")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"cost", Policy{}, true},
		{"static:colstore-udf", Policy{Static: "colstore-udf"}, true},
		{"static:scidb@2n", Policy{Static: "scidb@2n"}, true},
		{"static:", Policy{}, false},
		{"", Policy{}, false},
		{"greedy", Policy{}, false},
	} {
		got, err := ParsePolicy(c.in)
		if c.ok != (err == nil) || got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, %v", c.in, got, err)
		}
		if c.ok && got.String() != c.in {
			t.Errorf("Policy round-trip %q -> %q", c.in, got.String())
		}
	}
}
