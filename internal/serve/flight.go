package serve

import (
	"context"
	"sync"

	"github.com/genbase/genbase/internal/engine"
)

// flights coalesces cold-cache twins (single-flight): the first caller of a
// key becomes its leader and executes; concurrent callers of the same key
// wait on the leader's channel and re-check the cache — a stampede of
// identical queries executes once instead of once per client. Shared by the
// single-engine Server and the fleet Router (which coalesces across its
// whole fleet: the key's System field carries the answer-equivalence class
// there, so twins coalesce no matter which backend each would have picked).
type flights struct {
	mu      sync.Mutex
	pending map[Key]chan struct{}
}

// run executes fn single-flight per key. The leader runs fn — which is
// responsible for publishing its result to the cache before run returns
// (the Router may cache under a different key than the flight key when it
// re-routes, so publication can't live here) — and wakes the waiters.
// Waiters re-check the cache with peek (their miss was already recorded)
// and either return the leader's published result or contend to lead the
// retry when the leader failed or published elsewhere.
func (f *flights) run(ctx context.Context, cache *Cache, key Key, fn func() (*engine.Result, error)) (*engine.Result, bool, error) {
	for first := true; ; first = false {
		// Re-check the cache on every pass but the first (whose miss the
		// caller's get just recorded): a woken waiter's twin, or a retrier
		// that raced ahead after a failed leader, may have cached the answer
		// between the last wait and this contention round.
		if !first {
			if res, ok := cache.peek(key); ok {
				return res, true, nil
			}
		}
		f.mu.Lock()
		if f.pending == nil {
			f.pending = make(map[Key]chan struct{})
		}
		ch, exists := f.pending[key]
		if !exists {
			// Leader: execute once and publish for the waiters.
			ch = make(chan struct{})
			f.pending[key] = ch
			f.mu.Unlock()
			res, err := fn()
			f.mu.Lock()
			delete(f.pending, key)
			f.mu.Unlock()
			close(ch)
			return res, false, err
		}
		f.mu.Unlock()
		// Waiter: a twin of this exact query is executing; wait for it
		// instead of burning an admission slot on a duplicate.
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}
