package serve

import (
	"context"
	"sync"
	"testing"

	"github.com/genbase/genbase/internal/cost"
	"github.com/genbase/genbase/internal/engine"
)

// epochStub tags every answer with a value, so tests can tell which engine
// generation actually executed.
type epochStub struct {
	stubEngine
	answer  float64
	release chan struct{} // when non-nil, Run blocks until closed
	entered chan struct{} // signaled once Run is inside the engine
}

func (s *epochStub) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if s.entered != nil {
		s.entered <- struct{}{}
	}
	if s.release != nil {
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.runs.Add(1)
	return &engine.Result{Query: q, Answer: &engine.SVDAnswer{SingularValues: []float64{s.answer}}}, nil
}

func answerOf(t *testing.T, res *engine.Result) float64 {
	t.Helper()
	return res.Answer.(*engine.SVDAnswer).SingularValues[0]
}

// TestWALEpochSwapRekeysCache: the same fingerprint served before and after a
// Swap must execute on both generations and cache both answers independently
// — epoch advance re-keys instead of evicting, and the old epoch's entry
// stays valid.
func TestWALEpochSwapRekeysCache(t *testing.T) {
	e0 := &epochStub{stubEngine: stubEngine{name: "stub"}, answer: 10}
	e1 := &epochStub{stubEngine: stubEngine{name: "stub"}, answer: 20}
	srv := New(e0, Options{MaxConcurrent: 2})
	p := engine.DefaultParams()

	res, hit, err := srv.Run(context.Background(), engine.Q4SVD, p)
	if err != nil || hit || answerOf(t, res) != 10 {
		t.Fatalf("epoch 0 miss: res %v hit %v err %v", res, hit, err)
	}
	if res, hit, _ := srv.Run(context.Background(), engine.Q4SVD, p); !hit || answerOf(t, res) != 10 {
		t.Fatalf("epoch 0 repeat not served from cache")
	}

	if old := srv.Swap(e1, 1); old != e0 {
		t.Fatal("Swap did not return the displaced engine")
	}
	if srv.Epoch() != 1 {
		t.Fatalf("epoch %d after swap, want 1", srv.Epoch())
	}
	// Same fingerprint, new epoch: the cached epoch-0 answer must NOT serve;
	// the new generation executes and caches under the new key.
	res, hit, err = srv.Run(context.Background(), engine.Q4SVD, p)
	if err != nil || hit || answerOf(t, res) != 20 {
		t.Fatalf("epoch 1 first run: answer %v hit %v err %v (stale epoch-0 answer served?)", res.Answer, hit, err)
	}
	if res, hit, _ := srv.Run(context.Background(), engine.Q4SVD, p); !hit || answerOf(t, res) != 20 {
		t.Fatal("epoch 1 repeat not served from cache")
	}
	if e0.runs.Load() != 1 || e1.runs.Load() != 1 {
		t.Fatalf("runs: old %d new %d, want 1/1", e0.runs.Load(), e1.runs.Load())
	}
	// Worker share carried over to the swapped-in engine.
	if e1.workers.Load() != e0.workers.Load() {
		t.Fatalf("swap did not re-pin workers: %d vs %d", e1.workers.Load(), e0.workers.Load())
	}
}

// TestWALEpochPinnedAtAdmission: a request in flight when Swap lands still
// executes on — and files its cache entry under — the generation it pinned at
// admission. The displaced engine stays usable until the request drains.
func TestWALEpochPinnedAtAdmission(t *testing.T) {
	e0 := &epochStub{
		stubEngine: stubEngine{name: "stub"},
		answer:     10,
		release:    make(chan struct{}),
		entered:    make(chan struct{}, 1),
	}
	e1 := &epochStub{stubEngine: stubEngine{name: "stub"}, answer: 20}
	srv := New(e0, Options{MaxConcurrent: 2})
	p := engine.DefaultParams()

	var wg sync.WaitGroup
	wg.Add(1)
	var inFlightAnswer float64
	go func() {
		defer wg.Done()
		res, _, err := srv.Run(context.Background(), engine.Q4SVD, p)
		if err != nil {
			t.Error(err)
			return
		}
		inFlightAnswer = answerOf(t, res)
	}()
	<-e0.entered // the request is inside the old generation

	srv.Swap(e1, 1) // ingest checkpoint lands mid-flight
	close(e0.release)
	wg.Wait()
	if inFlightAnswer != 10 {
		t.Fatalf("in-flight request answered %v, want the pinned epoch-0 answer 10", inFlightAnswer)
	}

	// The in-flight execution was cached under epoch 0, not epoch 1: a new
	// request (epoch 1) must miss and run on the new generation.
	if res, hit, _ := srv.Run(context.Background(), engine.Q4SVD, p); hit || answerOf(t, res) != 20 {
		t.Fatal("post-swap request served the mid-flight epoch-0 entry")
	}
}

func TestWALEpochSwapRejectsForeignSystem(t *testing.T) {
	srv := New(&epochStub{stubEngine: stubEngine{name: "stub"}}, Options{DisableCache: true})
	defer func() {
		if recover() == nil {
			t.Fatal("swap of a different system did not panic")
		}
	}()
	srv.Swap(&epochStub{stubEngine: stubEngine{name: "other"}}, 1)
}

// TestWALEpochRouterProbe: the router's class cache keys carry the backend
// epoch — after a backend swaps, the same fingerprint re-executes and the two
// epochs' answers coexist in the cache under distinct keys.
func TestWALEpochRouterProbe(t *testing.T) {
	e0 := &epochStub{stubEngine: stubEngine{name: "stub"}, answer: 10}
	e1 := &epochStub{stubEngine: stubEngine{name: "stub"}, answer: 20}
	srv := New(e0, Options{MaxConcurrent: 2, DisableCache: true})
	r, err := NewRouter([]Backend{{Server: srv, Config: cost.Config{System: "stub"}, Class: "dense"}}, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	if res, hit, err := r.Run(context.Background(), engine.Q4SVD, p); err != nil || hit || answerOf(t, res) != 10 {
		t.Fatalf("epoch 0: %v %v %v", res, hit, err)
	}
	if _, hit, _ := r.Run(context.Background(), engine.Q4SVD, p); !hit {
		t.Fatal("epoch 0 repeat missed the class cache")
	}
	srv.Swap(e1, 1)
	res, hit, err := r.Run(context.Background(), engine.Q4SVD, p)
	if err != nil || hit || answerOf(t, res) != 20 {
		t.Fatalf("epoch 1 served stale class-cache entry: answer %v hit %v err %v", res.Answer, hit, err)
	}
	if _, hit, _ := r.Run(context.Background(), engine.Q4SVD, p); !hit {
		t.Fatal("epoch 1 repeat missed the class cache")
	}
	if e0.runs.Load() != 1 || e1.runs.Load() != 1 {
		t.Fatalf("runs: %d/%d, want 1/1", e0.runs.Load(), e1.runs.Load())
	}
}
