// Package serve is the concurrent query-serving layer over a loaded engine
// (DESIGN.md §11): the piece that turns the paper's one-query-at-a-time
// benchmark into a system that can take traffic. A Server wraps one loaded
// engine.Engine and
//
//   - admits at most MaxConcurrent queries at a time (a semaphore), so a
//     burst of clients queues instead of oversubscribing the host;
//   - splits the parallel-kernel worker budget across the admission slots,
//     so N in-flight queries at W total workers run ~W/N kernel workers
//     each instead of N·W goroutines fighting for the same cores;
//   - answers repeated hot queries from a shared result cache keyed by
//     (engine, plan fingerprint) — the "millions of users" traffic shape,
//     where most requests are the same few dashboards. The fingerprint
//     covers exactly the parameters the compiled plan reads, so two Params
//     differing only in fields irrelevant to the query (a Q4 request with a
//     different MaxAge, say) coalesce onto one entry. Cold-cache twins are
//     coalesced single-flight: a stampede of identical queries executes
//     once, and the rest read the leader's result.
//
// Admission validates parameters by compiling the plan (engine.Params
// .Validate runs at compile time), so malformed requests are rejected at the
// door instead of inside a kernel.
//
// The engine must obey the engine.Engine concurrency contract: loaded state
// read-only during Run, per-query scratch only. The single-node engines
// have since the contract was written, and the multinode virtual-cluster
// engines do since the distributed plan layer gave each query its own
// virtual cluster (DESIGN.md §13) — so a cluster configuration serves
// traffic exactly like a single-node one (genbase-bench -serve-* -nodes N).
// The sole exception is the multi-node Hadoop wrapper (shared MR-scheduler
// accounting): serial-only, not servable.
package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/parallel"
	"github.com/genbase/genbase/internal/plan"
)

// DefaultMaxConcurrent is the admission width when Options leaves it zero.
const DefaultMaxConcurrent = 4

// WorkerSetter is implemented by engines whose analytics-kernel worker count
// can be pinned (all single-node engines). Server uses it to divide the
// host's worker budget across admission slots before serving starts.
type WorkerSetter interface {
	SetWorkers(n int)
}

// Options configures a Server.
type Options struct {
	// MaxConcurrent is the number of admission slots (default
	// DefaultMaxConcurrent). Queries beyond it block until a slot frees.
	MaxConcurrent int
	// WorkerBudget is the total kernel-worker budget split across slots
	// (default parallel.Default(), i.e. GENBASE_PARALLEL or NumCPU). Each
	// admitted query runs with max(1, WorkerBudget/MaxConcurrent) workers.
	WorkerBudget int
	// Cache shares a result cache across servers (e.g. one per engine over
	// the same dataset). Nil creates a private cache unless DisableCache.
	Cache *Cache
	// DisableCache turns result caching off (every query executes).
	DisableCache bool
}

// Server admits concurrent read-only queries over one loaded engine.
type Server struct {
	eng    engine.Engine
	system string
	slots  chan struct{}
	cache  *Cache // nil when caching is disabled

	// pending coalesces cold-cache twins (single-flight): the first caller
	// of a key becomes its leader and executes; concurrent callers of the
	// same key wait on the channel and read the leader's cached result —
	// the hot-query stampede executes once instead of once per client.
	pendMu  sync.Mutex
	pending map[Key]chan struct{}

	// fps memoizes (query, params) → plan fingerprint. engine.Params is a
	// flat comparable struct, so the exact-repeat hot path (the traffic
	// shape the cache serves) skips plan compilation entirely; distinct
	// Params that compile to the same fingerprint still coalesce in the
	// result cache. A memoized entry was validated when first compiled.
	fpMu sync.Mutex
	fps  map[fpKey]string

	inflight atomic.Int64
	peak     atomic.Int64
	admitted atomic.Int64
}

// New wraps a loaded engine. It pins the engine's worker count to the
// per-slot share of the budget, so it must be called before concurrent
// queries begin (SetWorkers is not synchronized — by contract it happens
// while the engine is idle).
func New(eng engine.Engine, opts Options) *Server {
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = DefaultMaxConcurrent
	}
	budget := parallel.Resolve(opts.WorkerBudget)
	per := budget / maxc
	if per < 1 {
		per = 1
	}
	if ws, ok := eng.(WorkerSetter); ok {
		ws.SetWorkers(per)
	}
	cache := opts.Cache
	if cache == nil && !opts.DisableCache {
		cache = NewCache(0)
	}
	if opts.DisableCache {
		cache = nil
	}
	return &Server{
		eng:     eng,
		system:  eng.Name(),
		slots:   make(chan struct{}, maxc),
		cache:   cache,
		pending: make(map[Key]chan struct{}),
		fps:     make(map[fpKey]string),
	}
}

// fpKey memoizes fingerprints per exact parameterization.
type fpKey struct {
	q engine.QueryID
	p engine.Params
}

// maxMemoizedFingerprints bounds the memo; at the bound the map resets (the
// workload is a small set of hot parameterizations, so eviction finesse
// buys nothing).
const maxMemoizedFingerprints = 4096

// fingerprint returns the plan fingerprint for (q, p), compiling (and
// therefore validating) on first sight and answering repeats from the memo.
func (s *Server) fingerprint(q engine.QueryID, p engine.Params) (string, error) {
	k := fpKey{q, p}
	s.fpMu.Lock()
	fp, ok := s.fps[k]
	s.fpMu.Unlock()
	if ok {
		return fp, nil
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return "", err
	}
	fp = pl.Fingerprint()
	s.fpMu.Lock()
	if len(s.fps) >= maxMemoizedFingerprints {
		s.fps = make(map[fpKey]string)
	}
	s.fps[k] = fp
	s.fpMu.Unlock()
	return fp, nil
}

// Engine returns the wrapped engine.
func (s *Server) Engine() engine.Engine { return s.eng }

// MaxConcurrent returns the admission width.
func (s *Server) MaxConcurrent() int { return cap(s.slots) }

// Run executes one query, blocking for an admission slot when the server is
// at width. The bool reports whether the result came from the cache (or a
// coalesced twin's execution). Cached results are shared between callers:
// the Answer must be treated as immutable (every engine already builds
// answers from fresh allocations and nothing downstream mutates them).
func (s *Server) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	// Admission: resolve the plan fingerprint (compiling, and therefore
	// validating the parameters, on first sight of this parameterization).
	// Semantically identical requests share a key regardless of irrelevant
	// Params fields.
	fp, err := s.fingerprint(q, p)
	if err != nil {
		return nil, false, err
	}
	if s.cache == nil {
		return s.execute(ctx, q, p)
	}
	key := Key{System: s.system, Fingerprint: fp}
	if res, ok := s.cache.get(key); ok {
		return res, true, nil
	}
	for first := true; ; first = false {
		// Re-check the cache on every pass but the first (whose miss the get
		// above just recorded): a woken waiter's twin, or a retrier that
		// raced ahead after a failed leader, may have cached the answer
		// between the last wait and this contention round. peek, not get —
		// this caller's miss is already counted.
		if !first {
			if res, ok := s.cache.peek(key); ok {
				return res, true, nil
			}
		}
		s.pendMu.Lock()
		ch, exists := s.pending[key]
		if !exists {
			// Leader: execute once and publish for the waiters.
			ch = make(chan struct{})
			s.pending[key] = ch
			s.pendMu.Unlock()
			res, hit, err := s.execute(ctx, q, p)
			if err == nil {
				s.cache.put(key, res)
			}
			s.pendMu.Lock()
			delete(s.pending, key)
			s.pendMu.Unlock()
			close(ch)
			return res, hit, err
		}
		s.pendMu.Unlock()
		// Waiter: a twin of this exact query is executing; wait for it
		// instead of burning an admission slot on a duplicate, then loop —
		// the next pass reads the leader's cached result or contends to
		// lead the retry if the leader failed.
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// execute admits one query through the semaphore and runs it on the engine.
func (s *Server) execute(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	defer func() {
		s.inflight.Add(-1)
		<-s.slots
	}()
	cur := s.inflight.Add(1)
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	s.admitted.Add(1)
	res, err := s.eng.Run(ctx, q, p)
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Admitted is the number of queries that executed on the engine (cache
	// hits are not admitted).
	Admitted int64
	// InFlight is the current number of executing queries.
	InFlight int64
	// PeakInFlight is the high-water mark of concurrent executing queries;
	// it can never exceed MaxConcurrent.
	PeakInFlight int64
	// CacheHits / CacheMisses are the cache counters, zero when caching is
	// disabled.
	CacheHits, CacheMisses int64
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Admitted:     s.admitted.Load(),
		InFlight:     s.inflight.Load(),
		PeakInFlight: s.peak.Load(),
	}
	if s.cache != nil {
		st.CacheHits = s.cache.hits.Load()
		st.CacheMisses = s.cache.misses.Load()
	}
	return st
}

// Key identifies one cacheable query execution: the serving system plus the
// compiled plan's fingerprint. The fingerprint canonicalizes the computation
// (operators plus the parameters they actually read), so parameterizations
// that differ only in fields the query ignores map to the same entry.
type Key struct {
	System      string
	Fingerprint string
}

// DefaultCacheEntries bounds a cache created with size 0.
const DefaultCacheEntries = 256

// Cache is a bounded shared result cache. Entries evict FIFO — the workload
// this serves (a small set of hot dashboard queries hit by many clients) has
// no use for fancier policies, and FIFO keeps eviction deterministic.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*engine.Result
	order   []Key // insertion order for FIFO eviction
	max     int

	hits, misses atomic.Int64
}

// NewCache creates a cache holding at most max results (0 means
// DefaultCacheEntries).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{entries: make(map[Key]*engine.Result, max), max: max}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) get(k Key) (*engine.Result, bool) {
	c.mu.Lock()
	res, ok := c.entries[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return res, true
	}
	c.misses.Add(1)
	return nil, false
}

// peek is get without recording a miss (a found entry still counts as a
// hit). Server.Run's post-admission re-check uses it so one executed query
// records exactly one miss.
func (c *Cache) peek(k Key) (*engine.Result, bool) {
	c.mu.Lock()
	res, ok := c.entries[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return res, true
	}
	return nil, false
}

func (c *Cache) put(k Key, res *engine.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return // an earlier put won (e.g. across servers sharing the cache)
	}
	if len(c.entries) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = res
	c.order = append(c.order, k)
}
