// Package serve is the concurrent query-serving layer over a loaded engine
// (DESIGN.md §11): the piece that turns the paper's one-query-at-a-time
// benchmark into a system that can take traffic. A Server wraps one loaded
// engine.Engine and
//
//   - admits at most MaxConcurrent queries at a time (a semaphore), so a
//     burst of clients queues instead of oversubscribing the host;
//   - splits the parallel-kernel worker budget across the admission slots,
//     so N in-flight queries at W total workers run ~W/N kernel workers
//     each instead of N·W goroutines fighting for the same cores;
//   - answers repeated hot queries from a shared result cache keyed by
//     (engine, plan fingerprint) — the "millions of users" traffic shape,
//     where most requests are the same few dashboards. The fingerprint
//     covers exactly the parameters the compiled plan reads, so two Params
//     differing only in fields irrelevant to the query (a Q4 request with a
//     different MaxAge, say) coalesce onto one entry. Cold-cache twins are
//     coalesced single-flight: a stampede of identical queries executes
//     once, and the rest read the leader's result.
//
// Admission validates parameters by compiling the plan (engine.Params
// .Validate runs at compile time), so malformed requests are rejected at the
// door instead of inside a kernel.
//
// The engine must obey the engine.Engine concurrency contract: loaded state
// read-only during Run, per-query scratch only. The single-node engines
// have since the contract was written, and the multinode virtual-cluster
// engines do since the distributed plan layer gave each query its own
// virtual cluster (DESIGN.md §13) — so a cluster configuration serves
// traffic exactly like a single-node one (genbase-bench -serve-* -nodes N).
// The sole exception is the multi-node Hadoop wrapper (shared MR-scheduler
// accounting): serial-only, not servable.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/parallel"
	"github.com/genbase/genbase/internal/plan"
)

// DefaultMaxConcurrent is the admission width when Options leaves it zero.
const DefaultMaxConcurrent = 4

// DefaultBreakerThreshold is the number of consecutive engine failures that
// opens the circuit breaker when Options leaves it zero.
const DefaultBreakerThreshold = 5

// breakerProbeEvery is the half-open policy: while the circuit is open,
// every breakerProbeEvery-th rejected request is let through as a probe; one
// probe success closes the circuit. Count-based, so breaker behavior is
// deterministic per request sequence (no recovery timers).
const breakerProbeEvery = 8

// WorkerSetter is implemented by engines whose analytics-kernel worker count
// can be pinned (all single-node engines). Server uses it to divide the
// host's worker budget across admission slots before serving starts.
type WorkerSetter interface {
	SetWorkers(n int)
}

// Options configures a Server.
type Options struct {
	// MaxConcurrent is the number of admission slots (default
	// DefaultMaxConcurrent). Queries beyond it block until a slot frees.
	MaxConcurrent int
	// WorkerBudget is the total kernel-worker budget split across slots
	// (default parallel.Default(), i.e. GENBASE_PARALLEL or NumCPU). Each
	// admitted query runs with max(1, WorkerBudget/MaxConcurrent) workers.
	WorkerBudget int
	// Cache shares a result cache across servers (e.g. one per engine over
	// the same dataset). Nil creates a private cache unless DisableCache.
	Cache *Cache
	// DisableCache turns result caching off (every query executes).
	DisableCache bool

	// RequestTimeout is the per-request deadline applied to every Run (0 =
	// none). A request that exceeds it — queueing included — fails with a
	// typed engine.ErrDeadlineExceeded.
	RequestTimeout time.Duration
	// MaxQueue bounds the requests allowed to wait for an admission slot
	// (0 = unbounded). At the bound, further requests are shed immediately
	// with a typed engine.ErrOverload instead of growing the queue — the
	// load-shedding that keeps tail latency bounded under overload.
	MaxQueue int
	// BreakerThreshold is the number of consecutive engine failures that
	// opens this server's circuit breaker (default DefaultBreakerThreshold;
	// negative disables the breaker). While open, requests fail fast with
	// engine.ErrOverload; every breakerProbeEvery-th attempt runs as a
	// half-open probe and one success closes the circuit. Client-side
	// rejections (bad params, unsupported queries, shed load) never trip it.
	BreakerThreshold int
}

// served pairs the engine generation a request executes on with its snapshot
// epoch. The pair is immutable once published; Swap installs a new one.
type served struct {
	eng   engine.Engine
	epoch uint64
}

// Server admits concurrent read-only queries over one loaded engine.
//
// Under ingest (DESIGN.md §18) the served engine advances by whole snapshot
// epochs: Swap atomically installs the engine loaded from the next
// checkpointed snapshot. Every request pins the (engine, epoch) pair at
// admission and carries the epoch in its cache key, so in-flight queries and
// cached results stay a pure function of their pinned snapshot — old-epoch
// entries keep serving old-epoch keys until they age out FIFO, rather than
// being evicted on write.
type Server struct {
	cur    atomic.Pointer[served]
	system string
	slots  chan struct{}
	perWorkers int // per-slot kernel-worker share, re-applied on Swap
	cache  *Cache // nil when caching is disabled

	// flights coalesces cold-cache twins (single-flight, see flight.go).
	flights flights

	// fps memoizes (query, params) → plan fingerprint. engine.Params is a
	// flat comparable struct, so the exact-repeat hot path (the traffic
	// shape the cache serves) skips plan compilation entirely; distinct
	// Params that compile to the same fingerprint still coalesce in the
	// result cache. A memoized entry was validated when first compiled.
	fpMu sync.Mutex
	fps  map[fpKey]string

	inflight atomic.Int64
	peak     atomic.Int64
	admitted atomic.Int64

	// Fault-tolerance serving state (DESIGN.md §14).
	timeout  time.Duration
	maxQueue int
	breaker  *breaker
	waiting  atomic.Int64 // requests blocked on the admission semaphore

	shed           atomic.Int64 // rejected: admission queue full
	breakerDenials atomic.Int64 // rejected: circuit open
	deadlined      atomic.Int64 // failed: request deadline exceeded
	engineFailures atomic.Int64 // engine Run errors (non-client)
	degraded       atomic.Int64 // completions that survived injected faults
}

// breaker is a count-based circuit breaker: consecutive engine failures open
// it, a successful half-open probe closes it. All transitions are functions
// of the request/outcome sequence — no clocks — so drills replay exactly.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	consecutive int // consecutive engine failures
	open        bool
	rejects     int // rejections since the circuit opened
}

// allow reports whether a request may reach the engine, counting rejections
// while open and letting every breakerProbeEvery-th attempt through as a
// half-open probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	b.rejects++
	return b.rejects%breakerProbeEvery == 0
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.open = false
	b.rejects = 0
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.open = true
		b.rejects = 0
	}
}

func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// New wraps a loaded engine. It pins the engine's worker count to the
// per-slot share of the budget, so it must be called before concurrent
// queries begin (SetWorkers is not synchronized — by contract it happens
// while the engine is idle).
func New(eng engine.Engine, opts Options) *Server {
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = DefaultMaxConcurrent
	}
	budget := parallel.Resolve(opts.WorkerBudget)
	per := budget / maxc
	if per < 1 {
		per = 1
	}
	if ws, ok := eng.(WorkerSetter); ok {
		ws.SetWorkers(per)
	}
	cache := opts.Cache
	if cache == nil && !opts.DisableCache {
		cache = NewCache(0)
	}
	if opts.DisableCache {
		cache = nil
	}
	s := &Server{
		system:     eng.Name(),
		slots:      make(chan struct{}, maxc),
		perWorkers: per,
		cache:      cache,
		fps:        make(map[fpKey]string),
		timeout:    opts.RequestTimeout,
		maxQueue:   opts.MaxQueue,
	}
	s.cur.Store(&served{eng: eng, epoch: 0})
	if opts.BreakerThreshold >= 0 {
		threshold := opts.BreakerThreshold
		if threshold == 0 {
			threshold = DefaultBreakerThreshold
		}
		s.breaker = &breaker{threshold: threshold}
	}
	return s
}

// fpKey memoizes fingerprints per exact parameterization.
type fpKey struct {
	q engine.QueryID
	p engine.Params
}

// maxMemoizedFingerprints bounds the memo; at the bound the map resets (the
// workload is a small set of hot parameterizations, so eviction finesse
// buys nothing).
const maxMemoizedFingerprints = 4096

// fingerprint returns the plan fingerprint for (q, p), compiling (and
// therefore validating) on first sight and answering repeats from the memo.
func (s *Server) fingerprint(q engine.QueryID, p engine.Params) (string, error) {
	k := fpKey{q, p}
	s.fpMu.Lock()
	fp, ok := s.fps[k]
	s.fpMu.Unlock()
	if ok {
		return fp, nil
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return "", err
	}
	fp = pl.Fingerprint()
	s.fpMu.Lock()
	if len(s.fps) >= maxMemoizedFingerprints {
		s.fps = make(map[fpKey]string)
	}
	s.fps[k] = fp
	s.fpMu.Unlock()
	return fp, nil
}

// Engine returns the currently served engine generation.
func (s *Server) Engine() engine.Engine { return s.cur.Load().eng }

// Epoch returns the snapshot epoch of the currently served engine.
func (s *Server) Epoch() uint64 { return s.cur.Load().epoch }

// Swap atomically installs an engine loaded from snapshot epoch and returns
// the previously served engine, which the caller must keep alive (not Close)
// until requests pinned to it drain. Swap pins the new engine's kernel-worker
// count to the same per-slot share New computed, and requires the new engine
// to serve the same system (epoch advances change data, never identity) —
// cached answers for older epochs remain valid under their epoch-carrying
// keys.
func (s *Server) Swap(eng engine.Engine, epoch uint64) engine.Engine {
	if eng.Name() != s.system {
		panic(fmt.Sprintf("serve: swap of %q into a %q server", eng.Name(), s.system))
	}
	if ws, ok := eng.(WorkerSetter); ok {
		ws.SetWorkers(s.perWorkers)
	}
	old := s.cur.Swap(&served{eng: eng, epoch: epoch})
	return old.eng
}

// Name identifies the served system (the wrapped engine's name) — the
// Runner identity Benchmark reports.
func (s *Server) Name() string { return s.system }

// MaxConcurrent returns the admission width.
func (s *Server) MaxConcurrent() int { return cap(s.slots) }

// Run executes one query, blocking for an admission slot when the server is
// at width. The bool reports whether the result came from the cache (or a
// coalesced twin's execution). Cached results are shared between callers:
// the Answer must be treated as immutable (every engine already builds
// answers from fresh allocations and nothing downstream mutates them).
//
// Admission outcomes are typed for errors.Is: engine.ErrOverload when the
// request is shed (queue full or circuit open), engine.ErrDeadlineExceeded
// when the per-request deadline (or the caller's context deadline) expires,
// engine.ErrBadParams / engine.ErrUnsupported for client-side rejections,
// and the engine's own error otherwise.
func (s *Server) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	res, hit, err := s.run(ctx, q, p)
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		s.deadlined.Add(1)
		err = fmt.Errorf("serve: request deadline expired: %w", engine.ErrDeadlineExceeded)
	}
	if err == nil && res != nil && res.Degraded {
		s.degraded.Add(1)
	}
	return res, hit, err
}

func (s *Server) run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	// Admission: resolve the plan fingerprint (compiling, and therefore
	// validating the parameters, on first sight of this parameterization).
	// Semantically identical requests share a key regardless of irrelevant
	// Params fields.
	fp, err := s.fingerprint(q, p)
	if err != nil {
		return nil, false, err
	}
	// Pin the (engine, epoch) pair once: the execution below runs on exactly
	// this generation, so the epoch-keyed cache entry it may publish is
	// correct even if Swap lands mid-flight.
	pin := s.cur.Load()
	if s.cache == nil {
		return s.execute(ctx, pin.eng, q, p)
	}
	key := Key{System: s.system, Fingerprint: fp, Epoch: pin.epoch}
	if res, ok := s.cache.get(key); ok {
		return res, true, nil
	}
	return s.flights.run(ctx, s.cache, key, func() (*engine.Result, error) {
		res, _, err := s.execute(ctx, pin.eng, q, p)
		if err == nil {
			s.cache.put(key, res)
		}
		return res, err
	})
}

// execute admits one query through the semaphore and runs it on the pinned
// engine generation, applying the circuit breaker and the queue-depth load
// shedder first.
func (s *Server) execute(ctx context.Context, eng engine.Engine, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	if s.breaker != nil && !s.breaker.allow() {
		s.breakerDenials.Add(1)
		return nil, false, fmt.Errorf("serve: circuit open for %s: %w", s.system, engine.ErrOverload)
	}
	select {
	case s.slots <- struct{}{}: // free slot, no queueing
	default:
		if s.maxQueue > 0 && s.waiting.Load() >= int64(s.maxQueue) {
			s.shed.Add(1)
			return nil, false, fmt.Errorf("serve: admission queue full (%d waiting): %w",
				s.maxQueue, engine.ErrOverload)
		}
		s.waiting.Add(1)
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
		case <-ctx.Done():
			s.waiting.Add(-1)
			return nil, false, ctx.Err()
		}
	}
	defer func() {
		s.inflight.Add(-1)
		<-s.slots
	}()
	cur := s.inflight.Add(1)
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	s.admitted.Add(1)
	res, err := eng.Run(ctx, q, p)
	s.noteOutcome(err)
	if err != nil {
		return nil, false, err
	}
	return res, false, nil
}

// noteOutcome feeds an engine result into the circuit breaker and failure
// stats. Client-side rejections and cancellations say nothing about the
// engine's health, so they neither trip nor reset the breaker.
func (s *Server) noteOutcome(err error) {
	if err == nil {
		if s.breaker != nil {
			s.breaker.onSuccess()
		}
		return
	}
	if errors.Is(err, engine.ErrBadParams) || errors.Is(err, engine.ErrUnsupported) ||
		errors.Is(err, engine.ErrOverload) || errors.Is(err, context.Canceled) {
		return
	}
	s.engineFailures.Add(1)
	if s.breaker != nil {
		s.breaker.onFailure()
	}
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Admitted is the number of queries that executed on the engine (cache
	// hits are not admitted).
	Admitted int64
	// InFlight is the current number of executing queries.
	InFlight int64
	// PeakInFlight is the high-water mark of concurrent executing queries;
	// it can never exceed MaxConcurrent.
	PeakInFlight int64
	// CacheHits / CacheMisses are the cache counters, zero when caching is
	// disabled.
	CacheHits, CacheMisses int64

	// Shed counts requests rejected because the admission queue was full,
	// BreakerDenials those rejected while the circuit was open — both typed
	// engine.ErrOverload at the caller.
	Shed, BreakerDenials int64
	// Deadlined counts requests failed with engine.ErrDeadlineExceeded.
	Deadlined int64
	// EngineFailures counts engine Run errors other than client-side
	// rejections and cancellations (the outcomes that feed the breaker).
	EngineFailures int64
	// Degraded counts completions whose run survived injected faults
	// (failover, retry, or hedge fired; the answer is still bit-identical).
	Degraded int64
	// BreakerOpen reports whether the circuit is currently open.
	BreakerOpen bool
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Admitted:       s.admitted.Load(),
		InFlight:       s.inflight.Load(),
		PeakInFlight:   s.peak.Load(),
		Shed:           s.shed.Load(),
		BreakerDenials: s.breakerDenials.Load(),
		Deadlined:      s.deadlined.Load(),
		EngineFailures: s.engineFailures.Load(),
		Degraded:       s.degraded.Load(),
	}
	if s.breaker != nil {
		st.BreakerOpen = s.breaker.isOpen()
	}
	if s.cache != nil {
		st.CacheHits = s.cache.hits.Load()
		st.CacheMisses = s.cache.misses.Load()
	}
	return st
}

// Key identifies one cacheable query execution: the serving system, the
// compiled plan's fingerprint, and the snapshot epoch the answer was computed
// against. The fingerprint canonicalizes the computation (operators plus the
// parameters they actually read), so parameterizations that differ only in
// fields the query ignores map to the same entry; the epoch keeps answers
// from different snapshots apart without any eviction — ingest advances the
// epoch and old entries simply stop being asked for.
type Key struct {
	System      string
	Fingerprint string
	Epoch       uint64
}

// DefaultCacheEntries bounds a cache created with size 0.
const DefaultCacheEntries = 256

// Cache is a bounded shared result cache. Entries evict FIFO — the workload
// this serves (a small set of hot dashboard queries hit by many clients) has
// no use for fancier policies, and FIFO keeps eviction deterministic.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*engine.Result
	order   []Key // insertion order for FIFO eviction
	max     int

	hits, misses atomic.Int64
}

// NewCache creates a cache holding at most max results (0 means
// DefaultCacheEntries).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{entries: make(map[Key]*engine.Result, max), max: max}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) get(k Key) (*engine.Result, bool) {
	c.mu.Lock()
	res, ok := c.entries[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return res, true
	}
	c.misses.Add(1)
	return nil, false
}

// peek is get without recording a miss (a found entry still counts as a
// hit). Server.Run's post-admission re-check uses it so one executed query
// records exactly one miss.
func (c *Cache) peek(k Key) (*engine.Result, bool) {
	c.mu.Lock()
	res, ok := c.entries[k]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return res, true
	}
	return nil, false
}

func (c *Cache) put(k Key, res *engine.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return // an earlier put won (e.g. across servers sharing the cache)
	}
	if len(c.entries) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = res
	c.order = append(c.order, k)
}
