package serve

import (
	"math"
	"math/bits"
	"time"
)

// Histogram is a fixed-bucket latency histogram: nanosecond values below 16
// are exact, and above that each power-of-two octave splits into 16
// geometric sub-buckets, bounding the relative error of any reported
// quantile to 1/16 (~6%). Recording is one index computation and one
// counter increment — no per-request slice append, no end-of-window sort —
// so the p99.9 of a million-request window costs the same as the p50 of a
// hundred. Buckets cover up to ~2⁶² ns (≈146 years); larger values clamp
// into the last bucket.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
}

// histBuckets spans values up to 2^62 ns: 16 exact buckets plus 16
// sub-buckets for each octave 4..62.
const histBuckets = 16 + (62-4+1)*16

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[histIdx(d)]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Merge folds other into h (per-worker histograms combine lock-free at the
// end of a run).
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
}

// histIdx maps a duration to its bucket.
func histIdx(d time.Duration) int {
	v := d.Nanoseconds()
	if v < 16 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // v ∈ [2^e, 2^(e+1)), e ≥ 4
	idx := 16 + (e-4)*16 + int((uint64(v)>>(e-4))&15)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketHigh is the bucket's inclusive upper edge — quantiles report it so
// the estimate never understates the tail.
func bucketHigh(idx int) time.Duration {
	if idx < 16 {
		return time.Duration(idx)
	}
	e := 4 + (idx-16)/16
	sub := int64((idx - 16) % 16)
	lo := int64(1)<<e + sub<<(e-4)
	return time.Duration(lo + int64(1)<<(e-4) - 1)
}

// Quantile is one reported latency percentile. Insufficient marks a
// percentile the sample count cannot resolve — the nearest-rank p-quantile
// of fewer than ceil(1/(1−p)) samples is just the maximum, so reporting a
// number would silently overstate what was measured (p99 needs ≥100
// samples, p99.9 needs ≥1000). Value is 0 when Insufficient; consumers
// must surface the marker, not the zero.
type Quantile struct {
	Value        time.Duration
	Insufficient bool
}

// MinSamplesFor returns the smallest sample count whose nearest-rank
// p-quantile is distinguishable from the maximum: ceil(1/(1−p)).
func MinSamplesFor(p float64) int64 {
	if p >= 1 {
		return math.MaxInt64
	}
	return int64(math.Ceil(1 / (1 - p)))
}

// Quantile returns the nearest-rank p-quantile (ceil(p·n)-th smallest) of
// the recorded distribution, or the Insufficient marker when fewer than
// MinSamplesFor(p) observations were recorded.
func (h *Histogram) Quantile(p float64) Quantile {
	if h.total < MinSamplesFor(p) {
		return Quantile{Insufficient: true}
	}
	rank := int64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return Quantile{Value: bucketHigh(i)}
		}
	}
	return Quantile{Value: bucketHigh(histBuckets - 1)}
}
