package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/core"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/multinode"
)

// stubEngine is a controllable engine for admission/cache tests.
type stubEngine struct {
	name    string
	delay   time.Duration
	runs    atomic.Int64
	active  atomic.Int64
	peak    atomic.Int64
	workers atomic.Int64 // last SetWorkers value
}

func (s *stubEngine) Name() string                 { return s.name }
func (s *stubEngine) Load(*datagen.Dataset) error  { return nil }
func (s *stubEngine) Supports(engine.QueryID) bool { return true }
func (s *stubEngine) Close() error                 { return nil }
func (s *stubEngine) SetWorkers(n int)             { s.workers.Store(int64(n)) }

func (s *stubEngine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	cur := s.active.Add(1)
	defer s.active.Add(-1)
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.runs.Add(1)
	return &engine.Result{Query: q, Answer: &engine.SVDAnswer{SingularValues: []float64{float64(q)}}}, nil
}

func TestAdmissionNeverExceedsWidth(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: 5 * time.Millisecond}
	srv := New(eng, Options{MaxConcurrent: 2, DisableCache: true})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct params per call so nothing could be deduplicated.
			p := engine.DefaultParams()
			p.Seed = uint64(i)
			if _, _, err := srv.Run(context.Background(), engine.Q4SVD, p); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := eng.peak.Load(); got > 2 {
		t.Fatalf("engine saw %d concurrent queries, admission width is 2", got)
	}
	st := srv.Stats()
	if st.PeakInFlight > 2 {
		t.Fatalf("server reports peak in-flight %d > width 2", st.PeakInFlight)
	}
	if st.Admitted != 16 {
		t.Fatalf("admitted %d of 16", st.Admitted)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight %d after all queries returned", st.InFlight)
	}
}

func TestCacheServesRepeatedQueries(t *testing.T) {
	eng := &stubEngine{name: "stub"}
	srv := New(eng, Options{MaxConcurrent: 2})
	p := engine.DefaultParams()
	var first *engine.Result
	for i := 0; i < 10; i++ {
		res, hit, err := srv.Run(context.Background(), engine.Q2Covariance, p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if hit {
				t.Fatal("first query reported a cache hit")
			}
			first = res
		} else {
			if !hit {
				t.Fatalf("query %d missed the cache", i)
			}
			if res != first {
				t.Fatalf("cache returned a different result pointer")
			}
		}
	}
	if got := eng.runs.Load(); got != 1 {
		t.Fatalf("engine executed %d times, want 1", got)
	}
	st := srv.Stats()
	if st.CacheHits != 9 {
		t.Fatalf("cache hits %d, want 9", st.CacheHits)
	}
	// Different params miss.
	p2 := p
	p2.DiseaseID++
	if _, hit, err := srv.Run(context.Background(), engine.Q2Covariance, p2); err != nil || hit {
		t.Fatalf("changed params: hit=%v err=%v", hit, err)
	}
	if got := eng.runs.Load(); got != 2 {
		t.Fatalf("engine executed %d times after param change, want 2", got)
	}
	// Admitted counts engine executions only, and each executed query
	// records exactly one miss (the post-admission re-check must not
	// double-count).
	st = srv.Stats()
	if st.Admitted != 2 {
		t.Fatalf("admitted %d, want 2 (cache hits are not admitted)", st.Admitted)
	}
	if st.CacheMisses != 2 {
		t.Fatalf("cache misses %d, want 2", st.CacheMisses)
	}
}

// A cold-cache stampede of identical queries must coalesce onto one engine
// execution even when admission slots are free for all of them.
func TestColdCacheStampedeExecutesOnce(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: 20 * time.Millisecond}
	srv := New(eng, Options{MaxConcurrent: 8})
	p := engine.DefaultParams()
	const twins = 8
	results := make([]*engine.Result, twins)
	var wg sync.WaitGroup
	for i := 0; i < twins; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := srv.Run(context.Background(), engine.Q4SVD, p)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if got := eng.runs.Load(); got != 1 {
		t.Fatalf("stampede of %d identical queries executed %d times, want 1", twins, got)
	}
	for i := 1; i < twins; i++ {
		if results[i] != results[0] {
			t.Fatalf("twin %d got a different result pointer", i)
		}
	}
	if st := srv.Stats(); st.Admitted != 1 {
		t.Fatalf("admitted %d, want 1", st.Admitted)
	}
}

// The cache key is the plan fingerprint, which covers exactly the parameters
// the compiled query reads. Two Params differing only in fields irrelevant
// to the query (MaxAge, SampleFrac, DiseaseID for Q4) must hit the same
// entry; a change to a field the query does read (SVDK) must miss.
func TestCacheKeyIgnoresIrrelevantParams(t *testing.T) {
	eng := &stubEngine{name: "stub"}
	srv := New(eng, Options{MaxConcurrent: 2})
	p := engine.DefaultParams()
	first, hit, err := srv.Run(context.Background(), engine.Q4SVD, p)
	if err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v", hit, err)
	}
	// Irrelevant fields changed: Q4's plan never reads them.
	p2 := p
	p2.MaxAge += 25
	p2.SampleFrac = 0.5
	p2.DiseaseID++
	p2.Gender = 'F'
	res, hit, err := srv.Run(context.Background(), engine.Q4SVD, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || res != first {
		t.Fatalf("Q4 with changed irrelevant params missed the cache (hit=%v)", hit)
	}
	if got := eng.runs.Load(); got != 1 {
		t.Fatalf("engine executed %d times, want 1", got)
	}
	// A parameter Q4 does read misses.
	p3 := p
	p3.SVDK++
	if _, hit, err := srv.Run(context.Background(), engine.Q4SVD, p3); err != nil || hit {
		t.Fatalf("changed SVDK: hit=%v err=%v", hit, err)
	}
	if got := eng.runs.Load(); got != 2 {
		t.Fatalf("engine executed %d times after SVDK change, want 2", got)
	}
}

// Admission rejects out-of-range parameters by compiling the plan — the
// engine must never see the request, with or without a cache.
func TestAdmissionRejectsBadParams(t *testing.T) {
	for _, disableCache := range []bool{false, true} {
		eng := &stubEngine{name: "stub"}
		srv := New(eng, Options{MaxConcurrent: 2, DisableCache: disableCache})
		p := engine.DefaultParams()
		p.SVDK = 0
		if _, _, err := srv.Run(context.Background(), engine.Q4SVD, p); !errors.Is(err, engine.ErrBadParams) {
			t.Fatalf("cache=%v: want ErrBadParams, got %v", !disableCache, err)
		}
		if got := eng.runs.Load(); got != 0 {
			t.Fatalf("cache=%v: engine executed %d times for a rejected request", !disableCache, got)
		}
	}
}

func TestWorkerBudgetSplitAcrossSlots(t *testing.T) {
	for _, tc := range []struct {
		budget, slots, want int
	}{
		{budget: 8, slots: 4, want: 2},
		{budget: 3, slots: 4, want: 1}, // never below one worker
		{budget: 9, slots: 2, want: 4},
	} {
		eng := &stubEngine{name: "stub"}
		New(eng, Options{MaxConcurrent: tc.slots, WorkerBudget: tc.budget})
		if got := eng.workers.Load(); got != int64(tc.want) {
			t.Errorf("budget %d over %d slots: SetWorkers(%d), want %d", tc.budget, tc.slots, got, tc.want)
		}
	}
}

func TestCacheEvictsFIFO(t *testing.T) {
	c := NewCache(2)
	mk := func(i int) (Key, *engine.Result) {
		return Key{System: "s", Fingerprint: fmt.Sprintf("q1|fp%d", i)},
			&engine.Result{Query: engine.Q1Regression}
	}
	k1, r1 := mk(1)
	k2, r2 := mk(2)
	k3, r3 := mk(3)
	c.put(k1, r1)
	c.put(k2, r2)
	c.put(k3, r3) // evicts k1
	if _, ok := c.get(k1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.get(k2); !ok {
		t.Fatal("second entry evicted early")
	}
	if _, ok := c.get(k3); !ok {
		t.Fatal("newest entry missing")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, max 2", c.Len())
	}
}

func TestBenchmarkDriverCountsAndPercentiles(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: time.Millisecond}
	srv := New(eng, Options{MaxConcurrent: 4, DisableCache: true})
	mix := []Request{{Query: engine.Q1Regression, Params: engine.DefaultParams()}}
	res, err := Benchmark(context.Background(), srv, mix, BenchOptions{
		Clients: 4, Duration: 200 * time.Millisecond, Rate: 2000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.Offered < res.Queries || res.OfferedQPS <= 0 {
		t.Fatalf("offered %d (%.0f/s) below completed %d", res.Offered, res.OfferedQPS, res.Queries)
	}
	if res.P50.Insufficient || res.P50.Value <= 0 {
		t.Fatalf("p50 unresolved: %+v", res.P50)
	}
	if !res.P99.Insufficient && res.P99.Value < res.P50.Value {
		t.Fatalf("bad percentiles: p50=%v p99=%v", res.P50, res.P99)
	}
	// ~400 completions cannot resolve a p99.9: the typed marker must be set
	// instead of silently reporting the max.
	if res.Queries < MinSamplesFor(0.999) && !res.P999.Insufficient {
		t.Fatalf("p99.9 of %d samples reported as %v, want the insufficient marker", res.Queries, res.P999.Value)
	}
	if res.PeakInFlight > 4 {
		t.Fatalf("peak in-flight %d > width 4", res.PeakInFlight)
	}
}

// The arrival process is open-loop: when the workers cannot keep up, the
// generator keeps its schedule and sheds at the bounded queue instead of
// slowing down to the system's pace.
func TestBenchmarkOpenLoopDropsAtBoundedQueue(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: 20 * time.Millisecond}
	srv := New(eng, Options{MaxConcurrent: 1, DisableCache: true})
	mix := []Request{{Query: engine.Q1Regression, Params: engine.DefaultParams()}}
	res, err := Benchmark(context.Background(), srv, mix, BenchOptions{
		Clients: 1, Duration: 200 * time.Millisecond, Rate: 2000, Queue: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Offered ~400 arrivals against a worker that completes ~10: the rest
	// must surface as drops, not as a stretched schedule.
	if res.Dropped == 0 {
		t.Fatalf("overloaded open loop recorded no drops: %+v", res)
	}
	if res.Offered < 4*res.Queries {
		t.Fatalf("offered %d barely above completed %d — the loop closed", res.Offered, res.Queries)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.99, 990 * time.Millisecond}, {0.999, 999 * time.Millisecond}} {
		q := h.Quantile(tc.p)
		if q.Insufficient {
			t.Fatalf("p%g of 1000 samples marked insufficient", tc.p*100)
		}
		// Bucket edges bound the relative error to 1/16.
		if q.Value < tc.want || float64(q.Value) > float64(tc.want)*(1+1.0/16) {
			t.Errorf("p%g = %v, want within [%v, %v+6.25%%]", tc.p*100, q.Value, tc.want, tc.want)
		}
	}
}

func TestHistogramInsufficientSamples(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 999; i++ {
		h.Record(time.Millisecond)
	}
	if q := h.Quantile(0.999); !q.Insufficient {
		t.Fatalf("p99.9 of 999 samples = %v, want the insufficient marker", q.Value)
	}
	if q := h.Quantile(0.99); q.Insufficient {
		t.Fatal("p99 of 999 samples marked insufficient")
	}
	empty := &Histogram{}
	if q := empty.Quantile(0.5); !q.Insufficient {
		t.Fatalf("p50 of an empty histogram = %v, want the insufficient marker", q.Value)
	}
}

func TestHistogramBucketsExactAndMonotone(t *testing.T) {
	// Sub-16ns values are exact; above that the bucket index is monotone and
	// the reported edge never understates the recorded value.
	last := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := histIdx(time.Duration(v))
		if idx < last {
			t.Fatalf("bucket index not monotone at %d: %d < %d", v, idx, last)
		}
		last = idx
		if hi := bucketHigh(idx); int64(hi) < v && idx < histBuckets-1 {
			t.Errorf("bucket edge %v below recorded value %d", hi, v)
		}
	}
}

// The serve acceptance contract (ISSUE 3): N concurrent queries through the
// serving layer produce answers bitwise identical to a serial run, for every
// single-node engine and every query it supports. reflect.DeepEqual compares
// the answer structs' float64 payloads exactly — no tolerance — so any
// shared-state corruption (scratch reuse, pool races, pivot aliasing) that
// flips even one bit fails here. Run with -race this doubles as the data-race
// stress test for the whole storage→engine→kernel path.
func TestConcurrentAnswersBitwiseIdenticalToSerial(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7})
	params := engine.DefaultParams()
	queries := engine.AllQueries()

	for _, cfg := range core.SingleNodeConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			eng := cfg.New(1, t.TempDir())
			defer eng.Close()
			if err := eng.Load(ds); err != nil {
				t.Fatal(err)
			}

			// Serial ground truth, straight on the engine.
			serial := make(map[engine.QueryID]any)
			var supported []engine.QueryID
			for _, q := range queries {
				if !eng.Supports(q) {
					continue
				}
				res, err := eng.Run(context.Background(), q, params)
				if err != nil {
					t.Fatalf("serial %s: %v", q, err)
				}
				serial[q] = res.Answer
				supported = append(supported, q)
			}

			// Concurrent: C clients each run the full supported list through
			// the serving layer, cache off so every run truly executes.
			const clients = 4
			srv := New(eng, Options{MaxConcurrent: clients, DisableCache: true})
			errCh := make(chan error, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := range supported {
						// Stagger starting points so different queries overlap.
						q := supported[(i+c)%len(supported)]
						res, _, err := srv.Run(context.Background(), q, params)
						if err != nil {
							errCh <- fmt.Errorf("client %d %s: %w", c, q, err)
							return
						}
						if !reflect.DeepEqual(res.Answer, serial[q]) {
							errCh <- fmt.Errorf("client %d: %s answer diverges from serial run", c, q)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
		})
	}
}

// TestDistServeConcurrentMatchesSerial extends the serve acceptance contract
// to the cluster tier (ISSUE 5): parallel clients against one multinode
// Engine through the serving layer produce answers bitwise identical to a
// serial run, for every virtual-cluster configuration and every scenario.
// Each query executes on its own virtual cluster, so the simulated clocks
// are query-local; with -race this doubles as the data-race stress test for
// the shard→distributed-kernel path. (Concurrent queries time-share the
// host's cores, which can perturb the measured — hence virtual — durations;
// the contract is about answers, which must not move by a bit.)
func TestDistServeConcurrentMatchesSerial(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7})
	params := engine.DefaultParams()

	for _, kind := range multinode.AllKinds() {
		kind := kind
		t.Run(kind.String()+"@2n", func(t *testing.T) {
			eng := multinode.New(kind, 2)
			defer eng.Close()
			if err := eng.Load(ds); err != nil {
				t.Fatal(err)
			}

			// Serial ground truth, straight on the engine.
			serial := make(map[engine.QueryID]any)
			var supported []engine.QueryID
			for _, q := range engine.AllScenarios() {
				if !eng.Supports(q) {
					continue
				}
				res, err := eng.Run(context.Background(), q, params)
				if err != nil {
					t.Fatalf("serial %s: %v", q, err)
				}
				serial[q] = res.Answer
				supported = append(supported, q)
			}

			const clients = 4
			srv := New(eng, Options{MaxConcurrent: clients, DisableCache: true})
			errCh := make(chan error, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := range supported {
						q := supported[(i+c)%len(supported)]
						res, _, err := srv.Run(context.Background(), q, params)
						if err != nil {
							errCh <- fmt.Errorf("client %d %s: %w", c, q, err)
							return
						}
						if !reflect.DeepEqual(res.Answer, serial[q]) {
							errCh <- fmt.Errorf("client %d: %s answer diverges from serial run", c, q)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
		})
	}
}

// TestDistServeCachesByPlanFingerprint proves the cluster tier plugs into
// the plan-fingerprint result cache like any single-node engine: repeated
// hot queries are answered without re-execution, and parameterizations
// differing only in fields the query ignores coalesce onto one entry.
func TestDistServeCachesByPlanFingerprint(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.4, Seed: 7})
	eng := multinode.New(multinode.PBDR, 2)
	defer eng.Close()
	if err := eng.Load(ds); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{MaxConcurrent: 2})
	p := engine.DefaultParams()
	res1, hit, err := srv.Run(context.Background(), engine.Q1Regression, p)
	if err != nil || hit {
		t.Fatalf("first run: hit=%v err=%v", hit, err)
	}
	// Same query, different irrelevant field: must coalesce to the cached
	// plan fingerprint.
	p2 := p
	p2.MaxAge = 77
	res2, hit, err := srv.Run(context.Background(), engine.Q1Regression, p2)
	if err != nil || !hit {
		t.Fatalf("coalesced run: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(res1.Answer, res2.Answer) {
		t.Fatal("cached answer diverges")
	}
	if st := srv.Stats(); st.Admitted != 1 {
		t.Fatalf("expected one admission, got %d", st.Admitted)
	}
}
