package serve

// Fault-tolerance tests for the serving layer (DESIGN.md §14): per-request
// deadlines mapping to the typed engine.ErrDeadlineExceeded, queue-depth
// load shedding, the count-based circuit breaker's open → probe → close
// cycle, and the benchmark window deadline interrupting in-flight queries.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/genbase/genbase/internal/engine"
)

// faultyEngine is a stubEngine whose Run fails while fail is set — the
// controllable unhealthy backend for breaker tests.
type faultyEngine struct {
	stubEngine
	fail atomic.Bool
}

var errEngineDown = errors.New("engine down")

func (f *faultyEngine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if f.fail.Load() {
		return nil, errEngineDown
	}
	return f.stubEngine.Run(ctx, q, p)
}

func TestFaultServeRequestDeadlineTyped(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: 200 * time.Millisecond}
	srv := New(eng, Options{MaxConcurrent: 1, DisableCache: true, RequestTimeout: 5 * time.Millisecond})
	_, _, err := srv.Run(context.Background(), engine.Q1Regression, engine.DefaultParams())
	if !errors.Is(err, engine.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if st := srv.Stats(); st.Deadlined != 1 {
		t.Fatalf("Deadlined = %d, want 1", st.Deadlined)
	}
}

func TestFaultServeQueueDepthSheds(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: time.Second}
	srv := New(eng, Options{MaxConcurrent: 1, MaxQueue: 1, DisableCache: true})
	p := engine.DefaultParams()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); srv.Run(ctx, engine.Q1Regression, p) }() // occupies the slot
	for eng.active.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() { defer wg.Done(); srv.Run(ctx, engine.Q2Covariance, p) }() // fills the queue
	for srv.waiting.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue at capacity: the next request is shed with the typed overload
	// error instead of queueing without bound.
	_, _, err := srv.Run(ctx, engine.Q5Statistics, p)
	if !errors.Is(err, engine.ErrOverload) {
		t.Fatalf("got %v, want ErrOverload from the full admission queue", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
	cancel() // unwind the occupant and the queued request
	wg.Wait()
}

func TestFaultServeBreakerOpensProbesCloses(t *testing.T) {
	eng := &faultyEngine{stubEngine: stubEngine{name: "stub"}}
	eng.fail.Store(true)
	srv := New(eng, Options{MaxConcurrent: 1, DisableCache: true, BreakerThreshold: 2})
	p := engine.DefaultParams()
	ctx := context.Background()

	// Two consecutive engine failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, _, err := srv.Run(ctx, engine.Q1Regression, p); !errors.Is(err, errEngineDown) {
			t.Fatalf("failure %d: got %v, want the engine error", i, err)
		}
	}
	if st := srv.Stats(); !st.BreakerOpen || st.EngineFailures != 2 {
		t.Fatalf("after threshold failures: open=%v failures=%d, want open with 2", st.BreakerOpen, st.EngineFailures)
	}

	// The engine recovers, but the open circuit keeps denying requests with
	// the typed overload error until the deterministic half-open probe (every
	// breakerProbeEvery-th attempt) reaches the engine and succeeds.
	eng.fail.Store(false)
	denials := 0
	closedAfter := -1
	for i := 1; i <= breakerProbeEvery; i++ {
		_, _, err := srv.Run(ctx, engine.Q1Regression, p)
		switch {
		case errors.Is(err, engine.ErrOverload):
			denials++
		case err == nil:
			closedAfter = i
		default:
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if closedAfter != breakerProbeEvery {
		t.Fatalf("probe succeeded at attempt %d, want exactly attempt %d", closedAfter, breakerProbeEvery)
	}
	if denials != breakerProbeEvery-1 {
		t.Fatalf("%d denials before the probe, want %d", denials, breakerProbeEvery-1)
	}
	st := srv.Stats()
	if st.BreakerOpen {
		t.Fatal("breaker still open after a successful probe")
	}
	if st.BreakerDenials != int64(breakerProbeEvery-1) {
		t.Fatalf("BreakerDenials = %d, want %d", st.BreakerDenials, breakerProbeEvery-1)
	}
	// Closed again: requests flow normally.
	if _, _, err := srv.Run(ctx, engine.Q1Regression, p); err != nil {
		t.Fatalf("after close: %v", err)
	}
}

func TestFaultServeBreakerDisabled(t *testing.T) {
	eng := &faultyEngine{stubEngine: stubEngine{name: "stub"}}
	eng.fail.Store(true)
	srv := New(eng, Options{MaxConcurrent: 1, DisableCache: true, BreakerThreshold: -1})
	p := engine.DefaultParams()
	for i := 0; i < 2*DefaultBreakerThreshold; i++ {
		if _, _, err := srv.Run(context.Background(), engine.Q1Regression, p); !errors.Is(err, errEngineDown) {
			t.Fatalf("run %d: got %v, want the raw engine error (breaker disabled)", i, err)
		}
	}
	if st := srv.Stats(); st.BreakerOpen || st.BreakerDenials != 0 {
		t.Fatalf("disabled breaker tripped: %+v", st)
	}
}

// The benchmark window deadline rides the context, so a query still running
// when the window closes is interrupted at its next operator boundary
// instead of stretching the measurement.
func TestFaultBenchmarkWindowDeadline(t *testing.T) {
	eng := &stubEngine{name: "stub", delay: 10 * time.Second}
	srv := New(eng, Options{MaxConcurrent: 1, DisableCache: true})
	mix := []Request{{Query: engine.Q1Regression, Params: engine.DefaultParams()}}
	start := time.Now()
	res, err := Benchmark(context.Background(), srv, mix, BenchOptions{Clients: 1, Duration: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("benchmark ran %v, the window deadline never interrupted the in-flight query", elapsed)
	}
	if res.Queries != 0 {
		t.Fatalf("%d queries completed inside a window shorter than the query", res.Queries)
	}
}
