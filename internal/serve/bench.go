package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/genbase/genbase/internal/engine"
)

// Request is one entry of a benchmark query mix.
type Request struct {
	Query  engine.QueryID
	Params engine.Params
}

// BenchOptions shapes one throughput measurement.
type BenchOptions struct {
	// Clients is the number of concurrent closed-loop clients (min 1).
	Clients int
	// Duration is the measurement window (default 1s).
	Duration time.Duration
	// Think is each client's idle time between queries — the "user reads the
	// dashboard" gap. Zero means a tight closed loop, which saturates one
	// core with a single client and therefore cannot show client scaling on
	// small hosts; a small think time measures what the serving layer is
	// for: overlapping many mostly-idle clients over shared compute.
	Think time.Duration
}

// BenchResult is one (server, client-count) throughput measurement.
type BenchResult struct {
	System   string
	Clients  int
	Duration time.Duration // measured wall clock, not the requested duration
	Queries  int64         // completed queries (cache hits included)
	QPS      float64
	P50, P99 time.Duration

	CacheHits    int64
	PeakInFlight int64

	// Shed counts requests rejected with engine.ErrOverload (queue full or
	// circuit open), Deadlined those failed with engine.ErrDeadlineExceeded
	// — both non-fatal, excluded from Queries and the latency distribution.
	Shed, Deadlined int64
	// Degraded counts completed queries whose run survived injected faults
	// (the answers are still bit-identical; see DESIGN.md §14).
	Degraded int64
}

// Benchmark drives a server with closed-loop clients for roughly
// opts.Duration: each client issues its next query opts.Think after the
// previous one returns, walking the mix round-robin from a per-client offset
// (so clients spread across the mix instead of stampeding one query). It
// reports throughput and the client-observed latency distribution —
// queueing delay in the admission semaphore counts, exactly what a caller
// of a loaded system experiences; think time does not.
func Benchmark(ctx context.Context, srv *Server, mix []Request, opts BenchOptions) (BenchResult, error) {
	if len(mix) == 0 {
		return BenchResult{}, fmt.Errorf("serve: empty query mix")
	}
	clients := opts.Clients
	if clients < 1 {
		clients = 1
	}
	duration := opts.Duration
	if duration <= 0 {
		duration = time.Second
	}
	deadline := time.Now().Add(duration)
	// The window deadline is carried by the context, so a query still running
	// when the window closes is interrupted at its next operator boundary
	// instead of overrunning the measurement (the old between-requests check
	// let one slow query stretch the window arbitrarily).
	bctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	shed := make([]int64, clients)
	deadlined := make([]int64, clients)
	degraded := make([]int64, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			i := c % len(mix)
			for time.Now().Before(deadline) {
				if bctx.Err() != nil {
					return
				}
				req := mix[i]
				i = (i + 1) % len(mix)
				qStart := time.Now()
				res, _, err := srv.Run(bctx, req.Query, req.Params)
				if err != nil {
					switch {
					case bctx.Err() != nil:
						return // window closed or benchmark cancelled mid-query
					case errors.Is(err, engine.ErrOverload):
						shed[c]++ // shed load is an outcome, not a failure
						continue
					case errors.Is(err, engine.ErrDeadlineExceeded):
						deadlined[c]++ // per-request timeout: counted, not fatal
						continue
					default:
						errs[c] = err
						cancel()
						return
					}
				}
				if res != nil && res.Degraded {
					degraded[c]++
				}
				lats[c] = append(lats[c], time.Since(qStart))
				if opts.Think > 0 {
					select {
					case <-time.After(opts.Think):
					case <-bctx.Done():
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return BenchResult{}, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	st := srv.Stats()
	res := BenchResult{
		System:       srv.Engine().Name(),
		Clients:      clients,
		Duration:     elapsed,
		Queries:      int64(len(all)),
		CacheHits:    st.CacheHits,
		PeakInFlight: st.PeakInFlight,
	}
	for c := 0; c < clients; c++ {
		res.Shed += shed[c]
		res.Deadlined += deadlined[c]
		res.Degraded += degraded[c]
	}
	if len(all) > 0 {
		res.QPS = float64(len(all)) / elapsed.Seconds()
		res.P50 = percentile(all, 0.50)
		res.P99 = percentile(all, 0.99)
	}
	return res, nil
}

// percentile returns the p-quantile of sorted latencies by conventional
// nearest-rank (ceil(p·n)−1): p50 of an odd count is the true median, and
// p99 of a sample smaller than 100 is the true maximum rather than a value
// short of the tail.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
