package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/genbase/genbase/internal/engine"
)

// Runner is anything Benchmark can drive: a single-engine Server or the
// fleet Router. Run's bool reports a cache hit; Stats snapshots the
// admission-layer counters; Name labels the benchmark row.
type Runner interface {
	Name() string
	Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error)
	Stats() Stats
}

// Request is one entry of a benchmark query mix.
type Request struct {
	Query  engine.QueryID
	Params engine.Params
}

// BenchOptions shapes one open-loop throughput measurement.
type BenchOptions struct {
	// Clients is the worker pool draining the arrival queue (min 1) — the
	// concurrency the served system is offered, matching the server's
	// admission width in the sweeps.
	Clients int
	// Duration is the measurement window (default 1s).
	Duration time.Duration
	// Rate is the offered load in arrivals per second (default 200). The
	// arrival process is Poisson: inter-arrival gaps are exponential, drawn
	// from a seeded generator, so the offered schedule is independent of how
	// fast the system answers (open loop). A closed loop would wait for each
	// answer before offering the next query, hiding queueing delay behind
	// the slow requests themselves — the coordinated-omission trap.
	Rate float64
	// Queue bounds the arrival queue (default 2×Clients). An arrival that
	// finds the queue full is dropped and counted, the way a load balancer
	// sheds when a backlog passes its limit; latency is never recorded for
	// dropped arrivals, but they keep the offered schedule on time.
	Queue int
	// Seed drives the arrival process (default 1). Fixed seed = identical
	// offered schedule across systems under comparison.
	Seed uint64
}

// BenchResult is one (server, client-count) open-loop measurement.
type BenchResult struct {
	System   string
	Clients  int
	Duration time.Duration // measured wall clock, not the requested duration
	Queries  int64         // completed queries (cache hits included)
	QPS      float64       // completed throughput
	Offered  int64         // arrivals generated (dropped included)
	// OfferedQPS is the realized arrival rate — compare against QPS to see
	// whether the system kept up with the offered load.
	OfferedQPS float64
	// Dropped counts arrivals rejected at the full client-side queue.
	Dropped int64

	// Latency is measured from each request's scheduled arrival time to its
	// completion, so time spent waiting in the arrival queue and in the
	// server's admission semaphore both count — what a caller of a loaded
	// system experiences. P999 is the p99.9 SLO quantile; small windows
	// report it Insufficient rather than passing off the max as a tail.
	P50, P99, P999 Quantile

	CacheHits    int64
	PeakInFlight int64

	// Shed counts requests rejected with engine.ErrOverload (queue full or
	// circuit open), Deadlined those failed with engine.ErrDeadlineExceeded
	// — both non-fatal, excluded from Queries and the latency distribution.
	Shed, Deadlined int64
	// Degraded counts completed queries whose run survived injected faults
	// (the answers are still bit-identical; see DESIGN.md §14).
	Degraded int64
}

// arrival is one scheduled request: latency is measured from Sched, not
// from dequeue, so queue wait is part of the reported latency.
type arrival struct {
	req   Request
	sched time.Time
}

// Benchmark drives a server with an open-loop Poisson arrival process for
// roughly opts.Duration: a generator emits requests on a fixed seeded
// schedule, walking the mix round-robin, into a bounded queue that
// opts.Clients workers drain. Arrivals that find the queue full are dropped
// (and counted) instead of stalling the schedule. Each completed request's
// latency runs from its scheduled arrival to completion, and the
// distribution accumulates in fixed-bucket histograms — no per-request
// slice, no end-of-window sort — from which p50/p99/p99.9 are reported
// with typed insufficient-sample markers.
func Benchmark(ctx context.Context, srv Runner, mix []Request, opts BenchOptions) (BenchResult, error) {
	if len(mix) == 0 {
		return BenchResult{}, fmt.Errorf("serve: empty query mix")
	}
	clients := max(opts.Clients, 1)
	duration := opts.Duration
	if duration <= 0 {
		duration = time.Second
	}
	rate := opts.Rate
	if rate <= 0 {
		rate = 200
	}
	depth := opts.Queue
	if depth <= 0 {
		depth = 2 * clients
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	deadline := time.Now().Add(duration)
	// The window deadline is carried by the context, so a query still running
	// when the window closes is interrupted at its next operator boundary
	// instead of overrunning the measurement.
	bctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	queue := make(chan arrival, depth)
	hists := make([]*Histogram, clients)
	errs := make([]error, clients)
	shed := make([]int64, clients)
	deadlined := make([]int64, clients)
	degraded := make([]int64, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		hists[c] = &Histogram{}
		go func(c int) {
			defer wg.Done()
			for a := range queue {
				if bctx.Err() != nil {
					return
				}
				res, _, err := srv.Run(bctx, a.req.Query, a.req.Params)
				if err != nil {
					switch {
					case bctx.Err() != nil:
						return // window closed or benchmark cancelled mid-query
					case errors.Is(err, engine.ErrOverload):
						shed[c]++ // shed load is an outcome, not a failure
						continue
					case errors.Is(err, engine.ErrDeadlineExceeded):
						deadlined[c]++ // per-request timeout: counted, not fatal
						continue
					default:
						errs[c] = err
						cancel()
						return
					}
				}
				if res != nil && res.Degraded {
					degraded[c]++
				}
				hists[c].Record(time.Since(a.sched))
			}
		}(c)
	}

	// The generator: exponential gaps at the offered rate. It never blocks
	// on the queue — a full queue drops the arrival, keeping the remaining
	// schedule on time regardless of how slowly the system drains.
	var offered, dropped int64
	rng := rand.New(rand.NewPCG(seed, 0x67656e62617365)) // "genbase"
	next := start
	i := 0
gen:
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if !next.Before(deadline) || bctx.Err() != nil {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-bctx.Done():
				break gen
			}
		}
		offered++
		select {
		case queue <- arrival{req: mix[i%len(mix)], sched: next}:
		default:
			dropped++
		}
		i++
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return BenchResult{}, err
		}
	}
	all := &Histogram{}
	for _, h := range hists {
		all.Merge(h)
	}
	st := srv.Stats()
	res := BenchResult{
		System:       srv.Name(),
		Clients:      clients,
		Duration:     elapsed,
		Queries:      all.Total(),
		Offered:      offered,
		OfferedQPS:   float64(offered) / elapsed.Seconds(),
		Dropped:      dropped,
		P50:          all.Quantile(0.50),
		P99:          all.Quantile(0.99),
		P999:         all.Quantile(0.999),
		CacheHits:    st.CacheHits,
		PeakInFlight: st.PeakInFlight,
	}
	for c := 0; c < clients; c++ {
		res.Shed += shed[c]
		res.Deadlined += deadlined[c]
		res.Degraded += degraded[c]
	}
	if res.Queries > 0 {
		res.QPS = float64(res.Queries) / elapsed.Seconds()
	}
	return res, nil
}
