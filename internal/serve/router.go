package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/genbase/genbase/internal/cost"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/plan"
)

// Router is the fleet front end (DESIGN.md §16): it holds every loaded
// configuration — single-node engines and virtual clusters at their node
// counts — behind one admission/cache/coalescing layer and routes each
// request to the cheapest supported configuration under the calibrated cost
// model, refined online from the timings the fleet itself observes.
//
// The paper's finding is that no engine wins everywhere; the Router is that
// finding operationalized. Three properties make it safe:
//
//   - Support is ground truth, not configuration: a backend is a candidate
//     for a request only when its engine's Supports(query) — derived from
//     the compiled plan's operator footprint — says so. The router can never
//     select a (configuration, query) pair the engine would reject.
//   - Answers are equivalence-classed, not assumed identical. Engines in the
//     same class (dense single-node algebra; distributed row-block algebra;
//     the MapReduce pipeline) produce bit-identical answers — pinned by the
//     committed goldens — so the fleet-wide result cache is keyed by
//     (answer class, plan fingerprint): a cache entry produced by any
//     backend serves every backend of its class, and never a backend of
//     another class.
//   - Overload re-routes instead of failing: when the chosen backend sheds
//     (admission queue full or circuit open, both typed engine.ErrOverload),
//     the router hedges down the ranked candidate list; only a fleet-wide
//     overload surfaces to the caller.
type Router struct {
	backends []*routerBackend
	model    *cost.Online
	policy   Policy
	cache    *Cache
	flights  flights
	timeout  time.Duration

	inflight atomic.Int64
	peak     atomic.Int64
	routed   atomic.Int64 // requests that reached some backend
	rerouted atomic.Int64 // served by other than the first-ranked backend
	shed     atomic.Int64 // fleet-wide overload: every candidate shed
	deadline atomic.Int64
	degraded atomic.Int64

	// plans memoizes (query, params) → compiled plan + fingerprint; the
	// router needs the plan itself (not just the fingerprint) to estimate
	// per-operator cost, so it keeps its own memo rather than sharing the
	// Server's string-only one.
	plans planMemo
}

// Backend declares one fleet member for NewRouter.
type Backend struct {
	// Server wraps the loaded engine with its per-backend admission width,
	// circuit breaker, and (serial-only engines) width-1 serialization. The
	// server must not have its own cache (NewRouter enforces this): result
	// caching is the router's, keyed by answer class.
	Server *Server
	// Config is the backend's cost-model identity: system, node count,
	// pinned workers.
	Config cost.Config
	// Class is the answer-equivalence class ("dense", "dist", "mr" — see
	// core.FleetConfigs): backends of one class answer bit-identically, so
	// cached results are shared exactly within the class.
	Class string
}

type routerBackend struct {
	srv    *Server
	cfg    cost.Config
	key    string
	class  string
	served atomic.Int64 // completions this backend produced
	failed atomic.Int64 // engine errors this backend produced
}

// Policy selects how the router picks a backend.
type Policy struct {
	// Static pins every request to the named configuration key (the
	// ablation baseline); empty routes each request to the predicted
	// cheapest candidate.
	Static string
}

// ParsePolicy parses the -route grammar: "cost" or "static:<config-key>".
func ParsePolicy(s string) (Policy, error) {
	if s == "cost" {
		return Policy{}, nil
	}
	if rest, ok := strings.CutPrefix(s, "static:"); ok && rest != "" {
		return Policy{Static: rest}, nil
	}
	return Policy{}, fmt.Errorf("serve: bad routing policy %q (want \"cost\" or \"static:<config>\")", s)
}

func (p Policy) String() string {
	if p.Static == "" {
		return "cost"
	}
	return "static:" + p.Static
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Policy selects cost-based or statically pinned routing.
	Policy Policy
	// Model is the online-refined cost model; nil wraps the committed
	// offline fit at the fit's recording dims.
	Model *cost.Online
	// Cache shares a fleet-wide result cache; nil creates a private one
	// unless DisableCache.
	Cache        *Cache
	DisableCache bool
	// RequestTimeout bounds each request end to end — queueing, hedged
	// re-routes and all (0 = none).
	RequestTimeout time.Duration
}

// NewRouter builds the fleet front end over loaded backends. Backend order
// is the deterministic tie-break: equal-cost candidates rank in registration
// order.
func NewRouter(backends []Backend, opts RouterOptions) (*Router, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one backend")
	}
	model := opts.Model
	if model == nil {
		model = cost.NewOnline(cost.Default(), cost.FitDims)
	}
	cache := opts.Cache
	if cache == nil && !opts.DisableCache {
		cache = NewCache(0)
	}
	if opts.DisableCache {
		cache = nil
	}
	r := &Router{model: model, policy: opts.Policy, cache: cache, timeout: opts.RequestTimeout}
	seen := map[string]bool{}
	for _, b := range backends {
		if b.Server == nil {
			return nil, fmt.Errorf("serve: backend %q has no server", b.Config.Key())
		}
		if b.Server.cache != nil {
			return nil, fmt.Errorf("serve: backend %q has its own cache; the router owns caching (class-keyed)", b.Config.Key())
		}
		if b.Class == "" {
			return nil, fmt.Errorf("serve: backend %q has no answer class", b.Config.Key())
		}
		key := b.Config.Key()
		if seen[key] {
			return nil, fmt.Errorf("serve: duplicate backend %q", key)
		}
		seen[key] = true
		r.backends = append(r.backends, &routerBackend{srv: b.Server, cfg: b.Config, key: key, class: b.Class})
	}
	if st := opts.Policy.Static; st != "" && !seen[st] {
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("serve: static policy names unknown configuration %q (fleet: %s)", st, strings.Join(keys, ", "))
	}
	return r, nil
}

// Name identifies the router for Benchmark rows: its routing policy.
func (r *Router) Name() string { return "fleet/" + r.policy.String() }

// Model returns the online cost model the router ranks with.
func (r *Router) Model() *cost.Online { return r.model }

// planMemo memoizes compiled plans per exact parameterization (the router
// re-ranks every request, so compilation must not be on the hot path).
type planMemo struct {
	mu sync.Mutex
	m  map[fpKey]*plan.Plan
}

func (pm *planMemo) get(q engine.QueryID, p engine.Params) (*plan.Plan, error) {
	k := fpKey{q, p}
	pm.mu.Lock()
	pl, ok := pm.m[k]
	pm.mu.Unlock()
	if ok {
		return pl, nil
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return nil, err
	}
	pm.mu.Lock()
	if pm.m == nil || len(pm.m) >= maxMemoizedFingerprints {
		pm.m = make(map[fpKey]*plan.Plan)
	}
	pm.m[k] = pl
	pm.mu.Unlock()
	return pl, nil
}

// Run routes one request. The bool reports a cache hit (including a
// coalesced twin's execution). Error typing matches Server.Run:
// engine.ErrUnsupported when no fleet member supports the query (or the
// pinned configuration doesn't), engine.ErrOverload when every candidate
// shed, engine.ErrDeadlineExceeded past the request deadline,
// engine.ErrBadParams for invalid parameters.
func (r *Router) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	res, hit, err := r.run(ctx, q, p)
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		r.deadline.Add(1)
		err = fmt.Errorf("serve: request deadline expired: %w", engine.ErrDeadlineExceeded)
	}
	if err == nil && res != nil && res.Degraded {
		r.degraded.Add(1)
	}
	return res, hit, err
}

func (r *Router) run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, bool, error) {
	// Admission: compile (and so validate) the plan once; unknown queries
	// and bad parameters are rejected here, before any routing.
	pl, err := r.plans.get(q, p)
	if err != nil {
		return nil, false, err
	}
	ranked, err := r.rank(pl, q)
	if err != nil {
		return nil, false, err
	}
	fp := pl.Fingerprint()
	if r.cache == nil {
		res, _, _, err := r.tryCandidates(ctx, ranked, pl, q, p, fp)
		return res, false, err
	}
	// Probe the cache once per distinct answer class, best-ranked class
	// first: a hit from any backend of a class is valid for every backend
	// of that class at the same snapshot epoch, and only for them. The probe
	// key carries the backend's current epoch, so entries from superseded
	// snapshots are never served forward.
	probed := map[string]bool{}
	for i, b := range ranked {
		if probed[b.class] {
			continue
		}
		probed[b.class] = true
		key := Key{System: b.class, Fingerprint: fp, Epoch: b.srv.Epoch()}
		if i == 0 {
			if res, ok := r.cache.get(key); ok { // get: record hit/miss once
				return res, true, nil
			}
		} else if res, ok := r.cache.peek(key); ok {
			return res, true, nil
		}
	}
	// Coalesce on the best-ranked (class, epoch): twins wait for one
	// execution. tryCandidates publishes under the class and epoch that
	// actually served, which the flight loop re-checks only for the flight
	// key — a re-routed leader's waiters simply contend again (rare: it
	// takes a cross-class failover or a mid-flight epoch swap).
	flightKey := Key{System: ranked[0].class, Fingerprint: fp, Epoch: ranked[0].srv.Epoch()}
	return r.flights.run(ctx, r.cache, flightKey, func() (*engine.Result, error) {
		res, served, epoch, err := r.tryCandidates(ctx, ranked, pl, q, p, fp)
		if err == nil && served != nil {
			r.cache.put(Key{System: served.class, Fingerprint: fp, Epoch: epoch}, res)
		}
		return res, err
	})
}

// rank returns the candidate backends for a query in routing order. Cost
// policy: supported backends sorted by predicted cost under the online
// model, ties broken by registration order. Static policy: exactly the
// pinned backend, which must support the query.
func (r *Router) rank(pl *plan.Plan, q engine.QueryID) ([]*routerBackend, error) {
	if st := r.policy.Static; st != "" {
		for _, b := range r.backends {
			if b.key != st {
				continue
			}
			if !b.srv.Engine().Supports(q) {
				return nil, fmt.Errorf("serve: pinned configuration %s does not support %s: %w", st, q, engine.ErrUnsupported)
			}
			return []*routerBackend{b}, nil
		}
		return nil, fmt.Errorf("serve: pinned configuration %s not in fleet: %w", st, engine.ErrUnsupported)
	}
	type scored struct {
		b    *routerBackend
		cost float64
		idx  int
	}
	var cands []scored
	for i, b := range r.backends {
		if !b.srv.Engine().Supports(q) {
			continue
		}
		est, ok := r.model.Estimate(pl, b.cfg)
		if !ok {
			continue
		}
		// Rank by intrinsic predicted cost alone. Load is handled
		// reactively — bounded queues shed, breakers open, and
		// tryCandidates hedges down this ranking — rather than folded into
		// the score: predictive load scaling spills traffic to the
		// second-cheapest backend whenever the cheapest is busy, which on a
		// contended host adds no capacity, only slower service. Queueing
		// briefly behind the most efficient backend beats dispatching to an
		// idle one that is meaningfully slower.
		cands = append(cands, scored{b: b, cost: est.TotalNs, idx: i})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("serve: no fleet configuration supports %s: %w", q, engine.ErrUnsupported)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].idx < cands[b].idx
	})
	out := make([]*routerBackend, len(cands))
	for i, c := range cands {
		out[i] = c.b
	}
	return out, nil
}

// tryCandidates executes on the ranked candidates with hedged re-route:
// overload (shed or breaker-open) moves to the next candidate; any other
// outcome — success, engine failure, cancellation — is final. Successful
// timings feed the online model, so the ranking self-corrects from the
// traffic it serves.
//
// The returned epoch is the snapshot epoch the winning backend served at,
// valid for cache publication only when the backend is also returned non-nil:
// when the backend's epoch moved while the request was in flight (Swap raced
// the execution), the answer is still correct for its caller — the server
// pinned a generation at admission — but this layer can no longer prove
// *which* epoch it pinned, so it withholds publication rather than risk
// poisoning the class cache with an answer filed under the wrong epoch.
func (r *Router) tryCandidates(ctx context.Context, ranked []*routerBackend, pl *plan.Plan, q engine.QueryID, p engine.Params, fp string) (*engine.Result, *routerBackend, uint64, error) {
	cur := r.inflight.Add(1)
	defer r.inflight.Add(-1)
	for {
		old := r.peak.Load()
		if cur <= old || r.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	var lastErr error
	for i, b := range ranked {
		if ctx.Err() != nil {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			break
		}
		start := time.Now()
		e1 := b.srv.Epoch()
		res, _, err := b.srv.Run(ctx, q, p)
		e2 := b.srv.Epoch()
		if err == nil {
			r.routed.Add(1)
			if i > 0 {
				r.rerouted.Add(1)
			}
			b.served.Add(1)
			// Feed back measured host wall-clock, not the engine's phase
			// Timing: the virtual-platform engines account simulated time,
			// and the router's ranking must converge on what serving here
			// actually costs. Only uncontended samples qualify — a wall
			// measured while other requests share the host folds their CPU
			// pressure into this backend's intrinsic cost, and it folds
			// unevenly (a simulated platform waiting out a sleep is immune
			// to CPU contention), which would steadily misrank the fleet.
			// Contention is the live load term's job at ranking time.
			if cur == 1 && r.inflight.Load() == 1 {
				r.model.ObserveWall(b.cfg, pl, float64(time.Since(start).Nanoseconds()))
			}
			if e1 != e2 {
				// Epoch moved mid-flight: correct answer, unprovable epoch —
				// serve it, don't publish it.
				return res, nil, 0, nil
			}
			return res, b, e1, nil
		}
		if errors.Is(err, engine.ErrOverload) {
			lastErr = err
			continue // hedged re-route: the next-cheapest candidate takes it
		}
		b.failed.Add(1)
		return nil, nil, 0, err
	}
	r.shed.Add(1)
	return nil, nil, 0, fmt.Errorf("serve: all %d candidate configurations overloaded for %s: %w",
		len(ranked), q, errors.Join(lastErr, engine.ErrOverload))
}

// BackendShare is one fleet member's slice of the routed traffic.
type BackendShare struct {
	Key    string // configuration key ("scidb@2n")
	Class  string // answer-equivalence class
	Served int64  // completions this backend produced
	Failed int64  // engine errors this backend produced
	Stats  Stats  // the backend server's own counters
}

// RouterStats is the fleet-level snapshot.
type RouterStats struct {
	Stats
	// Rerouted counts requests served by other than their first-ranked
	// backend (the hedge fired).
	Rerouted int64
	// Shares lists every backend's traffic slice in registration order.
	Shares []BackendShare
}

// Stats implements Runner with fleet-aggregated counters.
func (r *Router) Stats() Stats {
	st := Stats{
		InFlight:     r.inflight.Load(),
		PeakInFlight: r.peak.Load(),
		Shed:         r.shed.Load(),
		Deadlined:    r.deadline.Load(),
		Degraded:     r.degraded.Load(),
	}
	for _, b := range r.backends {
		bs := b.srv.Stats()
		st.Admitted += bs.Admitted
		st.EngineFailures += bs.EngineFailures
		st.BreakerDenials += bs.BreakerDenials
		st.Shed += bs.Shed
		if bs.BreakerOpen {
			st.BreakerOpen = true
		}
	}
	if r.cache != nil {
		st.CacheHits = r.cache.hits.Load()
		st.CacheMisses = r.cache.misses.Load()
	}
	return st
}

// RouterStats returns the fleet snapshot with per-backend shares.
func (r *Router) RouterStats() RouterStats {
	rs := RouterStats{Stats: r.Stats(), Rerouted: r.rerouted.Load()}
	for _, b := range r.backends {
		rs.Shares = append(rs.Shares, BackendShare{
			Key:    b.key,
			Class:  b.class,
			Served: b.served.Load(),
			Failed: b.failed.Load(),
			Stats:  b.srv.Stats(),
		})
	}
	return rs
}
