package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSplitCoversContiguously(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {1, 4}, {7, 7}, {100, 1}, {0, 3}, {5, 16}} {
		ranges := Split(tc.n, tc.k)
		pos := 0
		for _, r := range ranges {
			if r.Lo != pos || r.Hi <= r.Lo {
				t.Fatalf("Split(%d,%d)=%v: bad range %v at pos %d", tc.n, tc.k, ranges, r, pos)
			}
			pos = r.Hi
		}
		if pos != tc.n {
			t.Fatalf("Split(%d,%d)=%v does not cover [0,%d)", tc.n, tc.k, ranges, tc.n)
		}
		if tc.n > 0 && len(ranges) != min(tc.n, max(tc.k, 1)) {
			t.Fatalf("Split(%d,%d) produced %d ranges", tc.n, tc.k, len(ranges))
		}
	}
}

func TestSplitWeightedBalancesTriangle(t *testing.T) {
	n, k := 100, 4
	weight := func(i int) float64 { return float64(n - i) } // Gram row cost
	ranges := SplitWeighted(n, k, weight)
	if len(ranges) != k {
		t.Fatalf("got %d ranges", len(ranges))
	}
	pos := 0
	total := 0.0
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	for _, r := range ranges {
		if r.Lo != pos || r.Hi <= r.Lo {
			t.Fatalf("bad coverage: %v", ranges)
		}
		pos = r.Hi
		w := 0.0
		for i := r.Lo; i < r.Hi; i++ {
			w += weight(i)
		}
		if share := w / total; share < 0.10 || share > 0.45 {
			t.Fatalf("range %v holds %.0f%% of the weight: %v", r, share*100, ranges)
		}
	}
	if pos != n {
		t.Fatalf("ranges %v do not cover [0,%d)", ranges, n)
	}
}

func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 237
		var hits [237]atomic.Int32
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForSplitSeesWholeRangeOnce(t *testing.T) {
	var covered atomic.Int64
	ForSplit(4, 1000, func(lo, hi int) { covered.Add(int64(hi - lo)) })
	if covered.Load() != 1000 {
		t.Fatalf("covered %d of 1000", covered.Load())
	}
}

func TestResolveAndDefault(t *testing.T) {
	defer SetDefault(0)
	if Resolve(5) != 5 {
		t.Fatal("explicit count must pass through")
	}
	SetDefault(3)
	if Resolve(0) != 3 {
		t.Fatal("override not honored")
	}
	SetDefault(0)
	t.Setenv(EnvVar, "7")
	if Resolve(0) != 7 {
		t.Fatalf("env knob not honored: %d", Resolve(0))
	}
	t.Setenv(EnvVar, "not-a-number")
	if Resolve(0) != runtime.NumCPU() {
		t.Fatal("bad env value must fall back to NumCPU")
	}
}
