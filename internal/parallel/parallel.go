// Package parallel is the shared worker-pool layer under every analytics
// kernel. It provides a bounded goroutine pool and contiguous-range
// partitioners that the linalg kernels (and the engines built on them) use to
// spread work over cores.
//
// # Determinism
//
// Every kernel built on this package partitions its OUTPUT, never its
// reduction: each output element is owned by exactly one worker, which
// accumulates it in the same order the serial kernel would. No worker-count-
// dependent reduction ever happens, so results are bitwise identical at any
// worker count — including 1 — and identical to the historical serial
// kernels. The split points therefore cannot affect answers, only load
// balance; TestParallelKernelsBitwiseDeterministic in internal/linalg
// enforces the guarantee.
//
// # The knob
//
// The effective worker count resolves in priority order:
//
//  1. an explicit per-call count (> 0), as threaded through an engine's
//     Workers field;
//  2. a process-wide override installed with SetDefault (the genbase-bench
//     -workers flag);
//  3. the GENBASE_PARALLEL environment variable;
//  4. runtime.NumCPU().
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable consulted for the default worker count.
const EnvVar = "GENBASE_PARALLEL"

// defaultOverride, when positive, takes precedence over the environment.
var defaultOverride atomic.Int32

// SetDefault installs a process-wide default worker count. n <= 0 removes
// the override, restoring the GENBASE_PARALLEL / NumCPU default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultOverride.Store(int32(n))
}

// Default returns the process-wide default worker count.
func Default() int {
	if w := defaultOverride.Load(); w > 0 {
		return int(w)
	}
	if s := os.Getenv(EnvVar); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.NumCPU()
}

// Resolve maps a per-call worker count to an effective one: positive counts
// pass through, anything else resolves to Default().
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return Default()
}

// Range is a contiguous half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most k contiguous near-equal ranges
// (fewer when n < k; never an empty range). Split points depend only on n
// and k.
func Split(n, k int) []Range {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n <= 0 {
		return nil
	}
	out := make([]Range, 0, k)
	per, rem := n/k, n%k
	pos := 0
	for i := 0; i < k; i++ {
		next := pos + per
		if i < rem {
			next++
		}
		out = append(out, Range{pos, next})
		pos = next
	}
	return out
}

// SplitWeighted partitions [0, n) into at most k contiguous ranges of
// near-equal total weight, for kernels whose per-index cost is uneven (the
// upper-triangle Gram rows). weight(i) must be non-negative.
func SplitWeighted(n, k int, weight func(i int) float64) []Range {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n <= 0 {
		return nil
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	if total <= 0 {
		return Split(n, k)
	}
	out := make([]Range, 0, k)
	target := total / float64(k)
	acc := 0.0
	lo := 0
	for i := 0; i < n; i++ {
		acc += weight(i)
		// Cut when this shard reached its share, keeping enough indices for
		// the remaining shards.
		if acc >= target*float64(len(out)+1) && n-i-1 >= k-len(out)-1 && len(out) < k-1 {
			out = append(out, Range{lo, i + 1})
			lo = i + 1
		}
	}
	out = append(out, Range{lo, n})
	return out
}

// For runs fn(i) for every i in [0, n) across at most `workers` goroutines
// (the bounded pool), pulling indices from a shared counter. workers <= 0
// resolves to the default knob. With one effective worker it runs inline with
// no goroutines. fn calls for distinct i must be independent.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForSplit partitions [0, n) into one contiguous range per worker and runs
// fn(lo, hi) on each concurrently. With one effective worker it calls
// fn(0, n) inline — no range slice, no closure, no allocation, so the
// serial path of every kernel stays allocation-free. The multi-worker path
// computes the same split points as Split arithmetically (no range slice, no
// shared counter) and runs the final range on the calling goroutine, so a
// w-way fan-out costs w-1 goroutines and ~w small allocations — this is the
// hot path under every per-iteration kernel (the Lanczos mat-vecs).
func ForSplit(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers)
	if w <= 1 || n == 1 {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	per, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		if i == w-1 {
			fn(lo, hi)
		} else {
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}

// ForSplitWeighted is ForSplit with weighted split points.
func ForSplitWeighted(workers, n int, weight func(i int) float64, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if w := Resolve(workers); w <= 1 || n == 1 {
		fn(0, n)
		return
	}
	ForRanges(workers, SplitWeighted(n, Resolve(workers), weight), fn)
}

// ForRanges runs fn over each range, one goroutine per range (inline when
// there is only one).
func ForRanges(workers int, ranges []Range, fn func(lo, hi int)) {
	if len(ranges) == 1 {
		fn(ranges[0].Lo, ranges[0].Hi)
		return
	}
	For(workers, len(ranges), func(i int) { fn(ranges[i].Lo, ranges[i].Hi) })
}
