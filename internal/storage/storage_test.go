package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestPageInsertAndRead(t *testing.T) {
	var p Page
	InitPage(&p)
	s1, err := p.InsertRecord([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.InsertRecord([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := p.Record(s1); !ok || string(r) != "hello" {
		t.Fatalf("record 1: %q %v", r, ok)
	}
	if r, ok := p.Record(s2); !ok || string(r) != "world!" {
		t.Fatalf("record 2: %q %v", r, ok)
	}
}

func TestPageRejectsEmptyRecord(t *testing.T) {
	var p Page
	InitPage(&p)
	if _, err := p.InsertRecord(nil); err == nil {
		t.Fatal("expected error for empty record")
	}
}

func TestPageFillsAndErrs(t *testing.T) {
	var p Page
	InitPage(&p)
	rec := bytes.Repeat([]byte{7}, 100)
	inserted := 0
	for {
		if _, err := p.InsertRecord(rec); err != nil {
			if err != ErrPageFull {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		inserted++
	}
	// 100-byte records + 4-byte slots: expect close to 8188/104 ≈ 78.
	if inserted < 70 || inserted > 80 {
		t.Fatalf("inserted %d records", inserted)
	}
	// All still readable.
	for s := 0; s < inserted; s++ {
		if r, ok := p.Record(s); !ok || len(r) != 100 {
			t.Fatalf("slot %d unreadable after fill", s)
		}
	}
}

func TestPageDelete(t *testing.T) {
	var p Page
	InitPage(&p)
	s, _ := p.InsertRecord([]byte("x"))
	if err := p.DeleteRecord(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Record(s); ok {
		t.Fatal("deleted record still visible")
	}
	if err := p.DeleteRecord(99); err == nil {
		t.Fatal("expected range error")
	}
}

// Property: any sequence of variable-length inserts is fully recoverable in
// order, as long as the page accepts them.
func TestPageInsertReadProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		var p Page
		InitPage(&p)
		var want [][]byte
		for i, sz := range sizes {
			n := int(sz)%200 + 1
			rec := bytes.Repeat([]byte{byte(i)}, n)
			if _, err := p.InsertRecord(rec); err != nil {
				break
			}
			want = append(want, rec)
		}
		for s, rec := range want {
			got, ok := p.Record(s)
			if !ok || !bytes.Equal(got, rec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func tempHeap(t *testing.T, frames int) *HeapFile {
	t.Helper()
	h, err := CreateHeapFile(filepath.Join(t.TempDir(), "t.heap"), frames)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestHeapFileAppendScan(t *testing.T) {
	h := tempHeap(t, 8)
	for i := 0; i < 1000; i++ {
		if err := h.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumRecords() != 1000 {
		t.Fatalf("records=%d", h.NumRecords())
	}
	i := 0
	err := h.Scan(func(rec []byte) error {
		want := fmt.Sprintf("record-%04d", i)
		if string(rec) != want {
			return fmt.Errorf("at %d got %q", i, rec)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 1000 {
		t.Fatalf("scanned %d", i)
	}
}

func TestHeapFileSurvivesEviction(t *testing.T) {
	// Pool of 2 frames forces constant eviction; data must still be intact.
	h := tempHeap(t, 2)
	rec := bytes.Repeat([]byte{9}, 1000) // ~8 records per page
	const n = 500
	for i := 0; i < n; i++ {
		rec[0] = byte(i)
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 50 {
		t.Fatalf("expected many pages, got %d", h.NumPages())
	}
	count := 0
	if err := h.Scan(func(r []byte) error {
		if r[0] != byte(count) {
			return fmt.Errorf("record %d corrupted", count)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scanned %d of %d", count, n)
	}
	if h.Pool().Evictions.Load() == 0 {
		t.Fatal("test should have exercised eviction")
	}
}

func TestHeapFileScanEarlyStop(t *testing.T) {
	h := tempHeap(t, 4)
	for i := 0; i < 10; i++ {
		h.Append([]byte{byte(i)})
	}
	stop := fmt.Errorf("stop")
	seen := 0
	err := h.Scan(func(rec []byte) error {
		seen++
		if seen == 3 {
			return stop
		}
		return nil
	})
	if err != stop || seen != 3 {
		t.Fatalf("err=%v seen=%d", err, seen)
	}
}

func TestHeapFileRejectsHugeRecord(t *testing.T) {
	h := tempHeap(t, 2)
	if err := h.Append(make([]byte, PageSize)); err == nil {
		t.Fatal("expected error for oversized record")
	}
}

func TestHeapFilePersistsAcrossFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.heap")
	h, err := CreateHeapFile(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Append([]byte{byte(i), byte(i >> 8)})
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%PageSize != 0 || st.Size() == 0 {
		t.Fatalf("file size %d not page aligned", st.Size())
	}
}

func TestBufferPoolStats(t *testing.T) {
	h := tempHeap(t, 4)
	for i := 0; i < 50; i++ {
		h.Append(bytes.Repeat([]byte{1}, 500))
	}
	h.Scan(func([]byte) error { return nil })
	pool := h.Pool()
	if pool.Hits.Load() == 0 || pool.Hits.Load()+pool.Misses.Load() == 0 {
		t.Fatalf("stats not tracked: hits=%d misses=%d", pool.Hits.Load(), pool.Misses.Load())
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "p"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bp := NewBufferPool(f, 1)
	_, n1, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	// Page n1 still pinned: allocating another must fail.
	if _, _, err := bp.NewPage(); err != ErrPoolExhausted {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
	bp.Unpin(n1, true)
	if _, _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

// The scan path must not allocate per page: evicted frames recycle through
// the buffer pool's freelist, so a cursor sweep over a table much larger
// than the pool runs allocation-free once the pool is warm.
func TestCursorScanDoesNotAllocatePerPage(t *testing.T) {
	h := tempHeap(t, 4) // tiny pool: the 100+-page scan evicts constantly
	rec := bytes.Repeat([]byte{7}, 900)
	for i := 0; i < 1000; i++ {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() < 20 {
		t.Fatalf("want a multi-page file, got %d pages", h.NumPages())
	}
	scan := func() {
		cur := h.NewCursor()
		n := 0
		for {
			_, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		cur.Close()
		if n != 1000 {
			t.Fatalf("scanned %d records", n)
		}
	}
	scan() // warm the pool and freelist
	perScan := testing.AllocsPerRun(10, scan)
	// One cursor struct per scan is fine; per-page frame churn (100+ pages ×
	// 8 KiB) is not.
	if perScan > 5 {
		t.Fatalf("scan allocates %.0f objects; frames are not being reused", perScan)
	}
}
