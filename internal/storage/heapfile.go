package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// HeapFile is an append-oriented record file backed by slotted pages through
// a buffer pool. Each relational table in the row store is one heap file.
//
// Concurrency: the read paths (FetchRecord, FetchRecordInto, Scan, cursors)
// are safe to use from any number of goroutines once loading is done — they
// share the goroutine-safe buffer pool and touch no heap-file state. Append
// is single-writer: the load phase runs it from one goroutine (DESIGN.md
// §11).
type HeapFile struct {
	path     string
	file     *os.File
	pool     *BufferPool
	numPages int64
	lastPage int64 // page currently receiving inserts, −1 if none
	lastSlot int   // slot of the most recent insert
	records  int64
}

// CreateHeapFile makes (or truncates) a heap file at path.
func CreateHeapFile(path string, poolFrames int) (*HeapFile, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &HeapFile{path: path, file: f, pool: NewBufferPool(f, poolFrames), lastPage: -1}, nil
}

// Close flushes and closes the underlying file.
func (h *HeapFile) Close() error {
	if err := h.pool.FlushAll(); err != nil {
		h.file.Close()
		return err
	}
	return h.file.Close()
}

// Remove closes and deletes the file (test/bench cleanup).
func (h *HeapFile) Remove() error {
	if err := h.Close(); err != nil {
		os.Remove(h.path)
		return err
	}
	return os.Remove(h.path)
}

// NumRecords returns the number of records appended.
func (h *HeapFile) NumRecords() int64 { return h.records }

// NumPages returns the number of allocated pages.
func (h *HeapFile) NumPages() int64 { return h.numPages }

// Pool exposes buffer-pool statistics for the ablation benches and the
// pin-leak detector.
func (h *HeapFile) Pool() *BufferPool { return h.pool }

// RID locates one record in a heap file.
type RID struct {
	Page int64
	Slot int
}

// Less orders RIDs in physical file order (for bitmap-style index scans).
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// AppendLocated inserts a record and returns where it landed, for index
// construction.
func (h *HeapFile) AppendLocated(record []byte) (RID, error) {
	if err := h.Append(record); err != nil {
		return RID{}, err
	}
	return RID{Page: h.lastPage, Slot: h.lastSlot}, nil
}

// FetchRecord reads one record by locator through the buffer pool. The
// returned bytes are copied (safe to retain).
func (h *HeapFile) FetchRecord(rid RID) ([]byte, error) {
	p, err := h.pool.FetchPage(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, ok := p.Record(rid.Slot)
	if !ok {
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("storage: no record at page %d slot %d", rid.Page, rid.Slot)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, h.pool.Unpin(rid.Page, false)
}

// FetchRecordInto is FetchRecord reusing a caller buffer; the result aliases
// buf's storage when capacity suffices.
func (h *HeapFile) FetchRecordInto(rid RID, buf []byte) ([]byte, error) {
	p, err := h.pool.FetchPage(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, ok := p.Record(rid.Slot)
	if !ok {
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("storage: no record at page %d slot %d", rid.Page, rid.Slot)
	}
	buf = append(buf[:0], rec...)
	return buf, h.pool.Unpin(rid.Page, false)
}

// Append inserts a record, allocating a new page when the current one fills.
// Single-writer: callers append from one goroutine (the load phase).
func (h *HeapFile) Append(record []byte) error {
	if len(record) > PageSize-16 {
		return fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(record))
	}
	if h.lastPage >= 0 {
		p, err := h.pool.FetchPage(h.lastPage)
		if err != nil {
			return err
		}
		if slot, err := p.InsertRecord(record); err == nil {
			if err := h.pool.Unpin(h.lastPage, true); err != nil {
				return err
			}
			h.lastSlot = slot
			h.records++
			return nil
		}
		if err := h.pool.Unpin(h.lastPage, false); err != nil {
			return err
		}
	}
	p, pageNum, err := h.pool.NewPage()
	if err != nil {
		return err
	}
	slot, err := p.InsertRecord(record)
	if err != nil {
		h.pool.Unpin(pageNum, false)
		return err
	}
	if err := h.pool.Unpin(pageNum, true); err != nil {
		return err
	}
	h.lastPage = pageNum
	h.lastSlot = slot
	h.numPages = pageNum + 1
	h.records++
	return nil
}

// Scan calls fn for every live record in file order. The byte slice passed to
// fn aliases buffer-pool memory and is only valid during the call.
func (h *HeapFile) Scan(fn func(record []byte) error) error {
	for pageNum := int64(0); pageNum < h.numPages; pageNum++ {
		p, err := h.pool.FetchPage(pageNum)
		if err != nil {
			return err
		}
		n := p.NumSlots()
		for s := 0; s < n; s++ {
			rec, ok := p.Record(s)
			if !ok {
				continue
			}
			if err := fn(rec); err != nil {
				h.pool.Unpin(pageNum, false)
				return err
			}
		}
		if err := h.pool.Unpin(pageNum, false); err != nil {
			return err
		}
	}
	return nil
}
