package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// Concurrent fetch/unpin over a pool much smaller than the file: every
// fetch races with evictions triggered by the other goroutines. Run with
// -race this is the buffer pool's data-race stress test; without it, it
// still checks pin accounting and page contents under contention.
func TestBufferPoolConcurrentFetchUnpin(t *testing.T) {
	h := tempHeap(t, 8) // 8 frames
	rec := bytes.Repeat([]byte{0}, 900)
	const records = 500
	for i := 0; i < records; i++ {
		rec[0], rec[1] = byte(i), byte(i>>8)
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	pages := h.NumPages()
	if pages <= 8 {
		t.Fatalf("want file larger than pool, got %d pages", pages)
	}

	const goroutines = 8
	const fetchesPer = 2000
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Deterministic per-goroutine page walk with different strides so
			// goroutines collide on some pages and diverge on others.
			stride := int64(g)*2 + 1
			pageNum := int64(g) % pages
			for i := 0; i < fetchesPer; i++ {
				p, err := h.Pool().FetchPage(pageNum)
				if err != nil {
					errCh <- err
					return
				}
				// Touch the page while pinned: a frame recycled under us would
				// show a different page's slot directory.
				if p.NumSlots() == 0 {
					t.Errorf("page %d has no slots", pageNum)
				}
				if err := h.Pool().Unpin(pageNum, false); err != nil {
					errCh <- err
					return
				}
				pageNum = (pageNum + stride) % pages
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := h.Pool().PinnedPages(); n != 0 {
		t.Fatalf("%d pages still pinned after all goroutines unpinned", n)
	}
	if v := h.Pool().InvariantViolations.Load(); v != 0 {
		t.Fatalf("%d pin-discipline violations", v)
	}
}

// Two appenders interleaving NewPage must get distinct page numbers (the old
// Stat-based numbering handed both the same page). Appending records through
// HeapFile stays single-writer by contract; this exercises the pool-level
// allocation underneath.
func TestBufferPoolConcurrentNewPage(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "p"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bp := NewBufferPool(f, 64)

	const goroutines = 4
	const pagesPer = 10
	nums := make([][]int64, goroutines)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < pagesPer; i++ {
				_, n, err := bp.NewPage()
				if err != nil {
					errCh <- err
					return
				}
				nums[g] = append(nums[g], n)
				if err := bp.Unpin(n, true); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, ns := range nums {
		for _, n := range ns {
			if seen[n] {
				t.Fatalf("page number %d allocated twice", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != goroutines*pagesPer {
		t.Fatalf("allocated %d distinct pages, want %d", len(seen), goroutines*pagesPer)
	}
	if got := bp.NumPages(); got != int64(goroutines*pagesPer) {
		t.Fatalf("pool tracks %d pages, want %d", got, goroutines*pagesPer)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(goroutines*pagesPer)*PageSize {
		t.Fatalf("file size %d, want %d", st.Size(), int64(goroutines*pagesPer)*PageSize)
	}
}

// Unpin of a non-resident page is a counted error and can no longer lose a
// dirty mark silently; over-unpinning a resident page is likewise rejected.
func TestUnpinInvariantViolations(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "p"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bp := NewBufferPool(f, 2)
	if err := bp.Unpin(42, true); err == nil {
		t.Fatal("unpin of non-resident page must error (it used to drop the dirty bit silently)")
	}
	if got := bp.InvariantViolations.Load(); got != 1 {
		t.Fatalf("violations=%d, want 1", got)
	}
	_, n, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(n, false); err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(n, false); err == nil {
		t.Fatal("second unpin of a once-pinned page must error")
	}
	if got := bp.InvariantViolations.Load(); got != 2 {
		t.Fatalf("violations=%d, want 2", got)
	}
}

// A dirty mark delivered at unpin time must survive to the file. The old
// Unpin could drop it when an eviction race made the page non-resident;
// now the mark either lands on the resident frame or the caller hears about
// it.
func TestUnpinDirtyMarkSurvivesToDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bp := NewBufferPool(f, 2)
	p, n, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.InsertRecord([]byte("dirty-mark")); err != nil {
		t.Fatal(err)
	}
	if err := bp.Unpin(n, true); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte("dirty-mark")) {
		t.Fatal("record written under a dirty unpin did not reach the file")
	}
}

// Concurrent readers racing a page miss on the SAME page must coalesce onto
// one disk read and all see the same frame.
func TestBufferPoolCoalescesConcurrentMisses(t *testing.T) {
	h := tempHeap(t, 4)
	rec := bytes.Repeat([]byte{9}, 900)
	for i := 0; i < 100; i++ {
		if err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	pages := h.NumPages()
	for round := int64(0); round < pages; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := h.Pool().FetchPage(round)
				if err != nil {
					t.Error(err)
					return
				}
				if p.NumSlots() == 0 {
					t.Errorf("page %d empty after fetch", round)
				}
				if err := h.Pool().Unpin(round, false); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	if n := h.Pool().PinnedPages(); n != 0 {
		t.Fatalf("%d pages still pinned", n)
	}
}
