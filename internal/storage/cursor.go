package storage

// Cursor iterates a heap file record-at-a-time (the Volcano executor's
// access path). It keeps the current page pinned between records, unpinning
// when it advances to the next page or closes. A cursor belongs to one
// goroutine; any number of cursors may scan the same heap file concurrently
// (the buffer pool arbitrates).
type Cursor struct {
	h        *HeapFile
	pageNum  int64
	slot     int
	page     *Page
	finished bool
}

// NewCursor returns a cursor positioned before the first record.
func (h *HeapFile) NewCursor() *Cursor {
	return &Cursor{h: h, pageNum: -1}
}

// Next returns the next live record. The returned slice aliases buffer-pool
// memory and is valid only until the next call to Next or Close.
func (c *Cursor) Next() ([]byte, bool, error) {
	if c.finished {
		return nil, false, nil
	}
	for {
		if c.page == nil {
			c.pageNum++
			if c.pageNum >= c.h.numPages {
				c.finished = true
				return nil, false, nil
			}
			p, err := c.h.pool.FetchPage(c.pageNum)
			if err != nil {
				c.finished = true
				return nil, false, err
			}
			c.page = p
			c.slot = 0
		}
		for c.slot < c.page.NumSlots() {
			rec, ok := c.page.Record(c.slot)
			c.slot++
			if ok {
				return rec, true, nil
			}
		}
		if err := c.h.pool.Unpin(c.pageNum, false); err != nil {
			c.finished = true
			c.page = nil
			return nil, false, err
		}
		c.page = nil
	}
}

// Close releases any pinned page. Safe to call multiple times.
func (c *Cursor) Close() {
	if c.page != nil {
		c.h.pool.Unpin(c.pageNum, false)
		c.page = nil
	}
	c.finished = true
}
