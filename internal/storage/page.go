// Package storage implements the row store's disk substrate: 8 KiB slotted
// pages, heap files, and an LRU buffer pool. It mirrors the architecture of
// a conventional RDBMS storage manager (the paper's Postgres configuration):
// tuples are "stored in highly encoded form on storage blocks" and every
// access goes through the buffer pool.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed on-disk page size.
const PageSize = 8192

// Page layout:
//
//	[0:2)  uint16 numSlots
//	[2:4)  uint16 freeEnd — records grow downward from PageSize toward the
//	       slot array, which grows upward from byte 4.
//	[4:4+4*numSlots) slot array; each slot is uint16 offset + uint16 length.
//	A slot with offset 0 is a dead (deleted) record.
type Page [PageSize]byte

const (
	pageHeaderSize = 4
	slotSize       = 4
)

// ErrPageFull is returned when a record does not fit in a page.
var ErrPageFull = errors.New("storage: page full")

// InitPage resets a page to empty.
func InitPage(p *Page) {
	binary.LittleEndian.PutUint16(p[0:], 0)
	binary.LittleEndian.PutUint16(p[2:], PageSize)
}

// NumSlots returns the slot count, including dead slots.
func (p *Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p[0:])) }

func (p *Page) freeEnd() int { return int(binary.LittleEndian.Uint16(p[2:])) }

// FreeSpace returns the bytes available for one more record (including its
// slot entry).
func (p *Page) FreeSpace() int {
	free := p.freeEnd() - (pageHeaderSize + slotSize*p.NumSlots()) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// InsertRecord stores data and returns its slot index.
func (p *Page) InsertRecord(data []byte) (int, error) {
	if len(data) > p.FreeSpace() {
		return 0, ErrPageFull
	}
	if len(data) == 0 {
		return 0, errors.New("storage: empty record")
	}
	slot := p.NumSlots()
	newEnd := p.freeEnd() - len(data)
	copy(p[newEnd:], data)
	binary.LittleEndian.PutUint16(p[pageHeaderSize+slotSize*slot:], uint16(newEnd))
	binary.LittleEndian.PutUint16(p[pageHeaderSize+slotSize*slot+2:], uint16(len(data)))
	binary.LittleEndian.PutUint16(p[0:], uint16(slot+1))
	binary.LittleEndian.PutUint16(p[2:], uint16(newEnd))
	return slot, nil
}

// Record returns the bytes of the record in the given slot. The slice aliases
// the page; callers must not retain it across page evictions. Deleted slots
// return nil, false.
func (p *Page) Record(slot int) ([]byte, bool) {
	if slot < 0 || slot >= p.NumSlots() {
		return nil, false
	}
	off := int(binary.LittleEndian.Uint16(p[pageHeaderSize+slotSize*slot:]))
	ln := int(binary.LittleEndian.Uint16(p[pageHeaderSize+slotSize*slot+2:]))
	if off == 0 {
		return nil, false
	}
	return p[off : off+ln], true
}

// DeleteRecord marks a slot dead. Space is not compacted (heap-file
// semantics; GenBase's workload is append + scan).
func (p *Page) DeleteRecord(slot int) error {
	if slot < 0 || slot >= p.NumSlots() {
		return fmt.Errorf("storage: slot %d out of range", slot)
	}
	binary.LittleEndian.PutUint16(p[pageHeaderSize+slotSize*slot:], 0)
	return nil
}
