package storage

import (
	"errors"
	"fmt"
	"os"
)

// BufferPool caches pages of a single file with LRU replacement. It is the
// gatekeeper for all page access: engines fetch, use, and unpin; dirty pages
// are written back on eviction or flush.
//
// The pool is allocation-free in steady state: evicted frames recycle
// through a freelist and the LRU chain is intrusive (links live in the
// frames themselves), so a sequential scan of a table far larger than the
// pool — the cursor's access pattern — allocates nothing per page. Before
// this, every miss past capacity allocated a fresh 8 KiB frame plus an LRU
// node, which is exactly the scan-path churn the zero-copy work removes.
type BufferPool struct {
	file     *os.File
	capacity int
	frames   map[int64]*frame
	// Intrusive LRU chain: lruHead is most recently used, lruTail least.
	lruHead, lruTail *frame
	// free holds evicted frames for reuse.
	free *frame

	// Stats for ablation benches and tests.
	Hits, Misses, Evictions int64
}

type frame struct {
	pageNum    int64
	page       Page
	dirty      bool
	pins       int
	prev, next *frame // LRU links while resident; next doubles as freelist link
}

// ErrPoolExhausted means every frame is pinned and nothing can be evicted.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all pages pinned)")

// NewBufferPool creates a pool over file with the given frame capacity.
func NewBufferPool(file *os.File, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[int64]*frame, capacity),
	}
}

// lruUnlink removes f from the LRU chain.
func (bp *BufferPool) lruUnlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		bp.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		bp.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

// lruPushFront marks f most recently used.
func (bp *BufferPool) lruPushFront(f *frame) {
	f.prev, f.next = nil, bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = f
	}
	bp.lruHead = f
	if bp.lruTail == nil {
		bp.lruTail = f
	}
}

// FetchPage pins and returns the page. Callers must Unpin when done.
func (bp *BufferPool) FetchPage(pageNum int64) (*Page, error) {
	if f, ok := bp.frames[pageNum]; ok {
		bp.Hits++
		f.pins++
		bp.lruUnlink(f)
		bp.lruPushFront(f)
		return &f.page, nil
	}
	bp.Misses++
	f, err := bp.allocFrame(pageNum)
	if err != nil {
		return nil, err
	}
	if _, err := bp.file.ReadAt(f.page[:], pageNum*PageSize); err != nil {
		bp.dropFrame(f)
		return nil, fmt.Errorf("storage: read page %d: %w", pageNum, err)
	}
	return &f.page, nil
}

// NewPage appends a fresh zero page to the file, pins it, and returns it with
// its page number.
func (bp *BufferPool) NewPage() (*Page, int64, error) {
	st, err := bp.file.Stat()
	if err != nil {
		return nil, 0, err
	}
	pageNum := st.Size() / PageSize
	f, err := bp.allocFrame(pageNum)
	if err != nil {
		return nil, 0, err
	}
	// The frame may be recycled from the freelist: clear it so a fresh page
	// is all zeros on disk (InitPage resets only the header, and stale
	// record bytes from an evicted page must not leak into new pages).
	f.page = Page{}
	InitPage(&f.page)
	f.dirty = true
	// Extend the file eagerly so Stat-based allocation stays correct.
	if err := bp.file.Truncate((pageNum + 1) * PageSize); err != nil {
		bp.dropFrame(f)
		return nil, 0, err
	}
	return &f.page, pageNum, nil
}

func (bp *BufferPool) allocFrame(pageNum int64) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, err
		}
	}
	f := bp.free
	if f != nil {
		bp.free = f.next
		f.next = nil
		f.pageNum, f.pins, f.dirty = pageNum, 1, false
	} else {
		f = &frame{pageNum: pageNum, pins: 1}
	}
	bp.lruPushFront(f)
	bp.frames[pageNum] = f
	return f, nil
}

func (bp *BufferPool) evictOne() error {
	for f := bp.lruTail; f != nil; f = f.prev {
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if _, err := bp.file.WriteAt(f.page[:], f.pageNum*PageSize); err != nil {
				return err
			}
		}
		bp.Evictions++
		bp.lruUnlink(f)
		delete(bp.frames, f.pageNum)
		f.next = bp.free
		bp.free = f
		return nil
	}
	return ErrPoolExhausted
}

// dropFrame removes a just-allocated frame after a failed fill and recycles
// it through the freelist.
func (bp *BufferPool) dropFrame(f *frame) {
	delete(bp.frames, f.pageNum)
	bp.lruUnlink(f)
	f.dirty = false
	f.next = bp.free
	bp.free = f
}

// Unpin releases a pin; dirty marks the page as modified.
func (bp *BufferPool) Unpin(pageNum int64, dirty bool) {
	f, ok := bp.frames[pageNum]
	if !ok {
		return
	}
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes every dirty page back to the file.
func (bp *BufferPool) FlushAll() error {
	for _, f := range bp.frames {
		if f.dirty {
			if _, err := bp.file.WriteAt(f.page[:], f.pageNum*PageSize); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}
