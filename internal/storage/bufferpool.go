package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// BufferPool caches pages of a single file with LRU replacement. It is the
// gatekeeper for all page access: engines fetch, use, and unpin; dirty pages
// are written back on eviction or flush.
//
// The pool is allocation-free in steady state: evicted frames recycle
// through a freelist and the LRU chain is intrusive (links live in the
// frames themselves), so a sequential scan of a table far larger than the
// pool — the cursor's access pattern — allocates nothing per page. Before
// this, every miss past capacity allocated a fresh 8 KiB frame plus an LRU
// node, which is exactly the scan-path churn the zero-copy work removes.
//
// # Concurrency
//
// The pool is safe for concurrent use (DESIGN.md §11). One mutex guards the
// frame map, the LRU chain, the freelist, pin counts, dirty bits, and page
// allocation; the miss-path disk read happens outside the lock under a
// per-frame loading flag so one slow read never serializes unrelated
// fetches, and concurrent misses on the same page coalesce onto a single
// read. Pin discipline is what keeps returned *Page pointers stable: a
// pinned frame is never evicted, so the bytes a caller holds between
// FetchPage and Unpin cannot be recycled under it. Stats are atomics,
// readable without the lock.
type BufferPool struct {
	file     *os.File
	capacity int

	mu     sync.Mutex
	frames map[int64]*frame
	// Intrusive LRU chain: lruHead is most recently used, lruTail least.
	lruHead, lruTail *frame
	// free holds evicted frames for reuse.
	free *frame
	// numPages is the file length in pages, tracked here so NewPage needs no
	// Stat/Truncate syscalls and two appenders cannot mint the same page
	// number. Eviction and flush extend the file via WriteAt.
	numPages int64
	// sizeErr poisons page allocation when the constructor could not learn
	// the file's size: minting page numbers from an unseeded counter over a
	// non-empty file would overwrite live pages.
	sizeErr error
	// loaded signals waiters when a loading frame settles (fill finished or
	// failed).
	loaded *sync.Cond

	// Stats for ablation benches and tests, and the invariant-violation
	// counter behind Unpin's error path.
	Hits, Misses, Evictions atomic.Int64
	// InvariantViolations counts pin-discipline breaches (unpinning a
	// non-resident page or unpinning more times than pinned). Any nonzero
	// value is a bug in a caller.
	InvariantViolations atomic.Int64
}

type frame struct {
	pageNum int64
	page    Page
	dirty   bool
	pins    int
	// loading marks a frame whose page bytes are still being read from disk;
	// it is resident in the map (so concurrent fetchers of the same page
	// wait instead of double-reading) but must not be returned yet.
	loading    bool
	prev, next *frame // LRU links while resident; next doubles as freelist link
}

// ErrPoolExhausted means every frame is pinned and nothing can be evicted.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all pages pinned)")

// NewBufferPool creates a pool over file with the given frame capacity. The
// current file size seeds the page-allocation counter.
func NewBufferPool(file *os.File, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	bp := &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[int64]*frame, capacity),
	}
	bp.loaded = sync.NewCond(&bp.mu)
	if st, err := file.Stat(); err == nil {
		bp.numPages = st.Size() / PageSize
	} else {
		bp.sizeErr = fmt.Errorf("storage: stat for page numbering: %w", err)
	}
	return bp
}

// lruUnlink removes f from the LRU chain. Caller holds mu.
func (bp *BufferPool) lruUnlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		bp.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		bp.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

// lruPushFront marks f most recently used. Caller holds mu.
func (bp *BufferPool) lruPushFront(f *frame) {
	f.prev, f.next = nil, bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = f
	}
	bp.lruHead = f
	if bp.lruTail == nil {
		bp.lruTail = f
	}
}

// FetchPage pins and returns the page. Callers must Unpin when done.
func (bp *BufferPool) FetchPage(pageNum int64) (*Page, error) {
	bp.mu.Lock()
	for {
		f, ok := bp.frames[pageNum]
		if !ok {
			break
		}
		if f.loading {
			// Another goroutine is reading this page; wait for it to settle
			// and re-check (the load may have failed and dropped the frame).
			bp.loaded.Wait()
			continue
		}
		f.pins++
		bp.lruUnlink(f)
		bp.lruPushFront(f)
		bp.mu.Unlock()
		bp.Hits.Add(1)
		return &f.page, nil
	}
	f, err := bp.allocFrame(pageNum)
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	f.loading = true
	bp.mu.Unlock()
	bp.Misses.Add(1)

	// Disk read outside the lock: the frame is pinned and marked loading, so
	// it cannot be evicted or handed to a concurrent fetcher mid-fill.
	_, rerr := bp.file.ReadAt(f.page[:], pageNum*PageSize)

	bp.mu.Lock()
	f.loading = false
	if rerr != nil {
		bp.dropFrame(f)
		bp.loaded.Broadcast()
		bp.mu.Unlock()
		return nil, fmt.Errorf("storage: read page %d: %w", pageNum, rerr)
	}
	bp.loaded.Broadcast()
	bp.mu.Unlock()
	return &f.page, nil
}

// NewPage appends a fresh zero page to the file, pins it, and returns it with
// its page number. Page numbers come from the pool's tracked file size, so
// concurrent appenders get distinct pages with no Stat/Truncate syscalls;
// the file itself grows when the page is first written back (WriteAt extends
// the file on eviction or flush).
func (bp *BufferPool) NewPage() (*Page, int64, error) {
	bp.mu.Lock()
	if bp.sizeErr != nil {
		bp.mu.Unlock()
		return nil, 0, bp.sizeErr
	}
	pageNum := bp.numPages
	f, err := bp.allocFrame(pageNum)
	if err != nil {
		bp.mu.Unlock()
		return nil, 0, err
	}
	bp.numPages = pageNum + 1
	// The frame may be recycled from the freelist: clear it so a fresh page
	// is all zeros on disk (InitPage resets only the header, and stale
	// record bytes from an evicted page must not leak into new pages).
	f.page = Page{}
	InitPage(&f.page)
	f.dirty = true
	bp.mu.Unlock()
	return &f.page, pageNum, nil
}

// NumPages returns the tracked file length in pages (allocated, though
// possibly not yet written back).
func (bp *BufferPool) NumPages() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.numPages
}

// PinnedPages returns the number of resident pages with a nonzero pin count
// — the pin-leak detector's probe: after a query finishes it must be zero.
func (bp *BufferPool) PinnedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// allocFrame reserves a frame for pageNum with one pin. Caller holds mu.
func (bp *BufferPool) allocFrame(pageNum int64) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, err
		}
	}
	f := bp.free
	if f != nil {
		bp.free = f.next
		f.next = nil
		f.pageNum, f.pins, f.dirty, f.loading = pageNum, 1, false, false
	} else {
		f = &frame{pageNum: pageNum, pins: 1}
	}
	bp.lruPushFront(f)
	bp.frames[pageNum] = f
	return f, nil
}

// evictOne writes back and recycles the least recently used unpinned frame.
// Caller holds mu; the writeback happens under the lock, which is fine for
// the read-only serve path (clean evictions never touch the disk).
func (bp *BufferPool) evictOne() error {
	for f := bp.lruTail; f != nil; f = f.prev {
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if _, err := bp.file.WriteAt(f.page[:], f.pageNum*PageSize); err != nil {
				return err
			}
		}
		bp.Evictions.Add(1)
		bp.lruUnlink(f)
		delete(bp.frames, f.pageNum)
		f.next = bp.free
		bp.free = f
		return nil
	}
	return ErrPoolExhausted
}

// dropFrame removes a just-allocated frame after a failed fill and recycles
// it through the freelist. Caller holds mu.
func (bp *BufferPool) dropFrame(f *frame) {
	delete(bp.frames, f.pageNum)
	bp.lruUnlink(f)
	f.dirty = false
	f.next = bp.free
	bp.free = f
}

// Unpin releases a pin; dirty marks the page as modified. Unpinning a page
// that is not resident, or that has no outstanding pins, is a pin-discipline
// violation: it is counted, reported as an error, and — crucially — can no
// longer lose a dirty mark silently (the old code dropped both the unpin and
// the dirty bit on the floor, which under eviction races is silent data
// loss).
func (bp *BufferPool) Unpin(pageNum int64, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[pageNum]
	if !ok {
		bp.InvariantViolations.Add(1)
		return fmt.Errorf("storage: unpin of non-resident page %d (dirty=%v): pin discipline violated", pageNum, dirty)
	}
	if f.pins <= 0 {
		bp.InvariantViolations.Add(1)
		return fmt.Errorf("storage: unpin of page %d with no outstanding pins", pageNum)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	return nil
}

// FlushAll writes every dirty page back to the file.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if _, err := bp.file.WriteAt(f.page[:], f.pageNum*PageSize); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}
