package storage

import (
	"container/list"
	"errors"
	"fmt"
	"os"
)

// BufferPool caches pages of a single file with LRU replacement. It is the
// gatekeeper for all page access: engines fetch, use, and unpin; dirty pages
// are written back on eviction or flush.
type BufferPool struct {
	file     *os.File
	capacity int
	frames   map[int64]*frame
	lru      *list.List // front = most recently used; holds *frame

	// Stats for ablation benches and tests.
	Hits, Misses, Evictions int64
}

type frame struct {
	pageNum int64
	page    Page
	dirty   bool
	pins    int
	elem    *list.Element
}

// ErrPoolExhausted means every frame is pinned and nothing can be evicted.
var ErrPoolExhausted = errors.New("storage: buffer pool exhausted (all pages pinned)")

// NewBufferPool creates a pool over file with the given frame capacity.
func NewBufferPool(file *os.File, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		file:     file,
		capacity: capacity,
		frames:   make(map[int64]*frame, capacity),
		lru:      list.New(),
	}
}

// FetchPage pins and returns the page. Callers must Unpin when done.
func (bp *BufferPool) FetchPage(pageNum int64) (*Page, error) {
	if f, ok := bp.frames[pageNum]; ok {
		bp.Hits++
		f.pins++
		bp.lru.MoveToFront(f.elem)
		return &f.page, nil
	}
	bp.Misses++
	f, err := bp.allocFrame(pageNum)
	if err != nil {
		return nil, err
	}
	if _, err := bp.file.ReadAt(f.page[:], pageNum*PageSize); err != nil {
		delete(bp.frames, pageNum)
		bp.lru.Remove(f.elem)
		return nil, fmt.Errorf("storage: read page %d: %w", pageNum, err)
	}
	return &f.page, nil
}

// NewPage appends a fresh zero page to the file, pins it, and returns it with
// its page number.
func (bp *BufferPool) NewPage() (*Page, int64, error) {
	st, err := bp.file.Stat()
	if err != nil {
		return nil, 0, err
	}
	pageNum := st.Size() / PageSize
	f, err := bp.allocFrame(pageNum)
	if err != nil {
		return nil, 0, err
	}
	InitPage(&f.page)
	f.dirty = true
	// Extend the file eagerly so Stat-based allocation stays correct.
	if err := bp.file.Truncate((pageNum + 1) * PageSize); err != nil {
		delete(bp.frames, pageNum)
		bp.lru.Remove(f.elem)
		return nil, 0, err
	}
	return &f.page, pageNum, nil
}

func (bp *BufferPool) allocFrame(pageNum int64) (*frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &frame{pageNum: pageNum, pins: 1}
	f.elem = bp.lru.PushFront(f)
	bp.frames[pageNum] = f
	return f, nil
}

func (bp *BufferPool) evictOne() error {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if _, err := bp.file.WriteAt(f.page[:], f.pageNum*PageSize); err != nil {
				return err
			}
		}
		bp.Evictions++
		bp.lru.Remove(e)
		delete(bp.frames, f.pageNum)
		return nil
	}
	return ErrPoolExhausted
}

// Unpin releases a pin; dirty marks the page as modified.
func (bp *BufferPool) Unpin(pageNum int64, dirty bool) {
	f, ok := bp.frames[pageNum]
	if !ok {
		return
	}
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
}

// FlushAll writes every dirty page back to the file.
func (bp *BufferPool) FlushAll() error {
	for _, f := range bp.frames {
		if f.dirty {
			if _, err := bp.file.WriteAt(f.page[:], f.pageNum*PageSize); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}
