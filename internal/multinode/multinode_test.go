package multinode

import (
	"context"
	"math"
	"testing"

	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/rengine"
)

func testDataset() *datagen.Dataset {
	return datagen.MustGenerate(datagen.Config{Size: datagen.Small, Scale: 0.3, Seed: 7})
}

func referenceAnswers(t *testing.T) map[engine.QueryID]*engine.Result {
	t.Helper()
	r := rengine.New()
	if err := r.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	p := engine.DefaultParams()
	p.SVDK = 5
	out := map[engine.QueryID]*engine.Result{}
	for _, q := range engine.AllQueries() {
		res, err := r.Run(context.Background(), q, p)
		if err != nil {
			t.Fatalf("reference %v: %v", q, err)
		}
		out[q] = res
	}
	return out
}

func TestAllKindsMatchReference(t *testing.T) {
	refs := referenceAnswers(t)
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()
	for _, kind := range []Kind{PBDR, ColstorePBDR, ColstoreUDF, SciDB, SciDBPhi} {
		for _, nodes := range []int{1, 2, 4} {
			e := New(kind, nodes)
			if err := e.Load(testDataset()); err != nil {
				t.Fatalf("%v/%d load: %v", kind, nodes, err)
			}
			for _, q := range engine.AllQueries() {
				got, err := e.Run(ctx, q, p)
				if err != nil {
					t.Fatalf("%v/%d %v: %v", kind, nodes, q, err)
				}
				assertAnswersClose(t, kind.String(), nodes, q, got.Answer, refs[q].Answer)
				if got.Timing.Total() <= 0 {
					t.Fatalf("%v/%d %v: no virtual time recorded", kind, nodes, q)
				}
			}
		}
	}
}

func assertAnswersClose(t *testing.T, name string, nodes int, q engine.QueryID, got, want any) {
	t.Helper()
	switch q {
	case engine.Q1Regression:
		g, w := got.(*engine.RegressionAnswer), want.(*engine.RegressionAnswer)
		if len(g.SelectedGenes) != len(w.SelectedGenes) {
			t.Fatalf("%s/%d %v: gene count", name, nodes, q)
		}
		if math.Abs(g.RSquared-w.RSquared) > 1e-6 {
			t.Fatalf("%s/%d %v: R² %v vs %v", name, nodes, q, g.RSquared, w.RSquared)
		}
	case engine.Q2Covariance:
		g, w := got.(*engine.CovarianceAnswer), want.(*engine.CovarianceAnswer)
		if math.Abs(float64(g.NumPairs-w.NumPairs)) > 2 {
			t.Fatalf("%s/%d %v: pairs %d vs %d", name, nodes, q, g.NumPairs, w.NumPairs)
		}
		if math.Abs(g.AbsCovSum-w.AbsCovSum) > 1e-6*(1+w.AbsCovSum) {
			t.Fatalf("%s/%d %v: covsum", name, nodes, q)
		}
	case engine.Q3Biclustering:
		g, w := got.(*engine.BiclusterAnswer), want.(*engine.BiclusterAnswer)
		if len(g.Blocks) != len(w.Blocks) {
			t.Fatalf("%s/%d %v: blocks %d vs %d", name, nodes, q, len(g.Blocks), len(w.Blocks))
		}
		for b := range w.Blocks {
			if len(g.Blocks[b].PatientIDs) != len(w.Blocks[b].PatientIDs) {
				t.Fatalf("%s/%d %v: block %d", name, nodes, q, b)
			}
		}
	case engine.Q4SVD:
		g, w := got.(*engine.SVDAnswer), want.(*engine.SVDAnswer)
		for i := range w.SingularValues {
			if math.Abs(g.SingularValues[i]-w.SingularValues[i]) > 1e-6*(1+w.SingularValues[0]) {
				t.Fatalf("%s/%d %v: σ[%d]", name, nodes, q, i)
			}
		}
	case engine.Q5Statistics:
		g, w := got.(*engine.StatsAnswer), want.(*engine.StatsAnswer)
		for i := range w.Terms {
			if math.Abs(g.Terms[i].Z-w.Terms[i].Z) > 1e-6 {
				t.Fatalf("%s/%d %v: term %d", name, nodes, q, i)
			}
		}
	}
}

func TestHadoopMultiNodeMatchesReference(t *testing.T) {
	refs := referenceAnswers(t)
	p := engine.DefaultParams()
	p.SVDK = 5
	ctx := context.Background()
	for _, nodes := range []int{1, 2, 4} {
		h := NewHadoop(nodes)
		if err := h.Load(testDataset()); err != nil {
			t.Fatal(err)
		}
		if h.Supports(engine.Q3Biclustering) {
			t.Fatal("multi-node Hadoop must not support biclustering")
		}
		for _, q := range []engine.QueryID{engine.Q1Regression, engine.Q2Covariance, engine.Q4SVD, engine.Q5Statistics} {
			got, err := h.Run(ctx, q, p)
			if err != nil {
				t.Fatalf("hadoop/%d %v: %v", nodes, q, err)
			}
			switch q {
			case engine.Q1Regression:
				g := got.Answer.(*engine.RegressionAnswer)
				w := refs[q].Answer.(*engine.RegressionAnswer)
				if math.Abs(g.RSquared-w.RSquared) > 1e-6 {
					t.Fatalf("hadoop/%d R² %v vs %v", nodes, g.RSquared, w.RSquared)
				}
			case engine.Q4SVD:
				g := got.Answer.(*engine.SVDAnswer)
				w := refs[q].Answer.(*engine.SVDAnswer)
				if math.Abs(g.SingularValues[0]-w.SingularValues[0]) > 1e-6*(1+w.SingularValues[0]) {
					t.Fatalf("hadoop/%d σ[0]", nodes)
				}
			}
			if got.Timing.Total() <= 0 {
				t.Fatalf("hadoop/%d %v: no virtual time", nodes, q)
			}
		}
	}
}

// Scaling shape (Figure 3a): distributed analytics shrink the virtual
// makespan as nodes grow for the compute-heavy regression, which touches
// every patient row (Q2's disease filter keeps too few rows at test scale
// for compute to dominate communication — itself a faithful miniature of the
// paper's "scalability of all systems is less than ideal").
func TestPBDRRegressionScales(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Medium, Seed: 9}) // 1000×750
	p := engine.DefaultParams()
	times := map[int]float64{}
	for _, nodes := range []int{1, 4} {
		e := New(PBDR, nodes)
		if err := e.Load(ds); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), engine.Q1Regression, p)
		if err != nil {
			t.Fatal(err)
		}
		times[nodes] = res.Timing.Total().Seconds()
	}
	if times[4] >= times[1] {
		t.Fatalf("no speedup 1→4 nodes: %v", times)
	}
}

// The UDF configuration gathers to the coordinator, so its analytics phase
// must not speed up with more nodes (Figure 4b's flat colstore+UDFs curve).
func TestColstoreUDFAnalyticsDoNotScale(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Medium, Scale: 0.3, Seed: 9})
	p := engine.DefaultParams()
	var a1, a4 float64
	for _, nodes := range []int{1, 4} {
		e := New(ColstoreUDF, nodes)
		if err := e.Load(ds); err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background(), engine.Q2Covariance, p)
		if err != nil {
			t.Fatal(err)
		}
		if nodes == 1 {
			a1 = res.Timing.Analytics.Seconds()
		} else {
			a4 = res.Timing.Analytics.Seconds()
		}
	}
	// Gathering adds communication, so 4-node analytics should be no faster
	// than ~80% of single node (in practice it is slower).
	if a4 < a1*0.8 {
		t.Fatalf("UDF analytics unexpectedly scaled: 1 node %v, 4 nodes %v", a1, a4)
	}
}

// SciDB + Phi must beat plain SciDB on analytics for the GEMM-heavy query
// (Table 1's covariance row).
func TestPhiAcceleratesCovariance(t *testing.T) {
	ds := datagen.MustGenerate(datagen.Config{Size: datagen.Medium, Seed: 9}) // 1000×750
	p := engine.DefaultParams()
	// Min of three runs per configuration: wall-clock measurement on a
	// shared single-core box is noisy, and min is the standard robust
	// estimator for benchmark comparisons.
	run := func(kind Kind) float64 {
		e := New(kind, 1)
		if err := e.Load(ds); err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			res, err := e.Run(context.Background(), engine.Q2Covariance, p)
			if err != nil {
				t.Fatal(err)
			}
			if s := res.Timing.Analytics.Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	host := run(SciDB)
	phi := run(SciDBPhi)
	speedup := host / phi
	if speedup < 1.2 || speedup > 4 {
		t.Fatalf("covariance analytics speedup %v outside the paper's band", speedup)
	}
}

func TestRunBeforeLoad(t *testing.T) {
	e := New(PBDR, 2)
	if _, err := e.Run(context.Background(), engine.Q1Regression, engine.DefaultParams()); err == nil {
		t.Fatal("expected error before load")
	}
}

// Multi-node Hadoop must attribute virtual time to both phases: Hive jobs
// (data management) and Mahout jobs (analytics) — the split Figure 4 plots.
func TestHadoopPhaseAttribution(t *testing.T) {
	h := NewHadoop(2)
	if err := h.Load(testDataset()); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(context.Background(), engine.Q1Regression, engine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.DataManagement <= 0 {
		t.Fatal("no Hive (DM) time attributed")
	}
	if res.Timing.Analytics <= 0 {
		t.Fatal("no Mahout (analytics) time attributed")
	}
}

// The SciDB redistribution cost must vanish at one node and appear at two —
// the mechanism behind the paper's 1→2-node regression.
func TestSciDBRedistributionCharged(t *testing.T) {
	ds := testDataset()
	oneNode := New(SciDB, 1)
	twoNode := New(SciDB, 2)
	if err := oneNode.Load(ds); err != nil {
		t.Fatal(err)
	}
	if err := twoNode.Load(ds); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := oneNode.Run(ctx, engine.Q2Covariance, engine.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if oneNode.Cluster().BytesSent != 0 {
		t.Fatal("single node must not use the network")
	}
	if _, err := twoNode.Run(ctx, engine.Q2Covariance, engine.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if twoNode.Cluster().BytesSent == 0 {
		t.Fatal("two nodes must pay redistribution traffic")
	}
}
