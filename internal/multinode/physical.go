package multinode

import (
	"context"
	"fmt"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
)

// exec is one query's physical executor: the engine's sixth-family
// plan.Physical implementation over distlinalg.DistMatrix shards, plus the
// plan.Timekeeper that replaces the executor's wall-clock StopWatch with the
// virtual cluster's makespan. It is created per Run with a fresh virtual
// cluster, so concurrent queries never share mutable state — the loaded
// shards and replicated metadata are read-only.
type exec struct {
	e        *Engine
	c        *cluster.Cluster
	replicas [][]int // shard → candidate nodes in failover order (first = primary)

	// Virtual-time phase attribution: all makespan growth between marks is
	// credited to the bucket current at the time (plan.Timekeeper). There is
	// no transfer bucket — the hand-coded path reported Transfer as zero
	// too: the coprocessor's modeled PCIe time is charged to the owner
	// node's clock inside the kernel window and therefore lands in
	// analytics, exactly as before.
	cur           *float64
	dm, analytics float64
	discard       float64
	lastMark      float64
}

func (e *Engine) newExec() *exec {
	cfg := cluster.DefaultConfig(e.nodes)
	cfg.Injector = e.injector
	cfg.ReplicationFactor = e.replication
	c := cluster.New(cfg)
	x := &exec{e: e, c: c,
		replicas: distlinalg.ReplicaPlacement(e.shards, c.Nodes(), c.ReplicationFactor())}
	x.cur = &x.discard
	return x
}

// --- plan.Timekeeper ---

// markTo attributes makespan growth since the previous mark to the current
// bucket, then switches buckets.
func (x *exec) markTo(bucket *float64) {
	now := x.c.MakespanSeconds()
	*x.cur += now - x.lastMark
	x.lastMark = now
	x.cur = bucket
}

// MarkDM implements plan.Timekeeper.
func (x *exec) MarkDM() { x.markTo(&x.dm) }

// markAnalytics is called by the kernel operators at their compute boundary
// (mirroring StopWatch.StartAnalytics inside the single-node kernels).
func (x *exec) markAnalytics() { x.markTo(&x.analytics) }

// MarkDone implements plan.Timekeeper.
func (x *exec) MarkDone() { x.markTo(&x.discard) }

// ExecLocal implements plan.Timekeeper: executor-resident steps (the shared
// TopKByAbs covariance summary) run on the coordinator's clock, as they did
// when the engines hand-coded them — failing the role over if the
// coordinator dies.
func (x *exec) ExecLocal(fn func() error) error { return x.c.ExecCoordinator(fn) }

// QueryTiming implements plan.Timekeeper.
func (x *exec) QueryTiming() engine.Timing {
	x.markTo(&x.discard)
	return engine.Timing{
		DataManagement: secToDur(x.dm),
		Analytics:      secToDur(x.analytics),
	}
}

// execShards runs fn once per shard through the fault-tolerant shard
// scheduler (distlinalg.RunShards): primaries first, failover to replicas
// when nodes die, straggler shards hedged. fn must write disjoint per-shard
// slots and be idempotent per shard (a failover re-execution rewrites the
// slot with the same bits).
func (x *exec) execShards(fn func(s int) error) error {
	return distlinalg.RunShards(context.Background(), x.c, x.replicas, fn)
}

// --- plan.Physical data management ---

// Name implements plan.Physical.
func (x *exec) Name() string { return x.e.kind.String() }

// Capabilities implements plan.Physical.
func (x *exec) Capabilities() plan.OpSet { return x.e.Capabilities() }

// Dims implements plan.Physical.
func (x *exec) Dims() (int, int) { return x.e.numPats, x.e.numGenes }

// SelectIDs implements plan.Physical. Patient predicates push down to the
// shards: every owner node scans its own patient range over the replicated
// metadata, so cohort selection runs node-local instead of gathering rows to
// the coordinator, and the concatenation of the ascending per-shard lists is
// the ascending global selection. Gene predicates scan the (tiny, replicated)
// gene metadata on the coordinator, as the pre-plan code did.
func (x *exec) SelectIDs(ctx context.Context, table string, preds []plan.Pred) ([]int64, error) {
	e := x.e
	switch table {
	case plan.TablePatients:
		cols := make([][]int64, len(preds))
		for i, p := range preds {
			switch p.Col {
			case plan.ColAge:
				cols[i] = e.age
			case plan.ColGender:
				cols[i] = e.gender
			case plan.ColDiseaseID:
				cols[i] = e.disease
			default:
				return nil, fmt.Errorf("multinode: no patients column %q", p.Col)
			}
		}
		pred := func(pid int) bool {
			for i, p := range preds {
				if !p.Eval(cols[i][pid]) {
					return false
				}
			}
			return true
		}
		locals := make([][]int64, e.shards)
		if err := x.execShards(func(s int) error {
			if err := engine.CheckCtx(ctx); err != nil {
				return err
			}
			locals[s] = e.localPatients(s, pred)
			return nil
		}); err != nil {
			return nil, err
		}
		var out []int64
		for _, l := range locals {
			out = append(out, l...)
		}
		return out, nil

	case plan.TableGenes:
		var out []int64
		for g, f := range e.function {
			ok := true
			for _, p := range preds {
				if p.Col != plan.ColFunction {
					return nil, fmt.Errorf("multinode: no genes column %q", p.Col)
				}
				if !p.Eval(f) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, int64(g))
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("multinode: no physical select over table %q", table)
	}
}

// ScanFloats implements plan.Physical over the replicated drug-response
// vector; a cohort subset aligns with the given ids.
func (x *exec) ScanFloats(_ context.Context, table, col string, ids []int64) ([]float64, error) {
	if table != plan.TablePatients || col != plan.ColDrugResponse {
		return nil, fmt.Errorf("multinode: no physical scan for %s.%s", table, col)
	}
	if ids == nil {
		return x.e.drugResponse, nil
	}
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = x.e.drugResponse[id]
	}
	return out, nil
}

// Pivot implements plan.Physical: the selected patient ids split at the
// shard boundaries and every owner node pivots its shard locally (filter +
// restructure, concurrently across nodes when the host has spare cores); the
// row blocks wrap into a DistMatrix without any scatter, since the data was
// loaded partitioned.
func (x *exec) Pivot(ctx context.Context, patientIDs, geneIDs []int64) (*distlinalg.DistMatrix, error) {
	e := x.e
	genes := geneIDs
	if genes == nil {
		genes = allGeneIDs(e.numGenes)
	}
	var perShard [][]int64
	if patientIDs == nil {
		perShard = make([][]int64, e.shards)
		for s := range perShard {
			perShard[s] = e.localPatients(s, func(int) bool { return true })
		}
	} else {
		perShard = distlinalg.SplitIDsByBlock(e.starts, patientIDs)
	}
	parts := make([]*linalg.Matrix, e.shards)
	if err := x.execShards(func(s int) error {
		// Checked per shard so cancellation is honored between (or during
		// concurrent) per-shard pivots.
		if err := engine.CheckCtx(ctx); err != nil {
			return err
		}
		parts[s] = e.localPivot(s, perShard[s], genes)
		return nil
	}); err != nil {
		return nil, err
	}
	x.c.Barrier()
	return distlinalg.FromParts(x.c, parts), nil
}

// SampleMeans implements plan.Physical: per-shard partial sums over each
// shard's sampled patients (Q5's fused filter+aggregate), gathered to the
// coordinator and combined in shard order — bitwise identical at any node
// count.
func (x *exec) SampleMeans(ctx context.Context, step int) ([]float64, int, error) {
	e := x.e
	partials := make([][]float64, e.shards)
	if err := x.execShards(func(s int) error {
		if err := engine.CheckCtx(ctx); err != nil {
			return err
		}
		local := e.localPatients(s, func(pid int) bool { return pid%step == 0 })
		m := e.localPivot(s, local, allGeneIDs(e.numGenes))
		sums := make([]float64, e.numGenes)
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for j, v := range row {
				sums[j] += v
			}
		}
		partials[s] = sums
		return nil
	}); err != nil {
		return nil, 0, err
	}
	x.c.Gather(x.c.Coordinator(), int64(e.numGenes)*8)
	sampled := (e.numPats + step - 1) / step
	var means []float64
	if err := x.c.ExecCoordinator(func() error {
		// Allocated inside so a coordinator failover re-execution stays
		// idempotent (the sums and the divide both restart from zero).
		means = make([]float64, e.numGenes)
		for _, part := range partials {
			for j, v := range part {
				means[j] += v
			}
		}
		for j := range means {
			means[j] /= float64(sampled)
		}
		return nil
	}); err != nil {
		return nil, 0, err
	}
	x.c.Barrier()
	return means, sampled, nil
}

// GOMembers implements plan.Physical: group the replicated GO membership by
// term on the coordinator.
func (x *exec) GOMembers(_ context.Context) ([][]int32, error) {
	e := x.e
	members := make([][]int32, e.numTerms)
	for g := 0; g < e.numGenes; g++ {
		row := e.goArr[g*e.numTerms : (g+1)*e.numTerms]
		for t, b := range row {
			if b == 1 {
				members[t] = append(members[t], int32(g))
			}
		}
	}
	return members, nil
}

// GeneMeta implements plan.Physical over the replicated function column.
func (x *exec) GeneMeta(_ context.Context) (engine.GeneMeta, error) {
	return funcLookup{x.e.function}, nil
}

// PhysicalName implements plan.Physical (delegating to the engine, which
// serves plan.Describer for explains without building a query executor).
func (x *exec) PhysicalName(k plan.OpKind) string { return x.e.PhysicalName(k) }

// PhysicalName implements plan.Describer: the partitioned physical
// implementations of this configuration.
func (e *Engine) PhysicalName(k plan.OpKind) string {
	colstoreKind := e.kind == ColstorePBDR || e.kind == ColstoreUDF
	switch k {
	case plan.OpSelectPred:
		return "shard-local scan over replicated metadata"
	case plan.OpScanTable:
		return "replicated metadata projection"
	case plan.OpSamplePatients:
		return "patient-id modulus"
	case plan.OpPivotMicro:
		if colstoreKind {
			return "per-shard selection-vector pivot to row blocks"
		}
		return "per-shard dense-block pivot to row blocks"
	case plan.OpKernelRegression, plan.OpKernelCovariance, plan.OpKernelSVD:
		switch e.kind {
		case ColstoreUDF:
			return "gather-to-coordinator UDF kernel"
		case SciDB:
			return "block-cyclic redistribute + distributed ScaLAPACK kernel"
		case SciDBPhi:
			return "block-cyclic redistribute + per-shard Phi-offloaded kernel"
		default:
			return "distributed ScaLAPACK kernel (per-shard partials + reduce)"
		}
	case plan.OpKernelBicluster:
		return "gather-to-coordinator Cheng-Church"
	case plan.OpKernelStats:
		return "per-shard sample aggregate + coordinator rank kernel"
	case plan.OpTopKByAbs:
		return "shared covariance summary on the coordinator"
	case plan.OpEmit:
		return "answer assembly"
	default:
		return "unsupported"
	}
}
