// Package multinode implements the paper's multi-node configurations
// (§4.2, Figures 3–4): pbdR, column store + pbdR, column store + UDFs,
// SciDB, SciDB + Xeon Phi, and Hadoop, each running over the virtual
// cluster. Data is partitioned by patient into fixed numeric shards (row
// blocks) at load time; each query places the shards onto that run's virtual
// nodes, runs data management shard-local, and runs analytics through the
// distributed linear algebra layer (ScaLAPACK analog) or, where a
// configuration lacks one, by gathering to the coordinator. Reported timings
// are virtual makespans (see internal/cluster).
//
// Since the plan layer's sixth family landed here, the engines contain no
// query code: they register partitioned physical operators (plan.Physical
// over distlinalg.DistMatrix shards) and the generic executor in
// internal/plan drives every query — including planner-only scenarios like
// Q6 — from the same compiled IR the single-node engines execute.
//
// Because the shard partition is fixed (distlinalg.DefaultNumericShards)
// and every reduction combines per-shard partials in shard order, answers
// are bitwise identical at any node count; node count only moves shards
// between virtual clocks (DESIGN.md §13). Each query runs on its own
// virtual cluster, so the engines satisfy the engine.Engine concurrency
// contract and can be served concurrently through internal/serve.
package multinode

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/colstore"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/plan"
	"github.com/genbase/genbase/internal/xeonphi"
)

// Kind names a multi-node configuration.
type Kind int

// The multi-node systems of Figures 3–5.
const (
	PBDR Kind = iota
	ColstorePBDR
	ColstoreUDF
	SciDB
	SciDBPhi
)

func (k Kind) String() string {
	switch k {
	case PBDR:
		return "pbdr"
	case ColstorePBDR:
		return "colstore-pbdr"
	case ColstoreUDF:
		return "colstore-udf"
	case SciDB:
		return "scidb"
	case SciDBPhi:
		return "scidb-phi"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds lists the five virtual-cluster configurations.
func AllKinds() []Kind { return []Kind{PBDR, ColstorePBDR, ColstoreUDF, SciDB, SciDBPhi} }

// Engine is a multi-node system under test. Loaded state is read-only after
// Load; every Run executes on its own virtual cluster, so concurrent queries
// are safe (DESIGN.md §11, §13).
type Engine struct {
	kind   Kind
	nodes  int
	shards int             // numeric shard count (fixed per engine at Load)
	dev    *xeonphi.Device // SciDBPhi only (stateless rate model, shareable)

	// Row-partitioned expression data: shard s owns patients
	// [starts[s], starts[s+1]).
	starts []int
	blocks []*linalg.Matrix  // dense shard blocks (pbdr, scidb kinds)
	cols   []*colstore.Table // per-shard micro columns (colstore kinds)

	// Replicated small metadata (each node has a copy, as pbdR does).
	age, gender, disease []int64
	drugResponse         []float64
	function             []int64
	goArr                []uint8

	numPats, numGenes, numTerms int

	// Fault drill configuration (set before serving; read-only during Runs).
	injector    cluster.Injector // deterministic fault plan (nil = fault-free)
	replication int              // shard replication factor (0/1 = none)

	// lastC is the virtual cluster of the most recently completed Run, kept
	// for the network-ablation benches and tests that inspect traffic stats.
	lastC atomic.Pointer[cluster.Cluster]
}

// New creates a multi-node engine with the given cluster size and the
// default numeric shard count.
func New(kind Kind, nodes int) *Engine {
	if nodes < 1 {
		nodes = 1
	}
	e := &Engine{kind: kind, nodes: nodes, shards: distlinalg.DefaultNumericShards}
	if kind == SciDBPhi {
		e.dev = xeonphi.NewDevice5110P()
	}
	return e
}

// SetShards overrides the numeric shard count (call before Load). The
// default — distlinalg.DefaultNumericShards — keeps answers bitwise
// identical at every node count and to the pre-plan 4-node partitioning;
// the >4-node scaling extensions raise it to the node count so per-node
// compute keeps shrinking, accepting a different (still deterministic)
// shard partition.
func (e *Engine) SetShards(s int) {
	if s < 1 {
		s = 1
	}
	e.shards = s
}

// Nodes returns the configured cluster size.
func (e *Engine) Nodes() int { return e.nodes }

// SetFaults installs a deterministic fault injector (internal/faults.Plan)
// consulted by every subsequent Run's virtual cluster. Nil restores
// fault-free execution. Call before serving begins: the field is read-only
// during Runs, matching the engine concurrency contract.
func (e *Engine) SetFaults(inj cluster.Injector) { e.injector = inj }

// SetReplication sets the shard replication factor for subsequent Runs
// (clamped to the node count by the cluster; ≤1 disables replication). With
// a factor of 2 every single-node crash schedule leaves each shard a live
// replica, so fault drills complete with bitwise-identical answers.
func (e *Engine) SetReplication(factor int) { e.replication = factor }

// Cluster exposes the virtual cluster of the most recent completed Run (for
// the network ablation bench and traffic assertions). Before any Run it
// returns an idle cluster of the configured size.
func (e *Engine) Cluster() *cluster.Cluster {
	if c := e.lastC.Load(); c != nil {
		return c
	}
	return cluster.New(cluster.DefaultConfig(e.nodes))
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.kind.String() }

// Capabilities implements plan.Describer: every virtual-cluster
// configuration registers the full operator vocabulary — distributed kernels
// where the configuration has a distributed runtime, gather-to-coordinator
// fallbacks where it does not — so Supports is derived, not hardcoded, and
// planner-only scenarios run here with zero engine code.
func (e *Engine) Capabilities() plan.OpSet { return plan.AllOps() }

// Supports implements engine.Engine, derived from the registered physical
// operators exactly like the single-node engines.
func (e *Engine) Supports(q engine.QueryID) bool { return plan.Supports(e.Capabilities(), q) }

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Load implements engine.Engine: partitions by patient into the numeric
// shards, replicates metadata.
func (e *Engine) Load(ds *datagen.Dataset) error {
	p, g := ds.Dims.Patients, ds.Dims.Genes
	e.starts = distlinalg.PartitionRows(p, e.shards)
	e.numPats, e.numGenes, e.numTerms = p, g, ds.Dims.GOTerms

	switch e.kind {
	case ColstorePBDR, ColstoreUDF:
		e.cols = nil
		for s := 0; s < e.shards; s++ {
			lo, hi := e.starts[s], e.starts[s+1]
			rows := (hi - lo) * g
			geneCol := make([]int64, 0, rows)
			patCol := make([]int64, 0, rows)
			valCol := make([]float64, 0, rows)
			for pi := lo; pi < hi; pi++ {
				row := ds.Expression.Row(pi)
				for gi, v := range row {
					geneCol = append(geneCol, int64(gi))
					patCol = append(patCol, int64(pi))
					valCol = append(valCol, v)
				}
			}
			t := colstore.NewTable(fmt.Sprintf("micro-%d", s), rows).
				AddInt("geneid", geneCol).AddInt("patientid", patCol).AddFloat("value", valCol)
			e.cols = append(e.cols, t)
		}
	default:
		e.blocks = nil
		for s := 0; s < e.shards; s++ {
			lo, hi := e.starts[s], e.starts[s+1]
			blk := linalg.NewMatrix(hi-lo, g)
			for pi := lo; pi < hi; pi++ {
				copy(blk.Row(pi-lo), ds.Expression.Row(pi))
			}
			e.blocks = append(e.blocks, blk)
		}
	}

	e.age = make([]int64, p)
	e.gender = make([]int64, p)
	e.disease = make([]int64, p)
	e.drugResponse = make([]float64, p)
	for i, pt := range ds.Patients {
		e.age[i] = int64(pt.Age)
		e.gender[i] = int64(pt.Gender)
		e.disease[i] = int64(pt.DiseaseID)
		e.drugResponse[i] = pt.DrugResponse
	}
	e.function = make([]int64, g)
	for i, gn := range ds.Genes {
		e.function[i] = int64(gn.Function)
	}
	e.goArr = make([]uint8, len(ds.GO))
	copy(e.goArr, ds.GO)
	return nil
}

// Run implements engine.Engine: compile the query into the shared operator
// IR and execute it against this configuration's partitioned physical
// operators on a fresh per-query virtual cluster. Timing is the virtual
// makespan, split at the plan's phase boundaries.
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.starts == nil {
		return nil, fmt.Errorf("multinode: not loaded")
	}
	pl, err := plan.Compile(q, p)
	if err != nil {
		return nil, err
	}
	x := e.newExec()
	res, err := plan.Execute[*distlinalg.DistMatrix](ctx, x, pl)
	e.lastC.Store(x.c)
	if res != nil {
		res.Degraded = x.c.Degraded()
	}
	return res, err
}

func secToDur(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * 1e9)
}

// --- shard-local data management (per shard, executed under the owner
// node's virtual clock) ---

// localPivot extracts the shard's block restricted to the given global
// patients (within the shard's range) and gene columns.
func (e *Engine) localPivot(shard int, patients []int64, genes []int64) *linalg.Matrix {
	lo := e.starts[shard]
	if e.cols != nil {
		// Column-store path: selection vectors over compressed columns.
		t := e.cols[shard]
		patIdx := make(map[int64]int, len(patients))
		for i, id := range patients {
			patIdx[id] = i
		}
		geneIdx := make([]int32, e.numGenes)
		for i := range geneIdx {
			geneIdx[i] = -1
		}
		for i, id := range genes {
			geneIdx[id] = int32(i)
		}
		sel := t.Int("patientid").Select(func(v int64) bool { _, ok := patIdx[v]; return ok }, nil)
		if len(genes) < e.numGenes {
			sel = t.Int("geneid").SelectRefine(func(v int64) bool { return geneIdx[v] >= 0 }, sel)
		}
		m := linalg.NewMatrix(len(patients), len(genes))
		gc, pc := t.Int("geneid"), t.Int("patientid")
		vals := t.Float("value")
		for _, i := range sel {
			pi := patIdx[pc.At(int(i))]
			gi := geneIdx[gc.At(int(i))]
			m.Set(pi, int(gi), vals[i])
		}
		return m
	}
	// Dense-block path (pbdR data frames / SciDB subarray).
	blk := e.blocks[shard]
	m := linalg.NewMatrix(len(patients), len(genes))
	for k, pid := range patients {
		src := blk.Row(int(pid) - lo)
		dst := m.Row(k)
		for j, g := range genes {
			dst[j] = src[g]
		}
	}
	return m
}

// localPatients returns the shard's patients passing pred, ascending.
func (e *Engine) localPatients(shard int, pred func(pid int) bool) []int64 {
	var out []int64
	for pid := e.starts[shard]; pid < e.starts[shard+1]; pid++ {
		if pred(pid) {
			out = append(out, int64(pid))
		}
	}
	return out
}

func allGeneIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }
