// Package multinode implements the paper's multi-node configurations
// (§4.2, Figures 3–4): pbdR, column store + pbdR, column store + UDFs,
// SciDB, SciDB + Xeon Phi, and Hadoop, each running over the virtual
// cluster. Data is partitioned by patient (row blocks) at load time; data
// management runs locally per node; analytics run through the distributed
// linear algebra layer (ScaLAPACK analog) or, where a configuration lacks
// one, by gathering to the coordinator. Reported timings are virtual
// makespans (see internal/cluster).
package multinode

import (
	"context"
	"fmt"
	"time"

	"github.com/genbase/genbase/internal/cluster"
	"github.com/genbase/genbase/internal/colstore"
	"github.com/genbase/genbase/internal/datagen"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/xeonphi"
)

// Kind names a multi-node configuration.
type Kind int

// The multi-node systems of Figures 3–5.
const (
	PBDR Kind = iota
	ColstorePBDR
	ColstoreUDF
	SciDB
	SciDBPhi
)

func (k Kind) String() string {
	switch k {
	case PBDR:
		return "pbdr"
	case ColstorePBDR:
		return "colstore-pbdr"
	case ColstoreUDF:
		return "colstore-udf"
	case SciDB:
		return "scidb"
	case SciDBPhi:
		return "scidb-phi"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Engine is a multi-node system under test.
type Engine struct {
	kind Kind
	c    *cluster.Cluster
	dev  *xeonphi.Device // SciDBPhi only

	// Row-partitioned expression data: node i owns patients
	// [starts[i], starts[i+1]).
	starts []int
	blocks []*linalg.Matrix  // dense blocks (pbdr, scidb kinds)
	cols   []*colstore.Table // per-node micro columns (colstore kinds)

	// Replicated small metadata (each node has a copy, as pbdR does).
	age, gender, disease []int64
	drugResponse         []float64
	function             []int64
	goArr                []uint8

	numPats, numGenes, numTerms int
}

// New creates a multi-node engine with the given cluster size.
func New(kind Kind, nodes int) *Engine {
	e := &Engine{kind: kind, c: cluster.New(cluster.DefaultConfig(nodes))}
	if kind == SciDBPhi {
		e.dev = xeonphi.NewDevice5110P()
	}
	return e
}

// Cluster exposes the virtual cluster (for the network ablation bench).
func (e *Engine) Cluster() *cluster.Cluster { return e.c }

// Name implements engine.Engine.
func (e *Engine) Name() string { return e.kind.String() }

// Supports implements engine.Engine: these configurations run the paper's
// five queries (Hadoop, which does not, wraps the mapreduce engine
// separately). The virtual-cluster engines predate the plan layer and keep
// hardcoded query methods, so planner-only scenarios (Q6+) are not theirs
// to claim — Supports must agree with Run's switch.
func (e *Engine) Supports(q engine.QueryID) bool {
	return q >= engine.Q1Regression && q <= engine.Q5Statistics
}

// Close implements engine.Engine.
func (e *Engine) Close() error { return nil }

// Load implements engine.Engine: partitions by patient, replicates metadata.
func (e *Engine) Load(ds *datagen.Dataset) error {
	p, g := ds.Dims.Patients, ds.Dims.Genes
	e.starts = e.c.Partition(p)
	e.numPats, e.numGenes, e.numTerms = p, g, ds.Dims.GOTerms

	switch e.kind {
	case ColstorePBDR, ColstoreUDF:
		e.cols = nil
		for n := 0; n < e.c.Nodes(); n++ {
			lo, hi := e.starts[n], e.starts[n+1]
			rows := (hi - lo) * g
			geneCol := make([]int64, 0, rows)
			patCol := make([]int64, 0, rows)
			valCol := make([]float64, 0, rows)
			for pi := lo; pi < hi; pi++ {
				row := ds.Expression.Row(pi)
				for gi, v := range row {
					geneCol = append(geneCol, int64(gi))
					patCol = append(patCol, int64(pi))
					valCol = append(valCol, v)
				}
			}
			t := colstore.NewTable(fmt.Sprintf("micro-%d", n), rows).
				AddInt("geneid", geneCol).AddInt("patientid", patCol).AddFloat("value", valCol)
			e.cols = append(e.cols, t)
		}
	default:
		e.blocks = nil
		for n := 0; n < e.c.Nodes(); n++ {
			lo, hi := e.starts[n], e.starts[n+1]
			blk := linalg.NewMatrix(hi-lo, g)
			for pi := lo; pi < hi; pi++ {
				copy(blk.Row(pi-lo), ds.Expression.Row(pi))
			}
			e.blocks = append(e.blocks, blk)
		}
	}

	e.age = make([]int64, p)
	e.gender = make([]int64, p)
	e.disease = make([]int64, p)
	e.drugResponse = make([]float64, p)
	for i, pt := range ds.Patients {
		e.age[i] = int64(pt.Age)
		e.gender[i] = int64(pt.Gender)
		e.disease[i] = int64(pt.DiseaseID)
		e.drugResponse[i] = pt.DrugResponse
	}
	e.function = make([]int64, g)
	for i, gn := range ds.Genes {
		e.function[i] = int64(gn.Function)
	}
	e.goArr = make([]uint8, len(ds.GO))
	copy(e.goArr, ds.GO)
	return nil
}

// Run implements engine.Engine. Timing is the virtual makespan, split at the
// DM/analytics boundary.
func (e *Engine) Run(ctx context.Context, q engine.QueryID, p engine.Params) (*engine.Result, error) {
	if e.starts == nil {
		return nil, fmt.Errorf("multinode: not loaded")
	}
	// The virtual-cluster engines keep hardcoded query methods (no plan
	// compile), so apply the admission point the plan layer gives the
	// single-node engines for free.
	if err := p.Validate(q); err != nil {
		return nil, err
	}
	e.c.Reset()
	var ans any
	var dmSeconds float64
	var err error
	switch q {
	case engine.Q1Regression:
		ans, dmSeconds, err = e.regression(ctx, p)
	case engine.Q2Covariance:
		ans, dmSeconds, err = e.covariance(ctx, p)
	case engine.Q3Biclustering:
		ans, dmSeconds, err = e.biclustering(ctx, p)
	case engine.Q4SVD:
		ans, dmSeconds, err = e.svd(ctx, p)
	case engine.Q5Statistics:
		ans, dmSeconds, err = e.statistics(ctx, p)
	default:
		return nil, engine.ErrUnsupported
	}
	if err != nil {
		return nil, err
	}
	total := e.c.MakespanSeconds()
	return &engine.Result{
		Query: q,
		Timing: engine.Timing{
			DataManagement: secToDur(dmSeconds),
			Analytics:      secToDur(total - dmSeconds),
		},
		Answer: ans,
	}, nil
}

func secToDur(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * 1e9)
}

// --- local data-management helpers (per node, executed under Exec) ---

// localPivot extracts the node's block restricted to the given global
// patients (within this node's range) and gene columns.
func (e *Engine) localPivot(node int, patients []int64, genes []int64) *linalg.Matrix {
	lo := e.starts[node]
	if e.cols != nil {
		// Column-store path: selection vectors over compressed columns.
		t := e.cols[node]
		patIdx := make(map[int64]int, len(patients))
		for i, id := range patients {
			patIdx[id] = i
		}
		geneIdx := make([]int32, e.numGenes)
		for i := range geneIdx {
			geneIdx[i] = -1
		}
		for i, id := range genes {
			geneIdx[id] = int32(i)
		}
		sel := t.Int("patientid").Select(func(v int64) bool { _, ok := patIdx[v]; return ok }, nil)
		if len(genes) < e.numGenes {
			sel = t.Int("geneid").SelectRefine(func(v int64) bool { return geneIdx[v] >= 0 }, sel)
		}
		m := linalg.NewMatrix(len(patients), len(genes))
		gc, pc := t.Int("geneid"), t.Int("patientid")
		vals := t.Float("value")
		for _, i := range sel {
			pi := patIdx[pc.At(int(i))]
			gi := geneIdx[gc.At(int(i))]
			m.Set(pi, int(gi), vals[i])
		}
		return m
	}
	// Dense-block path (pbdR data frames / SciDB subarray).
	blk := e.blocks[node]
	m := linalg.NewMatrix(len(patients), len(genes))
	for k, pid := range patients {
		src := blk.Row(int(pid) - lo)
		dst := m.Row(k)
		for j, g := range genes {
			dst[j] = src[g]
		}
	}
	return m
}

// localPatients returns the node's patients passing pred, ascending.
func (e *Engine) localPatients(node int, pred func(pid int) bool) []int64 {
	var out []int64
	for pid := e.starts[node]; pid < e.starts[node+1]; pid++ {
		if pred(pid) {
			out = append(out, int64(pid))
		}
	}
	return out
}

func (e *Engine) selectGenes(thr int64) []int64 {
	var out []int64
	for g, f := range e.function {
		if f < thr {
			out = append(out, int64(g))
		}
	}
	return out
}

func allGeneIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// buildDistMatrix runs the local DM on every node (filter + pivot,
// concurrently across nodes when the host has spare cores) and wraps the
// blocks as a distributed matrix. Returns the selected patients in global
// order.
func (e *Engine) buildDistMatrix(ctx context.Context, pred func(pid int) bool, genes []int64) (*distlinalg.DistMatrix, []int64, error) {
	parts := make([]*linalg.Matrix, e.c.Nodes())
	locals := make([][]int64, e.c.Nodes())
	if err := e.c.ExecAll(func(n int) error {
		// Checked per node so cancellation is honored between (or during
		// concurrent) per-node pivots, as the old sequential loop did.
		if err := engine.CheckCtx(ctx); err != nil {
			return err
		}
		locals[n] = e.localPatients(n, pred)
		parts[n] = e.localPivot(n, locals[n], genes)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	var allPatients []int64
	for _, local := range locals {
		allPatients = append(allPatients, local...)
	}
	e.c.Barrier()
	return distlinalg.FromParts(e.c, parts), allPatients, nil
}

// redistribute charges SciDB's chunk→block-cyclic repartitioning before a
// ScaLAPACK call: an all-to-all exchange of the matrix. This is the data
// movement behind the paper's observation that "SciDB often has worse
// performance on two nodes than on one".
func (e *Engine) redistribute(d *distlinalg.DistMatrix) {
	if e.c.Nodes() < 2 {
		return
	}
	total := int64(d.Rows()) * int64(d.Cols) * 8
	pairs := int64(e.c.Nodes()) * int64(e.c.Nodes())
	e.c.AllToAll(total / pairs)
}

// execKernel runs an analytics kernel on a node, at host rate or on the
// node's coprocessor (SciDBPhi). Both paths measure the (idempotent) kernel
// with xeonphi.MeasureKernel so host/device speedup ratios are stable even
// for sub-millisecond kernels.
func (e *Engine) execKernel(node int, kind string, inBytes, outBytes int64, fn func() error) error {
	if e.dev == nil {
		measured, err := xeonphi.MeasureKernel(fn)
		if err != nil {
			return err
		}
		e.c.Charge(node, measured)
		return nil
	}
	compute, transfer, err := e.dev.Offload(context.Background(), kind, inBytes, outBytes, fn)
	if err != nil {
		return err
	}
	e.c.Charge(node, compute+transfer)
	return nil
}

type funcLookup struct{ fns []int64 }

func (f funcLookup) FunctionOf(g int) int64 { return f.fns[g] }
