package multinode

import (
	"context"
	"fmt"
	"math"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/xeonphi"
)

// biclusterRun applies the shared Cheng–Church options so multi-node answers
// match the single-node engines exactly.
func biclusterRun(x *linalg.Matrix, p engine.Params) ([]bicluster.Bicluster, error) {
	return bicluster.Run(x, bicluster.Options{MaxBiclusters: p.MaxBiclusters, Seed: p.Seed})
}

func sqrt(v float64) float64 { return math.Sqrt(v) }

// Each query returns (answer, dmSeconds): dmSeconds is the virtual makespan
// at the end of the data-management phase; the caller derives analytics time
// from the final makespan.

func (e *Engine) regression(ctx context.Context, p engine.Params) (any, float64, error) {
	genes := e.selectGenes(p.FunctionThreshold)
	if len(genes) == 0 {
		return nil, 0, fmt.Errorf("multinode: no genes pass function < %d", p.FunctionThreshold)
	}
	d, pats, err := e.buildDistMatrix(ctx, func(int) bool { return true }, genes)
	if err != nil {
		return nil, 0, err
	}
	dm := e.c.MakespanSeconds()

	y := make([]float64, len(pats))
	for i, pid := range pats {
		y[i] = e.drugResponse[pid]
	}

	var fit *linalg.LeastSquaresResult
	switch e.kind {
	case ColstoreUDF:
		// No distributed analytics runtime: gather to the coordinator and
		// call the UDF there. Analytics do not scale with nodes.
		x := d.Gather()
		err = e.c.Exec(0, func() error {
			var kerr error
			fit, kerr = linalg.LeastSquares(linalg.AddInterceptColumn(x), y)
			return kerr
		})
	default:
		// pbdR / ScaLAPACK distributed least squares. SciDB repartitions its
		// chunks into the block-cyclic layout first. Regression never
		// offloads to the Phi (MKL auto-offload unsupported, §5.2).
		if e.kind == SciDB || e.kind == SciDBPhi {
			e.redistribute(d)
		}
		fit, err = interceptParts(d).LeastSquares(y)
	}
	if err != nil {
		return nil, 0, err
	}

	sel := make([]int, len(genes))
	for i, g := range genes {
		sel[i] = int(g)
	}
	return &engine.RegressionAnswer{
		Coefficients:  fit.Coefficients,
		RSquared:      fit.RSquared,
		SelectedGenes: sel,
		NumPatients:   e.numPats,
	}, dm, nil
}

// interceptParts prepends an all-ones column to every block of d.
func interceptParts(d *distlinalg.DistMatrix) *distlinalg.DistMatrix {
	parts := make([]*linalg.Matrix, len(d.Parts))
	for i, p := range d.Parts {
		parts[i] = linalg.AddInterceptColumn(p)
	}
	return distlinalg.FromParts(d.C, parts)
}

func (e *Engine) covariance(ctx context.Context, p engine.Params) (any, float64, error) {
	d, pats, err := e.buildDistMatrix(ctx, func(pid int) bool { return e.disease[pid] == p.DiseaseID }, allGeneIDs(e.numGenes))
	if err != nil {
		return nil, 0, err
	}
	if len(pats) < 2 {
		return nil, 0, fmt.Errorf("multinode: fewer than two patients with disease %d", p.DiseaseID)
	}
	dm := e.c.MakespanSeconds()

	var cov *linalg.Matrix
	switch e.kind {
	case ColstoreUDF:
		x := d.Gather()
		err = e.c.Exec(0, func() error {
			// One worker: the coordinator models a single virtual node.
			cov = linalg.CovarianceP(x, 1)
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
	default:
		if e.kind == SciDB || e.kind == SciDBPhi {
			e.redistribute(d)
		}
		if e.dev != nil {
			cov, err = e.phiCovariance(d)
		} else {
			cov, err = d.Covariance()
		}
		if err != nil {
			return nil, 0, err
		}
	}

	// The metadata join (Q2 step 4) is data management on the coordinator:
	// attribute its makespan growth back to the DM total, as the single-node
	// engines do.
	afterKernel := e.c.MakespanSeconds()
	var ans *engine.CovarianceAnswer
	if err := e.c.Exec(0, func() error {
		ans = engine.SummarizeCovariance(cov, p.CovarianceTopFrac, funcLookup{e.function}, len(pats))
		return nil
	}); err != nil {
		return nil, 0, err
	}
	dm += e.c.MakespanSeconds() - afterKernel
	return ans, dm, nil
}

// phiCovariance mirrors distlinalg.Covariance but charges each node's gram
// kernel at the device rate (pdgemm auto-offload, §5.2).
func (e *Engine) phiCovariance(d *distlinalg.DistMatrix) (*linalg.Matrix, error) {
	n := d.Rows()
	sums, err := d.ColumnSums()
	if err != nil {
		return nil, err
	}
	means := make([]float64, d.Cols)
	for j, s := range sums {
		means[j] = s / float64(n)
	}
	e.c.Broadcast(0, int64(d.Cols)*8)
	e.c.Barrier()

	partials := make([]*linalg.Matrix, len(d.Parts))
	for i, part := range d.Parts {
		i, part := i, part
		inBytes := int64(part.Rows) * int64(part.Cols) * 8
		outBytes := int64(d.Cols) * int64(d.Cols) * 8
		err := e.execKernel(i, xeonphi.KindGEMM, inBytes, outBytes, func() error {
			centered := linalg.NewMatrix(part.Rows, part.Cols)
			for r := 0; r < part.Rows; r++ {
				src, dst := part.Row(r), centered.Row(r)
				for j, v := range src {
					dst[j] = v - means[j]
				}
			}
			partials[i] = linalg.MulATAP(centered, 1)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	e.c.Gather(0, int64(d.Cols)*int64(d.Cols)*8)
	var cov *linalg.Matrix
	if err := e.c.Exec(0, func() error {
		cov = linalg.NewMatrix(d.Cols, d.Cols)
		for _, p := range partials {
			cov.Add(cov, p)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	cov.Scale(1 / float64(n-1))
	e.c.Barrier()
	return cov, nil
}

func (e *Engine) biclustering(ctx context.Context, p engine.Params) (any, float64, error) {
	d, pats, err := e.buildDistMatrix(ctx, func(pid int) bool {
		return e.gender[pid] == int64(p.Gender) && e.age[pid] < p.MaxAge
	}, allGeneIDs(e.numGenes))
	if err != nil {
		return nil, 0, err
	}
	if len(pats) < 4 {
		return nil, 0, fmt.Errorf("multinode: only %d patients pass the Q3 filter", len(pats))
	}
	// Biclustering does not distribute: gather to the coordinator (every
	// configuration in the paper effectively does this, which is why Q3
	// shows no multi-node speedup).
	x := d.Gather()
	dm := e.c.MakespanSeconds()

	var ans *engine.BiclusterAnswer
	inBytes := int64(x.Rows) * int64(x.Cols) * 8
	err = e.execKernel(0, xeonphi.KindBicluster, inBytes, 4096, func() error {
		blocks, kerr := biclusterRun(x, p)
		if kerr != nil {
			return kerr
		}
		ans = engine.BiclusterAnswerFromBlocks(blocks, pats)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return ans, dm, nil
}

func (e *Engine) svd(ctx context.Context, p engine.Params) (any, float64, error) {
	genes := e.selectGenes(p.FunctionThreshold)
	if len(genes) == 0 {
		return nil, 0, fmt.Errorf("multinode: no genes pass function < %d", p.FunctionThreshold)
	}
	d, _, err := e.buildDistMatrix(ctx, func(int) bool { return true }, genes)
	if err != nil {
		return nil, 0, err
	}
	dm := e.c.MakespanSeconds()

	var sv []float64
	switch e.kind {
	case ColstoreUDF:
		a := d.Gather()
		err = e.c.Exec(0, func() error {
			svd, kerr := linalg.TopKSVD(a, p.SVDK, linalg.LanczosOptions{Reorthogonalize: true, Seed: p.Seed, Workers: 1})
			if kerr != nil {
				return kerr
			}
			sv = svd.SingularValues
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
	default:
		if e.kind == SciDB || e.kind == SciDBPhi {
			e.redistribute(d)
		}
		if e.dev != nil {
			sv, err = e.phiSVD(d, p)
		} else {
			sv, err = d.TopKSingularValues(p.SVDK, p.Seed)
		}
		if err != nil {
			return nil, 0, err
		}
	}
	return &engine.SVDAnswer{SelectedGenes: len(genes), SingularValues: sv}, dm, nil
}

// phiSVD runs distributed Lanczos with each node's local mat-vec offloaded.
func (e *Engine) phiSVD(d *distlinalg.DistMatrix, p engine.Params) ([]float64, error) {
	op := &phiATAOperator{e: e, d: d}
	eig, err := linalg.Lanczos(op, p.SVDK, linalg.LanczosOptions{Reorthogonalize: true, Seed: p.Seed})
	if op.err != nil {
		return nil, op.err
	}
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig.Values))
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[i] = sqrt(lam)
	}
	return sv, nil
}

type phiATAOperator struct {
	e        *Engine
	d        *distlinalg.DistMatrix
	resident bool // matrix blocks already copied to the devices
	err      error
}

func (o *phiATAOperator) Dim() int { return o.d.Cols }

func (o *phiATAOperator) Apply(x []float64) []float64 {
	d := o.d
	z := make([]float64, d.Cols)
	if o.err != nil {
		return z
	}
	partials := make([][]float64, len(d.Parts))
	for i, part := range d.Parts {
		i, part := i, part
		// The matrix block transfers to device memory once and stays
		// resident across Lanczos iterations (as MKL automatic offload keeps
		// it); only the x and z vectors cross the PCIe link per iteration.
		inBytes := int64(d.Cols) * 8
		if !o.resident {
			inBytes += int64(part.Rows) * int64(part.Cols) * 8
		}
		if err := o.e.execKernel(i, xeonphi.KindLanczos, inBytes, int64(d.Cols)*8, func() error {
			local := make([]float64, d.Cols)
			for r := 0; r < part.Rows; r++ {
				row := part.Row(r)
				yi := linalg.Dot(row, x)
				linalg.Axpy(yi, row, local)
			}
			partials[i] = local
			return nil
		}); err != nil {
			o.err = err
			return z
		}
	}
	o.resident = true
	d.C.AllReduce(int64(d.Cols) * 8)
	if err := d.C.Exec(0, func() error {
		for _, p := range partials {
			for j, v := range p {
				z[j] += v
			}
		}
		return nil
	}); err != nil {
		o.err = err
	}
	d.C.Barrier()
	return z
}

func (e *Engine) statistics(ctx context.Context, p engine.Params) (any, float64, error) {
	step := p.SamplePatientStep()
	// Local partial sums over each node's sampled patients, concurrently
	// across nodes.
	partials := make([][]float64, e.c.Nodes())
	if err := e.c.ExecAll(func(n int) error {
		if err := engine.CheckCtx(ctx); err != nil {
			return err
		}
		local := e.localPatients(n, func(pid int) bool { return pid%step == 0 })
		m := e.localPivot(n, local, allGeneIDs(e.numGenes))
		s := make([]float64, e.numGenes)
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for j, v := range row {
				s[j] += v
			}
		}
		partials[n] = s
		return nil
	}); err != nil {
		return nil, 0, err
	}
	e.c.Gather(0, int64(e.numGenes)*8)
	sampled := (e.numPats + step - 1) / step
	means := make([]float64, e.numGenes)
	if err := e.c.Exec(0, func() error {
		for _, part := range partials {
			for j, v := range part {
				means[j] += v
			}
		}
		for j := range means {
			means[j] /= float64(sampled)
		}
		return nil
	}); err != nil {
		return nil, 0, err
	}
	e.c.Barrier()
	dm := e.c.MakespanSeconds()

	members := make([][]int32, e.numTerms)
	for g := 0; g < e.numGenes; g++ {
		row := e.goArr[g*e.numTerms : (g+1)*e.numTerms]
		for t, b := range row {
			if b == 1 {
				members[t] = append(members[t], int32(g))
			}
		}
	}
	var ans *engine.StatsAnswer
	inBytes := int64(e.numGenes)*8 + int64(len(e.goArr))
	err := e.execKernel(0, xeonphi.KindRank, inBytes, int64(e.numTerms)*16, func() error {
		var kerr error
		ans, kerr = engine.EnrichmentTest(ctx, means, members, sampled)
		return kerr
	})
	if err != nil {
		return nil, 0, err
	}
	return ans, dm, nil
}
