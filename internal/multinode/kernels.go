package multinode

import (
	"context"
	"math"

	"github.com/genbase/genbase/internal/bicluster"
	"github.com/genbase/genbase/internal/distlinalg"
	"github.com/genbase/genbase/internal/engine"
	"github.com/genbase/genbase/internal/linalg"
	"github.com/genbase/genbase/internal/xeonphi"
)

// The analytics kernel operators (plan.Physical over DistMatrix shards).
// Each configuration keeps its architectural signature from the hand-coded
// era: pbdR-backed kinds run ScaLAPACK-style distributed reductions, SciDB
// kinds pay the chunk→block-cyclic redistribution first, the UDF kind
// gathers to the coordinator (its analytics cannot scale with nodes), and
// SciDB+Phi offloads each shard's kernel to the coprocessor model. All
// reductions combine per-shard partials in shard order, so kernel answers
// are invariant to node count.

// interceptParts prepends an all-ones column to every shard of d.
func interceptParts(d *distlinalg.DistMatrix) *distlinalg.DistMatrix {
	parts := make([]*linalg.Matrix, len(d.Parts))
	for i, p := range d.Parts {
		parts[i] = linalg.AddInterceptColumn(p)
	}
	return distlinalg.FromParts(d.C, parts)
}

// redistribute charges SciDB's chunk→block-cyclic repartitioning before a
// ScaLAPACK call: an all-to-all exchange of the matrix. This is the data
// movement behind the paper's observation that "SciDB often has worse
// performance on two nodes than on one".
func (x *exec) redistribute(d *distlinalg.DistMatrix) {
	if x.c.Nodes() < 2 {
		return
	}
	total := int64(d.Rows()) * int64(d.Cols) * 8
	pairs := int64(x.c.Nodes()) * int64(x.c.Nodes())
	x.c.AllToAll(total / pairs)
}

// execKernel runs an analytics kernel for a shard, at host rate or on the
// owner node's coprocessor (SciDBPhi). Both paths measure the (idempotent)
// kernel with xeonphi.MeasureKernel so host/device speedup ratios are stable
// even for sub-millisecond kernels.
func (x *exec) execKernel(node int, kind string, inBytes, outBytes int64, fn func() error) error {
	if x.e.dev == nil {
		measured, err := xeonphi.MeasureKernel(fn)
		if err != nil {
			return err
		}
		x.c.Charge(node, measured)
		return nil
	}
	compute, transfer, err := x.e.dev.Offload(context.Background(), kind, inBytes, outBytes, fn)
	if err != nil {
		return err
	}
	x.c.Charge(node, compute+transfer)
	return nil
}

// shardKernelNode picks the node a shard's offloaded kernel runs on: the
// shard's primary while it lives, its first live replica (with the failover
// detection delay charged) after the primary dies. The kernel's bits do not
// depend on the node, so the failover changes only the virtual timing.
func (x *exec) shardKernelNode(d *distlinalg.DistMatrix, s int) (int, error) {
	node, err := d.LiveOwner(s)
	if err != nil {
		return -1, err
	}
	if node != d.Owners[s] {
		x.c.ChargeFailoverDetect(node)
	}
	return node, nil
}

// RunRegression implements plan.Physical. pbdR kinds solve distributed
// normal equations; SciDB kinds redistribute first; the UDF kind gathers and
// solves on the coordinator. Regression never offloads to the Phi (MKL
// auto-offload unsupported, §5.2).
func (x *exec) RunRegression(ctx context.Context, _ *engine.StopWatch, d *distlinalg.DistMatrix, y []float64) ([]float64, float64, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, 0, err
	}
	x.markAnalytics()
	var fit *linalg.LeastSquaresResult
	var err error
	switch x.e.kind {
	case ColstoreUDF:
		// No distributed analytics runtime: gather to the coordinator and
		// call the UDF there. Analytics do not scale with nodes.
		xm, gerr := d.Gather()
		if gerr != nil {
			return nil, 0, gerr
		}
		err = x.c.ExecCoordinator(func() error {
			var kerr error
			fit, kerr = linalg.LeastSquares(linalg.AddInterceptColumn(xm), y)
			return kerr
		})
	default:
		if x.e.kind == SciDB || x.e.kind == SciDBPhi {
			x.redistribute(d)
		}
		fit, err = interceptParts(d).LeastSquares(y)
	}
	if err != nil {
		return nil, 0, err
	}
	return fit.Coefficients, fit.RSquared, nil
}

// RunCovariance implements plan.Physical. The result gathers to the
// coordinator in every configuration — the shared TopKByAbs summary consumes
// it there (charged to the coordinator's clock via ExecLocal, attributed
// back to data management by the plan's phase tags, exactly as the
// hand-coded Q2 did).
func (x *exec) RunCovariance(ctx context.Context, _ *engine.StopWatch, d *distlinalg.DistMatrix) (*linalg.Matrix, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	x.markAnalytics()
	var cov *linalg.Matrix
	var err error
	switch x.e.kind {
	case ColstoreUDF:
		xm, gerr := d.Gather()
		if gerr != nil {
			return nil, gerr
		}
		err = x.c.ExecCoordinator(func() error {
			// One worker: the coordinator models a single virtual node.
			cov = linalg.CovarianceP(xm, 1)
			return nil
		})
	default:
		if x.e.kind == SciDB || x.e.kind == SciDBPhi {
			x.redistribute(d)
		}
		if x.e.dev != nil {
			cov, err = x.phiCovariance(d)
		} else {
			cov, err = d.Covariance()
		}
	}
	if err != nil {
		return nil, err
	}
	return cov, nil
}

// phiCovariance mirrors distlinalg.Covariance but charges each shard's gram
// kernel at the device rate on its owner node (pdgemm auto-offload, §5.2).
func (x *exec) phiCovariance(d *distlinalg.DistMatrix) (*linalg.Matrix, error) {
	n := d.Rows()
	sums, err := d.ColumnSums()
	if err != nil {
		return nil, err
	}
	means := make([]float64, d.Cols)
	for j, s := range sums {
		means[j] = s / float64(n)
	}
	x.c.Broadcast(x.c.Coordinator(), int64(d.Cols)*8)
	x.c.Barrier()

	partials := make([]*linalg.Matrix, len(d.Parts))
	for i, part := range d.Parts {
		i, part := i, part
		node, err := x.shardKernelNode(d, i)
		if err != nil {
			return nil, err
		}
		inBytes := int64(part.Rows) * int64(part.Cols) * 8
		outBytes := int64(d.Cols) * int64(d.Cols) * 8
		err = x.execKernel(node, xeonphi.KindGEMM, inBytes, outBytes, func() error {
			centered := linalg.NewMatrix(part.Rows, part.Cols)
			for r := 0; r < part.Rows; r++ {
				src, dst := part.Row(r), centered.Row(r)
				for j, v := range src {
					dst[j] = v - means[j]
				}
			}
			partials[i] = linalg.MulATAP(centered, 1)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	x.c.Gather(x.c.Coordinator(), int64(d.Cols)*int64(d.Cols)*8)
	var cov *linalg.Matrix
	if err := x.c.ExecCoordinator(func() error {
		cov = linalg.NewMatrix(d.Cols, d.Cols)
		for _, p := range partials {
			cov.Add(cov, p)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	cov.Scale(1 / float64(n-1))
	x.c.Barrier()
	return cov, nil
}

// RunSVD implements plan.Physical.
func (x *exec) RunSVD(ctx context.Context, _ *engine.StopWatch, d *distlinalg.DistMatrix, k int, seed uint64) ([]float64, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	x.markAnalytics()
	switch x.e.kind {
	case ColstoreUDF:
		a, gerr := d.Gather()
		if gerr != nil {
			return nil, gerr
		}
		var sv []float64
		err := x.c.ExecCoordinator(func() error {
			svd, kerr := linalg.TopKSVD(a, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed, Workers: 1})
			if kerr != nil {
				return kerr
			}
			sv = svd.SingularValues
			return nil
		})
		if err != nil {
			return nil, err
		}
		return sv, nil
	default:
		if x.e.kind == SciDB || x.e.kind == SciDBPhi {
			x.redistribute(d)
		}
		if x.e.dev != nil {
			return x.phiSVD(d, k, seed)
		}
		return d.TopKSingularValues(k, seed)
	}
}

// phiSVD runs distributed Lanczos with each shard's local mat-vec offloaded
// to its owner node's coprocessor.
func (x *exec) phiSVD(d *distlinalg.DistMatrix, k int, seed uint64) ([]float64, error) {
	op := &phiATAOperator{x: x, d: d}
	eig, err := linalg.Lanczos(op, k, linalg.LanczosOptions{Reorthogonalize: true, Seed: seed})
	if op.err != nil {
		return nil, op.err
	}
	if err != nil {
		return nil, err
	}
	sv := make([]float64, len(eig.Values))
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		sv[i] = math.Sqrt(lam)
	}
	return sv, nil
}

type phiATAOperator struct {
	x        *exec
	d        *distlinalg.DistMatrix
	resident bool // matrix shards already copied to the devices
	err      error
}

func (o *phiATAOperator) Dim() int { return o.d.Cols }

func (o *phiATAOperator) Apply(v []float64) []float64 {
	d := o.d
	z := make([]float64, d.Cols)
	if o.err != nil {
		return z
	}
	partials := make([][]float64, len(d.Parts))
	for i, part := range d.Parts {
		i, part := i, part
		node, err := o.x.shardKernelNode(d, i)
		if err != nil {
			o.err = err
			return z
		}
		// The shard transfers to device memory once and stays resident
		// across Lanczos iterations (as MKL automatic offload keeps it);
		// only the x and z vectors cross the PCIe link per iteration.
		inBytes := int64(d.Cols) * 8
		if !o.resident {
			inBytes += int64(part.Rows) * int64(part.Cols) * 8
		}
		if err := o.x.execKernel(node, xeonphi.KindLanczos, inBytes, int64(d.Cols)*8, func() error {
			local := make([]float64, d.Cols)
			for r := 0; r < part.Rows; r++ {
				row := part.Row(r)
				yi := linalg.Dot(row, v)
				linalg.Axpy(yi, row, local)
			}
			partials[i] = local
			return nil
		}); err != nil {
			o.err = err
			return z
		}
	}
	o.resident = true
	d.C.AllReduce(int64(d.Cols) * 8)
	if err := d.C.ExecCoordinator(func() error {
		// Re-zero so a coordinator failover re-execution stays idempotent.
		for j := range z {
			z[j] = 0
		}
		for _, p := range partials {
			for j, v := range p {
				z[j] += v
			}
		}
		return nil
	}); err != nil {
		o.err = err
	}
	d.C.Barrier()
	return z
}

// RunBicluster implements plan.Physical. Biclustering does not distribute:
// every configuration gathers the filtered matrix to the coordinator (data
// management, as the hand-coded path attributed it — this is why Q3 shows no
// multi-node speedup) and runs the shared Cheng–Church kernel there.
func (x *exec) RunBicluster(ctx context.Context, _ *engine.StopWatch, d *distlinalg.DistMatrix, maxB int, seed uint64) ([]bicluster.Bicluster, error) {
	if err := engine.CheckCtx(ctx); err != nil {
		return nil, err
	}
	xm, gerr := d.Gather()
	if gerr != nil {
		return nil, gerr
	}
	x.markAnalytics()
	var blocks []bicluster.Bicluster
	inBytes := int64(xm.Rows) * int64(xm.Cols) * 8
	err := x.execKernel(x.c.Coordinator(), xeonphi.KindBicluster, inBytes, 4096, func() error {
		var kerr error
		blocks, kerr = bicluster.Run(xm, bicluster.Options{MaxBiclusters: maxB, Seed: seed})
		return kerr
	})
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// RunStats implements plan.Physical: the per-shard sample aggregate already
// ran as data management (SampleMeans); the enrichment test is the
// coordinator's rank kernel.
func (x *exec) RunStats(ctx context.Context, _ *engine.StopWatch, means []float64, members [][]int32, sampled int) (*engine.StatsAnswer, error) {
	x.markAnalytics()
	var ans *engine.StatsAnswer
	inBytes := int64(x.e.numGenes)*8 + int64(len(x.e.goArr))
	err := x.execKernel(x.c.Coordinator(), xeonphi.KindRank, inBytes, int64(x.e.numTerms)*16, func() error {
		var kerr error
		ans, kerr = engine.EnrichmentTest(ctx, means, members, sampled)
		return kerr
	})
	if err != nil {
		return nil, err
	}
	return ans, nil
}
